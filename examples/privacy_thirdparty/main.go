// Privacy/third-party scenario — the paper's motivating setting (§1):
// a model owner trains a forest on private data and hands ONLY the
// serialized forest to a certification authority; the authority explains
// the model with GEF, never seeing a single training record, and then
// verifies (with data the owner kept) that the explanation is faithful.
//
// The two roles are separated into functions that communicate exclusively
// through the forest JSON bytes.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gef"
	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/stats"
)

func main() {
	dir, err := os.MkdirTemp("", "gef-handoff")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir) //lint:ignore errdrop best-effort cleanup of a temp dir on exit
	handoff := filepath.Join(dir, "forest.json")

	// ------------------------------------------------------------------
	// Role 1: the model owner. Private data never leaves this function.
	privateTest := modelOwner(handoff)

	// ------------------------------------------------------------------
	// Role 2: the certification authority. Receives only the file.
	explainer := certificationAuthority(handoff)

	// ------------------------------------------------------------------
	// Back at the owner: validate the authority's surrogate against the
	// private held-out data (the paper's Table 2 protocol).
	f, err := gef.LoadForest(handoff)
	if err != nil {
		log.Fatal(err)
	}
	forestPred := f.PredictBatch(privateTest.X)
	gamPred := explainer.PredictBatch(privateTest.X)
	fmt.Println("\n--- owner-side validation on private held-out data ---")
	fmt.Printf("R² of surrogate vs forest:  %.4f\n", stats.R2(gamPred, forestPred))
	fmt.Printf("R² of surrogate vs labels:  %.4f\n", stats.R2(gamPred, privateTest.Y))
	fmt.Printf("R² of forest vs labels:     %.4f\n", stats.R2(forestPred, privateTest.Y))
}

// modelOwner trains on private data, writes the forest JSON, and returns
// a private test split for later validation.
func modelOwner(handoffPath string) *gef.Dataset {
	fmt.Println("--- model owner: training on private data ---")
	private := dataset.GPrime(8000, 0.1, 99)
	train, test := private.Split(0.2, 1)
	f, err := gef.TrainForest(train, gef.ForestParams{
		NumTrees: 200, NumLeaves: 32, LearningRate: 0.1, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := gef.SaveForest(f, handoffPath); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(handoffPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forest serialized: %d trees, %d bytes — this file is ALL the authority gets\n",
		len(f.Trees), info.Size())
	return test
}

// certificationAuthority loads the forest from the hand-off file and
// builds the GEF explanation with zero data access.
func certificationAuthority(handoffPath string) *gef.Model {
	fmt.Println("\n--- certification authority: explaining from the forest alone ---")
	f, err := forest.LoadFile(handoffPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("received forest: %d features, %d nodes, objective %s\n",
		f.NumFeatures, f.NumNodes(), f.Objective)

	e, err := gef.Explain(f, gef.Config{
		NumUnivariate: 5,
		NumSamples:    30000,
		Sampling:      gef.SamplingConfig{Strategy: gef.EquiSize, K: 500},
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explanation built from synthetic D* only — fidelity RMSE %.4f, R² %.4f\n",
		e.Fidelity.RMSE, e.Fidelity.R2)
	fmt.Println("features the model relies on (by internal gain):")
	for rank, feat := range e.Features {
		fmt.Printf("  %d. %s\n", rank+1, f.FeatureName(feat))
	}
	return e.Model
}
