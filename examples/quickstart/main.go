// Quickstart: train a gradient-boosted forest on a synthetic additive
// target, explain it with GEF, and inspect the learned splines — the
// minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"gef"
	"gef/internal/dataset"
)

func main() {
	// 1. Train a black-box forest. In a real deployment this is the model
	// someone hands you; here we train on the paper's g′ generator:
	// y = x₁ + sin(20x₂) + sigmoid(x₃) + arctan-mix(x₄) + 2/(x₅+1).
	data := dataset.GPrime(8000, 0.1, 42)
	train, test := data.Split(0.2, 1)
	f, err := gef.TrainForest(train, gef.ForestParams{
		NumTrees: 200, NumLeaves: 32, LearningRate: 0.1, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forest: %d trees, %d nodes\n", len(f.Trees), f.NumNodes())

	// 2. Explain it. GEF reads only the forest — thresholds, gains,
	// structure — and never touches `data`.
	e, err := gef.Explain(f, gef.Config{
		NumUnivariate: 5, // |F'|: how many splines the analyst wants
		NumSamples:    30000,
		Sampling:      gef.SamplingConfig{Strategy: gef.EquiSize, K: 500},
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explainer fidelity on held-out D*: RMSE %.4f, R² %.4f\n",
		e.Fidelity.RMSE, e.Fidelity.R2)

	// 3. Global view: one spline per selected feature.
	fmt.Println("\nglobal explanation (spline value at domain quartiles):")
	for ti := 0; ti < e.Model.NumTerms(); ti++ {
		lo, hi := e.Model.TermRange(ti)
		grid := []float64{lo, lo + 0.25*(hi-lo), (lo + hi) / 2, lo + 0.75*(hi-lo), hi}
		c, err := e.Model.TermCurve(ti, grid, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		spec := e.Model.Term(ti)
		fmt.Printf("  s(%s): ", f.FeatureName(spec.Feature))
		for i := range grid {
			fmt.Printf("%+.2f ", c.Y[i])
		}
		fmt.Println()
	}

	// 4. Local view: decompose one prediction.
	x := test.X[0]
	le := e.ExplainInstance(x)
	fmt.Printf("\nlocal explanation of %v\n", x)
	fmt.Printf("  forest says %.3f, GAM says %.3f (intercept %.3f)\n",
		le.ForestOutput, le.GamPrediction, le.Intercept)
	for _, c := range le.Contributions {
		fmt.Printf("  %-8s %+.3f\n", f.FeatureName(c.Spec.Feature), c.Value)
	}

	// 5. Sanity: the GAM generalizes to the original data distribution it
	// has never seen.
	pred := e.Model.PredictBatch(test.X)
	forestPred := f.PredictBatch(test.X)
	var sse, sst, mean float64
	for _, v := range forestPred {
		mean += v
	}
	mean /= float64(len(forestPred))
	for i := range pred {
		d := pred[i] - forestPred[i]
		sse += d * d
		t := forestPred[i] - mean
		sst += t * t
	}
	fmt.Printf("\nR² of GAM vs forest on original (unseen) test data: %.4f\n", 1-sse/sst)
}
