// Census scenario (paper §5): explain a classification forest over
// sensitive demographic attributes — the paper's "explain to justify"
// motivation. The GAM uses a logit link, factor terms for one-hot
// features, and one interaction term; the example audits the effect of
// the sensitive sex attribute on the predicted salary class.
package main

import (
	"fmt"
	"log"
	"strings"

	"gef"
	"gef/internal/dataset"
	"gef/internal/plot"
)

func main() {
	// The simulated Census/Adult dataset, preprocessed as in the paper:
	// education dropped (redundant with education-num), categoricals
	// one-hot encoded.
	data := dataset.CensusN(12000, 11)
	train, test := data.Split(0.2, 1)
	f, err := gef.TrainForest(train, gef.ForestParams{
		NumTrees: 120, NumLeaves: 16, LearningRate: 0.1,
		Objective: gef.BinaryLogistic, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Accuracy check for context.
	pred := f.PredictBatch(test.X)
	correct := 0
	for i, p := range pred {
		if (p >= 0.5) == (test.Y[i] >= 0.5) {
			correct++
		}
	}
	fmt.Printf("forest accuracy on held-out data: %.3f\n", float64(correct)/float64(len(pred)))

	// The paper's Census setting: 5 splines + 1 interaction, K-Quantile.
	e, err := gef.Explain(f, gef.Config{
		NumUnivariate:       5,
		NumInteractions:     1,
		InteractionStrategy: gef.CountPath,
		NumSamples:          20000,
		Sampling:            gef.SamplingConfig{Strategy: gef.KQuantile, K: 100},
		GAM:                 gef.GAMOptions{Lambdas: []float64{0.1, 1, 10, 100, 1000}},
		Seed:                3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fidelity on D* (probability scale): RMSE %.4f\n\n", e.Fidelity.RMSE)

	fmt.Println("selected features:")
	for rank, feat := range e.Features {
		fmt.Printf("  %d. %s\n", rank+1, f.FeatureName(feat))
	}
	if len(e.Pairs) > 0 {
		p := e.Pairs[0]
		fmt.Printf("selected interaction: (%s, %s)\n",
			f.FeatureName(p.I), f.FeatureName(p.J))
	}

	// Global view of the strongest continuous driver (education-num in
	// the paper's Fig. 10; contributions are on the log-odds scale).
	for ti := 0; ti < e.Model.NumTerms(); ti++ {
		spec := e.Model.Term(ti)
		if spec.Kind != gef.SplineTerm {
			continue
		}
		name := f.FeatureName(spec.Feature)
		lo, hi := e.Model.TermRange(ti)
		grid := make([]float64, 32)
		for i := range grid {
			grid[i] = lo + (hi-lo)*float64(i)/31
		}
		c, err := e.Model.TermCurve(ti, grid, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(plot.Render([]plot.Line{
			{X: c.X, Y: c.Y, Name: "log-odds contribution", Mark: '*'},
			{X: c.X, Y: c.Lower, Name: "95% CI", Mark: '.'},
			{X: c.X, Y: c.Upper, Mark: '.'},
		}, plot.Options{Title: "s(" + name + ")", Height: 12}))
		break
	}

	// --- Sensitive-attribute audit: what does the model attribute to
	// sex? One-hot factor terms make this a direct read-out.
	fmt.Println("\nsensitive-attribute audit (factor contributions, log-odds):")
	for ti := 0; ti < e.Model.NumTerms(); ti++ {
		spec := e.Model.Term(ti)
		if spec.Kind != gef.FactorTerm {
			continue
		}
		name := f.FeatureName(spec.Feature)
		if !strings.HasPrefix(name, "sex=") && !strings.HasPrefix(name, "race=") &&
			!strings.HasPrefix(name, "marital-status=") {
			continue
		}
		levels := e.Model.FactorTermLevels(ti)
		c, err := e.Model.TermCurve(ti, levels, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		for i, lv := range levels {
			fmt.Printf("  %-36s at %v: %+.3f ± %.3f\n", name, lv, c.Y[i], 1.96*c.SE[i])
		}
	}

	// --- Local explanation of one person.
	x := test.X[0]
	le := e.ExplainInstance(x)
	fmt.Printf("\nlocal explanation — forest P(>50K) = %.3f, GAM P(>50K) = %.3f\n",
		le.ForestOutput, le.GamPrediction)
	for _, ct := range le.Contributions {
		fmt.Printf("  %-36s %+.3f log-odds\n", ct.Spec.Label(f.FeatureName), ct.Value)
	}
}
