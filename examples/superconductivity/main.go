// Superconductivity scenario (paper §5): explain a wide-feature
// regression forest that predicts critical temperatures, reproduce the
// paper's global (Fig. 9) and local (Figs. 11–13) explanation workflow,
// and compare GEF with SHAP and LIME on the same instance.
package main

import (
	"fmt"
	"log"

	"gef"
	"gef/internal/dataset"
	"gef/internal/plot"
)

func main() {
	// The simulated Superconductivity dataset: 81 derived physical
	// features, critical temperature target with a sharp dependence on
	// wtd_entropy_atomic_mass (WEAM) near 1.1.
	data := dataset.SuperconductivityN(8000, 3)
	train, test := data.Split(0.2, 1)
	f, err := gef.TrainForest(train, gef.ForestParams{
		NumTrees: 150, NumLeaves: 32, LearningRate: 0.1, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// GEF with the paper's Superconductivity setting: 7 splines, no
	// interactions, Equi-Size sampling.
	e, err := gef.Explain(f, gef.Config{
		NumUnivariate: 7,
		NumSamples:    30000,
		Sampling:      gef.SamplingConfig{Strategy: gef.EquiSize, K: 800},
		Seed:          5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fidelity on D*: RMSE %.3f K, R² %.4f\n\n", e.Fidelity.RMSE, e.Fidelity.R2)

	// --- Global explanation: the top spline with its 95% CI (Fig. 9a).
	top := e.Features[0]
	ti := termIndex(e.Model, top)
	lo, hi := e.Model.TermRange(ti)
	grid := linspace(lo, hi, 48)
	c, err := e.Model.TermCurve(ti, grid, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plot.Render([]plot.Line{
		{X: c.X, Y: c.Y, Name: "s(" + f.FeatureName(top) + ")", Mark: '*'},
		{X: c.X, Y: c.Lower, Name: "95% CI", Mark: '.'},
		{X: c.X, Y: c.Upper, Mark: '.'},
	}, plot.Options{Title: "GEF top spline (expected contribution to Tc, kelvin)"}))

	// --- Local explanation of one material (Fig. 11).
	x := test.X[0]
	le := e.ExplainInstance(x)
	fmt.Printf("\nlocal explanation — forest %.2f K, GAM %.2f K, average %.2f K\n",
		le.ForestOutput, le.GamPrediction, le.Intercept)
	labels := make([]string, 0, len(le.Contributions))
	values := make([]float64, 0, len(le.Contributions))
	for _, ct := range le.Contributions {
		labels = append(labels, f.FeatureName(ct.Spec.Feature))
		values = append(values, ct.Value)
	}
	fmt.Print(plot.Bars(labels, values, 40))

	// GEF's unique affordance: how would the prediction move under a
	// small change of the top feature? Zoom the spline around the
	// instance value.
	v := x[top]
	span := (hi - lo) * 0.08
	zoom := linspace(max(lo, v-span), min(hi, v+span), 9)
	zc, err := e.Model.TermCurve(ti, zoom, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nzoom on s(%s) around the instance value %.3f:\n", f.FeatureName(top), v)
	for i := range zoom {
		marker := "  "
		if i == len(zoom)/2 {
			marker = "→ "
		}
		fmt.Printf("  %s%8.3f : %+7.3f K\n", marker, zoom[i], zc.Y[i])
	}

	// --- SHAP on the same instance (Fig. 12).
	phi, base := gef.ShapValues(f, x)
	fmt.Printf("\nSHAP — E[f(X)] = %.2f K, f(x) = %.2f K\n", base, f.RawPredict(x))
	for _, a := range gef.TopShap(phi, 6) {
		fmt.Printf("  %-32s φ = %+7.3f (value %.3f)\n",
			f.FeatureName(a.Feature), a.Value, x[a.Feature])
	}

	// --- LIME on the same instance (Fig. 13).
	lexp, err := gef.ExplainLIME(f.Predict, train.X[:400], x, gef.LimeConfig{NumSamples: 2000, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLIME — local surrogate R² = %.3f\n", lexp.R2)
	for _, fw := range lexp.Top(6) {
		fmt.Printf("  %-32s w = %+7.3f (value %.3f)\n",
			f.FeatureName(fw.Feature), fw.Weight, x[fw.Feature])
	}
}

func termIndex(m *gef.Model, feat int) int {
	for i := 0; i < m.NumTerms(); i++ {
		if t := m.Term(i); t.Kind != gef.TensorTerm && t.Feature == feat {
			return i
		}
	}
	return -1
}

func linspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
