package gef

// BENCH_forest.json generator (ISSUE 8): single-thread flat-SoA vs
// pointer-walk traversal cost, measured as ns/row at batch sizes 1, 64
// and 4096, plus two end-to-end stages — D* labeling (the sampling hot
// loop) and batch SHAP — and the forest.flat_* compile/kernel metric
// vectors recorded while the harness ran. Regenerate with:
//
//	BENCH_FOREST_OUT=BENCH_forest.json go test -count=1 -run TestWriteForestBench .
//
// On a multi-core host the harness additionally asserts the flat D*
// labeling path is ≥ 2× the pointer walk at workers=1; on a 1-core
// container the numbers are still recorded but the ratio assertion is
// skipped, mirroring the BENCH_par.json policy (contended single-core
// schedulers make wall-clock ratios too noisy to gate on).

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gbdt"
	"gef/internal/obs"
	"gef/internal/par"
	"gef/internal/sampling"
	"gef/internal/shap"
)

// forestKernelRow is one batch-size measurement of the prediction kernels.
type forestKernelRow struct {
	Batch             int     `json:"batch"`
	PointerNsPerRow   float64 `json:"pointer_ns_per_row"`
	FlatNsPerRow      float64 `json:"flat_ns_per_row"`
	QuantizedNsPerRow float64 `json:"quantized_ns_per_row"`
	FlatSpeedup       float64 `json:"flat_speedup"`      // pointer / flat
	QuantizedSpeedup  float64 `json:"quantized_speedup"` // pointer / quantized
}

// forestStageRow is one end-to-end stage measurement.
type forestStageRow struct {
	Stage           string  `json:"stage"`
	Rows            int     `json:"rows"`
	PointerNsPerRow float64 `json:"pointer_ns_per_row,omitempty"`
	FlatNsPerRow    float64 `json:"flat_ns_per_row"`
	Speedup         float64 `json:"speedup,omitempty"` // pointer / flat
}

// forestBenchReport is the BENCH_forest.json shape.
type forestBenchReport struct {
	Name     string            `json:"name"`
	Go       string            `json:"go"`
	OS       string            `json:"os"`
	Arch     string            `json:"arch"`
	Cores    int               `json:"cores"`
	Workers  int               `json:"workers"`
	NumTrees int               `json:"num_trees"`
	Kernels  []forestKernelRow `json:"kernels"`
	Stages   []forestStageRow  `json:"stages"`
	Metrics  obs.Snapshot      `json:"metrics"`
}

// nsPerRow times fn (which processes rows rows per call) often enough to
// amortize timer noise and returns the per-row cost in nanoseconds. The
// warm-up call doubles as a cost probe: iteration count targets ~200k
// rows but is capped so an expensive stage (batch SHAP runs ~40ms/call)
// stays within a ~2s measurement budget.
func nsPerRow(rows int, fn func()) float64 {
	iters := 1
	if rows < 200_000 {
		iters = (200_000 + rows - 1) / rows
	}
	warmStart := time.Now() // warm caches outside the timed region, probing cost
	fn()
	if warm := time.Since(warmStart); warm > 0 {
		if budget := int(2 * time.Second / warm); budget < iters {
			iters = max(budget, 1)
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return float64(time.Since(start)) / float64(iters*rows)
}

func speedupRatio(base, fast float64) float64 {
	if fast <= 0 {
		return 0
	}
	return base / fast
}

// TestWriteForestBench regenerates BENCH_forest.json; it is gated behind
// BENCH_FOREST_OUT so regular test runs skip the measurement sweep.
func TestWriteForestBench(t *testing.T) {
	path := os.Getenv("BENCH_FOREST_OUT")
	if path == "" {
		t.Skip("set BENCH_FOREST_OUT=<path> to generate the flat vs pointer traversal report")
	}
	par.SetWorkers(1)
	defer par.SetWorkers(0)

	ds := dataset.GPrime(4096, 0.1, 19)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 100, NumLeaves: 16, Seed: 1})
	if err != nil {
		t.Fatalf("training fixture forest: %v", err)
	}
	fl := forest.Compiled(f)
	fq, err := forest.CompiledQuantized(f)
	if err != nil {
		t.Fatalf("quantized compile: %v", err)
	}

	rep := forestBenchReport{
		Name:     "gef-forest-bench",
		Go:       runtime.Version(),
		OS:       runtime.GOOS,
		Arch:     runtime.GOARCH,
		Cores:    runtime.NumCPU(),
		Workers:  1,
		NumTrees: len(f.Trees),
	}

	// Kernel sweep: same rows through the pointer walk and both flat
	// layouts at each batch size.
	out := make([]float64, 4096)
	for _, batch := range []int{1, 64, 4096} {
		rows := ds.X[:batch]
		ptr := nsPerRow(batch, func() {
			for _, x := range rows {
				out[0] = f.Predict(x)
			}
		})
		flat := nsPerRow(batch, func() { fl.PredictBatchInto(rows, out[:batch]) })
		quant := nsPerRow(batch, func() { fq.PredictBatchInto(rows, out[:batch]) })
		rep.Kernels = append(rep.Kernels, forestKernelRow{
			Batch:             batch,
			PointerNsPerRow:   ptr,
			FlatNsPerRow:      flat,
			QuantizedNsPerRow: quant,
			FlatSpeedup:       speedupRatio(ptr, flat),
			QuantizedSpeedup:  speedupRatio(ptr, quant),
		})
	}

	// D* labeling end-to-end: synthesize the sample once, then compare
	// labeling it with the pointer walk vs the batched flat kernel —
	// exactly the work sampling.GenerateCtx hands to the forest.
	domains, err := sampling.BuildDomains(f, []int{0, 1, 2, 3, 4},
		sampling.Config{Strategy: sampling.EquiSize, K: 100, Seed: 7})
	if err != nil {
		t.Fatalf("building domains: %v", err)
	}
	dstar := sampling.Generate(f, domains, 8000, 11)
	ys := make([]float64, len(dstar.X))
	ptrLabel := nsPerRow(len(dstar.X), func() {
		for i, x := range dstar.X {
			ys[i] = f.Predict(x)
		}
	})
	flatLabel := nsPerRow(len(dstar.X), func() { fl.PredictBatchInto(dstar.X, ys) })
	labelSpeedup := speedupRatio(ptrLabel, flatLabel)
	rep.Stages = append(rep.Stages, forestStageRow{
		Stage: "dstar_labeling", Rows: len(dstar.X),
		PointerNsPerRow: ptrLabel, FlatNsPerRow: flatLabel, Speedup: labelSpeedup,
	})

	// Batch SHAP end-to-end: flat-backed only — the recursive pointer
	// variant no longer exists, so this row records absolute cost.
	sample := ds.X[:200]
	shapNs := nsPerRow(len(sample), func() { shap.GlobalImportance(f, sample) })
	rep.Stages = append(rep.Stages, forestStageRow{
		Stage: "shap_global_importance", Rows: len(sample), FlatNsPerRow: shapNs,
	})

	rep.Metrics = obs.Metrics().Snapshot()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshaling report: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
	t.Logf("D* labeling: pointer %.1f ns/row vs flat %.1f ns/row → %.2fx (cores=%d)",
		ptrLabel, flatLabel, labelSpeedup, rep.Cores)

	if runtime.NumCPU() == 1 {
		t.Skip("1-core host: recording numbers but skipping the ≥2x gate (BENCH_par policy)")
	}
	if labelSpeedup < 2 {
		t.Fatalf("flat D* labeling speedup %.2fx < 2x gate (pointer %.1f ns/row, flat %.1f ns/row)",
			labelSpeedup, ptrLabel, flatLabel)
	}
}
