package gef

// Determinism gate for the internal/par runtime (ISSUE 3): every
// parallelized pipeline stage must produce bitwise-identical outputs at
// workers ∈ {1, 2, NumCPU}. The contract is fixed chunk boundaries plus
// ordered reduction (see internal/par), so these tests compare float64
// outputs with ==, not tolerances.

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gam"
	"gef/internal/gbdt"
	"gef/internal/par"
	"gef/internal/sampling"
	"gef/internal/shap"
)

// workerCounts is the grid every determinism test sweeps.
func workerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n != 1 && n != 2 {
		counts = append(counts, n)
	}
	return counts
}

// atWorkers runs fn with the worker count pinned, restoring the default.
func atWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	par.SetWorkers(n)
	defer par.SetWorkers(0)
	fn()
}

// requireSameFloats asserts bitwise equality of two float64 slices.
func requireSameFloats(t *testing.T, what string, ref, got []float64, workers int) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: workers=%d produced %d values, workers=1 produced %d", what, workers, len(got), len(ref))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("%s: workers=%d diverges at [%d]: %x vs %x", what, workers, i, got[i], ref[i])
		}
	}
}

func trainFixtureForest(t *testing.T) (*Forest, *dataset.Dataset) {
	t.Helper()
	ds := dataset.GPrime(1200, 0.1, 19)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 40, NumLeaves: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f, ds
}

func TestGAMFitDeterministicAcrossWorkers(t *testing.T) {
	ds := dataset.GPrime(1500, 0.1, 23)
	spec := gam.Spec{Terms: []gam.TermSpec{
		{Kind: gam.Spline, Feature: 0},
		{Kind: gam.Spline, Feature: 1},
		{Kind: gam.Spline, Feature: 2},
	}}
	opt := gam.Options{Lambdas: []float64{0.01, 1, 100}}

	fit := func() (preds []float64, rep gam.FitReport) {
		m, err := gam.Fit(spec, ds.X, ds.Y, opt)
		if err != nil {
			t.Fatal(err)
		}
		return m.PredictBatch(ds.X[:200]), m.Report()
	}
	var refPreds []float64
	var refRep gam.FitReport
	atWorkers(t, 1, func() { refPreds, refRep = fit() })
	for _, w := range workerCounts()[1:] {
		atWorkers(t, w, func() {
			preds, rep := fit()
			requireSameFloats(t, "gam predictions", refPreds, preds, w)
			if rep.Lambda != refRep.Lambda || rep.GCV != refRep.GCV || rep.EDF != refRep.EDF {
				t.Fatalf("workers=%d fit report (λ=%v gcv=%x edf=%x) != workers=1 (λ=%v gcv=%x edf=%x)",
					w, rep.Lambda, rep.GCV, rep.EDF, refRep.Lambda, refRep.GCV, refRep.EDF)
			}
		})
	}
}

func TestGAMLogitFitDeterministicAcrossWorkers(t *testing.T) {
	ds := dataset.GPrime(1200, 0.1, 29)
	// Binarize the target so the logit P-IRLS path runs.
	y := make([]float64, len(ds.Y))
	for i, v := range ds.Y {
		if v > 0 {
			y[i] = 1
		}
	}
	spec := gam.Spec{
		Link: gam.Logit,
		Terms: []gam.TermSpec{
			{Kind: gam.Spline, Feature: 0},
			{Kind: gam.Spline, Feature: 1},
		},
	}
	opt := gam.Options{Lambdas: []float64{0.1, 10}}
	fit := func() []float64 {
		m, err := gam.Fit(spec, ds.X, y, opt)
		if err != nil {
			t.Fatal(err)
		}
		return m.PredictBatch(ds.X[:200])
	}
	var ref []float64
	atWorkers(t, 1, func() { ref = fit() })
	for _, w := range workerCounts()[1:] {
		atWorkers(t, w, func() {
			requireSameFloats(t, "logit gam predictions", ref, fit(), w)
		})
	}
}

func TestDStarDeterministicAcrossWorkers(t *testing.T) {
	f, _ := trainFixtureForest(t)
	domains, err := sampling.BuildDomains(f, []int{0, 1, 2, 3, 4},
		sampling.Config{Strategy: sampling.EquiSize, K: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gen := func() *dataset.Dataset { return sampling.Generate(f, domains, 3000, 11) }
	var ref *dataset.Dataset
	atWorkers(t, 1, func() { ref = gen() })
	for _, w := range workerCounts()[1:] {
		atWorkers(t, w, func() {
			ds := gen()
			for i := range ref.X {
				requireSameFloats(t, "D* row", ref.X[i], ds.X[i], w)
			}
			requireSameFloats(t, "D* labels", ref.Y, ds.Y, w)
		})
	}
}

func TestSHAPDeterministicAcrossWorkers(t *testing.T) {
	f, ds := trainFixtureForest(t)
	sample := ds.X[:150]
	background := ds.X[150:200]
	run := func() (imp, phis, intPhi []float64) {
		imp = shap.GlobalImportance(f, sample)
		_, phis = shap.DependenceSeries(f, sample, 2)
		intPhi, _ = shap.InterventionalValues(f, ds.X[0], background)
		return imp, phis, intPhi
	}
	var refImp, refPhis, refInt []float64
	atWorkers(t, 1, func() { refImp, refPhis, refInt = run() })
	for _, w := range workerCounts()[1:] {
		atWorkers(t, w, func() {
			imp, phis, intPhi := run()
			requireSameFloats(t, "shap global importance", refImp, imp, w)
			requireSameFloats(t, "shap dependence series", refPhis, phis, w)
			requireSameFloats(t, "interventional shap", refInt, intPhi, w)
		})
	}
}

func TestForestBatchPredictDeterministicAcrossWorkers(t *testing.T) {
	f, ds := trainFixtureForest(t)
	var ref []float64
	atWorkers(t, 1, func() { ref = f.PredictBatch(ds.X) })
	for _, w := range workerCounts()[1:] {
		atWorkers(t, w, func() {
			requireSameFloats(t, "forest batch predictions", ref, f.PredictBatch(ds.X), w)
		})
	}
}

func TestGBDTTrainingDeterministicAcrossWorkers(t *testing.T) {
	ds := dataset.GPrime(1000, 0.1, 31)
	train, valid := ds.Split(0.25, 5)
	p := gbdt.Params{
		NumTrees: 25, NumLeaves: 8, Seed: 3,
		BaggingFraction: 0.8, FeatureFraction: 0.7,
		EarlyStoppingRounds: 10,
	}
	fit := func() *Forest {
		f, _, err := gbdt.TrainValid(train, valid, p)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	var ref *Forest
	atWorkers(t, 1, func() { ref = fit() })
	for _, w := range workerCounts()[1:] {
		atWorkers(t, w, func() {
			f := fit()
			if !reflect.DeepEqual(ref.Trees, f.Trees) {
				t.Fatalf("workers=%d grew a different forest than workers=1", w)
			}
		})
	}
}

func TestRFTrainingDeterministicAcrossWorkers(t *testing.T) {
	ds := dataset.GPrime(800, 0.1, 37)
	p := gbdt.RFParams{NumTrees: 12, NumLeaves: 16, Seed: 9}
	fit := func() *Forest {
		f, err := gbdt.TrainRF(ds, p)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	var ref *Forest
	atWorkers(t, 1, func() { ref = fit() })
	for _, w := range workerCounts()[1:] {
		atWorkers(t, w, func() {
			if f := fit(); !reflect.DeepEqual(ref.Trees, f.Trees) {
				t.Fatalf("workers=%d grew a different RF than workers=1", w)
			}
		})
	}
}

func TestGridSearchCVDeterministicAcrossWorkers(t *testing.T) {
	ds := dataset.GPrime(600, 0.1, 41)
	grid := gbdt.Grid{
		NumTrees:      []int{10, 20},
		NumLeaves:     []int{4, 8},
		LearningRates: []float64{0.1},
	}
	run := func() (gbdt.Params, []float64) {
		best, results, err := gbdt.GridSearchCV(ds, gbdt.Params{Seed: 2}, grid, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		losses := make([]float64, len(results))
		for i, r := range results {
			losses[i] = r.MeanLoss
		}
		return best, losses
	}
	var refBest gbdt.Params
	var refLosses []float64
	atWorkers(t, 1, func() { refBest, refLosses = run() })
	for _, w := range workerCounts()[1:] {
		atWorkers(t, w, func() {
			best, losses := run()
			requireSameFloats(t, "cv mean losses", refLosses, losses, w)
			if best != refBest {
				t.Fatalf("workers=%d picked %+v, workers=1 picked %+v", w, best, refBest)
			}
		})
	}
}

func TestFullExplainDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline sweep")
	}
	f, ds := trainFixtureForest(t)
	cfg := Config{
		NumUnivariate: 4,
		NumSamples:    2000,
		Sampling:      SamplingConfig{Strategy: EquiSize, K: 40},
		GAM:           GAMOptions{Lambdas: []float64{0.01, 1, 100}},
		Seed:          3,
	}
	// Each run gets a fresh session: the shared engine's cache would
	// serve later runs from memory and make the worker sweep vacuous
	// (warm runs never touch the parallel code paths).
	run := func() []float64 {
		e, err := NewExplainer(f).Explain(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Model.PredictBatch(ds.X[:100])
	}
	var ref []float64
	atWorkers(t, 1, func() { ref = run() })
	for _, w := range workerCounts()[1:] {
		atWorkers(t, w, func() {
			requireSameFloats(t, "explanation predictions", ref, run(), w)
		})
	}
}

// TestEngineWarmCacheDeterministicAcrossWorkers extends the determinism
// gate to the engine's cache states: for every worker count, a cold run
// and a warm re-run on the same session must match the workers=1 cold
// reference bitwise. Cached artifacts are pure values, so cache state —
// like worker count — must be output-invisible.
func TestEngineWarmCacheDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline sweep")
	}
	f, ds := trainFixtureForest(t)
	cfg := Config{
		NumUnivariate: 4,
		NumSamples:    2000,
		Sampling:      SamplingConfig{Strategy: EquiSize, K: 40},
		GAM:           GAMOptions{Lambdas: []float64{0.01, 1, 100}},
		Seed:          3,
	}
	runTwice := func() (cold, warm []float64, stats CacheStats) {
		s := NewExplainer(f)
		for i, out := range []*[]float64{&cold, &warm} {
			e, err := s.Explain(cfg)
			if err != nil {
				t.Fatalf("run %d: %v", i, err)
			}
			*out = e.Model.PredictBatch(ds.X[:100])
		}
		return cold, warm, s.CacheStats()
	}
	var ref []float64
	atWorkers(t, 1, func() {
		cold, warm, stats := runTwice()
		if stats.Hits == 0 {
			t.Fatal("warm run recorded no cache hits")
		}
		requireSameFloats(t, "warm vs cold predictions", cold, warm, 1)
		ref = cold
	})
	for _, w := range workerCounts()[1:] {
		atWorkers(t, w, func() {
			cold, warm, _ := runTwice()
			requireSameFloats(t, "cold predictions", ref, cold, w)
			requireSameFloats(t, "warm predictions", ref, warm, w)
		})
	}
}

// TestFamilySurrogatesDeterministicAcrossWorkers extends the
// determinism gate to the explainer-family registry (ISSUE 10): every
// first-party surrogate family must produce bitwise-identical
// predictions at workers ∈ {1, 2, NumCPU}, cold and warm. Warm runs
// exercise a different code path per family — gam refits over cached
// upstream artifacts while rules/smoother replay a cached fit-stage
// model — and both must be output-invisible.
func TestFamilySurrogatesDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline sweep")
	}
	f, ds := trainFixtureForest(t)
	rows := ds.X[:100]
	for _, fam := range []string{FamilyGAM, FamilyRules, FamilySmoother} {
		t.Run(fam, func(t *testing.T) {
			cfg := Config{
				Family:        fam,
				NumUnivariate: 4,
				NumSamples:    2000,
				Sampling:      SamplingConfig{Strategy: EquiSize, K: 40},
				GAM:           GAMOptions{Lambdas: []float64{0.01, 1, 100}},
				Seed:          3,
			}
			runTwice := func() (cold, warm []float64) {
				s := NewExplainer(f)
				for i, out := range []*[]float64{&cold, &warm} {
					e, err := s.Explain(cfg)
					if err != nil {
						t.Fatalf("run %d: %v", i, err)
					}
					if e.Family != fam {
						t.Fatalf("run %d: family %q, want %q (fallback must not fire here)", i, e.Family, fam)
					}
					preds, err := e.Surrogate.PredictBatch(context.Background(), rows)
					if err != nil {
						t.Fatalf("run %d: predict: %v", i, err)
					}
					*out = preds
				}
				return cold, warm
			}
			var ref []float64
			atWorkers(t, 1, func() {
				cold, warm := runTwice()
				requireSameFloats(t, fam+" warm vs cold predictions", cold, warm, 1)
				ref = cold
			})
			for _, w := range workerCounts()[1:] {
				atWorkers(t, w, func() {
					cold, warm := runTwice()
					requireSameFloats(t, fam+" cold predictions", ref, cold, w)
					requireSameFloats(t, fam+" warm predictions", ref, warm, w)
				})
			}
		})
	}
}

// TestFlatColdVsCompiledDeterministicAcrossWorkers extends the gate to
// the SoA compilation states (ISSUE 8): a freshly compiled flat forest, a
// fingerprint-cache-served one, and the quantized layout must all match
// the serial pointer walk bitwise at every worker count — compilation
// and cache state, like worker count, must be output-invisible.
func TestFlatColdVsCompiledDeterministicAcrossWorkers(t *testing.T) {
	f, ds := trainFixtureForest(t)
	rows := ds.X[:400]

	// Serial pointer-walk reference: base + trees in tree order per row.
	ref := make([]float64, len(rows))
	for i, x := range rows {
		ref[i] = f.Predict(x)
	}

	cold := forest.Compile(f)
	warm := forest.Compiled(f) // fingerprint-keyed cache entry
	quant, err := forest.CompileQuantized(f)
	if err != nil {
		t.Fatal(err)
	}
	flats := []struct {
		name string
		fl   *forest.Flat
	}{{"cold", cold}, {"compiled", warm}, {"quantized", quant}}

	var refImp []float64
	atWorkers(t, 1, func() { refImp = shap.GlobalImportance(f, ds.X[:100]) })

	for _, w := range workerCounts() {
		atWorkers(t, w, func() {
			requireSameFloats(t, "batch predictions", ref, f.PredictBatch(rows), w)
			for _, c := range flats {
				out := make([]float64, len(rows))
				c.fl.PredictBatchInto(rows, out)
				requireSameFloats(t, c.name+" flat predictions", ref, out, w)
			}
			requireSameFloats(t, "flat-backed shap importance",
				refImp, shap.GlobalImportance(f, ds.X[:100]), w)
		})
	}
}

// TestSampleSubsetsPerCallStreams pins the satellite fix: sampleRows /
// sampleFeatures draws are a pure function of the per-call seed, so
// repeated or reordered calls cannot perturb each other.
func TestSampleSubsetsPerCallStreams(t *testing.T) {
	s1 := par.SplitSeed(42, 0)
	s2 := par.SplitSeed(42, 1)
	if s1 == s2 {
		t.Fatal("SplitSeed produced identical streams for distinct indices")
	}
	a := rand.New(rand.NewSource(s1)).Perm(50)
	// Interleave a draw on another stream; stream s1 must be unaffected.
	_ = rand.New(rand.NewSource(s2)).Perm(50)
	b := rand.New(rand.NewSource(s1)).Perm(50)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("per-call stream is not self-contained")
	}
}
