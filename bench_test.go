package gef

// This file is the benchmark harness required by DESIGN.md: one
// testing.B benchmark per paper table and figure (each regenerates the
// corresponding result at quick scale through internal/experiments), plus
// ablation benchmarks for the design choices DESIGN.md calls out. Run
// with:
//
//	go test -bench=. -benchmem
//
// Paper-scale regeneration is the experiments binary's job:
//
//	go run ./cmd/experiments -exp all -scale paper
import (
	"fmt"
	"os"
	"testing"

	"gef/internal/dataset"
	"gef/internal/experiments"
	"gef/internal/featsel"
	"gef/internal/gbdt"
	"gef/internal/obs"
	"gef/internal/sampling"
	"gef/internal/shap"
)

// TestMain hosts the BENCH_*.json hooks. With BENCH_OBS_OUT=<path>, the
// pipeline metrics accumulated over the run (GCV evaluations, P-IRLS
// iterations, SHAP node visits, per-iteration boosting timings, ...) are
// dumped in the repo's BENCH_*.json shape, so benchmark runs emit
// comparable per-stage numbers:
//
//	BENCH_OBS_OUT=BENCH_obs.json go test -run '^$' -bench BenchmarkFullGEFPipeline -benchtime 1x .
//
// The other BENCH_* reports are env-gated tests in this package:
//
//	BENCH_PAR_OUT=BENCH_par.json       go test -count=1 -run TestWriteParBench .
//	BENCH_ENGINE_OUT=BENCH_engine.json go test -count=1 -run TestWriteEngineBench .
//	BENCH_FOREST_OUT=BENCH_forest.json go test -count=1 -run TestWriteForestBench .
//	BENCH_SERVE_OUT=BENCH_serve.json   go test -count=1 -run TestWriteServeBench .
//
// TestMain enforces the serve contract: asking for BENCH_SERVE_OUT and
// not producing a non-empty report (e.g. the generating test was
// filtered out) fails the run instead of silently skipping the serving
// numbers from the perf trajectory.
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_OBS_OUT"); path != "" {
		if err := obs.WriteBenchReport(path, "gef-bench"); err != nil {
			fmt.Fprintf(os.Stderr, "bench: writing %s: %v\n", path, err)
			if code == 0 {
				code = 1
			}
		}
	}
	if path := os.Getenv("BENCH_SERVE_OUT"); path != "" {
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			fmt.Fprintf(os.Stderr, "bench: BENCH_SERVE_OUT=%s requested but no report was written (run TestWriteServeBench)\n", path)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// benchExperiment runs one registered experiment at quick scale.
func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(experiments.Params{Scale: experiments.Quick, Seed: 1}); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// --- One benchmark per paper figure/table -------------------------------

func BenchmarkFig2ToyGAM(b *testing.B)               { benchExperiment(b, "fig2") }
func BenchmarkFig3Sampling(b *testing.B)             { benchExperiment(b, "fig3") }
func BenchmarkFig4Reconstruction(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig5SamplingSweep(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6InteractionDetection(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkTable1InteractionAP(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2Fidelity(b *testing.B)           { benchExperiment(b, "table2") }
func BenchmarkFig7FeatureGrid(b *testing.B)          { benchExperiment(b, "fig7") }
func BenchmarkFig8SamplingReal(b *testing.B)         { benchExperiment(b, "fig8") }
func BenchmarkFig9GlobalComparison(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10Census(b *testing.B)              { benchExperiment(b, "fig10") }
func BenchmarkFig11LocalGEF(b *testing.B)            { benchExperiment(b, "fig11") }
func BenchmarkFig12LocalSHAP(b *testing.B)           { benchExperiment(b, "fig12") }
func BenchmarkFig13LocalLIME(b *testing.B)           { benchExperiment(b, "fig13") }

// --- Ablations -----------------------------------------------------------

// Histogram split finding (MaxBins 255) vs near-exact split finding
// (every distinct value its own bin) — DESIGN.md ablation.
func BenchmarkAblationSplitFindingHistogram(b *testing.B) {
	benchTrain(b, gbdt.Params{NumTrees: 20, NumLeaves: 16, MaxBins: 255, Seed: 1})
}

func BenchmarkAblationSplitFindingExact(b *testing.B) {
	benchTrain(b, gbdt.Params{NumTrees: 20, NumLeaves: 16, MaxBins: 60000, Seed: 1})
}

func benchTrain(b *testing.B, p gbdt.Params) {
	ds := dataset.GPrime(4000, 0.1, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gbdt.Train(ds, p); err != nil {
			b.Fatal(err)
		}
	}
}

// Gain-Path O(|T|) vs H-Stat O(N·|F'|²) interaction scoring — the cost
// asymmetry the paper argues in §4.2.
func BenchmarkAblationInteractionCostGainPath(b *testing.B) {
	f, sample := interactionFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := featsel.RankInteractions(f, []int{0, 1, 2, 3, 4}, featsel.GainPath, sample); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInteractionCostHStat(b *testing.B) {
	f, sample := interactionFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := featsel.RankInteractions(f, []int{0, 1, 2, 3, 4}, featsel.HStat, sample); err != nil {
			b.Fatal(err)
		}
	}
}

func interactionFixture(b *testing.B) (forestT, [][]float64) {
	b.Helper()
	ds := dataset.GDoublePrime(3000, 0.1, 9, [][2]int{{0, 1}, {2, 3}})
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 60, NumLeaves: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return f, ds.X[:80]
}

type forestT = *Forest

// Sampling-domain construction cost per strategy (midpoints vs quantiles
// vs 1-D k-means, DESIGN.md's correctness/cost ablation).
func BenchmarkAblationDomainAllThresholds(b *testing.B) { benchDomain(b, sampling.AllThresholds) }
func BenchmarkAblationDomainKQuantile(b *testing.B)     { benchDomain(b, sampling.KQuantile) }
func BenchmarkAblationDomainKMeans(b *testing.B)        { benchDomain(b, sampling.KMeans) }
func BenchmarkAblationDomainEquiSize(b *testing.B)      { benchDomain(b, sampling.EquiSize) }

func benchDomain(b *testing.B, s sampling.Strategy) {
	ds := dataset.GPrime(4000, 0.1, 11)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 120, NumLeaves: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.BuildDomains(f, []int{0, 1, 2, 3, 4},
			sampling.Config{Strategy: s, K: 64, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the hot paths ----------------------------------

func BenchmarkForestPredict(b *testing.B) {
	ds := dataset.GPrime(2000, 0.1, 13)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 200, NumLeaves: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := ds.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.RawPredict(x)
	}
}

func BenchmarkTreeSHAPPerInstance(b *testing.B) {
	ds := dataset.GPrime(2000, 0.1, 13)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 100, NumLeaves: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := ds.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = shap.Values(f, x)
	}
}

func BenchmarkTreeSHAPInterventional(b *testing.B) {
	ds := dataset.GPrime(2000, 0.1, 13)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 100, NumLeaves: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := ds.X[0]
	background := ds.X[1:51]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = shap.InterventionalValues(f, x, background)
	}
}

// Extension benchmarks: the extra-* experiments at quick scale.
func BenchmarkExtraSurrogates(b *testing.B)   { benchExperiment(b, "extra-surrogates") }
func BenchmarkExtraAutoExplain(b *testing.B)  { benchExperiment(b, "extra-auto") }
func BenchmarkExtraRandomForest(b *testing.B) { benchExperiment(b, "extra-rf") }

func BenchmarkGAMFit(b *testing.B) {
	ds := dataset.GPrime(8000, 0.1, 17)
	spec := GAMSpec{Terms: []TermSpec{
		{Kind: SplineTerm, Feature: 0}, {Kind: SplineTerm, Feature: 1},
		{Kind: SplineTerm, Feature: 2}, {Kind: SplineTerm, Feature: 3},
		{Kind: SplineTerm, Feature: 4},
	}}
	opts := GAMOptions{Lambdas: []float64{0.01, 1, 100}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitGAM(spec, ds.X, ds.Y, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullGEFPipeline(b *testing.B) {
	ds := dataset.GPrime(4000, 0.1, 19)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 100, NumLeaves: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		NumUnivariate: 5,
		NumSamples:    8000,
		Sampling:      SamplingConfig{Strategy: EquiSize, K: 100},
		GAM:           GAMOptions{Lambdas: []float64{0.01, 1, 100}},
		Seed:          3,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Explain(f, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Telemetry overhead -------------------------------------------------

// BenchmarkFlightRecorderOverhead measures the cost Span.End pays to
// store a record in the always-on flight recorder. The result feeds the
// obs.flight_record_ns gauge in BENCH_obs.json; the <100 ns/span budget
// is gated by TestRecorderOverheadGate in internal/obs.
// Each op records a 1024-span batch so the per-span figure stays stable
// even under the BENCH_obs.json refresh's -benchtime 1x.
func BenchmarkFlightRecorderOverhead(b *testing.B) {
	r := obs.NewRecorder(obs.DefaultFlightCapacity)
	sp := obs.SpanData{Name: "bench.span"}
	const batch = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			r.RecordSpan(&sp)
		}
	}
	b.StopTimer()
	obs.SetGauge("obs.flight_record_ns", float64(b.Elapsed().Nanoseconds())/float64(b.N*batch))
}

// BenchmarkWritePrometheus1k measures the /metrics exposition cost at
// serving scale: 1000 labeled series rendered to the text format. The
// per-scrape cost lands in the obs.prom_write_1k_us gauge.
func BenchmarkWritePrometheus1k(b *testing.B) {
	reg := obs.NewRegistry()
	vec := reg.CounterVec("bench.series", "shard", "stage")
	stages := []string{"featsel", "domains", "sample", "fit"}
	for s := 0; s < 250; s++ {
		for _, st := range stages {
			vec.With(fmt.Sprintf("s%03d", s), st).Inc()
		}
	}
	var sink countingWriter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = 0
		if err := reg.WritePrometheus(&sink); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("exposition wrote nothing")
	}
	obs.SetGauge("obs.prom_write_1k_us", float64(b.Elapsed().Microseconds())/float64(b.N))
}

// countingWriter discards output while counting bytes, so the benchmark
// measures encoding cost rather than I/O.
type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}
