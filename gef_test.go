package gef

import (
	"math"
	"path/filepath"
	"testing"

	"gef/internal/dataset"
)

// TestPublicAPIEndToEnd exercises the documented workflow: train, save,
// load, explain, inspect terms, compare with SHAP and LIME.
func TestPublicAPIEndToEnd(t *testing.T) {
	ds := dataset.GPrime(3000, 0.1, 41)
	train, valid := ds.Split(0.25, 1)

	f, rep, err := TrainForestValid(train, valid, ForestParams{
		NumTrees: 80, NumLeaves: 16, LearningRate: 0.1,
		EarlyStoppingRounds: 15, Seed: 1,
	})
	if err != nil {
		t.Fatalf("TrainForestValid: %v", err)
	}
	if rep.BestIteration < 0 {
		t.Fatal("no best iteration recorded")
	}

	// Round-trip through the hand-off format.
	path := filepath.Join(t.TempDir(), "forest.json")
	if err := SaveForest(f, path); err != nil {
		t.Fatalf("SaveForest: %v", err)
	}
	loaded, err := LoadForest(path)
	if err != nil {
		t.Fatalf("LoadForest: %v", err)
	}

	e, err := Explain(loaded, Config{
		NumUnivariate: 5,
		NumSamples:    6000,
		Sampling:      SamplingConfig{Strategy: EquiSize, K: 100},
		GAM:           GAMOptions{Lambdas: []float64{0.01, 1, 100}},
		Seed:          2,
	})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if e.Fidelity.R2 < 0.9 {
		t.Errorf("fidelity R² = %v", e.Fidelity.R2)
	}

	// Term curves are available for every univariate term.
	for i := 0; i < e.Model.NumTerms(); i++ {
		lo, hi := e.Model.TermRange(i)
		c, err := e.Model.TermCurve(i, []float64{lo, (lo + hi) / 2, hi}, 0.95)
		if err != nil {
			t.Fatalf("TermCurve(%d): %v", i, err)
		}
		if len(c.Y) != 3 {
			t.Fatalf("curve length %d", len(c.Y))
		}
	}

	// Local explanation and SHAP agree on the raw prediction they
	// decompose.
	x := []float64{0.3, 0.6, 0.7, 0.1, 0.5}
	le := e.ExplainInstance(x)
	phi, base := ShapValues(loaded, x)
	var shapSum float64 = base
	for _, v := range phi {
		shapSum += v
	}
	if math.Abs(shapSum-loaded.RawPredict(x)) > 1e-8 {
		t.Errorf("SHAP reconstruction = %v, raw = %v", shapSum, loaded.RawPredict(x))
	}
	if math.Abs(le.ForestOutput-loaded.Predict(x)) > 1e-12 {
		t.Errorf("local explanation forest output mismatch")
	}

	// LIME runs against the forest predict function.
	lexp, err := ExplainLIME(loaded.Predict, e.Train.X[:200], x, LimeConfig{NumSamples: 400, Seed: 3})
	if err != nil {
		t.Fatalf("ExplainLIME: %v", err)
	}
	if len(lexp.Top(3)) != 3 {
		t.Error("LIME top-3 unavailable")
	}
}

func TestPublicFeatureAndInteractionHelpers(t *testing.T) {
	ds := dataset.GPrime(2000, 0.1, 43)
	f, err := TrainForest(ds, ForestParams{NumTrees: 40, NumLeaves: 16, Seed: 1})
	if err != nil {
		t.Fatalf("TrainForest: %v", err)
	}
	top := TopFeatures(f, 3)
	if len(top) != 3 {
		t.Fatalf("TopFeatures = %v", top)
	}
	pairs, err := RankInteractions(f, top, GainPath, nil)
	if err != nil {
		t.Fatalf("RankInteractions: %v", err)
	}
	if len(pairs) != 3 {
		t.Errorf("got %d pairs for 3 features, want 3", len(pairs))
	}
}

func TestPublicRandomForest(t *testing.T) {
	ds := dataset.GPrime(1500, 0.1, 47)
	f, err := TrainRandomForest(ds, RandomForestParams{NumTrees: 30, Seed: 1})
	if err != nil {
		t.Fatalf("TrainRandomForest: %v", err)
	}
	// The future-work claim: GEF applies to RF unchanged.
	e, err := Explain(f, Config{
		NumUnivariate: 5,
		NumSamples:    4000,
		Sampling:      SamplingConfig{Strategy: KQuantile, K: 60},
		GAM:           GAMOptions{Lambdas: []float64{0.01, 1, 100}},
		Seed:          2,
	})
	if err != nil {
		t.Fatalf("Explain on RF: %v", err)
	}
	if e.Fidelity.R2 < 0.8 {
		t.Errorf("RF fidelity R² = %v", e.Fidelity.R2)
	}
}

func TestPublicDistillAndPDP(t *testing.T) {
	ds := dataset.GPrime(2000, 0.1, 51)
	f, err := TrainForest(ds, ForestParams{NumTrees: 50, NumLeaves: 16, Seed: 1})
	if err != nil {
		t.Fatalf("TrainForest: %v", err)
	}
	dt, err := DistillTree(f, DistillConfig{MaxLeaves: 32, NumSamples: 5000, Seed: 1})
	if err != nil {
		t.Fatalf("DistillTree: %v", err)
	}
	if dt.R2 < 0.4 {
		t.Errorf("distilled tree R² = %v", dt.R2)
	}
	rules := dt.Rules(f.FeatureName)
	if len(rules) == 0 {
		t.Error("no rules extracted")
	}
	grid := []float64{0.1, 0.5, 0.9}
	pd := PartialDependence(f, ds.X[:50], 2, grid)
	if len(pd) != 3 {
		t.Fatalf("PD length %d", len(pd))
	}
	// g′'s x₃ component is an increasing sigmoid.
	if pd[2] <= pd[0] {
		t.Errorf("PD of the sigmoid feature not increasing: %v", pd)
	}
	ice := ICECurves(f, ds.X[:20], 2, grid)
	if len(ice) != 20 {
		t.Fatalf("ICE rows %d", len(ice))
	}
	h := HStatistic(f, ds.X[:40], 0, 1)
	if h < 0 || math.IsNaN(h) {
		t.Errorf("H² = %v", h)
	}
}

func TestPublicModelSerialization(t *testing.T) {
	ds := dataset.GPrime(1500, 0.1, 53)
	f, err := TrainForest(ds, ForestParams{NumTrees: 40, NumLeaves: 16, Seed: 1})
	if err != nil {
		t.Fatalf("TrainForest: %v", err)
	}
	e, err := Explain(f, Config{
		NumUnivariate: 3, NumSamples: 4000,
		Sampling: SamplingConfig{Strategy: EquiSize, K: 100},
		GAM:      GAMOptions{Lambdas: []float64{0.01, 1, 100}},
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModel(e.Model, path, true); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	m, err := LoadModel(path)
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	x := ds.X[0]
	if m.Predict(x) != e.Model.Predict(x) {
		t.Error("reloaded model predicts differently")
	}
}

func TestPublicInterventionalShap(t *testing.T) {
	ds := dataset.GPrime(800, 0.1, 57)
	f, err := TrainForest(ds, ForestParams{NumTrees: 30, NumLeaves: 8, Seed: 1})
	if err != nil {
		t.Fatalf("TrainForest: %v", err)
	}
	x := ds.X[0]
	phi, base := InterventionalShapValues(f, x, ds.X[1:41])
	sum := base
	for _, v := range phi {
		sum += v
	}
	if math.Abs(sum-f.RawPredict(x)) > 1e-8 {
		t.Errorf("interventional reconstruction %v != raw %v", sum, f.RawPredict(x))
	}
}

func TestPublicFitGAMDirect(t *testing.T) {
	ds := dataset.Fig2Toy(1500, 0.05, 49)
	m, err := FitGAM(GAMSpec{Terms: []TermSpec{
		{Kind: SplineTerm, Feature: 0},
		{Kind: SplineTerm, Feature: 1, NumBasis: 14},
	}}, ds.X, ds.Y, GAMOptions{Lambdas: []float64{0.01, 1, 100}})
	if err != nil {
		t.Fatalf("FitGAM: %v", err)
	}
	if m.NumTerms() != 2 {
		t.Errorf("terms = %d", m.NumTerms())
	}
}
