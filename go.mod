module gef

go 1.22
