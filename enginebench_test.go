package gef

// BENCH_engine.json generator: the same AutoExplain search run twice on
// one explanation session — cold cache, then warm — with wall times and
// the engine's per-stage artifact-cache counters. Regenerate the
// checked-in report with:
//
//	BENCH_ENGINE_OUT=BENCH_engine.json go test -run TestWriteEngineBench .
//
// The warm run must both be measurably cheaper and record cache hits on
// every cacheable stage; the test enforces the hits (the acceptance
// criterion of the staged engine), while the ratio is recorded for perf
// PRs to diff.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"gef/internal/dataset"
	"gef/internal/gbdt"
)

// engineBenchReport is the BENCH_engine.json shape.
type engineBenchReport struct {
	Name        string  `json:"name"`
	Go          string  `json:"go"`
	OS          string  `json:"os"`
	Arch        string  `json:"arch"`
	Cores       int     `json:"cores"`
	ColdMs      float64 `json:"cold_ms"`
	WarmMs      float64 `json:"warm_ms"`
	WarmSpeedup float64 `json:"warm_speedup"` // cold / warm
	Cache       struct {
		Hits    int64                       `json:"hits"`
		Misses  int64                       `json:"misses"`
		Entries int                         `json:"entries"`
		Bytes   int64                       `json:"bytes"`
		Stages  map[string]map[string]int64 `json:"stages"`
	} `json:"cache"`
}

// runEngineBench trains the fixture forest and runs the AutoExplain
// workload twice on one session, returning both wall times and the
// session's final cache statistics.
func runEngineBench() (cold, warm time.Duration, stats CacheStats, err error) {
	ds := dataset.GPrime(4000, 0.1, 19)
	f, terr := gbdt.Train(ds, gbdt.Params{NumTrees: 100, NumLeaves: 16, Seed: 1})
	if terr != nil {
		return 0, 0, stats, fmt.Errorf("training forest: %w", terr)
	}
	acfg := AutoConfig{
		Base: Config{
			NumSamples: 8000,
			Sampling:   SamplingConfig{Strategy: EquiSize, K: 100},
			GAM:        GAMOptions{Lambdas: []float64{0.01, 1, 100}},
			Seed:       3,
		},
		MaxUnivariate:   5,
		MaxInteractions: 1,
	}
	s := NewExplainer(f)
	for i, out := range []*time.Duration{&cold, &warm} {
		start := time.Now()
		if _, _, err := s.AutoExplain(acfg); err != nil {
			return 0, 0, stats, fmt.Errorf("AutoExplain run %d: %w", i, err)
		}
		*out = time.Since(start)
	}
	return cold, warm, s.CacheStats(), nil
}

// TestWriteEngineBench regenerates BENCH_engine.json; it is gated
// behind BENCH_ENGINE_OUT so regular test runs skip the double search.
func TestWriteEngineBench(t *testing.T) {
	path := os.Getenv("BENCH_ENGINE_OUT")
	if path == "" {
		t.Skip("set BENCH_ENGINE_OUT=<path> to generate the cold vs warm AutoExplain report")
	}
	cold, warm, stats, err := runEngineBench()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits == 0 {
		t.Fatal("warm AutoExplain recorded no cache hits — the engine cache is not engaging")
	}

	rep := engineBenchReport{
		Name:   "gef-engine-bench",
		Go:     runtime.Version(),
		OS:     runtime.GOOS,
		Arch:   runtime.GOARCH,
		Cores:  runtime.NumCPU(),
		ColdMs: float64(cold) / float64(time.Millisecond),
		WarmMs: float64(warm) / float64(time.Millisecond),
	}
	if rep.WarmMs > 0 {
		rep.WarmSpeedup = rep.ColdMs / rep.WarmMs
	}
	rep.Cache.Hits = stats.Hits
	rep.Cache.Misses = stats.Misses
	rep.Cache.Entries = stats.Entries
	rep.Cache.Bytes = stats.Bytes
	rep.Cache.Stages = make(map[string]map[string]int64, len(stats.Stages))
	for name, st := range stats.Stages {
		rep.Cache.Stages[name] = map[string]int64{"hits": st.Hits, "misses": st.Misses}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
	t.Logf("cold %.0fms vs warm %.0fms → %.2fx; %s", rep.ColdMs, rep.WarmMs, rep.WarmSpeedup, stats)
}

// TestEngineWarmAutoExplainCheaper is the ungated acceptance assertion:
// a warm session serves every cacheable stage from memory (hits > 0)
// when AutoExplain repeats. Wall-clock is asserted only via the cache
// counters — timing itself is too noisy for CI.
func TestEngineWarmAutoExplainCheaper(t *testing.T) {
	if testing.Short() {
		t.Skip("double AutoExplain")
	}
	ds := dataset.GPrime(1200, 0.1, 19)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 40, NumLeaves: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	acfg := AutoConfig{
		Base: Config{
			NumSamples: 2000,
			Sampling:   SamplingConfig{Strategy: EquiSize, K: 40},
			GAM:        GAMOptions{Lambdas: []float64{0.1, 10}},
			Seed:       3,
		},
		MaxUnivariate:   4,
		MaxInteractions: 1,
	}
	s := NewExplainer(f)
	if _, _, err := s.AutoExplain(acfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AutoExplain(acfg); err != nil {
		t.Fatal(err)
	}
	stats := s.CacheStats()
	if stats.Hits == 0 {
		t.Fatalf("warm AutoExplain recorded no cache hits: %s", stats)
	}
	for _, name := range []string{"stats", "featsel", "domains", "sample", "interactions"} {
		if stats.Stages[name].Hits == 0 {
			t.Errorf("stage %q never hit on the warm search: %s", name, stats)
		}
	}
}
