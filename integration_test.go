package gef

// Cross-module integration tests: each exercises a full paper workflow
// through the public API, combining modules that the per-package unit
// tests cover in isolation.

import (
	"math"
	"testing"

	"gef/internal/dataset"
	"gef/internal/stats"
)

// TestIntegrationInteractionPipeline runs the complete §4 workflow on g″:
// train on data with injected interactions, detect them with every
// strategy, explain with tensor terms, and verify the explanation's
// fidelity and structure.
func TestIntegrationInteractionPipeline(t *testing.T) {
	truth := [][2]int{{0, 1}, {2, 4}, {1, 3}}
	ds := dataset.GDoublePrime(5000, 0.1, 71, truth)
	train, test := ds.Split(0.2, 1)
	f, err := TrainForest(train, ForestParams{NumTrees: 120, NumLeaves: 16, LearningRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("TrainForest: %v", err)
	}

	// Every interaction strategy must produce a full ranking of the 10
	// candidate pairs.
	features := TopFeatures(f, 5)
	for _, s := range []InteractionStrategy{PairGain, CountPath, GainPath, HStat} {
		sample := train.X[:60]
		pairs, err := RankInteractions(f, features, s, sample)
		if err != nil {
			t.Fatalf("RankInteractions(%s): %v", s, err)
		}
		if len(pairs) != 10 {
			t.Fatalf("%s ranked %d pairs, want 10", s, len(pairs))
		}
		for i := 1; i < len(pairs); i++ {
			if pairs[i].Score > pairs[i-1].Score+1e-12 {
				t.Fatalf("%s ranking not sorted", s)
			}
		}
	}

	// Explain with the H-Stat strategy end-to-end (the most expensive
	// path, including PD computation over D*).
	e, err := Explain(f, Config{
		NumUnivariate:       5,
		NumInteractions:     3,
		InteractionStrategy: HStat,
		HStatSample:         50,
		NumSamples:          6000,
		Sampling:            SamplingConfig{Strategy: KQuantile, K: 120},
		GAM:                 GAMOptions{Lambdas: []float64{0.01, 1, 100}},
		Seed:                3,
	})
	if err != nil {
		t.Fatalf("Explain with HStat: %v", err)
	}
	if len(e.Pairs) != 3 {
		t.Fatalf("selected %d pairs, want 3", len(e.Pairs))
	}
	row := e.EvaluateOn(test)
	if row.GamVsForest < 0.9 {
		t.Errorf("Γ vs T R² = %v on original data", row.GamVsForest)
	}
}

// TestIntegrationSurrogateComparison pits the three surrogates the
// repository offers — GEF GAM, distilled tree, LIME local ridge — against
// the same forest, verifying the expected fidelity ordering at matched
// interpretability budgets: GAM > small tree globally.
func TestIntegrationSurrogateComparison(t *testing.T) {
	ds := dataset.GPrime(4000, 0.1, 73)
	f, err := TrainForest(ds, ForestParams{NumTrees: 100, NumLeaves: 16, Seed: 1})
	if err != nil {
		t.Fatalf("TrainForest: %v", err)
	}
	e, err := Explain(f, Config{
		NumUnivariate: 5, NumSamples: 8000,
		Sampling: SamplingConfig{Strategy: EquiSize, K: 150},
		GAM:      GAMOptions{Lambdas: []float64{0.01, 1, 100}},
		Seed:     5,
	})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	dt, err := DistillTree(f, DistillConfig{MaxLeaves: 16, NumSamples: 8000, Seed: 5})
	if err != nil {
		t.Fatalf("DistillTree: %v", err)
	}
	if e.Fidelity.R2 <= dt.R2 {
		t.Errorf("GAM fidelity (%v) should exceed a 16-leaf tree's (%v) on a smooth additive target",
			e.Fidelity.R2, dt.R2)
	}
}

// TestIntegrationExplanationConsistency checks the paper's §5.3 claim
// quantitatively: GEF term values, SHAP attributions and LIME weights
// must agree in *ranking* on which features matter for an instance whose
// prediction is dominated by one feature.
func TestIntegrationExplanationConsistency(t *testing.T) {
	ds := dataset.GPrime(4000, 0.1, 79)
	f, err := TrainForest(ds, ForestParams{NumTrees: 100, NumLeaves: 16, Seed: 1})
	if err != nil {
		t.Fatalf("TrainForest: %v", err)
	}
	e, err := Explain(f, Config{
		NumUnivariate: 5, NumSamples: 8000,
		Sampling: SamplingConfig{Strategy: EquiSize, K: 150},
		GAM:      GAMOptions{Lambdas: []float64{0.01, 1, 100}},
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}

	// Average |contribution| per feature over a sample, per method.
	sample := ds.X[:60]
	gefImp := make([]float64, 5)
	shapImp := make([]float64, 5)
	for _, x := range sample {
		le := e.ExplainInstance(x)
		for _, c := range le.Contributions {
			gefImp[c.Spec.Feature] += math.Abs(c.Value)
		}
		phi, _ := ShapValues(f, x)
		for j, v := range phi {
			shapImp[j] += math.Abs(v)
		}
	}
	// Spearman rank agreement between GEF and SHAP global importance.
	if rho := stats.SpearmanCorrelation(gefImp, shapImp); rho < 0.6 {
		t.Errorf("GEF/SHAP importance rank correlation %v, want ≥ 0.6", rho)
	}
}

// TestIntegrationStagedTruncationConsistency ties the forest utilities
// together: truncating a boosted forest at stage k must agree with the
// staged predictions, and explanation of a truncated forest must work.
func TestIntegrationStagedTruncationConsistency(t *testing.T) {
	ds := dataset.GPrime(2000, 0.1, 83)
	f, err := TrainForest(ds, ForestParams{NumTrees: 40, NumLeaves: 8, Seed: 1})
	if err != nil {
		t.Fatalf("TrainForest: %v", err)
	}
	x := ds.X[0]
	staged := f.StagedPredict(x)
	half, err := f.Truncate(20)
	if err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if half.RawPredict(x) != staged[19] {
		t.Errorf("truncated prediction %v != staged[19] %v", half.RawPredict(x), staged[19])
	}
	// A truncated forest is a valid explanation target.
	if _, err := Explain(half, Config{
		NumUnivariate: 3, NumSamples: 3000,
		Sampling: SamplingConfig{Strategy: AllThresholds},
		GAM:      GAMOptions{Lambdas: []float64{1, 100}},
		Seed:     1,
	}); err != nil {
		t.Errorf("Explain on truncated forest: %v", err)
	}
}
