// Command geflint runs GEF's domain lint suite (internal/analysis +
// internal/analysis/checks) over the module. It is stdlib-only: it
// parses and type-checks every package from source via go/parser and
// go/types and needs no network, no export data and no external
// analysis framework.
//
// Usage:
//
//	geflint [-json] [-checks c1,c2] [-workers n] [-bench file] [patterns ...]
//	geflint -list    enumerate registered checks
//
// Exit codes form the CI contract used by verify.sh: 0 means clean,
// 1 means diagnostics were reported, 2 means the tool itself failed
// (bad flags, unparsable or untypeable source, or an analyzer panic —
// a panic is an error, never a silently skipped package).
//
// -bench writes a small JSON gauge (wall time, package count, raw
// finding count per analyzer) that verify.sh archives as
// BENCH_lint.json, so lint-pass regressions show up in review like any
// other performance artifact.
//
// Findings are suppressed in source with a trailing or preceding
//
//	//lint:ignore <check> <reason>
//
// or for a whole file (generated sources, fixtures) with
//
//	//lint:file-ignore <check> <reason>
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"gef/internal/analysis"
	"gef/internal/analysis/checks"
	"gef/internal/par"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// lintBench is the BENCH_lint.json shape: one gauge per run of the full
// suite, raw (pre-suppression) finding counts per analyzer.
type lintBench struct {
	Name          string         `json:"name"`
	Go            string         `json:"go"`
	OS            string         `json:"os"`
	Arch          string         `json:"arch"`
	Workers       int            `json:"workers"`
	Packages      int            `json:"packages"`
	Analyzers     int            `json:"analyzers"`
	LoadMs        float64        `json:"load_ms"`
	AnalyzeMs     float64        `json:"analyze_ms"`
	GeflintFullMs float64        `json:"geflint_full_ms"`
	Findings      map[string]int `json:"findings"`
	Suppressed    int            `json:"suppressed"`
	Diagnostics   int            `json:"diagnostics"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("geflint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list registered checks and exit")
	sel := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	workers := fs.Int("workers", 0, "parallel analysis workers (0 = GOMAXPROCS)")
	bench := fs.String("bench", "", "write a JSON timing/finding gauge to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range checks.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, ok := checks.ByName(*sel)
	if !ok {
		fmt.Fprintf(os.Stderr, "geflint: unknown check in -checks=%q (see geflint -list)\n", *sel)
		return 2
	}
	par.SetWorkers(*workers)

	start := time.Now()
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "geflint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geflint:", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geflint:", err)
		return 2
	}
	loaded := time.Now()

	diags, stats, err := analysis.Run(context.Background(), pkgs, analyzers)
	if err != nil {
		// Analyzer panics land here: loud, named, exit 2 — verify.sh
		// treats this as a broken tool, not a clean run.
		fmt.Fprintln(os.Stderr, "geflint:", err)
		return 2
	}
	done := time.Now()

	if *bench != "" {
		b := lintBench{
			Name:          "gef-lint-bench",
			Go:            runtime.Version(),
			OS:            runtime.GOOS,
			Arch:          runtime.GOARCH,
			Workers:       par.Workers(),
			Packages:      stats.Packages,
			Analyzers:     stats.Analyzers,
			LoadMs:        float64(loaded.Sub(start).Microseconds()) / 1000,
			AnalyzeMs:     float64(done.Sub(loaded).Microseconds()) / 1000,
			GeflintFullMs: float64(done.Sub(start).Microseconds()) / 1000,
			Findings:      stats.Raw,
			Suppressed:    stats.Suppressed,
			Diagnostics:   len(diags),
		}
		if err := writeBench(*bench, &b); err != nil {
			fmt.Fprintln(os.Stderr, "geflint:", err)
			return 2
		}
	}

	if *jsonOut {
		err = analysis.WriteJSON(os.Stdout, diags, loader.ModuleRoot)
	} else {
		err = analysis.WriteText(os.Stdout, diags, loader.ModuleRoot)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "geflint:", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "geflint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func writeBench(path string, b *lintBench) error {
	// Keys of Findings are emitted sorted by encoding/json already;
	// nothing else in the gauge is order-sensitive.
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(b)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
