// Command geflint runs GEF's domain lint suite (internal/analysis +
// internal/analysis/checks) over the module. It is stdlib-only: it
// parses and type-checks every package from source via go/parser and
// go/types and needs no network, no export data and no external
// analysis framework.
//
// Usage:
//
//	geflint [-json] [-checks c1,c2] [patterns ...]   lint packages (default ./...)
//	geflint -list                                    enumerate registered checks
//
// Exit codes form the CI contract used by verify.sh: 0 means clean,
// 1 means diagnostics were reported, 2 means the tool itself failed
// (bad flags, unparsable or untypeable source).
//
// Findings are suppressed in source with a trailing or preceding
//
//	//lint:ignore <check> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"gef/internal/analysis"
	"gef/internal/analysis/checks"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("geflint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list registered checks and exit")
	sel := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range checks.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, ok := checks.ByName(*sel)
	if !ok {
		fmt.Fprintf(os.Stderr, "geflint: unknown check in -checks=%q (see geflint -list)\n", *sel)
		return 2
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "geflint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geflint:", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geflint:", err)
		return 2
	}

	diags := analysis.Run(pkgs, analyzers)
	if *jsonOut {
		err = analysis.WriteJSON(os.Stdout, diags, loader.ModuleRoot)
	} else {
		err = analysis.WriteText(os.Stdout, diags, loader.ModuleRoot)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "geflint:", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "geflint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
