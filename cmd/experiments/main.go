// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all                 # every experiment, quick scale
//	experiments -exp fig5 -scale paper   # one experiment at paper scale
//	experiments -exp table1,table2 -out results/  # also dump CSVs
//
// Each experiment prints the same rows/series the paper reports; CSV
// files (one per table and per plotted series) land in -out when given.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gef/internal/core"
	"gef/internal/experiments"
	"gef/internal/obs"
	"gef/internal/par"
	"gef/internal/robust"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids (fig2..fig13, table1, table2) or 'all'")
		scale   = flag.String("scale", "quick", "experiment scale: quick or paper")
		family  = flag.String("family", "", "comma-separated explainer families for family-aware experiments (extra-families); empty = all registered")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "directory for CSV dumps (optional)")
		list    = flag.Bool("list", false, "list available experiments and exit")
		workers = flag.Int("workers", 0, "worker goroutines for parallel stages (0 = GOMAXPROCS); results are identical at any count")
		timeout = flag.Duration("timeout", 0, "abort the experiment run after this duration (0 = no deadline), e.g. 10m")
	)
	var ocli obs.CLI
	ocli.RegisterFlags(flag.CommandLine)
	flag.Parse()
	par.SetWorkers(*workers)

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	p := experiments.Params{
		Scale:  experiments.Scale(*scale),
		Seed:   *seed,
		Family: *family,
		OutDir: *out,
	}
	if p.Scale != experiments.Quick && p.Scale != experiments.Paper {
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (want quick or paper)\n", *scale)
		os.Exit(2)
	}

	stopObs, err := ocli.Start("experiments")
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer stopObs()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	p.Ctx = ctx

	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		// One span per experiment; the stage spans the pipeline opens
		// while it runs land in the same trace, so the experiment table
		// and the trace report the same costs. StartAlways keeps the
		// wall clock live even with tracing off, for the summary line.
		_, sp := obs.StartAlways(ctx, "experiment."+id,
			obs.Str("scale", string(p.Scale)), obs.I64("seed", p.Seed))
		r, err := e.Run(p)
		elapsed := sp.End()
		if err != nil {
			// Persist the flight recorder before exiting: os.Exit skips the
			// deferred obs cleanup, and a failed experiment is exactly what
			// the ring is for.
			if path, derr := ocli.DumpFlight("experiments"); derr != nil {
				fmt.Fprintf(os.Stderr, "experiments: flight dump failed: %v\n", derr)
			} else {
				fmt.Fprintf(os.Stderr, "experiments: flight recorder dumped to %s (inspect with gef -flight-dump %s)\n", path, path)
			}
			if err = robust.CtxErr(err); errors.Is(err, robust.ErrDeadline) {
				fmt.Fprintf(os.Stderr, "experiments: %s failed: %v (deadline hit — raise -timeout or use -scale quick)\n", id, err)
			} else {
				fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", id, err)
			}
			os.Exit(1)
		}
		if err := r.Render(os.Stdout, *out); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: rendering %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, elapsed.Round(time.Millisecond))
	}
	if ocli.Verbose {
		// Experiments sharing a forest/config reuse staged pipeline
		// artifacts; the summary shows what the engine cache served.
		fmt.Fprintf(os.Stderr, "experiments: %s\n", core.SharedEngine().CacheStats())
	}
}
