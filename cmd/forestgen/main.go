// Command forestgen trains a GBDT forest on a CSV dataset (or a built-in
// generator) and serializes it to JSON — the hand-off artifact of the
// paper's privacy scenario, where only the forest (never the data)
// crosses the trust boundary.
//
// Usage:
//
//	forestgen -data train.csv -task regression -out forest.json
//	forestgen -gen gprime -rows 8000 -out forest.json
//	forestgen -gen census -trees 300 -out census_forest.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gbdt"
	"gef/internal/obs"
	"gef/internal/par"
	"gef/internal/robust"
	"gef/internal/stats"
)

func main() {
	var (
		data    = flag.String("data", "", "CSV file with a header row and the target in the last column")
		task    = flag.String("task", "regression", "task for -data: regression or classification")
		gen     = flag.String("gen", "", "built-in generator: gprime, sigmoid, superconductivity, census")
		rows    = flag.Int("rows", 8000, "rows for built-in generators")
		trees   = flag.Int("trees", 200, "boosting rounds")
		leaves  = flag.Int("leaves", 32, "max leaves per tree")
		lr      = flag.Float64("lr", 0.1, "learning rate")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "forest.json", "output path for the serialized forest")
		workers = flag.Int("workers", 0, "worker goroutines for parallel stages (0 = GOMAXPROCS); results are identical at any count")
		timeout = flag.Duration("timeout", 0, "abort training after this duration (0 = no deadline), e.g. 90s or 5m")
	)
	var ocli obs.CLI
	ocli.RegisterFlags(flag.CommandLine)
	flag.Parse()
	par.SetWorkers(*workers)

	stopObs, err := ocli.Start("forestgen")
	if err != nil {
		fmt.Fprintf(os.Stderr, "forestgen: %v\n", err)
		os.Exit(1)
	}
	defer stopObs()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	ds, err := loadData(*data, *task, *gen, *rows, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "forestgen: %v\n", err)
		os.Exit(2)
	}

	train, valid := ds.Split(0.25, *seed)
	params := gbdt.Params{
		NumTrees: *trees, NumLeaves: *leaves, LearningRate: *lr,
		EarlyStoppingRounds: 30, Seed: *seed,
	}
	if ds.Task == dataset.Classification {
		params.Objective = forest.BinaryLogistic
	}
	f, rep, err := gbdt.TrainValidCtx(ctx, train, valid, params)
	if err != nil {
		// os.Exit skips the deferred obs cleanup; persist the flight
		// recorder so the failed training run can be replayed.
		if path, derr := ocli.DumpFlight("forestgen"); derr != nil {
			fmt.Fprintf(os.Stderr, "forestgen: flight dump failed: %v\n", derr)
		} else {
			fmt.Fprintf(os.Stderr, "forestgen: flight recorder dumped to %s (inspect with gef -flight-dump %s)\n", path, path)
		}
		if err = robust.CtxErr(err); errors.Is(err, robust.ErrDeadline) {
			fmt.Fprintf(os.Stderr, "forestgen: training: %v (deadline hit — raise -timeout or lower -trees)\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "forestgen: training: %v\n", err)
		}
		os.Exit(1)
	}
	if err := forest.SaveFile(f, *out); err != nil {
		fmt.Fprintf(os.Stderr, "forestgen: saving: %v\n", err)
		os.Exit(1)
	}

	pred := f.PredictBatch(valid.X)
	fmt.Printf("trained %d trees (%d nodes) on %d rows\n", len(f.Trees), f.NumNodes(), train.NumRows())
	if rep.Stopped {
		fmt.Printf("early stopping at iteration %d\n", rep.BestIteration)
	}
	if ds.Task == dataset.Classification {
		fmt.Printf("validation accuracy: %.4f, log-loss: %.4f\n",
			stats.Accuracy(pred, valid.Y), stats.LogLoss(pred, valid.Y))
	} else {
		fmt.Printf("validation RMSE: %.4f, R²: %.4f\n",
			stats.RMSE(pred, valid.Y), stats.R2(pred, valid.Y))
	}
	// The fingerprint keys the explainer's artifact cache; printing it
	// lets batch scripts correlate forest files with engine cache reuse.
	fmt.Printf("forest written to %s (fingerprint %s)\n", *out, f.Fingerprint())
}

func loadData(path, task, gen string, rows int, seed int64) (*dataset.Dataset, error) {
	if path != "" {
		t := dataset.Task(task)
		if t != dataset.Regression && t != dataset.Classification {
			return nil, fmt.Errorf("unknown task %q", task)
		}
		return dataset.LoadCSVFile(path, t)
	}
	switch gen {
	case "gprime":
		return dataset.GPrime(rows, 0.1, seed), nil
	case "sigmoid":
		return dataset.SigmoidToy(rows, 0.05, seed), nil
	case "superconductivity":
		return dataset.SuperconductivityN(rows, seed), nil
	case "census":
		return dataset.CensusN(rows, seed), nil
	case "":
		return nil, fmt.Errorf("provide -data or -gen")
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}
