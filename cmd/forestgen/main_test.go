package main

import (
	"path/filepath"
	"testing"

	"gef/internal/dataset"
)

func TestLoadDataGenerators(t *testing.T) {
	cases := []struct {
		gen  string
		rows int
		cols int
		task dataset.Task
	}{
		{"gprime", 50, 5, dataset.Regression},
		{"sigmoid", 30, 1, dataset.Regression},
		{"superconductivity", 20, 81, dataset.Regression},
		{"census", 40, 0, dataset.Classification}, // width depends on one-hot
	}
	for _, c := range cases {
		ds, err := loadData("", "", c.gen, c.rows, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.gen, err)
		}
		if ds.NumRows() != c.rows {
			t.Errorf("%s: rows = %d, want %d", c.gen, ds.NumRows(), c.rows)
		}
		if c.cols > 0 && ds.NumFeatures() != c.cols {
			t.Errorf("%s: features = %d, want %d", c.gen, ds.NumFeatures(), c.cols)
		}
		if ds.Task != c.task {
			t.Errorf("%s: task = %v, want %v", c.gen, ds.Task, c.task)
		}
	}
}

func TestLoadDataCSV(t *testing.T) {
	ds := dataset.GPrime(20, 0.1, 2)
	path := filepath.Join(t.TempDir(), "d.csv")
	if err := dataset.SaveCSVFile(ds, path); err != nil {
		t.Fatalf("SaveCSVFile: %v", err)
	}
	got, err := loadData(path, "regression", "", 0, 1)
	if err != nil {
		t.Fatalf("loadData: %v", err)
	}
	if got.NumRows() != 20 || got.NumFeatures() != 5 {
		t.Errorf("shape %d×%d", got.NumRows(), got.NumFeatures())
	}
}

func TestLoadDataErrors(t *testing.T) {
	if _, err := loadData("", "", "", 10, 1); err == nil {
		t.Error("accepted neither -data nor -gen")
	}
	if _, err := loadData("", "", "nope", 10, 1); err == nil {
		t.Error("accepted unknown generator")
	}
	if _, err := loadData("x.csv", "clustering", "", 0, 1); err == nil {
		t.Error("accepted unknown task")
	}
}
