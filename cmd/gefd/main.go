// Command gefd is the gef explanation server: a long-running HTTP/JSON
// daemon serving Explain/AutoExplain/SHAP for registered forests to
// concurrent multi-tenant clients, with admission control, single-
// flight request coalescing, one shared byte-budgeted engine cache,
// typed failure statuses and graceful drain on SIGTERM.
//
//	gefd -listen 127.0.0.1:8080 -load model.json
//
// See the README "Serving" section for the endpoint and status-code
// contract, and cmd/gefd/loadgen for driving it.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/par"
	"gef/internal/robust"
	"gef/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		listen    = flag.String("listen", "127.0.0.1:8080", "address to serve on")
		budget    = flag.Duration("budget", 30*time.Second, "per-request compute budget (requests may lower it via budget_ms)")
		drainTO   = flag.Duration("drain-timeout", 10*time.Second, "how long SIGTERM drain waits for in-flight requests before 504ing them")
		inflight  = flag.Int("inflight", 0, "concurrent computations (0 = par worker count)")
		queue     = flag.Int("queue", 256, "admitted requests allowed to wait beyond the in-flight workers; more are shed with 429")
		cacheMB   = flag.Int64("cache-mb", 0, "shared engine artifact-cache budget in MiB (0 = 256, negative disables)")
		workers   = flag.Int("workers", 0, "worker goroutines for parallel stages (0 = GOMAXPROCS)")
		flightDir = flag.String("flight-dir", "", "directory for panic flight-recorder dumps (default: OS temp dir)")
		load      = flag.String("load", "", "comma-separated forest JSON files to register at startup")
		inject    = flag.String("inject", "", "fault plan: comma-separated site[:prob] entries (e.g. serve.admit:0.05,serve.coalesce); see robust.Sites")
		injSeed   = flag.Int64("inject-seed", 1, "seed for probabilistic -inject entries")
	)
	var ocli obs.CLI
	ocli.RegisterFlags(flag.CommandLine)
	flag.Parse()
	par.SetWorkers(*workers)

	stop, err := ocli.Start("gefd")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gefd: %v\n", err)
		return 2
	}
	defer stop()

	if *inject != "" {
		in, err := parseInject(*inject, *injSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gefd: %v\n", err)
			return 2
		}
		robust.SetInjector(in)
		fmt.Fprintf(os.Stderr, "gefd: fault injection active: %s\n", *inject)
	}

	var cacheBudget int64
	switch {
	case *cacheMB > 0:
		cacheBudget = *cacheMB << 20
	case *cacheMB < 0:
		cacheBudget = -1
	}
	srv := serve.New(serve.Options{
		Budget:       *budget,
		DrainTimeout: *drainTO,
		MaxInFlight:  *inflight,
		MaxQueue:     *queue,
		CacheBudget:  cacheBudget,
		FlightDir:    *flightDir,
	})

	for _, path := range strings.Split(*load, ",") {
		if path == "" {
			continue
		}
		f, err := forest.LoadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gefd: loading %s: %v\n", path, err)
			return 1
		}
		fp, err := srv.RegisterForest(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gefd: registering %s: %v\n", path, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "gefd: registered %s as %s\n", path, fp)
	}

	// SIGTERM/SIGINT trigger the graceful-drain protocol: stop
	// accepting, finish in-flight work under -drain-timeout, 504 the
	// stragglers, then Serve below returns.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	//lint:ignore rawgo signal watcher must run beside the blocking Serve loop; exits with the process
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "gefd: signal received, draining")
		if err := srv.Drain(); err != nil {
			fmt.Fprintf(os.Stderr, "gefd: drain: %v\n", err)
		}
	}()

	err = srv.Listen(*listen, func(bound string) {
		fmt.Printf("gefd: serving on http://%s\n", bound)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gefd: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "gefd: drained, bye")
	return 0
}

// parseInject turns "site[:prob],site[:prob],…" into an Injector plan:
// no prob (or prob ≥ 1) fails every matching call, otherwise a
// deterministic prob-fraction of keys fails.
func parseInject(spec string, seed int64) (*robust.Injector, error) {
	var faults []robust.Fault
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, probStr, hasProb := strings.Cut(entry, ":")
		site := robust.Site(name)
		known := false
		for _, s := range robust.Sites {
			if s == site {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("-inject: unknown site %q (known: %v)", name, robust.Sites)
		}
		if !hasProb {
			faults = append(faults, robust.FailAlways(site, -1))
			continue
		}
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil || prob < 0 {
			return nil, fmt.Errorf("-inject: bad probability %q in %q", probStr, entry)
		}
		if prob >= 1 {
			faults = append(faults, robust.FailAlways(site, -1))
		} else {
			faults = append(faults, robust.FailProb(site, -1, prob))
		}
	}
	if len(faults) == 0 {
		return nil, fmt.Errorf("-inject: empty plan %q", spec)
	}
	return robust.NewInjector(seed, faults...), nil
}
