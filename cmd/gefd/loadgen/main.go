// Command loadgen drives a running gefd with a closed-loop multi-
// tenant request mix and prints a latency/throughput report (the
// BENCH_serve.json shape). It can seed its own targets: by default it
// trains two small g′ forests and registers them before the run.
//
//	gefd -listen 127.0.0.1:8080 &
//	loadgen -base http://127.0.0.1:8080 -clients 100 -duration 5s -dup-frac 0.8
//
// Fault-shaped traffic is first-class: -bad-frac sends invalid
// configs (expect 400), -unknown-frac unregistered fingerprints
// (expect 404), -cancel-frac abandons requests after ~1ms client-side
// (exercising waiter cancellation under coalescing), and the server's
// own -inject flag completes the picture.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gef/internal/serve"
)

func main() { os.Exit(run()) }

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func run() int {
	var (
		base     = flag.String("base", "http://127.0.0.1:8080", "gefd base URL")
		clients  = flag.Int("clients", 8, "concurrent closed-loop clients")
		duration = flag.Duration("duration", 5*time.Second, "run length")
		tenants  = flag.Int("tenants", 4, "distinct X-Tenant identities to rotate through")
		forests  = flag.Int("forests", 2, "synthetic forests to train and register before the run")
		rows     = flag.Int("rows", 600, "training rows per synthetic forest")
		fps      = flag.String("fp", "", "comma-separated pre-registered fingerprints (skips forest seeding)")
		features = flag.Int("features", 5, "feature count of -fp forests (for SHAP vectors)")
		dupFrac  = flag.Float64("dup-frac", 0.8, "fraction of explains drawn from a small hot config set")
		shapFrac = flag.Float64("shap-frac", 0.1, "fraction of requests hitting /v1/shap")
		badFrac  = flag.Float64("bad-frac", 0, "fraction sent with an invalid config (expect 400)")
		unkFrac  = flag.Float64("unknown-frac", 0, "fraction sent with an unregistered fingerprint (expect 404)")
		cancFrac = flag.Float64("cancel-frac", 0, "fraction abandoned after ~1ms client-side")
		budgetMS = flag.Int("budget-ms", 0, "per-request budget_ms (0 = server default)")
		samples  = flag.Int("samples", 2000, "explain config |D*| (small keeps closed-loop latency benchable)")
		families = flag.String("families", "", "comma-separated explainer families to rotate explains across (empty = server default)")
		seed     = flag.Int64("seed", 1, "request-mix seed")
		out      = flag.String("out", "", "write the JSON report to this file (default: stdout)")
	)
	flag.Parse()
	ctx := context.Background()

	var fingerprints []string
	numFeatures := *features
	if *fps != "" {
		for _, fp := range strings.Split(*fps, ",") {
			if fp = strings.TrimSpace(fp); fp != "" {
				fingerprints = append(fingerprints, fp)
			}
		}
	} else {
		var err error
		fingerprints, numFeatures, err = serve.SeedForests(ctx, *base, *forests, *rows, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "loadgen: registered %d forests\n", len(fingerprints))
	}

	rep, err := serve.RunLoad(ctx, serve.LoadConfig{
		BaseURL:      *base,
		Clients:      *clients,
		Duration:     *duration,
		Fingerprints: fingerprints,
		NumFeatures:  numFeatures,
		Tenants:      *tenants,
		DupFrac:      *dupFrac,
		ShapFrac:     *shapFrac,
		BadFrac:      *badFrac,
		UnknownFrac:  *unkFrac,
		CancelFrac:   *cancFrac,
		BudgetMS:     *budgetMS,
		NumSamples:   *samples,
		Families:     splitList(*families),
		Seed:         *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: encoding report: %v\n", err)
		return 1
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: writing %s: %v\n", *out, err)
			return 1
		}
	} else if _, err := os.Stdout.Write(blob); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d req in %.1fs (%.0f req/s), p50 %.1fms p99 %.1fms, coalesce %.0f%%, engine cache %.0f%%, shed %d\n",
		rep.Requests, rep.DurationS, rep.ReqPerSec, rep.P50Ms, rep.P99Ms,
		100*rep.CoalesceHitRate, 100*rep.EngineHitRate, rep.Shed)
	return 0
}
