// Command gef explains a serialized forest with the GEF pipeline — the
// third-party certification-authority scenario of the paper: the tool
// receives only the forest JSON (produced e.g. by forestgen), never the
// training data, and outputs a global GAM explanation plus optional local
// explanations.
//
// Usage:
//
//	gef -forest forest.json -splines 7
//	gef -forest forest.json -splines 5 -interactions 2 -strategy equi-size -k 4500
//	gef -forest forest.json -explain "1.2,0.4,33,..."   # local explanation
//
// Observability (see internal/obs and README "Observability"):
//
//	gef -forest forest.json -trace - -v        # JSONL trace + human progress
//	gef -forest forest.json -metrics-out m.json -cpuprofile cpu.pprof
//	gef -forest forest.json -trace t.json -trace-format chrome   # chrome://tracing
//	gef -forest forest.json -obs-listen localhost:9090           # /metrics /healthz /flight
//	gef -flight-dump gef-flight.json           # pretty-print a dump-on-error ring
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	gefapi "gef"
	"gef/internal/core"
	"gef/internal/distill"
	"gef/internal/featsel"
	"gef/internal/forest"
	"gef/internal/gam"
	"gef/internal/obs"
	"gef/internal/par"
	"gef/internal/plot"
	"gef/internal/robust"
	"gef/internal/sampling"
)

func main() {
	var (
		forestPath   = flag.String("forest", "", "serialized forest JSON (required)")
		family       = flag.String("family", core.FamilyGAM, "explainer family: "+strings.Join(core.Families(), ", "))
		splines      = flag.Int("splines", 5, "number of univariate components |F'|")
		interactions = flag.Int("interactions", 0, "number of bi-variate components |F''|")
		strategy     = flag.String("strategy", "equi-size", "sampling strategy: all-thresholds, k-quantile, equi-width, k-means, equi-size, random")
		k            = flag.Int("k", 256, "points per sampling domain (K)")
		n            = flag.Int("n", 50000, "synthetic dataset size |D*|")
		interStrat   = flag.String("inter-strategy", "gain-path", "interaction strategy: pair-gain, count-path, gain-path, h-stat")
		seed         = flag.Int64("seed", 1, "random seed")
		explain      = flag.String("explain", "", "comma-separated instance to explain locally")
		noCharts     = flag.Bool("no-charts", false, "suppress ASCII spline charts")
		auto         = flag.Bool("auto", false, "choose |F'| and |F''| automatically (marginal-fidelity search)")
		doDistill    = flag.Bool("distill", false, "also distill a single-tree surrogate and print its rules")
		saveModel    = flag.String("save-model", "", "write the fitted GAM to this JSON file")
		workers      = flag.Int("workers", 0, "worker goroutines for parallel stages (0 = GOMAXPROCS); results are identical at any count")
		timeout      = flag.Duration("timeout", 0, "abort the pipeline after this duration (0 = no deadline), e.g. 90s or 5m")
		flightDump   = flag.String("flight-dump", "", "pretty-print a flight-recorder snapshot (written by -flight-out or a dump-on-error) and exit")
	)
	ocli.RegisterFlags(flag.CommandLine)
	flag.Parse()
	par.SetWorkers(*workers)

	if *flightDump != "" {
		s, err := obs.ReadFlightFile(*flightDump)
		if err != nil {
			fatal("reading flight dump: %v", err)
		}
		if err := obs.WriteFlightText(os.Stdout, s); err != nil {
			fatal("printing flight dump: %v", err)
		}
		return
	}
	if *forestPath == "" {
		fmt.Fprintln(os.Stderr, "gef: -forest is required")
		flag.Usage()
		os.Exit(2)
	}
	stopObs, err := ocli.Start("gef")
	if err != nil {
		fatal("%v", err)
	}
	defer stopObs()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// Loading retries transient filesystem failures with capped backoff;
	// a structurally invalid forest (ErrDegenerate) fails immediately.
	var f *forest.Forest
	err = robust.Retry(ctx, robust.RetryPolicy{}, func(int) error {
		var lerr error
		f, lerr = forest.LoadFile(*forestPath)
		if lerr != nil && errors.Is(lerr, os.ErrNotExist) {
			return robust.Permanent(lerr)
		}
		return lerr
	})
	if err != nil {
		fatal("loading forest: %v", err)
	}
	fmt.Printf("forest: %d trees, %d nodes, %d features, objective %s, fingerprint %s\n",
		len(f.Trees), f.NumNodes(), f.NumFeatures, f.Objective, f.Fingerprint())

	cfg := core.Config{
		Family:              *family,
		NumUnivariate:       *splines,
		NumInteractions:     *interactions,
		InteractionStrategy: featsel.InteractionStrategy(*interStrat),
		NumSamples:          *n,
		Sampling:            sampling.Config{Strategy: sampling.Strategy(*strategy), K: *k},
		Seed:                *seed,
	}
	var e *core.Explanation
	if *auto {
		var trace []core.AutoStep
		e, trace, err = core.AutoExplainCtx(ctx, f, core.AutoConfig{Base: cfg, MaxUnivariate: *splines})
		if err != nil {
			fatalTyped("auto-explaining", err)
		}
		fmt.Println("\nauto component search:")
		for _, s := range trace {
			verdict := "rejected"
			if s.Accepted {
				verdict = "accepted"
			}
			fmt.Printf("  %d splines, %d interactions: RMSE %.4f (%s)\n",
				s.NumUnivariate, s.NumInteractions, s.RMSE, verdict)
		}
	} else {
		e, err = core.ExplainCtx(ctx, f, cfg)
		if err != nil {
			fatalTyped("explaining", err)
		}
	}
	if ocli.Verbose {
		// Batch invocations in one process (and AutoExplain's candidate
		// search) reuse staged artifacts; the summary shows what was
		// served from the engine cache.
		fmt.Fprintf(os.Stderr, "gef: %s\n", core.SharedEngine().CacheStats())
	}

	fmt.Printf("\nGEF explanation — family %s, |F'| = %d, |F''| = %d, strategy %s\n",
		e.Family, len(e.Features), len(e.Pairs), *strategy)
	if len(e.Degradations) > 0 {
		fmt.Printf("WARNING: the explanation was degraded %d time(s) to survive failures:\n", len(e.Degradations))
		for _, d := range e.Degradations {
			fmt.Printf("  - %s: %s\n", d, d.Reason)
		}
		// A degraded run is the exact case the flight recorder exists for:
		// persist the ring so the ladder can be replayed post-hoc.
		if path, derr := ocli.DumpFlight("gef"); derr != nil {
			fmt.Fprintf(os.Stderr, "gef: flight dump failed: %v\n", derr)
		} else {
			fmt.Printf("  flight recorder dumped to %s (inspect with gef -flight-dump %s)\n", path, path)
		}
	}
	fmt.Printf("fidelity on held-out D*: RMSE %.4f, R² %.4f\n", e.Fidelity.RMSE, e.Fidelity.R2)
	switch {
	case e.Model != nil:
		fmt.Printf("GAM: λ = %.4g, edf = %.1f, intercept = %.4f\n\n",
			e.Model.Report().Lambda, e.Model.Report().EDF, e.Model.Intercept())
	case gefapi.RulesOf(e) != nil:
		s := gefapi.RulesOf(e).Summary()
		fmt.Printf("rules: tolerance %.3g (abs %.4g), mean kept trees %.1f of %d\n\n",
			s.Tolerance, s.AbsTolerance, s.MeanKeptTrees, s.NumTrees)
	case gefapi.SmootherOf(e) != nil:
		sm := gefapi.SmootherOf(e)
		fmt.Printf("smoother: dictionary %d rows over %d features, adaptive bandwidths\n\n",
			len(sm.Payload().Dict), len(sm.Features()))
	default:
		fmt.Printf("%s surrogate fitted (no per-term report)\n\n", e.Family)
	}

	fmt.Println("selected features (by accumulated gain):")
	imp := f.GainImportance()
	for rank, feat := range e.Features {
		fmt.Printf("  %d. %-30s gain %.2f\n", rank+1, f.FeatureName(feat), imp[feat])
	}
	if len(e.Pairs) > 0 {
		fmt.Println("selected interactions:")
		for _, p := range e.Pairs {
			fmt.Printf("  (%s, %s) score %.2f\n", f.FeatureName(p.I), f.FeatureName(p.J), p.Score)
		}
	}

	if !*noCharts && e.Model != nil {
		for ti := 0; ti < e.Model.NumTerms(); ti++ {
			spec := e.Model.Term(ti)
			if spec.Kind == gam.Tensor {
				continue
			}
			var grid []float64
			if spec.Kind == gam.Factor {
				grid = e.Model.FactorTermLevels(ti)
			} else {
				lo, hi := e.Model.TermRange(ti)
				grid = linspace(lo, hi, 48)
			}
			c, err := e.Model.TermCurve(ti, grid, 0.95)
			if err != nil {
				fatal("term curve: %v", err)
			}
			fmt.Println()
			fmt.Print(plot.Render([]plot.Line{
				{X: c.X, Y: c.Y, Name: "s(" + f.FeatureName(spec.Feature) + ")", Mark: '*'},
				{X: c.X, Y: c.Lower, Name: "95% CI", Mark: '.'},
				{X: c.X, Y: c.Upper, Mark: '.'},
			}, plot.Options{Title: spec.Label(f.FeatureName)}))
		}
	}

	if *saveModel != "" {
		if e.Model != nil {
			if err := e.Model.SaveFile(*saveModel, true); err != nil {
				fatal("saving model: %v", err)
			}
			fmt.Printf("\nfitted GAM written to %s\n", *saveModel)
		} else {
			// Non-GAM families have no standalone model file; persist the
			// whole explanation (versioned, family-tagged) instead.
			blob, err := e.Marshal(true)
			if err != nil {
				fatal("saving explanation: %v", err)
			}
			if err := os.WriteFile(*saveModel, blob, 0o644); err != nil {
				fatal("saving explanation: %v", err)
			}
			fmt.Printf("\nserialized %s explanation written to %s\n", e.Family, *saveModel)
		}
	}

	if *doDistill {
		res, err := distill.Distill(f, distill.Config{MaxLeaves: 16, NumSamples: *n, Seed: *seed})
		if err != nil {
			fatal("distilling: %v", err)
		}
		fmt.Printf("\nsingle-tree surrogate (16 leaves): RMSE %.4f, R² %.4f vs forest\n", res.RMSE, res.R2)
		fmt.Printf("GAM surrogate for comparison:      RMSE %.4f, R² %.4f\n", e.Fidelity.RMSE, e.Fidelity.R2)
		for _, rule := range res.Rules(f.FeatureName) {
			fmt.Println("  " + rule)
		}
	}

	if *explain != "" {
		x, err := parseInstance(*explain, f.NumFeatures)
		if err != nil {
			fatal("parsing -explain: %v", err)
		}
		le := e.ExplainInstance(x)
		fmt.Printf("\nlocal explanation — forest output %.4f, surrogate output %.4f, intercept %.4f\n",
			le.ForestOutput, le.GamPrediction, le.Intercept)
		if len(le.Contributions) > 0 {
			labels := make([]string, len(le.Contributions))
			values := make([]float64, len(le.Contributions))
			for i, c := range le.Contributions {
				labels[i] = c.Spec.Label(f.FeatureName)
				values[i] = c.Value
			}
			fmt.Print(plot.Bars(labels, values, 40))
		}
		if rm := gefapi.RulesOf(e); rm != nil && rm.Fitted() {
			rule, rerr := rm.Explain(x)
			if rerr != nil {
				fatal("extracting rule: %v", rerr)
			}
			fmt.Printf("rule: %s\n", rule)
		}
	}
}

func parseInstance(s string, want int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("instance has %d values, forest expects %d", len(parts), want)
	}
	x := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("value %d: %w", i, err)
		}
		x[i] = v
	}
	return x, nil
}

func linspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// ocli is package-level so fatalTyped can dump the flight recorder on
// its way out (os.Exit bypasses the deferred obs cleanup).
var ocli obs.CLI

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gef: "+format+"\n", args...)
	os.Exit(1)
}

// fatalTyped maps the robust error taxonomy to actionable CLI messages
// before exiting. The flight recorder is dumped first — a typed pipeline
// failure is precisely the post-mortem the ring exists for.
func fatalTyped(what string, err error) {
	if path, derr := ocli.DumpFlight("gef"); derr != nil {
		fmt.Fprintf(os.Stderr, "gef: flight dump failed: %v\n", derr)
	} else {
		fmt.Fprintf(os.Stderr, "gef: flight recorder dumped to %s (inspect with gef -flight-dump %s)\n", path, path)
	}
	switch {
	case errors.Is(err, robust.ErrDeadline):
		fatal("%s: %v (deadline hit — raise -timeout or shrink -n/-k)", what, err)
	case errors.Is(err, robust.ErrConfig):
		fatal("%s: %v (fix the flag values and re-run)", what, err)
	case errors.Is(err, robust.ErrDegenerate):
		fatal("%s: %v (the forest cannot be explained as-is — check its thresholds and leaf values)", what, err)
	case errors.Is(err, robust.ErrNumerical):
		fatal("%s: %v (every recovery exhausted — try fewer splines or a smaller basis)", what, err)
	default:
		fatal("%s: %v", what, err)
	}
}
