package main

import "testing"

func TestParseInstance(t *testing.T) {
	x, err := parseInstance("1.5, -2, 3e2", 3)
	if err != nil {
		t.Fatalf("parseInstance: %v", err)
	}
	if x[0] != 1.5 || x[1] != -2 || x[2] != 300 {
		t.Errorf("parsed %v", x)
	}
}

func TestParseInstanceErrors(t *testing.T) {
	if _, err := parseInstance("1,2", 3); err == nil {
		t.Error("accepted wrong arity")
	}
	if _, err := parseInstance("1,abc,3", 3); err == nil {
		t.Error("accepted non-numeric value")
	}
}

func TestLinspace(t *testing.T) {
	v := linspace(0, 1, 5)
	if len(v) != 5 || v[0] != 0 || v[4] != 1 || v[2] != 0.5 {
		t.Errorf("linspace = %v", v)
	}
}
