package gef

// Serve-path fault-injection gate (ISSUE 9): every fault injected at
// serve.admit, serve.coalesce or serve.drain must end in a typed HTTP
// status, a recorded degradation, or a clean shed — never a hung
// connection. Tests stay under the TestFaultInjection prefix so the
// verify.sh fault gate (`go test -run TestFaultInjection ./...`) picks
// them up.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gef/internal/robust"
	"gef/internal/serve"
)

// serveFixture stands up a Server with the shared fault fixture forest
// behind an httptest listener.
func serveFixture(t *testing.T, opt serve.Options) (*serve.Server, *httptest.Server, string) {
	t.Helper()
	s := serve.New(opt)
	fp, err := s.RegisterForest(faultForest(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, fp
}

// postExplain posts one explain request with a hard client-side timeout
// so a hang fails the test instead of wedging it.
func postExplain(t *testing.T, baseURL, fp string, cfg Config, budgetMS int) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"fingerprint": fp,
		"config":      cfg,
		"budget_ms":   budgetMS,
	})
	if err != nil {
		t.Fatal(err)
	}
	hc := &http.Client{Timeout: 30 * time.Second}
	resp, err := hc.Post(baseURL+"/v1/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("request did not terminate: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// serveCfg is a quick explain config for the serve fault gate.
func serveCfg() Config {
	c := faultCfg()
	c.NumSamples = 600
	return c
}

// TestFaultInjectionServeAdmit: an admission fault must shed with 429 +
// Retry-After and a typed JSON body — the clean-shed contract — and
// recovery is immediate once the plan is gone.
func TestFaultInjectionServeAdmit(t *testing.T) {
	_, ts, fp := serveFixture(t, serve.Options{})
	withInjector(t, robust.NewInjector(1, robust.FailAlways(robust.SiteAdmit, -1)), func() {
		resp, payload := postExplain(t, ts.URL, fp, serveCfg(), 0)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d (body %s), want 429", resp.StatusCode, payload)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("shed response missing Retry-After")
		}
		var eb struct {
			Error string `json:"error"`
			Kind  string `json:"kind"`
		}
		if err := json.Unmarshal(payload, &eb); err != nil || eb.Kind != "shed" {
			t.Fatalf("body %s, want kind shed", payload)
		}
	})
	// Plan removed → the same request succeeds.
	resp, payload := postExplain(t, ts.URL, fp, serveCfg(), 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault status = %d (body %s), want 200", resp.StatusCode, payload)
	}
}

// TestFaultInjectionServeCoalesce: a poisoned coalesced computation
// surfaces one typed 500 per caller — concurrent callers sharing the
// key included — and never a hang.
func TestFaultInjectionServeCoalesce(t *testing.T) {
	_, ts, fp := serveFixture(t, serve.Options{})
	withInjector(t, robust.NewInjector(1, robust.FailAlways(robust.SiteCoalesce, -1)), func() {
		const n = 3
		codes := make([]int, n)
		bodies := make([][]byte, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, payload := postExplain(t, ts.URL, fp, serveCfg(), 0)
				codes[i], bodies[i] = resp.StatusCode, payload
			}(i)
		}
		wg.Wait()
		for i, code := range codes {
			if code != http.StatusInternalServerError {
				t.Fatalf("caller %d: status %d (body %s), want 500", i, code, bodies[i])
			}
			var eb struct {
				Kind string `json:"kind"`
			}
			if err := json.Unmarshal(bodies[i], &eb); err != nil || eb.Kind != "numerical" {
				t.Fatalf("caller %d: body %s, want kind numerical", i, bodies[i])
			}
		}
	})
}

// TestFaultInjectionServeDrain: with serve.drain injected, a drain's
// deadline collapses to "now" — the in-flight request is timed out with
// a typed 504 instead of finishing, and nothing hangs.
func TestFaultInjectionServeDrain(t *testing.T) {
	withInjector(t, robust.NewInjector(1, robust.FailAlways(robust.SiteDrain, -1)), func() {
		s, ts, fp := serveFixture(t, serve.Options{Budget: time.Minute, DrainTimeout: time.Minute})
		slow := serveCfg()
		slow.NumSamples = 300000 // keep the request in flight while we drain

		type outcome struct {
			code int
			body []byte
		}
		done := make(chan outcome, 1)
		go func() {
			resp, payload := postExplain(t, ts.URL, fp, slow, 0)
			done <- outcome{resp.StatusCode, payload}
		}()

		// Wait until the request is admitted and computing.
		waitUntil := time.Now().Add(10 * time.Second)
		for time.Now().Before(waitUntil) && s.Stats().Admitted == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		if s.Stats().Admitted == 0 {
			t.Fatal("request never admitted")
		}
		if err := s.Drain(); err != nil {
			t.Fatalf("drain: %v", err)
		}
		select {
		case o := <-done:
			if o.code != http.StatusGatewayTimeout {
				t.Fatalf("in-flight request got %d (body %s), want 504", o.code, o.body)
			}
			var eb struct {
				Kind string `json:"kind"`
			}
			if err := json.Unmarshal(o.body, &eb); err != nil || eb.Kind != "deadline" {
				t.Fatalf("body %s, want kind deadline", o.body)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("in-flight request hung across an immediate drain deadline")
		}
		// And post-drain arrivals shed cleanly.
		resp, _ := postExplain(t, ts.URL, fp, serveCfg(), 0)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("post-drain status = %d, want 429", resp.StatusCode)
		}
	})
}

// TestFaultInjectionServeAdmitDepthLevel pins the documented (key,
// level) semantics of serve.admit: level is the admitted depth at
// arrival, so FailBelow(…, 1) sheds only requests that find the server
// empty — an arrival while another request is admitted passes.
func TestFaultInjectionServeAdmitDepthLevel(t *testing.T) {
	s, ts, fp := serveFixture(t, serve.Options{Budget: time.Minute})

	// Admit a slow request with no plan installed, so something is in
	// flight when the plan arrives.
	slow := serveCfg()
	slow.NumSamples = 300000 // ~300ms of work: a wide window for the depth-1 probe
	done := make(chan int, 1)
	go func() {
		r, _ := postExplain(t, ts.URL, fp, slow, 0)
		done <- r.StatusCode
	}()
	waitUntil := time.Now().Add(10 * time.Second)
	for time.Now().Before(waitUntil) && s.Stats().Admitted == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if s.Stats().Admitted == 0 {
		t.Fatal("slow request never admitted")
	}

	withInjector(t, robust.NewInjector(1, robust.FailBelow(robust.SiteAdmit, -1, 1)), func() {
		// Depth 1 (slow request admitted) → 1 < 1 is false → passes.
		resp, payload := postExplain(t, ts.URL, fp, serveCfg(), 0)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("depth-1 request got %d (body %s), want 200", resp.StatusCode, payload)
		}
		select {
		case code := <-done:
			if code != http.StatusOK {
				t.Fatalf("slow request finished %d, want 200", code)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("slow request hung")
		}
		// Server empty again → depth 0 → fires → clean shed.
		resp2, _ := postExplain(t, ts.URL, fp, serveCfg(), 0)
		if resp2.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("empty-server request got %d, want 429 (level 0 < 1)", resp2.StatusCode)
		}
	})
}
