package gef

// Fault-injection gate (ISSUE 4): every injected fault must surface as
// an in-stage recovery, a recorded degradation, or a typed taxonomy
// error — never a panic, a hang, or a nondeterministic output. Plans are
// pure functions of (site, key, level), so injected runs are swept
// across worker counts exactly like the clean determinism gate.
//
// verify.sh runs `go test -run TestFaultInjection ./...` as a dedicated
// gate; keep every test here under that name prefix.

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"gef/internal/dataset"
	"gef/internal/gam"
	"gef/internal/gbdt"
	"gef/internal/obs"
	"gef/internal/robust"
)

// withInjector installs a plan for fn and restores the nil production
// injector even when fn fails the test.
func withInjector(t *testing.T, in *robust.Injector, fn func()) {
	t.Helper()
	robust.SetInjector(in)
	defer robust.SetInjector(nil)
	fn()
}

// faultForest is a small fixture forest: big enough that every pipeline
// stage does real work, small enough that the fault sweeps stay fast.
func faultForest(t *testing.T) *Forest {
	t.Helper()
	ds := dataset.GPrime(700, 0.1, 43)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 15, NumLeaves: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func faultCfg() Config {
	return Config{
		NumUnivariate: 5,
		NumSamples:    800,
		Sampling:      SamplingConfig{Strategy: EquiSize, K: 20},
		GAM:           GAMOptions{Lambdas: []float64{0.1, 10}},
		Seed:          5,
	}
}

// logitFixture binarizes g′ labels so the P-IRLS path runs.
func logitFixture(n int, seed int64) (*dataset.Dataset, []float64) {
	ds := dataset.GPrime(n, 0.1, seed)
	y := make([]float64, len(ds.Y))
	for i, v := range ds.Y {
		if v > 2.5 {
			y[i] = 1
		}
	}
	return ds, y
}

// TestFaultInjectionCholeskyExhaustion forces every factorization
// attempt — all ridge rungs, all fit ordinals — to fail. The gam layer
// must surface ErrNumerical, and the pipeline must exhaust its
// structural ladder and surface the same sentinel instead of panicking.
func TestFaultInjectionCholeskyExhaustion(t *testing.T) {
	t.Run("gam fit", func(t *testing.T) {
		ds := dataset.GPrime(400, 0.1, 11)
		spec := gam.Spec{Terms: []gam.TermSpec{{Kind: gam.Spline, Feature: 0}}}
		withInjector(t, robust.NewInjector(1, robust.FailAlways(robust.SiteCholesky, -1)), func() {
			_, err := gam.Fit(spec, ds.X, ds.Y, gam.Options{Lambdas: []float64{1}})
			if !errors.Is(err, robust.ErrNumerical) {
				t.Fatalf("want ErrNumerical, got %v", err)
			}
		})
	})
	t.Run("pipeline falls back to the rules family", func(t *testing.T) {
		// When the GAM's whole structural ladder is exhausted, the fit
		// stage walks the cross-family ladder (gam → rules) instead of
		// failing: the rule family needs no factorization, so the
		// pipeline still produces a valid (simpler) explanation and
		// records the family fallback.
		f := faultForest(t)
		withInjector(t, robust.NewInjector(1, robust.FailAlways(robust.SiteCholesky, -1)), func() {
			e, err := Explain(f, faultCfg())
			if err != nil {
				t.Fatalf("family fallback should rescue the explanation, got %v", err)
			}
			if e.Family != FamilyRules {
				t.Fatalf("want the rules family after GAM exhaustion, got %q", e.Family)
			}
			if e.Model != nil {
				t.Fatal("non-gam explanation must not expose a GAM model")
			}
			var fellBack bool
			for _, d := range e.Degradations {
				if d.Action == robust.ActionFallbackFamily {
					fellBack = true
				}
			}
			if !fellBack {
				t.Fatalf("want a %s degradation, got %v", robust.ActionFallbackFamily, e.Degradations)
			}
			if math.IsNaN(e.Fidelity.RMSE) || math.IsInf(e.Fidelity.RMSE, 0) {
				t.Fatalf("fallback fidelity is not finite: %+v", e.Fidelity)
			}
		})
	})
}

// TestFaultInjectionTensorFitDegrades fails only fit ordinal 0 — the
// full spec with tensor terms — and requires the pipeline to fall back
// to a main-effects GAM, record the drop_tensors degradation, and still
// report finite fidelity.
func TestFaultInjectionTensorFitDegrades(t *testing.T) {
	f := faultForest(t)
	cfg := faultCfg()
	cfg.ForcedPairs = [][2]int{{0, 1}}
	withInjector(t, robust.NewInjector(1, robust.FailAlways(robust.SiteCholesky, 0)), func() {
		e, err := Explain(f, cfg)
		if err != nil {
			t.Fatalf("degraded pipeline should still succeed: %v", err)
		}
		if len(e.Degradations) != 1 {
			t.Fatalf("want exactly one degradation, got %v", e.Degradations)
		}
		d := e.Degradations[0]
		if d.Stage != "gam" || d.Action != robust.ActionDropTensors {
			t.Fatalf("want gam/%s, got %v", robust.ActionDropTensors, d)
		}
		if math.IsNaN(e.Fidelity.RMSE) || math.IsInf(e.Fidelity.RMSE, 0) {
			t.Fatalf("degraded fidelity is not finite: %+v", e.Fidelity)
		}
	})
}

// TestFaultInjectionRidgeRecovery fails factorizations below ridge 1e-5
// so only the escalation rungs can rescue the fit — which must succeed
// and count a recovery.
func TestFaultInjectionRidgeRecovery(t *testing.T) {
	ds := dataset.GPrime(500, 0.1, 17)
	spec := gam.Spec{Terms: []gam.TermSpec{
		{Kind: gam.Spline, Feature: 0},
		{Kind: gam.Spline, Feature: 1},
	}}
	recoveries := obs.Metrics().Counter("robust.recoveries")
	before := recoveries.Value()
	withInjector(t, robust.NewInjector(1, robust.FailBelow(robust.SiteCholesky, -1, 1e-5)), func() {
		m, err := gam.Fit(spec, ds.X, ds.Y, gam.Options{Lambdas: []float64{1}})
		if err != nil {
			t.Fatalf("ridge escalation should have rescued the fit: %v", err)
		}
		for _, p := range m.PredictBatch(ds.X[:50]) {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				t.Fatal("recovered fit produced non-finite predictions")
			}
		}
	})
	if recoveries.Value() <= before {
		t.Fatal("robust.recoveries did not increase")
	}
}

// TestFaultInjectionIRLSStepHalving poisons the first step of P-IRLS
// iteration 1 (level 1.0 < 1.1) but lets the halved re-evaluations
// (level ≥ 1.25) through, so step-halving must recover the λ. The
// unconditional variant poisons every evaluation, so every λ diverges
// and the grid failure surfaces as ErrNumerical.
func TestFaultInjectionIRLSStepHalving(t *testing.T) {
	ds, y := logitFixture(600, 23)
	spec := gam.Spec{
		Link: gam.Logit,
		Terms: []gam.TermSpec{
			{Kind: gam.Spline, Feature: 0},
			{Kind: gam.Spline, Feature: 1},
		},
	}
	opt := gam.Options{Lambdas: []float64{0.1, 10}}
	t.Run("recovery", func(t *testing.T) {
		recoveries := obs.Metrics().Counter("robust.recoveries")
		before := recoveries.Value()
		withInjector(t, robust.NewInjector(1, robust.FailBelow(robust.SiteIRLS, -1, 1.1)), func() {
			m, err := gam.Fit(spec, ds.X, y, opt)
			if err != nil {
				t.Fatalf("step-halving should have rescued the fit: %v", err)
			}
			for _, p := range m.PredictBatch(ds.X[:50]) {
				if math.IsNaN(p) || math.IsInf(p, 0) {
					t.Fatal("recovered fit produced non-finite predictions")
				}
			}
		})
		if recoveries.Value() <= before {
			t.Fatal("robust.recoveries did not increase")
		}
	})
	t.Run("forced divergence", func(t *testing.T) {
		withInjector(t, robust.NewInjector(1, robust.FailAlways(robust.SiteIRLS, -1)), func() {
			_, err := gam.Fit(spec, ds.X, y, opt)
			if !errors.Is(err, robust.ErrNumerical) {
				t.Fatalf("want ErrNumerical when every λ diverges, got %v", err)
			}
		})
	})
}

// TestFaultInjectionDomainCollapse collapses sampling domains: a single
// bad feature is dropped from F′ (recorded, pipeline succeeds); when
// every feature collapses the pipeline surfaces ErrDegenerate.
func TestFaultInjectionDomainCollapse(t *testing.T) {
	f := faultForest(t)
	t.Run("single feature dropped", func(t *testing.T) {
		withInjector(t, robust.NewInjector(1, robust.FailAlways(robust.SiteDomains, 2)), func() {
			e, err := Explain(f, faultCfg())
			if err != nil {
				t.Fatalf("pipeline should survive one collapsed domain: %v", err)
			}
			if len(e.Degradations) != 1 {
				t.Fatalf("want exactly one degradation, got %v", e.Degradations)
			}
			d := e.Degradations[0]
			if d.Stage != "sampling" || d.Action != robust.ActionDropFeature ||
				!strings.Contains(d.Detail, "feature 2") {
				t.Fatalf("want sampling/%s for feature 2, got %v", robust.ActionDropFeature, d)
			}
			for _, g := range e.Model.Report().Lambdas {
				if math.IsNaN(g) {
					t.Fatal("degraded fit has NaN in its λ grid report")
				}
			}
		})
	})
	t.Run("all features degenerate", func(t *testing.T) {
		withInjector(t, robust.NewInjector(1, robust.FailAlways(robust.SiteDomains, -1)), func() {
			_, err := Explain(f, faultCfg())
			if !errors.Is(err, robust.ErrDegenerate) {
				t.Fatalf("want ErrDegenerate when every domain collapses, got %v", err)
			}
		})
	})
}

// TestFaultInjectionCancelEachStage cancels the pipeline context at
// every stage boundary in turn; each must abort with context.Canceled —
// typed, immediate, no panic.
func TestFaultInjectionCancelEachStage(t *testing.T) {
	f := faultForest(t)
	for stage := 0; stage <= 4; stage++ {
		withInjector(t, robust.NewInjector(1, robust.FailAlways(robust.SiteCancel, stage)), func() {
			_, err := Explain(f, faultCfg())
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("stage %d: want context.Canceled, got %v", stage, err)
			}
		})
	}
}

// TestFaultInjectionDeadline expires the deadline before the pipeline
// starts; the error must carry both the robust sentinel and the stdlib
// cause so either errors.Is idiom works.
func TestFaultInjectionDeadline(t *testing.T) {
	f := faultForest(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	_, err := ExplainContext(ctx, f, faultCfg())
	if !errors.Is(err, robust.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ErrDeadline must still match context.DeadlineExceeded, got %v", err)
	}
}

// TestFaultInjectionDeterministicAcrossWorkers runs a compound fault
// plan — a collapsed domain, a failed tensor fit, and ridge escalation
// on every surviving factorization — and requires the degraded pipeline
// to be bitwise identical at every worker count, like the clean runs in
// determinism_test.go.
func TestFaultInjectionDeterministicAcrossWorkers(t *testing.T) {
	f := faultForest(t)
	cfg := faultCfg()
	cfg.ForcedPairs = [][2]int{{0, 1}}
	probe := dataset.GPrime(80, 0, 99).X
	plan := func() *robust.Injector {
		return robust.NewInjector(7,
			robust.FailAlways(robust.SiteDomains, 4),
			robust.FailAlways(robust.SiteCholesky, 0),
			robust.FailBelow(robust.SiteCholesky, -1, 1e-6))
	}
	run := func() (preds []float64, degs []robust.Degradation) {
		// A fresh injector per run: ordinal scopes (the fit counter) must
		// start from zero so the plan reads identically every time.
		withInjector(t, plan(), func() {
			e, err := Explain(f, cfg)
			if err != nil {
				t.Fatalf("faulted pipeline should degrade, not fail: %v", err)
			}
			preds = e.Model.PredictBatch(probe)
			degs = append([]robust.Degradation(nil), e.Degradations...)
		})
		return preds, degs
	}
	var refPreds []float64
	var refDegs []robust.Degradation
	atWorkers(t, 1, func() { refPreds, refDegs = run() })
	if len(refDegs) < 2 {
		t.Fatalf("plan should force at least drop_feature and drop_tensors, got %v", refDegs)
	}
	for _, w := range workerCounts()[1:] {
		atWorkers(t, w, func() {
			preds, degs := run()
			requireSameFloats(t, "faulted pipeline predictions", refPreds, preds, w)
			if !reflect.DeepEqual(refDegs, degs) {
				t.Fatalf("workers=%d degradations %v != workers=1 %v", w, degs, refDegs)
			}
		})
	}
}
