#!/bin/sh
# Repo verification: the tier-1 gate, the geflint static-analysis gate,
# and race detection over the concurrency-using packages.
set -eux

go build ./...
go vet ./...

# Static-analysis gate. geflint exits 0 when clean, 1 on any finding and
# 2 on a load/internal error or an analyzer panic (reported loudly with
# a stack trace on stderr), so with `set -e` a single new diagnostic —
# or a crashing analyzer — fails verification. -list documents the
# registered checks in the log; the -json stream is the machine-readable
# contract for CI consumers; -bench times the full pass (load + the
# twelve analyzers, CFG construction included) and writes the
# geflint_full_ms gauge plus raw per-analyzer finding counts to
# BENCH_lint.json so lint-cost regressions show up in review.
go run ./cmd/geflint -list
go run ./cmd/geflint -json -bench BENCH_lint.json ./...

go test ./...

# Fault-injection gate: the deterministic injector must turn every
# planned fault into a recovery, a recorded degradation, or a typed
# taxonomy error — run explicitly so a -run filter in local workflows
# can never silently drop the suite.
go test -count=1 -run TestFaultInjection ./...

# Flat-forest traversal benchmark: regenerates BENCH_forest.json (flat
# SoA vs pointer walk ns/row at batch 1/64/4096 plus the D*-labeling and
# batch-SHAP stages). On multi-core hosts the harness fails if the flat
# D* labeling path is below 2x the pointer walk at workers=1; 1-core
# containers record the numbers but skip the ratio gate (BENCH_par
# policy).
BENCH_FOREST_OUT=BENCH_forest.json go test -count=1 -run TestWriteForestBench .

# Race gate: every package whose sources (tests included) start
# goroutines, touch sync/atomic primitives, or import the internal/par
# worker-pool runtime is re-run under the race detector. The set is
# discovered by scanning, not hard-coded, so new concurrent (or newly
# parallelized) code is raced automatically. In particular the sync.Mutex
# in internal/core's engine artifact cache keeps internal/core (and the
# root package, whose session tests share one engine across calls) in
# the raced set.
race_pkgs=$(grep -rl --include='*.go' --exclude-dir=testdata \
	-E 'go func|[^a-zA-Z0-9_.]sync\.|"sync/atomic"|[^a-zA-Z0-9_.]atomic\.|"gef/internal/par"|"gef/internal/robust"' . |
	xargs -r -n1 dirname | sort -u)
if [ -n "${race_pkgs}" ]; then
	# shellcheck disable=SC2086 # word splitting is the point
	go test -race ${race_pkgs}
fi

# The flight recorder and labeled-vector registry are the always-on
# telemetry every run depends on; race them explicitly so a -run filter
# or a scan regression above can never drop the gate.
go test -race -count=1 ./internal/obs
