#!/bin/sh
# Repo verification: the tier-1 gate, the geflint static-analysis gate,
# and race detection over the concurrency-using packages.
set -eux

go build ./...
go vet ./...

# Static-analysis gate. geflint exits 0 when clean, 1 on any finding and
# 2 on a load/internal error or an analyzer panic (reported loudly with
# a stack trace on stderr), so with `set -e` a single new diagnostic —
# or a crashing analyzer — fails verification. -list documents the
# registered checks in the log; the -json stream is the machine-readable
# contract for CI consumers; -bench times the full pass (load + the
# twelve analyzers, CFG construction included) and writes the
# geflint_full_ms gauge plus raw per-analyzer finding counts to
# BENCH_lint.json so lint-cost regressions show up in review.
go run ./cmd/geflint -list
go run ./cmd/geflint -json -bench BENCH_lint.json ./...

go test ./...

# Fault-injection gate: the deterministic injector must turn every
# planned fault into a recovery, a recorded degradation, or a typed
# taxonomy error — run explicitly so a -run filter in local workflows
# can never silently drop the suite.
go test -count=1 -run TestFaultInjection ./...

# Flat-forest traversal benchmark: regenerates BENCH_forest.json (flat
# SoA vs pointer walk ns/row at batch 1/64/4096 plus the D*-labeling and
# batch-SHAP stages). On multi-core hosts the harness fails if the flat
# D* labeling path is below 2x the pointer walk at workers=1; 1-core
# containers record the numbers but skip the ratio gate (BENCH_par
# policy).
BENCH_FOREST_OUT=BENCH_forest.json go test -count=1 -run TestWriteForestBench .

# Serving benchmark: regenerates BENCH_serve.json (p50/p99 latency,
# req/s, engine-cache and coalescing hit rates at 100+ closed-loop
# clients over a duplicate-heavy mix). The generating test fails if the
# coalescer never engages, so a wiring regression in the single-flight
# path cannot hide behind a green report.
BENCH_SERVE_OUT=BENCH_serve.json go test -count=1 -run TestWriteServeBench .

# Explainer-family gate (ISSUE 10): run the extra-families comparison at
# quick scale and regenerate BENCH_family.json (per-family fidelity and
# latency over one engine session). The experiment itself fails when no
# engine-cache hits occur across families (broken artifact sharing); the
# grep gate requires every first-party family to be present so a family
# silently dropping out of the registry cannot hide behind a green run.
fam_dir=$(mktemp -d)
go run ./cmd/experiments -exp extra-families -scale quick -out "${fam_dir}" >/dev/null
cp "${fam_dir}/BENCH_family.json" BENCH_family.json
rm -rf "${fam_dir}"
for fam in gam rules smoother; do
	grep -q "\"${fam}\"" BENCH_family.json
done

# Race gate: every package whose sources (tests included) start
# goroutines, touch sync/atomic primitives, or import the internal/par
# worker-pool runtime or the serving layer is re-run under the race
# detector. The set is discovered by scanning, not hard-coded, so new
# concurrent (or newly parallelized) code is raced automatically. In
# particular the sync.Mutex in internal/core's engine artifact cache
# keeps internal/core (and the root package, whose session tests share
# one engine across calls) in the raced set, and the "gef/internal/serve"
# pattern pulls in cmd/gefd and cmd/gefd/loadgen, whose own sources are
# thin flag-parsing shells around the raced serve package.
race_pkgs=$(grep -rl --include='*.go' --exclude-dir=testdata \
	-E 'go func|[^a-zA-Z0-9_.]sync\.|"sync/atomic"|[^a-zA-Z0-9_.]atomic\.|"gef/internal/par"|"gef/internal/robust"|"gef/internal/serve"' . |
	xargs -r -n1 dirname | sort -u)
if [ -n "${race_pkgs}" ]; then
	# shellcheck disable=SC2086 # word splitting is the point
	go test -race ${race_pkgs}
fi

# The flight recorder and labeled-vector registry are the always-on
# telemetry every run depends on; race them explicitly so a -run filter
# or a scan regression above can never drop the gate.
go test -race -count=1 ./internal/obs

# Serve smoke gate (ISSUE 9): boot the real daemon on a random port,
# drive it with the real load generator, and require /healthz plus a
# non-empty loadgen report — then SIGTERM it so every verification run
# exercises the graceful-drain path end to end.
smoke_dir=$(mktemp -d)
go build -o "${smoke_dir}/gefd" ./cmd/gefd
go build -o "${smoke_dir}/loadgen" ./cmd/gefd/loadgen
"${smoke_dir}/gefd" -listen 127.0.0.1:0 >"${smoke_dir}/gefd.log" 2>&1 &
gefd_pid=$!
trap 'kill "${gefd_pid}" 2>/dev/null || true; rm -rf "${smoke_dir}"' EXIT
tries=0
until grep -q 'serving on' "${smoke_dir}/gefd.log"; do
	tries=$((tries + 1))
	if [ "${tries}" -gt 100 ]; then
		echo 'smoke: gefd never became ready' >&2
		cat "${smoke_dir}/gefd.log" >&2
		exit 1
	fi
	sleep 0.1
done
gefd_url=$(sed -n 's|^gefd: serving on ||p' "${smoke_dir}/gefd.log")
curl -fsS "${gefd_url}/healthz"
"${smoke_dir}/loadgen" -base "${gefd_url}" -clients 16 -duration 2s \
	-dup-frac 0.8 -out "${smoke_dir}/smoke.json" >/dev/null
test -s "${smoke_dir}/smoke.json"
test -s BENCH_serve.json
kill -TERM "${gefd_pid}"
wait "${gefd_pid}"
trap - EXIT
rm -rf "${smoke_dir}"
