#!/bin/sh
# Repo verification: the tier-1 gate plus static analysis and race
# detection on the concurrency-sensitive packages (the obs layer's
# atomics and the pipeline that drives them).
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/obs ./internal/core
