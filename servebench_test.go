package gef

// BENCH_serve.json generator (ISSUE 9): the gefd serving pipeline —
// admission → coalescing → engine — under a duplicate-heavy closed-loop
// mix at 100+ concurrent clients, measured in-process so the numbers
// capture server work, not container networking. Regenerate with:
//
//	BENCH_SERVE_OUT=BENCH_serve.json go test -count=1 -run TestWriteServeBench .
//
// The duplicate-heavy mix (DupFrac 0.9 over a 2-config hot set) is the
// coalescer's home turf: with one worker token on a 1-core host,
// concurrent identical requests pile onto the in-flight leader, so the
// report's coalesce_hit_rate must come out > 0 — that gate is asserted
// here, not just recorded.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"gef/internal/serve"
)

// serveBenchReport is the BENCH_serve.json shape: environment metadata
// around the loadgen report.
type serveBenchReport struct {
	Name    string            `json:"name"`
	Go      string            `json:"go"`
	OS      string            `json:"os"`
	Arch    string            `json:"arch"`
	Cores   int               `json:"cores"`
	Forests int               `json:"forests"`
	Mix     serveBenchMix     `json:"mix"`
	Load    *serve.LoadReport `json:"load"`
}

type serveBenchMix struct {
	DupFrac     float64  `json:"dup_frac"`
	ShapFrac    float64  `json:"shap_frac"`
	BadFrac     float64  `json:"bad_frac"`
	UnknownFrac float64  `json:"unknown_frac"`
	CancelFrac  float64  `json:"cancel_frac"`
	Families    []string `json:"families,omitempty"`
}

// TestWriteServeBench regenerates BENCH_serve.json; it is gated behind
// BENCH_SERVE_OUT so regular test runs skip the load run.
func TestWriteServeBench(t *testing.T) {
	path := os.Getenv("BENCH_SERVE_OUT")
	if path == "" {
		t.Skip("set BENCH_SERVE_OUT=<path> to generate the serving-latency report")
	}

	// The queue must hold the whole closed-loop fleet: this bench
	// measures latency under coalescing, not shed rate, so nothing
	// should bounce off admission.
	s := serve.New(serve.Options{MaxQueue: 4096, Budget: 30 * time.Second})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx := context.Background()
	fps, dim, err := serve.SeedForests(ctx, ts.URL, 2, 600, 41)
	if err != nil {
		t.Fatal(err)
	}

	// The family mix makes the bench adversarial to the coalescer: each
	// explain rotates across three families, so the hot set is 2 configs
	// × 3 families = 6 distinct keys. Coalescing must still engage on
	// within-family duplicates, and must never merge across families (a
	// rules caller fed a gam explanation would be a correctness bug —
	// the per-family key separation is asserted in internal/serve tests;
	// here the gate is that separation does not kill hit rate).
	mix := serveBenchMix{
		DupFrac: 0.9, ShapFrac: 0.04, BadFrac: 0.01, UnknownFrac: 0.01, CancelFrac: 0.02,
		Families: []string{"gam", "rules", "smoother"},
	}
	cfg := serve.LoadConfig{
		BaseURL:      ts.URL,
		Clients:      120,
		Duration:     3 * time.Second,
		Fingerprints: fps,
		NumFeatures:  dim,
		Tenants:      4,
		DupFrac:      mix.DupFrac,
		ShapFrac:     mix.ShapFrac,
		BadFrac:      mix.BadFrac,
		UnknownFrac:  mix.UnknownFrac,
		CancelFrac:   mix.CancelFrac,
		Families:     mix.Families,
		Seed:         41,
	}
	rep, err := serve.RunLoad(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Requests == 0 {
		t.Fatal("load run completed zero requests")
	}
	if rep.CoalesceHitRate <= 0 {
		t.Fatalf("coalesce hit rate %.3f under a %.0f%% duplicate mix (families %v) at %d clients; single-flight is not engaging",
			rep.CoalesceHitRate, mix.DupFrac*100, mix.Families, cfg.Clients)
	}
	if rep.Status["200"] == 0 {
		t.Fatalf("no successful requests in the mix: %+v", rep.Status)
	}

	out := serveBenchReport{
		Name:    "gef-serve-bench",
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
		Cores:   runtime.NumCPU(),
		Forests: len(fps),
		Mix:     mix,
		Load:    rep,
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d reqs, %.0f req/s, p50 %.1fms p99 %.1fms, coalesce %.2f engine %.2f",
		path, rep.Requests, rep.ReqPerSec, rep.P50Ms, rep.P99Ms, rep.CoalesceHitRate, rep.EngineHitRate)
}
