// Package gef is the public API of GEF — GAM-based Explanation of
// Forests — a from-scratch Go reproduction of "GAM Forest Explanation"
// (Lucchese, Perego, Orlando, Veneri; EDBT 2023).
//
// GEF produces a Generalized Additive Model that explains a forest of
// decision trees both globally (one spline per important feature, plus
// optional bivariate tensor terms) and locally (per-term contributions
// for any instance), using only the forest itself — never the data it
// was trained on:
//
//	f, _ := gef.TrainForest(trainingData, gef.ForestParams{NumTrees: 300})
//	e, _ := gef.Explain(f, gef.Config{NumUnivariate: 7})
//	for i := 0; i < e.Model.NumTerms(); i++ {
//	    curve, _ := e.Model.TermCurve(i, grid, 0.95)
//	    // plot curve.Y with curve.Lower/curve.Upper confidence bands
//	}
//
// The package is a facade over the internal implementation: the forest
// data model and GBDT/Random-Forest trainers (internal/forest,
// internal/gbdt), threshold-based sampling strategies (internal/sampling),
// feature and interaction selection (internal/featsel), the penalized
// B-spline GAM fitter (internal/gam), and the SHAP/LIME comparison
// baselines (internal/shap, internal/lime).
package gef

import (
	"context"
	"io"
	"net/http"

	"gef/internal/core"
	"gef/internal/dataset"
	"gef/internal/distill"
	"gef/internal/featsel"
	"gef/internal/forest"
	"gef/internal/gam"
	"gef/internal/gbdt"
	"gef/internal/lime"
	"gef/internal/obs"
	"gef/internal/pdp"
	"gef/internal/robust"
	"gef/internal/rules"
	"gef/internal/sampling"
	"gef/internal/shap"
	"gef/internal/smoother"
)

// Forest is an additive ensemble of binary decision trees — the black-box
// model GEF explains. Forests are produced by TrainForest /
// TrainRandomForest or deserialized with LoadForest.
type Forest = forest.Forest

// Tree and Node expose the forest structure (GEF assumes full access to
// the forest, including test nodes and leaves).
type (
	Tree = forest.Tree
	Node = forest.Node
)

// Objective identifies the forest's output scale.
type Objective = forest.Objective

// Forest objectives.
const (
	Regression     = forest.Regression
	BinaryLogistic = forest.BinaryLogistic
)

// Dataset is a dense numeric dataset.
type Dataset = dataset.Dataset

// Dataset task markers.
const (
	RegressionTask     = dataset.Regression
	ClassificationTask = dataset.Classification
)

// ForestParams configures gradient-boosting training (LightGBM-style:
// histogram splits, leaf-wise growth, shrinkage, early stopping).
type ForestParams = gbdt.Params

// RandomForestParams configures bagged Random-Forest training.
type RandomForestParams = gbdt.RFParams

// TrainReport records per-iteration training/validation losses.
type TrainReport = gbdt.Report

// TrainForest fits a GBDT forest on ds.
func TrainForest(ds *Dataset, p ForestParams) (*Forest, error) {
	return gbdt.Train(ds, p)
}

// TrainForestValid fits a GBDT forest with a validation set and early
// stopping.
func TrainForestValid(train, valid *Dataset, p ForestParams) (*Forest, *TrainReport, error) {
	return gbdt.TrainValid(train, valid, p)
}

// TrainRandomForest fits a bagged Random Forest on ds.
func TrainRandomForest(ds *Dataset, p RandomForestParams) (*Forest, error) {
	return gbdt.TrainRF(ds, p)
}

// SaveForest serializes a forest to a JSON file; LoadForest reads it
// back. This is the hand-off format for the paper's third-party scenario:
// the explainer needs only this file, not the training data.
func SaveForest(f *Forest, path string) error { return forest.SaveFile(f, path) }

// LoadForest reads a forest serialized by SaveForest.
func LoadForest(path string) (*Forest, error) { return forest.LoadFile(path) }

// Config controls the GEF pipeline; zero values take the paper's
// defaults (|F′| = 5, Equi-Size sampling, Gain-Path interactions,
// N = 100,000, L = 10, the gam explainer family).
type Config = core.Config

// SurrogateModel is a fitted explainer of any family: it predicts the
// forest's response and serializes its family-specific payload. See
// Explanation.Surrogate; the gam family's richer API stays on
// Explanation.Model.
type SurrogateModel = core.SurrogateModel

// Explainer family names for Config.Family. Every family shares the
// upstream pipeline stages (feature selection, sampling domains, D*),
// so switching families on a warm session reuses those artifacts.
const (
	// FamilyGAM is the paper's explainer (default): a penalized
	// B-spline GAM with optional tensor interaction terms.
	FamilyGAM = core.FamilyGAM
	// FamilyRules produces per-prediction reduced conjunctive rules
	// (LionForests-style; see RulesConfig).
	FamilyRules = core.FamilyRules
	// FamilySmoother is the forest-guided kernel smoother with
	// proximity-adaptive bandwidths (see SmootherConfig).
	FamilySmoother = core.FamilySmoother
	// FamilyLIME fits one global LIME ridge surrogate (baseline).
	FamilyLIME = core.FamilyLIME
	// FamilyDistill distills the forest into one shallow tree (baseline).
	FamilyDistill = core.FamilyDistill
)

// Families returns the registered explainer family names, sorted.
func Families() []string { return core.Families() }

// RulesConfig configures the rule explainer family (Config.Rules).
type RulesConfig = rules.Config

// RuleModel is the rule family's concrete fitted model: per-instance
// reduced conjunctive rules. Obtain it with RulesOf.
type RuleModel = rules.Model

// Rule is one reduced conjunctive explanation ("f1 > 0.2 AND
// f3 ∈ (0.1, 0.8] → 4.21").
type Rule = rules.Rule

// RulesOf returns the rule family's concrete model behind an
// explanation's surrogate (nil when the explanation is not rule-family).
func RulesOf(e *Explanation) *RuleModel {
	if rm, ok := e.Surrogate.(interface{ Rules() *rules.Model }); ok {
		return rm.Rules()
	}
	return nil
}

// SmootherConfig configures the kernel-smoother family (Config.Smoother).
type SmootherConfig = smoother.Config

// SmootherModel is the smoother family's concrete fitted model
// (bandwidth reports, serializable payload). Obtain it with SmootherOf.
type SmootherModel = smoother.Model

// SmootherOf returns the smoother family's concrete model behind an
// explanation's surrogate (nil when the explanation is not
// smoother-family).
func SmootherOf(e *Explanation) *SmootherModel {
	if sm, ok := e.Surrogate.(interface{ Smoother() *smoother.Model }); ok {
		return sm.Smoother()
	}
	return nil
}

// Explanation is the result of Explain: the fitted GAM, the selected
// features F′ and interactions F″, the synthetic dataset D*, and
// fidelity measurements.
type Explanation = core.Explanation

// Fidelity reports surrogate faithfulness on held-out D*.
type Fidelity = core.Fidelity

// LocalExplanation decomposes one prediction into per-term contributions.
type LocalExplanation = core.LocalExplanation

// Explain runs the full GEF pipeline on a forest: feature selection from
// gains, threshold-based sampling of D*, interaction selection, and GAM
// fitting. Only the forest is consulted.
func Explain(f *Forest, cfg Config) (*Explanation, error) {
	return core.Explain(f, cfg)
}

// ExplainContext is Explain with context propagation: pipeline stages
// open observability spans (see SetTraceSink) as children of the span
// carried by ctx.
func ExplainContext(ctx context.Context, f *Forest, cfg Config) (*Explanation, error) {
	return core.ExplainCtx(ctx, f, cfg)
}

// AutoConfig controls AutoExplain's component-count search.
type AutoConfig = core.AutoConfig

// AutoStep is one evaluated candidate in an AutoExplain search.
type AutoStep = core.AutoStep

// AutoExplain chooses |F′| and |F″| automatically: it grows the explainer
// while each added component improves held-out fidelity by at least the
// configured tolerance, evaluating all candidates on a common synthetic
// dataset. This automates the elbow the paper reads off its Fig. 7.
func AutoExplain(f *Forest, cfg AutoConfig) (*Explanation, []AutoStep, error) {
	return core.AutoExplain(f, cfg)
}

// AutoExplainContext is AutoExplain with context propagation (one
// observability span per evaluated candidate).
func AutoExplainContext(ctx context.Context, f *Forest, cfg AutoConfig) (*Explanation, []AutoStep, error) {
	return core.AutoExplainCtx(ctx, f, cfg)
}

// --- Sessions & artifact reuse (internal/core engine) ---------------------

// Explainer is an explanation session over one (or more) forests. It
// wraps the staged pipeline engine: each stage — feature selection,
// sampling-domain construction, D* generation, interaction ranking, GAM
// fitting — produces an artifact keyed by the forest fingerprint plus
// the configuration fields that stage reads, held in a bounded
// in-memory cache. Repeated Explain calls with overlapping configs,
// AutoExplain searches and batch sweeps reuse forest statistics,
// domains, sampled datasets, interaction rankings and B-spline bases
// instead of recomputing them; outputs are bitwise identical to a cold
// run. An Explainer is safe for concurrent use.
//
// The package-level Explain/AutoExplain functions share one
// process-wide session; NewExplainer isolates a cache (and its memory)
// per analysis.
type Explainer struct {
	eng *core.Engine
	f   *Forest
}

// CacheStats summarizes an Explainer's artifact cache (global and
// per-stage hit/miss counts, resident entries and bytes).
type CacheStats = core.CacheStats

// NewExplainer opens an explanation session for f with a fresh artifact
// cache. The forest is captured once; every call on the session
// explains it.
func NewExplainer(f *Forest) *Explainer {
	return &Explainer{eng: core.NewEngine(), f: f}
}

// Explain runs the GEF pipeline through the session cache.
func (s *Explainer) Explain(cfg Config) (*Explanation, error) {
	return s.eng.Explain(s.f, cfg)
}

// ExplainContext is Explain with context propagation.
func (s *Explainer) ExplainContext(ctx context.Context, cfg Config) (*Explanation, error) {
	return s.eng.ExplainCtx(ctx, s.f, cfg)
}

// AutoExplain runs the component-count search through the session
// cache; after any prior call on the session it skips straight to the
// candidate fits.
func (s *Explainer) AutoExplain(cfg AutoConfig) (*Explanation, []AutoStep, error) {
	return s.eng.AutoExplain(s.f, cfg)
}

// AutoExplainContext is AutoExplain with context propagation.
func (s *Explainer) AutoExplainContext(ctx context.Context, cfg AutoConfig) (*Explanation, []AutoStep, error) {
	return s.eng.AutoExplainCtx(ctx, s.f, cfg)
}

// CacheStats reports the session's artifact-cache statistics.
func (s *Explainer) CacheStats() CacheStats { return s.eng.CacheStats() }

// SharedCacheStats reports the cache statistics of the process-wide
// session behind the package-level Explain/AutoExplain functions.
func SharedCacheStats() CacheStats { return core.SharedEngine().CacheStats() }

// MarshalExplanation serializes an explanation to JSON (model included;
// with includeCI the credible-interval factor too). The forest and the
// D* splits are not serialized.
func MarshalExplanation(e *Explanation, includeCI bool) ([]byte, error) {
	return e.Marshal(includeCI)
}

// UnmarshalExplanation reloads an explanation serialized by
// MarshalExplanation. The result predicts and explains instances;
// Forest, Train and Test are nil.
func UnmarshalExplanation(data []byte) (*Explanation, error) {
	return core.Unmarshal(data)
}

// GAM surrogate model types.
type (
	// Model is a fitted GAM (the explainer Γ).
	Model = gam.Model
	// Curve is a univariate term evaluated on a grid with Bayesian
	// credible bands.
	Curve = gam.Curve
	// Surface is a bivariate tensor term on a 2-D grid.
	Surface = gam.Surface
	// TermSpec declares one additive component.
	TermSpec = gam.TermSpec
	// Contribution is one term's share of a prediction.
	Contribution = gam.Contribution
	// GAMSpec declares a full GAM structure for direct fitting.
	GAMSpec = gam.Spec
	// GAMOptions controls GAM fitting (λ grid, IRLS limits).
	GAMOptions = gam.Options
)

// Term kinds.
const (
	SplineTerm = gam.Spline
	FactorTerm = gam.Factor
	TensorTerm = gam.Tensor
)

// FitGAM fits a GAM directly on data — the building block Explain uses,
// exposed for callers who already have a dataset.
func FitGAM(spec GAMSpec, xs [][]float64, y []float64, opt GAMOptions) (*Model, error) {
	return gam.Fit(spec, xs, y, opt)
}

// SaveModel serializes a fitted GAM to a JSON file so an explanation can
// be published or archived. With includeCI the credible-interval factor
// (O(p²/2) floats) is embedded; without it the reloaded model predicts
// and explains but reports zero standard errors.
func SaveModel(m *Model, path string, includeCI bool) error {
	return m.SaveFile(path, includeCI)
}

// LoadModel reads a GAM serialized with SaveModel.
func LoadModel(path string) (*Model, error) { return gam.LoadModelFile(path) }

// SamplingStrategy selects how D* sampling domains are derived from the
// forest's thresholds.
type SamplingStrategy = sampling.Strategy

// Sampling strategies (§3.3 of the paper).
const (
	AllThresholds = sampling.AllThresholds
	KQuantile     = sampling.KQuantile
	EquiWidth     = sampling.EquiWidth
	KMeansDomains = sampling.KMeans
	EquiSize      = sampling.EquiSize
	RandomDomains = sampling.Random
)

// SamplingConfig configures domain construction (strategy, K, ε).
type SamplingConfig = sampling.Config

// InteractionStrategy ranks candidate feature pairs.
type InteractionStrategy = featsel.InteractionStrategy

// Interaction-detection strategies (§3.4 of the paper).
const (
	PairGain  = featsel.PairGain
	CountPath = featsel.CountPath
	GainPath  = featsel.GainPath
	HStat     = featsel.HStat
)

// InteractionPair is a scored feature pair.
type InteractionPair = featsel.Pair

// TopFeatures returns the k features with the largest accumulated gain.
func TopFeatures(f *Forest, k int) []int { return featsel.TopFeatures(f, k) }

// RankInteractions scores all pairs of the selected features with the
// given strategy (sample is required only for HStat).
func RankInteractions(f *Forest, selected []int, s InteractionStrategy, sample [][]float64) ([]InteractionPair, error) {
	return featsel.RankInteractions(f, selected, s, sample)
}

// ShapValues computes path-dependent TreeSHAP attributions for x on the
// raw-score scale, returning (φ, base) with raw(x) = base + Σφ.
func ShapValues(f *Forest, x []float64) (phi []float64, base float64) {
	return shap.Values(f, x)
}

// InterventionalShapValues computes SHAP attributions under the
// interventional (marginal) value function against an explicit
// background sample — the "true to the data" TreeSHAP variant. Cost is
// O(|background| · forest nodes) per instance.
func InterventionalShapValues(f *Forest, x []float64, background [][]float64) (phi []float64, base float64) {
	return shap.InterventionalValues(f, x, background)
}

// ShapAttribution pairs a feature with its SHAP value.
type ShapAttribution = shap.Attribution

// TopShap returns the k largest-magnitude attributions.
func TopShap(phi []float64, k int) []ShapAttribution { return shap.TopAttributions(phi, k) }

// DistillConfig configures single-tree distillation (the
// tree-prototyping baseline family from the paper's related work).
type DistillConfig = distill.Config

// DistilledTree is a single-tree surrogate with fidelity measurements.
type DistilledTree = distill.Result

// DistillTree summarizes a forest as one shallow decision tree trained on
// the forest's predictions over a threshold-derived synthetic dataset —
// like GEF, it needs no training data. Use Result.Rules for a readable
// rule list.
func DistillTree(f *Forest, cfg DistillConfig) (*DistilledTree, error) {
	return distill.Distill(f, cfg)
}

// PartialDependence evaluates the forest's one-dimensional partial
// dependence for feature j over a grid, averaged over the background
// sample.
func PartialDependence(f *Forest, background [][]float64, j int, grid []float64) []float64 {
	return pdp.Grid1D(f, background, j, grid)
}

// ICECurves computes Individual Conditional Expectation curves: one curve
// per background row as feature j sweeps the grid. Their average is the
// partial dependence; their spread reveals interactions.
func ICECurves(f *Forest, background [][]float64, j int, grid []float64) [][]float64 {
	return pdp.ICE(f, background, j, grid)
}

// HStatistic computes Friedman's pairwise interaction statistic for
// features (i, j) over the sample (the paper's most expensive
// interaction-detection strategy).
func HStatistic(f *Forest, sample [][]float64, i, j int) float64 {
	return pdp.HStatistic(f, sample, i, j)
}

// LimeConfig configures the LIME baseline.
type LimeConfig = lime.Config

// LimeExplanation is a fitted local ridge surrogate.
type LimeExplanation = lime.Explanation

// ExplainLIME fits a LIME local surrogate around x for an arbitrary
// predict function.
func ExplainLIME(predict func([]float64) float64, background [][]float64, x []float64, cfg LimeConfig) (*LimeExplanation, error) {
	return lime.Explain(predict, background, x, cfg)
}

// --- Fault tolerance (internal/robust) -----------------------------------

// Sentinel errors of the fault-tolerance taxonomy; match with errors.Is
// at any call depth. See DESIGN.md "Fault tolerance & degradation
// ladder" for the full contract.
var (
	// ErrDegenerate marks structurally unusable input (non-finite forest
	// values, empty or collapsed sampling domains). Not retryable.
	ErrDegenerate = robust.ErrDegenerate
	// ErrNumerical marks a computation that failed numerically after all
	// recovery (ridge escalation, step-halving, degradation ladder).
	ErrNumerical = robust.ErrNumerical
	// ErrDeadline marks a context deadline expiry; it always also matches
	// context.DeadlineExceeded.
	ErrDeadline = robust.ErrDeadline
	// ErrConfig marks an invalid configuration knob (NaN, negative, out
	// of domain) rejected by Config.Validate.
	ErrConfig = robust.ErrConfig
)

// Degradation records one structural simplification the pipeline made to
// keep producing a valid explanation (see Explanation.Degradations).
type Degradation = robust.Degradation

// --- Observability (internal/obs) ----------------------------------------

// TraceSink receives completed pipeline spans; see NewTextTraceSink and
// NewJSONTraceSink for the built-in implementations.
type TraceSink = obs.Sink

// TraceSpan is the record a TraceSink receives for each pipeline span:
// name, nesting, wall time, heap-allocation deltas and attributes.
type TraceSpan = obs.SpanData

// SpanAttr is one key/value annotation on a trace span.
type SpanAttr = obs.Attr

// SetTraceSink installs the process-wide trace sink. With a sink
// installed, Explain/AutoExplain/TrainForest/FitGAM emit one span per
// pipeline stage (per-λ GCV evaluations included). Pass nil to disable
// tracing; a disabled pipeline is byte-identical in output and
// effectively free.
func SetTraceSink(s TraceSink) { obs.SetSink(s) }

// NewTextTraceSink returns a human-readable indented span log writer
// (the CLIs' -v progress mode).
func NewTextTraceSink(w io.Writer) TraceSink { return obs.NewTextSink(w) }

// NewJSONTraceSink returns a JSON-lines span writer for machine
// analysis (the CLIs' -trace output).
func NewJSONTraceSink(w io.Writer) TraceSink { return obs.NewJSONSink(w) }

// CombineTraceSinks fans spans out to several sinks (nil entries are
// dropped).
func CombineTraceSinks(sinks ...TraceSink) TraceSink { return obs.MultiSink(sinks...) }

// EnableStageProfiling toggles runtime/pprof goroutine labels per span:
// with it on, CPU profiles attribute samples to pipeline stages
// (`go tool pprof -tags`, label key gef_stage).
func EnableStageProfiling(on bool) { obs.SetPprofLabels(on) }

// MetricsRegistry is the process-wide metrics store (counters, gauges,
// fixed-bucket histograms) the pipeline instruments feed: P-IRLS
// iterations, GCV evaluations, SHAP node visits, PD forest evaluations,
// per-iteration boosting timings, sampling volumes.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is a JSON-encodable point-in-time registry copy.
type MetricsSnapshot = obs.Snapshot

// PipelineMetrics returns the default registry all instrumentation
// writes to. Use Snapshot or WriteJSON for an expvar-style export.
func PipelineMetrics() *MetricsRegistry { return obs.Metrics() }

// WriteBenchReport writes the current metrics as a BENCH_*.json-shaped
// report (see BENCH_obs.json at the repo root for the convention).
func WriteBenchReport(path, name string) error { return obs.WriteBenchReport(path, name) }

// NewChromeTraceSink returns a Chrome trace_event JSON writer — load
// the output in chrome://tracing or Perfetto (the CLIs'
// -trace-format=chrome mode). Call Flush to terminate the JSON array.
func NewChromeTraceSink(w io.Writer) TraceSink { return obs.NewChromeTraceSink(w) }

// TelemetryHandler returns the operational HTTP surface over the
// process-wide registry and flight recorder: /metrics (Prometheus text
// exposition), /healthz (liveness JSON) and /flight (flight-recorder
// snapshot). Mount it on any mux, or serve it standalone — this is the
// surface an embedding explanation server exposes.
func TelemetryHandler() http.Handler { return obs.Handler() }

// FlightSnapshot is a consistent, gap-free copy of the always-on flight
// recorder: the most recent completed spans, span events, degradations
// and typed errors, with monotonic sequence numbers.
type FlightSnapshot = obs.FlightSnapshot

// CaptureFlight snapshots the process-wide flight recorder — the
// post-mortem ring the CLIs dump on errors and degradations.
func CaptureFlight() FlightSnapshot { return obs.Flight().Snapshot() }
