package gef

// BENCH_par.json generator: the full GEF pipeline (forest training →
// Explain → batch SHAP) run twice on the same fixtures — once with
// workers=1 and once with workers=NumCPU — with per-stage wall times
// aggregated from obs spans. Regenerate the checked-in report with:
//
//	BENCH_PAR_OUT=BENCH_par.json go test -run TestWriteParBench .
//
// The report records the host core count: on a multi-core host the
// parallel run should show ≥ 2× total speedup at 4+ cores; on a 1-core
// host a ratio of ~1× is the expected reading, not a regression.

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"gef/internal/dataset"
	"gef/internal/gbdt"
	"gef/internal/obs"
	"gef/internal/par"
	"gef/internal/shap"
)

// parBenchStages are the span names aggregated into BENCH_par.json —
// the parallelized pipeline stages in execution order.
var parBenchStages = []string{
	"gbdt.train",
	"sampling.generate",
	"gam.fit",
	"shap.global_importance",
}

// runParWorkload runs the benchmark workload at the given worker count
// and returns per-span-name wall-time sums plus the total wall time.
func runParWorkload(workers int) (map[string]time.Duration, time.Duration, error) {
	par.SetWorkers(workers)
	defer par.SetWorkers(0)
	sink := obs.NewMemorySink()
	obs.SetSink(sink)
	defer obs.SetSink(nil)

	start := time.Now()
	ds := dataset.GPrime(4000, 0.1, 19)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 100, NumLeaves: 16, Seed: 1})
	if err != nil {
		return nil, 0, fmt.Errorf("training forest: %w", err)
	}
	if _, err := Explain(f, Config{
		NumUnivariate: 5,
		NumSamples:    8000,
		Sampling:      SamplingConfig{Strategy: EquiSize, K: 100},
		GAM:           GAMOptions{Lambdas: []float64{0.01, 1, 100}},
		Seed:          3,
	}); err != nil {
		return nil, 0, fmt.Errorf("explaining: %w", err)
	}
	shap.GlobalImportance(f, ds.X[:200])
	total := time.Since(start)

	walls := make(map[string]time.Duration)
	for _, sp := range sink.Spans() {
		walls[sp.Name] += sp.Wall
	}
	return walls, total, nil
}

// TestWriteParBench regenerates BENCH_par.json; it is gated behind
// BENCH_PAR_OUT so regular test runs skip the double pipeline.
func TestWriteParBench(t *testing.T) {
	path := os.Getenv("BENCH_PAR_OUT")
	if path == "" {
		t.Skip("set BENCH_PAR_OUT=<path> to generate the workers=1 vs workers=NumCPU report")
	}
	ncpu := runtime.NumCPU()
	serialWalls, serialTotal, err := runParWorkload(1)
	if err != nil {
		t.Fatalf("workers=1 run: %v", err)
	}
	parWalls, parTotal, err := runParWorkload(ncpu)
	if err != nil {
		t.Fatalf("workers=%d run: %v", ncpu, err)
	}

	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	ratio := func(s, p float64) float64 {
		if p <= 0 {
			return 0
		}
		return s / p
	}
	rep := obs.NewSpeedupReport("gef-par-bench")
	rep.WorkersSerial = 1
	rep.WorkersParallel = ncpu
	rep.TotalSerialMs = ms(serialTotal)
	rep.TotalParallelMs = ms(parTotal)
	rep.TotalSpeedup = ratio(rep.TotalSerialMs, rep.TotalParallelMs)
	for _, name := range parBenchStages {
		s, p := ms(serialWalls[name]), ms(parWalls[name])
		rep.Stages = append(rep.Stages, obs.StageSpeedup{
			Stage:      name,
			SerialMs:   s,
			ParallelMs: p,
			Speedup:    ratio(s, p),
		})
	}
	if err := obs.WriteSpeedupReport(path, rep); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
	t.Logf("cores=%d total: %.0fms (workers=1) vs %.0fms (workers=%d) → %.2fx",
		ncpu, rep.TotalSerialMs, rep.TotalParallelMs, ncpu, rep.TotalSpeedup)
}
