package gbdt

import (
	"context"
	"fmt"
	"math/rand"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/par"
	"gef/internal/stats"
)

// RFParams configures Random-Forest training. A Random Forest is the other
// ensemble family the paper targets (§6): bootstrap-sampled trees with
// per-tree feature subsampling whose predictions are averaged.
type RFParams struct {
	NumTrees        int     // default 100
	NumLeaves       int     // default 127 (RF trees grow deep)
	MinSamplesLeaf  int     // default 5
	MaxBins         int     // default 255
	FeatureFraction float64 // per-tree column subsample (default ≈ √d/d)
	Seed            int64
	Classification  bool // targets in {0,1}; prediction is the positive fraction
}

func (p RFParams) withDefaults(numFeatures int) RFParams {
	if p.NumTrees == 0 {
		p.NumTrees = 100
	}
	if p.NumLeaves == 0 {
		p.NumLeaves = 127
	}
	if p.MinSamplesLeaf == 0 {
		p.MinSamplesLeaf = 5
	}
	if p.MaxBins == 0 {
		p.MaxBins = 255
	}
	if p.FeatureFraction == 0 {
		// Classic RF heuristic: √d features per tree.
		p.FeatureFraction = sqrtFrac(numFeatures)
	}
	return p
}

func sqrtFrac(d int) float64 {
	if d <= 1 {
		return 1
	}
	f := 1.0
	for f*f < float64(d) {
		f++
	}
	return f / float64(d)
}

// TrainRF fits a Random Forest on ds. Each tree is grown on a bootstrap
// resample (sampling with replacement, n draws) over a random feature
// subset, using variance-reduction splits; tree leaf values are the mean
// target of their samples divided by NumTrees, so the additive forest
// computes the ensemble average. For classification the averaged value is
// the predicted positive-class probability (the forest's Objective stays
// Regression because no link is applied to the averaged output).
func TrainRF(ds *dataset.Dataset, p RFParams) (*forest.Forest, error) {
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("gbdt: invalid dataset: %w", err)
	}
	if ds.NumRows() == 0 {
		return nil, fmt.Errorf("gbdt: empty dataset")
	}
	p = p.withDefaults(ds.NumFeatures())
	if p.Classification {
		for _, y := range ds.Y {
			//lint:ignore floatcmp binary labels must be exactly 0 or 1; anything else is a data error
			if y != 0 && y != 1 {
				return nil, fmt.Errorf("gbdt: RF classification requires targets in {0,1}, found %v", y)
			}
		}
	}

	n := ds.NumRows()
	numFeat := ds.NumFeatures()
	_, sp := obs.Start(context.Background(), "gbdt.train_rf",
		obs.Int("rows", n),
		obs.Int("features", numFeat),
		obs.Int("num_trees", p.NumTrees),
		obs.Int("num_leaves", p.NumLeaves),
		obs.Int("workers", par.Workers()))
	defer sp.End()
	bd := binDataset(ds.X, numFeat, p.MaxBins)

	// With raw = 0 and squared loss, grad = −y, hess = 1, so the Newton
	// leaf value −ΣG/ΣH is exactly the leaf's target mean and split gains
	// are variance reductions — the standard regression-tree criterion.
	grad := make([]float64, n)
	hess := make([]float64, n)
	for i := range grad {
		grad[i] = -ds.Y[i]
		hess[i] = 1
	}

	gp := growParams{
		numLeaves:      p.NumLeaves,
		minSamplesLeaf: p.MinSamplesLeaf,
		minGain:        0,
		lambda:         1e-9, // no regularization: plain mean leaves
		learningRate:   1.0 / float64(p.NumTrees),
	}

	f := &forest.Forest{
		NumFeatures:  numFeat,
		Objective:    forest.Regression,
		FeatureNames: ds.FeatureNames,
	}
	// Trees are fully independent given per-tree RNG streams derived
	// from (Seed, t), so they grow in parallel into preassigned slots —
	// the forest is identical at any worker count (and no longer depends
	// on a shared sequential RNG).
	f.Trees = make([]forest.Tree, p.NumTrees)
	//lint:ignore errdrop background context cannot be canceled
	_ = par.For(context.Background(), p.NumTrees, p.NumTrees, func(t, _, _ int) {
		rng := rand.New(rand.NewSource(par.SplitSeed(p.Seed, 2*t)))
		rows := make([]int, n)
		for i := range rows {
			rows[i] = rng.Intn(n) // bootstrap: with replacement
		}
		feats := sampleFeatures(par.SplitSeed(p.Seed, 2*t+1), numFeat, p.FeatureFraction)
		f.Trees[t] = growTree(bd, grad, hess, rows, feats, gp)
	})
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("gbdt: produced invalid RF: %w", err)
	}
	return f, nil
}

// OOBScore estimates RF generalization with a fresh bootstrap-free
// evaluation: it simply scores the forest on a held-out split of ds.
// (True out-of-bag bookkeeping would require retaining per-tree bags;
// a held-out split gives the same decision signal for our experiments.)
func OOBScore(f *forest.Forest, test *dataset.Dataset, classification bool) float64 {
	pred := f.PredictBatch(test.X)
	if classification {
		return stats.Accuracy(pred, test.Y)
	}
	return stats.RMSE(pred, test.Y)
}
