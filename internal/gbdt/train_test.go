package gbdt

import (
	"math"
	"testing"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/stats"
)

func TestTrainFitsStepFunction(t *testing.T) {
	// y = 1{x > 0.5}: a single split should capture it.
	ds := stepDataset(400)
	f, err := Train(ds, Params{NumTrees: 30, NumLeaves: 4, LearningRate: 0.3, MinSamplesLeaf: 5, Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	rmse := stats.RMSE(f.PredictBatch(ds.X), ds.Y)
	if rmse > 0.05 {
		t.Errorf("train RMSE = %v, want < 0.05", rmse)
	}
	if err := f.Validate(); err != nil {
		t.Errorf("forest invalid: %v", err)
	}
}

func stepDataset(n int) *dataset.Dataset {
	d := &dataset.Dataset{Task: dataset.Regression}
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n-1)
		y := 0.0
		if x > 0.5 {
			y = 1
		}
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, y)
	}
	return d
}

func TestTrainFitsGPrime(t *testing.T) {
	ds := dataset.GPrime(3000, 0.1, 7)
	train, test := ds.Split(0.2, 1)
	f, err := Train(train, Params{NumTrees: 150, NumLeaves: 16, LearningRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	r2 := stats.R2(f.PredictBatch(test.X), test.Y)
	if r2 < 0.9 {
		t.Errorf("test R² = %v, want ≥ 0.9 on g′", r2)
	}
}

func TestTrainRecordsGainAndCover(t *testing.T) {
	ds := stepDataset(200)
	f, err := Train(ds, Params{NumTrees: 3, NumLeaves: 4, MinSamplesLeaf: 5, Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	root := &f.Trees[0].Nodes[0]
	if root.IsLeaf() {
		t.Fatal("first tree failed to split a clean step")
	}
	if root.Gain <= 0 {
		t.Errorf("root gain = %v, want > 0", root.Gain)
	}
	if root.Cover != 200 {
		t.Errorf("root cover = %v, want 200", root.Cover)
	}
	// Children covers must sum to the parent's.
	l, r := &f.Trees[0].Nodes[root.Left], &f.Trees[0].Nodes[root.Right]
	if l.Cover+r.Cover != root.Cover {
		t.Errorf("child covers %v+%v != %v", l.Cover, r.Cover, root.Cover)
	}
}

func TestTrainThresholdNearStep(t *testing.T) {
	ds := stepDataset(400)
	f, err := Train(ds, Params{NumTrees: 1, NumLeaves: 2, MinSamplesLeaf: 5, Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	root := &f.Trees[0].Nodes[0]
	if math.Abs(root.Threshold-0.5) > 0.02 {
		t.Errorf("split threshold = %v, want ≈ 0.5", root.Threshold)
	}
}

func TestTrainRespectsNumLeaves(t *testing.T) {
	ds := dataset.GPrime(1000, 0.1, 3)
	for _, nl := range []int{2, 8, 32} {
		f, err := Train(ds, Params{NumTrees: 5, NumLeaves: nl, Seed: 1})
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		for ti := range f.Trees {
			if got := f.Trees[ti].NumLeaves(); got > nl {
				t.Errorf("tree %d has %d leaves, cap %d", ti, got, nl)
			}
		}
	}
}

func TestTrainBinaryLogistic(t *testing.T) {
	// Linearly separable data.
	d := &dataset.Dataset{Task: dataset.Classification}
	for i := 0; i < 400; i++ {
		x := float64(i) / 399
		y := 0.0
		if x > 0.5 {
			y = 1
		}
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, y)
	}
	f, err := Train(d, Params{NumTrees: 40, NumLeaves: 4, LearningRate: 0.3, MinSamplesLeaf: 5,
		Objective: forest.BinaryLogistic, Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	pred := f.PredictBatch(d.X)
	for _, p := range pred {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v outside [0,1]", p)
		}
	}
	if acc := stats.Accuracy(pred, d.Y); acc < 0.98 {
		t.Errorf("accuracy = %v, want ≥ 0.98 on separable data", acc)
	}
}

func TestTrainLogisticRejectsBadTargets(t *testing.T) {
	d := &dataset.Dataset{
		X: [][]float64{{1}, {2}}, Y: []float64{0, 2}, Task: dataset.Classification,
	}
	if _, err := Train(d, Params{Objective: forest.BinaryLogistic}); err == nil {
		t.Error("accepted non-binary targets")
	}
}

func TestTrainParamValidation(t *testing.T) {
	ds := stepDataset(50)
	cases := []Params{
		{NumTrees: -1},
		{NumLeaves: 1, NumTrees: 1},
		{LearningRate: -0.1, NumTrees: 1},
		{FeatureFraction: 1.5, NumTrees: 1},
		{BaggingFraction: -0.2, NumTrees: 1},
		{Objective: "multiclass", NumTrees: 1},
	}
	for i, p := range cases {
		if _, err := Train(ds, p); err == nil {
			t.Errorf("case %d: accepted invalid params %+v", i, p)
		}
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	if _, err := Train(&dataset.Dataset{Task: dataset.Regression}, Params{}); err == nil {
		t.Error("accepted empty dataset")
	}
}

func TestEarlyStopping(t *testing.T) {
	ds := dataset.GPrime(2000, 0.3, 5)
	train, valid := ds.Split(0.3, 2)
	f, rep, err := TrainValid(train, valid, Params{
		NumTrees: 500, NumLeaves: 32, LearningRate: 0.3,
		EarlyStoppingRounds: 10, Seed: 1,
	})
	if err != nil {
		t.Fatalf("TrainValid: %v", err)
	}
	if !rep.Stopped {
		t.Error("expected early stopping to fire with 500 rounds of lr=0.3 on noisy data")
	}
	if len(f.Trees) != rep.BestIteration+1 {
		t.Errorf("forest has %d trees, best iteration %d", len(f.Trees), rep.BestIteration)
	}
	if len(rep.ValidLoss) < len(f.Trees) {
		t.Error("validation loss history shorter than forest")
	}
	// Valid loss at best iteration must be the minimum.
	best := rep.ValidLoss[rep.BestIteration]
	for _, v := range rep.ValidLoss {
		if v < best {
			t.Errorf("found valid loss %v below recorded best %v", v, best)
		}
	}
}

func TestTrainLossDecreases(t *testing.T) {
	ds := dataset.GPrime(1000, 0.1, 9)
	_, rep, err := TrainValid(ds, nil, Params{NumTrees: 50, NumLeaves: 8, Seed: 1})
	if err != nil {
		t.Fatalf("TrainValid: %v", err)
	}
	if rep.TrainLoss[len(rep.TrainLoss)-1] >= rep.TrainLoss[0] {
		t.Error("training loss failed to decrease")
	}
}

func TestTrainDeterministic(t *testing.T) {
	ds := dataset.GPrime(500, 0.1, 4)
	p := Params{NumTrees: 10, NumLeaves: 8, Seed: 42, BaggingFraction: 0.8, FeatureFraction: 0.8}
	f1, err := Train(ds, p)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	f2, err := Train(ds, p)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	for _, x := range ds.X[:20] {
		if f1.RawPredict(x) != f2.RawPredict(x) {
			t.Fatal("same-seed training produced different forests")
		}
	}
}

func TestTrainWithSubsampling(t *testing.T) {
	ds := dataset.GPrime(1000, 0.1, 8)
	f, err := Train(ds, Params{NumTrees: 30, NumLeaves: 8, Seed: 1,
		BaggingFraction: 0.7, FeatureFraction: 0.6})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	r2 := stats.R2(f.PredictBatch(ds.X), ds.Y)
	if r2 < 0.7 {
		t.Errorf("R² = %v with subsampling, want ≥ 0.7", r2)
	}
}

func TestTrainPropagatesFeatureNames(t *testing.T) {
	ds := dataset.GPrime(200, 0.1, 1)
	f, err := Train(ds, Params{NumTrees: 2, Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if f.FeatureName(0) != "x1" {
		t.Errorf("feature name = %q, want x1", f.FeatureName(0))
	}
}

// TestNewtonLeafValuesExact verifies the Newton step on a hand-computable
// case: one tree, one split, known gradient sums.
func TestNewtonLeafValuesExact(t *testing.T) {
	// Four rows, two per side of x=0.5; targets −1,−1 (left) and 3,5
	// (right). Base score = mean(y) = 1.5.
	d := &dataset.Dataset{
		X:    [][]float64{{0.1}, {0.2}, {0.8}, {0.9}},
		Y:    []float64{-1, -1, 3, 5},
		Task: dataset.Regression,
	}
	lambda := 2.0
	lr := 0.5
	f, err := Train(d, Params{
		NumTrees: 1, NumLeaves: 2, LearningRate: lr,
		MinSamplesLeaf: 1, Lambda: lambda, Seed: 1,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	tr := &f.Trees[0]
	root := &tr.Nodes[0]
	if root.IsLeaf() {
		t.Fatal("expected one split")
	}
	// Gradients (pred − y) at raw = base = 1.5: left {2.5, 2.5},
	// right {−1.5, −3.5}. Leaf value = −ΣG/(ΣH+λ)·lr:
	// left −5/(2+2)·0.5 = −0.625, right 5/(2+2)·0.5 = 0.625.
	left := tr.Nodes[root.Left].Value
	right := tr.Nodes[root.Right].Value
	if math.Abs(left-(-0.625)) > 1e-12 {
		t.Errorf("left leaf = %v, want -0.625", left)
	}
	if math.Abs(right-0.625) > 1e-12 {
		t.Errorf("right leaf = %v, want 0.625", right)
	}
	// Split gain = ½·[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)]
	//            = ½·[25/4 + 25/4 − 0/6] = 6.25.
	if math.Abs(root.Gain-6.25) > 1e-12 {
		t.Errorf("gain = %v, want 6.25", root.Gain)
	}
}

// TestGainImportanceMatchesNodeSum ties the forest-level importance to
// the trainer's bookkeeping.
func TestGainImportanceMatchesNodeSum(t *testing.T) {
	ds := dataset.GPrime(800, 0.1, 21)
	f, err := Train(ds, Params{NumTrees: 10, NumLeaves: 8, Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	imp := f.GainImportance()
	var fromNodes float64
	for ti := range f.Trees {
		for ni := range f.Trees[ti].Nodes {
			n := &f.Trees[ti].Nodes[ni]
			if !n.IsLeaf() {
				fromNodes += n.Gain
			}
		}
	}
	var fromImp float64
	for _, v := range imp {
		fromImp += v
	}
	if math.Abs(fromNodes-fromImp) > 1e-9 {
		t.Errorf("importance sum %v != node gain sum %v", fromImp, fromNodes)
	}
}

func TestBaseScore(t *testing.T) {
	if got := baseScore([]float64{1, 2, 3}, forest.Regression); got != 2 {
		t.Errorf("regression base = %v, want 2", got)
	}
	got := baseScore([]float64{1, 1, 0, 0}, forest.BinaryLogistic)
	if math.Abs(got) > 1e-12 { // log-odds of 0.5
		t.Errorf("logistic base = %v, want 0", got)
	}
	// All-positive targets must not produce +Inf.
	if g := baseScore([]float64{1, 1}, forest.BinaryLogistic); math.IsInf(g, 0) {
		t.Error("logistic base overflowed")
	}
}
