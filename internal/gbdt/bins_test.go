package gbdt

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBuildBinsFewDistinct(t *testing.T) {
	fb := buildBins([]float64{1, 2, 2, 3, 1}, 255)
	if got := fb.numBins(); got != 3 {
		t.Fatalf("numBins = %d, want 3", got)
	}
	// Thresholds are midpoints between distinct values.
	if fb.upper[0] != 1.5 || fb.upper[1] != 2.5 {
		t.Errorf("upper = %v, want [1.5 2.5]", fb.upper)
	}
	// Bin assignment respects the cuts.
	if fb.binIndex(1) != 0 || fb.binIndex(2) != 1 || fb.binIndex(3) != 2 {
		t.Error("binIndex misassigns distinct values")
	}
	if fb.binIndex(1.5) != 0 { // boundary value goes left (≤)
		t.Errorf("binIndex(1.5) = %d, want 0", fb.binIndex(1.5))
	}
}

func TestBuildBinsSingleValue(t *testing.T) {
	fb := buildBins([]float64{7, 7, 7}, 255)
	if fb.numBins() != 1 {
		t.Errorf("numBins = %d, want 1 (no splits possible)", fb.numBins())
	}
}

func TestBuildBinsCapsBinCount(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	col := make([]float64, 5000)
	for i := range col {
		col[i] = r.Float64()
	}
	fb := buildBins(col, 64)
	if fb.numBins() > 64 {
		t.Errorf("numBins = %d, want ≤ 64", fb.numBins())
	}
	if fb.numBins() < 32 {
		t.Errorf("numBins = %d, suspiciously few for 5000 uniform values", fb.numBins())
	}
}

func TestBuildBinsEqualFrequency(t *testing.T) {
	// 1000 uniform values into 10 bins → each bin should hold roughly 100.
	r := rand.New(rand.NewSource(2))
	col := make([]float64, 1000)
	for i := range col {
		col[i] = r.Float64()
	}
	fb := buildBins(col, 10)
	counts := make([]int, fb.numBins())
	for _, v := range col {
		counts[fb.binIndex(v)]++
	}
	for b, c := range counts {
		if c < 50 || c > 200 {
			t.Errorf("bin %d holds %d values, want ≈ 100", b, c)
		}
	}
}

func TestBuildBinsPanicsOnBadMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	buildBins([]float64{1, 2}, 1)
}

// Property: binIndex is monotone non-decreasing in the value, and
// thresholds strictly separate adjacent bins.
func TestBinIndexMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(500)
		col := make([]float64, n)
		for i := range col {
			col[i] = r.NormFloat64() * 10
		}
		fb := buildBins(col, 2+r.Intn(60))
		sorted := append([]float64(nil), col...)
		sort.Float64s(sorted)
		prev := -1
		for _, v := range sorted {
			b := fb.binIndex(v)
			if b < prev {
				return false
			}
			prev = b
		}
		// Every recorded threshold must separate values on its two sides.
		for b, u := range fb.upper {
			if fb.binIndex(u) != b {
				return false // threshold itself goes left of the split
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBinDataset(t *testing.T) {
	xs := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	bd := binDataset(xs, 2, 255)
	if bd.numRows != 3 || len(bd.features) != 2 {
		t.Fatalf("unexpected shape")
	}
	if bd.bins[0][0] != 0 || bd.bins[0][2] != 2 {
		t.Errorf("feature 0 bins = %v", bd.bins[0])
	}
	// threshold(f, b) returns the recorded split value.
	if bd.threshold(0, 0) != 1.5 {
		t.Errorf("threshold = %v, want 1.5", bd.threshold(0, 0))
	}
}
