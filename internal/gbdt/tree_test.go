package gbdt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gef/internal/dataset"
)

// TestHistogramSubtraction verifies the LightGBM trick the grower relies
// on: parent histogram minus one child's equals the other child's, for
// random partitions.
func TestHistogramSubtraction(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	n := 500
	xs := make([][]float64, n)
	grad := make([]float64, n)
	hess := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{r.Float64(), r.Float64()}
		grad[i] = r.NormFloat64()
		hess[i] = r.Float64() + 0.1
	}
	bd := binDataset(xs, 2, 32)
	features := []int{0, 1}

	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	parent := newHistogram(bd, features)
	parent.accumulate(bd, rows, grad, hess)

	// Random split of the rows.
	cut := 100 + r.Intn(300)
	left, right := rows[:cut], rows[cut:]
	lh := newHistogram(bd, features)
	lh.accumulate(bd, left, grad, hess)
	rh := newHistogram(bd, features)
	rh.accumulate(bd, right, grad, hess)

	parent.subtract(lh) // parent now holds the right child
	for f, cells := range parent.bins {
		for b := range cells {
			if math.Abs(cells[b].g-rh.bins[f][b].g) > 1e-9 ||
				math.Abs(cells[b].h-rh.bins[f][b].h) > 1e-9 ||
				cells[b].c != rh.bins[f][b].c {
				t.Fatalf("subtraction mismatch at feature %d bin %d: %+v vs %+v",
					f, b, cells[b], rh.bins[f][b])
			}
		}
	}
}

// TestGrowTreePartitionInvariants: after growing, every leaf's cover
// equals its row count, sibling covers sum to the parent's, and every
// training row lands in exactly the leaf whose range contained it.
func TestGrowTreePartitionInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	n := 800
	xs := make([][]float64, n)
	grad := make([]float64, n)
	hess := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
		grad[i] = -(xs[i][0] + math.Sin(5*xs[i][1])) // fit y with raw=0
		hess[i] = 1
	}
	bd := binDataset(xs, 3, 64)
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	tree := growTree(bd, grad, hess, rows, []int{0, 1, 2}, growParams{
		numLeaves: 16, minSamplesLeaf: 10, lambda: 1, learningRate: 1,
	})

	// Sibling covers sum to the parent's everywhere.
	for i := range tree.Nodes {
		nd := &tree.Nodes[i]
		if nd.IsLeaf() {
			continue
		}
		if tree.Nodes[nd.Left].Cover+tree.Nodes[nd.Right].Cover != nd.Cover {
			t.Fatalf("node %d: child covers %v+%v != %v", i,
				tree.Nodes[nd.Left].Cover, tree.Nodes[nd.Right].Cover, nd.Cover)
		}
	}
	// Routing every row through the tree and counting arrivals per leaf
	// must reproduce the covers.
	counts := make(map[int]float64)
	for _, x := range xs {
		counts[tree.Leaf(x)]++
	}
	for i := range tree.Nodes {
		nd := &tree.Nodes[i]
		if nd.IsLeaf() && counts[i] != nd.Cover {
			t.Fatalf("leaf %d cover %v but %v rows arrive", i, nd.Cover, counts[i])
		}
	}
}

// Property: trained-forest predictions are always finite, whatever the
// (finite) input.
func TestPredictionsFiniteProperty(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	xs := make([][]float64, 400)
	ys := make([]float64, 400)
	for i := range xs {
		xs[i] = []float64{r.Float64() * 10, r.NormFloat64()}
		ys[i] = xs[i][0] - xs[i][1]
	}
	f, err := Train(&dataset.Dataset{X: xs, Y: ys, Task: dataset.Regression},
		Params{NumTrees: 20, NumLeaves: 8, Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	prop := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true // only finite inputs in scope
		}
		v := f.RawPredict([]float64{a, b})
		return !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
