package gbdt

import (
	"context"
	"math"

	"gef/internal/forest"
	"gef/internal/par"
)

// histBin accumulates gradient statistics for one (feature, bin) cell.
type histBin struct {
	g, h float64
	c    int
}

// histogram is a per-feature collection of histBin slices restricted to
// the candidate features of one tree. features keeps the candidate list
// in its original order so accumulation can be chunked deterministically
// (map iteration order would not be stable).
type histogram struct {
	features []int
	bins     map[int][]histBin // feature → per-bin stats
}

func newHistogram(bd *binnedData, features []int) *histogram {
	h := &histogram{
		features: features,
		bins:     make(map[int][]histBin, len(features)),
	}
	for _, f := range features {
		h.bins[f] = make([]histBin, bd.features[f].numBins())
	}
	return h
}

// accumulate adds the gradient statistics of the given rows to h,
// in parallel over features: each feature's bin slice is written by
// exactly one chunk, and within a feature rows are scanned in order, so
// the result is bitwise identical to a serial scan.
func (h *histogram) accumulate(bd *binnedData, rows []int, grad, hess []float64) {
	//lint:ignore errdrop background context cannot be canceled
	_ = par.For(context.Background(), len(h.features), len(h.features), func(_, lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			f := h.features[fi]
			cells := h.bins[f]
			fb := bd.bins[f]
			for _, r := range rows {
				b := fb[r]
				cells[b].g += grad[r]
				cells[b].h += hess[r]
				cells[b].c++
			}
		}
	})
}

// subtractFrom computes h = parent − other in place over parent's storage
// and returns parent. This is the LightGBM histogram-subtraction trick:
// only the smaller child's histogram is built by scanning rows.
func (h *histogram) subtract(other *histogram) {
	for f, cells := range h.bins {
		o := other.bins[f]
		for b := range cells {
			cells[b].g -= o[b].g
			cells[b].h -= o[b].h
			cells[b].c -= o[b].c
		}
	}
}

// splitInfo describes the best split found for a leaf.
type splitInfo struct {
	feature int
	bin     int // split after this bin: rows with bin ≤ this go left
	gain    float64
	valid   bool
}

// growParams are the per-tree growth controls.
type growParams struct {
	numLeaves      int
	minSamplesLeaf int
	minGain        float64
	lambda         float64
	learningRate   float64
}

// leafState tracks one growable leaf during leaf-wise construction.
type leafState struct {
	node       int // index into the output node slice
	start, end int // range in the grower's indices array
	sumG, sumH float64
	hist       *histogram
	best       splitInfo
}

// grower builds one tree leaf-wise.
type grower struct {
	bd         *binnedData
	grad, hess []float64
	features   []int
	p          growParams
	indices    []int
	scratch    []int
	nodes      []forest.Node
	leaves     []*leafState
}

// growTree builds one regression tree on the given row subset against the
// current gradients/hessians and returns it. rows is not retained.
func growTree(bd *binnedData, grad, hess []float64, rows []int, features []int, p growParams) forest.Tree {
	g := &grower{
		bd:       bd,
		grad:     grad,
		hess:     hess,
		features: features,
		p:        p,
		indices:  append([]int(nil), rows...),
		scratch:  make([]int, len(rows)),
	}
	root := &leafState{node: 0, start: 0, end: len(g.indices)}
	for _, r := range g.indices {
		root.sumG += grad[r]
		root.sumH += hess[r]
	}
	root.hist = newHistogram(bd, features)
	root.hist.accumulate(bd, g.indices, grad, hess)
	g.findBestSplit(root)
	g.nodes = append(g.nodes, forest.Node{Left: -1, Right: -1, Cover: float64(len(rows))})
	g.leaves = append(g.leaves, root)

	numLeaves := 1
	for numLeaves < p.numLeaves {
		// Pick the growable leaf with the largest gain (leaf-wise policy).
		bestIdx := -1
		for i, l := range g.leaves {
			if l.best.valid && (bestIdx < 0 || l.best.gain > g.leaves[bestIdx].best.gain) {
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		g.split(bestIdx)
		numLeaves++
	}
	// Finalize remaining leaves with shrunken Newton values.
	for _, l := range g.leaves {
		g.nodes[l.node].Value = -l.sumG / (l.sumH + p.lambda) * p.learningRate
	}
	return forest.Tree{Nodes: g.nodes}
}

// findBestSplit scans the leaf's histogram for the highest-gain split.
func (g *grower) findBestSplit(l *leafState) {
	l.best = splitInfo{}
	count := l.end - l.start
	if count < 2*g.p.minSamplesLeaf {
		return
	}
	parentScore := l.sumG * l.sumG / (l.sumH + g.p.lambda)
	for _, f := range g.features {
		cells := l.hist.bins[f]
		nb := len(cells)
		if nb < 2 {
			continue
		}
		var gl, hl float64
		cl := 0
		for b := 0; b < nb-1; b++ {
			gl += cells[b].g
			hl += cells[b].h
			cl += cells[b].c
			if cl < g.p.minSamplesLeaf {
				continue
			}
			cr := count - cl
			if cr < g.p.minSamplesLeaf {
				break
			}
			gr := l.sumG - gl
			hr := l.sumH - hl
			gain := 0.5 * (gl*gl/(hl+g.p.lambda) + gr*gr/(hr+g.p.lambda) - parentScore)
			if gain > g.p.minGain && gain > l.best.gain && !math.IsNaN(gain) {
				l.best = splitInfo{feature: f, bin: b, gain: gain, valid: true}
			}
		}
	}
}

// split converts leaves[idx] into an internal node with two new leaves.
func (g *grower) split(idx int) {
	l := g.leaves[idx]
	f, bin := l.best.feature, l.best.bin
	fb := g.bd.bins[f]

	// Stable partition of the leaf's row range: left rows (bin ≤ split bin)
	// first, right rows buffered and copied back after.
	rightBuf := g.scratch[:0]
	writePos := l.start
	for _, r := range g.indices[l.start:l.end] {
		if int(fb[r]) <= bin {
			g.indices[writePos] = r
			writePos++
		} else {
			rightBuf = append(rightBuf, r)
		}
	}
	copy(g.indices[writePos:l.end], rightBuf)
	mid := writePos

	lc := &leafState{start: l.start, end: mid}
	rc := &leafState{start: mid, end: l.end}
	for _, r := range g.indices[lc.start:lc.end] {
		lc.sumG += g.grad[r]
		lc.sumH += g.hess[r]
	}
	rc.sumG = l.sumG - lc.sumG
	rc.sumH = l.sumH - lc.sumH

	// Histogram for the smaller child by scan; larger child by
	// subtraction, reusing the parent's storage.
	small, large := lc, rc
	if lc.end-lc.start > rc.end-rc.start {
		small, large = rc, lc
	}
	small.hist = newHistogram(g.bd, g.features)
	small.hist.accumulate(g.bd, g.indices[small.start:small.end], g.grad, g.hess)
	large.hist = l.hist
	large.hist.subtract(small.hist)
	l.hist = nil

	// Rewrite the leaf's node as an internal node and append the children.
	// Append first: it may reallocate the node slice, so the parent must
	// be addressed by index afterwards.
	lc.node = len(g.nodes)
	g.nodes = append(g.nodes, forest.Node{Left: -1, Right: -1, Cover: float64(lc.end - lc.start)})
	rc.node = len(g.nodes)
	g.nodes = append(g.nodes, forest.Node{Left: -1, Right: -1, Cover: float64(rc.end - rc.start)})
	node := &g.nodes[l.node]
	node.Feature = f
	node.Threshold = g.bd.threshold(f, bin)
	node.Gain = l.best.gain
	node.Left = lc.node
	node.Right = rc.node

	g.findBestSplit(lc)
	g.findBestSplit(rc)
	g.leaves[idx] = lc
	g.leaves = append(g.leaves, rc)
}
