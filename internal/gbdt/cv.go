package gbdt

import (
	"context"
	"fmt"
	"math"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/par"
	"gef/internal/stats"
)

// Grid is the hyper-parameter search space for GridSearchCV, mirroring the
// paper's §4.1 protocol (number of trees × leaves × learning rate).
type Grid struct {
	NumTrees      []int
	NumLeaves     []int
	LearningRates []float64
}

// GridResult records the cross-validated loss of one configuration.
type GridResult struct {
	Params   Params
	MeanLoss float64
	FoldLoss []float64
}

// GridSearchCV evaluates every configuration in the grid with k-fold
// cross-validation on ds. Within each fold, 25% of the fold-training data
// is held out as an early-stopping validation set (the paper's setup).
// It returns the winning configuration and all per-configuration results
// sorted in evaluation order.
func GridSearchCV(ds *dataset.Dataset, base Params, grid Grid, k int, seed int64) (Params, []GridResult, error) {
	return GridSearchCVCtx(context.Background(), ds, base, grid, k, seed)
}

// GridSearchCVCtx is GridSearchCV with context propagation. The full
// config×fold task matrix is evaluated in parallel — every task is an
// independent training run whose RNG streams derive only from (seed,
// fold), so results are identical at any worker count. Error reporting
// and best-config selection scan the matrix serially in evaluation
// order, preserving the serial tie-break (first config wins).
func GridSearchCVCtx(ctx context.Context, ds *dataset.Dataset, base Params, grid Grid, k int, seed int64) (Params, []GridResult, error) {
	if len(grid.NumTrees) == 0 || len(grid.NumLeaves) == 0 || len(grid.LearningRates) == 0 {
		return Params{}, nil, fmt.Errorf("gbdt: empty grid")
	}
	var configs []Params
	for _, nt := range grid.NumTrees {
		for _, nl := range grid.NumLeaves {
			for _, lr := range grid.LearningRates {
				p := base
				p.NumTrees = nt
				p.NumLeaves = nl
				p.LearningRate = lr
				configs = append(configs, p)
			}
		}
	}
	ctx, sp := obs.Start(ctx, "gbdt.grid_search_cv",
		obs.Int("configs", len(configs)),
		obs.Int("folds", k),
		obs.Int("workers", par.Workers()))
	defer sp.End()
	folds := dataset.KFold(ds.NumRows(), k, seed)

	// One task per (config, fold) pair; one chunk per task.
	type taskResult struct {
		loss float64
		err  error
	}
	tasks := make([]taskResult, len(configs)*len(folds))
	if err := par.For(ctx, len(tasks), len(tasks), func(t, _, _ int) {
		cfg, fold := t/len(folds), t%len(folds)
		loss, err := evalFold(ctx, ds, folds, fold, configs[cfg], seed)
		tasks[t] = taskResult{loss: loss, err: err}
	}); err != nil {
		return Params{}, nil, err
	}

	results := make([]GridResult, len(configs))
	best := -1
	for c, p := range configs {
		res := GridResult{Params: p}
		for i := range folds {
			tr := tasks[c*len(folds)+i]
			if tr.err != nil {
				return Params{}, nil, tr.err
			}
			res.FoldLoss = append(res.FoldLoss, tr.loss)
		}
		res.MeanLoss = stats.Mean(res.FoldLoss)
		if math.IsNaN(res.MeanLoss) {
			return Params{}, nil, fmt.Errorf("gbdt: NaN loss for params %+v", p)
		}
		results[c] = res
		if best < 0 || res.MeanLoss < results[best].MeanLoss {
			best = c
		}
	}
	return results[best].Params, results, nil
}

// evalFold trains one configuration on one fold and returns its
// held-out loss.
func evalFold(ctx context.Context, ds *dataset.Dataset, folds [][]int, i int, p Params, seed int64) (float64, error) {
	trainIdx, testIdx := dataset.FoldSplit(folds, i)
	trainAll := ds.Subset(trainIdx)
	test := ds.Subset(testIdx)
	// 25% of the fold-training data for early stopping.
	tr, va := trainAll.Split(0.25, seed+int64(i))
	f, _, err := TrainValidCtx(ctx, tr, va, p)
	if err != nil {
		return 0, fmt.Errorf("gbdt: fold %d: %w", i, err)
	}
	if p.Objective == forest.BinaryLogistic {
		return stats.LogLoss(f.PredictBatch(test.X), test.Y), nil
	}
	return stats.RMSE(f.PredictBatch(test.X), test.Y), nil
}
