package gbdt

import (
	"context"
	"fmt"
	"math"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/stats"
)

// Grid is the hyper-parameter search space for GridSearchCV, mirroring the
// paper's §4.1 protocol (number of trees × leaves × learning rate).
type Grid struct {
	NumTrees      []int
	NumLeaves     []int
	LearningRates []float64
}

// GridResult records the cross-validated loss of one configuration.
type GridResult struct {
	Params   Params
	MeanLoss float64
	FoldLoss []float64
}

// GridSearchCV evaluates every configuration in the grid with k-fold
// cross-validation on ds. Within each fold, 25% of the fold-training data
// is held out as an early-stopping validation set (the paper's setup).
// It returns the winning configuration and all per-configuration results
// sorted in evaluation order.
func GridSearchCV(ds *dataset.Dataset, base Params, grid Grid, k int, seed int64) (Params, []GridResult, error) {
	if len(grid.NumTrees) == 0 || len(grid.NumLeaves) == 0 || len(grid.LearningRates) == 0 {
		return Params{}, nil, fmt.Errorf("gbdt: empty grid")
	}
	_, sp := obs.Start(context.Background(), "gbdt.grid_search_cv",
		obs.Int("configs", len(grid.NumTrees)*len(grid.NumLeaves)*len(grid.LearningRates)),
		obs.Int("folds", k))
	defer sp.End()
	folds := dataset.KFold(ds.NumRows(), k, seed)
	var results []GridResult
	best := -1
	for _, nt := range grid.NumTrees {
		for _, nl := range grid.NumLeaves {
			for _, lr := range grid.LearningRates {
				p := base
				p.NumTrees = nt
				p.NumLeaves = nl
				p.LearningRate = lr
				res, err := evalConfig(ds, folds, p, seed)
				if err != nil {
					return Params{}, nil, err
				}
				results = append(results, res)
				if best < 0 || res.MeanLoss < results[best].MeanLoss {
					best = len(results) - 1
				}
			}
		}
	}
	return results[best].Params, results, nil
}

func evalConfig(ds *dataset.Dataset, folds [][]int, p Params, seed int64) (GridResult, error) {
	res := GridResult{Params: p}
	for i := range folds {
		trainIdx, testIdx := dataset.FoldSplit(folds, i)
		trainAll := ds.Subset(trainIdx)
		test := ds.Subset(testIdx)
		// 25% of the fold-training data for early stopping.
		tr, va := trainAll.Split(0.25, seed+int64(i))
		f, _, err := TrainValid(tr, va, p)
		if err != nil {
			return res, fmt.Errorf("gbdt: fold %d: %w", i, err)
		}
		var l float64
		if p.Objective == forest.BinaryLogistic {
			l = stats.LogLoss(f.PredictBatch(test.X), test.Y)
		} else {
			l = stats.RMSE(f.PredictBatch(test.X), test.Y)
		}
		res.FoldLoss = append(res.FoldLoss, l)
	}
	res.MeanLoss = stats.Mean(res.FoldLoss)
	if math.IsNaN(res.MeanLoss) {
		return res, fmt.Errorf("gbdt: NaN loss for params %+v", p)
	}
	return res, nil
}
