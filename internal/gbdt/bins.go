// Package gbdt trains forests of decision trees in the LightGBM style the
// paper uses as its black-box model: histogram-based split finding,
// leaf-wise (best-first) tree growth capped by a leaf budget, shrinkage,
// second-order gradient boosting for L2 regression and binary log-loss,
// validation-based early stopping and k-fold grid-search cross-validation.
// It also provides a bagged Random-Forest trainer (the paper's §6 future
// work) built on the same tree grower.
//
// The produced forest.Forest records per-node loss reduction (gain) and
// per-node sample counts (cover), which GEF's feature/interaction
// selection heuristics and TreeSHAP respectively consume.
package gbdt

import (
	"fmt"
	"sort"
)

// maxBinsLimit caps the bin count so bin indices fit in a uint16 with
// headroom.
const maxBinsLimit = 65000

// featureBins holds the discretization of one feature.
type featureBins struct {
	// upper[b] is the threshold recorded when splitting after bin b:
	// samples with value ≤ upper[b] fall in bins 0..b. It is the midpoint
	// between the largest value in bin b and the smallest value in bin
	// b+1, which keeps recorded thresholds strictly between observed
	// values (no training sample sits exactly on a threshold).
	upper []float64
	// cuts[b] is the inclusive upper raw-value bound of bin b, used to
	// map values to bins. len(cuts) == numBins−1 (last bin is unbounded).
	cuts []float64
}

func (fb *featureBins) numBins() int { return len(fb.cuts) + 1 }

// binIndex maps a raw value to its bin via binary search.
func (fb *featureBins) binIndex(v float64) int {
	// First index with cuts[i] >= v  → bin i.
	return sort.SearchFloat64s(fb.cuts, v)
}

// buildBins discretizes a feature column into at most maxBins
// equal-frequency bins. Distinct values fewer than maxBins each get their
// own bin, so small categorical-like features are represented exactly.
func buildBins(col []float64, maxBins int) *featureBins {
	if maxBins < 2 {
		panic(fmt.Sprintf("gbdt: maxBins = %d, want ≥ 2", maxBins))
	}
	if maxBins > maxBinsLimit {
		maxBins = maxBinsLimit
	}
	sorted := append([]float64(nil), col...)
	sort.Float64s(sorted)
	// Distinct values with their multiplicities.
	var vals []float64
	var counts []int
	for i, v := range sorted {
		//lint:ignore floatcmp distinct-value binning over sorted data; duplicates are bit-identical
		if i == 0 || v != sorted[i-1] {
			vals = append(vals, v)
			counts = append(counts, 1)
		} else {
			counts[len(counts)-1]++
		}
	}
	fb := &featureBins{}
	if len(vals) <= 1 {
		return fb // single bin, no candidate splits
	}
	if len(vals) <= maxBins {
		// One bin per distinct value.
		for i := 0; i+1 < len(vals); i++ {
			mid := (vals[i] + vals[i+1]) / 2
			fb.cuts = append(fb.cuts, mid)
			fb.upper = append(fb.upper, mid)
		}
		return fb
	}
	// Equal-frequency binning over distinct values weighted by counts.
	total := len(col)
	perBin := float64(total) / float64(maxBins)
	acc := 0
	nextTarget := perBin
	for i := 0; i+1 < len(vals); i++ {
		acc += counts[i]
		if float64(acc) >= nextTarget {
			mid := (vals[i] + vals[i+1]) / 2
			fb.cuts = append(fb.cuts, mid)
			fb.upper = append(fb.upper, mid)
			for float64(acc) >= nextTarget {
				nextTarget += perBin
			}
			if len(fb.cuts) == maxBins-1 {
				break
			}
		}
	}
	return fb
}

// binnedData is the feature-major binned representation of a design
// matrix: bins[f][row] is the bin index of feature f for that row.
type binnedData struct {
	features []*featureBins
	bins     [][]uint16
	numRows  int
}

// binDataset bins every column of xs.
func binDataset(xs [][]float64, numFeatures, maxBins int) *binnedData {
	bd := &binnedData{
		features: make([]*featureBins, numFeatures),
		bins:     make([][]uint16, numFeatures),
		numRows:  len(xs),
	}
	col := make([]float64, len(xs))
	for f := 0; f < numFeatures; f++ {
		for i, row := range xs {
			col[i] = row[f]
		}
		fb := buildBins(col, maxBins)
		if fb.numBins() > maxBinsLimit {
			panic("gbdt: bin count overflow")
		}
		bd.features[f] = fb
		b := make([]uint16, len(xs))
		for i, row := range xs {
			b[i] = uint16(fb.binIndex(row[f]))
		}
		bd.bins[f] = b
	}
	return bd
}

// threshold returns the real-valued threshold recorded when splitting
// feature f after bin b.
func (bd *binnedData) threshold(f, b int) float64 {
	return bd.features[f].upper[b]
}
