package gbdt

import (
	"testing"

	"gef/internal/dataset"
	"gef/internal/stats"
)

func TestGridSearchCV(t *testing.T) {
	ds := dataset.GPrime(800, 0.1, 11)
	grid := Grid{
		NumTrees:      []int{30},
		NumLeaves:     []int{4, 16},
		LearningRates: []float64{0.01, 0.2},
	}
	best, results, err := GridSearchCV(ds, Params{Seed: 1, EarlyStoppingRounds: 5}, grid, 3, 7)
	if err != nil {
		t.Fatalf("GridSearchCV: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for _, r := range results {
		if len(r.FoldLoss) != 3 {
			t.Errorf("config %+v has %d fold losses, want 3", r.Params, len(r.FoldLoss))
		}
	}
	// With only 30 rounds, lr=0.2 must beat lr=0.01.
	if best.LearningRate != 0.2 {
		t.Errorf("best lr = %v, want 0.2", best.LearningRate)
	}
	// Best config has the minimal mean loss.
	for _, r := range results {
		if r.MeanLoss < meanLossOf(results, best)-1e-12 {
			t.Errorf("config %+v beats the chosen best", r.Params)
		}
	}
}

func meanLossOf(results []GridResult, p Params) float64 {
	for _, r := range results {
		if r.Params == p {
			return r.MeanLoss
		}
	}
	return -1
}

func TestGridSearchCVEmptyGrid(t *testing.T) {
	ds := dataset.GPrime(100, 0.1, 1)
	if _, _, err := GridSearchCV(ds, Params{}, Grid{}, 2, 1); err == nil {
		t.Error("accepted empty grid")
	}
}

func TestTrainRFRegression(t *testing.T) {
	ds := dataset.GPrime(2000, 0.1, 13)
	train, test := ds.Split(0.25, 3)
	f, err := TrainRF(train, RFParams{NumTrees: 80, NumLeaves: 64, FeatureFraction: 0.8, Seed: 1})
	if err != nil {
		t.Fatalf("TrainRF: %v", err)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("RF invalid: %v", err)
	}
	r2 := stats.R2(f.PredictBatch(test.X), test.Y)
	if r2 < 0.75 {
		t.Errorf("RF test R² = %v, want ≥ 0.75", r2)
	}
}

func TestTrainRFClassification(t *testing.T) {
	d := &dataset.Dataset{Task: dataset.Classification}
	for i := 0; i < 600; i++ {
		x := float64(i%100) / 99
		y := 0.0
		if x > 0.5 {
			y = 1
		}
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, y)
	}
	f, err := TrainRF(d, RFParams{NumTrees: 30, NumLeaves: 8, Classification: true, Seed: 2})
	if err != nil {
		t.Fatalf("TrainRF: %v", err)
	}
	pred := f.PredictBatch(d.X)
	for _, p := range pred {
		if p < -0.01 || p > 1.01 {
			t.Fatalf("averaged probability %v outside [0,1]", p)
		}
	}
	if acc := stats.Accuracy(pred, d.Y); acc < 0.95 {
		t.Errorf("RF accuracy = %v, want ≥ 0.95", acc)
	}
}

func TestTrainRFRejectsBadClassTargets(t *testing.T) {
	d := &dataset.Dataset{X: [][]float64{{1}}, Y: []float64{0.5}, Task: dataset.Classification}
	if _, err := TrainRF(d, RFParams{Classification: true}); err == nil {
		t.Error("accepted non-binary targets")
	}
}

func TestTrainRFEmpty(t *testing.T) {
	if _, err := TrainRF(&dataset.Dataset{Task: dataset.Regression}, RFParams{}); err == nil {
		t.Error("accepted empty dataset")
	}
}

func TestRFDeterministic(t *testing.T) {
	ds := dataset.GPrime(300, 0.1, 17)
	f1, err := TrainRF(ds, RFParams{NumTrees: 5, Seed: 9})
	if err != nil {
		t.Fatalf("TrainRF: %v", err)
	}
	f2, err := TrainRF(ds, RFParams{NumTrees: 5, Seed: 9})
	if err != nil {
		t.Fatalf("TrainRF: %v", err)
	}
	for _, x := range ds.X[:10] {
		if f1.RawPredict(x) != f2.RawPredict(x) {
			t.Fatal("same-seed RF differs")
		}
	}
}

func TestSqrtFrac(t *testing.T) {
	if got := sqrtFrac(81); got != 9.0/81 {
		t.Errorf("sqrtFrac(81) = %v, want 1/9", got)
	}
	if got := sqrtFrac(1); got != 1 {
		t.Errorf("sqrtFrac(1) = %v, want 1", got)
	}
}

func TestOOBScore(t *testing.T) {
	ds := dataset.GPrime(500, 0.1, 19)
	train, test := ds.Split(0.2, 1)
	f, err := TrainRF(train, RFParams{NumTrees: 20, Seed: 1})
	if err != nil {
		t.Fatalf("TrainRF: %v", err)
	}
	rmse := OOBScore(f, test, false)
	if rmse <= 0 || rmse > 2 {
		t.Errorf("OOB RMSE = %v out of plausible range", rmse)
	}
}
