package gbdt

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/par"
	"gef/internal/stats"
)

// Metrics instruments (hoisted; see internal/obs). Per-iteration wall
// times are split into tree growth (histogram build + split search) and
// the whole iteration (gradients + growth + score update + loss).
var (
	mTreesGrown = obs.Metrics().Counter("gbdt.trees_grown")
	mIterMs     = obs.Metrics().Histogram("gbdt.iteration_ms")
	mGrowMs     = obs.Metrics().Histogram("gbdt.grow_tree_ms")
	mTrainLoss  = obs.Metrics().Gauge("gbdt.final_train_loss")
	mEarlyStops = obs.Metrics().Counter("gbdt.early_stops")
)

// Params configures GBDT training. Zero values are replaced by defaults
// (see withDefaults) so callers may set only what they care about.
type Params struct {
	NumTrees            int              // boosting rounds (default 100)
	NumLeaves           int              // max leaves per tree (default 31)
	LearningRate        float64          // shrinkage (default 0.1)
	MinSamplesLeaf      int              // min rows per leaf (default 20)
	MinGain             float64          // min loss reduction to split (default 0)
	Lambda              float64          // L2 leaf regularization (default 1)
	MaxBins             int              // histogram bins per feature (default 255)
	Objective           forest.Objective // default Regression
	EarlyStoppingRounds int              // 0 disables early stopping
	Seed                int64            // drives row/column subsampling
	FeatureFraction     float64          // per-tree column subsample in (0,1] (default 1)
	BaggingFraction     float64          // per-tree row subsample in (0,1] (default 1)
}

func (p Params) withDefaults() Params {
	if p.NumTrees == 0 {
		p.NumTrees = 100
	}
	if p.NumLeaves == 0 {
		p.NumLeaves = 31
	}
	if p.LearningRate == 0 {
		p.LearningRate = 0.1
	}
	if p.MinSamplesLeaf == 0 {
		p.MinSamplesLeaf = 20
	}
	if p.Lambda == 0 {
		p.Lambda = 1
	}
	if p.MaxBins == 0 {
		p.MaxBins = 255
	}
	if p.Objective == "" {
		p.Objective = forest.Regression
	}
	if p.FeatureFraction == 0 {
		p.FeatureFraction = 1
	}
	if p.BaggingFraction == 0 {
		p.BaggingFraction = 1
	}
	return p
}

func (p Params) validate() error {
	switch {
	case p.NumTrees < 1:
		return fmt.Errorf("gbdt: NumTrees = %d, want ≥ 1", p.NumTrees)
	case p.NumLeaves < 2:
		return fmt.Errorf("gbdt: NumLeaves = %d, want ≥ 2", p.NumLeaves)
	case p.LearningRate <= 0:
		return fmt.Errorf("gbdt: LearningRate = %v, want > 0", p.LearningRate)
	case p.MaxBins < 2:
		return fmt.Errorf("gbdt: MaxBins = %d, want ≥ 2", p.MaxBins)
	case p.FeatureFraction <= 0 || p.FeatureFraction > 1:
		return fmt.Errorf("gbdt: FeatureFraction = %v, want (0,1]", p.FeatureFraction)
	case p.BaggingFraction <= 0 || p.BaggingFraction > 1:
		return fmt.Errorf("gbdt: BaggingFraction = %v, want (0,1]", p.BaggingFraction)
	case p.Objective != forest.Regression && p.Objective != forest.BinaryLogistic:
		return fmt.Errorf("gbdt: unsupported objective %q", p.Objective)
	}
	return nil
}

// Report records per-iteration losses from a training run.
type Report struct {
	TrainLoss     []float64 // per-iteration training loss
	ValidLoss     []float64 // per-iteration validation loss (nil without a valid set)
	BestIteration int       // iteration with the lowest validation loss
	Stopped       bool      // true if early stopping fired
}

// Train fits a GBDT forest on ds with no validation set (and therefore no
// early stopping).
func Train(ds *dataset.Dataset, p Params) (*forest.Forest, error) {
	f, _, err := TrainValid(ds, nil, p)
	return f, err
}

// TrainValid fits a GBDT forest on train, evaluating each round on valid
// when it is non-nil. With EarlyStoppingRounds > 0 and a validation set,
// training stops after that many rounds without improvement and the forest
// is truncated to its best iteration.
func TrainValid(train, valid *dataset.Dataset, p Params) (*forest.Forest, *Report, error) {
	return TrainValidCtx(context.Background(), train, valid, p)
}

// TrainValidCtx is TrainValid under an obs span recording the training
// shape; per-iteration timings land in the gbdt.* histograms and an
// early-stop decision is emitted as a span event.
func TrainValidCtx(ctx context.Context, train, valid *dataset.Dataset, p Params) (*forest.Forest, *Report, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	if err := train.Validate(); err != nil {
		return nil, nil, fmt.Errorf("gbdt: invalid training set: %w", err)
	}
	if train.NumRows() == 0 {
		return nil, nil, fmt.Errorf("gbdt: empty training set")
	}
	if p.Objective == forest.BinaryLogistic {
		for _, y := range train.Y {
			//lint:ignore floatcmp binary labels must be exactly 0 or 1; anything else is a data error
			if y != 0 && y != 1 {
				return nil, nil, fmt.Errorf("gbdt: binary objective requires targets in {0,1}, found %v", y)
			}
		}
	}

	n := train.NumRows()
	numFeat := train.NumFeatures()
	_, sp := obs.Start(ctx, "gbdt.train",
		obs.Int("rows", n),
		obs.Int("features", numFeat),
		obs.Int("num_trees", p.NumTrees),
		obs.Int("num_leaves", p.NumLeaves),
		obs.Str("objective", string(p.Objective)),
		obs.Int("workers", par.Workers()))
	defer sp.End()
	bd := binDataset(train.X, numFeat, p.MaxBins)

	base := baseScore(train.Y, p.Objective)
	f := &forest.Forest{
		NumFeatures:  numFeat,
		BaseScore:    base,
		Objective:    p.Objective,
		FeatureNames: train.FeatureNames,
	}

	raw := make([]float64, n) // raw score per training row
	for i := range raw {
		raw[i] = base
	}
	var rawValid []float64
	if valid != nil {
		rawValid = make([]float64, valid.NumRows())
		for i := range rawValid {
			rawValid[i] = base
		}
	}

	grad := make([]float64, n)
	hess := make([]float64, n)
	allRows := make([]int, n)
	for i := range allRows {
		allRows[i] = i
	}
	allFeatures := make([]int, numFeat)
	for i := range allFeatures {
		allFeatures[i] = i
	}

	gp := growParams{
		numLeaves:      p.NumLeaves,
		minSamplesLeaf: p.MinSamplesLeaf,
		minGain:        p.MinGain,
		lambda:         p.Lambda,
		learningRate:   p.LearningRate,
	}

	rep := &Report{BestIteration: -1}
	bestValid := math.Inf(1)
	for iter := 0; iter < p.NumTrees; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		iterStart := time.Now()
		computeGradients(p.Objective, raw, train.Y, grad, hess)

		// Row/column subsampling draws from per-iteration RNG streams
		// derived by par.SplitSeed, so iteration i's draws are a pure
		// function of (Seed, i): no draw in one iteration can shift
		// another's sequence, whatever order or parallelism they run in.
		rows := allRows
		if p.BaggingFraction < 1 {
			rows = sampleRows(par.SplitSeed(p.Seed, 2*iter), n, p.BaggingFraction)
		}
		feats := allFeatures
		if p.FeatureFraction < 1 {
			feats = sampleFeatures(par.SplitSeed(p.Seed, 2*iter+1), numFeat, p.FeatureFraction)
		}

		growStart := time.Now()
		tree := growTree(bd, grad, hess, rows, feats, gp)
		mGrowMs.Observe(float64(time.Since(growStart)) / float64(time.Millisecond))
		mTreesGrown.Inc()
		f.Trees = append(f.Trees, tree)

		// Incremental raw-score update on train and valid through the
		// newly grown tree's flat compilation (O(nodes) to build, then a
		// batched structure-of-arrays walk instead of a per-row pointer
		// chase): disjoint per-row writes, parallel over fixed row
		// chunks, raw[i] += t(x_i) bit-identical to the scalar update.
		ft := forest.Compile(&forest.Forest{
			Trees:       []forest.Tree{tree},
			NumFeatures: numFeat,
			Objective:   p.Objective,
		})
		if err := par.For(ctx, n, 0, func(_, lo, hi int) {
			ft.AddRawInto(train.X[lo:hi], raw[lo:hi])
		}); err != nil {
			return nil, nil, err
		}
		rep.TrainLoss = append(rep.TrainLoss, loss(p.Objective, raw, train.Y))
		if valid != nil {
			if err := par.For(ctx, len(rawValid), 0, func(_, lo, hi int) {
				ft.AddRawInto(valid.X[lo:hi], rawValid[lo:hi])
			}); err != nil {
				return nil, nil, err
			}
			vl := loss(p.Objective, rawValid, valid.Y)
			rep.ValidLoss = append(rep.ValidLoss, vl)
			if vl < bestValid {
				bestValid = vl
				rep.BestIteration = iter
			}
			if p.EarlyStoppingRounds > 0 && iter-rep.BestIteration >= p.EarlyStoppingRounds {
				rep.Stopped = true
				mEarlyStops.Inc()
				sp.Event("gbdt.early_stop",
					obs.Int("iteration", iter),
					obs.Int("best_iteration", rep.BestIteration),
					obs.F64("best_valid_loss", bestValid))
				mIterMs.Observe(float64(time.Since(iterStart)) / float64(time.Millisecond))
				break
			}
		}
		mIterMs.Observe(float64(time.Since(iterStart)) / float64(time.Millisecond))
	}
	if valid == nil {
		rep.BestIteration = len(f.Trees) - 1
	} else if rep.BestIteration >= 0 {
		f.Trees = f.Trees[:rep.BestIteration+1]
	}
	if err := f.Validate(); err != nil {
		return nil, nil, fmt.Errorf("gbdt: produced invalid forest: %w", err)
	}
	if len(rep.TrainLoss) > 0 {
		mTrainLoss.Set(rep.TrainLoss[len(rep.TrainLoss)-1])
	}
	sp.Set(obs.Int("trees", len(f.Trees)), obs.Bool("stopped_early", rep.Stopped))
	return f, rep, nil
}

// baseScore returns the constant initial prediction: the target mean for
// regression, the empirical log-odds (clipped) for binary classification.
func baseScore(y []float64, obj forest.Objective) float64 {
	m := stats.Mean(y)
	if obj != forest.BinaryLogistic {
		return m
	}
	const eps = 1e-6
	m = math.Min(math.Max(m, eps), 1-eps)
	return math.Log(m / (1 - m))
}

// computeGradients fills grad/hess with the first and second derivatives
// of the loss w.r.t. the raw score.
func computeGradients(obj forest.Objective, raw, y, grad, hess []float64) {
	if obj == forest.BinaryLogistic {
		for i := range raw {
			pr := forest.Sigmoid(raw[i])
			grad[i] = pr - y[i]
			h := pr * (1 - pr)
			if h < 1e-16 {
				h = 1e-16
			}
			hess[i] = h
		}
		return
	}
	for i := range raw {
		grad[i] = raw[i] - y[i]
		hess[i] = 1
	}
}

// loss evaluates the objective on raw scores: RMSE for regression,
// mean log-loss for classification.
func loss(obj forest.Objective, raw, y []float64) float64 {
	if obj == forest.BinaryLogistic {
		prob := make([]float64, len(raw))
		for i, r := range raw {
			prob[i] = forest.Sigmoid(r)
		}
		return stats.LogLoss(prob, y)
	}
	return stats.RMSE(raw, y)
}

// sampleRows and sampleFeatures each seed their own rand.Rand from the
// caller-derived stream seed (see par.SplitSeed), so every call is a
// self-contained deterministic draw.

func sampleRows(seed int64, n int, frac float64) []int {
	k := int(float64(n) * frac)
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	return rng.Perm(n)[:k]
}

func sampleFeatures(seed int64, n int, frac float64) []int {
	k := int(math.Ceil(float64(n) * frac))
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	return rng.Perm(n)[:k]
}
