// Package pdp computes one- and two-dimensional partial-dependence
// functions of a forest over a background sample, and Friedman's
// H-statistic built from them — the most expensive of the paper's four
// interaction-detection strategies (§3.4).
//
// Every grid point costs |background| forest evaluations; all of them
// run through the flat structure-of-arrays batch kernels
// (forest.Compiled): the background is cloned once into a scratch
// matrix, each grid point overwrites only the swept feature column(s),
// and one batched traversal evaluates the whole background per point.
// Per-point sums accumulate in background order, so results are bitwise
// identical to the historical row-at-a-time walk.
package pdp

import (
	"fmt"

	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/stats"
)

// Metrics instruments (hoisted; see internal/obs): every PD-grid point
// costs |background| forest evaluations, and H-Stat is quadratic in the
// sample — pdp.forest_evals is the number future sharding PRs must cut.
var (
	mForestEvals = obs.Metrics().Counter("pdp.forest_evals")
	mHStatCalls  = obs.Metrics().Counter("pdp.hstat_calls")
)

// cloneRows deep-copies the background matrix into a scratch the sweep
// can overwrite column-wise.
func cloneRows(background [][]float64) [][]float64 {
	rows := make([][]float64, len(background))
	flat := make([]float64, len(background)*len(background[0]))
	w := len(background[0])
	for i, b := range background {
		rows[i] = flat[i*w : (i+1)*w : (i+1)*w]
		copy(rows[i], b)
	}
	return rows
}

// OneDimAt evaluates the one-dimensional partial-dependence function of
// feature j at each of the given values:
//
//	F_j(v) = (1/|X|) Σ_b f(x_b with x_bj ← v)
//
// The returned values are centred to mean zero over the evaluation
// points, as the H-statistic requires.
func OneDimAt(f *forest.Forest, background [][]float64, j int, values []float64) []float64 {
	if len(background) == 0 {
		panic("pdp: empty background sample")
	}
	mForestEvals.Add(int64(len(values)) * int64(len(background)))
	fl := forest.Compiled(f)
	rows := cloneRows(background)
	preds := make([]float64, len(background))
	out := make([]float64, len(values))
	for vi, v := range values {
		for _, row := range rows {
			row[j] = v
		}
		fl.PredictBatchInto(rows, preds)
		var s float64
		for _, p := range preds {
			s += p
		}
		out[vi] = s / float64(len(background))
	}
	center(out)
	return out
}

// TwoDimAt evaluates the two-dimensional partial-dependence function of
// features (i, j) at each paired point (vi[k], vj[k]), centred to mean
// zero.
func TwoDimAt(f *forest.Forest, background [][]float64, i, j int, vi, vj []float64) []float64 {
	if len(vi) != len(vj) {
		panic(fmt.Sprintf("pdp: paired value lengths differ: %d vs %d", len(vi), len(vj)))
	}
	if len(background) == 0 {
		panic("pdp: empty background sample")
	}
	mForestEvals.Add(int64(len(vi)) * int64(len(background)))
	fl := forest.Compiled(f)
	rows := cloneRows(background)
	preds := make([]float64, len(background))
	out := make([]float64, len(vi))
	for k := range vi {
		for _, row := range rows {
			row[i] = vi[k]
			row[j] = vj[k]
		}
		fl.PredictBatchInto(rows, preds)
		var s float64
		for _, p := range preds {
			s += p
		}
		out[k] = s / float64(len(background))
	}
	center(out)
	return out
}

// Grid1D evaluates the (uncentred) one-dimensional partial dependence of
// feature j over an explicit grid, for plotting (Figs. 9–10 comparisons).
func Grid1D(f *forest.Forest, background [][]float64, j int, grid []float64) []float64 {
	if len(background) == 0 {
		panic("pdp: empty background sample")
	}
	mForestEvals.Add(int64(len(grid)) * int64(len(background)))
	fl := forest.Compiled(f)
	rows := cloneRows(background)
	preds := make([]float64, len(background))
	out := make([]float64, len(grid))
	for gi, v := range grid {
		for _, row := range rows {
			row[j] = v
		}
		fl.PredictBatchInto(rows, preds)
		var s float64
		for _, p := range preds {
			s += p
		}
		out[gi] = s / float64(len(background))
	}
	return out
}

// ICE computes Individual Conditional Expectation curves (Goldstein et
// al., cited by the paper's related work): for each background row b, the
// forest prediction as feature j sweeps the grid while the rest of b is
// held fixed. The partial dependence is the average of these curves;
// heterogeneity across them reveals interactions that PD averages away.
// Returns one curve per background row, each of length len(grid).
func ICE(f *forest.Forest, background [][]float64, j int, grid []float64) [][]float64 {
	if len(background) == 0 {
		panic("pdp: empty background sample")
	}
	mForestEvals.Add(int64(len(grid)) * int64(len(background)))
	fl := forest.Compiled(f)
	// Scratch: len(grid) copies of the current background row, the swept
	// column rewritten per row — one batched traversal per curve.
	sweep := make([][]float64, len(grid))
	flat := make([]float64, len(grid)*len(background[0]))
	w := len(background[0])
	for gi := range sweep {
		sweep[gi] = flat[gi*w : (gi+1)*w : (gi+1)*w]
	}
	out := make([][]float64, len(background))
	for bi, b := range background {
		for gi, v := range grid {
			copy(sweep[gi], b)
			sweep[gi][j] = v
		}
		curve := make([]float64, len(grid))
		fl.PredictBatchInto(sweep, curve)
		out[bi] = curve
	}
	return out
}

// CenteredICE returns ICE curves anchored at the first grid point
// (c-ICE), which makes heterogeneity in slopes directly comparable.
//
//lint:ignore obsspan delegates to ICE, which carries the forest-eval instrumentation; centering is a cheap pass
func CenteredICE(f *forest.Forest, background [][]float64, j int, grid []float64) [][]float64 {
	curves := ICE(f, background, j, grid)
	for _, c := range curves {
		base := c[0]
		for i := range c {
			c[i] -= base
		}
	}
	return curves
}

// HStatistic computes Friedman's pairwise H² statistic for features
// (i, j), using sample both as the evaluation points and the background:
//
//	H² = Σ_k [F_ij(x_ki, x_kj) − F_i(x_ki) − F_j(x_kj)]² / Σ_k F_ij²(x_ki, x_kj)
//
// Cost is O(|sample|²) forest evaluations per pair, which is why the paper
// positions Gain-Path as the cheap alternative.
func HStatistic(f *forest.Forest, sample [][]float64, i, j int) float64 {
	n := len(sample)
	if n == 0 {
		panic("pdp: empty sample")
	}
	mHStatCalls.Inc()
	vi := make([]float64, n)
	vj := make([]float64, n)
	for k, x := range sample {
		vi[k] = x[i]
		vj[k] = x[j]
	}
	fi := OneDimAt(f, sample, i, vi)
	fj := OneDimAt(f, sample, j, vj)
	fij := TwoDimAt(f, sample, i, j, vi, vj)
	var num, den float64
	for k := 0; k < n; k++ {
		d := fij[k] - fi[k] - fj[k]
		num += d * d
		den += fij[k] * fij[k]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func center(xs []float64) {
	m := stats.Mean(xs)
	for i := range xs {
		xs[i] -= m
	}
}
