package pdp

import (
	"math"
	"math/rand"
	"testing"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gbdt"
	"gef/internal/stats"
)

// additiveForest trains a forest on y = x₁ + sin(20·x₂), a purely additive
// target, so PD functions have closed-form expectations.
func additiveForest(t *testing.T, n int) (*forest.Forest, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	d := &dataset.Dataset{Task: dataset.Regression}
	for i := 0; i < n; i++ {
		x1, x2 := rng.Float64(), rng.Float64()
		d.X = append(d.X, []float64{x1, x2})
		d.Y = append(d.Y, x1+math.Sin(20*x2))
	}
	f, err := gbdt.Train(d, gbdt.Params{NumTrees: 120, NumLeaves: 16, LearningRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	return f, d
}

// interactingForest trains on y = x₁·x₂ (pure interaction).
func interactingForest(t *testing.T, n int) (*forest.Forest, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	d := &dataset.Dataset{Task: dataset.Regression}
	for i := 0; i < n; i++ {
		x1, x2 := rng.Float64(), rng.Float64()
		d.X = append(d.X, []float64{x1, x2})
		d.Y = append(d.Y, 4*x1*x2)
	}
	f, err := gbdt.Train(d, gbdt.Params{NumTrees: 120, NumLeaves: 16, LearningRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	return f, d
}

func TestOneDimAtRecoversAdditiveShape(t *testing.T) {
	f, d := additiveForest(t, 3000)
	grid := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	pd := OneDimAt(f, d.X[:200], 0, grid)
	// For an additive model, PD of x₁ is x₁ + const; after centring,
	// pd[k] ≈ grid[k] − mean(grid) = grid[k] − 0.5.
	for k, g := range grid {
		want := g - 0.5
		if math.Abs(pd[k]-want) > 0.1 {
			t.Errorf("PD(%v) = %v, want ≈ %v", g, pd[k], want)
		}
	}
}

func TestOneDimAtCentred(t *testing.T) {
	f, d := additiveForest(t, 1000)
	pd := OneDimAt(f, d.X[:100], 1, []float64{0.1, 0.4, 0.9})
	if m := stats.Mean(pd); math.Abs(m) > 1e-12 {
		t.Errorf("centred PD has mean %v", m)
	}
}

func TestGrid1DUncentred(t *testing.T) {
	f, d := additiveForest(t, 1000)
	pd := Grid1D(f, d.X[:100], 0, []float64{0.2, 0.8})
	// Uncentred PD must carry the model's level: mean ≈ E[y] ≈ 0.5 + E[sin].
	if pd[1] <= pd[0] {
		t.Errorf("PD should increase in x₁: %v", pd)
	}
	if pd[0] < -1 || pd[0] > 2 {
		t.Errorf("uncentred PD level %v implausible", pd[0])
	}
}

func TestTwoDimAtAdditiveDecomposes(t *testing.T) {
	// For an additive model, F_ij(a,b) ≈ F_i(a) + F_j(b) after centring.
	f, d := additiveForest(t, 3000)
	bg := d.X[:150]
	vi := []float64{0.1, 0.5, 0.9, 0.3}
	vj := []float64{0.2, 0.8, 0.4, 0.6}
	fij := TwoDimAt(f, bg, 0, 1, vi, vj)
	fi := OneDimAt(f, bg, 0, vi)
	fj := OneDimAt(f, bg, 1, vj)
	for k := range vi {
		if math.Abs(fij[k]-(fi[k]+fj[k])) > 0.15 {
			t.Errorf("point %d: F_ij = %v, F_i+F_j = %v", k, fij[k], fi[k]+fj[k])
		}
	}
}

func TestHStatisticSeparatesInteraction(t *testing.T) {
	fAdd, dAdd := additiveForest(t, 3000)
	fInt, dInt := interactingForest(t, 3000)
	hAdd := HStatistic(fAdd, dAdd.X[:120], 0, 1)
	hInt := HStatistic(fInt, dInt.X[:120], 0, 1)
	if hAdd < 0 || hInt < 0 {
		t.Fatalf("H² must be non-negative: %v, %v", hAdd, hInt)
	}
	if hInt < 5*hAdd || hInt < 0.05 {
		t.Errorf("interaction H² = %v should dwarf additive H² = %v", hInt, hAdd)
	}
}

func TestHStatisticConstantModel(t *testing.T) {
	// A forest with a single constant leaf has zero PD everywhere → H = 0.
	f := &forest.Forest{
		Trees:       []forest.Tree{{Nodes: []forest.Node{{Left: -1, Right: -1, Value: 1, Cover: 1}}}},
		NumFeatures: 2,
		Objective:   forest.Regression,
	}
	sample := [][]float64{{0, 0}, {1, 1}, {0.5, 0.2}}
	if h := HStatistic(f, sample, 0, 1); h != 0 {
		t.Errorf("H² of constant model = %v, want 0", h)
	}
}

func TestICECurvesShapeAndMeanEqualsPD(t *testing.T) {
	f, d := additiveForest(t, 1500)
	bg := d.X[:60]
	grid := []float64{0.1, 0.5, 0.9}
	curves := ICE(f, bg, 0, grid)
	if len(curves) != 60 || len(curves[0]) != 3 {
		t.Fatalf("ICE shape %d×%d, want 60×3", len(curves), len(curves[0]))
	}
	// The mean ICE curve equals the (uncentred) partial dependence.
	pd := Grid1D(f, bg, 0, grid)
	for gi := range grid {
		var mean float64
		for _, c := range curves {
			mean += c[gi]
		}
		mean /= float64(len(curves))
		if math.Abs(mean-pd[gi]) > 1e-10 {
			t.Errorf("mean ICE at %v = %v, PD = %v", grid[gi], mean, pd[gi])
		}
	}
}

func TestICEAdditiveCurvesParallel(t *testing.T) {
	// For an additive model, ICE curves are parallel: centred curves all
	// coincide.
	f, d := additiveForest(t, 3000)
	grid := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	curves := CenteredICE(f, d.X[:40], 0, grid)
	for gi := range grid {
		var lo, hi float64 = math.Inf(1), math.Inf(-1)
		for _, c := range curves {
			lo = math.Min(lo, c[gi])
			hi = math.Max(hi, c[gi])
		}
		// A trained forest approximates the additive target with small
		// spurious interactions, so the spread is not exactly zero — but
		// it must stay far below the strong-interaction case (≥ 1 in
		// TestICEInteractionCurvesDiverge).
		if hi-lo > 0.5 {
			t.Errorf("centred ICE spread %v at grid %d on an additive model", hi-lo, gi)
		}
	}
}

func TestICEInteractionCurvesDiverge(t *testing.T) {
	// For y = 4·x₁·x₂ the slope in x₁ depends on x₂ → centred curves fan
	// out far more than in the additive case.
	f, d := interactingForest(t, 3000)
	grid := []float64{0.1, 0.9}
	curves := CenteredICE(f, d.X[:40], 0, grid)
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, c := range curves {
		lo = math.Min(lo, c[1])
		hi = math.Max(hi, c[1])
	}
	if hi-lo < 1 {
		t.Errorf("centred ICE spread %v, want ≥ 1 for a strong interaction", hi-lo)
	}
}

func TestPanicsOnEmptyBackground(t *testing.T) {
	f, _ := additiveForest(t, 200)
	for name, fn := range map[string]func(){
		"OneDimAt":   func() { OneDimAt(f, nil, 0, []float64{1}) },
		"TwoDimAt":   func() { TwoDimAt(f, nil, 0, 1, []float64{1}, []float64{1}) },
		"Grid1D":     func() { Grid1D(f, nil, 0, []float64{1}) },
		"HStatistic": func() { HStatistic(f, nil, 0, 1) },
		"ICE":        func() { ICE(f, nil, 0, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on empty background", name)
				}
			}()
			fn()
		}()
	}
}

func TestTwoDimAtLengthMismatchPanics(t *testing.T) {
	f, d := additiveForest(t, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TwoDimAt(f, d.X[:10], 0, 1, []float64{1, 2}, []float64{1})
}
