package lime

import (
	"math"
	"math/rand"
	"testing"
)

// background draws rows uniformly from [0,1]^d.
func background(n, d int, seed int64) [][]float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.Float64()
		}
		out[i] = row
	}
	return out
}

func TestExplainLinearFunction(t *testing.T) {
	// f(x) = 3x₀ − 2x₁ + 1: local coefficients (on standardized features)
	// must be proportional to 3·sd₀ and −2·sd₁.
	bg := background(500, 2, 1)
	f := func(x []float64) float64 { return 3*x[0] - 2*x[1] + 1 }
	e, err := Explain(f, bg, []float64{0.5, 0.5}, Config{NumSamples: 3000, Seed: 2})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	// Uniform [0,1] sd ≈ 0.289.
	const sd = 0.2887
	if math.Abs(e.Weights[0]-3*sd) > 0.05 {
		t.Errorf("w₀ = %v, want ≈ %v", e.Weights[0], 3*sd)
	}
	if math.Abs(e.Weights[1]-(-2*sd)) > 0.05 {
		t.Errorf("w₁ = %v, want ≈ %v", e.Weights[1], -2*sd)
	}
	if math.Abs(e.Intercept-f([]float64{0.5, 0.5})) > 0.05 {
		t.Errorf("intercept = %v, want ≈ %v", e.Intercept, f([]float64{0.5, 0.5}))
	}
	if e.R2 < 0.99 {
		t.Errorf("local R² = %v on a linear function, want ≈ 1", e.R2)
	}
}

func TestExplainIsLocal(t *testing.T) {
	// f = step at 0.5 in x₀: explaining points on either side far from the
	// step yields near-zero slope; explaining at the step yields a large
	// positive slope.
	bg := background(500, 1, 3)
	f := func(x []float64) float64 {
		if x[0] > 0.5 {
			return 1
		}
		return 0
	}
	cfg := Config{NumSamples: 4000, KernelWidth: 0.2, Seed: 4}
	atStep, err := Explain(f, bg, []float64{0.5}, cfg)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	farAway, err := Explain(f, bg, []float64{3.0}, cfg)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if atStep.Weights[0] < 0.1 {
		t.Errorf("slope at step = %v, want clearly positive", atStep.Weights[0])
	}
	if math.Abs(farAway.Weights[0]) > math.Abs(atStep.Weights[0])/3 {
		t.Errorf("slope far from step = %v, should be much smaller than %v",
			farAway.Weights[0], atStep.Weights[0])
	}
}

func TestExplainIrrelevantFeature(t *testing.T) {
	bg := background(500, 3, 5)
	f := func(x []float64) float64 { return 5 * x[1] }
	e, err := Explain(f, bg, []float64{0.5, 0.5, 0.5}, Config{NumSamples: 3000, Seed: 6})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if math.Abs(e.Weights[0]) > 0.05 || math.Abs(e.Weights[2]) > 0.05 {
		t.Errorf("irrelevant features weighted: %v", e.Weights)
	}
	if e.Weights[1] < 0.5 {
		t.Errorf("relevant feature weight = %v, want large", e.Weights[1])
	}
}

func TestTopSortsByMagnitude(t *testing.T) {
	e := &Explanation{Weights: []float64{0.1, -3, 2}}
	top := e.Top(2)
	if len(top) != 2 || top[0].Feature != 1 || top[1].Feature != 2 {
		t.Errorf("Top = %+v", top)
	}
	if got := e.Top(99); len(got) != 3 {
		t.Errorf("Top(99) returned %d", len(got))
	}
}

func TestExplainErrors(t *testing.T) {
	f := func(x []float64) float64 { return 0 }
	if _, err := Explain(f, nil, []float64{1}, Config{}); err == nil {
		t.Error("accepted empty background")
	}
	if _, err := Explain(f, [][]float64{{1, 2}, {3, 4}}, []float64{1}, Config{}); err == nil {
		t.Error("accepted width mismatch")
	}
}

func TestExplainDeterministic(t *testing.T) {
	bg := background(100, 2, 7)
	f := func(x []float64) float64 { return x[0] * x[1] }
	cfg := Config{NumSamples: 500, Seed: 11}
	a, err := Explain(f, bg, []float64{0.5, 0.5}, cfg)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	b, err := Explain(f, bg, []float64{0.5, 0.5}, cfg)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	for j := range a.Weights {
		if a.Weights[j] != b.Weights[j] {
			t.Fatal("same-seed explanations differ")
		}
	}
}

func TestConstantFeatureBackground(t *testing.T) {
	// A zero-variance background column must not divide by zero.
	bg := [][]float64{{1, 5}, {2, 5}, {3, 5}}
	f := func(x []float64) float64 { return x[0] }
	if _, err := Explain(f, bg, []float64{2, 5}, Config{NumSamples: 200, Seed: 1}); err != nil {
		t.Fatalf("Explain with constant column: %v", err)
	}
}
