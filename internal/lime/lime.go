// Package lime implements tabular LIME (Ribeiro et al., "Why Should I
// Trust You?") with the reference implementation's defaults, as the
// second local-explanation baseline of the paper's §5.3: Gaussian
// perturbation of the standardized instance, exponential kernel
// weighting, and a weighted ridge regression surrogate whose coefficients
// explain the prediction.
package lime

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gef/internal/linalg"
	"gef/internal/stats"
)

// Config controls the LIME explanation.
type Config struct {
	NumSamples  int     // perturbations to draw (default 5000, the reference default)
	KernelWidth float64 // exponential kernel width; default 0.75·√d
	Ridge       float64 // ridge regularization of the local model (default 1)
	Seed        int64
}

func (c Config) withDefaults(d int) Config {
	if c.NumSamples == 0 {
		c.NumSamples = 5000
	}
	if c.KernelWidth == 0 {
		c.KernelWidth = 0.75 * math.Sqrt(float64(d))
	}
	if c.Ridge == 0 {
		c.Ridge = 1
	}
	return c
}

// Explanation is a fitted local surrogate.
type Explanation struct {
	Intercept float64
	// Weights are the local ridge coefficients on standardized features:
	// the per-feature influence near the explained instance.
	Weights []float64
	// R2 is the weighted goodness of fit of the local surrogate.
	R2 float64
}

// FeatureWeight pairs a feature with its local coefficient.
type FeatureWeight struct {
	Feature int
	Weight  float64
}

// Top returns the k coefficients with the largest magnitude.
func (e *Explanation) Top(k int) []FeatureWeight {
	out := make([]FeatureWeight, 0, len(e.Weights))
	for f, w := range e.Weights {
		out = append(out, FeatureWeight{Feature: f, Weight: w})
	}
	sort.SliceStable(out, func(a, b int) bool {
		return math.Abs(out[a].Weight) > math.Abs(out[b].Weight)
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Explain fits a local ridge surrogate to predict around x. The
// background sample provides per-feature scale (standard deviations);
// predict is the black-box function (forest prediction on the response
// scale).
func Explain(predict func([]float64) float64, background [][]float64, x []float64, cfg Config) (*Explanation, error) {
	if len(background) < 2 {
		return nil, fmt.Errorf("lime: need a background sample of ≥ 2 rows, got %d", len(background))
	}
	d := len(x)
	if len(background[0]) != d {
		return nil, fmt.Errorf("lime: background width %d does not match instance width %d", len(background[0]), d)
	}
	cfg = cfg.withDefaults(d)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Per-feature mean/sd from the background, as the reference
	// implementation's discretize=False mode does.
	sds := make([]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, len(background))
		for i, row := range background {
			col[i] = row[j]
		}
		sds[j] = stats.StdDev(col)
		if sds[j] == 0 {
			sds[j] = 1
		}
	}

	n := cfg.NumSamples
	// z-space design (standardized perturbations, first row is the
	// instance itself = all zeros in z space).
	zs := make([][]float64, n)
	ys := make([]float64, n)
	w := make([]float64, n)
	pert := make([]float64, d)
	for i := 0; i < n; i++ {
		z := make([]float64, d)
		copy(pert, x)
		if i > 0 {
			for j := 0; j < d; j++ {
				z[j] = rng.NormFloat64()
				pert[j] = x[j] + z[j]*sds[j]
			}
		}
		zs[i] = z
		ys[i] = predict(pert)
		dist2 := linalg.Dot(z, z)
		w[i] = math.Exp(-dist2 / (cfg.KernelWidth * cfg.KernelWidth))
	}

	// Weighted ridge regression on [1 | z].
	p := d + 1
	xtx := linalg.NewMatrix(p, p)
	xty := make([]float64, p)
	row := make([]float64, p)
	for i := 0; i < n; i++ {
		row[0] = 1
		copy(row[1:], zs[i])
		xtx.SymRankOneUpdate(w[i], row)
		for j := 0; j < p; j++ {
			xty[j] += w[i] * ys[i] * row[j]
		}
	}
	xtx.SymmetrizeFromUpper()
	for j := 1; j < p; j++ { // intercept unpenalized
		xtx.Add(j, j, cfg.Ridge)
	}
	beta, err := linalg.SolveSPD(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("lime: local ridge solve failed: %w", err)
	}

	e := &Explanation{Intercept: beta[0], Weights: beta[1:]}
	e.R2 = weightedR2(zs, ys, w, beta)
	return e, nil
}

func weightedR2(zs [][]float64, ys, w, beta []float64) float64 {
	var sw, swy float64
	for i, wi := range w {
		sw += wi
		swy += wi * ys[i]
	}
	mean := swy / sw
	var ssRes, ssTot float64
	for i, z := range zs {
		pred := beta[0]
		for j, v := range z {
			pred += beta[j+1] * v
		}
		r := ys[i] - pred
		ssRes += w[i] * r * r
		dv := ys[i] - mean
		ssTot += w[i] * dv * dv
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}
