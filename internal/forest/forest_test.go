package forest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// stumpForest builds a forest with a single depth-1 tree splitting on
// feature 0 at threshold 0.5 with leaf values lo (left) and hi (right).
func stumpForest(lo, hi float64) *Forest {
	return &Forest{
		Trees: []Tree{{Nodes: []Node{
			{Feature: 0, Threshold: 0.5, Left: 1, Right: 2, Gain: 1, Cover: 10},
			{Left: -1, Right: -1, Value: lo, Cover: 6},
			{Left: -1, Right: -1, Value: hi, Cover: 4},
		}}},
		NumFeatures: 1,
		Objective:   Regression,
	}
}

// twoTreeForest is a 2-feature forest with two depth-2 trees used across
// the structural tests.
func twoTreeForest() *Forest {
	t1 := Tree{Nodes: []Node{
		{Feature: 0, Threshold: 0.5, Left: 1, Right: 2, Gain: 4, Cover: 100},
		{Feature: 1, Threshold: 0.3, Left: 3, Right: 4, Gain: 2, Cover: 60},
		{Left: -1, Right: -1, Value: 3, Cover: 40},
		{Left: -1, Right: -1, Value: 1, Cover: 30},
		{Left: -1, Right: -1, Value: 2, Cover: 30},
	}}
	t2 := Tree{Nodes: []Node{
		{Feature: 1, Threshold: 0.7, Left: 1, Right: 2, Gain: 3, Cover: 100},
		{Left: -1, Right: -1, Value: -1, Cover: 70},
		{Left: -1, Right: -1, Value: 1, Cover: 30},
	}}
	return &Forest{
		Trees:       []Tree{t1, t2},
		NumFeatures: 2,
		BaseScore:   0.5,
		Objective:   Regression,
	}
}

func TestTreePredict(t *testing.T) {
	f := twoTreeForest()
	tr := &f.Trees[0]
	cases := []struct {
		x    []float64
		want float64
	}{
		{[]float64{0.4, 0.2}, 1}, // left, left
		{[]float64{0.4, 0.4}, 2}, // left, right
		{[]float64{0.6, 0.0}, 3}, // right
		{[]float64{0.5, 0.3}, 1}, // boundary: x ≤ v goes left
	}
	for _, c := range cases {
		if got := tr.Predict(c.x); got != c.want {
			t.Errorf("Predict(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestForestRawPredictAdds(t *testing.T) {
	f := twoTreeForest()
	x := []float64{0.4, 0.2}
	// tree1 → 1, tree2 (x2=0.2 ≤ 0.7) → -1, base 0.5.
	if got := f.RawPredict(x); got != 0.5 {
		t.Errorf("RawPredict = %v, want 0.5", got)
	}
}

func TestPredictLogisticAppliesSigmoid(t *testing.T) {
	f := stumpForest(-2, 2)
	f.Objective = BinaryLogistic
	got := f.Predict([]float64{0})
	want := Sigmoid(-2)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("Predict = %v, want %v", got, want)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Errorf("Sigmoid(0) = %v, want 0.5", got)
	}
	if got := Sigmoid(100); got <= 0.999 {
		t.Errorf("Sigmoid(100) = %v, want ≈ 1", got)
	}
	if got := Sigmoid(-100); got >= 0.001 {
		t.Errorf("Sigmoid(-100) = %v, want ≈ 0", got)
	}
	// Symmetry property: σ(z) + σ(−z) = 1.
	for _, z := range []float64{-5, -1, 0.3, 2, 700, -700} {
		if s := Sigmoid(z) + Sigmoid(-z); math.Abs(s-1) > 1e-12 {
			t.Errorf("σ(%v)+σ(−%v) = %v, want 1", z, z, s)
		}
	}
}

func TestPredictBatch(t *testing.T) {
	f := twoTreeForest()
	xs := [][]float64{{0.4, 0.2}, {0.6, 0.9}}
	got := f.PredictBatch(xs)
	for i, x := range xs {
		if got[i] != f.Predict(x) {
			t.Errorf("batch[%d] = %v, want %v", i, got[i], f.Predict(x))
		}
	}
	raw := f.RawPredictBatch(xs)
	for i, x := range xs {
		if raw[i] != f.RawPredict(x) {
			t.Errorf("rawbatch[%d] mismatch", i)
		}
	}
}

func TestThresholdsByFeature(t *testing.T) {
	f := twoTreeForest()
	th := f.ThresholdsByFeature()
	if len(th[0]) != 1 || th[0][0] != 0.5 {
		t.Errorf("feature 0 thresholds = %v, want [0.5]", th[0])
	}
	if len(th[1]) != 2 || th[1][0] != 0.3 || th[1][1] != 0.7 {
		t.Errorf("feature 1 thresholds = %v, want [0.3 0.7]", th[1])
	}
}

func TestThresholdsPreserveDuplicates(t *testing.T) {
	f := stumpForest(0, 1)
	f.Trees = append(f.Trees, f.Trees[0]) // same threshold twice
	th := f.ThresholdsByFeature()
	if len(th[0]) != 2 {
		t.Errorf("duplicate thresholds collapsed: %v", th[0])
	}
}

func TestUsedFeatures(t *testing.T) {
	f := twoTreeForest()
	used := f.UsedFeatures()
	if len(used) != 2 || used[0] != 0 || used[1] != 1 {
		t.Errorf("UsedFeatures = %v, want [0 1]", used)
	}
}

func TestGainImportance(t *testing.T) {
	f := twoTreeForest()
	imp := f.GainImportance()
	if imp[0] != 4 {
		t.Errorf("importance f0 = %v, want 4", imp[0])
	}
	if imp[1] != 5 { // 2 + 3
		t.Errorf("importance f1 = %v, want 5", imp[1])
	}
}

func TestSplitImportance(t *testing.T) {
	f := twoTreeForest()
	imp := f.SplitImportance()
	if imp[0] != 1 || imp[1] != 2 {
		t.Errorf("SplitImportance = %v, want [1 2]", imp)
	}
	// Split counts and threshold counts agree by construction.
	th := f.ThresholdsByFeature()
	for j, c := range imp {
		if len(th[j]) != c {
			t.Errorf("feature %d: %d splits but %d thresholds", j, c, len(th[j]))
		}
	}
}

func TestNumLeavesAndDepth(t *testing.T) {
	f := twoTreeForest()
	if got := f.Trees[0].NumLeaves(); got != 3 {
		t.Errorf("NumLeaves = %d, want 3", got)
	}
	if got := f.Trees[0].Depth(); got != 2 {
		t.Errorf("Depth = %d, want 2", got)
	}
	if got := f.Trees[1].Depth(); got != 1 {
		t.Errorf("Depth = %d, want 1", got)
	}
	if got := f.NumNodes(); got != 8 {
		t.Errorf("NumNodes = %d, want 8", got)
	}
}

func TestFeatureName(t *testing.T) {
	f := twoTreeForest()
	if got := f.FeatureName(0); got != "f0" {
		t.Errorf("default name = %q, want f0", got)
	}
	f.FeatureNames = []string{"age", "income"}
	if got := f.FeatureName(1); got != "income" {
		t.Errorf("named = %q, want income", got)
	}
	if got := f.FeatureName(9); got != "f9" {
		t.Errorf("out of range = %q, want f9", got)
	}
}

func TestValidateAcceptsGoodForest(t *testing.T) {
	if err := twoTreeForest().Validate(); err != nil {
		t.Errorf("Validate = %v, want nil", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mk := twoTreeForest
	cases := []struct {
		name   string
		mutate func(f *Forest)
	}{
		{"zero features", func(f *Forest) { f.NumFeatures = 0 }},
		{"bad objective", func(f *Forest) { f.Objective = "multiclass" }},
		{"empty tree", func(f *Forest) { f.Trees[0].Nodes = nil }},
		{"child out of range", func(f *Forest) { f.Trees[0].Nodes[0].Left = 99 }},
		{"cycle", func(f *Forest) { f.Trees[0].Nodes[1].Left = 0; f.Trees[0].Nodes[1].Right = 0 }},
		{"feature out of range", func(f *Forest) { f.Trees[0].Nodes[0].Feature = 5 }},
		{"NaN threshold", func(f *Forest) { f.Trees[0].Nodes[0].Threshold = math.NaN() }},
		{"half leaf", func(f *Forest) { f.Trees[0].Nodes[0].Left = -1 }},
		{"unreachable node", func(f *Forest) {
			f.Trees[1].Nodes = append(f.Trees[1].Nodes, Node{Left: -1, Right: -1})
		}},
	}
	for _, c := range cases {
		f := mk()
		c.mutate(f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid forest", c.name)
		}
	}
}

// Property: raw prediction equals the sum over trees of the reached leaf
// values plus the base score, for random inputs.
func TestRawPredictDecompositionProperty(t *testing.T) {
	f := twoTreeForest()
	prop := func(a, b float64) bool {
		x := []float64{math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)}
		var sum float64 = f.BaseScore
		for i := range f.Trees {
			sum += f.Trees[i].Predict(x)
		}
		return sum == f.RawPredict(x)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: predictions are piecewise constant — for inputs in the same
// leaf cell, predictions are identical.
func TestPiecewiseConstantProperty(t *testing.T) {
	f := twoTreeForest()
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		// Sample two points in the same cell of the partition induced by
		// thresholds {0.5} × {0.3, 0.7}.
		cellX := r.Intn(2)
		cellY := r.Intn(3)
		sample := func() []float64 {
			xs := [][2]float64{{0, 0.5}, {0.500001, 1}}[cellX]
			ys := [][2]float64{{0, 0.3}, {0.300001, 0.7}, {0.700001, 1}}[cellY]
			return []float64{
				xs[0] + r.Float64()*(xs[1]-xs[0]),
				ys[0] + r.Float64()*(ys[1]-ys[0]),
			}
		}
		a, b := sample(), sample()
		if f.RawPredict(a) != f.RawPredict(b) {
			t.Fatalf("same-cell predictions differ: %v vs %v", a, b)
		}
	}
}
