package forest

import (
	"strings"
	"testing"
)

func TestComputeStats(t *testing.T) {
	f := twoTreeForest()
	s := ComputeStats(f)
	if s.NumTrees != 2 || s.NumNodes != 8 || s.NumLeaves != 5 {
		t.Errorf("stats %+v", s)
	}
	if s.MaxDepth != 2 {
		t.Errorf("MaxDepth = %d, want 2", s.MaxDepth)
	}
	if s.MeanLeaves != 2.5 {
		t.Errorf("MeanLeaves = %v, want 2.5", s.MeanLeaves)
	}
	if s.TotalGain != 9 { // 4 + 2 + 3
		t.Errorf("TotalGain = %v, want 9", s.TotalGain)
	}
	if s.UsedFeatures != 2 {
		t.Errorf("UsedFeatures = %d, want 2", s.UsedFeatures)
	}
	if s.ThresholdCount[1] != 2 || s.ThresholdCount[0] != 1 {
		t.Errorf("ThresholdCount = %v", s.ThresholdCount)
	}
}

func TestStatsString(t *testing.T) {
	out := ComputeStats(twoTreeForest()).String()
	if !strings.Contains(out, "trees: 2") || !strings.Contains(out, "max depth: 2") {
		t.Errorf("String() = %q", out)
	}
}

func TestTopThresholdFeatures(t *testing.T) {
	s := ComputeStats(twoTreeForest())
	top := s.TopThresholdFeatures(1)
	if len(top) != 1 || top[0] != 1 {
		t.Errorf("TopThresholdFeatures = %v, want [1]", top)
	}
	all := s.TopThresholdFeatures(10)
	if len(all) != 2 {
		t.Errorf("got %d features, want 2", len(all))
	}
}

func TestTruncate(t *testing.T) {
	f := twoTreeForest()
	g, err := f.Truncate(1)
	if err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if len(g.Trees) != 1 {
		t.Fatalf("trees = %d, want 1", len(g.Trees))
	}
	x := []float64{0.4, 0.2}
	// tree1 → 1 plus base 0.5.
	if got := g.RawPredict(x); got != 1.5 {
		t.Errorf("truncated prediction = %v, want 1.5", got)
	}
	// Original untouched.
	if len(f.Trees) != 2 {
		t.Error("Truncate mutated the source forest")
	}
	if _, err := f.Truncate(0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := f.Truncate(3); err == nil {
		t.Error("accepted k beyond tree count")
	}
}

func TestStagedPredict(t *testing.T) {
	f := twoTreeForest()
	x := []float64{0.4, 0.2}
	staged := f.StagedPredict(x)
	if len(staged) != 2 {
		t.Fatalf("staged length %d", len(staged))
	}
	if staged[0] != 1.5 { // base + tree1
		t.Errorf("staged[0] = %v, want 1.5", staged[0])
	}
	if staged[1] != f.RawPredict(x) {
		t.Errorf("staged final %v != RawPredict %v", staged[1], f.RawPredict(x))
	}
	// Consistency with Truncate at every stage.
	for k := 1; k <= 2; k++ {
		g, err := f.Truncate(k)
		if err != nil {
			t.Fatal(err)
		}
		if g.RawPredict(x) != staged[k-1] {
			t.Errorf("stage %d mismatch", k)
		}
	}
}
