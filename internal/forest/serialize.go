package forest

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// serialized wraps a Forest with a format version so future layouts can be
// detected instead of silently misread.
type serialized struct {
	Version int     `json:"version"`
	Forest  *Forest `json:"forest"`
}

// formatVersion is the current on-disk JSON layout version.
const formatVersion = 1

// Marshal serializes the forest to the versioned JSON wire format.
func Marshal(f *Forest) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("refusing to serialize invalid forest: %w", err)
	}
	return json.Marshal(serialized{Version: formatVersion, Forest: f})
}

// Unmarshal parses a forest from the versioned JSON wire format and
// validates it.
func Unmarshal(data []byte) (*Forest, error) {
	var s serialized
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("parsing forest JSON: %w", err)
	}
	if s.Version != formatVersion {
		return nil, fmt.Errorf("unsupported forest format version %d (supported: %d)", s.Version, formatVersion)
	}
	if s.Forest == nil {
		return nil, fmt.Errorf("forest JSON missing %q field", "forest")
	}
	if err := s.Forest.Validate(); err != nil {
		return nil, fmt.Errorf("deserialized forest is invalid: %w", err)
	}
	return s.Forest, nil
}

// WriteTo writes the serialized forest to w.
func WriteTo(f *Forest, w io.Writer) error {
	data, err := Marshal(f)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadFrom reads and parses a serialized forest from r.
func ReadFrom(r io.Reader) (*Forest, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("reading forest: %w", err)
	}
	return Unmarshal(data)
}

// SaveFile serializes the forest to the named file.
func SaveFile(f *Forest, path string) error {
	data, err := Marshal(f)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadFile reads a serialized forest from the named file.
func LoadFile(path string) (*Forest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading forest file: %w", err)
	}
	return Unmarshal(data)
}
