package forest

import (
	"math/rand"
	"testing"
)

// benchFixture builds a 100-tree, 16-leaf-scale forest and a row batch
// shaped like the D* labeling workload.
func benchFixture(b *testing.B) (*Forest, [][]float64) {
	b.Helper()
	r := rand.New(rand.NewSource(5))
	f := randForest(r, 100, 8, 15, Regression)
	xs := make([][]float64, 4096)
	for i := range xs {
		xs[i] = randRow(r, 8, 0)
	}
	return f, xs
}

func BenchmarkPointerPredict(b *testing.B) {
	f, xs := benchFixture(b)
	out := make([]float64, len(xs))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i, x := range xs {
			out[i] = f.Predict(x)
		}
	}
}

func BenchmarkFlatPredictBatch(b *testing.B) {
	f, xs := benchFixture(b)
	fl := Compile(f)
	out := make([]float64, len(xs))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		fl.PredictBatchInto(xs, out)
	}
}

func BenchmarkQuantPredictBatch(b *testing.B) {
	f, xs := benchFixture(b)
	fl, err := CompileQuantized(f)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float64, len(xs))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		fl.PredictBatchInto(xs, out)
	}
}
