package forest

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzFlatParity asserts the central compilation contract: on any
// randomized forest and any row (NaN coordinates included), the float
// and quantized flat layouts route every tree to exactly the leaf the
// pointer walk reaches, and the additive raw scores are bitwise equal.
// The fuzzer drives the generator through a seed so every failure is
// reproducible from the corpus entry alone.
func FuzzFlatParity(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2), uint8(20), false)
	f.Add(int64(42), uint8(1), uint8(1), uint8(0), true)
	f.Add(int64(7), uint8(8), uint8(6), uint8(60), true)

	f.Fuzz(func(t *testing.T, seed int64, numTrees, numFeat, maxInternal uint8, withNaN bool) {
		r := rand.New(rand.NewSource(seed))
		nt := 1 + int(numTrees)%8
		nf := 1 + int(numFeat)%6
		fr := randForest(r, nt, nf, int(maxInternal)%64, Regression)
		if err := fr.Validate(); err != nil {
			t.Fatalf("generator produced an invalid forest: %v", err)
		}
		fl := Compile(fr)
		fq, err := CompileQuantized(fr)
		if err != nil {
			t.Fatalf("CompileQuantized: %v", err)
		}

		nanProb := 0.0
		if withNaN {
			nanProb = 0.15
		}
		xs := make([][]float64, 40)
		for i := range xs {
			xs[i] = randRow(r, nf, nanProb)
		}

		for _, fx := range []*Flat{fl, fq} {
			leaves := make([]int32, len(xs)*fx.NumTrees)
			fx.LeavesBatch(xs, leaves)
			raw := make([]float64, len(xs))
			fx.RawPredictBatchInto(xs, raw)
			for i, x := range xs {
				want := fr.BaseScore
				for ti := range fr.Trees {
					ptr := int32(fr.Trees[ti].Leaf(x))
					if got := leaves[i*fx.NumTrees+ti]; fx.OrigIndex(got) != ptr {
						t.Fatalf("quantized=%v row %d tree %d: flat leaf %d (orig %d), pointer leaf %d (x=%v)",
							fx.Quantized(), i, ti, got, fx.OrigIndex(got), ptr, x)
					}
					if got := fx.Leaf(ti, x); fx.OrigIndex(got) != ptr {
						t.Fatalf("quantized=%v row %d tree %d: walk leaf %d (orig %d), pointer leaf %d",
							fx.Quantized(), i, ti, got, fx.OrigIndex(got), ptr)
					}
					want += fr.Trees[ti].Predict(x)
				}
				if math.Float64bits(raw[i]) != math.Float64bits(want) {
					t.Fatalf("quantized=%v row %d: raw %v, pointer raw %v", fx.Quantized(), i, raw[i], want)
				}
			}
		}
	})
}
