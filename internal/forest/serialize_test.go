package forest

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	f := twoTreeForest()
	f.FeatureNames = []string{"a", "b"}
	data, err := Marshal(f)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	g, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if g.NumFeatures != f.NumFeatures || g.BaseScore != f.BaseScore || g.Objective != f.Objective {
		t.Errorf("metadata mismatch: %+v vs %+v", g, f)
	}
	if len(g.Trees) != len(f.Trees) {
		t.Fatalf("tree count %d, want %d", len(g.Trees), len(f.Trees))
	}
	// Predictions must survive the round trip bit-for-bit.
	for _, x := range [][]float64{{0.1, 0.1}, {0.9, 0.9}, {0.5, 0.5}} {
		if g.RawPredict(x) != f.RawPredict(x) {
			t.Errorf("prediction changed after round trip at %v", x)
		}
	}
	if g.FeatureNames[1] != "b" {
		t.Errorf("feature names lost: %v", g.FeatureNames)
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	f := twoTreeForest()
	f.NumFeatures = 0
	if _, err := Marshal(f); err == nil {
		t.Error("Marshal accepted invalid forest")
	}
}

func TestUnmarshalRejectsBadVersion(t *testing.T) {
	f := twoTreeForest()
	data, err := Marshal(f)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	bad := bytes.Replace(data, []byte(`"version":1`), []byte(`"version":99`), 1)
	if _, err := Unmarshal(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("expected version error, got %v", err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Error("Unmarshal accepted garbage")
	}
	if _, err := Unmarshal([]byte(`{"version":1}`)); err == nil {
		t.Error("Unmarshal accepted missing forest")
	}
	if _, err := Unmarshal([]byte(`{"version":1,"forest":{"num_features":0}}`)); err == nil {
		t.Error("Unmarshal accepted invalid forest")
	}
}

func TestWriteToReadFrom(t *testing.T) {
	f := twoTreeForest()
	var buf bytes.Buffer
	if err := WriteTo(f, &buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	g, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if g.NumNodes() != f.NumNodes() {
		t.Errorf("NumNodes %d, want %d", g.NumNodes(), f.NumNodes())
	}
}

func TestSaveLoadFile(t *testing.T) {
	f := twoTreeForest()
	path := filepath.Join(t.TempDir(), "forest.json")
	if err := SaveFile(f, path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	g, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if g.RawPredict([]float64{0.2, 0.2}) != f.RawPredict([]float64{0.2, 0.2}) {
		t.Error("prediction changed after file round trip")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("LoadFile accepted missing file")
	}
}
