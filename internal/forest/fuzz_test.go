package forest

import (
	"math"
	"testing"
)

// FuzzUnmarshal asserts the deserialization contract for untrusted forest
// files (the paper's third-party hand-off scenario): any byte slice either
// fails with an error or yields a forest that validates and predicts a
// finite value — never a panic.
func FuzzUnmarshal(f *testing.F) {
	valid, err := Marshal(&Forest{
		NumFeatures: 2,
		Objective:   Regression,
		Trees: []Tree{{Nodes: []Node{
			{Feature: 0, Threshold: 0.5, Left: 1, Right: 2},
			{Left: -1, Right: -1, Value: 1},
			{Left: -1, Right: -1, Value: 2},
		}}},
	})
	if err != nil {
		f.Fatalf("marshal seed forest: %v", err)
	}
	f.Add(valid)
	f.Add([]byte(`{"version":1,"forest":{"num_features":1}}`))
	f.Add([]byte(`{"version":1,"forest":{"num_features":1,"objective":"regression","trees":[{"nodes":[{"left":-1,"right":-1,"value":1e308}]}]}}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version":1,"forest":{"num_features":2,"objective":"regression","trees":[{"nodes":[{"feature":9,"threshold":0,"left":0,"right":0}]}]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Unmarshal(data)
		if err != nil {
			return
		}
		// A forest that unmarshalled cleanly must be usable: Validate
		// passed inside Unmarshal, so prediction on an all-zeros row of
		// the declared width must not panic and must stay finite.
		x := make([]float64, fr.NumFeatures)
		if y := fr.Predict(x); math.IsNaN(y) {
			t.Fatalf("validated forest predicted NaN on zero input")
		}
	})
}
