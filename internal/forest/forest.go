// Package forest defines the decision-tree-ensemble data model GEF
// explains. A forest is a list of binary decision trees whose internal
// nodes test predicates of the form x_f ≤ v and whose leaves carry
// additive score contributions (the paper's §3.2 model). Each internal
// node also records the training-time loss reduction ("gain") and the
// number of training samples that reached it ("cover"): the gain feeds
// GEF's feature- and interaction-selection heuristics, the cover feeds
// path-dependent TreeSHAP.
//
// The package is trainer-agnostic: internal/gbdt produces these forests,
// but any forest (e.g. deserialized from JSON produced elsewhere) can be
// explained as long as it validates.
package forest

import (
	"context"
	"fmt"
	"math"
	"sort"

	"gef/internal/par"
	"gef/internal/robust"
)

// Objective identifies how raw forest scores map to predictions.
type Objective string

const (
	// Regression means raw scores are used directly (identity link).
	Regression Objective = "regression"
	// BinaryLogistic means raw scores are log-odds; Predict applies a
	// sigmoid to produce probabilities.
	BinaryLogistic Objective = "binary_logistic"
)

// Node is one node of a decision tree. Nodes are stored in a flat slice
// and referenced by index; index 0 is the root. Leaves have Left == -1.
type Node struct {
	Feature   int     `json:"feature"`   // split feature index (internal nodes)
	Threshold float64 `json:"threshold"` // split threshold: go left iff x ≤ v
	Left      int     `json:"left"`      // left child index, -1 for leaves
	Right     int     `json:"right"`     // right child index, -1 for leaves
	Gain      float64 `json:"gain"`      // training loss reduction at this split
	Cover     float64 `json:"cover"`     // training samples reaching this node
	Value     float64 `json:"value"`     // leaf contribution (leaves only)
}

// IsLeaf reports whether n is a leaf.
func (n *Node) IsLeaf() bool { return n.Left < 0 }

// Tree is a single binary decision tree.
type Tree struct {
	Nodes []Node `json:"nodes"`
}

// Leaf evaluates the tree on x and returns the index of the leaf reached.
func (t *Tree) Leaf(x []float64) int {
	i := 0
	for {
		n := &t.Nodes[i]
		if n.IsLeaf() {
			return i
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Predict evaluates the tree on x and returns the reached leaf's value.
func (t *Tree) Predict(x []float64) float64 {
	return t.Nodes[t.Leaf(x)].Value
}

// NumLeaves returns the number of leaves in the tree.
func (t *Tree) NumLeaves() int {
	c := 0
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf() {
			c++
		}
	}
	return c
}

// Depth returns the maximum root-to-leaf depth (a single leaf has depth
// 0). The walk uses an explicit stack, not recursion, so arbitrarily
// deep deserialized trees (degenerate chains included) cannot overflow
// the goroutine stack.
func (t *Tree) Depth() int {
	return treeDepthIter(t.Nodes)
}

// depthFrame is one explicit-stack entry of the iterative tree walks.
type depthFrame struct {
	node  int32
	depth int32
}

// treeDepthIter computes the max depth of a node slice iteratively.
func treeDepthIter(nodes []Node) int {
	if len(nodes) == 0 {
		return 0
	}
	stack := make([]depthFrame, 1, 64)
	stack[0] = depthFrame{0, 0}
	maxDepth := int32(0)
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &nodes[fr.node]
		if n.IsLeaf() {
			if fr.depth > maxDepth {
				maxDepth = fr.depth
			}
			continue
		}
		stack = append(stack,
			depthFrame{int32(n.Right), fr.depth + 1},
			depthFrame{int32(n.Left), fr.depth + 1})
	}
	return int(maxDepth)
}

// Forest is an additive ensemble of decision trees.
type Forest struct {
	Trees        []Tree    `json:"trees"`
	NumFeatures  int       `json:"num_features"`
	BaseScore    float64   `json:"base_score"` // constant added to every raw score
	Objective    Objective `json:"objective"`
	FeatureNames []string  `json:"feature_names,omitempty"`
}

// RawPredict returns the untransformed additive score for x:
// BaseScore + Σ_t t(x).
func (f *Forest) RawPredict(x []float64) float64 {
	s := f.BaseScore
	for i := range f.Trees {
		s += f.Trees[i].Predict(x)
	}
	return s
}

// Predict returns the forest prediction for x on the response scale:
// the raw score for regression, the sigmoid-transformed probability for
// binary classification.
func (f *Forest) Predict(x []float64) float64 {
	raw := f.RawPredict(x)
	if f.Objective == BinaryLogistic {
		return Sigmoid(raw)
	}
	return raw
}

// PredictBatch evaluates Predict on every row of xs through the flat
// batched kernels (see PredictBatchCtx), under a background context.
func (f *Forest) PredictBatch(xs [][]float64) []float64 {
	//lint:ignore errdrop background context cannot be canceled
	out, _ := f.PredictBatchCtx(context.Background(), xs)
	return out
}

// PredictBatchCtx evaluates Predict on every row of xs: raw scores run
// through the compiled flat forest's batched traversal kernel, in
// parallel over fixed row chunks (disjoint writes, so results are
// bitwise identical at any worker count), then the objective transform
// — hoisted out of the per-row loop — applies the same Sigmoid the
// single-row path uses. Returns ctx.Err() if canceled.
func (f *Forest) PredictBatchCtx(ctx context.Context, xs [][]float64) ([]float64, error) {
	out, err := f.RawPredictBatchCtx(ctx, xs)
	if err != nil {
		return nil, err
	}
	if f.Objective == BinaryLogistic {
		for i, v := range out {
			out[i] = Sigmoid(v)
		}
	}
	return out, nil
}

// RawPredictBatch evaluates RawPredict on every row of xs, like
// PredictBatch.
func (f *Forest) RawPredictBatch(xs [][]float64) []float64 {
	//lint:ignore errdrop background context cannot be canceled
	out, _ := f.RawPredictBatchCtx(context.Background(), xs)
	return out
}

// RawPredictBatchCtx evaluates RawPredict on every row of xs through
// the fingerprint-cached flat compilation, parallel over fixed row
// chunks with disjoint writes. Returns ctx.Err() if canceled.
func (f *Forest) RawPredictBatchCtx(ctx context.Context, xs [][]float64) ([]float64, error) {
	fl := Compiled(f)
	out := make([]float64, len(xs))
	if err := par.For(ctx, len(xs), 0, func(_, lo, hi int) {
		fl.RawPredictBatchInto(xs[lo:hi], out[lo:hi])
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Sigmoid is the logistic function 1/(1+e^(−z)).
func Sigmoid(z float64) float64 {
	// Guard against overflow for very negative z.
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// NumNodes returns the total number of nodes across all trees.
func (f *Forest) NumNodes() int {
	c := 0
	for i := range f.Trees {
		c += len(f.Trees[i].Nodes)
	}
	return c
}

// FeatureName returns the configured name for feature i, or "f<i>" when no
// names were supplied.
func (f *Forest) FeatureName(i int) string {
	if i >= 0 && i < len(f.FeatureNames) && f.FeatureNames[i] != "" {
		return f.FeatureNames[i]
	}
	return fmt.Sprintf("f%d", i)
}

// ThresholdsByFeature returns, for every feature index, the sorted list of
// split thresholds occurring in the forest (V_i in the paper, duplicates
// preserved: a threshold used by ten nodes appears ten times, which is what
// the density-following sampling strategies rely on).
func (f *Forest) ThresholdsByFeature() map[int][]float64 {
	out := make(map[int][]float64)
	for ti := range f.Trees {
		for ni := range f.Trees[ti].Nodes {
			n := &f.Trees[ti].Nodes[ni]
			if !n.IsLeaf() {
				out[n.Feature] = append(out[n.Feature], n.Threshold)
			}
		}
	}
	for k := range out {
		sort.Float64s(out[k])
	}
	return out
}

// UsedFeatures returns the sorted list of feature indices that occur in at
// least one split predicate (the paper's feature set F).
func (f *Forest) UsedFeatures() []int {
	seen := make(map[int]bool)
	for ti := range f.Trees {
		for ni := range f.Trees[ti].Nodes {
			n := &f.Trees[ti].Nodes[ni]
			if !n.IsLeaf() {
				seen[n.Feature] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// GainImportance returns the per-feature accumulated loss reduction across
// all nodes in the forest (the paper's univariate importance I(f_i)).
// The returned slice has length NumFeatures.
func (f *Forest) GainImportance() []float64 {
	imp := make([]float64, f.NumFeatures)
	for ti := range f.Trees {
		for ni := range f.Trees[ti].Nodes {
			n := &f.Trees[ti].Nodes[ni]
			if !n.IsLeaf() && n.Feature >= 0 && n.Feature < len(imp) {
				imp[n.Feature] += n.Gain
			}
		}
	}
	return imp
}

// SplitImportance returns the per-feature split counts across the forest
// (LightGBM's "split" importance type) — a robustness check against the
// gain importance GEF uses, since gain can be dominated by a few large
// early splits.
func (f *Forest) SplitImportance() []int {
	imp := make([]int, f.NumFeatures)
	for ti := range f.Trees {
		for ni := range f.Trees[ti].Nodes {
			n := &f.Trees[ti].Nodes[ni]
			if !n.IsLeaf() && n.Feature >= 0 && n.Feature < len(imp) {
				imp[n.Feature]++
			}
		}
	}
	return imp
}

// Validate checks structural invariants: child indices in range, no cycles
// (each node reachable at most once from the root), every feature index
// within NumFeatures, leaves consistent, trees non-empty, and every
// threshold, gain and leaf value finite (non-finite values wrap
// robust.ErrDegenerate — the pipeline cannot sample or fit through them).
// It returns the first violation found.
func (f *Forest) Validate() error {
	if f.NumFeatures <= 0 {
		return fmt.Errorf("forest: NumFeatures = %d, want > 0", f.NumFeatures)
	}
	switch f.Objective {
	case Regression, BinaryLogistic:
	default:
		return fmt.Errorf("forest: unknown objective %q", f.Objective)
	}
	for ti := range f.Trees {
		t := &f.Trees[ti]
		if len(t.Nodes) == 0 {
			return fmt.Errorf("forest: tree %d is empty", ti)
		}
		// Explicit-stack pre-order walk (left pushed last, so popped
		// first — the same visit order as the recursive formulation it
		// replaces, preserving which violation is reported first).
		// Iteration means a maliciously deep deserialized tree cannot
		// overflow the goroutine stack during validation.
		seen := make([]bool, len(t.Nodes))
		stack := make([]int, 1, 64)
		stack[0] = 0
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if i < 0 || i >= len(t.Nodes) {
				return fmt.Errorf("forest: tree %d references node %d out of range [0,%d)", ti, i, len(t.Nodes))
			}
			if seen[i] {
				return fmt.Errorf("forest: tree %d node %d reachable twice (cycle or DAG)", ti, i)
			}
			seen[i] = true
			n := &t.Nodes[i]
			if n.IsLeaf() {
				if n.Right >= 0 {
					return fmt.Errorf("forest: tree %d node %d has Left=-1 but Right=%d", ti, i, n.Right)
				}
				if math.IsNaN(n.Value) || math.IsInf(n.Value, 0) {
					return fmt.Errorf("forest: tree %d node %d has non-finite leaf value %v: %w", ti, i, n.Value, robust.ErrDegenerate)
				}
				continue
			}
			if n.Right < 0 {
				return fmt.Errorf("forest: tree %d node %d has Left=%d but Right=-1", ti, i, n.Left)
			}
			if n.Feature < 0 || n.Feature >= f.NumFeatures {
				return fmt.Errorf("forest: tree %d node %d splits on feature %d, want [0,%d)", ti, i, n.Feature, f.NumFeatures)
			}
			if math.IsNaN(n.Threshold) || math.IsInf(n.Threshold, 0) {
				return fmt.Errorf("forest: tree %d node %d has non-finite threshold: %w", ti, i, robust.ErrDegenerate)
			}
			if math.IsNaN(n.Gain) || math.IsInf(n.Gain, 0) {
				return fmt.Errorf("forest: tree %d node %d has non-finite gain %v: %w", ti, i, n.Gain, robust.ErrDegenerate)
			}
			stack = append(stack, n.Right, n.Left)
		}
		for i, s := range seen {
			if !s {
				return fmt.Errorf("forest: tree %d node %d unreachable from root", ti, i)
			}
		}
	}
	return nil
}
