package forest

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a forest's structure, for the CLI's inspection output
// and for sizing decisions (e.g. how many thresholds each feature
// contributes to the sampling domains).
type Stats struct {
	NumTrees       int
	NumNodes       int
	NumLeaves      int
	MaxDepth       int
	MeanLeaves     float64
	TotalGain      float64
	UsedFeatures   int
	ThresholdCount map[int]int // feature → number of split thresholds
}

// ComputeStats walks the forest once and returns its structural summary.
func ComputeStats(f *Forest) Stats {
	s := Stats{NumTrees: len(f.Trees), ThresholdCount: make(map[int]int)}
	for ti := range f.Trees {
		t := &f.Trees[ti]
		s.NumNodes += len(t.Nodes)
		leaves := 0
		for ni := range t.Nodes {
			n := &t.Nodes[ni]
			if n.IsLeaf() {
				leaves++
			} else {
				s.TotalGain += n.Gain
				s.ThresholdCount[n.Feature]++
			}
		}
		s.NumLeaves += leaves
		if d := t.Depth(); d > s.MaxDepth {
			s.MaxDepth = d
		}
	}
	if s.NumTrees > 0 {
		s.MeanLeaves = float64(s.NumLeaves) / float64(s.NumTrees)
	}
	s.UsedFeatures = len(s.ThresholdCount)
	return s
}

// String renders the summary in a compact human-readable block.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trees: %d, nodes: %d, leaves: %d (%.1f/tree), max depth: %d\n",
		s.NumTrees, s.NumNodes, s.NumLeaves, s.MeanLeaves, s.MaxDepth)
	fmt.Fprintf(&b, "features used: %d, total gain: %.4g", s.UsedFeatures, s.TotalGain)
	return b.String()
}

// TopThresholdFeatures returns up to k features ordered by how many split
// thresholds they contribute, descending (ties by index).
func (s Stats) TopThresholdFeatures(k int) []int {
	feats := make([]int, 0, len(s.ThresholdCount))
	for f := range s.ThresholdCount {
		feats = append(feats, f)
	}
	sort.Slice(feats, func(a, b int) bool {
		ca, cb := s.ThresholdCount[feats[a]], s.ThresholdCount[feats[b]]
		if ca != cb {
			return ca > cb
		}
		return feats[a] < feats[b]
	})
	if k < len(feats) {
		feats = feats[:k]
	}
	return feats
}

// Truncate returns a copy of the forest keeping only the first k trees —
// the standard way to evaluate a boosted ensemble at an earlier
// iteration. Trees are shared, not copied.
func (f *Forest) Truncate(k int) (*Forest, error) {
	if k < 1 || k > len(f.Trees) {
		return nil, fmt.Errorf("forest: cannot truncate %d trees to %d", len(f.Trees), k)
	}
	out := *f
	out.Trees = f.Trees[:k]
	return &out, nil
}

// StagedPredict returns the raw prediction of x after each boosting
// stage: out[i] is the raw score using trees 0..i. Useful for inspecting
// convergence without retraining.
func (f *Forest) StagedPredict(x []float64) []float64 {
	out := make([]float64, len(f.Trees))
	s := f.BaseScore
	for i := range f.Trees {
		s += f.Trees[i].Predict(x)
		out[i] = s
	}
	return out
}
