package forest

import "testing"

func fingerprintFixture() *Forest {
	return &Forest{
		Trees: []Tree{
			{Nodes: []Node{
				{Feature: 0, Threshold: 0.5, Left: 1, Right: 2, Gain: 3, Cover: 10},
				{Left: -1, Right: -1, Value: -1, Cover: 6},
				{Left: -1, Right: -1, Value: 2, Cover: 4},
			}},
			{Nodes: []Node{
				{Feature: 1, Threshold: -0.25, Left: 1, Right: 2, Gain: 1.5, Cover: 10},
				{Left: -1, Right: -1, Value: 0.5, Cover: 3},
				{Left: -1, Right: -1, Value: -0.5, Cover: 7},
			}},
		},
		NumFeatures: 2,
		BaseScore:   0.125,
		Objective:   Regression,
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := fingerprintFixture(), fingerprintFixture()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical forests disagree: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	if got := a.Fingerprint(); got != a.Fingerprint() {
		t.Fatalf("fingerprint not idempotent: %s", got)
	}
	if len(a.Fingerprint()) != 16 {
		t.Fatalf("fingerprint %q is not a 16-hex-digit digest", a.Fingerprint())
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fingerprintFixture().Fingerprint()
	mutations := map[string]func(*Forest){
		"threshold":    func(f *Forest) { f.Trees[0].Nodes[0].Threshold += 1e-9 },
		"leaf value":   func(f *Forest) { f.Trees[1].Nodes[2].Value = -0.5000001 },
		"gain":         func(f *Forest) { f.Trees[0].Nodes[0].Gain = 3.5 },
		"cover":        func(f *Forest) { f.Trees[0].Nodes[1].Cover = 5 },
		"feature":      func(f *Forest) { f.Trees[1].Nodes[0].Feature = 0 },
		"base score":   func(f *Forest) { f.BaseScore = 0 },
		"objective":    func(f *Forest) { f.Objective = BinaryLogistic },
		"num features": func(f *Forest) { f.NumFeatures = 3 },
		"tree dropped": func(f *Forest) { f.Trees = f.Trees[:1] },
	}
	for name, mutate := range mutations {
		f := fingerprintFixture()
		mutate(f)
		if f.Fingerprint() == base {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}
}

func TestFingerprintIgnoresFeatureNames(t *testing.T) {
	f := fingerprintFixture()
	base := f.Fingerprint()
	f.FeatureNames = []string{"a", "b"}
	if f.Fingerprint() != base {
		t.Error("feature names changed the fingerprint; they label outputs only")
	}
}
