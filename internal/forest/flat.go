package forest

import (
	"fmt"
	"math"
	"sync"
	"time"

	"gef/internal/obs"
)

// Flat is a cache-friendly structure-of-arrays compilation of a Forest.
// Every tree's nodes are laid out breadth-first in shared contiguous
// slices with sibling pairs adjacent — each internal node stores a
// single child base kids, its right child, with the left child at
// kids+1 — so one walk step is the fully branchless
//
//	i = kids + (x[feature] <= threshold ? 1 : 0)
//
// where the comparison materializes as a flag byte (UCOMISD+SETcc on
// amd64), never a data-dependent jump: random 50/50 split outcomes cost
// an add, not a ~15-cycle branch mispredict. The traversal-hot fields —
// threshold, feature, kids and the quantized threshold code — are packed
// into one 24-byte flatNode record (a third of the 72-byte Node struct);
// cold fields (leaf value, cover, original node index) stay in separate
// slices read only after walks finish.
//
// Leaves are encoded as arithmetic self-loops: kids = own index − 1 and
// threshold = +Inf, so the select yields le = 1 and the walk stays put —
// which lets the batched kernels advance a whole block of rows for
// exactly the tree's precomputed max depth with no per-step leaf test.
// The one input that breaks the le = 1 invariant is NaN (every float
// comparison is false), so blocks containing NaN rows take the
// early-exit scalar walk instead; both walks route identically, the
// choice depends only on row contents, and the quantized mode needs no
// fallback at all (NaN encodes as the maximal row code and leaves carry
// code 65535). Kernels walk four rows abreast so the four independent
// node→feature load chains overlap in the pipeline instead of
// serializing on cache latency.
//
// The layout is the tensorized-forest idea (split the node struct into
// parallel arrays, amortize one tree walk over a batch of rows) applied
// to GEF's hot paths: D* labeling, TreeSHAP leaf/cover lookups, PDP
// grids and GBDT raw-score updates all stream these arrays instead of
// walking []Node one row at a time. Because nodes are reordered, Flat
// indices differ from Tree indices; OrigIndex maps back.
//
// A Flat is immutable after compilation and safe for concurrent use.
// Compile assumes a validated forest (Forest.Validate): child indices in
// range and acyclic.
type Flat struct {
	NumFeatures int
	NumTrees    int
	BaseScore   float64
	Objective   Objective

	nodes    []flatNode // per node: packed traversal-hot record
	value    []float64  // per node: leaf value (internal nodes: 0)
	cover    []float64  // per node: training cover (TreeSHAP weights)
	orig     []int32    // per node: original index within its Tree.Nodes
	offset   []int32    // per tree: first node index; len NumTrees+1
	maxDepth []int32    // per tree: max root-to-leaf depth
	treeMean []float64  // per tree: cover-weighted mean leaf value (E[t])

	// Quantized-threshold mode (CompileQuantized): per-feature sorted
	// distinct threshold tables; each node's uint16 code rides in its
	// flatNode. A row value is encoded once per feature as the
	// lower-bound index into the table; the walk then compares integer
	// codes, which routes bitwise identically to the float compare (see
	// CompileQuantized).
	cuts [][]float64 // per feature: sorted distinct thresholds; nil in float mode
}

// flatNode is the packed per-node traversal record: 24 bytes, so one
// 64-byte cache line holds ~2.7 nodes and a 16-leaf tree's 31 nodes fit
// in a dozen lines. The quantized threshold code lives in what would
// otherwise be struct padding.
type flatNode struct {
	threshold float64 // split threshold; +Inf for leaves
	feature   int32   // split feature; 0 for leaves (never decisive)
	kids      int32   // absolute right-child index (left at kids+1); own index − 1 for leaves
	code      uint16  // quantized rank of threshold within cuts[feature]; 65535 for leaves
	_         uint16
}

// rowBlock is the number of rows a batched kernel advances per tree
// walk: large enough to amortize the tree's arrays staying hot in L1,
// small enough that the block's rows and leaf-index scratch stay
// resident too.
const rowBlock = 128

// branchlessDepthCutoff bounds the fixed-depth (leaf-test-free) walk:
// beyond it a pathologically deep tree would make every row pay the
// full depth, so the kernel falls back to an early-exit walk. The
// choice depends only on the tree, never on the data, so it cannot
// affect results.
const branchlessDepthCutoff = 64

// maxQuantCuts caps the distinct thresholds per feature the quantized
// mode can encode: row codes span [0, cuts] inclusive and must fit in
// uint16, so cuts ≤ 65534.
const maxQuantCuts = math.MaxUint16 - 1

// Metrics instruments (hoisted; see internal/obs). Compile cost lands
// in forest.flat_compile_ms; kernel row counts are labeled by kernel so
// the scrape separates leaf assignment from prediction traffic.
var (
	mFlatCompileMs = obs.Metrics().Histogram("forest.flat_compile_ms")
	mFlatCompiles  = obs.Metrics().CounterVec("forest.flat_compiles", "mode")
	mFlatCacheHits = obs.Metrics().CounterVec("forest.flat_cache_hits", "mode")
	mFlatKernel    = obs.Metrics().CounterVec("forest.flat_kernel_rows", "kernel")

	mKernelLeaves  = mFlatKernel.With("leaves")
	mKernelRaw     = mFlatKernel.With("raw")
	mKernelPredict = mFlatKernel.With("predict")
	mKernelAddRaw  = mFlatKernel.With("add_raw")
)

// Compile builds the structure-of-arrays representation of f. It walks
// every node exactly once (plus one explicit-stack depth/mean pass per
// tree) and performs no caching — see Compiled for the
// fingerprint-keyed cache.
func Compile(f *Forest) *Flat {
	start := time.Now()
	fl := compileBase(f)
	mFlatCompileMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	mFlatCompiles.With("float").Inc()
	return fl
}

// CompileQuantized builds a Flat whose traversal compares uint16
// threshold codes instead of float64 thresholds. For each feature the
// sorted distinct threshold table T is extracted; a node splitting at
// T[c] stores code c, and a row value x encodes as
// code(x) = lower_bound(T, x) — the first index with T[k] ≥ x. Then
//
//	x ≤ T[c]  ⇔  code(x) ≤ c
//
// exactly: c ≥ code(x) implies T[c] ≥ x by the lower-bound definition,
// and c < code(x) implies T[c] < x. NaN row values encode as len(T)
// (every comparison in the search is false), which routes right at
// every split — the same path the float compare takes. Quantized
// routing is therefore bitwise identical to the float path by
// construction; the parity fuzz target verifies it leaf-for-leaf.
//
// Fails when any feature has more than 65534 distinct thresholds.
func CompileQuantized(f *Forest) (*Flat, error) {
	start := time.Now()
	fl := compileBase(f)
	fl.cuts = make([][]float64, f.NumFeatures)
	for j, v := range f.ThresholdsByFeature() {
		distinct := dedupeSortedCuts(v)
		if len(distinct) > maxQuantCuts {
			return nil, fmt.Errorf("forest: feature %d has %d distinct thresholds, quantized mode supports at most %d", j, len(distinct), maxQuantCuts)
		}
		fl.cuts[j] = distinct
	}
	for i := range fl.nodes {
		n := &fl.nodes[i]
		if n.kids < int32(i) {
			continue // leaf: code stays 65535 so le = 1 and the self-loop holds
		}
		// The node's threshold is a member of its feature's table, so the
		// lower bound lands exactly on it (== on bit-identical copies;
		// −0.0/+0.0 aliasing is harmless because x ≤ −0.0 ⇔ x ≤ +0.0).
		n.code = uint16(lowerBound(fl.cuts[n.feature], n.threshold))
	}
	mFlatCompileMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	mFlatCompiles.With("quantized").Inc()
	return fl, nil
}

// compileBase fills the SoA arrays, offsets, max depths and tree means.
// Within each tree, nodes are re-laid-out breadth-first with each
// internal node's children adjacent (right first, so left = kids+1 —
// matching the le ∈ {0,1} arithmetic select); orig records the original
// in-tree index of every slot.
func compileBase(f *Forest) *Flat {
	total := f.NumNodes()
	fl := &Flat{
		NumFeatures: f.NumFeatures,
		NumTrees:    len(f.Trees),
		BaseScore:   f.BaseScore,
		Objective:   f.Objective,
		nodes:       make([]flatNode, total),
		value:       make([]float64, total),
		cover:       make([]float64, total),
		orig:        make([]int32, total),
		offset:      make([]int32, len(f.Trees)+1),
		maxDepth:    make([]int32, len(f.Trees)),
		treeMean:    make([]float64, len(f.Trees)),
	}
	off := int32(0)
	var order []int32 // slot → original index, reused across trees
	for ti := range f.Trees {
		fl.offset[ti] = off
		nodes := f.Trees[ti].Nodes
		// BFS slot assignment: dequeuing an internal node appends its
		// right then left child, so sibling pairs land adjacent and
		// every child slot follows its parent's.
		order = append(order[:0], 0)
		for s := 0; s < len(order); s++ {
			if n := &nodes[order[s]]; !n.IsLeaf() {
				order = append(order, int32(n.Right), int32(n.Left))
			}
		}
		slotOf := make([]int32, len(nodes)) // original index → slot
		for slot, o := range order {
			slotOf[o] = int32(slot)
		}
		for slot, o := range order {
			n := &nodes[o]
			i := off + int32(slot)
			fl.cover[i] = n.Cover
			fl.orig[i] = o
			if n.IsLeaf() {
				fl.nodes[i] = flatNode{threshold: math.Inf(1), kids: i - 1, code: math.MaxUint16}
				fl.value[i] = n.Value
			} else {
				fl.nodes[i] = flatNode{
					threshold: n.Threshold,
					feature:   int32(n.Feature),
					kids:      off + slotOf[n.Right],
				}
			}
		}
		fl.maxDepth[ti] = int32(treeDepthIter(nodes))
		fl.treeMean[ti] = treeMeanIter(nodes)
		off += int32(len(nodes))
	}
	fl.offset[len(f.Trees)] = off
	return fl
}

// treeMeanIter computes the cover-weighted mean leaf value of the tree
// by explicit-stack post-order, evaluating the exact expression the
// path-dependent TreeSHAP expectation uses per node —
// (coverL·E_L + coverR·E_R)/cover — so the result is bit-identical to
// the recursive formulation it replaces.
func treeMeanIter(nodes []Node) float64 {
	if len(nodes) == 0 {
		return 0
	}
	e := make([]float64, len(nodes))
	type frame struct {
		i    int32
		post bool
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{0, false})
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &nodes[fr.i]
		if n.IsLeaf() {
			e[fr.i] = n.Value
			continue
		}
		if !fr.post {
			stack = append(stack, frame{fr.i, true},
				frame{int32(n.Left), false}, frame{int32(n.Right), false})
			continue
		}
		l, r := &nodes[n.Left], &nodes[n.Right]
		e[fr.i] = (l.Cover*e[n.Left] + r.Cover*e[n.Right]) / n.Cover
	}
	return e[0]
}

// dedupeSortedCuts collapses exact duplicates in a sorted threshold
// multiset (duplicates are bit-identical copies of the same split value,
// so == is the right comparison).
func dedupeSortedCuts(sorted []float64) []float64 {
	out := make([]float64, 0, len(sorted))
	for i, v := range sorted {
		//lint:ignore floatcmp dedupe of sorted thresholds; duplicates are bit-identical copies
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// lowerBound returns the first index with cuts[k] ≥ x (len(cuts) when
// none, including for NaN x: every comparison is false).
func lowerBound(cuts []float64, x float64) int {
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cuts[mid] >= x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Quantized reports whether fl carries the uint16 threshold codes.
func (fl *Flat) Quantized() bool { return fl.cuts != nil }

// NumNodes returns the total node count across all trees.
func (fl *Flat) NumNodes() int { return len(fl.nodes) }

// TreeRoot returns the absolute index of tree t's root node.
func (fl *Flat) TreeRoot(t int) int32 { return fl.offset[t] }

// TreeNodes returns the number of nodes in tree t.
func (fl *Flat) TreeNodes(t int) int { return int(fl.offset[t+1] - fl.offset[t]) }

// TreeMaxDepth returns the precomputed max root-to-leaf depth of tree t.
func (fl *Flat) TreeMaxDepth(t int) int { return int(fl.maxDepth[t]) }

// TreeMean returns tree t's cover-weighted mean leaf value — the
// path-dependent E[t] TreeSHAP uses as the per-tree base.
func (fl *Flat) TreeMean(t int) float64 { return fl.treeMean[t] }

// IsLeaf reports whether absolute node i is a leaf. Children are always
// laid out after their parent, so kids < i exactly for leaves (which
// store kids = i−1).
func (fl *Flat) IsLeaf(i int32) bool { return fl.nodes[i].kids < i }

// Feature returns node i's split feature (meaningless for leaves).
func (fl *Flat) Feature(i int32) int32 { return fl.nodes[i].feature }

// Threshold returns node i's split threshold (+Inf for leaves).
func (fl *Flat) Threshold(i int32) float64 { return fl.nodes[i].threshold }

// Left returns node i's absolute left-child index (self for leaves).
func (fl *Flat) Left(i int32) int32 {
	if k := fl.nodes[i].kids; k > i {
		return k + 1
	}
	return i
}

// Right returns node i's absolute right-child index (self for leaves).
func (fl *Flat) Right(i int32) int32 {
	if k := fl.nodes[i].kids; k > i {
		return k
	}
	return i
}

// OrigIndex returns the index node i had within its Tree.Nodes before
// the breadth-first re-layout — the mapping back to pointer-walk space.
func (fl *Flat) OrigIndex(i int32) int32 { return fl.orig[i] }

// Cover returns node i's training cover.
func (fl *Flat) Cover(i int32) float64 { return fl.cover[i] }

// Value returns node i's leaf value (0 for internal nodes).
func (fl *Flat) Value(i int32) float64 { return fl.value[i] }

// Leaf evaluates tree t on x and returns the absolute index of the leaf
// reached (early-exit walk; the batched kernels are the hot path).
func (fl *Flat) Leaf(t int, x []float64) int32 {
	return leafFrom(fl.nodes, fl.offset[t], x)
}

// leafFrom is the early-exit single-row walk from root over the packed
// node records. Left iff x ≤ threshold: the same comparison the pointer
// walk uses, so NaN (every compare false) routes right on both paths —
// this walk, unlike the fixed-depth kernel, is NaN-safe because it stops
// at the leaf instead of relying on the le = 1 self-loop.
func leafFrom(nodes []flatNode, root int32, x []float64) int32 {
	i := root
	for {
		n := &nodes[i]
		k := n.kids
		if k < i {
			return i
		}
		if x[n.feature] <= n.threshold {
			k++
		}
		i = k
	}
}

// RawPredict returns the untransformed additive score for a single row.
func (fl *Flat) RawPredict(x []float64) float64 {
	s := fl.BaseScore
	for t := 0; t < fl.NumTrees; t++ {
		s += fl.value[fl.Leaf(t, x)]
	}
	return s
}

// Predict returns the single-row prediction on the response scale,
// applying the same Sigmoid the pointer path uses for binary forests.
func (fl *Flat) Predict(x []float64) float64 {
	raw := fl.RawPredict(x)
	if fl.Objective == BinaryLogistic {
		return Sigmoid(raw)
	}
	return raw
}

// walkBlock advances one block of rows through tree t, leaving each
// row's leaf index in idx (len(idx) == len(rows)). The fixed-depth
// kernel steps every row exactly maxDepth times, finished rows spinning
// harmlessly on their leaf's self-loop, so the inner loop carries no
// leaf test and no data-dependent branch at all: the ≤-threshold select
// materializes as a flag byte (le ∈ {0,1}) added to the child base.
// Rows advance four abreast in registers — the four walks are
// independent, so their dependent node→feature load chains overlap
// instead of serializing on cache latency. Deep trees (beyond the
// cutoff) and NaN-bearing blocks (which break the leaf self-loop
// invariant, see the Flat doc comment) fall back to the early-exit
// walk, which routes identically. The unroll only reorders independent
// per-row walks, never any floating-point accumulation, so results are
// identical at any block shape. cs is the quantized row-code scratch
// (nil on the float path).
func (fl *Flat) walkBlock(t int, rows [][]float64, idx []int32, cs []uint16, hasNaN bool) {
	if cs != nil {
		fl.walkBlockQ(t, idx, cs)
		return
	}
	root := fl.offset[t]
	nodes := fl.nodes
	d := fl.maxDepth[t]
	if d > branchlessDepthCutoff || hasNaN {
		for r, x := range rows {
			idx[r] = leafFrom(nodes, root, x)
		}
		return
	}
	r := 0
	for ; r+4 <= len(rows); r += 4 {
		x0, x1, x2, x3 := rows[r], rows[r+1], rows[r+2], rows[r+3]
		i0, i1, i2, i3 := root, root, root, root
		for k := d; k > 0; k-- {
			n0 := &nodes[i0]
			le0 := int32(0)
			if x0[n0.feature] <= n0.threshold {
				le0 = 1
			}
			i0 = n0.kids + le0
			n1 := &nodes[i1]
			le1 := int32(0)
			if x1[n1.feature] <= n1.threshold {
				le1 = 1
			}
			i1 = n1.kids + le1
			n2 := &nodes[i2]
			le2 := int32(0)
			if x2[n2.feature] <= n2.threshold {
				le2 = 1
			}
			i2 = n2.kids + le2
			n3 := &nodes[i3]
			le3 := int32(0)
			if x3[n3.feature] <= n3.threshold {
				le3 = 1
			}
			i3 = n3.kids + le3
		}
		idx[r], idx[r+1], idx[r+2], idx[r+3] = i0, i1, i2, i3
	}
	for ; r < len(rows); r++ {
		x := rows[r]
		i := root
		for k := d; k > 0; k-- {
			n := &nodes[i]
			le := int32(0)
			if x[n.feature] <= n.threshold {
				le = 1
			}
			i = n.kids + le
		}
		idx[r] = i
	}
}

// walkBlockQ is walkBlock over pre-encoded uint16 row codes: cs holds
// len(idx) rows of NumFeatures codes each (see encodeBlock). Left iff
// code(x) ≤ code(threshold) — exactly the float ≤ by the lower-bound
// construction (see CompileQuantized). No NaN fallback is needed: NaN
// encodes as len(cuts) ≤ 65534 and leaves carry code 65535, so le = 1
// holds at every leaf for every input.
func (fl *Flat) walkBlockQ(t int, idx []int32, cs []uint16) {
	root := fl.offset[t]
	nodes := fl.nodes
	nf := fl.NumFeatures
	d := fl.maxDepth[t]
	if d > branchlessDepthCutoff {
		for r := range idx {
			i := root
			row := cs[r*nf : (r+1)*nf]
			for {
				n := &nodes[i]
				k := n.kids
				if k < i {
					break
				}
				if row[n.feature] <= n.code {
					k++
				}
				i = k
			}
			idx[r] = i
		}
		return
	}
	r := 0
	for ; r+4 <= len(idx); r += 4 {
		c0 := cs[r*nf : (r+1)*nf]
		c1 := cs[(r+1)*nf : (r+2)*nf]
		c2 := cs[(r+2)*nf : (r+3)*nf]
		c3 := cs[(r+3)*nf : (r+4)*nf]
		i0, i1, i2, i3 := root, root, root, root
		for k := d; k > 0; k-- {
			n0 := &nodes[i0]
			le0 := int32(0)
			if c0[n0.feature] <= n0.code {
				le0 = 1
			}
			i0 = n0.kids + le0
			n1 := &nodes[i1]
			le1 := int32(0)
			if c1[n1.feature] <= n1.code {
				le1 = 1
			}
			i1 = n1.kids + le1
			n2 := &nodes[i2]
			le2 := int32(0)
			if c2[n2.feature] <= n2.code {
				le2 = 1
			}
			i2 = n2.kids + le2
			n3 := &nodes[i3]
			le3 := int32(0)
			if c3[n3.feature] <= n3.code {
				le3 = 1
			}
			i3 = n3.kids + le3
		}
		idx[r], idx[r+1], idx[r+2], idx[r+3] = i0, i1, i2, i3
	}
	for ; r < len(idx); r++ {
		row := cs[r*nf : (r+1)*nf]
		i := root
		for k := d; k > 0; k-- {
			n := &nodes[i]
			le := int32(0)
			if row[n.feature] <= n.code {
				le = 1
			}
			i = n.kids + le
		}
		idx[r] = i
	}
}

// rowsHaveNaN reports whether any coordinate in the block is NaN — the
// one input class the fixed-depth self-loop walk cannot route; such
// blocks take the early-exit walk instead. The scan depends only on row
// contents, so which walk runs can never vary with worker count.
func rowsHaveNaN(rows [][]float64) bool {
	for _, x := range rows {
		for _, v := range x {
			if math.IsNaN(v) {
				return true
			}
		}
	}
	return false
}

// encodeBlock quantizes a block of rows into cs: row r, feature j lands
// at cs[r*NumFeatures+j]. One encode pass per block is amortized over
// every tree walk in the block.
func (fl *Flat) encodeBlock(rows [][]float64, cs []uint16) {
	nf := fl.NumFeatures
	for r, x := range rows {
		base := r * nf
		for j := 0; j < nf; j++ {
			cuts := fl.cuts[j]
			if len(cuts) == 0 {
				cs[base+j] = 0
				continue
			}
			cs[base+j] = uint16(lowerBound(cuts, x[j]))
		}
	}
}

// LeavesBatch evaluates every tree on every row and writes the absolute
// leaf index of row r in tree t to out[r*NumTrees+t]. out must have
// length len(xs)*NumTrees. Rows are processed in fixed-size blocks,
// each block walked tree-by-tree through a reused leaf-index scratch
// buffer, so one tree's arrays serve a whole block of rows before the
// next tree is touched.
func (fl *Flat) LeavesBatch(xs [][]float64, out []int32) {
	if len(out) != len(xs)*fl.NumTrees {
		panic(fmt.Sprintf("forest: LeavesBatch out has length %d, want rows×trees = %d", len(out), len(xs)*fl.NumTrees))
	}
	mKernelLeaves.Add(int64(len(xs)))
	var idx [rowBlock]int32
	cs := fl.blockCodes()
	nt := fl.NumTrees
	for lo := 0; lo < len(xs); lo += rowBlock {
		hi := min(lo+rowBlock, len(xs))
		rows := xs[lo:hi]
		hasNaN := false
		if cs != nil {
			fl.encodeBlock(rows, cs)
		} else {
			hasNaN = rowsHaveNaN(rows)
		}
		for t := 0; t < nt; t++ {
			fl.walkBlock(t, rows, idx[:len(rows)], cs, hasNaN)
			for r := range rows {
				out[(lo+r)*nt+t] = idx[r]
			}
		}
	}
}

// RawPredictBatchInto writes the untransformed additive score of each
// row of xs into out (len(out) == len(xs)), running serially — callers
// parallelize over row ranges (Forest.RawPredictBatchCtx). Rows
// accumulate BaseScore then tree values in tree order, the same
// floating-point order as the single-row path, so results are bitwise
// identical to Forest.RawPredict.
func (fl *Flat) RawPredictBatchInto(xs [][]float64, out []float64) {
	mKernelRaw.Add(int64(len(xs)))
	fl.rawBlocks(xs, out, false)
}

// AddRawInto adds each row's additive tree score (without BaseScore) to
// the corresponding out slot — the GBDT incremental raw-score update,
// batched: out[r] += Σ_t t(xs[r]).
func (fl *Flat) AddRawInto(xs [][]float64, out []float64) {
	mKernelAddRaw.Add(int64(len(xs)))
	fl.rawBlocks(xs, out, true)
}

// rawBlocks is the shared raw-score kernel: per block, per tree, walk
// then gather leaf values. add preserves existing out contents (the
// GBDT update); otherwise out is initialized to BaseScore.
func (fl *Flat) rawBlocks(xs [][]float64, out []float64, add bool) {
	var idx [rowBlock]int32
	cs := fl.blockCodes()
	value := fl.value
	for lo := 0; lo < len(xs); lo += rowBlock {
		hi := min(lo+rowBlock, len(xs))
		rows := xs[lo:hi]
		ob := out[lo:hi]
		if !add {
			for r := range ob {
				ob[r] = fl.BaseScore
			}
		}
		hasNaN := false
		if cs != nil {
			fl.encodeBlock(rows, cs)
		} else {
			hasNaN = rowsHaveNaN(rows)
		}
		for t := 0; t < fl.NumTrees; t++ {
			fl.walkBlock(t, rows, idx[:len(rows)], cs, hasNaN)
			for r := range ob {
				ob[r] += value[idx[r]]
			}
		}
	}
}

// PredictBatchInto is RawPredictBatchInto with the objective transform
// hoisted out of the per-row accumulation: raw scores are computed for
// the whole range first, then a single pass applies Sigmoid for
// binary-logistic forests (identical per-row arithmetic to the
// single-row Predict).
func (fl *Flat) PredictBatchInto(xs [][]float64, out []float64) {
	mKernelPredict.Add(int64(len(xs)))
	fl.rawBlocks(xs, out, false)
	if fl.Objective == BinaryLogistic {
		for i, v := range out {
			out[i] = Sigmoid(v)
		}
	}
}

// blockCodes returns the per-block quantized-code scratch, or nil on
// the float path.
func (fl *Flat) blockCodes() []uint16 {
	if !fl.Quantized() {
		return nil
	}
	return make([]uint16, rowBlock*fl.NumFeatures)
}

// flatCache memoizes compilations by forest fingerprint (plus the
// compile mode), so every consumer of the same forest — the engine's
// sample stage, SHAP, PDP, repeated batch predictions — shares one
// Flat. Bounded FIFO eviction keeps a handful of forests resident
// without letting long-lived processes accumulate retired models.
var flatCache = struct {
	sync.Mutex
	entries map[string]*Flat
	order   []string
}{entries: make(map[string]*Flat)}

// maxFlatCacheEntries bounds the compile cache; a Flat is ~40 bytes per
// node, so even eight large (10⁶-node) forests stay under ~0.5 GiB.
const maxFlatCacheEntries = 8

// Compiled returns the cached Flat for f, compiling it on first use.
// The cache key is forest.Fingerprint(), so any structural change to
// the forest yields a fresh compilation and retired versions age out.
func Compiled(f *Forest) *Flat {
	return compiledMode(f.Fingerprint()+"|float", "float", func() *Flat { return Compile(f) })
}

// CompiledQuantized is Compiled for the quantized-threshold mode.
func CompiledQuantized(f *Forest) (*Flat, error) {
	var cerr error
	fl := compiledMode(f.Fingerprint()+"|quant", "quantized", func() *Flat {
		q, err := CompileQuantized(f)
		if err != nil {
			cerr = err
			return nil
		}
		return q
	})
	if cerr != nil {
		return nil, cerr
	}
	return fl, nil
}

// compiledMode is the shared cache lookup. The lock covers compilation
// so concurrent first uses of one forest compile once; compilation is
// O(nodes) and allocation-bound, so the hold time is modest.
func compiledMode(key, mode string, compile func() *Flat) *Flat {
	flatCache.Lock()
	defer flatCache.Unlock()
	if fl, ok := flatCache.entries[key]; ok {
		mFlatCacheHits.With(mode).Inc()
		return fl
	}
	fl := compile()
	if fl == nil {
		return nil
	}
	if len(flatCache.order) >= maxFlatCacheEntries {
		oldest := flatCache.order[0]
		flatCache.order = flatCache.order[1:]
		delete(flatCache.entries, oldest)
	}
	flatCache.entries[key] = fl
	flatCache.order = append(flatCache.order, key)
	return fl
}
