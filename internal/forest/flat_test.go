package forest

import (
	"math"
	"math/rand"
	"testing"
)

// randTree grows a random valid tree breadth-first: each dequeued node
// becomes internal (children appended after it, so indices are acyclic by
// construction) until the internal budget runs out. Thresholds and half
// the row values are rounded to eighths so exact x == threshold boundary
// hits occur with real probability.
func randTree(r *rand.Rand, numFeat, maxInternal int) Tree {
	nodes := []Node{{}}
	queue := []int{0}
	internal := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		if internal < maxInternal && r.Float64() < 0.7 {
			internal++
			l := len(nodes)
			nodes = append(nodes, Node{}, Node{})
			nodes[i] = Node{
				Feature:   r.Intn(numFeat),
				Threshold: math.Round(r.NormFloat64()*8) / 8,
				Left:      l,
				Right:     l + 1,
				Gain:      r.Float64(),
			}
			queue = append(queue, l, l+1)
		} else {
			nodes[i] = Node{Left: -1, Right: -1, Value: r.NormFloat64()}
		}
	}
	// Covers: leaves get a random positive count, internals the sum of
	// their children (children always have higher indices, so a reverse
	// sweep sees both before the parent).
	for i := len(nodes) - 1; i >= 0; i-- {
		n := &nodes[i]
		if n.IsLeaf() {
			n.Cover = float64(1 + r.Intn(50))
		} else {
			n.Cover = nodes[n.Left].Cover + nodes[n.Right].Cover
		}
	}
	return Tree{Nodes: nodes}
}

// randForest builds a random valid forest for parity tests.
func randForest(r *rand.Rand, numTrees, numFeat, maxInternal int, obj Objective) *Forest {
	f := &Forest{NumFeatures: numFeat, BaseScore: r.NormFloat64(), Objective: obj}
	for t := 0; t < numTrees; t++ {
		f.Trees = append(f.Trees, randTree(r, numFeat, maxInternal))
	}
	return f
}

// randRow draws a feature row; half the coordinates are rounded to
// eighths (to land exactly on thresholds) and NaN appears with the given
// probability.
func randRow(r *rand.Rand, numFeat int, nanProb float64) []float64 {
	x := make([]float64, numFeat)
	for j := range x {
		switch {
		case r.Float64() < nanProb:
			x[j] = math.NaN()
		case r.Float64() < 0.5:
			x[j] = math.Round(r.NormFloat64()*8) / 8
		default:
			x[j] = r.NormFloat64()
		}
	}
	return x
}

// flatsUnderTest compiles both modes of a forest, failing the test if the
// quantized compile is rejected.
func flatsUnderTest(t *testing.T, f *Forest) []*Flat {
	t.Helper()
	fq, err := CompileQuantized(f)
	if err != nil {
		t.Fatalf("CompileQuantized: %v", err)
	}
	return []*Flat{Compile(f), fq}
}

func TestFlatLeafParityRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		f := randForest(r, 1+r.Intn(6), 1+r.Intn(5), r.Intn(40), Regression)
		if err := f.Validate(); err != nil {
			t.Fatalf("trial %d: random forest invalid: %v", trial, err)
		}
		for _, fl := range flatsUnderTest(t, f) {
			for rowTrial := 0; rowTrial < 50; rowTrial++ {
				x := randRow(r, f.NumFeatures, 0.05)
				for ti := range f.Trees {
					want := int32(f.Trees[ti].Leaf(x))
					if got := fl.Leaf(ti, x); fl.OrigIndex(got) != want {
						t.Fatalf("trial %d tree %d quantized=%v: Leaf(%v) = slot %d (orig %d), want orig %d",
							trial, ti, fl.Quantized(), x, got, fl.OrigIndex(got), want)
					}
				}
			}
		}
	}
}

func TestLeavesBatchMatchesLeaf(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := randForest(r, 5, 4, 30, Regression)
	xs := make([][]float64, 3*rowBlock+17) // exercises full and ragged blocks
	for i := range xs {
		xs[i] = randRow(r, f.NumFeatures, 0.02)
	}
	for _, fl := range flatsUnderTest(t, f) {
		out := make([]int32, len(xs)*fl.NumTrees)
		fl.LeavesBatch(xs, out)
		for i, x := range xs {
			for ti := 0; ti < fl.NumTrees; ti++ {
				if got, want := out[i*fl.NumTrees+ti], fl.Leaf(ti, x); got != want {
					t.Fatalf("quantized=%v row %d tree %d: batch leaf %d, walk leaf %d",
						fl.Quantized(), i, ti, got, want)
				}
			}
		}
	}
}

func TestLeavesBatchPanicsOnShortOut(t *testing.T) {
	f := twoTreeForest()
	fl := Compile(f)
	defer func() {
		if recover() == nil {
			t.Fatal("LeavesBatch accepted an undersized out slice")
		}
	}()
	fl.LeavesBatch([][]float64{{0, 0}}, make([]int32, 1))
}

func TestRawPredictBatchIntoBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := randForest(r, 6, 3, 25, Regression)
	xs := make([][]float64, rowBlock+9)
	for i := range xs {
		xs[i] = randRow(r, f.NumFeatures, 0.02)
	}
	for _, fl := range flatsUnderTest(t, f) {
		out := make([]float64, len(xs))
		fl.RawPredictBatchInto(xs, out)
		for i, x := range xs {
			// Reference accumulation in the same order: base + trees.
			want := f.BaseScore
			for ti := range f.Trees {
				want += f.Trees[ti].Predict(x)
			}
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("quantized=%v row %d: batch raw %v != pointer raw %v",
					fl.Quantized(), i, out[i], want)
			}
			if got := fl.RawPredict(x); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("quantized=%v row %d: single raw %v != pointer raw %v",
					fl.Quantized(), i, got, want)
			}
		}
	}
}

func TestPredictBatchIntoAppliesSigmoid(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	f := randForest(r, 4, 3, 20, BinaryLogistic)
	xs := make([][]float64, 33)
	for i := range xs {
		xs[i] = randRow(r, f.NumFeatures, 0)
	}
	fl := Compile(f)
	out := make([]float64, len(xs))
	fl.PredictBatchInto(xs, out)
	for i, x := range xs {
		want := f.Predict(x)
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: %v != pointer predict %v", i, out[i], want)
		}
		if got := fl.Predict(x); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("row %d: flat single predict %v != %v", i, got, want)
		}
	}
}

func TestAddRawIntoAccumulates(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	f := randForest(r, 3, 3, 15, Regression)
	fl := Compile(f)
	xs := make([][]float64, 21)
	for i := range xs {
		xs[i] = randRow(r, f.NumFeatures, 0)
	}
	out := make([]float64, len(xs))
	for i := range out {
		out[i] = float64(i) * 0.25
	}
	fl.AddRawInto(xs, out)
	for i, x := range xs {
		want := float64(i) * 0.25
		for ti := range f.Trees {
			want += f.Trees[ti].Predict(x)
		}
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: AddRawInto %v, want %v (no BaseScore)", i, out[i], want)
		}
	}
}

// refExpectedValue is the recursive cover-weighted expectation the
// compile-time treeMeanIter replaced; the two must agree bit-for-bit.
func refExpectedValue(nodes []Node, i int) float64 {
	n := &nodes[i]
	if n.IsLeaf() {
		return n.Value
	}
	l := refExpectedValue(nodes, n.Left)
	r := refExpectedValue(nodes, n.Right)
	return (nodes[n.Left].Cover*l + nodes[n.Right].Cover*r) / n.Cover
}

func TestTreeMeanMatchesRecursiveReference(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		f := randForest(r, 4, 3, 30, Regression)
		fl := Compile(f)
		for ti := range f.Trees {
			want := refExpectedValue(f.Trees[ti].Nodes, 0)
			if math.Float64bits(fl.TreeMean(ti)) != math.Float64bits(want) {
				t.Fatalf("trial %d tree %d: TreeMean %v != recursive %v",
					trial, ti, fl.TreeMean(ti), want)
			}
		}
	}
}

func TestCompiledCacheReturnsSameFlat(t *testing.T) {
	f := twoTreeForest()
	a, b := Compiled(f), Compiled(f)
	if a != b {
		t.Fatal("Compiled did not serve the second call from the cache")
	}
	q1, err := CompiledQuantized(f)
	if err != nil {
		t.Fatalf("CompiledQuantized: %v", err)
	}
	q2, _ := CompiledQuantized(f)
	if q1 != q2 {
		t.Fatal("CompiledQuantized did not serve the second call from the cache")
	}
	if a == q1 {
		t.Fatal("float and quantized cache entries must be distinct")
	}
}

func TestCompiledCacheEvictsFIFO(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	first := randForest(r, 2, 2, 10, Regression)
	a := Compiled(first)
	// Fill the cache with maxFlatCacheEntries distinct forests; the
	// first entry is the oldest and must be evicted.
	for i := 0; i < maxFlatCacheEntries; i++ {
		Compiled(randForest(r, 2, 2, 10, Regression))
	}
	if b := Compiled(first); a == b {
		t.Fatal("oldest cache entry was not evicted after the cache filled")
	}
}

func TestQuantizedCutTables(t *testing.T) {
	if got := dedupeSortedCuts([]float64{1, 1, 2, 2, 2, 3}); len(got) != 3 {
		t.Fatalf("dedupeSortedCuts kept %d values, want 3", len(got))
	}
	cuts := []float64{-1, 0, 2.5}
	cases := []struct {
		x    float64
		want int
	}{
		{math.Inf(-1), 0}, {-1, 0}, {-0.5, 1}, {0, 1}, {1, 2}, {2.5, 2},
		{3, 3}, {math.Inf(1), 3}, {math.NaN(), 3},
	}
	for _, c := range cases {
		if got := lowerBound(cuts, c.x); got != c.want {
			t.Errorf("lowerBound(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestFlatDepthZeroTree(t *testing.T) {
	f := &Forest{
		Trees:       []Tree{{Nodes: []Node{{Left: -1, Right: -1, Value: 3, Cover: 1}}}},
		NumFeatures: 2,
		Objective:   Regression,
	}
	for _, fl := range flatsUnderTest(t, f) {
		if got := fl.Leaf(0, []float64{0, 0}); got != 0 {
			t.Fatalf("quantized=%v: leaf-only tree routed to %d", fl.Quantized(), got)
		}
		out := make([]float64, 1)
		fl.RawPredictBatchInto([][]float64{{0, 0}}, out)
		if out[0] != 3 {
			t.Fatalf("quantized=%v: leaf-only raw %v, want 3", fl.Quantized(), out[0])
		}
	}
}

// TestDeepChainTreeIterative is the 10k-depth regression test for the
// explicit-stack Depth/Validate walkers and the early-exit traversal
// fallback: a left-descending chain this deep overflowed the goroutine
// stack under the old recursive implementations.
func TestDeepChainTreeIterative(t *testing.T) {
	const depth = 10000
	nodes := make([]Node, 0, 2*depth+1)
	for d := 0; d < depth; d++ {
		i := len(nodes)
		nodes = append(nodes,
			Node{Feature: 0, Threshold: float64(depth - d), Left: i + 2, Right: i + 1, Gain: 1, Cover: float64(depth-d) + 1},
			Node{Left: -1, Right: -1, Value: float64(d), Cover: 1})
	}
	nodes = append(nodes, Node{Left: -1, Right: -1, Value: -1, Cover: 1})
	f := &Forest{Trees: []Tree{{Nodes: nodes}}, NumFeatures: 1, Objective: Regression}

	if got := f.Trees[0].Depth(); got != depth {
		t.Fatalf("Depth = %d, want %d", got, depth)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, fl := range flatsUnderTest(t, f) {
		if got := fl.TreeMaxDepth(0); got != depth {
			t.Fatalf("quantized=%v: TreeMaxDepth = %d, want %d", fl.Quantized(), got, depth)
		}
		// x=0 descends the full chain; x beyond the root threshold
		// exits right immediately. Both must match the pointer walk.
		for _, x := range [][]float64{{0}, {depth + 1}, {depth / 2.0}} {
			want := int32(f.Trees[0].Leaf(x))
			if got := fl.Leaf(0, x); fl.OrigIndex(got) != want {
				t.Fatalf("quantized=%v: Leaf(%v) = slot %d (orig %d), want orig %d",
					fl.Quantized(), x, got, fl.OrigIndex(got), want)
			}
		}
		out := make([]int32, 2)
		fl.LeavesBatch([][]float64{{0}, {depth + 1}}, out)
		if fl.OrigIndex(out[0]) != int32(f.Trees[0].Leaf([]float64{0})) {
			t.Fatalf("quantized=%v: batch leaf on deep chain diverged", fl.Quantized())
		}
	}
}
