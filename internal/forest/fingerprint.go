package forest

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Fingerprint returns a deterministic 64-bit FNV-1a digest of the
// forest's full structure: objective, feature width, base score, and
// every node's split and leaf fields, bit-exact for the float64 values.
// Two forests share a fingerprint iff they encode the same trees, so the
// digest identifies a forest as a cache key: every artifact the GEF
// pipeline derives from a forest alone (threshold sets, gain
// importances, sampling domains, D*) is a pure function of this value
// plus the configuration fields the deriving stage reads.
//
// Feature names are deliberately excluded — they label outputs but never
// influence any computed artifact.
func (f *Forest) Fingerprint() string {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		//lint:ignore errdrop hash.Hash Write never returns an error
		h.Write(buf[:])
	}
	wf := func(v float64) { wu(math.Float64bits(v)) }
	wu(uint64(f.NumFeatures))
	wf(f.BaseScore)
	//lint:ignore errdrop hash.Hash Write never returns an error
	h.Write([]byte(f.Objective))
	wu(uint64(len(f.Trees)))
	for ti := range f.Trees {
		nodes := f.Trees[ti].Nodes
		wu(uint64(len(nodes)))
		for ni := range nodes {
			n := &nodes[ni]
			wu(uint64(int64(n.Feature)))
			wu(uint64(int64(n.Left)))
			wu(uint64(int64(n.Right)))
			wf(n.Threshold)
			wf(n.Gain)
			wf(n.Cover)
			wf(n.Value)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
