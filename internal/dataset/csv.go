package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV writes the dataset as CSV with a header row; the target column
// is written last under the name "target".
func WriteCSV(d *Dataset, w io.Writer) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("refusing to write invalid dataset: %w", err)
	}
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.NumFeatures()+1)
	for j := 0; j < d.NumFeatures(); j++ {
		name := fmt.Sprintf("f%d", j)
		if j < len(d.FeatureNames) {
			name = d.FeatureNames[j]
		}
		header = append(header, name)
	}
	header = append(header, "target")
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i, row := range d.X {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[len(rec)-1] = strconv.FormatFloat(d.Y[i], 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV (header row, numeric
// columns, target last). The task must be supplied by the caller since
// CSV does not carry it.
func ReadCSV(r io.Reader, task Task) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading CSV header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("CSV needs at least one feature and a target column, got %d columns", len(header))
	}
	d := &Dataset{
		FeatureNames: append([]string(nil), header[:len(header)-1]...),
		Task:         task,
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("CSV line %d has %d columns, want %d", line, len(rec), len(header))
		}
		row := make([]float64, len(rec)-1)
		for j := range row {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("CSV line %d column %q: %w", line, header[j], err)
			}
			row[j] = v
		}
		y, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("CSV line %d target: %w", line, err)
		}
		d.X = append(d.X, row)
		d.Y = append(d.Y, y)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// SaveCSVFile writes the dataset to the named CSV file.
func SaveCSVFile(d *Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	//lint:ignore errdrop double-close guard; the explicit Close below surfaces write errors
	defer f.Close()
	if err := WriteCSV(d, f); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSVFile reads a dataset from the named CSV file.
func LoadCSVFile(path string, task Task) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errdrop close error on a read-only file carries no data-loss signal
	defer f.Close()
	return ReadCSV(f, task)
}
