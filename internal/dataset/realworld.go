package dataset

import (
	"math"
	"math/rand"
)

// This file contains offline statistical simulators for the two real-world
// datasets of §5.1. The module has no network access and the experiments
// only require the *shape* of the learning problems — a wide regression
// task whose forest gain concentrates on a small feature subset
// (Superconductivity) and a mixed categorical/continuous classification
// task with a dominant monotone driver (Census) — so each simulator
// reproduces those structural properties rather than the original records.
// See DESIGN.md, "Substitutions".

// SuperconductivityRows and SuperconductivityFeatures match the original
// UCI dataset's dimensions (21,263 superconductors × 81 derived features).
const (
	SuperconductivityRows     = 21263
	SuperconductivityFeatures = 81
)

// superconProps and superconStats generate the 80 derived feature names
// (8 elemental properties × 10 statistics) + number_of_elements = 81,
// mirroring Hamidieh's feature construction.
var superconProps = []string{
	"atomic_mass", "fie", "atomic_radius", "density",
	"electron_affinity", "fusion_heat", "thermal_conductivity", "valence",
}

var superconStats = []string{
	"mean", "wtd_mean", "gmean", "wtd_gmean", "entropy",
	"wtd_entropy", "range", "wtd_range", "std", "wtd_std",
}

// SuperconductivityFeatureNames returns the 81 feature names of the
// simulated Superconductivity dataset.
func SuperconductivityFeatureNames() []string {
	names := make([]string, 0, SuperconductivityFeatures)
	names = append(names, "number_of_elements")
	for _, p := range superconProps {
		for _, s := range superconStats {
			names = append(names, s+"_"+p)
		}
	}
	return names
}

// Indices of the driver features the simulated critical temperature
// depends on. WEAM = wtd_entropy_atomic_mass is the feature the paper's
// Figs. 9, 11–13 center on (sharp jump near 1.1).
var superconDrivers = map[string]int{}

func init() {
	names := SuperconductivityFeatureNames()
	for i, n := range names {
		superconDrivers[n] = i
	}
}

// SuperconductivityN generates n rows of the simulated Superconductivity
// dataset. The 81 features are noisy mixtures of six latent "material"
// factors; the critical-temperature target is a smooth nonlinear function
// of a handful of named driver features — including a sharp sigmoidal
// drop as wtd_entropy_atomic_mass crosses ≈1.1 — plus noise, clipped at 0
// like a physical temperature.
func SuperconductivityN(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	names := SuperconductivityFeatureNames()

	// Fixed per-feature mixing structure, drawn once from a structure RNG
	// seeded independently of the row RNG so the schema is stable across
	// sample sizes.
	srng := rand.New(rand.NewSource(917))
	const latents = 6
	type mix struct {
		w          [latents]float64
		scale, off float64
		noise      float64
	}
	mixes := make([]mix, len(names))
	for j := range mixes {
		var m mix
		// Two dominant latent loadings per feature keeps features
		// correlated in blocks, like the real derived statistics.
		a, b := srng.Intn(latents), srng.Intn(latents)
		m.w[a] += 0.7 + 0.6*srng.Float64()
		m.w[b] += 0.3 + 0.4*srng.Float64()
		m.scale = 0.5 + 2*srng.Float64()
		m.off = 4 * (srng.Float64() - 0.5)
		m.noise = 0.1 + 0.3*srng.Float64()
		mixes[j] = m
	}

	d := &Dataset{
		X:            make([][]float64, n),
		Y:            make([]float64, n),
		FeatureNames: names,
		Task:         Regression,
	}
	weam := superconDrivers["wtd_entropy_atomic_mass"]
	rar := superconDrivers["range_atomic_radius"]
	wstc := superconDrivers["wtd_std_thermal_conductivity"]
	mden := superconDrivers["mean_density"]
	wmv := superconDrivers["wtd_mean_valence"]
	noe := superconDrivers["number_of_elements"]
	wgf := superconDrivers["wtd_gmean_fie"]
	sam := superconDrivers["std_atomic_mass"]

	for i := 0; i < n; i++ {
		var z [latents]float64
		for k := range z {
			z[k] = rng.NormFloat64()
		}
		row := make([]float64, len(names))
		for j, m := range mixes {
			v := m.off
			for k := 0; k < latents; k++ {
				v += m.w[k] * z[k]
			}
			row[j] = m.scale*v + m.noise*rng.NormFloat64()
		}
		// Driver features get interpretable ranges.
		row[noe] = float64(1 + rng.Intn(8))         // 1–8 elements
		row[weam] = 0.3 + 1.4*rng.Float64()         // entropy-like, spans the 1.1 jump
		row[rar] = math.Abs(row[rar]) * 40          // pm-scale radius range
		row[wstc] = math.Abs(row[wstc]) * 30        // conductivity spread
		row[mden] = 2000 + 1500*math.Abs(row[mden]) // kg/m³-scale
		row[wmv] = 1.5 + 3*rng.Float64()            // valence 1.5–4.5
		row[wgf] = 600 + 150*row[wgf]/3             // first-ionisation-energy scale
		row[sam] = math.Abs(row[sam]) * 25          // atomic-mass spread
		d.X[i] = row

		// Critical temperature: low-entropy (cuprate-like) materials stay
		// hot; the WEAM term drops ≈45 K across the 1.1 boundary, giving
		// the sharp jump visible in the paper's Fig. 9.
		tc := 15.0
		tc += 45 * (1 - forestSigmoid(25*(row[weam]-1.1)))
		tc += 0.35 * row[rar] * forestSigmoid(row[wstc]/10-1)
		tc += 12 * math.Sin(row[wmv])
		tc += 6 * math.Log1p(row[wstc])
		tc += 4 * float64(int(row[noe])%5)
		tc -= 0.004 * (row[mden] - 2700) / 10
		tc += 0.02 * (row[wgf] - 650)
		tc += 0.15 * row[sam]
		tc += 6 * rng.NormFloat64()
		if tc < 0 {
			tc = 0
		}
		d.Y[i] = tc
	}
	return d
}

// Superconductivity generates the full-size simulated dataset
// (21,263 × 81).
func Superconductivity(seed int64) *Dataset {
	return SuperconductivityN(SuperconductivityRows, seed)
}

func forestSigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// CensusRows matches the original Adult/Census dataset size.
const CensusRows = 48842

var (
	censusWorkclass    = []string{"Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov", "Local-gov", "State-gov", "Without-pay", "Never-worked"}
	censusEducation    = []string{"Preschool", "1st-4th", "5th-6th", "7th-8th", "9th", "10th", "11th", "12th", "HS-grad", "Some-college", "Assoc-voc", "Assoc-acdm", "Bachelors", "Masters", "Prof-school", "Doctorate"}
	censusMarital      = []string{"Married-civ-spouse", "Divorced", "Never-married", "Separated", "Widowed", "Married-spouse-absent", "Married-AF-spouse"}
	censusOccupation   = []string{"Tech-support", "Craft-repair", "Other-service", "Sales", "Exec-managerial", "Prof-specialty", "Handlers-cleaners", "Machine-op-inspct", "Adm-clerical", "Farming-fishing", "Transport-moving", "Priv-house-serv", "Protective-serv", "Armed-Forces"}
	censusRelationship = []string{"Wife", "Own-child", "Husband", "Not-in-family", "Other-relative", "Unmarried"}
	censusRace         = []string{"White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other", "Black"}
	censusSex          = []string{"Female", "Male"}
	censusCountry      = []string{"United-States", "Mexico", "Philippines", "Germany", "Canada", "India", "England", "Cuba", "China", "Other"}
)

// CensusTableN generates n rows of the simulated Census (Adult) dataset in
// raw mixed-type form: 14 attributes including the redundant education /
// education-num pair and the sensitive race/sex/relationship attributes.
// The binary target ("annual salary > 50K") follows a logistic model
// driven chiefly by education-num (monotone positive, matching the
// paper's Fig. 10 reading), age (concave), hours-per-week, capital-gain
// and marital status, yielding ≈24% positives like the original.
func CensusTableN(n int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	cols := map[string]*TableColumn{}
	order := []string{"age", "workclass", "fnlwgt", "education", "education-num",
		"marital-status", "occupation", "relationship", "race", "sex",
		"capital-gain", "capital-loss", "hours-per-week", "native-country"}
	mk := func(name string, kind ColumnKind, levels []string) *TableColumn {
		c := &TableColumn{Name: name, Kind: kind, Values: make([]float64, n), Levels: levels}
		cols[name] = c
		return c
	}
	age := mk("age", Numeric, nil)
	workclass := mk("workclass", Categorical, censusWorkclass)
	fnlwgt := mk("fnlwgt", Numeric, nil)
	education := mk("education", Categorical, censusEducation)
	eduNum := mk("education-num", Numeric, nil)
	marital := mk("marital-status", Categorical, censusMarital)
	occupation := mk("occupation", Categorical, censusOccupation)
	relationship := mk("relationship", Categorical, censusRelationship)
	race := mk("race", Categorical, censusRace)
	sex := mk("sex", Categorical, censusSex)
	capGain := mk("capital-gain", Numeric, nil)
	capLoss := mk("capital-loss", Numeric, nil)
	hours := mk("hours-per-week", Numeric, nil)
	country := mk("native-country", Categorical, censusCountry)

	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := 17 + rng.ExpFloat64()*14
		if a > 90 {
			a = 90
		}
		age.Values[i] = math.Floor(a)

		// education-num: 1–16, mode at HS-grad (9) / Some-college (10).
		e := int(math.Round(9.5 + 2.5*rng.NormFloat64()))
		if e < 1 {
			e = 1
		}
		if e > 16 {
			e = 16
		}
		eduNum.Values[i] = float64(e)
		education.Values[i] = float64(e - 1) // redundant encoding of the same fact

		workclass.Values[i] = float64(weightedPick(rng, []float64{0.70, 0.08, 0.04, 0.03, 0.07, 0.04, 0.02, 0.02}))
		fnlwgt.Values[i] = 12000 + rng.ExpFloat64()*178000
		m := weightedPick(rng, []float64{0.46, 0.14, 0.33, 0.03, 0.03, 0.009, 0.001})
		marital.Values[i] = float64(m)
		occ := rng.Intn(len(censusOccupation))
		// More-educated respondents skew to Exec-managerial/Prof-specialty.
		if e >= 13 && rng.Float64() < 0.5 {
			occ = 4 + rng.Intn(2)
		}
		occupation.Values[i] = float64(occ)
		s := weightedPick(rng, []float64{0.33, 0.67})
		sex.Values[i] = float64(s)
		rel := 3 // Not-in-family
		if m == 0 {
			if s == 1 {
				rel = 2 // Husband
			} else {
				rel = 0 // Wife
			}
		} else if a < 25 && rng.Float64() < 0.6 {
			rel = 1 // Own-child
		} else if rng.Float64() < 0.3 {
			rel = 5 // Unmarried
		}
		relationship.Values[i] = float64(rel)
		race.Values[i] = float64(weightedPick(rng, []float64{0.855, 0.031, 0.010, 0.008, 0.096}))
		country.Values[i] = float64(weightedPick(rng, []float64{0.90, 0.02, 0.006, 0.004, 0.004, 0.003, 0.003, 0.003, 0.002, 0.055}))

		var cg float64
		if rng.Float64() < 0.08 {
			cg = rng.ExpFloat64() * 12000
			if cg > 99999 {
				cg = 99999
			}
		}
		capGain.Values[i] = math.Floor(cg)
		var cl float64
		if rng.Float64() < 0.047 {
			cl = 1000 + rng.ExpFloat64()*800
		}
		capLoss.Values[i] = math.Floor(cl)
		h := 40 + 12*rng.NormFloat64()
		if h < 1 {
			h = 1
		}
		if h > 99 {
			h = 99
		}
		hours.Values[i] = math.Floor(h)

		// Logistic salary model: education dominates, age is concave,
		// marriage and capital gains lift, with a mild education×hours
		// interaction so GEF's single interaction term has signal.
		logit := -10.1 +
			0.38*float64(e) +
			0.105*a - 0.00105*(a-20)*(a-20) +
			0.030*h +
			2.6*forestSigmoid((cg-5000)/600) +
			1.15*b2f(m == 0) +
			0.35*b2f(s == 1) +
			0.45*b2f(occ == 4 || occ == 5) +
			0.004*float64(e)*(h-40)/10
		p := forestSigmoid(logit)
		if rng.Float64() < p {
			y[i] = 1
		}
	}

	t := &Table{Y: y, Task: Classification}
	for _, name := range order {
		t.Columns = append(t.Columns, *cols[name])
	}
	return t
}

// CensusTable generates the full-size simulated Census table (48,842 rows).
func CensusTable(seed int64) *Table { return CensusTableN(CensusRows, seed) }

// CensusN generates n rows of the simulated Census dataset with the
// paper's preprocessing applied: the redundant education column dropped
// and all categorical attributes one-hot encoded.
func CensusN(n int, seed int64) *Dataset {
	return CensusTableN(n, seed).Drop("education").OneHot()
}

func weightedPick(rng *rand.Rand, w []float64) int {
	var total float64
	for _, v := range w {
		total += v
	}
	t := rng.Float64() * total
	var acc float64
	for i, v := range w {
		acc += v
		if t < acc {
			return i
		}
	}
	return len(w) - 1
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
