package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// GPrimeDim is the dimensionality of the paper's synthetic function g′.
const GPrimeDim = 5

// GPrimeTrue evaluates the paper's noiseless generator function g′ (§4.1):
//
//	g′(x) = x₁ + sin(20x₂) + sigmoid₅₀(x₃−0.5)
//	      + (arctan(10x₄) − sin(10x₄))/2 + 2/(x₅+1)
//
// over x ∈ [0,1]⁵. Each additive component is bounded in roughly [−1, 2]
// so no single feature dominates.
func GPrimeTrue(x []float64) float64 {
	return GPrimeComponent(0, x[0]) +
		GPrimeComponent(1, x[1]) +
		GPrimeComponent(2, x[2]) +
		GPrimeComponent(3, x[3]) +
		GPrimeComponent(4, x[4])
}

// GPrimeComponent evaluates the j-th univariate generator of g′ at value v.
// Exposing the components individually lets the Fig. 4 experiment compare
// learned GAM splines against each true generator.
func GPrimeComponent(j int, v float64) float64 {
	switch j {
	case 0:
		return v
	case 1:
		return math.Sin(20 * v)
	case 2:
		e := math.Exp(50 * (v - 0.5))
		return e / (e + 1)
	case 3:
		return (math.Atan(10*v) - math.Sin(10*v)) / 2
	case 4:
		//lint:ignore naninput g′ components are defined on the unit interval; callers sample v ∈ [0,1], where v+1 ≥ 1
		return 2 / (v + 1)
	default:
		panic(fmt.Sprintf("dataset: g′ has no component %d", j))
	}
}

// HInteraction is the paper's pairwise interaction bump h(x_i, x_j):
//
//	h(a, b) = 2·exp(−((a−0.5)² + (b−0.5)²) / (2·√(2π)))
//
// a radially symmetric bump centred at (0.5, 0.5).
func HInteraction(a, b float64) float64 {
	d := (a-0.5)*(a-0.5) + (b-0.5)*(b-0.5)
	return 2 * math.Exp(-1/math.Sqrt(2*math.Pi)*d/2)
}

// GDoublePrimeTrue evaluates g″_Π(x) = g′(x) + Σ_{(i,j)∈Π} h(x_i, x_j)
// for the given interaction pairs (feature indices, 0-based).
func GDoublePrimeTrue(x []float64, pairs [][2]int) float64 {
	y := GPrimeTrue(x)
	for _, p := range pairs {
		y += HInteraction(x[p[0]], x[p[1]])
	}
	return y
}

// GPrime samples n instances uniformly from [0,1]⁵ labelled with
// g′(x) + ε, ε ~ N(0, noiseSD²). The paper uses n = 10,000 and
// noiseSD = 0.1.
func GPrime(n int, noiseSD float64, seed int64) *Dataset {
	return synthSample(n, noiseSD, seed, func(x []float64) float64 { return GPrimeTrue(x) })
}

// GDoublePrime samples n instances labelled with g″_Π(x) + ε for the given
// interaction pairs.
func GDoublePrime(n int, noiseSD float64, seed int64, pairs [][2]int) *Dataset {
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= GPrimeDim || p[1] < 0 || p[1] >= GPrimeDim || p[0] == p[1] {
			panic(fmt.Sprintf("dataset: invalid interaction pair %v", p))
		}
	}
	return synthSample(n, noiseSD, seed, func(x []float64) float64 { return GDoublePrimeTrue(x, pairs) })
}

func synthSample(n int, noiseSD float64, seed int64, f func([]float64) float64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		X:            make([][]float64, n),
		Y:            make([]float64, n),
		FeatureNames: []string{"x1", "x2", "x3", "x4", "x5"},
		Task:         Regression,
	}
	for i := 0; i < n; i++ {
		x := make([]float64, GPrimeDim)
		for j := range x {
			x[j] = rng.Float64()
		}
		d.X[i] = x
		d.Y[i] = f(x) + noiseSD*rng.NormFloat64()
	}
	return d
}

// AllInteractionPairs returns all C(d,2) unordered feature pairs over d
// features, in lexicographic order. For g′ (d = 5) this is the paper's 10
// candidate interactions.
func AllInteractionPairs(d int) [][2]int {
	var out [][2]int
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// AllInteractionTriples returns all C(len(pairs), 3) sets of three distinct
// pairs — the paper's 120 interaction configurations Π for g″.
func AllInteractionTriples(pairs [][2]int) [][3][2]int {
	var out [][3][2]int
	for i := 0; i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			for k := j + 1; k < len(pairs); k++ {
				out = append(out, [3][2]int{pairs[i], pairs[j], pairs[k]})
			}
		}
	}
	return out
}

// SigmoidToy samples n instances of the single-feature sigmoid function
// used in Fig. 3: y = exp(50(x−0.5)) / (exp(50(x−0.5)) + 1) + ε.
func SigmoidToy(n int, noiseSD float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		X:            make([][]float64, n),
		Y:            make([]float64, n),
		FeatureNames: []string{"x"},
		Task:         Regression,
	}
	for i := 0; i < n; i++ {
		x := rng.Float64()
		e := math.Exp(50 * (x - 0.5))
		d.X[i] = []float64{x}
		d.Y[i] = e/(e+1) + noiseSD*rng.NormFloat64()
	}
	return d
}

// Fig2Toy samples the two-feature additive toy of Fig. 2:
// y = x₁ + sin(2π·x₂) + ε over [0,1]², a linear plus a sinusoidal
// component.
func Fig2Toy(n int, noiseSD float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		X:            make([][]float64, n),
		Y:            make([]float64, n),
		FeatureNames: []string{"x1", "x2"},
		Task:         Regression,
	}
	for i := 0; i < n; i++ {
		x1, x2 := rng.Float64(), rng.Float64()
		d.X[i] = []float64{x1, x2}
		d.Y[i] = x1 + math.Sin(2*math.Pi*x2) + noiseSD*rng.NormFloat64()
	}
	return d
}
