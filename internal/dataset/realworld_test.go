package dataset

import (
	"math"
	"strings"
	"testing"

	"gef/internal/stats"
)

func TestSuperconductivityFeatureNames(t *testing.T) {
	names := SuperconductivityFeatureNames()
	if len(names) != 81 {
		t.Fatalf("got %d names, want 81", len(names))
	}
	if names[0] != "number_of_elements" {
		t.Errorf("first feature = %q", names[0])
	}
	found := false
	for _, n := range names {
		if n == "wtd_entropy_atomic_mass" {
			found = true
		}
	}
	if !found {
		t.Error("WEAM feature missing")
	}
}

func TestSuperconductivityShape(t *testing.T) {
	d := SuperconductivityN(300, 1)
	if d.NumRows() != 300 || d.NumFeatures() != 81 {
		t.Fatalf("shape %d×%d, want 300×81", d.NumRows(), d.NumFeatures())
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Critical temperatures are non-negative and non-constant.
	for _, y := range d.Y {
		if y < 0 {
			t.Fatalf("negative critical temperature %v", y)
		}
	}
	if stats.StdDev(d.Y) < 1 {
		t.Error("target variance suspiciously low")
	}
}

func TestSuperconductivityWEAMJump(t *testing.T) {
	// The WEAM driver must produce a sharp drop across 1.1: mean target
	// below 1.0 should clearly exceed mean target above 1.2.
	d := SuperconductivityN(4000, 2)
	weam := -1
	for i, n := range d.FeatureNames {
		if n == "wtd_entropy_atomic_mass" {
			weam = i
		}
	}
	if weam < 0 {
		t.Fatal("WEAM not found")
	}
	var lo, hi []float64
	for i, row := range d.X {
		switch {
		case row[weam] < 1.0:
			lo = append(lo, d.Y[i])
		case row[weam] > 1.2:
			hi = append(hi, d.Y[i])
		}
	}
	if len(lo) < 100 || len(hi) < 100 {
		t.Fatalf("insufficient coverage: %d low, %d high", len(lo), len(hi))
	}
	if stats.Mean(lo)-stats.Mean(hi) < 20 {
		t.Errorf("WEAM jump too small: low-side mean %v, high-side mean %v",
			stats.Mean(lo), stats.Mean(hi))
	}
}

func TestSuperconductivityDeterministic(t *testing.T) {
	a := SuperconductivityN(50, 9)
	b := SuperconductivityN(50, 9)
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same-seed generation differs")
		}
	}
}

func TestCensusTableSchema(t *testing.T) {
	tab := CensusTableN(200, 1)
	if err := tab.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(tab.Columns) != 14 {
		t.Fatalf("got %d columns, want 14", len(tab.Columns))
	}
	byName := map[string]*TableColumn{}
	for i := range tab.Columns {
		byName[tab.Columns[i].Name] = &tab.Columns[i]
	}
	for _, want := range []string{"age", "education", "education-num", "race", "sex", "native-country"} {
		if byName[want] == nil {
			t.Errorf("missing column %q", want)
		}
	}
	if byName["sex"].Kind != Categorical || len(byName["sex"].Levels) != 2 {
		t.Error("sex should be categorical with 2 levels")
	}
	if byName["age"].Kind != Numeric {
		t.Error("age should be numeric")
	}
}

func TestCensusEducationRedundancy(t *testing.T) {
	// education (categorical) and education-num (numeric) must encode the
	// same fact, as in the real Adult dataset.
	tab := CensusTableN(100, 2)
	var edu, eduNum *TableColumn
	for i := range tab.Columns {
		switch tab.Columns[i].Name {
		case "education":
			edu = &tab.Columns[i]
		case "education-num":
			eduNum = &tab.Columns[i]
		}
	}
	for i := 0; i < tab.NumRows(); i++ {
		if edu.Values[i] != eduNum.Values[i]-1 {
			t.Fatalf("row %d: education=%v but education-num=%v", i, edu.Values[i], eduNum.Values[i])
		}
	}
}

func TestCensusPositiveRate(t *testing.T) {
	tab := CensusTableN(8000, 3)
	rate := stats.Mean(tab.Y)
	if rate < 0.12 || rate > 0.40 {
		t.Errorf("positive rate %v outside plausible Adult range [0.12, 0.40]", rate)
	}
}

func TestCensusEducationMonotone(t *testing.T) {
	// The paper's Fig. 10 reads EducationNum as positively correlated with
	// salary: positive rate among highly educated should far exceed that
	// of the less educated.
	tab := CensusTableN(12000, 4)
	var eduNum *TableColumn
	for i := range tab.Columns {
		if tab.Columns[i].Name == "education-num" {
			eduNum = &tab.Columns[i]
		}
	}
	var loPos, loN, hiPos, hiN float64
	for i := 0; i < tab.NumRows(); i++ {
		if eduNum.Values[i] <= 8 {
			loPos += tab.Y[i]
			loN++
		} else if eduNum.Values[i] >= 13 {
			hiPos += tab.Y[i]
			hiN++
		}
	}
	if loN == 0 || hiN == 0 {
		t.Fatal("degenerate education distribution")
	}
	if hiPos/hiN <= loPos/loN+0.1 {
		t.Errorf("education effect too weak: low %.3f, high %.3f", loPos/loN, hiPos/hiN)
	}
}

func TestCensusOneHot(t *testing.T) {
	d := CensusN(100, 5)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// education dropped; education-num retained.
	for _, n := range d.FeatureNames {
		if strings.HasPrefix(n, "education=") {
			t.Errorf("education should have been dropped, found %q", n)
		}
	}
	hasEduNum := false
	hasSexMale := false
	for _, n := range d.FeatureNames {
		if n == "education-num" {
			hasEduNum = true
		}
		if n == "sex=Male" {
			hasSexMale = true
		}
	}
	if !hasEduNum || !hasSexMale {
		t.Errorf("expected education-num and sex=Male in %d features", d.NumFeatures())
	}
	// One-hot columns are 0/1 and exactly one level fires per source col.
	sexF, sexM := -1, -1
	for j, n := range d.FeatureNames {
		if n == "sex=Female" {
			sexF = j
		}
		if n == "sex=Male" {
			sexM = j
		}
	}
	for _, row := range d.X {
		if row[sexF]+row[sexM] != 1 {
			t.Fatal("one-hot sex does not sum to 1")
		}
	}
}

func TestTableDrop(t *testing.T) {
	tab := CensusTableN(10, 1)
	dropped := tab.Drop("education", "race")
	if len(dropped.Columns) != 12 {
		t.Errorf("got %d columns after drop, want 12", len(dropped.Columns))
	}
	for _, c := range dropped.Columns {
		if c.Name == "education" || c.Name == "race" {
			t.Errorf("column %q not dropped", c.Name)
		}
	}
}

func TestTableValidateRejects(t *testing.T) {
	tab := CensusTableN(10, 1)
	tab.Columns[0].Values = tab.Columns[0].Values[:5]
	if err := tab.Validate(); err == nil {
		t.Error("accepted ragged table")
	}
	tab2 := CensusTableN(10, 1)
	tab2.Columns[1].Values[0] = 99 // invalid level
	if err := tab2.Validate(); err == nil {
		t.Error("accepted invalid level index")
	}
}

func TestWeightedPick(t *testing.T) {
	rng := newTestRand()
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[weightedPick(rng, []float64{0.5, 0.3, 0.2})]++
	}
	for i, want := range []float64{0.5, 0.3, 0.2} {
		got := float64(counts[i]) / 30000
		if math.Abs(got-want) > 0.02 {
			t.Errorf("level %d frequency %v, want ≈ %v", i, got, want)
		}
	}
}
