package dataset

import (
	"fmt"
)

// ColumnKind distinguishes numeric from categorical table columns.
type ColumnKind int

const (
	// Numeric columns hold real values.
	Numeric ColumnKind = iota
	// Categorical columns hold level indices into Levels.
	Categorical
)

// TableColumn is one column of a mixed-type table.
type TableColumn struct {
	Name   string
	Kind   ColumnKind
	Values []float64 // numeric values, or level indices for categorical
	Levels []string  // level names, categorical only
}

// Table is a mixed numeric/categorical dataset prior to encoding, used to
// model the Census dataset's raw form (the paper one-hot encodes the
// categorical attributes before training).
type Table struct {
	Columns []TableColumn
	Y       []float64
	Task    Task
}

// NumRows returns the number of rows in the table.
func (t *Table) NumRows() int { return len(t.Y) }

// Validate checks that all columns have the same length as Y and that
// categorical level indices are in range.
func (t *Table) Validate() error {
	n := len(t.Y)
	for _, c := range t.Columns {
		if len(c.Values) != n {
			return fmt.Errorf("table: column %q has %d rows, want %d", c.Name, len(c.Values), n)
		}
		if c.Kind == Categorical {
			if len(c.Levels) == 0 {
				return fmt.Errorf("table: categorical column %q has no levels", c.Name)
			}
			for i, v := range c.Values {
				idx := int(v)
				//lint:ignore floatcmp integrality check: level codes must round-trip through int exactly
				if float64(idx) != v || idx < 0 || idx >= len(c.Levels) {
					return fmt.Errorf("table: column %q row %d has invalid level %v", c.Name, i, v)
				}
			}
		}
	}
	return nil
}

// Drop returns a copy of the table without the named columns (the paper
// drops the redundant education column from Census).
func (t *Table) Drop(names ...string) *Table {
	skip := make(map[string]bool, len(names))
	for _, n := range names {
		skip[n] = true
	}
	out := &Table{Y: t.Y, Task: t.Task}
	for _, c := range t.Columns {
		if !skip[c.Name] {
			out.Columns = append(out.Columns, c)
		}
	}
	return out
}

// OneHot expands categorical columns into 0/1 indicator features (one per
// level, named "col=level") and passes numeric columns through, returning
// a dense Dataset.
func (t *Table) OneHot() *Dataset {
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("dataset: OneHot on invalid table: %v", err))
	}
	n := t.NumRows()
	var names []string
	type colSpec struct {
		src   int // index into t.Columns
		level int // level index, -1 for numeric pass-through
	}
	var specs []colSpec
	for ci, c := range t.Columns {
		if c.Kind == Numeric {
			names = append(names, c.Name)
			specs = append(specs, colSpec{src: ci, level: -1})
			continue
		}
		for li, lv := range c.Levels {
			names = append(names, c.Name+"="+lv)
			specs = append(specs, colSpec{src: ci, level: li})
		}
	}
	d := &Dataset{
		X:            make([][]float64, n),
		Y:            append([]float64(nil), t.Y...),
		FeatureNames: names,
		Task:         t.Task,
	}
	for i := 0; i < n; i++ {
		row := make([]float64, len(specs))
		for j, s := range specs {
			v := t.Columns[s.src].Values[i]
			if s.level < 0 {
				row[j] = v
			} else if int(v) == s.level {
				row[j] = 1
			}
		}
		d.X[i] = row
	}
	return d
}
