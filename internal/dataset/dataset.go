// Package dataset provides the tabular dataset model used throughout GEF,
// deterministic train/test splitting and cross-validation folds, CSV
// import/export, and the data generators for all the paper's experiments:
// the synthetic functions g′ and g″_Π of §4.1, the toy examples behind
// Figs. 2–3, and offline statistical simulators standing in for the
// Superconductivity and Census datasets of §5.1 (see DESIGN.md,
// "Substitutions").
package dataset

import (
	"fmt"
	"math/rand"
)

// Task describes the prediction task a dataset is labelled for.
type Task string

const (
	// Regression marks continuous targets.
	Regression Task = "regression"
	// Classification marks binary targets in {0, 1}.
	Classification Task = "classification"
)

// Dataset is a dense numeric design matrix with targets. Categorical
// source columns are expected to be one-hot encoded before reaching this
// type (see Table.OneHot).
type Dataset struct {
	X            [][]float64
	Y            []float64
	FeatureNames []string
	Task         Task
}

// NumRows returns the number of instances.
func (d *Dataset) NumRows() int { return len(d.X) }

// NumFeatures returns the number of columns (0 for an empty dataset).
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return len(d.FeatureNames)
	}
	return len(d.X[0])
}

// Validate checks shape invariants: rectangular X, matching Y length,
// and matching FeatureNames length when names are present.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("dataset: %d rows but %d targets", len(d.X), len(d.Y))
	}
	w := d.NumFeatures()
	for i, row := range d.X {
		if len(row) != w {
			return fmt.Errorf("dataset: row %d has %d features, want %d", i, len(row), w)
		}
	}
	if len(d.FeatureNames) != 0 && len(d.FeatureNames) != w {
		return fmt.Errorf("dataset: %d feature names for %d features", len(d.FeatureNames), w)
	}
	if d.Task != Regression && d.Task != Classification {
		return fmt.Errorf("dataset: unknown task %q", d.Task)
	}
	return nil
}

// Subset returns a new dataset containing the rows at the given indices.
// Rows are shared, not copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		X:            make([][]float64, len(idx)),
		Y:            make([]float64, len(idx)),
		FeatureNames: d.FeatureNames,
		Task:         d.Task,
	}
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out
}

// Split partitions the dataset into train and test subsets, with testFrac
// of rows (rounded down, at least 1 when possible) assigned to test after
// a deterministic shuffle driven by seed.
func (d *Dataset) Split(testFrac float64, seed int64) (train, test *Dataset) {
	if testFrac < 0 || testFrac > 1 {
		panic(fmt.Sprintf("dataset: testFrac %v out of [0,1]", testFrac))
	}
	n := d.NumRows()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	nTest := int(float64(n) * testFrac)
	if nTest == 0 && testFrac > 0 && n > 1 {
		nTest = 1
	}
	return d.Subset(perm[nTest:]), d.Subset(perm[:nTest])
}

// KFold returns k disjoint index folds covering [0, n) after a
// deterministic shuffle. Fold sizes differ by at most one.
func KFold(n, k int, seed int64) [][]int {
	if k <= 0 || k > n {
		panic(fmt.Sprintf("dataset: invalid k=%d for n=%d", k, n))
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	return folds
}

// FoldSplit returns the train/test index sets for fold i of the given
// folds (test = folds[i], train = all others).
func FoldSplit(folds [][]int, i int) (train, test []int) {
	test = folds[i]
	for j, f := range folds {
		if j != i {
			train = append(train, f...)
		}
	}
	return train, test
}

// Column returns a copy of column j.
func (d *Dataset) Column(j int) []float64 {
	out := make([]float64, len(d.X))
	for i, row := range d.X {
		out[i] = row[j]
	}
	return out
}
