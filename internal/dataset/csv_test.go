package dataset

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(123)) }

func TestCSVRoundTrip(t *testing.T) {
	d := tinyDataset()
	var buf bytes.Buffer
	if err := WriteCSV(d, &buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, Regression)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.NumRows() != d.NumRows() || got.NumFeatures() != d.NumFeatures() {
		t.Fatalf("shape changed: %d×%d", got.NumRows(), got.NumFeatures())
	}
	for i := range d.Y {
		if got.Y[i] != d.Y[i] {
			t.Errorf("Y[%d] = %v, want %v", i, got.Y[i], d.Y[i])
		}
		for j := range d.X[i] {
			if got.X[i][j] != d.X[i][j] {
				t.Errorf("X[%d][%d] = %v, want %v", i, j, got.X[i][j], d.X[i][j])
			}
		}
	}
	if got.FeatureNames[0] != "a" || got.FeatureNames[1] != "b" {
		t.Errorf("names = %v", got.FeatureNames)
	}
}

func TestCSVExactFloats(t *testing.T) {
	// Full float64 precision must survive the text round trip.
	d := &Dataset{
		X:    [][]float64{{1.0 / 3.0}},
		Y:    []float64{2.0 / 7.0},
		Task: Regression,
	}
	var buf bytes.Buffer
	if err := WriteCSV(d, &buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, Regression)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.X[0][0] != d.X[0][0] || got.Y[0] != d.Y[0] {
		t.Error("precision lost in CSV round trip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct{ name, body string }{
		{"one column", "only\n1\n"},
		{"bad float", "a,target\nxx,1\n"},
		{"bad target", "a,target\n1,yy\n"},
		{"short row", "a,b,target\n1,2\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.body), Regression); err == nil {
			t.Errorf("%s: ReadCSV accepted malformed input", c.name)
		}
	}
}

func TestWriteCSVRejectsInvalid(t *testing.T) {
	d := tinyDataset()
	d.Y = d.Y[:2]
	var buf bytes.Buffer
	if err := WriteCSV(d, &buf); err == nil {
		t.Error("WriteCSV accepted invalid dataset")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	d := GPrime(30, 0.1, 6)
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := SaveCSVFile(d, path); err != nil {
		t.Fatalf("SaveCSVFile: %v", err)
	}
	got, err := LoadCSVFile(path, Regression)
	if err != nil {
		t.Fatalf("LoadCSVFile: %v", err)
	}
	if got.NumRows() != 30 {
		t.Errorf("rows = %d, want 30", got.NumRows())
	}
}

func TestLoadCSVFileMissing(t *testing.T) {
	if _, err := LoadCSVFile(filepath.Join(t.TempDir(), "no.csv"), Regression); err == nil {
		t.Error("LoadCSVFile accepted missing file")
	}
}
