package dataset

import (
	"math"
	"testing"
)

func tinyDataset() *Dataset {
	return &Dataset{
		X:            [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}},
		Y:            []float64{1, 2, 3, 4, 5},
		FeatureNames: []string{"a", "b"},
		Task:         Regression,
	}
}

func TestDatasetShape(t *testing.T) {
	d := tinyDataset()
	if d.NumRows() != 5 || d.NumFeatures() != 2 {
		t.Errorf("shape %d×%d, want 5×2", d.NumRows(), d.NumFeatures())
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(d *Dataset)
	}{
		{"length mismatch", func(d *Dataset) { d.Y = d.Y[:3] }},
		{"ragged", func(d *Dataset) { d.X[2] = []float64{1} }},
		{"bad names", func(d *Dataset) { d.FeatureNames = []string{"a"} }},
		{"bad task", func(d *Dataset) { d.Task = "clustering" }},
	}
	for _, c := range cases {
		d := tinyDataset()
		c.mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: accepted invalid dataset", c.name)
		}
	}
}

func TestSubset(t *testing.T) {
	d := tinyDataset()
	s := d.Subset([]int{4, 0})
	if s.NumRows() != 2 || s.Y[0] != 5 || s.Y[1] != 1 {
		t.Errorf("Subset rows wrong: %+v", s.Y)
	}
	if s.X[0][0] != 9 {
		t.Errorf("Subset X wrong: %v", s.X[0])
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	d := GPrime(100, 0.1, 1)
	train, test := d.Split(0.2, 7)
	if train.NumRows()+test.NumRows() != 100 {
		t.Fatalf("split sizes %d+%d != 100", train.NumRows(), test.NumRows())
	}
	if test.NumRows() != 20 {
		t.Errorf("test size %d, want 20", test.NumRows())
	}
	// Disjointness: row pointers must not repeat.
	seen := map[*float64]bool{}
	for _, r := range train.X {
		seen[&r[0]] = true
	}
	for _, r := range test.X {
		if seen[&r[0]] {
			t.Fatal("train and test share a row")
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	d := GPrime(50, 0.1, 1)
	_, t1 := d.Split(0.3, 99)
	_, t2 := d.Split(0.3, 99)
	for i := range t1.Y {
		if t1.Y[i] != t2.Y[i] {
			t.Fatal("same-seed splits differ")
		}
	}
}

func TestSplitTinyFraction(t *testing.T) {
	d := tinyDataset()
	_, test := d.Split(0.01, 1)
	if test.NumRows() != 1 {
		t.Errorf("tiny fraction should still yield 1 test row, got %d", test.NumRows())
	}
}

func TestSplitBadFracPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tinyDataset().Split(1.5, 1)
}

func TestKFoldPartition(t *testing.T) {
	folds := KFold(10, 3, 5)
	if len(folds) != 3 {
		t.Fatalf("got %d folds, want 3", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("folds cover %d indices, want 10", len(seen))
	}
	// Sizes differ by at most 1.
	for _, f := range folds {
		if len(f) < 3 || len(f) > 4 {
			t.Errorf("fold size %d out of balance", len(f))
		}
	}
}

func TestKFoldInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KFold(3, 5, 1)
}

func TestFoldSplit(t *testing.T) {
	folds := [][]int{{0, 1}, {2, 3}, {4}}
	train, test := FoldSplit(folds, 1)
	if len(test) != 2 || test[0] != 2 {
		t.Errorf("test = %v", test)
	}
	if len(train) != 3 {
		t.Errorf("train = %v", train)
	}
}

func TestColumn(t *testing.T) {
	d := tinyDataset()
	col := d.Column(1)
	want := []float64{2, 4, 6, 8, 10}
	for i := range want {
		if col[i] != want[i] {
			t.Errorf("Column(1)[%d] = %v, want %v", i, col[i], want[i])
		}
	}
}

func TestGPrimeShapeAndRange(t *testing.T) {
	d := GPrime(500, 0.1, 3)
	if d.NumRows() != 500 || d.NumFeatures() != 5 {
		t.Fatalf("shape %d×%d", d.NumRows(), d.NumFeatures())
	}
	for _, row := range d.X {
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("feature value %v outside [0,1]", v)
			}
		}
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestGPrimeTrueMatchesComponents(t *testing.T) {
	x := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	var want float64
	for j, v := range x {
		want += GPrimeComponent(j, v)
	}
	if got := GPrimeTrue(x); math.Abs(got-want) > 1e-12 {
		t.Errorf("GPrimeTrue = %v, want %v", got, want)
	}
}

func TestGPrimeComponentValues(t *testing.T) {
	// Component 0 is the identity.
	if got := GPrimeComponent(0, 0.37); got != 0.37 {
		t.Errorf("component 0 = %v", got)
	}
	// Component 2 is a sigmoid: 0.5 at x=0.5, ≈0/1 at extremes.
	if got := GPrimeComponent(2, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("sigmoid(0.5) = %v, want 0.5", got)
	}
	if got := GPrimeComponent(2, 0); got > 1e-9 {
		t.Errorf("sigmoid(0) = %v, want ≈0", got)
	}
	if got := GPrimeComponent(2, 1); got < 1-1e-9 {
		t.Errorf("sigmoid(1) = %v, want ≈1", got)
	}
	// Component 4 is 2/(x+1): 2 at 0, 1 at 1.
	if got := GPrimeComponent(4, 0); got != 2 {
		t.Errorf("2/(x+1) at 0 = %v", got)
	}
	if got := GPrimeComponent(4, 1); got != 1 {
		t.Errorf("2/(x+1) at 1 = %v", got)
	}
}

func TestGPrimeComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GPrimeComponent(5, 0.5)
}

func TestHInteractionPeakAtCenter(t *testing.T) {
	center := HInteraction(0.5, 0.5)
	if center != 2 {
		t.Errorf("h(0.5,0.5) = %v, want 2", center)
	}
	if HInteraction(0, 0) >= center {
		t.Error("h should peak at the center")
	}
	// Radial symmetry.
	if math.Abs(HInteraction(0.2, 0.5)-HInteraction(0.8, 0.5)) > 1e-12 {
		t.Error("h should be symmetric about 0.5")
	}
	if math.Abs(HInteraction(0.3, 0.7)-HInteraction(0.7, 0.3)) > 1e-12 {
		t.Error("h should be exchangeable in its arguments")
	}
}

func TestGDoublePrimeAddsInteractions(t *testing.T) {
	x := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	base := GPrimeTrue(x)
	withPairs := GDoublePrimeTrue(x, [][2]int{{0, 1}, {2, 3}})
	want := base + 2*HInteraction(0.5, 0.5)
	if math.Abs(withPairs-want) > 1e-12 {
		t.Errorf("g'' = %v, want %v", withPairs, want)
	}
}

func TestGDoublePrimeInvalidPairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GDoublePrime(10, 0.1, 1, [][2]int{{0, 7}})
}

func TestGPrimeDeterministic(t *testing.T) {
	a := GPrime(20, 0.1, 42)
	b := GPrime(20, 0.1, 42)
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same-seed generation differs")
		}
	}
	c := GPrime(20, 0.1, 43)
	same := true
	for i := range a.Y {
		if a.Y[i] != c.Y[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestAllInteractionPairs(t *testing.T) {
	pairs := AllInteractionPairs(5)
	if len(pairs) != 10 {
		t.Fatalf("C(5,2) = %d, want 10", len(pairs))
	}
	if pairs[0] != [2]int{0, 1} || pairs[9] != [2]int{3, 4} {
		t.Errorf("pair order unexpected: %v", pairs)
	}
}

func TestAllInteractionTriples(t *testing.T) {
	triples := AllInteractionTriples(AllInteractionPairs(5))
	if len(triples) != 120 {
		t.Fatalf("C(10,3) = %d, want 120 (the paper's configuration count)", len(triples))
	}
	// All triples distinct.
	seen := map[[3][2]int]bool{}
	for _, tr := range triples {
		if seen[tr] {
			t.Fatalf("duplicate triple %v", tr)
		}
		seen[tr] = true
	}
}

func TestSigmoidToy(t *testing.T) {
	d := SigmoidToy(100, 0, 1)
	if d.NumFeatures() != 1 {
		t.Fatalf("features = %d, want 1", d.NumFeatures())
	}
	for i, row := range d.X {
		x := row[0]
		e := math.Exp(50 * (x - 0.5))
		if math.Abs(d.Y[i]-e/(e+1)) > 1e-12 {
			t.Fatalf("noiseless sigmoid label mismatch at %v", x)
		}
	}
}

func TestFig2Toy(t *testing.T) {
	d := Fig2Toy(50, 0, 2)
	for i, row := range d.X {
		want := row[0] + math.Sin(2*math.Pi*row[1])
		if math.Abs(d.Y[i]-want) > 1e-12 {
			t.Fatalf("fig2 label mismatch at row %d", i)
		}
	}
}
