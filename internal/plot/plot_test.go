package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasicLine(t *testing.T) {
	out := Render([]Line{{
		X:    []float64{0, 1, 2},
		Y:    []float64{0, 1, 2},
		Name: "diag",
		Mark: '*',
	}}, Options{Title: "test chart", Width: 20, Height: 5})
	if !strings.Contains(out, "test chart") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* diag") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("marks missing")
	}
	// An increasing line puts a mark in the top row and the bottom row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") { // first grid row (after title)
		t.Error("no mark in the top row for the max value")
	}
	if !strings.Contains(lines[5], "*") { // last grid row
		t.Error("no mark in the bottom row for the min value")
	}
}

func TestRenderAxisLabels(t *testing.T) {
	out := Render([]Line{{X: []float64{-3, 7}, Y: []float64{2, 12}}}, Options{Width: 30, Height: 4})
	if !strings.Contains(out, "12") || !strings.Contains(out, "2") {
		t.Errorf("y-axis labels missing:\n%s", out)
	}
	if !strings.Contains(out, "-3") || !strings.Contains(out, "7") {
		t.Errorf("x-axis labels missing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := Render(nil, Options{}); !strings.Contains(out, "no data") {
		t.Errorf("empty render = %q", out)
	}
	out := Render([]Line{{X: []float64{math.NaN()}, Y: []float64{math.NaN()}}}, Options{})
	if !strings.Contains(out, "no finite data") {
		t.Errorf("NaN render = %q", out)
	}
}

func TestRenderSkipsNonFinite(t *testing.T) {
	out := Render([]Line{{
		X: []float64{0, 1, 2},
		Y: []float64{0, math.Inf(1), 2},
	}}, Options{Width: 10, Height: 4})
	if strings.Contains(out, "+Inf") {
		t.Error("infinite value leaked into output")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out := Render([]Line{{X: []float64{1, 1}, Y: []float64{5, 5}}}, Options{Width: 10, Height: 3})
	if !strings.Contains(out, "*") {
		t.Errorf("constant series lost:\n%s", out)
	}
}

func TestRenderMultipleLinesDistinctMarks(t *testing.T) {
	out := Render([]Line{
		{X: []float64{0, 1}, Y: []float64{0, 1}, Name: "a"},
		{X: []float64{0, 1}, Y: []float64{1, 0}, Name: "b"},
	}, Options{Width: 16, Height: 4})
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Errorf("default marks not assigned:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"up", "down"}, []float64{1.5, -0.75}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "+1.5000") || !strings.Contains(lines[1], "-0.7500") {
		t.Errorf("values missing:\n%s", out)
	}
	// Positive bar extends right of the pivot, negative left.
	pivot0 := strings.Index(lines[0], "|")
	if !strings.Contains(lines[0][pivot0:], "#") {
		t.Error("positive bar should extend right")
	}
	pivot1 := strings.Index(lines[1], "|")
	if !strings.Contains(lines[1][:pivot1], "#") {
		t.Error("negative bar should extend left")
	}
	// The longer magnitude gets the longer bar.
	if strings.Count(lines[0], "#") <= strings.Count(lines[1], "#") {
		t.Error("bar lengths should scale with magnitude")
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars([]string{"z"}, []float64{0}, 10)
	if !strings.Contains(out, "+0.0000") {
		t.Errorf("zero bar broken: %q", out)
	}
}

func TestBarsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bars([]string{"a"}, []float64{1, 2}, 10)
}
