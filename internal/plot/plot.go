// Package plot renders small ASCII line charts for terminal inspection of
// GAM splines, confidence bands and threshold densities — the terminal
// analogue of the paper's matplotlib figures.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Options controls chart geometry.
type Options struct {
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	Title  string
}

func (o Options) withDefaults() Options {
	if o.Width == 0 {
		o.Width = 64
	}
	if o.Height == 0 {
		o.Height = 16
	}
	return o
}

// Line is one named series.
type Line struct {
	X, Y []float64
	Mark byte // glyph; 0 defaults per-line to '*', '+', 'o', '.'
	Name string
}

var defaultMarks = []byte{'*', '+', 'o', '.', 'x', '#'}

// Render draws the lines into a shared-axes ASCII chart.
func Render(lines []Line, opt Options) string {
	opt = opt.withDefaults()
	if len(lines) == 0 {
		return "(no data)\n"
	}
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, l := range lines {
		for i := range l.X {
			if !isFinite(l.X[i]) || !isFinite(l.Y[i]) {
				continue
			}
			xlo, xhi = math.Min(xlo, l.X[i]), math.Max(xhi, l.X[i])
			ylo, yhi = math.Min(ylo, l.Y[i]), math.Max(yhi, l.Y[i])
		}
	}
	if !isFinite(xlo) || !isFinite(ylo) {
		return "(no finite data)\n"
	}
	//lint:ignore floatcmp degenerate-range guard: only an exactly collapsed axis needs widening
	if xhi == xlo {
		xhi = xlo + 1
	}
	//lint:ignore floatcmp degenerate-range guard: only an exactly collapsed axis needs widening
	if yhi == ylo {
		yhi = ylo + 1
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for li, l := range lines {
		mark := l.Mark
		if mark == 0 {
			mark = defaultMarks[li%len(defaultMarks)]
		}
		for i := range l.X {
			if !isFinite(l.X[i]) || !isFinite(l.Y[i]) {
				continue
			}
			c := int(math.Round((l.X[i] - xlo) / (xhi - xlo) * float64(opt.Width-1)))
			r := opt.Height - 1 - int(math.Round((l.Y[i]-ylo)/(yhi-ylo)*float64(opt.Height-1)))
			if c >= 0 && c < opt.Width && r >= 0 && r < opt.Height {
				grid[r][c] = mark
			}
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		b.WriteString(opt.Title + "\n")
	}
	yLabelW := 10
	for r, row := range grid {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%9.3g", yhi)
		case opt.Height - 1:
			label = fmt.Sprintf("%9.3g", ylo)
		default:
			label = strings.Repeat(" ", 9)
		}
		b.WriteString(label + " |" + string(row) + "\n")
	}
	b.WriteString(strings.Repeat(" ", yLabelW) + "+" + strings.Repeat("-", opt.Width) + "\n")
	xAxis := fmt.Sprintf("%-*.3g%*.3g", opt.Width/2, xlo, opt.Width/2, xhi)
	b.WriteString(strings.Repeat(" ", yLabelW+1) + xAxis + "\n")
	var legend []string
	for li, l := range lines {
		if l.Name == "" {
			continue
		}
		mark := l.Mark
		if mark == 0 {
			mark = defaultMarks[li%len(defaultMarks)]
		}
		legend = append(legend, fmt.Sprintf("%c %s", mark, l.Name))
	}
	if len(legend) > 0 {
		b.WriteString(strings.Repeat(" ", yLabelW+1) + strings.Join(legend, "   ") + "\n")
	}
	return b.String()
}

// Bars renders a labelled horizontal bar chart (for local-explanation
// contribution views, Fig. 11/12 style).
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("plot: labels/values length mismatch")
	}
	if width == 0 {
		width = 40
	}
	var maxAbs float64
	labelW := 0
	for i, v := range values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	half := width / 2
	var b strings.Builder
	for i, v := range values {
		n := int(math.Round(math.Abs(v) / maxAbs * float64(half)))
		var bar string
		if v >= 0 {
			bar = strings.Repeat(" ", half) + "|" + strings.Repeat("#", n) + strings.Repeat(" ", half-n)
		} else {
			bar = strings.Repeat(" ", half-n) + strings.Repeat("#", n) + "|" + strings.Repeat(" ", half)
		}
		fmt.Fprintf(&b, "%-*s %s %+.4f\n", labelW, labels[i], bar, v)
	}
	return b.String()
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
