package gam

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBSplinePartitionOfUnity(t *testing.T) {
	bs, err := newBSpline(10, 0, 1)
	if err != nil {
		t.Fatalf("newBSpline: %v", err)
	}
	vals := make([]float64, degree+1)
	for x := 0.0; x <= 1.0001; x += 0.01 {
		xx := math.Min(x, 1)
		bs.evaluate(xx, vals)
		var s float64
		for _, v := range vals {
			if v < -1e-12 {
				t.Fatalf("negative basis value %v at x=%v", v, xx)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-10 {
			t.Fatalf("basis sum = %v at x=%v, want 1", s, xx)
		}
	}
}

func TestBSplineActiveRange(t *testing.T) {
	bs, err := newBSpline(8, -2, 3)
	if err != nil {
		t.Fatalf("newBSpline: %v", err)
	}
	vals := make([]float64, degree+1)
	first := bs.evaluate(-2, vals)
	if first != 0 {
		t.Errorf("first active at lo = %d, want 0", first)
	}
	first = bs.evaluate(3, vals)
	if first != 8-degree-1 {
		t.Errorf("first active at hi = %d, want %d", first, 8-degree-1)
	}
}

func TestBSplineClampsOutOfRange(t *testing.T) {
	bs, _ := newBSpline(6, 0, 1)
	v1 := make([]float64, degree+1)
	v2 := make([]float64, degree+1)
	f1 := bs.evaluate(-5, v1)
	f2 := bs.evaluate(0, v2)
	if f1 != f2 {
		t.Errorf("clamped evaluation picked different span: %d vs %d", f1, f2)
	}
	for k := range v1 {
		if v1[k] != v2[k] {
			t.Errorf("clamped values differ at %d", k)
		}
	}
}

func TestBSplineTooFewBasis(t *testing.T) {
	if _, err := newBSpline(3, 0, 1); err == nil {
		t.Error("accepted m < 4")
	}
}

func TestBSplineDegenerateRange(t *testing.T) {
	bs, err := newBSpline(5, 2, 2)
	if err != nil {
		t.Fatalf("newBSpline: %v", err)
	}
	vals := make([]float64, degree+1)
	bs.evaluate(2, vals) // must not panic or divide by zero
	var s float64
	for _, v := range vals {
		s += v
	}
	if math.Abs(s-1) > 1e-10 {
		t.Errorf("degenerate basis sum = %v", s)
	}
}

// Property: partition of unity holds for random basis sizes and ranges.
func TestBSplinePartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 4 + r.Intn(20)
		lo := r.NormFloat64() * 10
		hi := lo + r.Float64()*20 + 0.1
		bs, err := newBSpline(m, lo, hi)
		if err != nil {
			return false
		}
		vals := make([]float64, degree+1)
		for k := 0; k < 20; k++ {
			x := lo + r.Float64()*(hi-lo)
			first := bs.evaluate(x, vals)
			if first < 0 || first+degree >= m {
				return false
			}
			var s float64
			for _, v := range vals {
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSecondDiffPenaltyAnnihilatesLinear(t *testing.T) {
	m := 8
	s := secondDiffPenalty(m)
	// Constant and linear coefficient vectors have zero penalty.
	for name, beta := range map[string][]float64{
		"constant": repeated(1, m),
		"linear":   ramp(m),
	} {
		if q := quadForm(s, beta); math.Abs(q) > 1e-12 {
			t.Errorf("%s vector penalized: %v", name, q)
		}
	}
	// A wiggly vector must be penalized.
	wiggle := make([]float64, m)
	for i := range wiggle {
		wiggle[i] = float64(i%2)*2 - 1
	}
	if q := quadForm(s, wiggle); q <= 0 {
		t.Errorf("wiggly vector penalty = %v, want > 0", q)
	}
}

func repeated(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func ramp(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestSecondDiffPenaltyKnownSmall(t *testing.T) {
	// m=3: D = [1 −2 1], S = DᵀD.
	s := secondDiffPenalty(3)
	want := [][]float64{{1, -2, 1}, {-2, 4, -2}, {1, -2, 1}}
	for i := range want {
		for j := range want[i] {
			if s.At(i, j) != want[i][j] {
				t.Errorf("S[%d][%d] = %v, want %v", i, j, s.At(i, j), want[i][j])
			}
		}
	}
}

func TestKroneckerSum(t *testing.T) {
	s1 := secondDiffPenalty(4)
	s2 := secondDiffPenalty(5)
	ks := kroneckerSum(s1, s2)
	if ks.Rows != 20 || ks.Cols != 20 {
		t.Fatalf("dims %d×%d, want 20×20", ks.Rows, ks.Cols)
	}
	// Symmetry.
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if ks.At(i, j) != ks.At(j, i) {
				t.Fatalf("kronecker sum not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// The doubly-constant vector lies in the null space.
	if q := quadForm(ks, repeated(1, 20)); math.Abs(q) > 1e-12 {
		t.Errorf("constant penalized by tensor penalty: %v", q)
	}
	// Bilinear (outer product of ramps) also lies in the null space of
	// second-difference ⊗-sum penalties.
	bilinear := make([]float64, 20)
	for a := 0; a < 4; a++ {
		for b := 0; b < 5; b++ {
			bilinear[a*5+b] = float64(a) * float64(b)
		}
	}
	if q := quadForm(ks, bilinear); math.Abs(q) > 1e-10 {
		t.Errorf("bilinear penalized: %v", q)
	}
}

func TestIdentityPenalty(t *testing.T) {
	s := identityPenalty(3)
	if s.Trace() != 3 || s.At(0, 1) != 0 {
		t.Errorf("identity penalty wrong: %+v", s.Data)
	}
}

func TestFactorLevelsAndIndex(t *testing.T) {
	levels := factorLevels([]float64{2, 1, 2, 3, 1})
	if len(levels) != 3 || levels[0] != 1 || levels[2] != 3 {
		t.Fatalf("levels = %v", levels)
	}
	if levelIndex(levels, 2) != 1 {
		t.Errorf("levelIndex(2) = %d, want 1", levelIndex(levels, 2))
	}
	if levelIndex(levels, 2.5) != -1 {
		t.Errorf("unseen level should map to -1")
	}
}
