package gam

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"gef/internal/linalg"
	"gef/internal/obs"
	"gef/internal/robust"
)

// maxSerializedBasis bounds the per-axis basis size accepted from
// serialized models, so a corrupt or hostile file cannot trigger a
// giant allocation (a tensor term allocates NumBasis² coefficients).
const maxSerializedBasis = 1024

// modelFormatVersion guards the on-disk layout of serialized models.
const modelFormatVersion = 1

// termJSON captures everything needed to rebuild a builtTerm.
type termJSON struct {
	Spec   TermSpec  `json:"spec"`
	Lo     float64   `json:"lo,omitempty"` // spline/tensor first axis
	Hi     float64   `json:"hi,omitempty"`
	Lo2    float64   `json:"lo2,omitempty"` // tensor second axis
	Hi2    float64   `json:"hi2,omitempty"`
	Levels []float64 `json:"levels,omitempty"` // factor
}

type modelJSON struct {
	Version    int        `json:"version"`
	Link       Link       `json:"link"`
	Terms      []termJSON `json:"terms"`
	Beta       []float64  `json:"beta"`
	TermMeans  []float64  `json:"term_means"`
	ColMeans   []float64  `json:"col_means"`
	Intercept  float64    `json:"intercept"`
	Report     FitReport  `json:"report"`
	CholPacked []float64  `json:"chol_packed,omitempty"` // for CIs; optional
}

// Marshal serializes the fitted model. With includeCI the penalized
// Cholesky factor is embedded (O(p²/2) floats) so credible intervals
// survive the round trip; without it the reloaded model predicts and
// explains but TermCurve returns zero standard errors.
func (m *Model) Marshal(includeCI bool) ([]byte, error) {
	_, sp := obs.Start(context.Background(), "gam.marshal",
		obs.Int("terms", len(m.design.terms)), obs.Bool("include_ci", includeCI))
	defer sp.End()
	mj := modelJSON{
		Version:   modelFormatVersion,
		Link:      m.spec.Link,
		Beta:      m.beta,
		TermMeans: m.termMeans,
		ColMeans:  m.colMeans,
		Intercept: m.intercept,
		Report:    m.report,
	}
	for _, bt := range m.design.terms {
		tj := termJSON{Spec: bt.spec}
		switch bt.spec.Kind {
		case Spline:
			tj.Lo, tj.Hi = bt.bs.lo, bt.bs.hi
		case Tensor:
			tj.Lo, tj.Hi = bt.bs.lo, bt.bs.hi
			tj.Lo2, tj.Hi2 = bt.bs2.lo, bt.bs2.hi
		case Factor:
			tj.Levels = bt.levels
		}
		mj.Terms = append(mj.Terms, tj)
	}
	if includeCI && m.chol != nil {
		mj.CholPacked = m.chol.PackLower()
	}
	return json.Marshal(mj)
}

// UnmarshalModel reconstructs a fitted model serialized by Marshal.
func UnmarshalModel(data []byte) (*Model, error) {
	_, sp := obs.Start(context.Background(), "gam.unmarshal_model", obs.Int("bytes", len(data)))
	defer sp.End()
	var mj modelJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return nil, fmt.Errorf("gam: parsing model JSON: %w", err)
	}
	if mj.Version != modelFormatVersion {
		return nil, fmt.Errorf("gam: unsupported model format version %d", mj.Version)
	}
	if len(mj.Terms) == 0 {
		return nil, fmt.Errorf("gam: serialized model has no terms")
	}
	d := &design{}
	col := 1
	spec := Spec{Link: mj.Link}
	for i, tj := range mj.Terms {
		// Bounds and finiteness checks: a model file is untrusted input
		// (the paper's third-party hand-off scenario), so reject anything
		// that would panic or over-allocate downstream instead of building
		// a model that detonates on first Predict.
		if tj.Spec.Feature < 0 {
			return nil, fmt.Errorf("gam: term %d: negative feature index %d: %w", i, tj.Spec.Feature, robust.ErrDegenerate)
		}
		if tj.Spec.Kind == Tensor && tj.Spec.Feature2 < 0 {
			return nil, fmt.Errorf("gam: term %d: negative feature index %d: %w", i, tj.Spec.Feature2, robust.ErrDegenerate)
		}
		if tj.Spec.Kind != Factor && tj.Spec.NumBasis > maxSerializedBasis {
			return nil, fmt.Errorf("gam: term %d: basis size %d exceeds limit %d: %w", i, tj.Spec.NumBasis, maxSerializedBasis, robust.ErrDegenerate)
		}
		for _, v := range []float64{tj.Lo, tj.Hi, tj.Lo2, tj.Hi2} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("gam: term %d: non-finite basis range: %w", i, robust.ErrDegenerate)
			}
		}
		bt := builtTerm{spec: tj.Spec, offset: col}
		switch tj.Spec.Kind {
		case Spline:
			bs, err := newBSpline(tj.Spec.NumBasis, tj.Lo, tj.Hi)
			if err != nil {
				return nil, fmt.Errorf("gam: term %d: %w", i, err)
			}
			bt.bs = bs
			bt.size = tj.Spec.NumBasis
		case Tensor:
			bs1, err := newBSpline(tj.Spec.NumBasis, tj.Lo, tj.Hi)
			if err != nil {
				return nil, fmt.Errorf("gam: term %d: %w", i, err)
			}
			bs2, err := newBSpline(tj.Spec.NumBasis, tj.Lo2, tj.Hi2)
			if err != nil {
				return nil, fmt.Errorf("gam: term %d: %w", i, err)
			}
			bt.bs, bt.bs2 = bs1, bs2
			bt.size = tj.Spec.NumBasis * tj.Spec.NumBasis
		case Factor:
			if len(tj.Levels) == 0 {
				return nil, fmt.Errorf("gam: term %d: factor without levels", i)
			}
			bt.levels = tj.Levels
			bt.size = len(tj.Levels)
		default:
			return nil, fmt.Errorf("gam: term %d: unknown kind %q", i, tj.Spec.Kind)
		}
		col += bt.size
		d.terms = append(d.terms, bt)
		spec.Terms = append(spec.Terms, tj.Spec)
	}
	d.p = col
	if len(mj.Beta) != d.p {
		return nil, fmt.Errorf("gam: %d coefficients for %d columns", len(mj.Beta), d.p)
	}
	if len(mj.TermMeans) != len(d.terms) {
		return nil, fmt.Errorf("gam: %d term means for %d terms", len(mj.TermMeans), len(d.terms))
	}
	if len(mj.ColMeans) != d.p {
		return nil, fmt.Errorf("gam: %d column means for %d columns", len(mj.ColMeans), d.p)
	}
	m := &Model{
		spec:      spec,
		design:    d,
		beta:      mj.Beta,
		termMeans: mj.TermMeans,
		colMeans:  mj.ColMeans,
		intercept: mj.Intercept,
		report:    mj.Report,
	}
	if len(mj.CholPacked) > 0 {
		ch, err := linalg.NewCholeskyFromPacked(d.p, mj.CholPacked)
		if err != nil {
			return nil, fmt.Errorf("gam: restoring CI factor: %w", err)
		}
		m.chol = ch
	}
	return m, nil
}

// SaveFile writes the serialized model to path.
func (m *Model) SaveFile(path string, includeCI bool) error {
	data, err := m.Marshal(includeCI)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadModelFile reads a model serialized with SaveFile.
func LoadModelFile(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalModel(data)
}
