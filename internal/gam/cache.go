package gam

import (
	"math"
	"sync"
	"sync/atomic"

	"gef/internal/linalg"
)

// basisKey identifies a uniform B-spline basis by its size and bit-exact
// range. Bit patterns (not float values) key the map so -0.0/0.0 and any
// NaN payloads cannot alias distinct bases.
type basisKey struct {
	m      int
	lo, hi uint64
}

// penaltyKey identifies a per-term penalty block: the term kind plus the
// per-axis basis size (splines/tensors) or level count (factors).
type penaltyKey struct {
	kind TermKind
	m    int
}

// BasisCache memoizes B-spline basis objects and per-term penalty blocks
// across GAM fits. Both artifact families are pure functions of their
// keys and are treated as immutable once constructed: bases are only
// evaluated, and penaltyMatrix copies block entries out instead of
// mutating blocks in place — so one cache may serve concurrent fits and
// cached objects may be shared by many fitted models.
//
// The engine owns one BasisCache per session; AutoExplain's candidate
// fits and the degradation ladder's refits hit the same (m, range) bases
// and (kind, m) blocks over and over, which is exactly the reuse the
// cache captures. A nil *BasisCache is valid everywhere and means
// "compute directly".
type BasisCache struct {
	mu        sync.Mutex
	bases     map[basisKey]*bspline
	penalties map[penaltyKey]*linalg.Matrix

	hits   atomic.Int64
	misses atomic.Int64
}

// NewBasisCache returns an empty cache.
func NewBasisCache() *BasisCache {
	return &BasisCache{
		bases:     make(map[basisKey]*bspline),
		penalties: make(map[penaltyKey]*linalg.Matrix),
	}
}

// Counters returns the cumulative hit/miss counts (for cache-stats
// reporting; the engine maps them onto the fit stage's metrics).
func (c *BasisCache) Counters() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// basisCached returns the memoized basis for (m, lo, hi), building it on
// first use. With a nil receiver it builds directly.
func basisCached(c *BasisCache, m int, lo, hi float64) (*bspline, error) {
	if c == nil {
		return newBSpline(m, lo, hi)
	}
	k := basisKey{m: m, lo: math.Float64bits(lo), hi: math.Float64bits(hi)}
	c.mu.Lock()
	if b, ok := c.bases[k]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return b, nil
	}
	c.mu.Unlock()
	b, err := newBSpline(m, lo, hi)
	if err != nil {
		return nil, err
	}
	c.misses.Add(1)
	c.mu.Lock()
	c.bases[k] = b
	c.mu.Unlock()
	return b, nil
}

// penaltyBlockCached returns the memoized penalty block for (kind, m):
// the second-difference penalty for splines, the identity for factors,
// and the null-space-shrunk Kronecker-sum penalty for tensors (m is the
// per-axis basis size; the block is m²×m²). The returned matrix is
// shared — callers must only read it.
func penaltyBlockCached(c *BasisCache, kind TermKind, m int) *linalg.Matrix {
	if c == nil {
		return penaltyBlock(kind, m)
	}
	k := penaltyKey{kind: kind, m: m}
	c.mu.Lock()
	if b, ok := c.penalties[k]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return b
	}
	c.mu.Unlock()
	b := penaltyBlock(kind, m)
	c.misses.Add(1)
	c.mu.Lock()
	c.penalties[k] = b
	c.mu.Unlock()
	return b
}

// penaltyBlock builds one term's penalty block directly.
func penaltyBlock(kind TermKind, m int) *linalg.Matrix {
	switch kind {
	case Factor:
		return identityPenalty(m)
	case Tensor:
		block := kroneckerSum(secondDiffPenalty(m), secondDiffPenalty(m))
		// Null-space shrinkage (mgcv's double-penalty idea): the
		// Kronecker-sum penalty leaves bilinear — in particular
		// marginal — functions unpenalized, so a tensor term can
		// silently absorb its features' main effects and render the
		// spline/tensor decomposition unidentified. A small identity
		// component steers shared variance into the dedicated
		// univariate terms.
		for i := 0; i < block.Rows; i++ {
			block.Add(i, i, tensorNullPenalty)
		}
		return block
	default:
		return secondDiffPenalty(m)
	}
}
