package gam

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

// fittedMixedModel fits a model with one of each term kind.
func fittedMixedModel(t *testing.T) (*Model, [][]float64) {
	t.Helper()
	r := rand.New(rand.NewSource(21))
	n := 2500
	xs := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := r.Float64(), r.Float64()
		lv := float64(r.Intn(3))
		xs[i] = []float64{a, b, lv}
		y[i] = math.Sin(3*a) + 2*(a-0.5)*(b-0.5) + 0.5*lv + 0.05*r.NormFloat64()
	}
	m, err := Fit(Spec{Terms: []TermSpec{
		{Kind: Spline, Feature: 0},
		{Kind: Spline, Feature: 1},
		{Kind: Tensor, Feature: 0, Feature2: 1, NumBasis: 5},
		{Kind: Factor, Feature: 2},
	}}, xs, y, Options{Lambdas: []float64{0.01, 1, 100}})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return m, xs
}

func TestModelRoundTripPredictions(t *testing.T) {
	m, xs := fittedMixedModel(t)
	data, err := m.Marshal(true)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	m2, err := UnmarshalModel(data)
	if err != nil {
		t.Fatalf("UnmarshalModel: %v", err)
	}
	for _, x := range xs[:50] {
		if got, want := m2.Predict(x), m.Predict(x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Predict changed: %v vs %v", got, want)
		}
		for ti := 0; ti < m.NumTerms(); ti++ {
			if got, want := m2.TermValue(ti, x), m.TermValue(ti, x); math.Abs(got-want) > 1e-12 {
				t.Fatalf("term %d value changed: %v vs %v", ti, got, want)
			}
		}
	}
	if m2.Intercept() != m.Intercept() {
		t.Error("intercept changed")
	}
	if m2.Report().Lambda != m.Report().Lambda {
		t.Error("report lost")
	}
}

func TestModelRoundTripCIs(t *testing.T) {
	m, _ := fittedMixedModel(t)
	data, err := m.Marshal(true)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	m2, err := UnmarshalModel(data)
	if err != nil {
		t.Fatalf("UnmarshalModel: %v", err)
	}
	grid := []float64{0.2, 0.5, 0.8}
	c1, err := m.TermCurve(0, grid, 0.95)
	if err != nil {
		t.Fatalf("TermCurve: %v", err)
	}
	c2, err := m2.TermCurve(0, grid, 0.95)
	if err != nil {
		t.Fatalf("TermCurve: %v", err)
	}
	for i := range grid {
		if math.Abs(c1.SE[i]-c2.SE[i]) > 1e-10 {
			t.Errorf("SE changed at %d: %v vs %v", i, c1.SE[i], c2.SE[i])
		}
	}
}

func TestModelWithoutCIs(t *testing.T) {
	m, _ := fittedMixedModel(t)
	data, err := m.Marshal(false)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	m2, err := UnmarshalModel(data)
	if err != nil {
		t.Fatalf("UnmarshalModel: %v", err)
	}
	c, err := m2.TermCurve(0, []float64{0.5}, 0.95)
	if err != nil {
		t.Fatalf("TermCurve: %v", err)
	}
	if c.SE[0] != 0 {
		t.Errorf("SE without CI factor = %v, want 0", c.SE[0])
	}
	// Predictions still intact.
	if math.Abs(m2.Predict([]float64{0.5, 0.5, 1})-m.Predict([]float64{0.5, 0.5, 1})) > 1e-12 {
		t.Error("prediction changed without CI factor")
	}
	// Compact payload: no-CI form must be much smaller.
	withCI, _ := m.Marshal(true)
	if len(data) >= len(withCI) {
		t.Errorf("no-CI payload (%d) not smaller than CI payload (%d)", len(data), len(withCI))
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	m, xs := fittedMixedModel(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveFile(path, true); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	m2, err := LoadModelFile(path)
	if err != nil {
		t.Fatalf("LoadModelFile: %v", err)
	}
	if m2.Predict(xs[0]) != m.Predict(xs[0]) {
		t.Error("file round trip changed prediction")
	}
}

func TestUnmarshalModelErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       "nope",
		"bad version":   `{"version":9}`,
		"no terms":      `{"version":1,"terms":[]}`,
		"beta mismatch": `{"version":1,"terms":[{"spec":{"Kind":"spline","Feature":0,"NumBasis":5},"lo":0,"hi":1}],"beta":[1],"term_means":[0],"col_means":[0]}`,
		"bad kind":      `{"version":1,"terms":[{"spec":{"Kind":"wavelet"}}]}`,
	}
	for name, body := range cases {
		if _, err := UnmarshalModel([]byte(body)); err == nil {
			t.Errorf("%s: accepted invalid payload", name)
		}
	}
}

func TestLoadModelFileMissing(t *testing.T) {
	if _, err := LoadModelFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("accepted missing file")
	}
}
