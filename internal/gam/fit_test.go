package gam

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gef/internal/stats"
)

// gen1D builds (xs, y) from a univariate function over [0,1] plus noise.
func gen1D(n int, f func(float64) float64, noise float64, seed int64) ([][]float64, []float64) {
	r := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := r.Float64()
		xs[i] = []float64{x}
		y[i] = f(x) + noise*r.NormFloat64()
	}
	return xs, y
}

func TestFitRecoversLinear(t *testing.T) {
	xs, y := gen1D(500, func(x float64) float64 { return 2*x + 1 }, 0.05, 1)
	m, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}}, xs, y, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for _, x := range []float64{0.1, 0.5, 0.9} {
		got := m.Predict([]float64{x})
		want := 2*x + 1
		if math.Abs(got-want) > 0.1 {
			t.Errorf("Predict(%v) = %v, want ≈ %v", x, got, want)
		}
	}
}

func TestFitRecoversSin(t *testing.T) {
	xs, y := gen1D(2000, func(x float64) float64 { return math.Sin(6 * x) }, 0.1, 2)
	m, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0, NumBasis: 16}}}, xs, y, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	var truth, pred []float64
	for _, x := range xs {
		truth = append(truth, math.Sin(6*x[0]))
		pred = append(pred, m.Predict(x))
	}
	if r2 := stats.R2(pred, truth); r2 < 0.98 {
		t.Errorf("R² vs noiseless truth = %v, want ≥ 0.98", r2)
	}
}

func TestFitSmoothsNoise(t *testing.T) {
	// Pure noise: GCV should choose heavy smoothing → small edf, flat fit.
	xs, y := gen1D(800, func(x float64) float64 { return 0 }, 1, 3)
	m, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}}, xs, y, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.Report().EDF > 6 {
		t.Errorf("edf = %v on pure noise, want strong smoothing", m.Report().EDF)
	}
	// Predictions should stay near zero.
	for _, x := range []float64{0.2, 0.5, 0.8} {
		if math.Abs(m.Predict([]float64{x})) > 0.3 {
			t.Errorf("Predict(%v) = %v on pure noise", x, m.Predict([]float64{x}))
		}
	}
}

func TestFitAdditiveTwoTerms(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	n := 3000
	xs := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := r.Float64(), r.Float64()
		xs[i] = []float64{a, b}
		y[i] = a + math.Sin(2*math.Pi*b) + 0.05*r.NormFloat64()
	}
	m, err := Fit(Spec{Terms: []TermSpec{
		{Kind: Spline, Feature: 0},
		{Kind: Spline, Feature: 1, NumBasis: 14},
	}}, xs, y, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// Term 1 must capture the sinusoid: compare shapes at a few points.
	x := []float64{0.5, 0}
	ref := m.TermValue(1, []float64{0.5, 0.25}) // sin peak
	x[1] = 0.75                                 // sin trough
	trough := m.TermValue(1, x)
	if ref < 0.7 || trough > -0.7 {
		t.Errorf("sin term peak %v / trough %v, want ≈ ±1", ref, trough)
	}
	// Centering: term means over training data ≈ 0.
	for ti := 0; ti < m.NumTerms(); ti++ {
		var s float64
		for _, row := range xs {
			s += m.TermValue(ti, row)
		}
		if mean := s / float64(n); math.Abs(mean) > 0.02 {
			t.Errorf("term %d training mean = %v, want ≈ 0", ti, mean)
		}
	}
	// Intercept ≈ E[y].
	if math.Abs(m.Intercept()-stats.Mean(y)) > 0.05 {
		t.Errorf("intercept = %v, want ≈ %v", m.Intercept(), stats.Mean(y))
	}
}

func TestExplainDecomposesPrediction(t *testing.T) {
	xs, y := gen1D(400, func(x float64) float64 { return x * x }, 0.05, 5)
	m, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}}, xs, y, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	x := []float64{0.7}
	intercept, contribs := m.Explain(x)
	var sum float64 = intercept
	for _, c := range contribs {
		sum += c.Value
	}
	if math.Abs(sum-m.PredictRaw(x)) > 1e-10 {
		t.Errorf("explanation sums to %v, prediction is %v", sum, m.PredictRaw(x))
	}
}

func TestExplainSortsByMagnitude(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n := 1500
	xs := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := r.Float64(), r.Float64()
		xs[i] = []float64{a, b}
		y[i] = 5*a + 0.1*b + 0.01*r.NormFloat64()
	}
	m, err := Fit(Spec{Terms: []TermSpec{
		{Kind: Spline, Feature: 0},
		{Kind: Spline, Feature: 1},
	}}, xs, y, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	_, contribs := m.Explain([]float64{0.9, 0.9})
	if contribs[0].Spec.Feature != 0 {
		t.Errorf("dominant feature should sort first, got feature %d", contribs[0].Spec.Feature)
	}
}

func TestFactorTermRecoversLevels(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 900
	xs := make([][]float64, n)
	y := make([]float64, n)
	effects := map[float64]float64{0: -1, 1: 0.5, 2: 2}
	for i := 0; i < n; i++ {
		lv := float64(r.Intn(3))
		xs[i] = []float64{lv}
		y[i] = effects[lv] + 0.05*r.NormFloat64()
	}
	m, err := Fit(Spec{Terms: []TermSpec{{Kind: Factor, Feature: 0}}}, xs, y, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// Differences between level effects must match (absolute values are
	// centered).
	d01 := m.TermValue(0, []float64{1}) - m.TermValue(0, []float64{0})
	d12 := m.TermValue(0, []float64{2}) - m.TermValue(0, []float64{1})
	if math.Abs(d01-1.5) > 0.1 || math.Abs(d12-1.5) > 0.1 {
		t.Errorf("level differences = %v, %v, want 1.5, 1.5", d01, d12)
	}
	// An unseen value maps to its nearest observed level: 7 → level 2.
	if v, want := m.TermValue(0, []float64{7}), m.TermValue(0, []float64{2}); v != want {
		t.Errorf("unseen value contribution = %v, want nearest level's %v", v, want)
	}
	// Midpoint ties resolve to the lower level.
	if v, want := m.TermValue(0, []float64{0.5}), m.TermValue(0, []float64{0}); v != want {
		t.Errorf("tie contribution = %v, want lower level's %v", v, want)
	}
}

func TestTensorTermCapturesInteraction(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	n := 4000
	xs := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := r.Float64(), r.Float64()
		xs[i] = []float64{a, b}
		y[i] = 4*(a-0.5)*(b-0.5) + 0.05*r.NormFloat64()
	}
	// Splines alone cannot represent the product term.
	mAdd, err := Fit(Spec{Terms: []TermSpec{
		{Kind: Spline, Feature: 0}, {Kind: Spline, Feature: 1},
	}}, xs, y, Options{})
	if err != nil {
		t.Fatalf("Fit additive: %v", err)
	}
	mTen, err := Fit(Spec{Terms: []TermSpec{
		{Kind: Spline, Feature: 0}, {Kind: Spline, Feature: 1},
		{Kind: Tensor, Feature: 0, Feature2: 1, NumBasis: 6},
	}}, xs, y, Options{})
	if err != nil {
		t.Fatalf("Fit tensor: %v", err)
	}
	truth := make([]float64, n)
	for i, row := range xs {
		truth[i] = 4 * (row[0] - 0.5) * (row[1] - 0.5)
	}
	r2Add := stats.R2(mAdd.PredictBatch(xs), truth)
	r2Ten := stats.R2(mTen.PredictBatch(xs), truth)
	if r2Add > 0.3 {
		t.Errorf("additive model R² = %v on a pure interaction, expected failure", r2Add)
	}
	if r2Ten < 0.9 {
		t.Errorf("tensor model R² = %v, want ≥ 0.9", r2Ten)
	}
}

func TestFitLogitClassification(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 2000
	xs := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := r.Float64()
		xs[i] = []float64{x}
		p := sigmoid(8 * (x - 0.5))
		if r.Float64() < p {
			y[i] = 1
		}
	}
	m, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}, Link: Logit}, xs, y,
		Options{Lambdas: LogSpace(1e-2, 1e4, 9)})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// Predicted probabilities in [0,1] and monotone-ish across the range.
	p1 := m.Predict([]float64{0.1})
	p9 := m.Predict([]float64{0.9})
	if p1 < 0 || p9 > 1 {
		t.Fatalf("probabilities out of range: %v, %v", p1, p9)
	}
	if p1 > 0.3 || p9 < 0.7 {
		t.Errorf("probabilities %v/%v fail to track the logistic truth", p1, p9)
	}
	if acc := stats.Accuracy(m.PredictBatch(xs), y); acc < 0.75 {
		t.Errorf("accuracy = %v, want ≥ 0.75", acc)
	}
}

func TestFitLogitOnProbabilities(t *testing.T) {
	// Distillation scenario: targets are probabilities, not hard labels.
	xs, y := gen1D(1200, func(x float64) float64 { return sigmoid(6 * (x - 0.5)) }, 0, 10)
	m, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}, Link: Logit}, xs, y,
		Options{Lambdas: LogSpace(1e-2, 1e4, 9)})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for _, x := range []float64{0.2, 0.5, 0.8} {
		want := sigmoid(6 * (x - 0.5))
		if got := m.Predict([]float64{x}); math.Abs(got-want) > 0.05 {
			t.Errorf("Predict(%v) = %v, want ≈ %v", x, got, want)
		}
	}
}

func TestFitErrors(t *testing.T) {
	xs, y := gen1D(50, func(x float64) float64 { return x }, 0, 11)
	cases := []struct {
		name string
		spec Spec
		xs   [][]float64
		y    []float64
	}{
		{"no terms", Spec{}, xs, y},
		{"bad link", Spec{Terms: []TermSpec{{Kind: Spline}}, Link: "probit"}, xs, y},
		{"feature out of range", Spec{Terms: []TermSpec{{Kind: Spline, Feature: 3}}}, xs, y},
		{"tensor self pair", Spec{Terms: []TermSpec{{Kind: Tensor, Feature: 0, Feature2: 0}}}, xs, y},
		{"bad kind", Spec{Terms: []TermSpec{{Kind: "wavelet"}}}, xs, y},
		{"length mismatch", Spec{Terms: []TermSpec{{Kind: Spline}}}, xs, y[:10]},
		{"too few rows", Spec{Terms: []TermSpec{{Kind: Spline, NumBasis: 30}}}, xs[:20], y[:20]},
	}
	for _, c := range cases {
		if _, err := Fit(c.spec, c.xs, c.y, Options{}); err == nil {
			t.Errorf("%s: Fit accepted invalid input", c.name)
		}
	}
	// Logit with out-of-range targets.
	badY := append([]float64(nil), y...)
	badY[0] = 2
	if _, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline}}, Link: Logit}, xs, badY, Options{}); err == nil {
		t.Error("logit accepted target outside [0,1]")
	}
}

func TestTermCurveWithCI(t *testing.T) {
	xs, y := gen1D(800, func(x float64) float64 { return math.Sin(4 * x) }, 0.1, 12)
	m, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}}, xs, y, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	grid := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	c, err := m.TermCurve(0, grid, 0.95)
	if err != nil {
		t.Fatalf("TermCurve: %v", err)
	}
	for i := range grid {
		if c.SE[i] <= 0 || math.IsNaN(c.SE[i]) {
			t.Errorf("SE[%d] = %v, want > 0", i, c.SE[i])
		}
		if c.Lower[i] >= c.Y[i] || c.Upper[i] <= c.Y[i] {
			t.Errorf("interval [%v, %v] does not bracket %v", c.Lower[i], c.Upper[i], c.Y[i])
		}
	}
	// The curve should track sin(4x) − mean within the CI scale.
	for i, x := range grid {
		want := math.Sin(4*x) - meanSin4(xs)
		if math.Abs(c.Y[i]-want) > 0.15 {
			t.Errorf("curve(%v) = %v, want ≈ %v", x, c.Y[i], want)
		}
	}
}

func meanSin4(xs [][]float64) float64 {
	var s float64
	for _, x := range xs {
		s += math.Sin(4 * x[0])
	}
	return s / float64(len(xs))
}

func TestTermCurveErrors(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	n := 1000
	xs := make([][]float64, n)
	y := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{r.Float64(), r.Float64()}
		y[i] = xs[i][0] * xs[i][1]
	}
	m, err := Fit(Spec{Terms: []TermSpec{
		{Kind: Tensor, Feature: 0, Feature2: 1, NumBasis: 5},
	}}, xs, y, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if _, err := m.TermCurve(0, []float64{0.5}, 0.95); err == nil {
		t.Error("TermCurve accepted a tensor term")
	}
	surf, err := m.TermSurface(0, []float64{0.2, 0.8}, []float64{0.3, 0.7})
	if err != nil {
		t.Fatalf("TermSurface: %v", err)
	}
	if len(surf.Z) != 2 || len(surf.Z[0]) != 2 {
		t.Errorf("surface shape wrong")
	}
	if _, err := m.TermSurface(0, nil, []float64{1}); err == nil {
		t.Error("TermSurface accepted empty grid")
	}
}

func TestTermRangeAndLevels(t *testing.T) {
	xs, y := gen1D(300, func(x float64) float64 { return x }, 0.01, 14)
	m, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}}, xs, y, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	lo, hi := m.TermRange(0)
	if lo > 0.1 || hi < 0.9 {
		t.Errorf("term range [%v, %v] should cover the data", lo, hi)
	}
}

func TestReportContents(t *testing.T) {
	xs, y := gen1D(300, func(x float64) float64 { return x }, 0.05, 15)
	m, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}}, xs, y,
		Options{Lambdas: LogSpace(1e-3, 1e3, 7)})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	rep := m.Report()
	if len(rep.Lambdas) != 7 || len(rep.GCVs) != 7 {
		t.Errorf("grid sizes %d/%d, want 7/7", len(rep.Lambdas), len(rep.GCVs))
	}
	if rep.Scale <= 0 {
		t.Errorf("scale = %v, want > 0", rep.Scale)
	}
	if rep.EDF <= 0 || rep.EDF >= float64(len(xs)) {
		t.Errorf("edf = %v out of range", rep.EDF)
	}
	// Chosen GCV is the grid minimum.
	for _, g := range rep.GCVs {
		if g < rep.GCV-1e-15 {
			t.Errorf("grid GCV %v below chosen %v", g, rep.GCV)
		}
	}
}

// Property: effective degrees of freedom decrease monotonically in λ —
// the defining behaviour of the smoothing parameter.
func TestEDFMonotoneInLambda(t *testing.T) {
	xs, y := gen1D(600, func(x float64) float64 { return math.Sin(5 * x) }, 0.1, 16)
	prev := math.Inf(1)
	for _, lam := range []float64{1e-4, 1e-2, 1, 100, 1e4, 1e6} {
		m, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}}, xs, y,
			Options{Lambdas: []float64{lam}})
		if err != nil {
			t.Fatalf("Fit(λ=%v): %v", lam, err)
		}
		edf := m.Report().EDF
		if edf > prev+1e-9 {
			t.Errorf("edf %v at λ=%v exceeds edf %v at smaller λ", edf, lam, prev)
		}
		prev = edf
	}
	// At huge λ the spline is nearly linear: edf ≈ 2–3 (intercept +
	// penalty null space).
	if prev > 4 {
		t.Errorf("edf at λ=1e6 is %v, expected near the penalty null space dimension", prev)
	}
}

// Property: at large λ the fitted spline degenerates toward the least-
// squares line (second-difference penalty null space).
func TestHeavySmoothingYieldsLine(t *testing.T) {
	xs, y := gen1D(800, func(x float64) float64 { return math.Sin(8 * x) }, 0.05, 18)
	m, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}}, xs, y,
		Options{Lambdas: []float64{1e8}})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// Check linearity: midpoint prediction equals the average of the
	// endpoint predictions.
	p0 := m.Predict([]float64{0.1})
	p1 := m.Predict([]float64{0.9})
	pm := m.Predict([]float64{0.5})
	if math.Abs(pm-(p0+p1)/2) > 0.02 {
		t.Errorf("heavily smoothed fit not linear: f(0.1)=%v f(0.5)=%v f(0.9)=%v", p0, pm, p1)
	}
}

// The GCV optimum must track noise: noisier data → larger chosen λ
// (comparing the same signal at two noise levels).
func TestGCVChoosesMoreSmoothingForNoisierData(t *testing.T) {
	grid := LogSpace(1e-4, 1e6, 21)
	quiet, yq := gen1D(1500, func(x float64) float64 { return math.Sin(4 * x) }, 0.02, 20)
	noisy, yn := gen1D(1500, func(x float64) float64 { return math.Sin(4 * x) }, 0.8, 20)
	mq, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}}, quiet, yq, Options{Lambdas: grid})
	if err != nil {
		t.Fatalf("Fit quiet: %v", err)
	}
	mn, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}}, noisy, yn, Options{Lambdas: grid})
	if err != nil {
		t.Fatalf("Fit noisy: %v", err)
	}
	if mn.Report().EDF >= mq.Report().EDF {
		t.Errorf("noisy edf %v should be below quiet edf %v",
			mn.Report().EDF, mq.Report().EDF)
	}
}

// Property: logit-link predictions stay in [0,1] and are finite for any
// finite input, including points far outside the training domain (the
// basis clamps to its boundary).
func TestLogitPredictionsBoundedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	n := 800
	xs := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := r.Float64()
		xs[i] = []float64{x}
		if r.Float64() < sigmoid(6*(x-0.5)) {
			y[i] = 1
		}
	}
	m, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}, Link: Logit}, xs, y,
		Options{Lambdas: []float64{0.1, 10}})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	prop := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		p := m.Predict([]float64{v})
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDevianceExplained(t *testing.T) {
	// Low-noise sine: nearly all variance explained; pure noise: ≈ none.
	xs, y := gen1D(1000, func(x float64) float64 { return math.Sin(5 * x) }, 0.02, 22)
	m, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}}, xs, y, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if de := m.Report().DevExplained; de < 0.95 {
		t.Errorf("deviance explained = %v on near-noiseless data", de)
	}
	xsN, yN := gen1D(1000, func(x float64) float64 { return 0 }, 1, 23)
	mN, err := Fit(Spec{Terms: []TermSpec{{Kind: Spline, Feature: 0}}}, xsN, yN, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if de := mN.Report().DevExplained; de > 0.1 {
		t.Errorf("deviance explained = %v on pure noise", de)
	}
}

func TestLogSpace(t *testing.T) {
	v := LogSpace(1, 100, 3)
	if math.Abs(v[0]-1) > 1e-12 || math.Abs(v[1]-10) > 1e-9 || math.Abs(v[2]-100) > 1e-9 {
		t.Errorf("LogSpace = %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid LogSpace")
		}
	}()
	LogSpace(0, 1, 3)
}
