package gam

import (
	"context"
	"fmt"
	"math"

	"gef/internal/obs"
	"gef/internal/stats"
)

// Link returns the fitted model's link function.
func (m *Model) Link() Link { return m.spec.Link }

// Report returns the smoothing-parameter search summary.
func (m *Model) Report() FitReport { return m.report }

// NumTerms returns the number of additive terms (excluding the intercept).
func (m *Model) NumTerms() int { return len(m.design.terms) }

// Term returns the spec of term i.
func (m *Model) Term(i int) TermSpec { return m.design.terms[i].spec }

// Intercept returns the centered intercept α (every term has zero mean
// over the training data, so α is the mean linear predictor).
func (m *Model) Intercept() float64 { return m.intercept }

// PredictRaw returns the linear predictor η(x) = α + Σ_j s_j(x).
//
//lint:ignore obsspan per-row hot path; PredictBatch carries the span for batch work
func (m *Model) PredictRaw(x []float64) float64 {
	s := m.intercept
	for ti := range m.design.terms {
		s += m.TermValue(ti, x)
	}
	return s
}

// Predict returns the model prediction on the response scale: η for the
// identity link, σ(η) for the logit link.
func (m *Model) Predict(x []float64) float64 {
	eta := m.PredictRaw(x)
	if m.spec.Link == Logit {
		return sigmoid(eta)
	}
	return eta
}

// PredictBatch applies Predict to every row.
func (m *Model) PredictBatch(xs [][]float64) []float64 {
	_, sp := obs.Start(context.Background(), "gam.predict_batch", obs.Int("rows", len(xs)))
	defer sp.End()
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = m.Predict(x)
	}
	return out
}

// TermValue evaluates the centered contribution s_i(x) of term i at the
// full input row x.
//
//lint:ignore obsspan per-row hot path called once per term per prediction; spans here would dominate the work
func (m *Model) TermValue(ti int, x []float64) float64 {
	bt := &m.design.terms[ti]
	var sv, sv2 [degree + 1]float64
	var s float64
	switch bt.spec.Kind {
	case Spline:
		first := bt.bs.evaluate(x[bt.spec.Feature], sv[:])
		for k := 0; k <= degree; k++ {
			s += sv[k] * m.beta[bt.offset+first+k]
		}
	case Factor:
		if li := nearestLevel(bt.levels, x[bt.spec.Feature]); li >= 0 {
			s = m.beta[bt.offset+li]
		}
	case Tensor:
		f1 := bt.bs.evaluate(x[bt.spec.Feature], sv[:])
		f2 := bt.bs2.evaluate(x[bt.spec.Feature2], sv2[:])
		m2 := bt.spec.NumBasis
		for a := 0; a <= degree; a++ {
			for b := 0; b <= degree; b++ {
				s += sv[a] * sv2[b] * m.beta[bt.offset+(f1+a)*m2+f2+b]
			}
		}
	}
	return s - m.termMeans[ti]
}

// Curve is one term's function evaluated over a grid, with pointwise
// Bayesian credible intervals (Wood 2006): s ± z·SE.
type Curve struct {
	X     []float64 // grid (or factor levels)
	Y     []float64 // centered term values
	SE    []float64 // pointwise standard errors
	Lower []float64 // Y − z·SE
	Upper []float64 // Y + z·SE
}

// TermCurve evaluates univariate term ti over the given grid with
// credible intervals at the given level (e.g. 0.95). For Factor terms
// pass nil to use the observed levels as the grid.
func (m *Model) TermCurve(ti int, grid []float64, level float64) (*Curve, error) {
	bt := &m.design.terms[ti]
	if bt.spec.Kind == Tensor {
		return nil, fmt.Errorf("gam: term %d is a tensor; use TermSurface", ti)
	}
	if grid == nil && bt.spec.Kind == Factor {
		grid = bt.levels
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("gam: empty grid for term %d", ti)
	}
	_, sp := obs.Start(context.Background(), "gam.term_curve",
		obs.Int("term", ti), obs.Int("grid", len(grid)))
	defer sp.End()
	z := stats.NormalQuantile(0.5 + level/2)
	c := &Curve{
		X:     append([]float64(nil), grid...),
		Y:     make([]float64, len(grid)),
		SE:    make([]float64, len(grid)),
		Lower: make([]float64, len(grid)),
		Upper: make([]float64, len(grid)),
	}
	x := make([]float64, maxFeatureIndex(m.spec)+1)
	for gi, v := range grid {
		x[bt.spec.Feature] = v
		c.Y[gi] = m.TermValue(ti, x)
		c.SE[gi] = m.termSE(ti, v, 0)
		c.Lower[gi] = c.Y[gi] - z*c.SE[gi]
		c.Upper[gi] = c.Y[gi] + z*c.SE[gi]
	}
	return c, nil
}

// Surface is a tensor term evaluated over a 2-D grid.
type Surface struct {
	X1, X2 []float64
	Z      [][]float64 // Z[i][j] = s(X1[i], X2[j]), centered
}

// TermSurface evaluates tensor term ti over the cross product of the two
// grids.
func (m *Model) TermSurface(ti int, grid1, grid2 []float64) (*Surface, error) {
	bt := &m.design.terms[ti]
	if bt.spec.Kind != Tensor {
		return nil, fmt.Errorf("gam: term %d is not a tensor", ti)
	}
	if len(grid1) == 0 || len(grid2) == 0 {
		return nil, fmt.Errorf("gam: empty grid for term %d", ti)
	}
	_, sp := obs.Start(context.Background(), "gam.term_surface",
		obs.Int("term", ti), obs.Int("grid1", len(grid1)), obs.Int("grid2", len(grid2)))
	defer sp.End()
	s := &Surface{
		X1: append([]float64(nil), grid1...),
		X2: append([]float64(nil), grid2...),
		Z:  make([][]float64, len(grid1)),
	}
	x := make([]float64, maxFeatureIndex(m.spec)+1)
	for i, v1 := range grid1 {
		s.Z[i] = make([]float64, len(grid2))
		x[bt.spec.Feature] = v1
		for j, v2 := range grid2 {
			x[bt.spec.Feature2] = v2
			s.Z[i][j] = m.TermValue(ti, x)
		}
	}
	return s, nil
}

// termSE computes the Bayesian pointwise standard error of the CENTERED
// term ti at value v (v2 for the second axis of tensors):
// σ·√(cᵀ A⁻¹ c) with c = b(v) − b̄, the term's basis vector minus its
// training column means. Centering is essential: B-spline bases sum to
// one, so the raw basis vector overlaps the intercept-redundant constant
// direction that only the stabilizing ridge pins down; the reported
// quantity is the centered term, whose variance excludes that direction.
func (m *Model) termSE(ti int, v, v2 float64) float64 {
	if m.chol == nil {
		// Model deserialized without its CI factor.
		return 0
	}
	bt := &m.design.terms[ti]
	full := make([]float64, len(m.beta))
	var sv, sv2 [degree + 1]float64
	switch bt.spec.Kind {
	case Spline:
		first := bt.bs.evaluate(v, sv[:])
		for k := 0; k <= degree; k++ {
			full[bt.offset+first+k] = sv[k]
		}
	case Factor:
		if li := nearestLevel(bt.levels, v); li >= 0 {
			full[bt.offset+li] = 1
		}
	case Tensor:
		f1 := bt.bs.evaluate(v, sv[:])
		f2 := bt.bs2.evaluate(v2, sv2[:])
		m2 := bt.spec.NumBasis
		for a := 0; a <= degree; a++ {
			for b := 0; b <= degree; b++ {
				full[bt.offset+(f1+a)*m2+f2+b] = sv[a] * sv2[b]
			}
		}
	}
	for c := 0; c < bt.size; c++ {
		full[bt.offset+c] -= m.colMeans[bt.offset+c]
	}
	u := m.chol.Solve(full)
	var q float64
	for j, bv := range full {
		if bv != 0 {
			q += bv * u[j]
		}
	}
	if q < 0 {
		q = 0
	}
	return math.Sqrt(q * m.report.Scale)
}

// TermRange returns the fitted domain [lo, hi] of a univariate spline
// term, or the min/max level of a factor term.
func (m *Model) TermRange(ti int) (lo, hi float64) {
	bt := &m.design.terms[ti]
	if bt.spec.Kind == Factor {
		return bt.levels[0], bt.levels[len(bt.levels)-1]
	}
	return bt.bs.lo, bt.bs.hi
}

// FactorTermLevels returns the observed levels of a factor term.
func (m *Model) FactorTermLevels(ti int) []float64 {
	return append([]float64(nil), m.design.terms[ti].levels...)
}

// Contribution is one term's share of a single prediction, used for local
// explanations (paper Fig. 11).
type Contribution struct {
	Term  int
	Spec  TermSpec
	Value float64 // centered contribution s_j(x)
}

// Explain decomposes the prediction at x into the intercept plus
// per-term contributions sorted by decreasing |value|.
//
//lint:ignore obsspan per-instance explanation is a handful of TermValue calls; too cheap to span
func (m *Model) Explain(x []float64) (intercept float64, contribs []Contribution) {
	contribs = make([]Contribution, m.NumTerms())
	for ti := range contribs {
		contribs[ti] = Contribution{Term: ti, Spec: m.Term(ti), Value: m.TermValue(ti, x)}
	}
	sortByAbsValue(contribs)
	return m.intercept, contribs
}

func sortByAbsValue(cs []Contribution) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && math.Abs(cs[j].Value) > math.Abs(cs[j-1].Value); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func maxFeatureIndex(s Spec) int {
	m := 0
	for _, t := range s.Terms {
		if t.Feature > m {
			m = t.Feature
		}
		if t.Kind == Tensor && t.Feature2 > m {
			m = t.Feature2
		}
	}
	return m
}
