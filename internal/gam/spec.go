package gam

import (
	"fmt"
	"math"
)

// Link selects the GAM's link function (paper §3.5: identity with Normal
// response for regression, logit with Binomial response for
// classification).
type Link string

const (
	// Identity fits E[y|x] = α + Σ s_j directly.
	Identity Link = "identity"
	// Logit fits log(μ/(1−μ)) = α + Σ s_j; responses may be probabilities
	// in [0,1] (the distillation targets produced by a classification
	// forest) or hard 0/1 labels.
	Logit Link = "logit"
)

// TermKind distinguishes the three term families of §3.5.
type TermKind string

const (
	// Spline is a univariate penalized cubic B-spline term.
	Spline TermKind = "spline"
	// Factor is a categorical term: one coefficient per observed level
	// with a ridge penalty.
	Factor TermKind = "factor"
	// Tensor is a bivariate penalized tensor-product spline term.
	Tensor TermKind = "tensor"
)

// TermSpec declares one additive component of the GAM.
type TermSpec struct {
	Kind     TermKind
	Feature  int // feature index (Spline, Factor, and first axis of Tensor)
	Feature2 int // second feature (Tensor only)
	NumBasis int // basis size per axis; defaults: 12 (Spline), 6 (Tensor)
}

func (t TermSpec) withDefaults() TermSpec {
	if t.NumBasis == 0 {
		switch t.Kind {
		case Tensor:
			t.NumBasis = 6
		default:
			t.NumBasis = 12
		}
	}
	return t
}

// Label returns a human-readable identifier for the term given a feature
// namer.
func (t TermSpec) Label(name func(int) string) string {
	switch t.Kind {
	case Tensor:
		return fmt.Sprintf("te(%s,%s)", name(t.Feature), name(t.Feature2))
	case Factor:
		return fmt.Sprintf("factor(%s)", name(t.Feature))
	default:
		return fmt.Sprintf("s(%s)", name(t.Feature))
	}
}

// Spec declares the full GAM structure.
type Spec struct {
	Terms []TermSpec
	Link  Link // default Identity
}

// Options controls fitting.
type Options struct {
	// Lambdas is the GCV search grid for the shared smoothing parameter.
	// Default: 25 log-spaced values in [1e−4, 1e6].
	Lambdas []float64
	// MaxIRLS bounds the P-IRLS iterations for the logit link (default 25).
	MaxIRLS int
	// Tol is the relative deviance-change convergence threshold for
	// P-IRLS (default 1e-6).
	Tol float64
}

func (o Options) withDefaults() Options {
	if len(o.Lambdas) == 0 {
		o.Lambdas = LogSpace(1e-4, 1e6, 25)
	}
	if o.MaxIRLS == 0 {
		o.MaxIRLS = 25
	}
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
	return o
}

// LogSpace returns n logarithmically spaced values from lo to hi
// inclusive.
//
//lint:ignore obsspan trivial grid helper; n is a handful of exp calls
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		panic(fmt.Sprintf("gam: invalid LogSpace(%v, %v, %d)", lo, hi, n))
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := 0; i < n; i++ {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

func (s Spec) validate(numFeatures int) error {
	if len(s.Terms) == 0 {
		return fmt.Errorf("gam: spec has no terms")
	}
	if s.Link != Identity && s.Link != Logit {
		return fmt.Errorf("gam: unknown link %q", s.Link)
	}
	for i, t := range s.Terms {
		switch t.Kind {
		case Spline, Factor:
			if t.Feature < 0 || t.Feature >= numFeatures {
				return fmt.Errorf("gam: term %d feature %d out of range [0,%d)", i, t.Feature, numFeatures)
			}
		case Tensor:
			if t.Feature < 0 || t.Feature >= numFeatures || t.Feature2 < 0 || t.Feature2 >= numFeatures {
				return fmt.Errorf("gam: term %d tensor features (%d,%d) out of range", i, t.Feature, t.Feature2)
			}
			if t.Feature == t.Feature2 {
				return fmt.Errorf("gam: term %d tensor on a single feature", i)
			}
		default:
			return fmt.Errorf("gam: term %d has unknown kind %q", i, t.Kind)
		}
	}
	return nil
}
