package gam

import (
	"fmt"
	"math"

	"gef/internal/linalg"
)

// tensorNullPenalty is the relative identity shrinkage added to tensor
// penalty blocks (see penaltyMatrix).
const tensorNullPenalty = 0.05

// maxFactorLevels bounds factor-term width: a factor with thousands of
// levels is a mis-specified continuous column, and the resulting
// penalized system would be quadratically large.
const maxFactorLevels = 256

// builtTerm is a TermSpec bound to the training data: basis objects for
// splines/tensors, observed levels for factors, and its column range in
// the design matrix.
type builtTerm struct {
	spec   TermSpec
	bs     *bspline  // Spline and Tensor first axis
	bs2    *bspline  // Tensor second axis
	levels []float64 // Factor
	offset int       // first column (intercept occupies column 0)
	size   int       // number of columns
}

// design holds the built terms plus the cached sparse design rows; row i
// occupies idx/val[rowPtr[i]:rowPtr[i+1]].
type design struct {
	terms  []builtTerm
	p      int // total columns including the intercept
	n      int
	rowPtr []int32
	idx    []int32
	val    []float64
	colSum []float64 // per-column sums, for post-fit centering
}

// buildDesign binds the spec to the data and encodes every row sparsely.
// cache (nil allowed) memoizes the B-spline basis objects across fits.
func buildDesign(spec Spec, xs [][]float64, cache *BasisCache) (*design, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("gam: empty design data")
	}
	numFeatures := len(xs[0])
	if err := spec.validate(numFeatures); err != nil {
		return nil, err
	}
	d := &design{n: len(xs)}
	col := 1 // column 0 is the intercept
	nnzPerRow := 1
	for _, ts := range spec.Terms {
		ts = ts.withDefaults()
		bt := builtTerm{spec: ts, offset: col}
		switch ts.Kind {
		case Spline:
			lo, hi := columnRange(xs, ts.Feature)
			// Identifiability cap: a spline with more basis functions
			// than the column has distinct support points is singular
			// along the unsupported directions, which blows up the
			// Bayesian intervals. D* columns are discrete (domain
			// points), so this bites in practice.
			if dc := distinctValues(xs, ts.Feature, ts.NumBasis+1); dc-1 < ts.NumBasis {
				ts.NumBasis = dc - 1
				if ts.NumBasis < degree+1 {
					ts.NumBasis = degree + 1
				}
				bt.spec = ts
			}
			bs, err := basisCached(cache, ts.NumBasis, lo, hi)
			if err != nil {
				return nil, err
			}
			bt.bs = bs
			bt.size = ts.NumBasis
			nnzPerRow += degree + 1
		case Factor:
			colVals := make([]float64, len(xs))
			for i, row := range xs {
				colVals[i] = row[ts.Feature]
			}
			bt.levels = factorLevels(colVals)
			if len(bt.levels) > maxFactorLevels {
				return nil, fmt.Errorf(
					"gam: factor term on feature %d has %d levels (max %d); the column looks continuous — use a spline term",
					ts.Feature, len(bt.levels), maxFactorLevels)
			}
			bt.size = len(bt.levels)
			nnzPerRow++
		case Tensor:
			lo1, hi1 := columnRange(xs, ts.Feature)
			lo2, hi2 := columnRange(xs, ts.Feature2)
			bs1, err := basisCached(cache, ts.NumBasis, lo1, hi1)
			if err != nil {
				return nil, err
			}
			bs2, err := basisCached(cache, ts.NumBasis, lo2, hi2)
			if err != nil {
				return nil, err
			}
			bt.bs = bs1
			bt.bs2 = bs2
			bt.size = ts.NumBasis * ts.NumBasis
			nnzPerRow += (degree + 1) * (degree + 1)
		}
		col += bt.size
		d.terms = append(d.terms, bt)
	}
	d.p = col
	d.colSum = make([]float64, d.p)

	d.rowPtr = make([]int32, d.n+1)
	d.idx = make([]int32, 0, d.n*nnzPerRow)
	d.val = make([]float64, 0, d.n*nnzPerRow)
	idxBuf := make([]int, nnzPerRow)
	valBuf := make([]float64, nnzPerRow)
	for i, row := range xs {
		nnz := d.encodeRow(row, idxBuf, valBuf)
		for k := 0; k < nnz; k++ {
			d.idx = append(d.idx, int32(idxBuf[k]))
			d.val = append(d.val, valBuf[k])
			d.colSum[idxBuf[k]] += valBuf[k]
		}
		d.rowPtr[i+1] = int32(len(d.idx))
	}
	return d, nil
}

// encodeRow writes the sparse design entries of one input row into
// idxBuf/valBuf and returns the entry count. Entries appear in ascending
// column order (intercept first, then terms by offset).
func (d *design) encodeRow(row []float64, idxBuf []int, valBuf []float64) int {
	n := 0
	idxBuf[n], valBuf[n] = 0, 1 // intercept
	n++
	var sv [degree + 1]float64
	var sv2 [degree + 1]float64
	for ti := range d.terms {
		bt := &d.terms[ti]
		switch bt.spec.Kind {
		case Spline:
			first := bt.bs.evaluate(row[bt.spec.Feature], sv[:])
			for k := 0; k <= degree; k++ {
				idxBuf[n], valBuf[n] = bt.offset+first+k, sv[k]
				n++
			}
		case Factor:
			if li := levelIndex(bt.levels, row[bt.spec.Feature]); li >= 0 {
				idxBuf[n], valBuf[n] = bt.offset+li, 1
				n++
			}
		case Tensor:
			f1 := bt.bs.evaluate(row[bt.spec.Feature], sv[:])
			f2 := bt.bs2.evaluate(row[bt.spec.Feature2], sv2[:])
			m2 := bt.spec.NumBasis
			for a := 0; a <= degree; a++ {
				base := bt.offset + (f1+a)*m2 + f2
				for b := 0; b <= degree; b++ {
					idxBuf[n], valBuf[n] = base+b, sv[a]*sv2[b]
					n++
				}
			}
		}
	}
	return n
}

// penaltyMatrix assembles the block-diagonal penalty S over all columns:
// zero for the intercept, second-difference for splines, identity for
// factors and a null-space-shrunk Kronecker-sum difference penalty for
// tensors (see penaltyBlock). cache (nil allowed) memoizes the blocks;
// blocks are only read here, so cached blocks stay pristine.
func (d *design) penaltyMatrix(cache *BasisCache) *linalg.Matrix {
	s := linalg.NewMatrix(d.p, d.p)
	for _, bt := range d.terms {
		var block *linalg.Matrix
		switch bt.spec.Kind {
		case Tensor:
			block = penaltyBlockCached(cache, Tensor, bt.spec.NumBasis)
		default:
			block = penaltyBlockCached(cache, bt.spec.Kind, bt.size)
		}
		for a := 0; a < bt.size; a++ {
			for b := 0; b < bt.size; b++ {
				if v := block.At(a, b); v != 0 {
					s.Set(bt.offset+a, bt.offset+b, v)
				}
			}
		}
	}
	return s
}

// row returns the sparse entries of cached row i.
func (d *design) row(i int) (idx []int32, val []float64) {
	lo, hi := d.rowPtr[i], d.rowPtr[i+1]
	return d.idx[lo:hi], d.val[lo:hi]
}

// rowDot computes the inner product of cached row i with the dense
// coefficient vector.
func (d *design) rowDot(i int, beta []float64) float64 {
	idx, val := d.row(i)
	var s float64
	for k, j := range idx {
		s += val[k] * beta[j]
	}
	return s
}

// distinctValues counts the distinct values of column j, stopping early
// once the count reaches cap (the caller only needs to know whether the
// column supports its basis size).
func distinctValues(xs [][]float64, j, cap int) int {
	seen := make(map[float64]struct{}, cap)
	for _, row := range xs {
		seen[row[j]] = struct{}{}
		if len(seen) >= cap {
			break
		}
	}
	return len(seen)
}

func columnRange(xs [][]float64, j int) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, row := range xs {
		v := row[j]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
