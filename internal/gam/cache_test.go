package gam

import (
	"bytes"
	"math/rand"
	"testing"
)

func cacheFixture() ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(77))
	n := 600
	xs := make([][]float64, n)
	y := make([]float64, n)
	for i := range xs {
		a, b := rng.Float64(), rng.Float64()
		xs[i] = []float64{a, b}
		y[i] = a*a + 0.5*b + 0.1*a*b
	}
	return xs, y
}

func cacheSpec() Spec {
	return Spec{Terms: []TermSpec{
		{Kind: Spline, Feature: 0},
		{Kind: Spline, Feature: 1},
		{Kind: Tensor, Feature: 0, Feature2: 1},
	}}
}

// TestBasisCacheBitwiseIdentical is the cache's core contract: fits
// through a cold cache, a warm cache and no cache at all serialize to
// the same bytes.
func TestBasisCacheBitwiseIdentical(t *testing.T) {
	xs, y := cacheFixture()
	opt := Options{Lambdas: []float64{0.1, 10}}
	bare, err := Fit(cacheSpec(), xs, y, opt)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	cache := NewBasisCache()
	var outs [][]byte
	for run := 0; run < 2; run++ {
		m, err := FitCache(t.Context(), cacheSpec(), xs, y, opt, cache)
		if err != nil {
			t.Fatalf("FitCache run %d: %v", run, err)
		}
		b, err := m.Marshal(true)
		if err != nil {
			t.Fatalf("marshal run %d: %v", run, err)
		}
		outs = append(outs, b)
	}
	ref, err := bare.Marshal(true)
	if err != nil {
		t.Fatalf("marshal bare: %v", err)
	}
	if !bytes.Equal(ref, outs[0]) {
		t.Error("cold cached fit differs from uncached fit")
	}
	if !bytes.Equal(ref, outs[1]) {
		t.Error("warm cached fit differs from uncached fit")
	}
	hits, misses := cache.Counters()
	if hits == 0 {
		t.Errorf("warm fit recorded no cache hits (misses = %d)", misses)
	}
	if misses == 0 {
		t.Error("cold fit recorded no cache misses")
	}
}

// TestBasisCacheSharesObjects checks memoization actually shares: the
// same (m, range) basis and (kind, m) block come back pointer-equal.
func TestBasisCacheSharesObjects(t *testing.T) {
	cache := NewBasisCache()
	b1, err := basisCached(cache, 8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := basisCached(cache, 8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Error("identical basis keys produced distinct objects")
	}
	if b3, _ := basisCached(cache, 8, 0, 2); b3 == b1 {
		t.Error("different range returned the same basis")
	}
	p1 := penaltyBlockCached(cache, Tensor, 6)
	p2 := penaltyBlockCached(cache, Tensor, 6)
	if p1 != p2 {
		t.Error("identical penalty keys produced distinct blocks")
	}
	if penaltyBlockCached(cache, Spline, 6) == p1 {
		t.Error("kinds share a penalty block")
	}
}

// TestPenaltyBlockTensorNullSpace: cached tensor blocks must already
// carry the null-space shrinkage (they are shared read-only, so the
// shrinkage cannot be applied after the fact).
func TestPenaltyBlockTensorNullSpace(t *testing.T) {
	m := 4
	plain := kroneckerSum(secondDiffPenalty(m), secondDiffPenalty(m))
	shrunk := penaltyBlock(Tensor, m)
	for i := 0; i < plain.Rows; i++ {
		want := plain.At(i, i) + tensorNullPenalty
		if got := shrunk.At(i, i); got != want {
			t.Fatalf("diagonal %d: got %v, want %v", i, got, want)
		}
	}
}
