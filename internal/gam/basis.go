// Package gam implements the explanation model of the GEF framework
// (§3.1, §3.5): a Generalized Additive Model with penalized cubic
// B-spline (P-spline) univariate terms, factor terms for categorical
// features, and tensor-product interaction terms. Smoothing is controlled
// by a single penalty coefficient λ shared across terms (as the paper
// prescribes) chosen by Generalized Cross Validation; identity and logit
// links cover regression and classification forests. Fitted terms expose
// their curves with Bayesian credible intervals in the sense of Wood
// (2006).
package gam

import (
	"fmt"
	"math"
	"sort"

	"gef/internal/linalg"
)

// degree of the splines: cubic, so derivatives are continuous up to
// order 2 as in the paper's definition.
const degree = 3

// bspline is a uniform cubic B-spline basis of m functions over [lo, hi].
type bspline struct {
	m     int
	lo    float64
	hi    float64
	knots []float64 // m+degree+1 uniform knots, knots[degree] = lo
}

// newBSpline builds a uniform cubic B-spline basis with m ≥ 4 functions
// whose m−degree interior segments cover [lo, hi].
func newBSpline(m int, lo, hi float64) (*bspline, error) {
	if m < degree+1 {
		return nil, fmt.Errorf("gam: need ≥ %d basis functions, got %d", degree+1, m)
	}
	if !(hi > lo) {
		// Degenerate feature (single observed value): widen artificially
		// so the basis stays well defined.
		span := math.Max(1, math.Abs(lo)) * 1e-3
		lo, hi = lo-span, lo+span
	}
	h := (hi - lo) / float64(m-degree)
	knots := make([]float64, m+degree+1)
	for i := range knots {
		knots[i] = lo + float64(i-degree)*h
	}
	return &bspline{m: m, lo: lo, hi: hi, knots: knots}, nil
}

// evaluate computes the degree+1 non-zero basis values at x, clamped into
// [lo, hi]. It returns the index of the first active basis function and
// fills vals[0:degree+1] (vals must have length ≥ degree+1).
func (b *bspline) evaluate(x float64, vals []float64) int {
	if x < b.lo {
		x = b.lo
	}
	if x > b.hi {
		x = b.hi
	}
	// Knot span s with knots[s] ≤ x < knots[s+1], s ∈ [degree, m−1].
	h := b.knots[degree+1] - b.knots[degree]
	s := degree + int((x-b.lo)/h)
	if s > b.m-1 {
		s = b.m - 1
	}
	// Cox–de Boor triangular scheme (de Boor's algorithm for basis values).
	var left, right [degree + 1]float64
	vals[0] = 1
	for j := 1; j <= degree; j++ {
		left[j] = x - b.knots[s+1-j]
		right[j] = b.knots[s+j] - x
		saved := 0.0
		for r := 0; r < j; r++ {
			tmp := vals[r] / (right[r+1] + left[j-r])
			vals[r] = saved + right[r+1]*tmp
			saved = left[j-r] * tmp
		}
		vals[j] = saved
	}
	return s - degree
}

// secondDiffPenalty returns the P-spline second-order difference penalty
// S = DᵀD for m coefficients, the discrete analogue of the paper's
// ∫ s″(x)² dx roughness penalty.
func secondDiffPenalty(m int) *linalg.Matrix {
	s := linalg.NewMatrix(m, m)
	for r := 0; r+2 < m; r++ {
		// Row of D: coefficients (1, −2, 1) at positions r, r+1, r+2.
		idx := [3]int{r, r + 1, r + 2}
		c := [3]float64{1, -2, 1}
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				s.Add(idx[a], idx[b], c[a]*c[b])
			}
		}
	}
	return s
}

// identityPenalty returns I_m, the ridge penalty used for factor terms.
func identityPenalty(m int) *linalg.Matrix {
	s := linalg.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		s.Set(i, i, 1)
	}
	return s
}

// kroneckerSum returns S₁ ⊗ I_n + I_m ⊗ S₂ for the tensor-product
// penalty, where S₁ is m×m and S₂ is n×n.
func kroneckerSum(s1, s2 *linalg.Matrix) *linalg.Matrix {
	m, n := s1.Rows, s2.Rows
	out := linalg.NewMatrix(m*n, m*n)
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			v := s1.At(a, b)
			if v == 0 {
				continue
			}
			for k := 0; k < n; k++ {
				out.Add(a*n+k, b*n+k, v)
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			v := s2.At(a, b)
			if v == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				out.Add(k*n+a, k*n+b, v)
			}
		}
	}
	return out
}

// factorLevels extracts the sorted distinct values of a column, which
// become the levels of a factor term.
func factorLevels(col []float64) []float64 {
	s := append([]float64(nil), col...)
	sort.Float64s(s)
	out := s[:0]
	for i, v := range s {
		//lint:ignore floatcmp dedupe of sorted raw data; equal levels are bit-identical copies
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return append([]float64(nil), out...)
}

// levelIndex finds the index of v among sorted levels, or -1 if v is not
// an observed level (treated as contributing zero, i.e. the average).
func levelIndex(levels []float64, v float64) int {
	i := sort.SearchFloat64s(levels, v)
	//lint:ignore floatcmp exact membership: levels are bit-identical copies of observed data values
	if i < len(levels) && levels[i] == v {
		return i
	}
	return -1
}

// nearestLevel maps v to the closest observed level (ties to the lower
// level). Factor levels learned from D* are sampling-domain points (e.g.
// {0.45, 0.55} around a one-hot split at 0.5), so prediction-time inputs
// (0 or 1) rarely match exactly; each level represents a cell of the
// forest's partition, and any value in that cell takes the level's
// effect.
func nearestLevel(levels []float64, v float64) int {
	if len(levels) == 0 {
		return -1
	}
	i := sort.SearchFloat64s(levels, v)
	switch {
	case i == 0:
		return 0
	case i == len(levels):
		return len(levels) - 1
	}
	if v-levels[i-1] <= levels[i]-v {
		return i - 1
	}
	return i
}
