package gam

import (
	"context"
	"fmt"
	"math"
	"sync"

	"gef/internal/linalg"
	"gef/internal/obs"
	"gef/internal/par"
	"gef/internal/robust"
)

// Metrics instruments (hoisted; see internal/obs).
var (
	mGCVEvals  = obs.Metrics().Counter("gam.gcv_evals")
	mIRLSIters = obs.Metrics().Histogram("gam.pirls_iters")
	mIRLSDelta = obs.Metrics().Histogram("gam.pirls_delta")
	mFits      = obs.Metrics().Counter("gam.fits")
	// mNumWarn counts numerical-conditioning warnings, labeled by kind
	// (negative_rss clamps, nonpositive_gcv_denominator, pirls_diverged).
	// A non-zero series in -metrics-out means some λ evaluations ran on
	// the edge of ill-conditioning even if the chosen fit is healthy.
	mNumWarn = obs.Metrics().CounterVec("gam.numerical_warnings", "kind")
)

// ridgeScale is the small unconditional ridge added to every penalized
// (non-intercept) diagonal entry, relative to the mean diagonal of XᵀX.
// B-spline bases sum to one, so each spline term's column space contains
// the constant vector already spanned by the intercept; the ridge makes
// the penalized normal equations strictly positive definite without
// visibly perturbing the fit (the redundancy is reassigned to the
// intercept during post-fit centering).
const ridgeScale = 1e-7

// FitReport summarizes the smoothing-parameter search.
type FitReport struct {
	Lambda  float64   // chosen smoothing parameter
	GCV     float64   // its GCV score
	EDF     float64   // effective degrees of freedom at the optimum
	Scale   float64   // estimated dispersion (σ² for identity link)
	Lambdas []float64 // searched grid
	GCVs    []float64 // per-grid GCV scores
	IRLS    int       // P-IRLS iterations at the chosen λ (logit only)
	// DevExplained is the fraction of (working) deviance the model
	// explains at the optimum: 1 − RSS/TSS for the identity link,
	// computed on the weighted working model for logit.
	DevExplained float64
}

// Model is a fitted GAM.
type Model struct {
	spec      Spec
	design    *design // term metadata (cached rows are released after fit)
	beta      []float64
	termMeans []float64 // training-mean of each term's contribution
	colMeans  []float64 // training column means of the design matrix
	intercept float64   // centered intercept α (terms have mean 0)
	chol      *linalg.Cholesky
	report    FitReport
}

// Fit fits the GAM described by spec to (xs, y), choosing the shared
// smoothing parameter λ by GCV. Identity link: direct penalized least
// squares on sufficient statistics. Logit link: penalized IRLS per λ with
// GCV on the converged working model.
func Fit(spec Spec, xs [][]float64, y []float64, opt Options) (*Model, error) {
	return FitCtx(context.Background(), spec, xs, y, opt)
}

// FitCtx is Fit with context propagation: the fit runs under a gam.fit
// span carrying the design-matrix dimensions, with one gam.gcv child
// span per λ-grid evaluation (λ, GCV, EDF, and P-IRLS iterations for the
// logit link).
func FitCtx(ctx context.Context, spec Spec, xs [][]float64, y []float64, opt Options) (*Model, error) {
	return FitCache(ctx, spec, xs, y, opt, nil)
}

// FitCache is FitCtx with an explicit basis cache: the B-spline bases
// and penalty blocks the fit needs are taken from (and added to) cache
// instead of being rebuilt. The cache changes cost only, never results —
// cached objects are bit-identical to freshly built ones — so a warm fit
// is bitwise equal to a cold one. A nil cache degrades to FitCtx.
func FitCache(ctx context.Context, spec Spec, xs [][]float64, y []float64, opt Options, cache *BasisCache) (*Model, error) {
	if spec.Link == "" {
		spec.Link = Identity
	}
	opt = opt.withDefaults()
	ctx, sp := obs.Start(ctx, "gam.fit",
		obs.Str("link", string(spec.Link)),
		obs.Int("terms", len(spec.Terms)),
		obs.Int("rows", len(xs)),
		obs.Int("lambda_grid", len(opt.Lambdas)))
	defer sp.End()
	mFits.Inc()
	if len(xs) != len(y) {
		return nil, fmt.Errorf("gam: %d rows but %d targets", len(xs), len(y))
	}
	d, err := buildDesign(spec, xs, cache)
	if err != nil {
		return nil, err
	}
	sp.Set(obs.Int("cols", d.p))
	if d.n <= d.p {
		// ErrNumerical (not a plain error) so the structural degradation
		// ladder in core reacts by shrinking the spline bases.
		return nil, fmt.Errorf("gam: %d rows for %d coefficients; need more data: %w",
			d.n, d.p, robust.ErrNumerical)
	}
	if spec.Link == Logit {
		for _, v := range y {
			if v < 0 || v > 1 {
				return nil, fmt.Errorf("gam: logit link requires targets in [0,1], found %v", v)
			}
		}
	}

	s := d.penaltyMatrix(cache)
	// fitKey identifies this fit invocation to the fault injector
	// (robust.ScopeFit ordinal). FitCtx calls are sequential within a
	// pipeline, so the ordinal — and with it every injection decision —
	// is deterministic.
	fitKey := robust.Ordinal(robust.ScopeFit)
	var m *Model
	if spec.Link == Identity {
		m, err = fitGaussian(ctx, spec, d, s, y, opt, fitKey)
	} else {
		m, err = fitLogit(ctx, spec, d, s, y, opt, fitKey)
	}
	if err != nil {
		return nil, err
	}
	sp.Set(obs.F64("lambda", m.report.Lambda), obs.F64("gcv", m.report.GCV),
		obs.F64("edf", m.report.EDF))
	m.center(d)
	// Release the cached rows; term metadata stays for prediction.
	d.rowPtr, d.idx, d.val = nil, nil, nil
	return m, nil
}

// normalChunks is the fixed shard count for XᵀWX accumulation. Each
// shard carries a p×p partial matrix, so the count is kept well below
// par.DefaultChunks; it must stay a constant (never derived from the
// worker count) because shard boundaries fix the summation order.
const normalChunks = 8

// normalEq is one shard's partial normal-equation state.
type normalEq struct {
	xtx *linalg.Matrix
	xtz []float64
	ztz float64
}

// accumulateNormal builds XᵀWX (upper triangle) and XᵀWz from the cached
// rows with per-row weights w and responses z (pass w = nil for unit
// weights). Rows are sharded into normalChunks fixed row ranges whose
// partial matrices are summed in shard order, so the result is bitwise
// identical at any worker count. It returns XᵀWX symmetrized, XᵀWz and
// zᵀWz, or ctx.Err() on cancellation.
func accumulateNormal(ctx context.Context, d *design, w, z []float64) (*linalg.Matrix, []float64, float64, error) {
	p := d.p
	acc, err := par.MapReduce(ctx, d.n, normalChunks,
		func(_, lo, hi int) normalEq {
			eq := normalEq{xtx: linalg.NewMatrix(p, p), xtz: make([]float64, p)}
			data := eq.xtx.Data
			for i := lo; i < hi; i++ {
				idx, val := d.row(i)
				wi := 1.0
				if w != nil {
					wi = w[i]
				}
				zi := z[i]
				eq.ztz += wi * zi * zi
				wzi := wi * zi
				for a, ja := range idx {
					va := val[a]
					wva := wi * va
					eq.xtz[ja] += wzi * va
					rowBase := int(ja) * p
					for b := a; b < len(idx); b++ {
						jb := idx[b]
						if jb >= ja {
							data[rowBase+int(jb)] += wva * val[b]
						} else {
							data[int(jb)*p+int(ja)] += wva * val[b]
						}
					}
				}
			}
			return eq
		},
		func(a, b normalEq) normalEq {
			a.xtx.AddScaled(1, b.xtx)
			for j := range a.xtz {
				a.xtz[j] += b.xtz[j]
			}
			a.ztz += b.ztz
			return a
		})
	if err != nil {
		return nil, nil, 0, err
	}
	acc.xtx.SymmetrizeFromUpper()
	return acc.xtx, acc.xtz, acc.ztz, nil
}

// systemPool recycles the scratch matrices holding XᵀWX + λS between
// λ-grid evaluations (the λ loop used to Clone() the full p×p matrix
// per grid point). FactorizeSPD copies its input into the Cholesky's
// own storage, so a scratch matrix can be reused — or returned to the
// pool — the moment factorization returns.
type systemPool struct {
	pool sync.Pool
	p    int
}

func newSystemPool(p int) *systemPool {
	sp := &systemPool{p: p}
	sp.pool.New = func() any { return linalg.NewMatrix(p, p) }
	return sp
}

func (sp *systemPool) get() *linalg.Matrix  { return sp.pool.Get().(*linalg.Matrix) }
func (sp *systemPool) put(m *linalg.Matrix) { sp.pool.Put(m) }

// penalizedSystemInto overwrites dst with XᵀWX + λS plus the stabilizing
// ridge on non-intercept diagonal entries, and returns dst. Every entry
// of dst is written, so stale scratch contents cannot leak through.
// extraRidge (relative to the mean diagonal, like ridgeScale) is the
// numerical-recovery ladder's escalation knob; 0 for a first attempt.
func penalizedSystemInto(dst, xtx, s *linalg.Matrix, lambda, extraRidge float64) *linalg.Matrix {
	copy(dst.Data, xtx.Data)
	dst.AddScaled(lambda, s)
	var meanDiag float64
	for i := 0; i < xtx.Rows; i++ {
		meanDiag += xtx.At(i, i)
	}
	meanDiag /= float64(xtx.Rows)
	if meanDiag <= 0 {
		meanDiag = 1
	}
	r := (ridgeScale + extraRidge) * meanDiag
	for i := 1; i < dst.Rows; i++ {
		dst.Add(i, i, r)
	}
	return dst
}

// ridgeLadder is the numerical recovery schedule: when the penalized
// system fails to factorize, the assembly is retried with these extra
// relative ridges in order (the first entry, 0, is the ordinary
// attempt). Bounded at 1e-3 — beyond that the system is declared
// numerically hopeless for this λ and the grid moves on.
var ridgeLadder = [...]float64{0, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3}

// factorizeRecover assembles and factorizes XᵀWX + λS, walking the
// ridge ladder on failure. It returns the factor and the extra ridge
// that succeeded (0 = clean first attempt; > 0 increments the
// robust.recoveries counter), or the last factorization error with the
// robust.ErrNumerical sentinel attached. scratch is overwritten.
// robust.SiteCholesky injection, keyed by the fit ordinal with the
// attempt's ridge as the level, forces failures here.
func factorizeRecover(scratch, xtx, s *linalg.Matrix, lambda float64, fitKey int) (*linalg.Cholesky, float64, error) {
	var lastErr error
	for _, r := range ridgeLadder {
		if robust.Fire(robust.SiteCholesky, fitKey, r) {
			lastErr = linalg.ErrNotPositiveDefinite
			continue
		}
		a := penalizedSystemInto(scratch, xtx, s, lambda, r)
		ch, err := linalg.FactorizeSPD(a)
		if err == nil {
			if r > 0 {
				robust.Recovered()
			}
			return ch, r, nil
		}
		lastErr = err
	}
	return nil, 0, fmt.Errorf("factorizing penalized system (λ=%g, ridge ladder exhausted): %w: %w",
		lambda, robust.ErrNumerical, lastErr)
}

// gcvResult is the outcome of one λ-grid evaluation, computed in
// parallel and selected over serially in grid order. ridge and rawRSS
// feed the serial reporting pass: events and the numerical-warning
// counter are driven there, in grid order, so traces and metric values
// are deterministic at any worker count.
type gcvResult struct {
	ok     bool
	skip   string  // reason when !ok
	ridge  float64 // extra ridge the recovery ladder needed (0 = clean)
	rawRSS float64 // RSS before the non-negativity clamp
	raw    float64 // raw value behind a skip/warning (denominator, RSS)
	gcv    float64
	edf    float64
	rss    float64
	beta   []float64
	chol   *linalg.Cholesky
}

func fitGaussian(ctx context.Context, spec Spec, d *design, s *linalg.Matrix, y []float64, opt Options, fitKey int) (*Model, error) {
	_, asp := obs.Start(ctx, "gam.normal_equations", obs.Int("rows", d.n),
		obs.Int("cols", d.p), obs.Int("workers", par.Workers()))
	xtx, xty, yty, err := accumulateNormal(ctx, d, nil, y)
	asp.End()
	if err != nil {
		return nil, err
	}
	n := float64(d.n)

	// Every λ on the grid is an independent Cholesky solve against the
	// same sufficient statistics, so the grid is evaluated in parallel
	// (one chunk per λ) into a results slice; span events, the GCV trace
	// and the best-λ selection happen serially afterwards, in grid
	// order, so traces and tie-breaking are deterministic.
	sysPool := newSystemPool(d.p)
	results := make([]gcvResult, len(opt.Lambdas))
	gridErr := par.For(ctx, len(opt.Lambdas), len(opt.Lambdas), func(g, _, _ int) {
		mGCVEvals.Inc()
		a := sysPool.get()
		ch, ridge, ferr := factorizeRecover(a, xtx, s, opt.Lambdas[g], fitKey)
		sysPool.put(a) // FactorizeSPD copied a; safe to recycle now
		if ferr != nil {
			results[g] = gcvResult{skip: "factorization failed"}
			return // skip numerically hopeless λ
		}
		beta := ch.Solve(xty)
		edf := ch.TraceSolve(xtx)
		rawRSS := yty - 2*linalg.Dot(beta, xty) + quadForm(xtx, beta)
		rss := rawRSS
		if rss < 0 {
			rss = 0
		}
		denom := n - edf
		if denom <= 0 {
			results[g] = gcvResult{skip: "edf exceeds n", raw: denom, ridge: ridge}
			return
		}
		results[g] = gcvResult{
			ok:     true,
			ridge:  ridge,
			rawRSS: rawRSS,
			gcv:    n * rss / (denom * denom),
			edf:    edf,
			rss:    rss,
			beta:   beta,
			chol:   ch,
		}
	})
	if gridErr != nil {
		return nil, robust.CtxErr(gridErr)
	}

	sp := obs.FromContext(ctx)
	best := FitReport{GCV: math.Inf(1)}
	var bestBeta []float64
	var bestChol *linalg.Cholesky
	for g, lambda := range opt.Lambdas {
		r := results[g]
		if r.ridge > 0 {
			// The recovery ladder rescued this λ; surface the escalation
			// instead of hiding it behind a clean GCV trace.
			sp.Event("gam.recovery", obs.Str("action", robust.ActionRidgeEscalation),
				obs.F64("lambda", lambda), obs.F64("ridge", r.ridge))
		}
		if !r.ok {
			if r.skip == "edf exceeds n" {
				// A non-positive GCV denominator means the effective
				// degrees of freedom swallowed the sample — severe
				// ill-conditioning, not a normal grid miss.
				mNumWarn.With("nonpositive_gcv_denominator").Inc()
				sp.Event("gam.numerical_warning", obs.Str("kind", "nonpositive_gcv_denominator"),
					obs.F64("lambda", lambda), obs.F64("raw", r.raw))
			}
			sp.Event("gam.gcv", obs.F64("lambda", lambda), obs.Str("skip", r.skip))
			continue
		}
		if r.rawRSS < 0 {
			// A negative RSS from the sufficient-statistics identity is
			// cancellation error: the clamp keeps GCV defined, but the
			// raw magnitude is the conditioning signal.
			mNumWarn.With("negative_rss").Inc()
			sp.Event("gam.numerical_warning", obs.Str("kind", "negative_rss"),
				obs.F64("lambda", lambda), obs.F64("raw", r.rawRSS))
		}
		sp.Event("gam.gcv", obs.F64("lambda", lambda), obs.F64("gcv", r.gcv), obs.F64("edf", r.edf))
		best.Lambdas = append(best.Lambdas, lambda)
		best.GCVs = append(best.GCVs, r.gcv)
		if r.gcv < best.GCV {
			best.GCV = r.gcv
			best.Lambda = lambda
			best.EDF = r.edf
			best.Scale = r.rss / (n - r.edf)
			bestBeta = r.beta
			bestChol = r.chol
		}
	}
	if bestBeta == nil {
		return nil, fmt.Errorf("gam: no λ in the grid produced a solvable system: %w", robust.ErrNumerical)
	}
	// Deviance explained: 1 − RSS/TSS at the optimum.
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= n
	tss := yty - n*mean*mean
	if tss > 0 {
		rss := yty - 2*linalg.Dot(bestBeta, xty) + quadForm(xtx, bestBeta)
		if rss < 0 {
			rss = 0
		}
		best.DevExplained = 1 - rss/tss
	}
	return &Model{spec: spec, design: d, beta: bestBeta, chol: bestChol, report: best}, nil
}

// maxHalvings bounds the P-IRLS step-halving recovery: a step whose
// deviance still increases after this many halvings toward the previous
// iterate is declared divergent and the λ is skipped.
const maxHalvings = 3

func fitLogit(ctx context.Context, spec Spec, d *design, s *linalg.Matrix, y []float64, opt Options, fitKey int) (*Model, error) {
	n := float64(d.n)
	best := FitReport{GCV: math.Inf(1)}
	var bestBeta []float64
	var bestChol *linalg.Cholesky

	eta := make([]float64, d.n)
	w := make([]float64, d.n)
	z := make([]float64, d.n)
	// The λ loop itself stays serial (each grid point is a full P-IRLS
	// run; the parallelism lives inside the iteration's row loops), so a
	// single scratch matrix serves every λ and every iteration.
	scratch := linalg.NewMatrix(d.p, d.p)
	for _, lambda := range opt.Lambdas {
		_, lsp := obs.Start(ctx, "gam.gcv", obs.F64("lambda", lambda),
			obs.Int("workers", par.Workers()))
		mGCVEvals.Inc()
		// Warm-startable P-IRLS; initialize from the data each time for
		// reproducibility across grids.
		for i, yi := range y {
			mu := 0.5*yi + 0.25
			eta[i] = math.Log(mu / (1 - mu))
		}
		var beta []float64
		var ch *linalg.Cholesky
		var edf, wrss, lastDelta float64
		prevDev := math.Inf(1)
		prevBeta := make([]float64, d.p)
		iters := 0
		diverged := false
		// evalDev updates eta for candidate b and returns the binomial
		// deviance; disjoint eta rows, chunk-ordered fold — bitwise-stable.
		// robust.SiteIRLS injection (level = it + 0.25·halvings) replaces
		// the result with a spurious increase to force the divergence
		// recovery path.
		evalDev := func(b []float64, it, halvings int) (float64, error) {
			dev, err := par.MapReduce(ctx, d.n, 0,
				func(_, lo, hi int) float64 {
					var chunkDev float64
					for i := lo; i < hi; i++ {
						eta[i] = d.rowDot(i, b)
						chunkDev += binomialDeviance(y[i], sigmoid(eta[i]))
					}
					return chunkDev
				},
				func(a, b float64) float64 { return a + b })
			if err != nil {
				return 0, err
			}
			if !math.IsInf(prevDev, 1) &&
				robust.Fire(robust.SiteIRLS, fitKey, float64(it)+0.25*float64(halvings)) {
				dev = math.Abs(prevDev)*2 + 1
			}
			return dev, nil
		}
		for it := 0; it < opt.MaxIRLS; it++ {
			iters = it + 1
			// Reweighting writes disjoint rows of w/z — parallel over
			// fixed row chunks.
			if err := par.For(ctx, d.n, 0, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					mu := sigmoid(eta[i])
					// Clamp fitted probabilities away from 0/1 so the working
					// weights stay bounded and extreme rows cannot dominate
					// the working RSS.
					if mu < 1e-5 {
						mu = 1e-5
					} else if mu > 1-1e-5 {
						mu = 1 - 1e-5
					}
					wi := mu * (1 - mu)
					w[i] = wi
					z[i] = eta[i] + (y[i]-mu)/wi
				}
			}); err != nil {
				lsp.End()
				return nil, robust.CtxErr(err)
			}
			xtwx, xtwz, _, accErr := accumulateNormal(ctx, d, w, z)
			if accErr != nil {
				lsp.End()
				return nil, robust.CtxErr(accErr)
			}
			var ridge float64
			var err error
			ch, ridge, err = factorizeRecover(scratch, xtwx, s, lambda, fitKey)
			if err != nil {
				ch = nil
				break
			}
			if ridge > 0 {
				lsp.Event("gam.recovery", obs.Str("action", robust.ActionRidgeEscalation),
					obs.F64("ridge", ridge), obs.Int("iter", it))
			}
			cand := ch.Solve(xtwz)
			dev, devErr := evalDev(cand, it, 0)
			if devErr != nil {
				lsp.End()
				return nil, robust.CtxErr(devErr)
			}
			// Divergence recovery: a step that increases the deviance is
			// halved toward the previous iterate (Wood 2006 §3.2.2-style
			// step control) before the λ is given up on.
			halvings := 0
			for dev > prevDev && halvings < maxHalvings {
				halvings++
				for j := range cand {
					cand[j] = 0.5 * (cand[j] + prevBeta[j])
				}
				dev, devErr = evalDev(cand, it, halvings)
				if devErr != nil {
					lsp.End()
					return nil, robust.CtxErr(devErr)
				}
			}
			if halvings > 0 {
				if dev > prevDev {
					diverged = true
					mNumWarn.With("pirls_diverged").Inc()
					lsp.Event("gam.numerical_warning", obs.Str("kind", "pirls_diverged"),
						obs.Int("iter", it), obs.F64("raw", dev), obs.F64("prev_dev", prevDev))
					break
				}
				robust.Recovered()
				lsp.Event("gam.recovery", obs.Str("action", robust.ActionStepHalving),
					obs.Int("iter", it), obs.Int("halvings", halvings))
			}
			beta = cand
			copy(prevBeta, beta)
			lastDelta = math.Abs(prevDev - dev)
			if lastDelta < opt.Tol*(math.Abs(dev)+1) {
				edf = ch.TraceSolve(xtwx)
				wrss = weightedRSS(d, w, z, beta)
				break
			}
			prevDev = dev
			if it == opt.MaxIRLS-1 {
				edf = ch.TraceSolve(xtwx)
				wrss = weightedRSS(d, w, z, beta)
			}
		}
		mIRLSIters.Observe(float64(iters))
		if !math.IsInf(lastDelta, 0) {
			mIRLSDelta.Observe(lastDelta)
		}
		if diverged {
			lsp.Set(obs.Str("skip", "pirls diverged"))
			lsp.End()
			continue
		}
		if ch == nil || beta == nil {
			lsp.Set(obs.Str("skip", "factorization failed"))
			lsp.End()
			continue
		}
		denom := n - edf
		if denom <= 0 {
			mNumWarn.With("nonpositive_gcv_denominator").Inc()
			lsp.Event("gam.numerical_warning", obs.Str("kind", "nonpositive_gcv_denominator"),
				obs.F64("raw", denom))
			lsp.Set(obs.Str("skip", "edf exceeds n"))
			lsp.End()
			continue
		}
		gcv := n * wrss / (denom * denom)
		lsp.Set(obs.F64("gcv", gcv), obs.F64("edf", edf),
			obs.Int("irls_iters", iters), obs.F64("dev_delta", lastDelta))
		lsp.End()
		best.Lambdas = append(best.Lambdas, lambda)
		best.GCVs = append(best.GCVs, gcv)
		if gcv < best.GCV {
			best.GCV = gcv
			best.Lambda = lambda
			best.EDF = edf
			best.Scale = wrss / denom
			best.IRLS = iters
			bestBeta = beta
			bestChol = ch
		}
	}
	if bestBeta == nil {
		return nil, fmt.Errorf("gam: P-IRLS failed for every λ in the grid: %w", robust.ErrNumerical)
	}
	// Binomial dispersion is 1 by GLM convention (as in pyGAM/mgcc);
	// the working-residual estimate only drives the GCV comparison.
	best.Scale = 1
	return &Model{spec: spec, design: d, beta: bestBeta, chol: bestChol, report: best}, nil
}

func weightedRSS(d *design, w, z, beta []float64) float64 {
	var rss float64
	for i := 0; i < d.n; i++ {
		r := z[i] - d.rowDot(i, beta)
		rss += w[i] * r * r
	}
	return rss
}

// binomialDeviance is the deviance contribution of one observation,
// generalized to fractional targets (distillation probabilities).
func binomialDeviance(y, mu float64) float64 {
	const eps = 1e-12
	mu = math.Min(math.Max(mu, eps), 1-eps)
	var dev float64
	if y > 0 {
		dev += y * math.Log(y/mu)
	}
	if y < 1 {
		dev += (1 - y) * math.Log((1-y)/(1-mu))
	}
	return 2 * dev
}

// quadForm computes βᵀ M β.
func quadForm(m *linalg.Matrix, beta []float64) float64 {
	return linalg.Dot(beta, linalg.MulVec(m, beta))
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// center converts the fitted (uncentered) parameterization into the
// paper's E[s_j] = 0 form: each term's training-mean contribution moves
// into the intercept.
func (m *Model) center(d *design) {
	m.termMeans = make([]float64, len(d.terms))
	m.intercept = m.beta[0]
	n := float64(d.n)
	m.colMeans = make([]float64, len(d.colSum))
	for c, s := range d.colSum {
		m.colMeans[c] = s / n
	}
	for ti, bt := range d.terms {
		var mean float64
		for c := 0; c < bt.size; c++ {
			mean += m.colMeans[bt.offset+c] * m.beta[bt.offset+c]
		}
		m.termMeans[ti] = mean
		m.intercept += mean
	}
}
