package gam

import (
	"context"
	"fmt"
	"math"
	"sync"

	"gef/internal/linalg"
	"gef/internal/obs"
	"gef/internal/par"
)

// Metrics instruments (hoisted; see internal/obs).
var (
	mGCVEvals  = obs.Metrics().Counter("gam.gcv_evals")
	mIRLSIters = obs.Metrics().Histogram("gam.pirls_iters")
	mIRLSDelta = obs.Metrics().Histogram("gam.pirls_delta")
	mFits      = obs.Metrics().Counter("gam.fits")
)

// ridgeScale is the small unconditional ridge added to every penalized
// (non-intercept) diagonal entry, relative to the mean diagonal of XᵀX.
// B-spline bases sum to one, so each spline term's column space contains
// the constant vector already spanned by the intercept; the ridge makes
// the penalized normal equations strictly positive definite without
// visibly perturbing the fit (the redundancy is reassigned to the
// intercept during post-fit centering).
const ridgeScale = 1e-7

// FitReport summarizes the smoothing-parameter search.
type FitReport struct {
	Lambda  float64   // chosen smoothing parameter
	GCV     float64   // its GCV score
	EDF     float64   // effective degrees of freedom at the optimum
	Scale   float64   // estimated dispersion (σ² for identity link)
	Lambdas []float64 // searched grid
	GCVs    []float64 // per-grid GCV scores
	IRLS    int       // P-IRLS iterations at the chosen λ (logit only)
	// DevExplained is the fraction of (working) deviance the model
	// explains at the optimum: 1 − RSS/TSS for the identity link,
	// computed on the weighted working model for logit.
	DevExplained float64
}

// Model is a fitted GAM.
type Model struct {
	spec      Spec
	design    *design // term metadata (cached rows are released after fit)
	beta      []float64
	termMeans []float64 // training-mean of each term's contribution
	colMeans  []float64 // training column means of the design matrix
	intercept float64   // centered intercept α (terms have mean 0)
	chol      *linalg.Cholesky
	report    FitReport
}

// Fit fits the GAM described by spec to (xs, y), choosing the shared
// smoothing parameter λ by GCV. Identity link: direct penalized least
// squares on sufficient statistics. Logit link: penalized IRLS per λ with
// GCV on the converged working model.
func Fit(spec Spec, xs [][]float64, y []float64, opt Options) (*Model, error) {
	return FitCtx(context.Background(), spec, xs, y, opt)
}

// FitCtx is Fit with context propagation: the fit runs under a gam.fit
// span carrying the design-matrix dimensions, with one gam.gcv child
// span per λ-grid evaluation (λ, GCV, EDF, and P-IRLS iterations for the
// logit link).
func FitCtx(ctx context.Context, spec Spec, xs [][]float64, y []float64, opt Options) (*Model, error) {
	if spec.Link == "" {
		spec.Link = Identity
	}
	opt = opt.withDefaults()
	ctx, sp := obs.Start(ctx, "gam.fit",
		obs.Str("link", string(spec.Link)),
		obs.Int("terms", len(spec.Terms)),
		obs.Int("rows", len(xs)),
		obs.Int("lambda_grid", len(opt.Lambdas)))
	defer sp.End()
	mFits.Inc()
	if len(xs) != len(y) {
		return nil, fmt.Errorf("gam: %d rows but %d targets", len(xs), len(y))
	}
	d, err := buildDesign(spec, xs)
	if err != nil {
		return nil, err
	}
	sp.Set(obs.Int("cols", d.p))
	if d.n <= d.p {
		return nil, fmt.Errorf("gam: %d rows for %d coefficients; need more data", d.n, d.p)
	}
	if spec.Link == Logit {
		for _, v := range y {
			if v < 0 || v > 1 {
				return nil, fmt.Errorf("gam: logit link requires targets in [0,1], found %v", v)
			}
		}
	}

	s := d.penaltyMatrix()
	var m *Model
	if spec.Link == Identity {
		m, err = fitGaussian(ctx, spec, d, s, y, opt)
	} else {
		m, err = fitLogit(ctx, spec, d, s, y, opt)
	}
	if err != nil {
		return nil, err
	}
	sp.Set(obs.F64("lambda", m.report.Lambda), obs.F64("gcv", m.report.GCV),
		obs.F64("edf", m.report.EDF))
	m.center(d)
	// Release the cached rows; term metadata stays for prediction.
	d.rowPtr, d.idx, d.val = nil, nil, nil
	return m, nil
}

// normalChunks is the fixed shard count for XᵀWX accumulation. Each
// shard carries a p×p partial matrix, so the count is kept well below
// par.DefaultChunks; it must stay a constant (never derived from the
// worker count) because shard boundaries fix the summation order.
const normalChunks = 8

// normalEq is one shard's partial normal-equation state.
type normalEq struct {
	xtx *linalg.Matrix
	xtz []float64
	ztz float64
}

// accumulateNormal builds XᵀWX (upper triangle) and XᵀWz from the cached
// rows with per-row weights w and responses z (pass w = nil for unit
// weights). Rows are sharded into normalChunks fixed row ranges whose
// partial matrices are summed in shard order, so the result is bitwise
// identical at any worker count. It returns XᵀWX symmetrized, XᵀWz and
// zᵀWz, or ctx.Err() on cancellation.
func accumulateNormal(ctx context.Context, d *design, w, z []float64) (*linalg.Matrix, []float64, float64, error) {
	p := d.p
	acc, err := par.MapReduce(ctx, d.n, normalChunks,
		func(_, lo, hi int) normalEq {
			eq := normalEq{xtx: linalg.NewMatrix(p, p), xtz: make([]float64, p)}
			data := eq.xtx.Data
			for i := lo; i < hi; i++ {
				idx, val := d.row(i)
				wi := 1.0
				if w != nil {
					wi = w[i]
				}
				zi := z[i]
				eq.ztz += wi * zi * zi
				wzi := wi * zi
				for a, ja := range idx {
					va := val[a]
					wva := wi * va
					eq.xtz[ja] += wzi * va
					rowBase := int(ja) * p
					for b := a; b < len(idx); b++ {
						jb := idx[b]
						if jb >= ja {
							data[rowBase+int(jb)] += wva * val[b]
						} else {
							data[int(jb)*p+int(ja)] += wva * val[b]
						}
					}
				}
			}
			return eq
		},
		func(a, b normalEq) normalEq {
			a.xtx.AddScaled(1, b.xtx)
			for j := range a.xtz {
				a.xtz[j] += b.xtz[j]
			}
			a.ztz += b.ztz
			return a
		})
	if err != nil {
		return nil, nil, 0, err
	}
	acc.xtx.SymmetrizeFromUpper()
	return acc.xtx, acc.xtz, acc.ztz, nil
}

// systemPool recycles the scratch matrices holding XᵀWX + λS between
// λ-grid evaluations (the λ loop used to Clone() the full p×p matrix
// per grid point). FactorizeSPD copies its input into the Cholesky's
// own storage, so a scratch matrix can be reused — or returned to the
// pool — the moment factorization returns.
type systemPool struct {
	pool sync.Pool
	p    int
}

func newSystemPool(p int) *systemPool {
	sp := &systemPool{p: p}
	sp.pool.New = func() any { return linalg.NewMatrix(p, p) }
	return sp
}

func (sp *systemPool) get() *linalg.Matrix  { return sp.pool.Get().(*linalg.Matrix) }
func (sp *systemPool) put(m *linalg.Matrix) { sp.pool.Put(m) }

// penalizedSystemInto overwrites dst with XᵀWX + λS plus the stabilizing
// ridge on non-intercept diagonal entries, and returns dst. Every entry
// of dst is written, so stale scratch contents cannot leak through.
func penalizedSystemInto(dst, xtx, s *linalg.Matrix, lambda float64) *linalg.Matrix {
	copy(dst.Data, xtx.Data)
	dst.AddScaled(lambda, s)
	var meanDiag float64
	for i := 0; i < xtx.Rows; i++ {
		meanDiag += xtx.At(i, i)
	}
	meanDiag /= float64(xtx.Rows)
	if meanDiag <= 0 {
		meanDiag = 1
	}
	r := ridgeScale * meanDiag
	for i := 1; i < dst.Rows; i++ {
		dst.Add(i, i, r)
	}
	return dst
}

// gcvResult is the outcome of one λ-grid evaluation, computed in
// parallel and selected over serially in grid order.
type gcvResult struct {
	ok   bool
	skip string // reason when !ok
	gcv  float64
	edf  float64
	rss  float64
	beta []float64
	chol *linalg.Cholesky
}

func fitGaussian(ctx context.Context, spec Spec, d *design, s *linalg.Matrix, y []float64, opt Options) (*Model, error) {
	_, asp := obs.Start(ctx, "gam.normal_equations", obs.Int("rows", d.n),
		obs.Int("cols", d.p), obs.Int("workers", par.Workers()))
	xtx, xty, yty, err := accumulateNormal(ctx, d, nil, y)
	asp.End()
	if err != nil {
		return nil, err
	}
	n := float64(d.n)

	// Every λ on the grid is an independent Cholesky solve against the
	// same sufficient statistics, so the grid is evaluated in parallel
	// (one chunk per λ) into a results slice; span events, the GCV trace
	// and the best-λ selection happen serially afterwards, in grid
	// order, so traces and tie-breaking are deterministic.
	sysPool := newSystemPool(d.p)
	results := make([]gcvResult, len(opt.Lambdas))
	gridErr := par.For(ctx, len(opt.Lambdas), len(opt.Lambdas), func(g, _, _ int) {
		mGCVEvals.Inc()
		a := sysPool.get()
		penalizedSystemInto(a, xtx, s, opt.Lambdas[g])
		ch, ferr := linalg.FactorizeSPD(a)
		sysPool.put(a) // FactorizeSPD copied a; safe to recycle now
		if ferr != nil {
			results[g] = gcvResult{skip: "factorization failed"}
			return // skip numerically hopeless λ
		}
		beta := ch.Solve(xty)
		edf := ch.TraceSolve(xtx)
		rss := yty - 2*linalg.Dot(beta, xty) + quadForm(xtx, beta)
		if rss < 0 {
			rss = 0
		}
		denom := n - edf
		if denom <= 0 {
			results[g] = gcvResult{skip: "edf exceeds n"}
			return
		}
		results[g] = gcvResult{
			ok:   true,
			gcv:  n * rss / (denom * denom),
			edf:  edf,
			rss:  rss,
			beta: beta,
			chol: ch,
		}
	})
	if gridErr != nil {
		return nil, gridErr
	}

	sp := obs.FromContext(ctx)
	best := FitReport{GCV: math.Inf(1)}
	var bestBeta []float64
	var bestChol *linalg.Cholesky
	for g, lambda := range opt.Lambdas {
		r := results[g]
		if !r.ok {
			sp.Event("gam.gcv", obs.F64("lambda", lambda), obs.Str("skip", r.skip))
			continue
		}
		sp.Event("gam.gcv", obs.F64("lambda", lambda), obs.F64("gcv", r.gcv), obs.F64("edf", r.edf))
		best.Lambdas = append(best.Lambdas, lambda)
		best.GCVs = append(best.GCVs, r.gcv)
		if r.gcv < best.GCV {
			best.GCV = r.gcv
			best.Lambda = lambda
			best.EDF = r.edf
			best.Scale = r.rss / (n - r.edf)
			bestBeta = r.beta
			bestChol = r.chol
		}
	}
	if bestBeta == nil {
		return nil, fmt.Errorf("gam: no λ in the grid produced a solvable system")
	}
	// Deviance explained: 1 − RSS/TSS at the optimum.
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= n
	tss := yty - n*mean*mean
	if tss > 0 {
		rss := yty - 2*linalg.Dot(bestBeta, xty) + quadForm(xtx, bestBeta)
		if rss < 0 {
			rss = 0
		}
		best.DevExplained = 1 - rss/tss
	}
	return &Model{spec: spec, design: d, beta: bestBeta, chol: bestChol, report: best}, nil
}

func fitLogit(ctx context.Context, spec Spec, d *design, s *linalg.Matrix, y []float64, opt Options) (*Model, error) {
	n := float64(d.n)
	best := FitReport{GCV: math.Inf(1)}
	var bestBeta []float64
	var bestChol *linalg.Cholesky

	eta := make([]float64, d.n)
	w := make([]float64, d.n)
	z := make([]float64, d.n)
	// The λ loop itself stays serial (each grid point is a full P-IRLS
	// run; the parallelism lives inside the iteration's row loops), so a
	// single scratch matrix serves every λ and every iteration.
	scratch := linalg.NewMatrix(d.p, d.p)
	for _, lambda := range opt.Lambdas {
		_, lsp := obs.Start(ctx, "gam.gcv", obs.F64("lambda", lambda),
			obs.Int("workers", par.Workers()))
		mGCVEvals.Inc()
		// Warm-startable P-IRLS; initialize from the data each time for
		// reproducibility across grids.
		for i, yi := range y {
			mu := 0.5*yi + 0.25
			eta[i] = math.Log(mu / (1 - mu))
		}
		var beta []float64
		var ch *linalg.Cholesky
		var edf, wrss, lastDelta float64
		prevDev := math.Inf(1)
		iters := 0
		for it := 0; it < opt.MaxIRLS; it++ {
			iters = it + 1
			// Reweighting writes disjoint rows of w/z — parallel over
			// fixed row chunks.
			if err := par.For(ctx, d.n, 0, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					mu := sigmoid(eta[i])
					// Clamp fitted probabilities away from 0/1 so the working
					// weights stay bounded and extreme rows cannot dominate
					// the working RSS.
					if mu < 1e-5 {
						mu = 1e-5
					} else if mu > 1-1e-5 {
						mu = 1 - 1e-5
					}
					wi := mu * (1 - mu)
					w[i] = wi
					z[i] = eta[i] + (y[i]-mu)/wi
				}
			}); err != nil {
				lsp.End()
				return nil, err
			}
			xtwx, xtwz, _, accErr := accumulateNormal(ctx, d, w, z)
			if accErr != nil {
				lsp.End()
				return nil, accErr
			}
			a := penalizedSystemInto(scratch, xtwx, s, lambda)
			var err error
			ch, err = linalg.FactorizeSPD(a)
			if err != nil {
				ch = nil
				break
			}
			beta = ch.Solve(xtwz)
			// The linear predictor update writes disjoint eta rows; the
			// deviance folds per-chunk sums in chunk order (bitwise-stable).
			dev, devErr := par.MapReduce(ctx, d.n, 0,
				func(_, lo, hi int) float64 {
					var chunkDev float64
					for i := lo; i < hi; i++ {
						eta[i] = d.rowDot(i, beta)
						chunkDev += binomialDeviance(y[i], sigmoid(eta[i]))
					}
					return chunkDev
				},
				func(a, b float64) float64 { return a + b })
			if devErr != nil {
				lsp.End()
				return nil, devErr
			}
			lastDelta = math.Abs(prevDev - dev)
			if lastDelta < opt.Tol*(math.Abs(dev)+1) {
				edf = ch.TraceSolve(xtwx)
				wrss = weightedRSS(d, w, z, beta)
				break
			}
			prevDev = dev
			if it == opt.MaxIRLS-1 {
				edf = ch.TraceSolve(xtwx)
				wrss = weightedRSS(d, w, z, beta)
			}
		}
		mIRLSIters.Observe(float64(iters))
		if !math.IsInf(lastDelta, 0) {
			mIRLSDelta.Observe(lastDelta)
		}
		if ch == nil || beta == nil {
			lsp.Set(obs.Str("skip", "factorization failed"))
			lsp.End()
			continue
		}
		denom := n - edf
		if denom <= 0 {
			lsp.Set(obs.Str("skip", "edf exceeds n"))
			lsp.End()
			continue
		}
		gcv := n * wrss / (denom * denom)
		lsp.Set(obs.F64("gcv", gcv), obs.F64("edf", edf),
			obs.Int("irls_iters", iters), obs.F64("dev_delta", lastDelta))
		lsp.End()
		best.Lambdas = append(best.Lambdas, lambda)
		best.GCVs = append(best.GCVs, gcv)
		if gcv < best.GCV {
			best.GCV = gcv
			best.Lambda = lambda
			best.EDF = edf
			best.Scale = wrss / denom
			best.IRLS = iters
			bestBeta = beta
			bestChol = ch
		}
	}
	if bestBeta == nil {
		return nil, fmt.Errorf("gam: P-IRLS failed for every λ in the grid")
	}
	// Binomial dispersion is 1 by GLM convention (as in pyGAM/mgcc);
	// the working-residual estimate only drives the GCV comparison.
	best.Scale = 1
	return &Model{spec: spec, design: d, beta: bestBeta, chol: bestChol, report: best}, nil
}

func weightedRSS(d *design, w, z, beta []float64) float64 {
	var rss float64
	for i := 0; i < d.n; i++ {
		r := z[i] - d.rowDot(i, beta)
		rss += w[i] * r * r
	}
	return rss
}

// binomialDeviance is the deviance contribution of one observation,
// generalized to fractional targets (distillation probabilities).
func binomialDeviance(y, mu float64) float64 {
	const eps = 1e-12
	mu = math.Min(math.Max(mu, eps), 1-eps)
	var dev float64
	if y > 0 {
		dev += y * math.Log(y/mu)
	}
	if y < 1 {
		dev += (1 - y) * math.Log((1-y)/(1-mu))
	}
	return 2 * dev
}

// quadForm computes βᵀ M β.
func quadForm(m *linalg.Matrix, beta []float64) float64 {
	return linalg.Dot(beta, linalg.MulVec(m, beta))
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// center converts the fitted (uncentered) parameterization into the
// paper's E[s_j] = 0 form: each term's training-mean contribution moves
// into the intercept.
func (m *Model) center(d *design) {
	m.termMeans = make([]float64, len(d.terms))
	m.intercept = m.beta[0]
	n := float64(d.n)
	m.colMeans = make([]float64, len(d.colSum))
	for c, s := range d.colSum {
		m.colMeans[c] = s / n
	}
	for ti, bt := range d.terms {
		var mean float64
		for c := 0; c < bt.size; c++ {
			mean += m.colMeans[bt.offset+c] * m.beta[bt.offset+c]
		}
		m.termMeans[ti] = mean
		m.intercept += mean
	}
}
