package gam

import (
	"testing"
)

// FuzzUnmarshalModel asserts the deserialization contract for untrusted
// model files: any byte slice either fails with an error or yields a model
// that predicts and explains without panicking. Bounds enforced by
// UnmarshalModel (basis-size cap, non-negative feature indices, finite
// basis ranges) exist exactly so this holds.
func FuzzUnmarshalModel(f *testing.F) {
	xs := make([][]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		v := float64(i) / 10
		xs[i] = []float64{v, float64(i % 3)}
		ys[i] = v*v + float64(i%3)
	}
	m, err := Fit(Spec{Link: Identity, Terms: []TermSpec{
		{Kind: Spline, Feature: 0, NumBasis: 6},
		{Kind: Factor, Feature: 1},
	}}, xs, ys, Options{Lambdas: []float64{1}})
	if err != nil {
		f.Fatalf("fitting seed model: %v", err)
	}
	for _, includeCI := range []bool{false, true} {
		data, err := m.Marshal(includeCI)
		if err != nil {
			f.Fatalf("marshaling seed model: %v", err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"version":1,"terms":[{"spec":{"Kind":"spline","Feature":0,"NumBasis":4}}],"beta":[0,0,0,0,0],"term_means":[0],"col_means":[0,0,0,0,0]}`))
	f.Add([]byte(`{"version":1,"terms":[{"spec":{"Kind":"spline","Feature":0,"NumBasis":99999999}}]}`))
	f.Add([]byte(`{"version":1,"terms":[{"spec":{"Kind":"tensor","Feature":0,"Feature2":-4,"NumBasis":4}}]}`))
	f.Add([]byte(`{"version":7}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalModel(data)
		if err != nil {
			return
		}
		// A model that unmarshalled cleanly must predict and explain on a
		// zero row wide enough for its largest feature index.
		width := 1
		for _, ts := range m.spec.Terms {
			if ts.Feature >= width {
				width = ts.Feature + 1
			}
			if ts.Kind == Tensor && ts.Feature2 >= width {
				width = ts.Feature2 + 1
			}
		}
		x := make([]float64, width)
		m.Predict(x)
		m.Explain(x)
	})
}
