// Package distill implements the tree-prototyping baseline family the
// paper's related work contrasts GEF against: summarizing a large forest
// by a single, shallow decision tree trained on the forest's own
// predictions over a synthetic dataset. Like GEF it needs no training
// data; unlike GEF its explanation is a partition rather than additive
// curves, so it serves as a fidelity/interpretability reference point.
package distill

import (
	"fmt"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gbdt"
	"gef/internal/sampling"
	"gef/internal/stats"
)

// Config controls single-tree distillation.
type Config struct {
	// MaxLeaves bounds the surrogate tree (default 16 — small enough to
	// read).
	MaxLeaves int
	// NumSamples is the synthetic dataset size (default 20,000).
	NumSamples int
	// Sampling selects the D* strategy (default All-Thresholds over all
	// used features).
	Sampling sampling.Config
	// TestFraction of D* held out for fidelity (default 0.2).
	TestFraction float64
	// Seed drives sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxLeaves == 0 {
		c.MaxLeaves = 16
	}
	if c.NumSamples == 0 {
		c.NumSamples = 20000
	}
	if c.Sampling.Strategy == "" {
		c.Sampling.Strategy = sampling.AllThresholds
	}
	if c.TestFraction == 0 {
		c.TestFraction = 0.2
	}
	return c
}

// Result is a distilled surrogate tree with its fidelity measurements.
type Result struct {
	// Tree is the surrogate (wrapped in a single-tree forest so the
	// standard prediction and serialization APIs apply).
	Tree *forest.Forest
	// RMSE and R2 measure agreement with the source forest on held-out
	// synthetic data.
	RMSE float64
	R2   float64
}

// Distill fits one regression tree to the forest's predictions over a
// threshold-derived synthetic dataset.
func Distill(f *forest.Forest, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("distill: invalid forest: %w", err)
	}
	used := f.UsedFeatures()
	if len(used) == 0 {
		return nil, fmt.Errorf("distill: forest has no splits")
	}
	smp := cfg.Sampling
	if smp.Seed == 0 {
		smp.Seed = cfg.Seed + 1
	}
	domains, err := sampling.BuildDomains(f, used, smp)
	if err != nil {
		return nil, err
	}
	dstar := sampling.Generate(f, domains, cfg.NumSamples, cfg.Seed+2)
	// Distillation targets are the forest outputs on the response scale;
	// a single regression tree fits both tasks.
	dstar.Task = dataset.Regression
	train, test := dstar.Split(cfg.TestFraction, cfg.Seed+3)

	tree, err := gbdt.Train(train, gbdt.Params{
		NumTrees:       1,
		NumLeaves:      cfg.MaxLeaves,
		LearningRate:   1, // no shrinkage: the single tree is the model
		MinSamplesLeaf: 20,
		Lambda:         1e-9,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("distill: fitting surrogate tree: %w", err)
	}
	pred := tree.PredictBatch(test.X)
	return &Result{
		Tree: tree,
		RMSE: stats.RMSE(pred, test.Y),
		R2:   stats.R2(pred, test.Y),
	}, nil
}

// Rules converts the surrogate tree into human-readable decision rules,
// one per leaf: "f3 ≤ 0.52 AND f1 > 0.10 → 4.21".
func (r *Result) Rules(name func(int) string) []string {
	t := &r.Tree.Trees[0]
	var out []string
	var walk func(i int, conds []string)
	walk = func(i int, conds []string) {
		n := &t.Nodes[i]
		if n.IsLeaf() {
			rule := "always"
			if len(conds) > 0 {
				rule = join(conds, " AND ")
			}
			out = append(out, fmt.Sprintf("%s → %.4g", rule, n.Value+r.Tree.BaseScore))
			return
		}
		// Cap both appends so sibling branches never share backing arrays.
		capped := conds[:len(conds):len(conds)]
		walk(n.Left, append(capped, fmt.Sprintf("%s ≤ %.4g", name(n.Feature), n.Threshold)))
		walk(n.Right, append(capped, fmt.Sprintf("%s > %.4g", name(n.Feature), n.Threshold)))
	}
	walk(0, nil)
	return out
}

func join(parts []string, sep string) string {
	out := parts[0]
	for _, p := range parts[1:] {
		out += sep + p
	}
	return out
}
