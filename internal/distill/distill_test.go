package distill

import (
	"strings"
	"testing"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gbdt"
)

func sourceForest(t *testing.T) *forest.Forest {
	t.Helper()
	ds := dataset.GPrime(3000, 0.1, 51)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 80, NumLeaves: 16, LearningRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	return f
}

func TestDistillFidelity(t *testing.T) {
	f := sourceForest(t)
	res, err := Distill(f, Config{MaxLeaves: 64, NumSamples: 10000, Seed: 1})
	if err != nil {
		t.Fatalf("Distill: %v", err)
	}
	if len(res.Tree.Trees) != 1 {
		t.Fatalf("surrogate has %d trees, want 1", len(res.Tree.Trees))
	}
	if res.Tree.Trees[0].NumLeaves() > 64 {
		t.Errorf("surrogate has %d leaves, cap 64", res.Tree.Trees[0].NumLeaves())
	}
	// A 64-leaf tree can approximate a smooth 5-feature function only
	// roughly; it must still clearly beat the mean predictor.
	if res.R2 < 0.5 {
		t.Errorf("surrogate R² = %v, want ≥ 0.5", res.R2)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Errorf("surrogate invalid: %v", err)
	}
}

func TestDistillMoreLeavesMoreFidelity(t *testing.T) {
	f := sourceForest(t)
	small, err := Distill(f, Config{MaxLeaves: 8, NumSamples: 10000, Seed: 1})
	if err != nil {
		t.Fatalf("Distill small: %v", err)
	}
	large, err := Distill(f, Config{MaxLeaves: 128, NumSamples: 10000, Seed: 1})
	if err != nil {
		t.Fatalf("Distill large: %v", err)
	}
	if large.R2 <= small.R2 {
		t.Errorf("128-leaf R² (%v) should beat 8-leaf R² (%v)", large.R2, small.R2)
	}
}

func TestDistillRules(t *testing.T) {
	f := sourceForest(t)
	res, err := Distill(f, Config{MaxLeaves: 6, NumSamples: 5000, Seed: 1})
	if err != nil {
		t.Fatalf("Distill: %v", err)
	}
	rules := res.Rules(f.FeatureName)
	if len(rules) != res.Tree.Trees[0].NumLeaves() {
		t.Fatalf("%d rules for %d leaves", len(rules), res.Tree.Trees[0].NumLeaves())
	}
	for _, r := range rules {
		if !strings.Contains(r, "→") {
			t.Errorf("rule missing consequent: %q", r)
		}
	}
	// Deeper rules contain conjunctions.
	found := false
	for _, r := range rules {
		if strings.Contains(r, " AND ") {
			found = true
		}
	}
	if !found {
		t.Error("no conjunctive rule in a 6-leaf tree")
	}
}

func TestDistillClassificationForest(t *testing.T) {
	ds := dataset.CensusN(3000, 53)
	f, err := gbdt.Train(ds, gbdt.Params{
		NumTrees: 40, NumLeaves: 8, LearningRate: 0.2,
		Objective: forest.BinaryLogistic, Seed: 1,
	})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	res, err := Distill(f, Config{MaxLeaves: 32, NumSamples: 8000, Seed: 1})
	if err != nil {
		t.Fatalf("Distill: %v", err)
	}
	// Surrogate fits the forest's response scale (probabilities).
	if res.R2 < 0.3 {
		t.Errorf("probability surrogate R² = %v", res.R2)
	}
}

func TestDistillErrors(t *testing.T) {
	if _, err := Distill(&forest.Forest{NumFeatures: 0}, Config{}); err == nil {
		t.Error("accepted invalid forest")
	}
	constant := &forest.Forest{
		Trees:       []forest.Tree{{Nodes: []forest.Node{{Left: -1, Right: -1, Value: 1, Cover: 1}}}},
		NumFeatures: 1,
		Objective:   forest.Regression,
	}
	if _, err := Distill(constant, Config{}); err == nil {
		t.Error("accepted splitless forest")
	}
}
