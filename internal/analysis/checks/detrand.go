package checks

import (
	"go/ast"
	"go/types"

	"gef/internal/analysis"
)

// Detrand guards the reproducibility of the paper's experiments: every
// random draw must flow from an explicitly seeded *rand.Rand, and no
// serialized output may depend on Go's randomized map iteration order.
// It flags:
//
//   - calls to math/rand package-level functions (Intn, Float64, Perm,
//     Shuffle, ...), which draw from the global, unseeded source;
//   - rand.NewSource / rand.New seeded from time.Now(), which is
//     deterministic in no useful sense;
//   - `for range` over a map whose body writes formatted or encoded
//     output directly (fmt.Fprint*, Write*, json Encode): the emitted
//     order changes run to run. Collect keys and sort first.
//
// Constructors rand.New and rand.NewSource themselves are fine — they
// are exactly how call sites plumb an explicit seed.
var Detrand = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "flags global/time-seeded math/rand use and map-ordered serialization",
	Run:  runDetrand,
}

func runDetrand(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || isTestFile(pass, n) {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				checkRandCall(pass, n)
			case *ast.RangeStmt:
				checkMapRangeOutput(pass, n)
			}
			return true
		})
	}
}

func checkRandCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
		return
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return // methods on an explicit *rand.Rand are the approved path
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf":
		// Constructors: fine unless the seed itself is wall-clock time.
		for _, arg := range call.Args {
			if usesTimeNow(pass, arg) {
				pass.Reportf(call.Pos(), "%s seeded from time.Now(); use a fixed or configured seed for reproducible experiments", fn.Name())
				return
			}
		}
	default:
		pass.Reportf(call.Pos(), "math/rand.%s draws from the global source; plumb an explicitly seeded *rand.Rand instead", fn.Name())
	}
}

// usesTimeNow reports whether expr contains a call to time.Now.
func usesTimeNow(pass *analysis.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "time" && fn.Name() == "Now" {
			found = true
		}
		return !found
	})
	return found
}

// serializingCall reports whether call emits ordered output: formatted
// printing, io writes, or streaming JSON encoding.
func serializingCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	case "io":
		return fn.Name() == "WriteString"
	case "encoding/json":
		return fn.Name() == "Encode" // (*json.Encoder).Encode
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return true
		}
	}
	return false
}

// checkMapRangeOutput flags a range over a map whose body serializes
// per-iteration output. Nested function literals are skipped: they do
// not run in loop order by construction.
func checkMapRangeOutput(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	reported := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && serializingCall(pass, call) {
			pass.Reportf(rng.For, "map iteration feeds serialized output in nondeterministic order; collect and sort keys first")
			reported = true
			return false
		}
		return true
	})
}
