package checks

import (
	"go/ast"
	"go/types"

	"gef/internal/analysis"
)

// obsmetricFuncs are the obs package-level helpers whose first argument
// names a metric series.
var obsmetricFuncs = map[string]bool{
	"Count":    true,
	"SetGauge": true,
	"Observe":  true,
}

// obsmetricMethods are the Registry methods whose first argument names a
// metric family.
var obsmetricMethods = map[string]bool{
	"Counter":             true,
	"Gauge":               true,
	"Histogram":           true,
	"HistogramBuckets":    true,
	"CounterVec":          true,
	"GaugeVec":            true,
	"HistogramVec":        true,
	"HistogramVecBuckets": true,
}

// Obsmetric flags metric names built at runtime — fmt.Sprintf calls,
// concatenations with variables — passed to the obs registry. A dynamic
// name mints an unbounded set of series (one per distinct value), which
// defeats instrument hoisting, bloats every Snapshot/WritePrometheus
// call, and bypasses the schema check that labeled vectors enforce. The
// fix is a CounterVec/GaugeVec/HistogramVec with the dynamic part as a
// label value: obs.Metrics().CounterVec("engine.cache_hits",
// "stage").With(stage) instead of obs.Count("engine.cache_hits."+stage).
// internal/obs itself is exempt — the vec implementation builds encoded
// series names by design.
var Obsmetric = &analysis.Analyzer{
	Name: "obsmetric",
	Doc:  "flags runtime-built metric names; use labeled metric vectors instead",
	Run:  runObsmetric,
}

// isObsMetricName reports whether call is an obs metric constructor and,
// if so, returns its name argument.
func isObsMetricName(pass *analysis.Pass, call *ast.CallExpr) (ast.Expr, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "gef/internal/obs" || len(call.Args) == 0 {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, false
	}
	if sig.Recv() == nil {
		if obsmetricFuncs[fn.Name()] {
			return call.Args[0], true
		}
		return nil, false
	}
	if obsmetricMethods[fn.Name()] {
		return call.Args[0], true
	}
	return nil, false
}

func runObsmetric(pass *analysis.Pass) {
	if pass.Pkg.Path() == "gef/internal/obs" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || isTestFile(pass, n) {
				return true
			}
			name, ok := isObsMetricName(pass, call)
			if !ok {
				return true
			}
			// A compile-time constant string (literal, const ident, or a
			// concatenation of constants) keys a fixed series — fine.
			// Anything the type checker cannot fold to a constant mints
			// series at runtime.
			if tv, ok := pass.Info.Types[name]; ok && tv.Value != nil {
				return true
			}
			pass.Reportf(name.Pos(), "metric name is built at runtime, minting unbounded series; use a labeled vector (CounterVec/GaugeVec/HistogramVec) with the dynamic part as a label value")
			return true
		})
	}
}
