package checks

import (
	"context"
	"fmt"
	"path/filepath"
	"regexp"
	"testing"

	"gef/internal/analysis"
)

// wantRe extracts the expected-message pattern from a `// want "..."`
// comment in a golden-test source file.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// goldenLoader is shared across golden tests so the standard library is
// source-imported once, not once per analyzer.
var goldenLoader *analysis.Loader

func loadGolden(t *testing.T, dir string) *analysis.Package {
	t.Helper()
	if goldenLoader == nil {
		l, err := analysis.NewLoader(".")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		goldenLoader = l
	}
	pkg, err := goldenLoader.LoadDir(filepath.Join("testdata", "src", dir), "golden/"+dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return pkg
}

// runGolden loads testdata/src/<dir>, runs the analyzer, and matches the
// diagnostics against the `// want "pattern"` comments: every diagnostic
// must land on a line with a matching want, and every want must be hit.
func runGolden(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg := loadGolden(t, dir)

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string]*want) // "file:line" → expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if wants[key] != nil {
					t.Fatalf("%s: multiple want comments on one line", key)
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
				}
				wants[key] = &want{re: re}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("testdata/src/%s has no want comments; a golden test must assert at least one true positive", dir)
	}

	diags, _, err := analysis.Run(context.Background(), []*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		w := wants[key]
		switch {
		case w == nil:
			t.Errorf("unexpected diagnostic at %s: %s: %s", key, d.Check, d.Message)
		case !w.re.MatchString(d.Message):
			t.Errorf("%s: diagnostic %q does not match want %q", key, d.Message, w.re)
		default:
			w.matched = true
		}
	}
	for key, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
		}
	}
}

func TestFloatcmpGolden(t *testing.T)  { runGolden(t, Floatcmp, "floatcmp") }
func TestErrdropGolden(t *testing.T)   { runGolden(t, Errdrop, "errdrop") }
func TestDetrandGolden(t *testing.T)   { runGolden(t, Detrand, "detrand") }
func TestNaninputGolden(t *testing.T)  { runGolden(t, Naninput, "naninput") }
func TestObsmetricGolden(t *testing.T) { runGolden(t, Obsmetric, "obsmetric") }
func TestObsspanGolden(t *testing.T)   { runGolden(t, Obsspan, "obsspan") }
func TestRawgoGolden(t *testing.T)     { runGolden(t, Rawgo, "rawgo") }
func TestSliceretGolden(t *testing.T)  { runGolden(t, Sliceret, "sliceret") }

// The flow-sensitive quartet built on internal/analysis/cfg.
func TestLockbalanceGolden(t *testing.T) { runGolden(t, Lockbalance, "lockbalance") }
func TestMaporderGolden(t *testing.T)    { runGolden(t, Maporder, "maporder") }
func TestParcaptureGolden(t *testing.T)  { runGolden(t, Parcapture, "parcapture") }
func TestCtxdropGolden(t *testing.T)     { runGolden(t, Ctxdrop, "ctxdrop") }

// TestByName covers the -checks selection used by the CLI.
func TestByName(t *testing.T) {
	if as, ok := ByName(""); !ok || len(as) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, ok=%v; want all %d", len(as), ok, len(All()))
	}
	as, ok := ByName("floatcmp, errdrop")
	if !ok || len(as) != 2 || as[0].Name != "floatcmp" || as[1].Name != "errdrop" {
		t.Fatalf("ByName(floatcmp, errdrop) = %v, ok=%v", as, ok)
	}
	if _, ok := ByName("nosuchcheck"); ok {
		t.Fatal("ByName(nosuchcheck) should fail")
	}
}
