package checks

import (
	"go/ast"

	"gef/internal/analysis"
)

// concurrencyPkgs are the only packages allowed to spawn goroutines
// directly. internal/par is the worker-pool runtime every pipeline
// stage parallelizes through; internal/obs owns its own background
// flushing. Everything else must route concurrency through par so the
// determinism contract (fixed chunk boundaries, ordered reduction,
// bitwise-identical results at any worker count) cannot be bypassed by
// an ad-hoc `go func`.
var concurrencyPkgs = map[string]bool{
	"gef/internal/par": true,
	"gef/internal/obs": true,
}

// Rawgo flags `go` statements outside the sanctioned concurrency
// runtimes. A raw goroutine spawn elsewhere in the pipeline escapes the
// par worker budget (-workers is no longer an upper bound), dodges the
// race-discovery gate in verify.sh, and — if it touches shared
// accumulators — can reintroduce the nondeterministic reduction orders
// PR 3 eliminated. The fix is par.For / par.MapReduce; truly exceptional
// spawns are annotated with //lint:ignore rawgo <reason>.
var Rawgo = &analysis.Analyzer{
	Name: "rawgo",
	Doc:  "flags goroutine spawns outside internal/par and internal/obs",
	Run:  runRawgo,
}

func runRawgo(pass *analysis.Pass) {
	if concurrencyPkgs[pass.Pkg.Path()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok || isTestFile(pass, g) {
				return true
			}
			pass.Reportf(g.Pos(), "raw goroutine spawn outside internal/par; use par.For or par.MapReduce so the work respects -workers and the determinism contract")
			return true
		})
	}
}
