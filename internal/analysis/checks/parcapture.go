package checks

import (
	"go/ast"
	"go/token"

	"gef/internal/analysis"
)

// Parcapture audits the bodies handed to internal/par's primitives.
// par.For and par.MapReduce run their closures concurrently across
// chunks, and the package contract says a body "must only write state
// owned by that range (or by chunk index c)". The -race gate only
// catches violations when the scheduler happens to overlap two
// conflicting chunks — on the 1-core CI host it essentially never does
// — so this analyzer enforces the contract statically:
//
//   - a write to a variable captured from the enclosing function
//     (assignment, v++, compound ops) races between chunks unless the
//     write targets an element indexed by something chunk-local: the
//     chunk/lo/hi parameters or a variable declared inside the closure
//     (a loop variable over [lo, hi));
//   - writes through chunk-constant indexes (out[0] = ..., out[j] for
//     captured j) are flagged: every chunk hits the same slot.
//
// MapReduce's reduce function is exempt: the driver calls it from one
// goroutine, folding partials in chunk order.
var Parcapture = &analysis.Analyzer{
	Name: "parcapture",
	Doc:  "flags non-chunk-indexed writes to captured variables inside par.For/MapReduce bodies",
	Run:  runParcapture,
}

func runParcapture(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || isTestFile(pass, n) {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "gef/internal/par" {
				return true
			}
			// par.For(ctx, n, chunks, body) / par.MapReduce(ctx, n,
			// chunks, mapf, reduce): the concurrent closure is arg 3.
			if (fn.Name() != "For" && fn.Name() != "MapReduce") || len(call.Args) < 4 {
				return true
			}
			if lit, ok := ast.Unparen(call.Args[3]).(*ast.FuncLit); ok {
				checkParBody(pass, fn.Name(), lit)
			}
			return true
		})
	}
}

func checkParBody(pass *analysis.Pass, primitive string, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// := introduces closure-locals; writes only race when the
			// target already exists outside.
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkParWrite(pass, primitive, lit, lhs)
			}
		case *ast.IncDecStmt:
			checkParWrite(pass, primitive, lit, n.X)
		}
		return true
	})
}

// checkParWrite reports lhs when it writes shared captured state
// without a chunk-local index on the path to the written element.
func checkParWrite(pass *analysis.Pass, primitive string, lit *ast.FuncLit, lhs ast.Expr) {
	if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
		// v[i] = x, v.f = x, v[i].f = x, *p = x ...
		base, indexed := writeBase(pass, lit, lhs)
		if base == nil {
			return
		}
		if obj := identObj(pass, base); obj == nil || declaredWithin(obj, lit) {
			return // closure-local target: owned by this chunk
		}
		if indexed {
			return // some index on the path is chunk-local: range-owned
		}
		pass.Reportf(lhs.Pos(), "write to captured %s inside par.%s body is not chunk-indexed; chunks race on it — index by the chunk/loop variable or make it chunk-local",
			base.Name, primitive)
		return
	}
	// Bare identifier write: v = x, v++, v += x.
	id := ast.Unparen(lhs).(*ast.Ident)
	obj := identObj(pass, id)
	if obj == nil || declaredWithin(obj, lit) {
		return
	}
	if id.Name == "_" {
		return
	}
	pass.Reportf(lhs.Pos(), "captured %s is written by every chunk of par.%s; accumulate per-chunk state and combine in the reduce step instead",
		id.Name, primitive)
}

// writeBase unwraps an lvalue to its base identifier, noting whether
// any index on the way is chunk-local (references a variable declared
// inside lit — the chunk/lo/hi params or a loop variable over them).
func writeBase(pass *analysis.Pass, lit *ast.FuncLit, e ast.Expr) (base *ast.Ident, chunkIndexed bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, chunkIndexed
		case *ast.IndexExpr:
			if indexIsChunkLocal(pass, lit, x.Index) {
				chunkIndexed = true
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			// Writing through a captured pointer: treat the pointer as
			// the base; dereference adds no ownership information.
			e = x.X
		default:
			return nil, false
		}
	}
}

// indexIsChunkLocal reports whether idx mentions any variable declared
// inside the closure — the param list counts, so `chunk`, `lo`, `hi`
// and loop variables over them all qualify.
func indexIsChunkLocal(pass *analysis.Pass, lit *ast.FuncLit, idx ast.Expr) bool {
	local := false
	ast.Inspect(idx, func(n ast.Node) bool {
		if local {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := identObj(pass, id); obj != nil && declaredWithin(obj, lit) {
				local = true
				return false
			}
		}
		return true
	})
	return local
}
