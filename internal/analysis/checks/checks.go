// Package checks holds GEF's domain-specific analyzers. Each analyzer
// guards an invariant the pipeline's correctness or reproducibility
// depends on; see the per-file documentation for the rationale.
package checks

import (
	"go/ast"
	"strings"

	"gef/internal/analysis"
)

// All returns every registered analyzer, in stable order. New checks
// are added here and become part of the verify.sh gate automatically.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Ctxdrop,
		Detrand,
		Errdrop,
		Floatcmp,
		Lockbalance,
		Maporder,
		Naninput,
		Obsmetric,
		Obsspan,
		Parcapture,
		Rawgo,
		Sliceret,
	}
}

// ByName resolves a comma-separated selection like "floatcmp,errdrop".
func ByName(names string) ([]*analysis.Analyzer, bool) {
	if names == "" {
		return All(), true
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}

// isTestFile reports whether the file holding pos is a _test.go file.
// The driver does not load test files, but golden-file packages may
// include them and analyzers written against this helper stay correct
// if the driver ever does.
func isTestFile(pass *analysis.Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}

// enclosingFunc returns the function declaration lexically containing
// pos in any of the pass's files, or nil.
func enclosingFunc(pass *analysis.Pass, n ast.Node) *ast.FuncDecl {
	for _, f := range pass.Files {
		if n.Pos() < f.Pos() || n.Pos() >= f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= n.Pos() && n.Pos() < fd.End() {
				return fd
			}
		}
	}
	return nil
}
