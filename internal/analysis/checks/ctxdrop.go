package checks

import (
	"go/ast"
	"go/types"

	"gef/internal/analysis"
)

// Ctxdrop guards the deadline plumbing the robust layer depends on.
// internal/robust's deadlines and par's cancellation only work when the
// caller's context reaches the blocking/spawning callee; a function
// that receives a ctx but calls a ctx-accepting callee with
// context.Background() (or TODO()) silently disconnects everything
// below it — the request deadline, the CLI -timeout, the trace span
// parentage — and the hole only shows up when a deadline fires and the
// subtree keeps running.
//
// The check: inside any function whose signature carries a
// context.Context parameter, a call whose callee accepts a
// context.Context in its first parameter must not be passed a fresh
// context.Background()/context.TODO(). Detached work is sometimes
// intended (background flushes); those sites carry a //lint:ignore with
// the reason.
var Ctxdrop = &analysis.Analyzer{
	Name: "ctxdrop",
	Doc:  "flags context.Background()/TODO() passed onward when the caller already has a ctx",
	Run:  runCtxdrop,
}

func runCtxdrop(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fd.Body == nil || isTestFile(pass, fd) || !hasCtxParam(pass, fd.Type) {
				return false
			}
			checkCtxDrop(pass, fd.Body)
			return false
		})
	}
}

func checkCtxDrop(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// A nested closure with its own ctx parameter re-scopes the
		// rule; one without still sees the outer ctx, so keep walking.
		if lit, ok := n.(*ast.FuncLit); ok && hasCtxParam(pass, lit.Type) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
		if !ok || sig.Params().Len() == 0 || !isContextType(sig.Params().At(0).Type()) {
			return true
		}
		arg, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, arg)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.Reportf(arg.Pos(), "context.%s() passed to %s while the enclosing function has a ctx; this drops deadlines, cancellation and span parentage — pass the caller's ctx",
				fn.Name(), calleeName(pass, call))
		}
		return true
	})
}

// hasCtxParam reports whether ft's parameters include a context.Context.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// calleeName renders the called expression for the diagnostic.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		return fn.Name()
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "the callee"
}
