package checks

import (
	"go/ast"
	"go/types"

	"gef/internal/analysis"
)

// Ctxdrop guards the deadline plumbing the robust layer depends on.
// internal/robust's deadlines and par's cancellation only work when the
// caller's context reaches the blocking/spawning callee; a function
// that receives a ctx but calls a ctx-accepting callee with
// context.Background() (or TODO()) silently disconnects everything
// below it — the request deadline, the CLI -timeout, the trace span
// parentage — and the hole only shows up when a deadline fires and the
// subtree keeps running.
//
// The check: inside any function whose signature carries a
// context.Context parameter — or an *http.Request, whose Context() is
// the serving layer's deadline carrier — a call whose callee accepts a
// context.Context in its first parameter must not be passed a fresh
// context.Background()/context.TODO(). Function literals are checked
// too: a literal with its own ctx/request parameter re-scopes the rule
// to that parameter (HTTP handlers are typically literals or methods
// that only receive the ctx via the request), while a literal without
// one still sees the enclosing function's context. Detached work is
// sometimes intended (background flushes); those sites carry a
// //lint:ignore with the reason.
var Ctxdrop = &analysis.Analyzer{
	Name: "ctxdrop",
	Doc:  "flags context.Background()/TODO() passed onward when the caller already has a ctx (or an *http.Request carrying one)",
	Run:  runCtxdrop,
}

// ctxSource classifies where the enclosing function's context comes
// from: a context.Context parameter, an *http.Request parameter, or
// nowhere.
type ctxSource int

const (
	srcNone ctxSource = iota
	srcParam
	srcRequest
)

func runCtxdrop(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil || isTestFile(pass, fn) {
					return false
				}
				if src := ctxSourceOf(pass, fn.Type); src != srcNone {
					checkCtxDrop(pass, fn.Body, src)
					return false // nested literals handled inside
				}
				return true // a literal inside may carry its own ctx/request
			case *ast.FuncLit:
				// Reached only under declarations without a context of
				// their own (e.g. handler literals built in main or in
				// a mux-wiring helper).
				if isTestFile(pass, fn) {
					return false
				}
				if src := ctxSourceOf(pass, fn.Type); src != srcNone {
					checkCtxDrop(pass, fn.Body, src)
					return false
				}
				return true
			}
			return true
		})
	}
}

func checkCtxDrop(pass *analysis.Pass, body *ast.BlockStmt, src ctxSource) {
	ast.Inspect(body, func(n ast.Node) bool {
		// A nested closure with its own ctx (or request) re-scopes the
		// rule; one without still sees the outer context, so keep
		// walking under the outer classification.
		if lit, ok := n.(*ast.FuncLit); ok {
			if inner := ctxSourceOf(pass, lit.Type); inner != srcNone {
				checkCtxDrop(pass, lit.Body, inner)
				return false
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
		if !ok || sig.Params().Len() == 0 || !isContextType(sig.Params().At(0).Type()) {
			return true
		}
		arg, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, arg)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() != "Background" && fn.Name() != "TODO" {
			return true
		}
		switch src {
		case srcParam:
			pass.Reportf(arg.Pos(), "context.%s() passed to %s while the enclosing function has a ctx; this drops deadlines, cancellation and span parentage — pass the caller's ctx",
				fn.Name(), calleeName(pass, call))
		case srcRequest:
			pass.Reportf(arg.Pos(), "context.%s() passed to %s while the enclosing function receives an *http.Request; this detaches the work from client disconnects and server deadlines — pass the request's Context()",
				fn.Name(), calleeName(pass, call))
		}
		return true
	})
}

// ctxSourceOf classifies ft's parameters: a context.Context parameter
// wins over an *http.Request one (a handler that already receives a
// derived ctx should thread that, not re-derive from the request).
func ctxSourceOf(pass *analysis.Pass, ft *ast.FuncType) ctxSource {
	if ft.Params == nil {
		return srcNone
	}
	src := srcNone
	for _, field := range ft.Params.List {
		t := pass.TypeOf(field.Type)
		if isContextType(t) {
			return srcParam
		}
		if isHTTPRequestPtr(t) {
			src = srcRequest
		}
	}
	return src
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// isHTTPRequestPtr reports whether t is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "net/http" && n.Obj().Name() == "Request"
}

// calleeName renders the called expression for the diagnostic.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		return fn.Name()
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "the callee"
}
