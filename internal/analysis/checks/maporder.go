package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"gef/internal/analysis"
	"gef/internal/analysis/cfg"
)

// Maporder is the determinism-suite killer hunter: Go randomizes map
// iteration order per run, so anything order-sensitive computed inside
// `for k := range m` differs between two processes that must agree —
// exactly the bitwise-identical-explanations contract the determinism
// suite asserts at every worker count. The existing detrand check
// catches direct serialization (fmt/io/json) in map loops; this one is
// flow-sensitive and catches the accumulation patterns:
//
//   - appending to a slice declared outside the loop, UNLESS every
//     path from the loop to a use of that slice passes it to a sort
//     (sort.Strings/Slice/..., slices.Sort*) first — the collect-then-
//     sort idiom is the approved fix and must stay clean;
//   - building strings (strings.Builder/bytes.Buffer writes, s += ...)
//     across iterations;
//   - accumulating floats (t += v): float addition does not commute
//     bitwise, so even an order-insensitive-looking sum breaks the
//     determinism gate;
//   - emitting obs metrics per iteration: flight-recorder events and
//     float counter increments land in map order.
//
// The slice rule runs a forward taint dataflow over the function's
// control-flow graph: the append taints the slice, a sort call clears
// it, and any order-sensitive use (return, call argument, range, index)
// of a maybe-tainted slice is reported. len/cap/append of the tainted
// slice are order-insensitive and stay clean.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags map-iteration values reaching appends/strings/metrics without an intervening sort",
	Run:  runMaporder,
}

func runMaporder(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, fn := range funcNodes(f) {
			if isTestFile(pass, fn.node) {
				continue
			}
			checkMaporder(pass, fn)
		}
	}
}

// mapAppend is one `v = append(v, ...)` under a map range: the seed of
// the taint analysis.
type mapAppend struct {
	assign *ast.AssignStmt
	obj    types.Object
	pos    token.Pos
}

func checkMaporder(pass *analysis.Pass, fn funcNode) {
	// Collect the map-range statements of this function (not of nested
	// closures — those are separate funcNodes).
	var mapRanges []*ast.RangeStmt
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != fn.node {
			return false
		}
		if rng, ok := n.(*ast.RangeStmt); ok {
			if t := pass.TypeOf(rng.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					mapRanges = append(mapRanges, rng)
				}
			}
		}
		return true
	})
	if len(mapRanges) == 0 {
		return
	}

	appends := make(map[*ast.AssignStmt]*mapAppend)
	for _, rng := range mapRanges {
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkMapRangeAssign(pass, fn, rng, n, appends)
			case *ast.CallExpr:
				checkMapRangeCall(pass, rng, n)
			}
			return true
		})
	}
	if len(appends) == 0 {
		return
	}
	runSliceTaint(pass, fn, appends)
}

// checkMapRangeAssign handles assignment-shaped sinks inside a map
// range: string/float compound accumulation into an outer variable is
// reported immediately; slice appends into an outer variable become
// taint seeds for the sort dataflow.
func checkMapRangeAssign(pass *analysis.Pass, fn funcNode, rng *ast.RangeStmt, as *ast.AssignStmt, appends map[*ast.AssignStmt]*mapAppend) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := identObj(pass, lhs)
	if obj == nil || declaredWithin(obj, rng) {
		return // loop-local: resets every iteration, no cross-iteration order
	}

	switch as.Tok {
	case token.ADD_ASSIGN:
		switch basicKind(pass.TypeOf(lhs)) {
		case "string":
			pass.Reportf(as.Pos(), "string built up across map iterations; order changes run to run — collect and sort first")
		case "float":
			pass.Reportf(as.Pos(), "float accumulated across map iterations; addition order changes the bits — collect and sort, or sum over sorted keys")
		}
	case token.ASSIGN:
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			return
		}
		appends[as] = &mapAppend{assign: as, obj: obj, pos: as.Pos()}
	}
}

// checkMapRangeCall reports per-iteration emission calls: writer-style
// string building and obs metric/trace recording. (fmt/io/json
// serialization is detrand's finding; not duplicated here.)
func checkMapRangeCall(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recvT := pass.TypeOf(sel.X)
	if recvT == nil {
		return
	}
	switch sel.Sel.Name {
	case "WriteString", "WriteByte", "WriteRune", "Write":
		if neverFailsWriter(recvT) { // strings.Builder / bytes.Buffer
			pass.Reportf(call.Pos(), "string built in map-iteration order; collect and sort keys before writing")
		}
	case "Add", "Inc", "Set", "Observe":
		if namedInPkg(recvT, "gef/internal/obs") {
			pass.Reportf(call.Pos(), "metric emitted per map iteration; recorder events and float counters depend on iteration order — iterate sorted keys")
		}
	}
}

// sliceTaint is the dataflow fact: tainted slice objects and the append
// position that tainted them (kept for join-stable reporting).
type sliceTaint map[types.Object]token.Pos

func taintJoin(a, b sliceTaint) sliceTaint {
	out := make(sliceTaint, len(a)+len(b))
	for o, p := range a {
		out[o] = p
	}
	for o, p := range b {
		if q, ok := out[o]; !ok || p < q {
			out[o] = p // smallest position wins: join order independent
		}
	}
	return out
}

func taintEqual(a, b sliceTaint) bool {
	if len(a) != len(b) {
		return false
	}
	for o, p := range a {
		if q, ok := b[o]; !ok || q != p {
			return false
		}
	}
	return true
}

// runSliceTaint solves "does every path sort the accumulated slice
// before using it" and reports the first unsorted use on each path.
func runSliceTaint(pass *analysis.Pass, fn funcNode, appends map[*ast.AssignStmt]*mapAppend) {
	g := pass.CFG(fn.node)

	// apply interprets one block node: taints on the seeding appends,
	// clears on sorts, and (in the reporting sweep only) reports
	// order-sensitive uses of tainted objects.
	apply := func(node ast.Node, fact sliceTaint, report bool) sliceTaint {
		mutable := false
		set := func(o types.Object, p token.Pos) {
			if !mutable {
				cp := make(sliceTaint, len(fact)+1)
				for k, v := range fact {
					cp[k] = v
				}
				fact, mutable = cp, true
			}
			fact[o] = p
		}
		clear := func(o types.Object) {
			if _, ok := fact[o]; !ok {
				return
			}
			if !mutable {
				cp := make(sliceTaint, len(fact))
				for k, v := range fact {
					cp[k] = v
				}
				fact, mutable = cp, true
			}
			delete(fact, o)
		}

		ast.Inspect(node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // closures run on their own schedule
			case *ast.AssignStmt:
				if ma := appends[n]; ma != nil {
					set(ma.obj, ma.pos)
					return false // the self-referencing append is not a use
				}
				// A plain overwrite (v = nil, v = v[:0], v = fresh())
				// kills the taint: whatever map-ordered content the
				// slice held is gone. Clear before descending so the
				// overwrite's own mentions of v are not uses.
				if n.Tok == token.ASSIGN && len(n.Lhs) == 1 {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						if obj := identObj(pass, id); obj != nil {
							clear(obj)
						}
					}
				}
			case *ast.CallExpr:
				if obj := sortedArg(pass, n); obj != nil {
					clear(obj)
					return false // the sort is the fix, not a use
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					switch id.Name {
					case "len", "cap", "append", "delete":
						return false // order-insensitive builtins
					}
				}
			case *ast.Ident:
				obj := identObj(pass, n)
				if obj == nil {
					return true
				}
				if p, tainted := fact[obj]; tainted && report {
					pass.Reportf(n.Pos(), "%s is appended under map iteration (line %d) and used here without sorting; order changes run to run",
						n.Name, pass.Fset.Position(p).Line)
					// keep the taint: later uses on this path are the
					// same root cause but get their own report only in
					// other blocks
				}
			}
			return true
		})
		return fact
	}

	flow := cfg.Flow[sliceTaint]{
		Boundary: sliceTaint{},
		Join:     taintJoin,
		Equal:    taintEqual,
		Transfer: func(blk *cfg.Block, in sliceTaint) sliceTaint {
			fact := in
			for _, node := range blk.Nodes {
				fact = apply(node, fact, false)
			}
			return fact
		},
	}
	res := flow.Forward(g)

	// Reporting sweep: after the fixpoint, one deterministic pass in
	// block order, re-interpreting each block from its stable in-fact
	// with reporting enabled. Every node belongs to exactly one block
	// and the sweep visits each block once, so each use site reports
	// at most once.
	for _, blk := range g.Blocks {
		if !res.Reached[blk.Index] {
			continue
		}
		fact := res.In[blk.Index]
		for _, node := range blk.Nodes {
			fact = apply(node, fact, true)
		}
	}
}

// sortedArg returns the object of a slice being sorted by call, or nil:
// sort.Strings/Ints/Float64s/Slice/SliceStable/Sort/Stable and
// slices.Sort/SortFunc/SortStableFunc all count.
func sortedArg(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return nil
	}
	ok := false
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			ok = true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			ok = true
		}
	}
	if !ok {
		return nil
	}
	// The sorted value is the first argument, possibly wrapped
	// (sort.Sort(byLen(keys))): take the first identifier inside it.
	var obj types.Object
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		if id, isIdent := n.(*ast.Ident); isIdent {
			if o := identObj(pass, id); o != nil && isSliceObj(o) {
				obj = o
				return false
			}
		}
		return true
	})
	return obj
}

func isSliceObj(o types.Object) bool {
	if o == nil || o.Type() == nil {
		return false
	}
	_, ok := o.Type().Underlying().(*types.Slice)
	return ok
}

// identObj resolves an identifier to its object (use or definition).
func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.Info.Uses[id]; o != nil {
		return o
	}
	return pass.Info.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside node's
// source span.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// basicKind classifies t as "string", "float" or "".
func basicKind(t types.Type) string {
	if t == nil {
		return ""
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch b.Kind() {
	case types.String, types.UntypedString:
		return "string"
	case types.Float32, types.Float64, types.UntypedFloat:
		return "float"
	}
	return ""
}

// namedInPkg reports whether t (possibly behind a pointer) is a named
// type declared in pkgPath.
func namedInPkg(t types.Type, pkgPath string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath
}
