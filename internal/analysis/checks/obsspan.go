package checks

import (
	"go/ast"

	"gef/internal/analysis"
)

// obsPath is the import path of the observability layer every pipeline
// stage is expected to report through.
const obsPath = "gef/internal/obs"

// instrumentedPkgs are the pipeline packages whose exported entry
// points must be observable: they sit on the explain hot path and PR 1
// threaded spans through them. New exported work in these packages must
// not silently bypass the tracing layer.
var instrumentedPkgs = map[string]bool{
	"core":     true,
	"gbdt":     true,
	"gam":      true,
	"sampling": true,
	"featsel":  true,
	"shap":     true,
	"pdp":      true,
}

// Obsspan flags exported functions in instrumented pipeline packages
// that run work loops without touching the obs layer (no span, event or
// metric). Such functions are invisible to tracing: a production
// latency regression inside them cannot be attributed to a stage. The
// fix is an obs.Start span (or delegating to an instrumented variant);
// genuinely trivial loops are annotated instead.
var Obsspan = &analysis.Analyzer{
	Name: "obsspan",
	Doc:  "flags exported pipeline entry points with work loops but no obs instrumentation",
	Run:  runObsspan,
}

func runObsspan(pass *analysis.Pass) {
	if !instrumentedPkgs[pass.Pkg.Name()] {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || isTestFile(pass, fd) {
				continue
			}
			if !hasWorkLoop(fd.Body) || touchesObs(pass, fd.Body) {
				continue
			}
			pass.Reportf(fd.Name.Pos(), "exported %s.%s runs work loops without opening an obs span; add obs.Start (see internal/obs) or annotate why it stays uninstrumented", pass.Pkg.Name(), fd.Name.Name)
		}
	}
}

// hasWorkLoop reports whether body contains a for or range statement
// outside nested function literals (closures may run elsewhere and are
// their callers' responsibility).
func hasWorkLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// touchesObs reports whether body references anything from the obs
// package: opening a span, recording an event, or updating a metric all
// count as being visible to the observability layer.
func touchesObs(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		if obj := pass.Info.ObjectOf(id); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == obsPath {
			found = true
		}
		return !found
	})
	return found
}
