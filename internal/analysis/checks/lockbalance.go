package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gef/internal/analysis"
	"gef/internal/analysis/cfg"
)

// Lockbalance is the flow-sensitive mutex audit. The engine artifact
// cache, the obs recorder/registry and the gam basis cache all use
// hand-balanced Lock/Unlock pairs (holding a lock across newBSpline or
// penaltyBlock would serialize the whole fit, so defer is deliberately
// not used there) — and a Lock left held on one early-return or panic
// path deadlocks the process only when that path and a second caller
// race, which ordinary tests essentially never arrange.
//
// For every function it runs a forward dataflow over the control-flow
// graph tracking, per mutex expression (m.mu, e.mu — read and write
// sides of an RWMutex separately), whether the lock is held. At the
// exit node a lock that is held on every path is reported as a leak,
// and one held on only some paths as a path imbalance; deferred
// Unlock/RUnlock calls are applied at exit first, since that is where
// the runtime runs them.
//
// Functions whose name contains "lock" (lock/unlock helpers that hand
// a held mutex to their caller by design) are exempt.
var Lockbalance = &analysis.Analyzer{
	Name: "lockbalance",
	Doc:  "flags sync.Mutex/RWMutex locked on a path but not unlocked on every exit",
	Run:  runLockbalance,
}

// lock states form a small join-semilattice per mutex key: absent
// (never touched ≡ released) ⊔ anything = that thing or mixed.
const (
	lockHeld     int8 = 1 // held on every path reaching this point
	lockReleased int8 = 2 // explicitly released (or never acquired)
	lockMixed    int8 = 3 // held on some paths, released on others
)

type lockFact map[string]int8

func lockJoin(a, b lockFact) lockFact {
	out := make(lockFact, len(a)+len(b))
	get := func(m lockFact, k string) int8 {
		if s, ok := m[k]; ok {
			return s
		}
		return lockReleased
	}
	for k := range a {
		out[k] = joinState(get(a, k), get(b, k))
	}
	for k := range b {
		if _, done := out[k]; !done {
			out[k] = joinState(get(a, k), get(b, k))
		}
	}
	return out
}

func joinState(x, y int8) int8 {
	if x == y {
		return x
	}
	return lockMixed
}

func lockEqual(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func runLockbalance(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, fn := range funcNodes(f) {
			if isTestFile(pass, fn.node) {
				continue
			}
			// Lock helpers hold by design ("lock", "rlockAll", ...).
			// Strip "block" first so penaltyBlock/newBlock-style names
			// are not mistaken for lock helpers.
			low := strings.ReplaceAll(strings.ToLower(fn.name), "block", "")
			if strings.Contains(low, "lock") {
				continue
			}
			checkLockBalance(pass, fn)
		}
	}
}

// mutexOp classifies one Lock/Unlock-family call on a mutex-typed
// receiver. key distinguishes the read and write side of an RWMutex
// ("e.mu" vs "e.mu/R"), because RLock is balanced by RUnlock only.
type mutexOp struct {
	key     string
	acquire bool
	pos     token.Pos
}

func checkLockBalance(pass *analysis.Pass, fn funcNode) {
	// Cheap pre-scan: functions without an acquire need no dataflow.
	ops := make(map[ast.Node]*mutexOp) // CallExpr → op
	hasAcquire := false
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != fn.node {
			return false // nested closures are separate functions
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op := classifyMutexOp(pass, call); op != nil {
				ops[call] = op
				hasAcquire = hasAcquire || op.acquire
			}
		}
		return true
	})
	if !hasAcquire {
		return
	}

	g := pass.CFG(fn.node)

	// Deferred releases run on every path to exit; collect their keys.
	// A deferred closure body counts too: `defer func() { e.mu.Unlock() }()`.
	deferredRelease := make(map[string]bool)
	for _, d := range g.Defers {
		ast.Inspect(d.Call, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if op := classifyMutexOp(pass, call); op != nil && !op.acquire {
					deferredRelease[op.key] = true
				}
			}
			return true
		})
		// The deferred call expression itself: `defer e.mu.Unlock()`.
		if op := classifyMutexOp(pass, d.Call); op != nil && !op.acquire {
			deferredRelease[op.key] = true
		}
	}

	acquirePos := make(map[string]token.Pos) // first acquire per key, for reporting
	transfer := func(blk *cfg.Block, in lockFact) lockFact {
		out := in
		copied := false
		for _, node := range blk.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				op := ops[call]
				if op == nil {
					return true
				}
				if !copied {
					cp := make(lockFact, len(out)+1)
					for k, v := range out {
						cp[k] = v
					}
					out, copied = cp, true
				}
				if op.acquire {
					out[op.key] = lockHeld
					if _, seen := acquirePos[op.key]; !seen {
						acquirePos[op.key] = op.pos
					}
				} else {
					out[op.key] = lockReleased
				}
				return true
			})
		}
		return out
	}

	flow := cfg.Flow[lockFact]{
		Boundary: lockFact{},
		Join:     lockJoin,
		Equal:    lockEqual,
		Transfer: transfer,
	}
	res := flow.Forward(g)
	if !res.Reached[g.Exit.Index] {
		return // no path terminates (infinite loop / select{})
	}

	exit := res.In[g.Exit.Index]
	keys := make([]string, 0, len(exit))
	for k := range exit {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if deferredRelease[k] {
			continue
		}
		pos, ok := acquirePos[k]
		if !ok {
			continue // released-only key (unlock helper pattern); nothing held
		}
		switch exit[k] {
		case lockHeld:
			pass.Reportf(pos, "%s is locked here but never unlocked before %s returns; add an Unlock or defer", k, fn.name)
		case lockMixed:
			pass.Reportf(pos, "%s is locked here but not unlocked on every path out of %s (early return or panic leaks the lock)", k, fn.name)
		}
	}
}

// classifyMutexOp returns the op when call is (R)Lock/(R)Unlock on a
// sync.Mutex or sync.RWMutex receiver rooted in a stable identifier
// chain; nil otherwise.
func classifyMutexOp(pass *analysis.Pass, call *ast.CallExpr) *mutexOp {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var acquire, read bool
	switch sel.Sel.Name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return nil
	}
	if !isMutexType(pass.TypeOf(sel.X)) {
		return nil
	}
	key := exprKey(sel.X)
	if key == "" {
		return nil
	}
	if read {
		key += "/R"
	}
	return &mutexOp{key: key, acquire: acquire, pos: call.Pos()}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex, possibly
// behind a pointer.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// exprKey flattens a receiver expression into a stable dotted path
// ("e.mu", "s.reg.mu"). Expressions with calls, indexes or anything
// whose identity the analysis cannot track yield "".
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprKey(e.X)
	}
	return ""
}

// funcNode is one function-shaped unit of analysis: a declaration or a
// literal, with a printable name.
type funcNode struct {
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt
	name string
}

// funcNodes collects every function declaration and literal in f, outer
// first. Literals get the enclosing declaration's name with a "+func"
// suffix for diagnostics.
func funcNodes(f *ast.File) []funcNode {
	var out []funcNode
	var enclosing string
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			enclosing = n.Name.Name
			if n.Body != nil {
				out = append(out, funcNode{node: n, body: n.Body, name: n.Name.Name})
			}
		case *ast.FuncLit:
			name := enclosing + "+func"
			if enclosing == "" {
				name = "func literal"
			}
			out = append(out, funcNode{node: n, body: n.Body, name: name})
		}
		return true
	})
	return out
}
