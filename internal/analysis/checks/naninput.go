package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"gef/internal/analysis"
)

// Naninput flags exported functions that feed a float parameter straight
// into a domain-restricted math call (Log, Sqrt, ...) or use it as a
// divisor without any finite/domain check in the body. Exported
// functions are the trust boundary of each package: a NaN, ±Inf or
// out-of-domain value entering math.Log or a division there does not
// fail — it silently poisons every downstream GCV score, deviance and
// fidelity number, which is exactly the failure mode the robust
// degradation ladder exists to catch early. The fix is a guard
// (math.IsNaN / math.IsInf or a range comparison) on the parameter
// before the sink; deliberate pass-throughs are annotated with
// //lint:ignore naninput <reason>.
var Naninput = &analysis.Analyzer{
	Name: "naninput",
	Doc:  "flags exported funcs feeding unchecked float params into math.Log/Sqrt or divisions",
	Run:  runNaninput,
}

// domainFuncs are math functions with a restricted domain where a NaN or
// out-of-range input yields NaN instead of an error.
var domainFuncs = map[string]bool{
	"Log": true, "Log2": true, "Log10": true, "Log1p": true,
	"Sqrt": true, "Asin": true, "Acos": true, "Acosh": true, "Atanh": true,
}

func runNaninput(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || isTestFile(pass, fd) {
				continue
			}
			checkNaninputFunc(pass, fd)
		}
	}
}

func checkNaninputFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// The scalar float parameters of the exported function, by object.
	params := make(map[types.Object]string)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.ObjectOf(name)
			if obj != nil && isFloat(obj.Type()) {
				params[obj] = name.Name
			}
		}
	}
	if len(params) == 0 {
		return
	}

	// First pass: a parameter is considered checked when the body
	// mentions it inside math.IsNaN / math.IsInf or as an operand of any
	// comparison — both idioms establish its domain before use.
	checked := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if name, ok := mathCallee(pass, e); ok && (name == "IsNaN" || name == "IsInf") {
				for _, arg := range e.Args {
					markParams(pass, arg, params, checked)
				}
			}
		case *ast.BinaryExpr:
			switch e.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				markParams(pass, e.X, params, checked)
				markParams(pass, e.Y, params, checked)
			}
		}
		return true
	})

	// Second pass: report unchecked parameters reaching a sink.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if name, ok := mathCallee(pass, e); ok && domainFuncs[name] {
				for _, arg := range e.Args {
					if obj, pname := usedParam(pass, arg, params, checked); obj != nil {
						pass.Reportf(arg.Pos(),
							"exported func %s feeds float parameter %q into math.%s without a finite/domain check (math.IsNaN/IsInf or a range guard)",
							fd.Name.Name, pname, name)
						checked[obj] = true // one report per parameter
					}
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.QUO && isFloat(pass.TypeOf(e)) {
				if obj, pname := usedParam(pass, e.Y, params, checked); obj != nil {
					pass.Reportf(e.Y.Pos(),
						"exported func %s divides by float parameter %q without a finite/domain check (math.IsNaN/IsInf or a range guard)",
						fd.Name.Name, pname)
					checked[obj] = true
				}
			}
		case *ast.AssignStmt:
			if e.Tok == token.QUO_ASSIGN {
				for _, rhs := range e.Rhs {
					if obj, pname := usedParam(pass, rhs, params, checked); obj != nil {
						pass.Reportf(rhs.Pos(),
							"exported func %s divides by float parameter %q without a finite/domain check (math.IsNaN/IsInf or a range guard)",
							fd.Name.Name, pname)
						checked[obj] = true
					}
				}
			}
		}
		return true
	})
}

// mathCallee returns the selector name of a math.<Name> call.
func mathCallee(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkg, ok := pass.Info.ObjectOf(id).(*types.PkgName)
	if !ok || pkg.Imported().Path() != "math" {
		return "", false
	}
	return sel.Sel.Name, true
}

// markParams marks every parameter object referenced inside e as checked.
func markParams(pass *analysis.Pass, e ast.Expr, params map[types.Object]string, checked map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				if _, isParam := params[obj]; isParam {
					checked[obj] = true
				}
			}
		}
		return true
	})
}

// usedParam returns the first unchecked parameter referenced inside e.
func usedParam(pass *analysis.Pass, e ast.Expr, params map[types.Object]string, checked map[types.Object]bool) (types.Object, string) {
	var found types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				if _, isParam := params[obj]; isParam && !checked[obj] {
					found = obj
				}
			}
		}
		return true
	})
	if found == nil {
		return nil, ""
	}
	return found, params[found]
}
