package checks

import (
	"go/ast"
	"go/types"

	"gef/internal/analysis"
)

// Errdrop flags discarded error returns: calls whose error result is
// ignored entirely (expression statements, go/defer statements) and
// errors assigned to the blank identifier. A dropped error in a results
// writer or CLI turns a failed experiment export into a silently
// truncated file — the paper's tables would be reproduced from partial
// data with no signal that anything went wrong.
//
// Deliberately not flagged:
//   - test files (asserting helpers there idiomatically drop errors);
//   - fmt.Print/Printf/Println, and fmt.Fprint* directed at os.Stdout
//     or os.Stderr: console output is best-effort by convention;
//   - writes through strings.Builder or bytes.Buffer, including via
//     fmt.Fprint*: their Write methods are documented to never fail.
var Errdrop = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "flags call results and blank assignments that discard an error",
	Run:  runErrdrop,
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// callResults returns the individual result types of a call expression.
func callResults(pass *analysis.Pass, call *ast.CallExpr) []types.Type {
	t := pass.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return nil
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := range out {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		return []types.Type{t}
	}
}

// calleeFunc resolves the called function object, or nil for indirect
// calls and conversions.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.ObjectOf(id).(*types.Func)
	return fn
}

// neverFailsWriter reports whether t is strings.Builder or
// bytes.Buffer (possibly behind a pointer), whose Write methods are
// documented to always return a nil error.
func neverFailsWriter(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	path, name := n.Obj().Pkg().Path(), n.Obj().Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}

// isConsoleWriter reports whether expr is os.Stdout or os.Stderr.
func isConsoleWriter(pass *analysis.Pass, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Info.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stdout" || obj.Name() == "Stderr"
}

// errdropExempt reports whether a discarded error from this call is
// conventional: stdout printing, or writes that cannot fail.
func errdropExempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 &&
				(neverFailsWriter(pass.TypeOf(call.Args[0])) || isConsoleWriter(pass, call.Args[0]))
		}
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return neverFailsWriter(recv.Type())
	}
	return false
}

func runErrdrop(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = stmt.Call
			case *ast.DeferStmt:
				call = stmt.Call
			case *ast.AssignStmt:
				checkBlankAssign(pass, stmt)
				return true
			}
			if call == nil || isTestFile(pass, n) {
				return true
			}
			for _, rt := range callResults(pass, call) {
				if isErrorType(rt) && !errdropExempt(pass, call) {
					pass.Reportf(call.Pos(), "call discards its error result; handle it or annotate with //lint:ignore errdrop <reason>")
					break
				}
			}
			return true
		})
	}
}

// checkBlankAssign flags `_ = f()` and `v, _ := g()` where the blanked
// position carries an error.
func checkBlankAssign(pass *analysis.Pass, stmt *ast.AssignStmt) {
	if isTestFile(pass, stmt) {
		return
	}
	report := func(pos ast.Node) {
		pass.Reportf(pos.Pos(), "error discarded into _; handle it or annotate with //lint:ignore errdrop <reason>")
	}
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		// Multi-value call: match blanks against tuple components.
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		results := callResults(pass, call)
		for i, lhs := range stmt.Lhs {
			if isBlank(lhs) && i < len(results) && isErrorType(results[i]) && !errdropExempt(pass, call) {
				report(lhs)
			}
		}
		return
	}
	for i, lhs := range stmt.Lhs {
		if !isBlank(lhs) || i >= len(stmt.Rhs) {
			continue
		}
		rhs := stmt.Rhs[i]
		if !isErrorType(pass.TypeOf(rhs)) {
			continue
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && errdropExempt(pass, call) {
			continue
		}
		report(lhs)
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
