// Package floatcmp is golden-test input for the floatcmp analyzer.
package floatcmp

import "math"

func eq(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func ne(a, b float64) bool {
	return a != b // want "floating-point != comparison"
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want "floating-point == comparison"
}

// isNaN is the canonical self-comparison NaN probe — exempt.
func isNaN(x float64) bool {
	return x != x
}

// isZero compares against a literal zero, an exactness guard — exempt.
func isZero(x float64) bool {
	return x == 0
}

// almostEqual is a tolerance helper by name — exempt inside.
func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) < 1e-9
}

// ints compares integers — not a float comparison, exempt.
func ints(a, b int) bool {
	return a == b
}

// constants fold at compile time — exempt.
func constants() bool {
	const x = 0.1
	const y = 0.2
	return x+y == 0.3
}
