// Package ctxdrop is golden-test input for the context-plumbing
// analyzer.
package ctxdrop

import "context"

func leaf(ctx context.Context, n int) int {
	_ = ctx
	return n
}

func noCtx(n int) int { return n }

// Passing the caller's ctx through: the whole point. Clean.
func plumbed(ctx context.Context, n int) int {
	return leaf(ctx, n)
}

// Deriving from the caller's ctx keeps the chain. Clean.
func derived(ctx context.Context, n int) int {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return leaf(sub, n)
}

// A fresh Background severs deadline/cancellation from the caller.
func dropped(ctx context.Context, n int) int {
	_ = ctx
	return leaf(context.Background(), n) // want "context.Background\(\) passed to leaf"
}

// TODO is the same hole with a different name.
func todoDropped(ctx context.Context, n int) int {
	_ = ctx
	return leaf(context.TODO(), n) // want "context.TODO\(\) passed to leaf"
}

// No ctx in scope: Background is the only honest choice. Clean.
func entryPoint(n int) int {
	return leaf(context.Background(), n)
}

// Callees that don't take a ctx are out of scope. Clean.
func mixed(ctx context.Context, n int) int {
	_ = ctx
	return noCtx(n)
}

// A closure without its own ctx param still sees the outer one.
func inClosure(ctx context.Context, n int) int {
	f := func(x int) int {
		return leaf(context.Background(), x) // want "context.Background\(\) passed to leaf"
	}
	_ = ctx
	return f(n)
}

// A closure that takes its own ctx re-scopes the rule; with no outer
// use of a fresh context there is nothing to flag here.
func closureWithCtx(n int) func(context.Context) int {
	return func(ctx context.Context) int {
		return leaf(ctx, n)
	}
}

// Detaching on purpose is fine when the reason is stated.
func detached(ctx context.Context, n int) int {
	_ = ctx
	//lint:ignore ctxdrop flush must outlive the request on purpose
	return leaf(context.Background(), n)
}
