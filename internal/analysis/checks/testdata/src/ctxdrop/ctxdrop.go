// Package ctxdrop is golden-test input for the context-plumbing
// analyzer.
package ctxdrop

import (
	"context"
	"net/http"
)

func leaf(ctx context.Context, n int) int {
	_ = ctx
	return n
}

func noCtx(n int) int { return n }

// Passing the caller's ctx through: the whole point. Clean.
func plumbed(ctx context.Context, n int) int {
	return leaf(ctx, n)
}

// Deriving from the caller's ctx keeps the chain. Clean.
func derived(ctx context.Context, n int) int {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return leaf(sub, n)
}

// A fresh Background severs deadline/cancellation from the caller.
func dropped(ctx context.Context, n int) int {
	_ = ctx
	return leaf(context.Background(), n) // want "context.Background\(\) passed to leaf"
}

// TODO is the same hole with a different name.
func todoDropped(ctx context.Context, n int) int {
	_ = ctx
	return leaf(context.TODO(), n) // want "context.TODO\(\) passed to leaf"
}

// No ctx in scope: Background is the only honest choice. Clean.
func entryPoint(n int) int {
	return leaf(context.Background(), n)
}

// Callees that don't take a ctx are out of scope. Clean.
func mixed(ctx context.Context, n int) int {
	_ = ctx
	return noCtx(n)
}

// A closure without its own ctx param still sees the outer one.
func inClosure(ctx context.Context, n int) int {
	f := func(x int) int {
		return leaf(context.Background(), x) // want "context.Background\(\) passed to leaf"
	}
	_ = ctx
	return f(n)
}

// A closure that takes its own ctx re-scopes the rule; with no outer
// use of a fresh context there is nothing to flag here.
func closureWithCtx(n int) func(context.Context) int {
	return func(ctx context.Context) int {
		return leaf(ctx, n)
	}
}

// Detaching on purpose is fine when the reason is stated.
func detached(ctx context.Context, n int) int {
	_ = ctx
	//lint:ignore ctxdrop flush must outlive the request on purpose
	return leaf(context.Background(), n)
}

// --- Handler idioms (ISSUE 9): an *http.Request carries the request
// context, so handlers must thread r.Context(), not re-derive from
// Background.

func ctxLeaf(ctx context.Context) error {
	_ = ctx
	return nil
}

// A handler threading the request context: the serving-layer norm.
// Clean.
func handlerPlumbed(w http.ResponseWriter, r *http.Request) {
	_ = w
	_ = ctxLeaf(r.Context())
}

// A handler minting a fresh Background detaches the work from client
// disconnects and the server budget.
func handlerDropped(w http.ResponseWriter, r *http.Request) {
	_ = w
	_ = r
	_ = ctxLeaf(context.Background()) // want "context.Background\(\) passed to ctxLeaf"
}

// Handler literals are how mux wiring builds endpoints; the rule must
// see inside them even though the enclosing function has no context.
func wireMux(mux *http.ServeMux) {
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		_ = ctxLeaf(r.Context())
	})
	mux.HandleFunc("/dropped", func(w http.ResponseWriter, r *http.Request) {
		_ = w
		_ = r
		_ = ctxLeaf(context.TODO()) // want "context.TODO\(\) passed to ctxLeaf"
	})
}

// A closure without parameters inside a handler still sees the request
// context.
func handlerClosure(w http.ResponseWriter, r *http.Request) {
	_ = w
	_ = r
	f := func() error {
		return ctxLeaf(context.Background()) // want "context.Background\(\) passed to ctxLeaf"
	}
	_ = f()
}

// A ctx parameter outranks the request: the caller already derived the
// right context, and threading it is clean.
func handlerHelper(ctx context.Context, r *http.Request) error {
	_ = r
	return ctxLeaf(ctx)
}

// Detaching from the request lifecycle on purpose (audit log must
// survive the client hanging up) is fine when the reason is stated.
func handlerDetached(w http.ResponseWriter, r *http.Request) {
	_ = w
	_ = r
	//lint:ignore ctxdrop audit write must outlive the request on purpose
	_ = ctxLeaf(context.Background())
}
