// Package lockbalance is golden-test input for the flow-sensitive
// mutex balance analyzer.
package lockbalance

import (
	"errors"
	"sync"
)

type cache struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	entries map[string]int
}

// Balanced on the straight line: clean.
func (c *cache) balanced(k string) int {
	c.mu.Lock()
	v := c.entries[k]
	c.mu.Unlock()
	return v
}

// Deferred unlock: clean on every path including the early return.
func (c *cache) deferred(k string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[k]
	if !ok {
		return 0, errors.New("miss")
	}
	return v, nil
}

// Unlock on both branch exits: clean — the analyzer must follow both
// paths rather than demanding a single textual Unlock.
func (c *cache) branchBalanced(k string) (int, bool) {
	c.mu.Lock()
	if v, ok := c.entries[k]; ok {
		c.mu.Unlock()
		return v, true
	}
	c.mu.Unlock()
	return 0, false
}

// Never unlocked at all.
func (c *cache) leaks(k string) int {
	c.mu.Lock() // want "c.mu is locked here but never unlocked"
	return c.entries[k]
}

// Unlocked on the hit path, leaked on the miss path.
func (c *cache) leaksOnMiss(k string) (int, error) {
	c.mu.Lock() // want "not unlocked on every path"
	if v, ok := c.entries[k]; ok {
		c.mu.Unlock()
		return v, nil
	}
	return 0, errors.New("miss") // forgot the unlock here
}

// Explicit panic while holding: the panic unwinds without running any
// unlock, so the lock escapes on that path.
func (c *cache) leaksOnPanic(k string) int {
	c.mu.Lock() // want "not unlocked on every path"
	v, ok := c.entries[k]
	if !ok {
		panic("miss")
	}
	c.mu.Unlock()
	return v
}

// RLock balanced by RUnlock: clean, and independent of the write side.
func (c *cache) readBalanced(k string) int {
	c.rw.RLock()
	v := c.entries[k]
	c.rw.RUnlock()
	return v
}

// RLock "balanced" by Unlock releases the wrong side.
func (c *cache) readLeaks(k string) int {
	c.rw.RLock() // want "c.rw/R is locked here but never unlocked"
	v := c.entries[k]
	c.rw.Unlock() // wrong side: releases the write lock, not the read lock
	return v
}

// Loop with unlock after: the back edge must not confuse the analysis.
func (c *cache) loopBalanced(keys []string) int {
	total := 0
	c.mu.Lock()
	for _, k := range keys {
		total += c.entries[k]
	}
	c.mu.Unlock()
	return total
}

// Lock helpers are exempt by name: handing a held lock to the caller
// is their contract.
func (c *cache) lockForUpdate() {
	c.mu.Lock()
}

// A nested closure is its own function: its balanced pair must not
// leak facts into the enclosing function, and vice versa.
func (c *cache) closures(k string) func() int {
	get := func() int {
		c.mu.Lock()
		v := c.entries[k]
		c.mu.Unlock()
		return v
	}
	return get
}

// The enclosing function leaks even though the closure is balanced.
func (c *cache) closureLeaks(k string) func() {
	c.mu.Lock() // want "never unlocked"
	return func() {
		c.mu.Unlock() // runs later, on the caller's schedule — not on this path
	}
}
