// Package detrand is golden-test input for the detrand analyzer.
package detrand

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func global() int {
	return rand.Intn(10) // want "draws from the global source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "draws from the global source"
}

func timeSeeded() *rand.Rand {
	src := rand.NewSource(time.Now().UnixNano()) // want "NewSource seeded from time.Now"
	return rand.New(src)
}

func dumpMap(m map[string]int) {
	for k, v := range m { // want "map iteration feeds serialized output"
		fmt.Println(k, v)
	}
}

// An explicitly seeded source is exactly the approved path — exempt.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Methods on an explicit *rand.Rand are exempt.
func draws(rng *rand.Rand) int {
	return rng.Intn(10)
}

// Accumulating over a map is order-independent — exempt.
func sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// Collect-and-sort before printing is the approved pattern — exempt.
func dumpSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
