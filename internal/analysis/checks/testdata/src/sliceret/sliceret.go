// Package sliceret is golden-test input for the sliceret analyzer.
package sliceret

type inner struct {
	levels []float64
}

// Model mimics a fitted model with internal backing storage.
type Model struct {
	beta  []float64
	names map[string]int
	in    inner

	Data []float64
}

// Beta aliases an internal slice — flagged.
func (m *Model) Beta() []float64 {
	return m.beta // want "exported method Beta returns internal field beta by reference"
}

// Names aliases an internal map — flagged.
func (m *Model) Names() map[string]int {
	return m.names // want "exported method Names returns internal field names by reference"
}

// Levels aliases through a receiver-rooted local — still flagged.
func (m *Model) Levels() []float64 {
	in := &m.in
	return in.levels // want "exported method Levels returns internal field levels by reference"
}

// BetaCopy copies — exempt.
func (m *Model) BetaCopy() []float64 {
	return append([]float64(nil), m.beta...)
}

// Fresh returns newly allocated storage — exempt.
func (m *Model) Fresh() []float64 {
	out := make([]float64, len(m.beta))
	copy(out, m.beta)
	return out
}

// All returns an exported field: direct access already aliases it, the
// accessor adds nothing — exempt.
func (m *Model) All() []float64 { return m.Data }

// size is unexported — exempt.
func (m *Model) size() int { return len(m.beta) }

var _ = (*Model)(nil).size
