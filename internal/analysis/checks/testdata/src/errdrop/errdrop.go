// Package errdrop is golden-test input for the errdrop analyzer.
package errdrop

import (
	"fmt"
	"hash"
	"os"
	"strings"
)

func dropCall() {
	os.Remove("x") // want "call discards its error result"
}

func dropDefer() {
	f, err := os.Open("x")
	if err != nil {
		return
	}
	defer f.Close() // want "call discards its error result"
}

func dropBlank() {
	_ = os.Remove("x") // want "error discarded into _"
}

func dropMulti() {
	f, _ := os.Open("x") // want "error discarded into _"
	if f != nil {
		_ = f.Close() // want "error discarded into _"
	}
}

// Console printing never carries a recoverable error — exempt.
func console(v int) {
	fmt.Println("value:", v)
	fmt.Fprintf(os.Stderr, "warn: %d\n", v)
}

// strings.Builder and bytes.Buffer writes are documented never to fail —
// exempt.
func builder(sb *strings.Builder) string {
	sb.WriteString("x")
	fmt.Fprintf(sb, "%d", 1)
	return sb.String()
}

// Handled errors are the approved path — exempt.
func handled() error {
	if err := os.Remove("x"); err != nil {
		return err
	}
	return nil
}

// hash.Hash writes never fail, but unlike strings.Builder the analyzer
// does not special-case them — a bare write is flagged, and fingerprint
// hashing suppresses it with the documented annotation.
func hashBare(h hash.Hash, b []byte) {
	h.Write(b) // want "call discards its error result"
}

func hashAnnotated(h hash.Hash, b []byte) {
	//lint:ignore errdrop hash.Hash Write never returns an error
	h.Write(b)
}
