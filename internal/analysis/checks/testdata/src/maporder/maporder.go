// Package maporder is golden-test input for the flow-sensitive
// map-iteration-order analyzer.
package maporder

import (
	"sort"
	"strings"
)

// The approved idiom: collect keys, sort, then use. Must stay clean on
// every line — flagging this would train people to ignore the check.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Collected but returned without sorting: the caller sees a different
// order every run.
func unsortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys // want "appended under map iteration .* used here without sorting"
}

// Sorted on one path, raw on the other: flow-sensitivity is the point —
// a syntactic "is there a sort somewhere" check gets this wrong in both
// directions.
func sortedSometimes(m map[string]int, wantSorted bool) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	if wantSorted {
		sort.Strings(keys)
		return keys
	}
	return keys // want "appended under map iteration .* used here without sorting"
}

// Ranging over the unsorted accumulation is a use too.
func rangeUse(m map[string]int) int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	total := 0
	for _, k := range keys { // want "appended under map iteration .* used here without sorting"
		total += len(k)
	}
	return total
}

// sort.Slice with a comparator counts as the fix.
func sortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// len() of the accumulation is order-insensitive: clean.
func lenUse(m map[string]int) int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return len(keys)
}

// Overwriting the slice kills the taint: nothing map-ordered survives.
func overwritten(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	keys = nil
	return keys
}

// String building across iterations, two shapes.
func concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "string built up across map iterations"
	}
	return s
}

func builder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "string built in map-iteration order"
	}
	return b.String()
}

// Float accumulation: addition does not commute bitwise.
func floatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "float accumulated across map iterations"
	}
	return total
}

// Integer accumulation commutes exactly: clean.
func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// A loop-local accumulator resets every iteration: clean.
func loopLocal(m map[string][]string) int {
	n := 0
	for _, vs := range m {
		joined := ""
		for _, v := range vs {
			joined += v
		}
		n += len(joined)
	}
	return n
}

// Ranging a slice (not a map) never triggers anything.
func sliceRange(xs []string) string {
	s := ""
	for _, x := range xs {
		s += x
	}
	return s
}
