// Golden-test input for the obsmetric analyzer. The package path is
// golden/obsmetric — outside gef/internal/obs — so dynamically built
// metric names must be flagged.
package obsmetric

import (
	"fmt"

	"gef/internal/obs"
)

const prefix = "engine.cache_hits"

// dynamicSuffix concatenates a variable into the metric name — flagged.
func dynamicSuffix(stage string, hits int64) {
	obs.Count("engine.cache_hits."+stage, hits) // want "metric name is built at runtime"
}

// sprintfName formats the metric name — flagged.
func sprintfName(shard int) {
	obs.SetGauge(fmt.Sprintf("shard.%d.load", shard), 0.5) // want "metric name is built at runtime"
}

// registryDynamic goes through the registry directly — flagged.
func registryDynamic(strategy string) {
	obs.Metrics().Counter("featsel.pairs_scored." + strategy).Inc() // want "metric name is built at runtime"
}

// dynamicHistogram observes under a computed name — flagged.
func dynamicHistogram(site string, v float64) {
	obs.Observe("lat."+site, v) // want "metric name is built at runtime"
}

// constantName uses a literal — exempt.
func constantName(hits int64) {
	obs.Count("engine.cache_hits", hits)
}

// constantConcat folds at compile time — exempt.
func constantConcat() {
	obs.Metrics().Counter(prefix + ".total").Inc()
}

// labeledVector is the sanctioned dynamic form: a constant family name
// with the dynamic part as a label value — exempt.
func labeledVector(stage string, hits int64) {
	obs.Metrics().CounterVec("engine.cache_hits", "stage").With(stage).Add(hits)
}

// annotated documents a deliberate dynamic name — suppressed.
func annotated(tenant string) {
	//lint:ignore obsmetric bounded cardinality: tenant set is fixed at config load
	obs.Count("tenant.requests."+tenant, 1)
}
