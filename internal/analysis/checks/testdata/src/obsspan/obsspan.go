// Golden-test input for the obsspan analyzer. The package is named gbdt
// so it falls inside the instrumented pipeline set; the directory name
// does not matter to the check.
package gbdt

import (
	"context"

	"gef/internal/obs"
)

// Train has a work loop and never touches obs — flagged.
func Train(xs []float64) float64 { // want "exported gbdt.Train runs work loops without opening an obs span"
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Predict opens a span — exempt.
func Predict(xs []float64) float64 {
	_, sp := obs.Start(context.Background(), "gbdt.predict", obs.Int("rows", len(xs)))
	defer sp.End()
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// helper is unexported, so it is its callers' responsibility — exempt.
func helper(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Name is exported but loop-free — exempt.
func Name() string { return "gbdt" }

// CacheStats mirrors the explanation engine's stats snapshot: an
// exported work loop annotated as a diagnostic read — suppressed.
//
//lint:ignore obsspan diagnostic snapshot; spanning it would distort the traces it reports on
func CacheStats(counts map[string]int) int {
	var total int
	for _, c := range counts {
		total += c
	}
	return total
}

var _ = helper
