// Package parcapture is golden-test input for the shared-capture
// analyzer over internal/par closures.
package parcapture

import (
	"context"

	"gef/internal/par"
)

// Chunk-indexed writes: every slot is owned by exactly one iteration of
// exactly one chunk. Clean.
func ownedWrites(ctx context.Context, xs []float64) []float64 {
	out := make([]float64, len(xs))
	_ = par.For(ctx, len(xs), 0, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = xs[i] * 2
		}
	})
	return out
}

// Writing a per-chunk slot by the chunk parameter. Clean.
func perChunkSlots(ctx context.Context, n int) []int {
	partials := make([]int, 64)
	_ = par.For(ctx, n, 64, func(chunk, lo, hi int) {
		for i := lo; i < hi; i++ {
			partials[chunk] += i
		}
	})
	return partials
}

// A shared scalar accumulated by every chunk: the classic race the
// -race gate only sees on a cooperative schedule.
func sharedSum(ctx context.Context, xs []float64) float64 {
	total := 0.0
	_ = par.For(ctx, len(xs), 0, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i] // want "captured total is written by every chunk"
		}
	})
	return total
}

// Chunk-constant index: every chunk writes slot 0.
func constantSlot(ctx context.Context, xs []float64) float64 {
	out := make([]float64, 1)
	_ = par.For(ctx, len(xs), 0, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[0] += xs[i] // want "write to captured out .* is not chunk-indexed"
		}
	})
	return out[0]
}

// Captured-variable index that is not chunk-local: j means the same
// slot to every chunk.
func capturedIndex(ctx context.Context, xs []float64, j int) []float64 {
	out := make([]float64, len(xs))
	_ = par.For(ctx, len(xs), 0, func(_, lo, hi int) {
		out[j] = xs[j] // want "write to captured out .* is not chunk-indexed"
	})
	return out
}

// Assigning the captured slice header itself (append reallocates it).
func appendRace(ctx context.Context, xs []float64) []float64 {
	var kept []float64
	_ = par.For(ctx, len(xs), 0, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if xs[i] > 0 {
				kept = append(kept, xs[i]) // want "captured kept is written by every chunk"
			}
		}
	})
	return kept
}

// Closure-local accumulator combined via MapReduce: the approved
// pattern, must stay clean — including the sequential reduce func.
func mapReduceClean(ctx context.Context, xs []float64) float64 {
	total, _ := par.MapReduce(ctx, len(xs), 0,
		func(_, lo, hi int) float64 {
			sum := 0.0
			for i := lo; i < hi; i++ {
				sum += xs[i]
			}
			return sum
		},
		func(a, b float64) float64 { return a + b })
	return total
}

// The mapf of MapReduce is concurrent like a For body.
func mapReduceShared(ctx context.Context, xs []float64) float64 {
	seen := 0
	total, _ := par.MapReduce(ctx, len(xs), 0,
		func(_, lo, hi int) float64 {
			seen++ // want "captured seen is written by every chunk"
			sum := 0.0
			for i := lo; i < hi; i++ {
				sum += xs[i]
			}
			return sum
		},
		func(a, b float64) float64 { return a + b })
	return total + float64(seen)
}

// Struct-field writes through a chunk-indexed element are owned.
type cell struct{ v float64 }

func fieldOwned(ctx context.Context, cells []cell) {
	_ = par.For(ctx, len(cells), 0, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			cells[i].v = 1
		}
	})
}

// Struct-field writes on a captured struct are shared.
type stats struct{ count int }

func fieldShared(ctx context.Context, xs []float64, s *stats) {
	_ = par.For(ctx, len(xs), 0, func(_, lo, hi int) {
		s.count = len(xs) // want "write to captured s .* is not chunk-indexed"
	})
}
