// Golden-test input for the rawgo analyzer. The package path is
// golden/rawgo — outside the sanctioned concurrency packages — so every
// go statement here must be flagged unless suppressed.
package rawgo

import (
	"net/http"
	"sync"
)

// fanOut spawns raw goroutines instead of going through par — flagged.
func fanOut(xs []float64) float64 {
	var mu sync.Mutex
	var wg sync.WaitGroup
	var sum float64
	for _, x := range xs {
		wg.Add(1)
		go func() { // want "raw goroutine spawn outside internal/par"
			defer wg.Done()
			mu.Lock()
			sum += x
			mu.Unlock()
		}()
	}
	wg.Wait()
	return sum
}

// fireAndForget spawns a named function — also flagged.
func fireAndForget() {
	go background() // want "raw goroutine spawn outside internal/par"
}

// annotated documents why it needs a raw spawn — suppressed.
func annotated(done chan struct{}) {
	//lint:ignore rawgo signal-only goroutine, no shared numeric state
	go func() { close(done) }()
}

func background() {}

// serial has loops but no goroutines — exempt.
func serial(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// handlerSpawn is the serving-layer shape (ISSUE 9): an HTTP handler
// forking work off the request goroutine. Concurrency in handlers must
// go through par or the serve coalescer, so a raw spawn is flagged even
// here.
func handlerSpawn(w http.ResponseWriter, r *http.Request) {
	_ = w
	go func() { // want "raw goroutine spawn outside internal/par"
		_ = r.Context()
	}()
}

// coalescedHandler documents the sanctioned exception: the single-flight
// leader must be detached from every waiter's goroutine.
func coalescedHandler(w http.ResponseWriter, r *http.Request) {
	_, _ = w, r
	//lint:ignore rawgo single-flight leader detached from waiters by design
	go background()
}
