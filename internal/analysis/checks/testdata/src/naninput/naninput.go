// Package naninput is golden-test input for the naninput analyzer.
package naninput

import "math"

// LogLoss feeds p straight into math.Log — flagged.
func LogLoss(p float64) float64 {
	return -math.Log(p) // want "feeds float parameter .p. into math.Log"
}

// Normalize divides by total without any guard — flagged.
func Normalize(x, total float64) float64 {
	return x / total // want "divides by float parameter .total."
}

// Scale divides-assigns by f without any guard — flagged.
func Scale(xs []float64, f float64) {
	for i := range xs {
		xs[i] /= f // want "divides by float parameter .f."
	}
}

// RootChecked guards v with IsNaN before the sink — exempt.
func RootChecked(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	return math.Sqrt(v)
}

// RateChecked range-guards the denominator — exempt.
func RateChecked(n, d float64) float64 {
	if d <= 0 {
		return 0
	}
	return n / d
}

// unexported functions are not a trust boundary — exempt.
func logRaw(p float64) float64 {
	return math.Log(p)
}

// IntDiv divides by an integer parameter — exempt (no NaN to propagate).
func IntDiv(n float64, k int) float64 {
	return n / float64(k)
}

// Product has float params but no sink — exempt.
func Product(a, b float64) float64 {
	return a * b
}
