package checks

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"gef/internal/analysis"
)

// Floatcmp flags == and != between floating-point values. In the GCV
// lambda search and P-IRLS convergence loops an exact float comparison
// silently turns a tolerance decision into a bit-pattern decision:
// results differ across architectures and compiler versions without any
// test failing. Comparisons must go through a tolerance helper
// (math.Abs(a-b) <= eps) or be explicitly annotated.
//
// Deliberately not flagged:
//   - x != x / x == x (the standard NaN probe);
//   - comparisons folded at compile time (both operands constant);
//   - comparisons against literal zero: `w == 0` guards a division or
//     tests an unset sentinel, which is an exactness decision, not a
//     tolerance decision (0.0 is exactly representable);
//   - comparisons inside recognized tolerance helpers, which are the
//     approved home for the raw operator.
var Floatcmp = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= on floating-point operands outside tolerance helpers",
	Run:  runFloatcmp,
}

// toleranceHelper reports whether a function name identifies an
// approved comparison helper (almostEqual, approxEq, withinTol, ...).
func toleranceHelper(name string) bool {
	n := strings.ToLower(name)
	for _, frag := range []string{"almosteq", "approxeq", "floateq", "withintol", "closeenough", "isclose"} {
		if strings.Contains(n, frag) {
			return true
		}
	}
	return false
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether tv is the constant 0 (of any numeric
// flavor: 0, 0.0, float64(0), ...).
func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

func runFloatcmp(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := pass.TypeOf(be.X), pass.TypeOf(be.Y)
			if xt == nil || yt == nil || (!isFloat(xt) && !isFloat(yt)) {
				return true
			}
			if isTestFile(pass, be) {
				return true
			}
			// Constant-folded comparisons cannot drift at runtime, and
			// comparisons against exact zero are exactness guards.
			xv, yv := pass.Info.Types[be.X], pass.Info.Types[be.Y]
			if xv.Value != nil && yv.Value != nil {
				return true
			}
			if isZeroConst(xv) || isZeroConst(yv) {
				return true
			}
			// The NaN probe: x != x.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			if fd := enclosingFunc(pass, be); fd != nil && toleranceHelper(fd.Name.Name) {
				return true
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison; use a tolerance (math.Abs(a-b) <= eps) or annotate why exact equality is intended", be.Op)
			return true
		})
	}
}
