package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"gef/internal/analysis"
)

// Sliceret flags exported methods that return an unexported slice or
// map field of their receiver by reference. Fitted models
// (forest.Forest, gam.Model) are shared read-only between request
// handlers once the service goes concurrent; an accessor that leaks an
// internal backing slice lets one caller silently corrupt every other
// caller's explanations. Accessors must copy, or annotate why aliasing
// is safe (e.g. a documented zero-copy view).
//
// The check follows simple aliasing through locals: in
//
//	bt := &m.design.terms[ti]
//	return bt.levels
//
// bt is rooted at the receiver, so the return is flagged too.
var Sliceret = &analysis.Analyzer{
	Name: "sliceret",
	Doc:  "flags exported methods returning internal slice/map fields without copying",
	Run:  runSliceret,
}

func runSliceret(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() || isTestFile(pass, fd) {
				continue
			}
			recv := receiverObj(pass, fd)
			if recv == nil {
				continue
			}
			rooted := receiverRootedLocals(pass, fd, recv)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					checkAliasedReturn(pass, fd, rooted, res)
				}
				return true
			})
		}
	}
}

// receiverObj returns the object bound to the method's receiver, or
// nil for unnamed receivers.
func receiverObj(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.Info.Defs[fd.Recv.List[0].Names[0]]
}

// receiverRootedLocals returns the receiver object plus every local
// variable assigned (transitively) from a receiver-rooted expression —
// a deliberately shallow alias analysis: selectors, indexing, address
// and dereference preserve rootedness; function calls and composite
// literals break it (copies or fresh storage).
func receiverRootedLocals(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object) map[types.Object]bool {
	rooted := map[types.Object]bool{recv: true}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.DEFINE && as.Tok != token.ASSIGN) || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil || rooted[obj] || !isRooted(pass, rooted, as.Rhs[i]) {
					continue
				}
				rooted[obj] = true
				changed = true
			}
			return true
		})
	}
	return rooted
}

// isRooted reports whether expr aliases storage reachable from a rooted
// object.
func isRooted(pass *analysis.Pass, rooted map[types.Object]bool, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := pass.Info.ObjectOf(e)
		return obj != nil && rooted[obj]
	case *ast.SelectorExpr:
		return isRooted(pass, rooted, e.X)
	case *ast.IndexExpr:
		return isRooted(pass, rooted, e.X)
	case *ast.SliceExpr:
		return isRooted(pass, rooted, e.X)
	case *ast.StarExpr:
		return isRooted(pass, rooted, e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && isRooted(pass, rooted, e.X)
	}
	return false
}

// checkAliasedReturn reports res if it is `x.field` for a
// receiver-rooted x and an unexported slice- or map-typed field.
func checkAliasedReturn(pass *analysis.Pass, fd *ast.FuncDecl, rooted map[types.Object]bool, res ast.Expr) {
	sel, ok := ast.Unparen(res).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	if !isRooted(pass, rooted, sel.X) {
		return
	}
	field := selection.Obj()
	if field.Exported() {
		return // the field is public anyway; the accessor adds no aliasing
	}
	switch field.Type().Underlying().(type) {
	case *types.Slice, *types.Map:
		pass.Reportf(res.Pos(), "exported method %s returns internal field %s by reference; copy it or annotate why the alias is safe", fd.Name.Name, field.Name())
	}
}
