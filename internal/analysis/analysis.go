// Package analysis is a from-scratch static-analysis framework built
// only on the standard library's go/parser, go/ast and go/types. It
// loads every package in the module, type-checks it against source
// (no export data, no golang.org/x/tools), and runs registered
// analyzers that report position-accurate diagnostics.
//
// The framework exists because GEF's correctness rests on numerically
// delicate code — GCV lambda search, P-IRLS convergence, split-gain
// accounting — where a silent float64 ==, a dropped error or a
// nondeterministic map iteration corrupts explanations without failing
// a test. Domain-specific analyzers live in internal/analysis/checks;
// the cmd/geflint CLI drives them and verify.sh gates on a clean run.
//
// Diagnostics can be suppressed with a directive comment on the
// offending line or the line directly above it:
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package analysis

import (
	"context"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime/debug"
	"sort"

	"gef/internal/analysis/cfg"
	"gef/internal/par"
)

// Analyzer is one named check. Run inspects the pass's package and
// reports findings through pass.Reportf.
type Analyzer struct {
	Name string // short lower-case identifier, used in directives and output
	Doc  string // one-line description shown by `geflint -list`
	Run  func(*Pass)
}

// Pass carries one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
	cfgs  map[ast.Node]*cfg.Graph
}

// CFG returns the control-flow graph of fn — an *ast.FuncDecl or
// *ast.FuncLit — building it on first request and caching it for the
// pass. Passes are not shared between goroutines (the driver runs one
// (package, analyzer) pair per pass), so the cache needs no locking.
func (p *Pass) CFG(fn ast.Node) *cfg.Graph {
	if g, ok := p.cfgs[fn]; ok {
		return g
	}
	if p.cfgs == nil {
		p.cfgs = make(map[ast.Node]*cfg.Graph)
	}
	g := cfg.FuncGraph(fn)
	p.cfgs[fn] = g
	return g
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Diagnostic is one finding, positioned in the fileset's coordinates.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
}

// Stats summarizes one Run for CI gauges (BENCH_lint.json): raw
// finding counts per check before suppression, and how many findings
// directives suppressed. Raw counts are the honest workload signal — a
// gate that requires zero surviving findings would otherwise always
// report zeros.
type Stats struct {
	Packages   int            // packages analyzed
	Analyzers  int            // analyzers run over each package
	Raw        map[string]int // findings per check, before suppression
	Suppressed int            // findings dropped by lint:ignore / lint:file-ignore
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics: suppressed findings are dropped, malformed suppression
// directives are added (check "lint"), and the result is sorted by
// file, line, column and check for deterministic output.
//
// The (package, analyzer) pairs run in parallel over internal/par —
// the lint pass dogfoods the worker pool it audits. Determinism holds
// because each pair writes its own diagnostic slice, the slices are
// concatenated in fixed pair order, and the final sort is total.
//
// An analyzer that panics does not take down the process and — more
// importantly for a CI gate — does not silently skip the package: the
// panic is captured with its stack and returned as an error, which
// geflint turns into exit code 2.
func Run(ctx context.Context, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, *Stats, error) {
	type pair struct {
		pkg *Package
		a   *Analyzer
	}
	pairs := make([]pair, 0, len(pkgs)*len(analyzers))
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pairs = append(pairs, pair{pkg, a})
		}
	}

	perPair := make([][]Diagnostic, len(pairs))
	errs := make([]error, len(pairs))
	runOne := func(i int) {
		p := pairs[i]
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("analysis: analyzer %s panicked on package %s: %v\n%s",
					p.a.Name, p.pkg.Path, r, debug.Stack())
			}
		}()
		pass := &Pass{
			Analyzer: p.a,
			Fset:     p.pkg.Fset,
			Files:    p.pkg.Files,
			Pkg:      p.pkg.Types,
			Info:     p.pkg.Info,
			diags:    &perPair[i],
		}
		p.a.Run(pass)
	}
	// One chunk per pair: packages differ wildly in size, so fine
	// chunks keep workers busy; boundaries are fixed by len(pairs), so
	// the chunk grid (and thus everything observable) is deterministic.
	if err := par.For(ctx, len(pairs), len(pairs), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			runOne(i)
		}
	}); err != nil {
		return nil, nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	stats := &Stats{
		Packages:  len(pkgs),
		Analyzers: len(analyzers),
		Raw:       make(map[string]int, len(analyzers)),
	}
	for _, a := range analyzers {
		stats.Raw[a.Name] = 0
	}
	var diags []Diagnostic
	for _, ds := range perPair {
		diags = append(diags, ds...)
	}
	for _, d := range diags {
		stats.Raw[d.Check]++
	}

	sup := newSuppressions(pkgs)
	kept := diags[:0]
	for _, d := range diags {
		if sup.suppressed(d) {
			stats.Suppressed++
		} else {
			kept = append(kept, d)
		}
	}
	kept = append(kept, sup.malformed...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return kept, stats, nil
}
