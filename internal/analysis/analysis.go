// Package analysis is a from-scratch static-analysis framework built
// only on the standard library's go/parser, go/ast and go/types. It
// loads every package in the module, type-checks it against source
// (no export data, no golang.org/x/tools), and runs registered
// analyzers that report position-accurate diagnostics.
//
// The framework exists because GEF's correctness rests on numerically
// delicate code — GCV lambda search, P-IRLS convergence, split-gain
// accounting — where a silent float64 ==, a dropped error or a
// nondeterministic map iteration corrupts explanations without failing
// a test. Domain-specific analyzers live in internal/analysis/checks;
// the cmd/geflint CLI drives them and verify.sh gates on a clean run.
//
// Diagnostics can be suppressed with a directive comment on the
// offending line or the line directly above it:
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run inspects the pass's package and
// reports findings through pass.Reportf.
type Analyzer struct {
	Name string // short lower-case identifier, used in directives and output
	Doc  string // one-line description shown by `geflint -list`
	Run  func(*Pass)
}

// Pass carries one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Diagnostic is one finding, positioned in the fileset's coordinates.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics: suppressed findings are dropped, malformed suppression
// directives are added (check "lint"), and the result is sorted by
// file, line, column and check for deterministic output.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	sup := newSuppressions(pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !sup.suppressed(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, sup.malformed...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return kept
}
