// Package suppress is driver-test input for the suppression and output
// machinery. The test registers a toy analyzer that flags every == and
// != comparison; the directives below exercise each suppression form.
package suppress

// Unsuppressed: the toy check flags this line.
func plain(a, b int) bool {
	return a == b
}

// Directive on the line above the finding.
func above(a, b int) bool {
	//lint:ignore cmp equality is intended here
	return a == b
}

// Directive trailing the finding on the same line.
func trailing(a, b int) bool {
	return a == b //lint:ignore cmp equality is intended here
}

// Comma-separated check list covers this check among others.
func multi(a, b int) bool {
	//lint:ignore cmp,other covered by a multi-check directive
	return a != b
}

// A directive naming a different check does not suppress this one.
func wrongCheck(a, b int) bool {
	//lint:ignore other this directive names another check
	return a == b
}

//lint:ignore cmp
func malformed(a, b int) bool {
	return a > b
}
