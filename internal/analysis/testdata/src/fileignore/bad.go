package fileignore

// A file-ignore without a reason is itself a finding (check "lint")
// and suppresses nothing: the comparison below must still surface.
//
//lint:file-ignore cmp

func unwaived(a, b int) bool {
	return a == b
}
