// Package fileignore is driver-test input for the file-scoped
// suppression directive. This file waives the toy "cmp" check for the
// whole file, so neither comparison below may surface.
//
//lint:file-ignore cmp generated-style fixture; equality noise is expected
package fileignore

func first(a, b int) bool {
	return a == b
}

func second(a, b int) bool {
	return a != b
}
