// Package broken fails to type-check; the loader test asserts this is a
// load error, not a silent pass with partial type information.
package broken

func oops() int {
	return "not an int"
}
