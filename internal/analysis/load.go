package analysis

import (
	"context"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gef/internal/par"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("gef/internal/gam")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, in filename order
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of a single module using only
// the standard library: module-local imports are resolved by parsing
// and checking their directories recursively, standard-library imports
// are resolved by the stdlib source importer (compiled export data is
// not assumed to exist). Third-party imports are unsupported — the
// module is stdlib-only by constraint, and the loader fails loudly if
// one appears.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string // absolute path of the directory holding go.mod
	ModulePath string // module path declared in go.mod
	goVersion  string // "go1.22" style, from go.mod

	std     types.ImporterFrom
	pkgs    map[string]*Package   // import path → loaded package
	loading map[string]bool       // cycle detection
	parsed  map[string]parsedFile // filename → pre-parsed AST (see preparse)
}

// parsedFile is one entry of the pre-parse cache.
type parsedFile struct {
	file *ast.File
	err  error
}

// NewLoader finds the enclosing module of startDir (by walking up to
// go.mod) and returns a loader rooted there.
func NewLoader(startDir string) (*Loader, error) {
	dir, err := filepath.Abs(startDir)
	if err != nil {
		return nil, err
	}
	root := dir
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		root = parent
	}
	modPath, goVersion, err := parseModFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		goVersion:  goVersion,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		parsed:     make(map[string]parsedFile),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// parseModFile extracts the module path and go directive from a go.mod.
func parseModFile(path string) (modPath, goVersion string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if p, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(p)
		} else if v, ok := strings.CutPrefix(line, "go "); ok {
			goVersion = "go" + strings.TrimSpace(v)
		}
	}
	if modPath == "" {
		return "", "", fmt.Errorf("analysis: %s has no module directive", path)
	}
	return modPath, goVersion, nil
}

// Load resolves the given package patterns and returns the loaded
// packages sorted by import path. Patterns are interpreted relative to
// the module root: "./..." (or "...") walks the whole module, a
// pattern ending in "/..." walks that subtree, anything else names a
// single package directory.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "" {
			pat = "..."
		}
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			dirs, err := packageDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				dirSet[d] = true
			}
			continue
		}
		dirSet[filepath.Join(l.ModuleRoot, filepath.FromSlash(pat))] = true
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	if err := l.preparse(dirs); err != nil {
		return nil, err
	}

	var pkgs []*Package
	for _, dir := range dirs {
		importPath, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadPackage(importPath, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads the single directory dir as a package with the given
// import path. It is used by golden-file tests, whose packages live
// under testdata/ and therefore have no real import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPackage(importPath, abs)
}

func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// packageDirs walks base and returns every directory containing at
// least one non-test Go file, skipping testdata, vendor and hidden or
// underscore-prefixed directories.
func packageDirs(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// goFilesIn lists the non-test Go files of dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// preparse parses every non-test Go file of dirs concurrently over the
// internal/par pool and fills the parse cache that loadPackage reads.
// parser.ParseFile against a shared *token.FileSet is documented
// concurrency-safe; each worker writes only its own chunk of the
// results slice, and the cache map is filled sequentially afterwards.
// FileSet base offsets become schedule-dependent, but diagnostics are
// keyed and sorted by resolved (file, line, col) — never by token.Pos —
// so reported output stays deterministic at any worker count.
func (l *Loader) preparse(dirs []string) error {
	var names []string
	for _, dir := range dirs {
		fs, err := goFilesIn(dir)
		if err != nil {
			return err
		}
		names = append(names, fs...)
	}
	results := make([]parsedFile, len(names))
	err := par.For(context.Background(), len(names), 0, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			f, err := parser.ParseFile(l.Fset, names[i], nil, parser.ParseComments|parser.SkipObjectResolution)
			results[i] = parsedFile{f, err}
		}
	})
	if err != nil {
		return err
	}
	for i, name := range names {
		l.parsed[name] = results[i]
	}
	return nil
}

func (l *Loader) loadPackage(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		pf, ok := l.parsed[name]
		if !ok {
			// Not covered by preparse (LoadDir packages, module-local
			// imports pulled in by the type checker outside the
			// requested patterns): parse inline.
			f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			pf = parsedFile{f, err}
		}
		if pf.err != nil {
			return nil, pf.err
		}
		files = append(files, pf.file)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:  importerFunc(func(path, srcDir string) (*types.Package, error) { return l.resolveImport(path, srcDir) }),
		GoVersion: l.goVersion,
		Error: func(err error) {
			typeErrs = append(typeErrs, err)
		},
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w (and %d more)", importPath, typeErrs[0], len(typeErrs)-1)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// resolveImport implements import resolution for the type checker:
// module-local paths load recursively, "unsafe" maps to types.Unsafe,
// everything else is delegated to the stdlib source importer.
func (l *Loader) resolveImport(path, srcDir string) (*types.Package, error) {
	switch {
	case path == "unsafe":
		return types.Unsafe, nil
	case path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/"):
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadPackage(path, filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	default:
		return l.std.ImportFrom(path, srcDir, 0)
	}
}

// importerFunc adapts a function to types.ImporterFrom.
type importerFunc func(path, srcDir string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) {
	return f(path, "")
}

func (f importerFunc) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	return f(path, srcDir)
}
