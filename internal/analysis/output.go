package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// jsonDiagnostic is the machine-readable shape of one finding, stable
// for CI consumers of `geflint -json`.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// relPath shortens file to be relative to baseDir when possible.
func relPath(baseDir, file string) string {
	if baseDir == "" {
		return file
	}
	if rel, err := filepath.Rel(baseDir, file); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return file
}

// WriteText prints diagnostics one per line as
// "path:line:col: check: message", with paths relative to baseDir.
func WriteText(w io.Writer, diags []Diagnostic, baseDir string) error {
	for _, d := range diags {
		_, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s\n",
			relPath(baseDir, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON prints diagnostics as a JSON array (always an array, "[]"
// when clean) with paths relative to baseDir.
func WriteJSON(w io.Writer, diags []Diagnostic, baseDir string) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:    relPath(baseDir, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
