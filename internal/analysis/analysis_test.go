package analysis_test

import (
	"context"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"gef/internal/analysis"
)

// cmpAnalyzer flags every == and != comparison, regardless of type. It
// exists purely to exercise the driver: suppression, malformed
// directives, sorting and output encoding.
var cmpAnalyzer = &analysis.Analyzer{
	Name: "cmp",
	Doc:  "test analyzer flagging every equality comparison",
	Run: func(pass *analysis.Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if be, ok := n.(*ast.BinaryExpr); ok && (be.Op == token.EQL || be.Op == token.NEQ) {
					pass.Reportf(be.OpPos, "comparison with %s", be.Op)
				}
				return true
			})
		}
	},
}

func loadSuppress(t *testing.T) *analysis.Package {
	t.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "suppress"), "golden/suppress")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	return pkg
}

// lineOf maps a diagnostic to the name of the function containing it, so
// assertions stay stable as testdata line numbers shift.
func funcOf(pkg *analysis.Package, d analysis.Diagnostic) string {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			start := pkg.Fset.Position(fd.Pos())
			end := pkg.Fset.Position(fd.End())
			if d.Pos.Line >= start.Line && d.Pos.Line <= end.Line {
				return fd.Name.Name
			}
		}
	}
	return fmt.Sprintf("<line %d>", d.Pos.Line)
}

func TestSuppression(t *testing.T) {
	pkg := loadSuppress(t)
	diags, _, err := analysis.Run(context.Background(), []*analysis.Package{pkg}, []*analysis.Analyzer{cmpAnalyzer})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	got := make(map[string][]string) // check → containing functions
	for _, d := range diags {
		got[d.Check] = append(got[d.Check], funcOf(pkg, d))
	}

	wantCmp := []string{"plain", "wrongCheck"}
	if strings.Join(got["cmp"], ",") != strings.Join(wantCmp, ",") {
		t.Errorf("cmp diagnostics in %v; want %v (above/trailing/multi suppressed)", got["cmp"], wantCmp)
	}
	if len(got["lint"]) != 1 {
		t.Errorf("want exactly one malformed-directive diagnostic, got %v", got["lint"])
	}
	for _, d := range diags {
		if d.Check == "lint" && !strings.Contains(d.Message, "malformed //lint:ignore") {
			t.Errorf("lint diagnostic message = %q", d.Message)
		}
	}
}

func TestRunSortsDiagnostics(t *testing.T) {
	pkg := loadSuppress(t)
	diags, _, err := analysis.Run(context.Background(), []*analysis.Package{pkg}, []*analysis.Analyzer{cmpAnalyzer})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line {
			t.Fatalf("diagnostics out of order: line %d before line %d", a.Pos.Line, b.Pos.Line)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	pkg := loadSuppress(t)
	diags, _, err := analysis.Run(context.Background(), []*analysis.Package{pkg}, []*analysis.Analyzer{cmpAnalyzer})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	var sb strings.Builder
	if err := analysis.WriteJSON(&sb, diags, pkg.Dir); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Column  int    `json:"column"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(decoded) != len(diags) {
		t.Fatalf("JSON has %d entries; want %d", len(decoded), len(diags))
	}
	for i, e := range decoded {
		if e.File != "suppress.go" {
			t.Errorf("entry %d file = %q; want path relative to baseDir", i, e.File)
		}
		if e.Line <= 0 || e.Column <= 0 || e.Check == "" || e.Message == "" {
			t.Errorf("entry %d incomplete: %+v", i, e)
		}
	}

	// Clean runs must still emit a JSON array, not null.
	sb.Reset()
	if err := analysis.WriteJSON(&sb, nil, ""); err != nil {
		t.Fatalf("WriteJSON(nil): %v", err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Errorf("WriteJSON(nil) = %q; want []", sb.String())
	}
}

func TestWriteText(t *testing.T) {
	pkg := loadSuppress(t)
	diags, _, err := analysis.Run(context.Background(), []*analysis.Package{pkg}, []*analysis.Analyzer{cmpAnalyzer})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var sb strings.Builder
	if err := analysis.WriteText(&sb, diags, pkg.Dir); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(diags) {
		t.Fatalf("WriteText produced %d lines; want %d", len(lines), len(diags))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "suppress.go:") || !strings.Contains(ln, ": cmp: ") && !strings.Contains(ln, ": lint: ") {
			t.Errorf("unexpected text line %q", ln)
		}
	}
}

func TestLoadRejectsTypeErrors(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := l.LoadDir(filepath.Join("testdata", "src", "broken"), "golden/broken"); err == nil {
		t.Fatal("LoadDir of a package with type errors should fail")
	}
}

func loadDir(t *testing.T, dir string) *analysis.Package {
	t.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", dir), "golden/"+dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	return pkg
}

// TestFileIgnore covers the file-scoped directive: a well-formed
// //lint:file-ignore waives the named check for its whole file, one
// with a missing reason waives nothing and is itself reported.
func TestFileIgnore(t *testing.T) {
	pkg := loadDir(t, "fileignore")
	diags, stats, err := analysis.Run(context.Background(), []*analysis.Package{pkg}, []*analysis.Analyzer{cmpAnalyzer})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var cmpFiles []string
	lintCount := 0
	for _, d := range diags {
		switch d.Check {
		case "cmp":
			cmpFiles = append(cmpFiles, filepath.Base(d.Pos.Filename))
		case "lint":
			lintCount++
			if !strings.Contains(d.Message, "file-ignore") {
				t.Errorf("malformed file-ignore message = %q", d.Message)
			}
		}
	}
	if strings.Join(cmpFiles, ",") != "bad.go" {
		t.Errorf("surviving cmp findings in %v; want only bad.go (good.go is file-waived, bad.go's directive lacks a reason)", cmpFiles)
	}
	if lintCount != 1 {
		t.Errorf("want exactly one malformed file-ignore diagnostic, got %d", lintCount)
	}
	// good.go holds two raw findings, both suppressed by the file directive.
	if stats.Raw["cmp"] != 3 || stats.Suppressed != 2 {
		t.Errorf("stats = raw %v suppressed %d; want raw cmp 3, suppressed 2", stats.Raw, stats.Suppressed)
	}
}

// TestAnalyzerPanicBecomesError: a panicking analyzer must fail the run
// loudly (named, with the package), never silently skip the package.
func TestAnalyzerPanicBecomesError(t *testing.T) {
	pkg := loadSuppress(t)
	boom := &analysis.Analyzer{
		Name: "boom",
		Doc:  "test analyzer that panics",
		Run:  func(*analysis.Pass) { panic("kaboom") },
	}
	_, _, err := analysis.Run(context.Background(), []*analysis.Package{pkg}, []*analysis.Analyzer{boom})
	if err == nil {
		t.Fatal("Run with a panicking analyzer returned nil error")
	}
	for _, want := range []string{"boom", "golden/suppress", "kaboom"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("panic error %q does not mention %q", err, want)
		}
	}
}

// TestRunParallelDeterministic: repeated parallel runs produce the
// byte-identical diagnostic sequence.
func TestRunParallelDeterministic(t *testing.T) {
	pkgs := []*analysis.Package{loadSuppress(t), loadDir(t, "fileignore")}
	render := func() string {
		diags, _, err := analysis.Run(context.Background(), pkgs, []*analysis.Analyzer{cmpAnalyzer})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var sb strings.Builder
		if err := analysis.WriteText(&sb, diags, ""); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		return sb.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	if first == "" {
		t.Fatal("expected at least one diagnostic from the fixture packages")
	}
}
