package cfg

// Flow is a forward dataflow problem over a Graph: a join-semilattice
// of facts F propagated from Entry along edges until fixpoint. The
// three function fields define the lattice; Transfer defines the
// per-block semantics.
//
// Contract: Join and Transfer must be pure — they must not mutate
// their arguments, because in-facts are shared between a block and its
// siblings. Transfer returning its input unchanged is fine; mutating it
// in place is not. Equal must be reflexive and consistent with Join
// (Join(a,a) equal a), or the fixpoint loop cannot terminate.
type Flow[F any] struct {
	// Boundary is the fact entering Graph.Entry (typically "nothing is
	// known" / all-unlocked / empty taint set).
	Boundary F
	// Join combines facts arriving over multiple predecessors edges.
	Join func(a, b F) F
	// Equal reports whether two facts carry the same information; it
	// terminates the fixpoint iteration.
	Equal func(a, b F) bool
	// Transfer computes the fact leaving blk given the fact entering
	// it, by interpreting blk.Nodes in order.
	Transfer func(blk *Block, in F) F
}

// Result holds the fixpoint solution, indexed by Block.Index. In and
// Out are only meaningful where Reached is true; unreachable blocks
// keep zero-valued facts.
type Result[F any] struct {
	In      []F
	Out     []F
	Reached []bool
}

// Forward solves the dataflow problem to fixpoint with a FIFO worklist
// seeded at Entry. Processing order is deterministic (worklist order
// depends only on graph shape), and so therefore is any diagnostic
// order derived from the Result.
//
// Termination: guaranteed for finite lattices with monotone Transfer.
// As insurance against an analyzer whose Equal/Join violate the
// contract, iteration is capped at a generous multiple of the graph
// size; hitting the cap returns the (sound-so-far but possibly
// unconverged) state rather than hanging the lint gate.
func (fl Flow[F]) Forward(g *Graph) *Result[F] {
	n := len(g.Blocks)
	r := &Result[F]{
		In:      make([]F, n),
		Out:     make([]F, n),
		Reached: make([]bool, n),
	}
	hasOut := make([]bool, n)

	r.In[g.Entry.Index] = fl.Boundary
	r.Reached[g.Entry.Index] = true

	work := make([]*Block, 0, n)
	inWork := make([]bool, n)
	push := func(b *Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	push(g.Entry)

	budget := 64*n*n + 4096
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		if b != g.Entry {
			var acc F
			first := true
			for _, p := range b.Preds {
				if !hasOut[p.Index] {
					continue
				}
				if first {
					acc = r.Out[p.Index]
					first = false
				} else {
					acc = fl.Join(acc, r.Out[p.Index])
				}
			}
			if first {
				continue // no reachable predecessor yet
			}
			r.In[b.Index] = acc
			r.Reached[b.Index] = true
		}

		out := fl.Transfer(b, r.In[b.Index])
		if hasOut[b.Index] && fl.Equal(out, r.Out[b.Index]) {
			continue
		}
		r.Out[b.Index] = out
		hasOut[b.Index] = true
		for _, s := range b.Succs {
			push(s)
		}
	}
	return r
}
