// Package cfg builds intraprocedural control-flow graphs from go/ast
// function bodies and runs forward dataflow analyses over them. It is
// the flow-sensitive substrate of GEF's static-analysis suite: the
// syntactic analyzers in internal/analysis/checks can say "this call
// appears", the CFG lets them say "this call happens on some path but
// not on all of them" — the distinction that matters for lock balance,
// sort-before-use and other determinism invariants the test suite only
// catches on lucky schedules.
//
// The graph is built from syntax alone (no type information) and is
// deliberately conservative: every construct that can transfer control
// — if/else, for, range, switch, type switch, select, goto, labeled
// break/continue, fallthrough, return, explicit panic — produces edges,
// and anything the builder cannot prove terminal falls through
// sequentially. Function literals are opaque: their bodies are not part
// of the enclosing function's graph (they execute on their own
// schedule) and must be analyzed as separate graphs.
//
// Two asymmetries are intentional:
//
//   - panic(...) gets an edge to Exit, because panicking unwinds
//     through the function's defers and a fact holding at the panic
//     site (a held lock, an unsorted slice) is still live during
//     unwinding;
//   - os.Exit / log.Fatal* / runtime.Goexit get no edge at all: the
//     function never resumes and its defers never run, so facts die
//     with the process.
//
// Defer statements appear both in their block (so ordering analyses see
// where they were registered) and in Graph.Defers (so exit-state
// analyses can apply them at every path to Exit, which is where the
// runtime runs them).
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Graph is the control-flow graph of one function body. Blocks[0] is
// Entry and Blocks[1] is Exit; Exit is virtual — it holds no nodes and
// collects every return, every fall-off-the-end and every explicit
// panic edge.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block

	// Defers lists every defer statement in the body (not inside
	// nested function literals), in source order. The runtime executes
	// them on every path to Exit, so exit-state analyses must apply
	// their effects when inspecting Exit facts.
	Defers []*ast.DeferStmt
}

// Block is one basic block: a maximal straight-line sequence of
// statements and control expressions.
type Block struct {
	Index int
	Kind  string // "entry", "exit", "for.head", "if.then", ... for tests and dumps

	// Ctrl is the statement that owns a head block (the ForStmt for
	// "for.head", the RangeStmt for "range.head", the switch/select
	// statement for their heads), nil for ordinary blocks. It lets
	// analyzers map loop syntax to graph structure without position
	// arithmetic.
	Ctrl ast.Stmt

	// Nodes holds the block's statements and control expressions in
	// execution order. Entries are ast.Stmt or ast.Expr (loop/if
	// conditions, switch tags, case expressions). Nested *ast.FuncLit
	// bodies are reachable through these nodes syntactically but are
	// NOT part of this graph's control flow; analyzers walking Nodes
	// with ast.Inspect must skip FuncLit subtrees.
	Nodes []ast.Node

	Succs []*Block
	Preds []*Block
}

// New builds the control-flow graph of body. A nil body (a function
// declared without one) yields the trivial graph entry→exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{},
		labels: make(map[string]*labelInfo),
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jumpCur(b.g.Exit)
	return b.g
}

// FuncGraph builds the graph for fn, which must be an *ast.FuncDecl or
// *ast.FuncLit; it panics on anything else so misuse fails loudly in
// the analyzer's own tests rather than silently analyzing nothing.
func FuncGraph(fn ast.Node) *Graph {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return New(fn.Body)
	case *ast.FuncLit:
		return New(fn.Body)
	}
	panic(fmt.Sprintf("cfg: FuncGraph of %T (want *ast.FuncDecl or *ast.FuncLit)", fn))
}

// String renders the graph structure one block per line, for tests and
// debugging: "b2 for.head [1 nodes] -> b3 b4".
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s", blk.Index, blk.Kind)
		if len(blk.Nodes) > 0 {
			fmt.Fprintf(&sb, " [%d nodes]", len(blk.Nodes))
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// labelInfo tracks one label: the block it marks (goto target), the
// break/continue targets when it labels a loop or switch/select, and
// goto edges seen before the label's definition.
type labelInfo struct {
	target       *Block
	breakTo      *Block
	continueTo   *Block
	pendingGotos []*Block
}

// loopCtx is one entry of the break/continue stack. continueTo is nil
// for switch and select, which accept break but not continue.
type loopCtx struct {
	breakTo    *Block
	continueTo *Block
}

type builder struct {
	g      *Graph
	cur    *Block // nil when the current point is unreachable (after return/break/...)
	labels map[string]*labelInfo
	loops  []loopCtx
	fall   *Block // fallthrough target inside a switch clause
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) jump(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jumpCur wires the current block (if the point is reachable) to
// target and marks the point dead.
func (b *builder) jumpCur(to *Block) {
	if b.cur != nil {
		b.jump(b.cur, to)
	}
	b.cur = nil
}

// add appends a node to the current block, reviving a dead point into a
// fresh unreachable block so dead code still has a home (and analyzers
// can still report into it).
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) labelOf(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		name := s.Label.Name
		li := b.labelOf(name)
		lb := b.newBlock("label." + name)
		b.jumpCur(lb)
		b.cur = lb
		li.target = lb
		for _, from := range li.pendingGotos {
			b.jump(from, lb)
		}
		li.pendingGotos = nil
		b.stmt(s.Stmt, name)

	case *ast.IfStmt:
		b.buildIf(s)

	case *ast.ForStmt:
		b.buildFor(s, label)

	case *ast.RangeStmt:
		b.buildRange(s, label)

	case *ast.SwitchStmt:
		var tags []ast.Node
		if s.Tag != nil {
			tags = append(tags, s.Tag)
		}
		b.buildSwitch(s, s.Init, tags, s.Body.List, label, "switch")

	case *ast.TypeSwitchStmt:
		b.buildSwitch(s, s.Init, []ast.Node{s.Assign}, s.Body.List, label, "typeswitch")

	case *ast.SelectStmt:
		b.buildSelect(s, label)

	case *ast.BranchStmt:
		b.buildBranch(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jumpCur(b.g.Exit)

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			switch terminalKind(call) {
			case terminalPanic:
				b.jumpCur(b.g.Exit) // unwinds through defers: facts stay live
			case terminalExit:
				b.cur = nil // process/goroutine dies, defers do not run
			}
		}

	case *ast.EmptyStmt:
		// no node, no flow

	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, GoStmt, ...
		b.add(s)
	}
}

func (b *builder) buildIf(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	thenB := b.newBlock("if.then")
	b.jump(cond, thenB)
	b.cur = thenB
	b.stmt(s.Body, "")
	thenEnd := b.cur

	var elseEnd *Block
	hasElse := s.Else != nil
	if hasElse {
		elseB := b.newBlock("if.else")
		b.jump(cond, elseB)
		b.cur = elseB
		b.stmt(s.Else, "")
		elseEnd = b.cur
	}

	after := b.newBlock("if.after")
	if thenEnd != nil {
		b.jump(thenEnd, after)
	}
	if hasElse {
		if elseEnd != nil {
			b.jump(elseEnd, after)
		}
	} else {
		b.jump(cond, after)
	}
	b.cur = after
}

func (b *builder) buildFor(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	head.Ctrl = s
	b.jumpCur(head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}

	body := b.newBlock("for.body")
	b.jump(head, body)
	after := b.newBlock("for.after")
	if s.Cond != nil {
		b.jump(head, after) // condition can fail; `for {}` has no such edge
	}
	cont := head
	if s.Post != nil {
		post := b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.jump(post, head)
		cont = post
	}

	b.pushLoop(label, after, cont)
	b.cur = body
	b.stmt(s.Body, "")
	b.jumpCur(cont)
	b.popLoop()
	b.cur = after
}

func (b *builder) buildRange(s *ast.RangeStmt, label string) {
	b.add(s.X) // the ranged expression is evaluated once, before the loop
	head := b.newBlock("range.head")
	head.Ctrl = s
	b.jumpCur(head)

	body := b.newBlock("range.body")
	b.jump(head, body)
	after := b.newBlock("range.after")
	b.jump(head, after) // ranges always terminate (or are empty)

	b.pushLoop(label, after, head)
	b.cur = body
	b.stmt(s.Body, "")
	b.jumpCur(head)
	b.popLoop()
	b.cur = after
}

// buildSwitch handles expression and type switches, which share their
// clause/fallthrough/default structure.
func (b *builder) buildSwitch(ctrl ast.Stmt, init ast.Stmt, tags []ast.Node, clauses []ast.Stmt, label, kind string) {
	if init != nil {
		b.add(init)
	}
	for _, t := range tags {
		b.add(t)
	}
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	head := b.cur
	head.Ctrl = ctrl

	after := b.newBlock(kind + ".after")
	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		cb := b.newBlock(fmt.Sprintf("%s.case%d", kind, i))
		for _, e := range cc.List {
			cb.Nodes = append(cb.Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		b.jump(head, cb)
		caseBlocks[i] = cb
	}
	if !hasDefault {
		b.jump(head, after) // no case matches
	}

	b.pushLoop(label, after, nil)
	savedFall := b.fall
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		b.cur = caseBlocks[i]
		if i+1 < len(clauses) {
			b.fall = caseBlocks[i+1]
		} else {
			b.fall = nil
		}
		b.stmtList(cc.Body)
		b.jumpCur(after) // implicit break
	}
	b.fall = savedFall
	b.popLoop()
	b.cur = after
}

func (b *builder) buildSelect(s *ast.SelectStmt, label string) {
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	head := b.cur
	head.Ctrl = s

	after := b.newBlock("select.after")
	b.pushLoop(label, after, nil)
	for i, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		kind := fmt.Sprintf("select.case%d", i)
		if cc.Comm == nil {
			kind = "select.default"
		}
		cb := b.newBlock(kind)
		if cc.Comm != nil {
			cb.Nodes = append(cb.Nodes, cc.Comm)
		}
		b.jump(head, cb)
		b.cur = cb
		b.stmtList(cc.Body)
		b.jumpCur(after)
	}
	b.popLoop()
	// A select with no clauses (or none that exits) blocks forever;
	// there is deliberately no head→after edge, so `after` is only
	// reachable through a clause body.
	b.cur = after
}

func (b *builder) buildBranch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if t := b.labelOf(s.Label.Name).breakTo; t != nil {
				b.jumpCur(t)
				return
			}
		} else {
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].breakTo != nil {
					b.jumpCur(b.loops[i].breakTo)
					return
				}
			}
		}
		b.cur = nil // malformed source; type checker reports it

	case token.CONTINUE:
		if s.Label != nil {
			if t := b.labelOf(s.Label.Name).continueTo; t != nil {
				b.jumpCur(t)
				return
			}
		} else {
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].continueTo != nil {
					b.jumpCur(b.loops[i].continueTo)
					return
				}
			}
		}
		b.cur = nil

	case token.GOTO:
		li := b.labelOf(s.Label.Name)
		if li.target != nil {
			b.jumpCur(li.target)
		} else if b.cur != nil {
			li.pendingGotos = append(li.pendingGotos, b.cur)
			b.cur = nil
		}

	case token.FALLTHROUGH:
		if b.fall != nil {
			b.jumpCur(b.fall)
		} else {
			b.cur = nil
		}
	}
}

func (b *builder) pushLoop(label string, breakTo, continueTo *Block) {
	b.loops = append(b.loops, loopCtx{breakTo: breakTo, continueTo: continueTo})
	if label != "" {
		li := b.labelOf(label)
		li.breakTo = breakTo
		li.continueTo = continueTo
	}
}

func (b *builder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

type terminal int

const (
	terminalNo terminal = iota
	terminalPanic
	terminalExit
)

// terminalKind classifies calls that end the current control flow. The
// classification is syntactic — the builder has no type information —
// which is sound for the builtin panic (shadowing it would be flagged
// by vet's own checks) and a deliberate heuristic for the process
// killers.
func terminalKind(call *ast.CallExpr) terminal {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			return terminalPanic
		}
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
			if id, ok := fun.X.(*ast.Ident); ok {
				switch id.Name {
				case "os", "log", "runtime":
					return terminalExit
				}
			}
		}
	}
	return terminalNo
}
