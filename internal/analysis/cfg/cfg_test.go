package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFirstFunc parses src (a complete file) and returns the graph of
// its first function declaration.
func buildFirstFunc(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return FuncGraph(fd)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// blockByKind returns the first block whose Kind matches exactly.
func blockByKind(t *testing.T, g *Graph, kind string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		if b.Kind == kind {
			return b
		}
	}
	t.Fatalf("no block of kind %q in:\n%s", kind, g)
	return nil
}

// blockContaining returns the block holding a node of the given type.
func blockContaining[T ast.Node](t *testing.T, g *Graph) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(T); ok {
				return b
			}
		}
	}
	t.Fatalf("no block contains the requested node type in:\n%s", g)
	return nil
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

// reachable reports whether to is reachable from from along Succs.
func reachable(from, to *Block) bool {
	seen := map[*Block]bool{}
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

func TestDeferInLoop(t *testing.T) {
	g := buildFirstFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		defer println(i)
	}
	println("done")
}`)
	if len(g.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1 (defer inside loop recorded once)\n%s", len(g.Defers), g)
	}
	head := blockByKind(t, g, "for.head")
	body := blockByKind(t, g, "for.body")
	after := blockByKind(t, g, "for.after")
	post := blockByKind(t, g, "for.post")
	if !hasEdge(head, body) || !hasEdge(head, after) {
		t.Errorf("for.head must branch to body and after:\n%s", g)
	}
	if !hasEdge(body, post) || !hasEdge(post, head) {
		t.Errorf("body -> post -> head back edge missing:\n%s", g)
	}
	// The defer statement itself sits in the loop body, so ordering
	// analyses see where registration happens.
	db := blockContaining[*ast.DeferStmt](t, g)
	if db != body {
		t.Errorf("defer registered in block %d (%s), want the loop body b%d", db.Index, db.Kind, body.Index)
	}
	if head.Ctrl == nil {
		t.Error("for.head has no Ctrl statement")
	}
}

func TestGotoAcrossBlocks(t *testing.T) {
	// Forward goto jumps over dead code; backward goto forms a loop.
	g := buildFirstFunc(t, `package p
func f(c bool) {
	if c {
		goto done
	}
	println("fallthrough path")
done:
	println("done")
	if c {
		goto done
	}
}`)
	lb := blockByKind(t, g, "label.done")
	if len(lb.Preds) < 3 {
		// forward goto, the fallthrough path, and the backward goto
		t.Errorf("label.done has %d preds, want >= 3:\n%s", len(lb.Preds), g)
	}
	// The backward goto creates a cycle through the label block.
	if !reachable(lb, lb) {
		t.Errorf("backward goto must make label.done reach itself:\n%s", g)
	}
	if !reachable(g.Entry, g.Exit) {
		t.Errorf("exit unreachable:\n%s", g)
	}
}

func TestGotoForwardOnly(t *testing.T) {
	// Statements between an unconditional goto and its label are dead:
	// they live in a block with no predecessors.
	g := buildFirstFunc(t, `package p
func f() {
	goto out
	println("dead")
out:
	println("live")
}`)
	dead := blockContaining[*ast.ExprStmt](t, g) // first ExprStmt is the dead println
	if len(dead.Preds) != 0 {
		t.Errorf("dead code block has %d preds, want 0:\n%s", len(dead.Preds), g)
	}
	lb := blockByKind(t, g, "label.out")
	if len(lb.Preds) == 0 {
		t.Errorf("label.out must be reachable via the goto:\n%s", g)
	}
}

func TestSelectWithDefault(t *testing.T) {
	g := buildFirstFunc(t, `package p
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
		return 1
	default:
		return 0
	}
}`)
	// Entry is the select head: one successor per clause, and no
	// direct edge to select.after (a select never falls through).
	head := g.Entry
	if head.Ctrl == nil {
		t.Fatalf("select head has no Ctrl:\n%s", g)
	}
	if len(head.Succs) != 3 {
		t.Fatalf("select head has %d succs, want 3 (two comms + default):\n%s", len(head.Succs), g)
	}
	blockByKind(t, g, "select.default")
	after := blockByKind(t, g, "select.after")
	if hasEdge(head, after) {
		t.Errorf("select head must not edge directly to after:\n%s", g)
	}
	if len(after.Preds) != 0 {
		// every clause returns, so after is unreachable here
		t.Errorf("select.after has %d preds, want 0 when all clauses return:\n%s", len(after.Preds), g)
	}
	// Only the three returning clauses reach exit; the dead after block
	// also wires to exit syntactically but is unreachable from entry.
	live := 0
	for _, p := range g.Exit.Preds {
		if reachable(g.Entry, p) {
			live++
		}
	}
	if live != 3 {
		t.Errorf("exit has %d reachable preds, want 3 (one return per clause):\n%s", live, g)
	}
}

func TestSelectWithoutDefaultBlocks(t *testing.T) {
	g := buildFirstFunc(t, `package p
func f(a chan int) {
	select {
	case <-a:
		println("got")
	}
	println("after")
}`)
	head := g.Entry
	if len(head.Succs) != 1 {
		t.Fatalf("select head has %d succs, want 1 (single comm, no default):\n%s", len(head.Succs), g)
	}
	after := blockByKind(t, g, "select.after")
	if len(after.Preds) != 1 {
		t.Errorf("select.after reachable only through the comm clause, got %d preds:\n%s", len(after.Preds), g)
	}
}

func TestEarlyReturnInsideRange(t *testing.T) {
	g := buildFirstFunc(t, `package p
func f(xs []int) int {
	for _, v := range xs {
		if v < 0 {
			return v
		}
	}
	return 0
}`)
	head := blockByKind(t, g, "range.head")
	body := blockByKind(t, g, "range.body")
	after := blockByKind(t, g, "range.after")
	if !hasEdge(head, body) || !hasEdge(head, after) {
		t.Fatalf("range.head must branch to body and after:\n%s", g)
	}
	if len(g.Exit.Preds) != 2 {
		t.Errorf("exit has %d preds, want 2 (early return + final return):\n%s", len(g.Exit.Preds), g)
	}
	// The early return must leave the loop without passing range.after.
	var retBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if r, ok := n.(*ast.ReturnStmt); ok && len(r.Results) == 1 {
				if id, ok := r.Results[0].(*ast.Ident); ok && id.Name == "v" {
					retBlock = b
				}
			}
		}
	}
	if retBlock == nil {
		t.Fatalf("early return block not found:\n%s", g)
	}
	if !hasEdge(retBlock, g.Exit) {
		t.Errorf("early return must edge straight to exit:\n%s", g)
	}
	if reachable(retBlock, after) {
		t.Errorf("early return path must not reach range.after:\n%s", g)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := buildFirstFunc(t, `package p
func f(m [][]int) {
outer:
	for _, row := range m {
		for _, v := range row {
			if v == 0 {
				continue outer
			}
			if v < 0 {
				break outer
			}
		}
	}
	println("done")
}`)
	heads := 0
	var outerHead, outerAfter *Block
	for _, b := range g.Blocks {
		if b.Kind == "range.head" {
			heads++
			if outerHead == nil {
				outerHead = b
			}
		}
		if b.Kind == "range.after" && outerAfter == nil {
			outerAfter = b
		}
	}
	if heads != 2 {
		t.Fatalf("want 2 range heads, got %d:\n%s", heads, g)
	}
	// continue outer: some inner-body block edges back to the outer head
	// without passing the inner head; break outer: some inner block
	// edges to the outer after. Both targets must have >= 2 preds.
	if len(outerHead.Preds) < 3 {
		// entry via label, body fallthrough, and continue outer
		t.Errorf("outer range.head has %d preds, want >= 3 (incl. labeled continue):\n%s", len(outerHead.Preds), g)
	}
	if len(outerAfter.Preds) < 2 {
		// cond-false exit and break outer
		t.Errorf("outer range.after has %d preds, want >= 2 (incl. labeled break):\n%s", len(outerAfter.Preds), g)
	}
}

func TestSwitchFallthroughAndPanic(t *testing.T) {
	g := buildFirstFunc(t, `package p
func f(x int) {
	switch x {
	case 0:
		println("zero")
		fallthrough
	case 1:
		println("one")
	default:
		panic("bad")
	}
	println("after")
}`)
	c0 := blockByKind(t, g, "switch.case0")
	c1 := blockByKind(t, g, "switch.case1")
	if !hasEdge(c0, c1) {
		t.Errorf("fallthrough edge case0 -> case1 missing:\n%s", g)
	}
	// default panics: it must edge to exit (unwinding), not to after.
	def := blockByKind(t, g, "switch.case2")
	if !hasEdge(def, g.Exit) {
		t.Errorf("panic clause must edge to exit:\n%s", g)
	}
	after := blockByKind(t, g, "switch.after")
	if hasEdge(def, after) {
		t.Errorf("panic clause must not fall through to after:\n%s", g)
	}
	// All cases covered incl. default: no head->after edge.
	if hasEdge(g.Entry, after) {
		t.Errorf("switch with default must not edge head -> after:\n%s", g)
	}
}

func TestOsExitHasNoExitEdge(t *testing.T) {
	g := buildFirstFunc(t, `package p
import "os"
func f(c bool) {
	if c {
		os.Exit(2)
	}
	println("alive")
}`)
	// Only the fallthrough path reaches exit: os.Exit kills the process
	// without running defers, so it contributes no exit predecessor.
	if len(g.Exit.Preds) != 1 {
		t.Errorf("exit has %d preds, want 1 (os.Exit path must not unwind):\n%s", len(g.Exit.Preds), g)
	}
}

// TestForwardDataflow runs a reaching-blocks analysis (fact = set of
// visited block indexes, join = union) and checks path-sensitivity at
// the join and convergence through the loop back edge.
func TestForwardDataflow(t *testing.T) {
	g := buildFirstFunc(t, `package p
func f(c bool, xs []int) {
	if c {
		println("then")
	} else {
		println("else")
	}
	for _, v := range xs {
		println(v)
	}
}`)
	type fact = map[int]bool
	flow := Flow[fact]{
		Boundary: fact{},
		Join: func(a, b fact) fact {
			m := make(fact, len(a)+len(b))
			for k := range a {
				m[k] = true
			}
			for k := range b {
				m[k] = true
			}
			return m
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(blk *Block, in fact) fact {
			out := make(fact, len(in)+1)
			for k := range in {
				out[k] = true
			}
			out[blk.Index] = true
			return out
		},
	}
	r := flow.Forward(g)

	then := blockByKind(t, g, "if.then")
	els := blockByKind(t, g, "if.else")
	if r.In[then.Index][els.Index] || r.In[els.Index][then.Index] {
		t.Errorf("then/else facts leaked across branches")
	}
	exitIn := r.In[g.Exit.Index]
	if !exitIn[then.Index] || !exitIn[els.Index] {
		t.Errorf("exit fact must join both branches, got %v", exitIn)
	}
	body := blockByKind(t, g, "range.body")
	if !exitIn[body.Index] {
		t.Errorf("exit fact must include the loop body via the back edge, got %v", exitIn)
	}
	if !r.Reached[g.Exit.Index] {
		t.Error("exit not reached")
	}
}

func TestStringDump(t *testing.T) {
	g := buildFirstFunc(t, `package p
func f() { println("x") }`)
	s := g.String()
	if !strings.Contains(s, "b0 entry") || !strings.Contains(s, "b1 exit") {
		t.Errorf("dump missing entry/exit:\n%s", s)
	}
}
