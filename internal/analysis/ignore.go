package analysis

import (
	"strings"
)

// ignorePrefix introduces a suppression directive. The full syntax is
//
//	//lint:ignore check1[,check2...] reason...
//
// matching the staticcheck convention: the directive suppresses the
// named checks on its own line and on the line directly below it, so it
// can trail the offending statement or sit on the line above.
const ignorePrefix = "//lint:ignore"

type ignoreKey struct {
	file  string
	line  int
	check string
}

type suppressions struct {
	keys      map[ignoreKey]bool
	malformed []Diagnostic
}

func newSuppressions(pkgs []*Package) *suppressions {
	s := &suppressions{keys: make(map[ignoreKey]bool)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						s.malformed = append(s.malformed, Diagnostic{
							Check:   "lint",
							Pos:     pos,
							Message: "malformed //lint:ignore directive: want \"//lint:ignore <check> <reason>\"",
						})
						continue
					}
					for _, check := range strings.Split(fields[0], ",") {
						s.keys[ignoreKey{pos.Filename, pos.Line, check}] = true
					}
				}
			}
		}
	}
	return s
}

// suppressed reports whether d is covered by a directive on its own
// line or the line directly above.
func (s *suppressions) suppressed(d Diagnostic) bool {
	return s.keys[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Check}] ||
		s.keys[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Check}]
}
