package analysis

import (
	"strings"
)

// ignorePrefix introduces a line-scoped suppression directive. The full
// syntax is
//
//	//lint:ignore check1[,check2...] reason...
//
// matching the staticcheck convention: the directive suppresses the
// named checks on its own line and on the line directly below it, so it
// can trail the offending statement or sit on the line above.
const ignorePrefix = "//lint:ignore"

// fileIgnorePrefix introduces a file-scoped suppression directive:
//
//	//lint:file-ignore check1[,check2...] reason...
//
// It suppresses the named checks everywhere in the file that contains
// it, wherever the comment sits (conventionally next to the package
// clause). It exists for generated files and fixture-like sources where
// per-line directives would outnumber the code. The reason is just as
// mandatory as for line directives — a file-wide waiver without a
// recorded justification is exactly the kind of entropy the lint gate
// exists to prevent.
const fileIgnorePrefix = "//lint:file-ignore"

type ignoreKey struct {
	file  string
	line  int
	check string
}

type fileIgnoreKey struct {
	file  string
	check string
}

type suppressions struct {
	keys      map[ignoreKey]bool
	fileKeys  map[fileIgnoreKey]bool
	malformed []Diagnostic
}

func newSuppressions(pkgs []*Package) *suppressions {
	s := &suppressions{
		keys:     make(map[ignoreKey]bool),
		fileKeys: make(map[fileIgnoreKey]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// file-ignore first: ignorePrefix is not a string
					// prefix of it, but keep the order robust against
					// future directive names.
					if rest, ok := strings.CutPrefix(c.Text, fileIgnorePrefix); ok {
						pos := pkg.Fset.Position(c.Pos())
						fields := strings.Fields(rest)
						if len(fields) < 2 {
							s.malformed = append(s.malformed, Diagnostic{
								Check:   "lint",
								Pos:     pos,
								Message: "malformed //lint:file-ignore directive: want \"//lint:file-ignore <check> <reason>\"",
							})
							continue
						}
						for _, check := range strings.Split(fields[0], ",") {
							s.fileKeys[fileIgnoreKey{pos.Filename, check}] = true
						}
						continue
					}
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						s.malformed = append(s.malformed, Diagnostic{
							Check:   "lint",
							Pos:     pos,
							Message: "malformed //lint:ignore directive: want \"//lint:ignore <check> <reason>\"",
						})
						continue
					}
					for _, check := range strings.Split(fields[0], ",") {
						s.keys[ignoreKey{pos.Filename, pos.Line, check}] = true
					}
				}
			}
		}
	}
	return s
}

// suppressed reports whether d is covered by a file-wide directive or
// by a line directive on its own line or the line directly above.
func (s *suppressions) suppressed(d Diagnostic) bool {
	return s.fileKeys[fileIgnoreKey{d.Pos.Filename, d.Check}] ||
		s.keys[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Check}] ||
		s.keys[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Check}]
}
