package obs

import (
	"testing"
	"time"
)

func BenchmarkRecorderRecord(b *testing.B) {
	r := NewRecorder(DefaultFlightCapacity)
	sp := SpanData{Name: "bench.span", Start: time.Now(), Wall: time.Millisecond,
		Attrs: []Attr{Int("k", 1)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RecordSpan(&sp)
	}
}

// TestRecorderOverheadGate enforces the serving budget for the
// always-on recorder: under 100 ns per recorded span on an idle core.
// The budget assumes production codegen, so the gate skips itself under
// the race detector and -short.
func TestRecorderOverheadGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates the mutex path; gate runs in pure builds")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	res := testing.Benchmark(BenchmarkRecorderRecord)
	perOp := res.NsPerOp()
	t.Logf("recorder overhead: %d ns/span over %d iterations", perOp, res.N)
	if perOp > 100 {
		t.Errorf("flight recorder costs %d ns/span, budget is 100 ns", perOp)
	}
}
