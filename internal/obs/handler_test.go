package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("explains.total").Add(5)
	r.CounterVec("engine.cache_hits", "stage").With("gam").Add(2)
	srv := httptest.NewServer(HandlerFor(r, NewRecorder(16)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	samples := parsePromText(t, string(body))
	if samples["explains_total"] != 5 || samples[`engine_cache_hits{stage="gam"}`] != 2 {
		t.Errorf("scrape samples = %v", samples)
	}
}

func TestHandlerHealthzEndpoint(t *testing.T) {
	srv := httptest.NewServer(HandlerFor(NewRegistry(), NewRecorder(16)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		Status  string  `json:"status"`
		UptimeS float64 `json:"uptime_s"`
		Go      string  `json:"go"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Status != "ok" || h.UptimeS < 0 || !strings.HasPrefix(h.Go, "go") {
		t.Errorf("healthz = %+v", h)
	}
}

func TestHandlerFlightEndpoint(t *testing.T) {
	rec := NewRecorder(16)
	rec.RecordSpan(&SpanData{Name: "served.span"})
	srv := httptest.NewServer(HandlerFor(NewRegistry(), rec))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/flight")
	if err != nil {
		t.Fatalf("GET /flight: %v", err)
	}
	defer resp.Body.Close()
	var s FlightSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(s.Entries) != 1 || s.Entries[0].Span.Name != "served.span" {
		t.Errorf("flight snapshot = %+v", s)
	}
}

func TestServeBindsAndStops(t *testing.T) {
	bound, stop, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	resp, err := http.Get("http://" + bound + "/healthz")
	if err != nil {
		stop()
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		stop()
		t.Fatalf("status = %d", resp.StatusCode)
	}
	stop()
	if _, err := http.Get("http://" + bound + "/healthz"); err == nil {
		t.Error("server still reachable after stop")
	}
}
