//go:build !race

package obs

// raceEnabled reports whether the race detector instruments this build;
// timing gates skip themselves under -race (instrumentation inflates
// every atomic/mutex op far past the production budget).
const raceEnabled = false
