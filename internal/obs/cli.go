package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// CLI bundles the observability flags shared by the gef and experiments
// commands:
//
//	-trace <file|->   JSON-lines span trace (stdout with "-")
//	-v                human-readable span progress on stderr
//	-metrics-out <f>  BENCH-shaped metrics snapshot written on exit
//	-cpuprofile <f>   CPU profile with per-stage pprof labels
//	-memprofile <f>   heap profile written on exit
//
// Typical use:
//
//	var ocli obs.CLI
//	ocli.RegisterFlags(flag.CommandLine)
//	flag.Parse()
//	stop, err := ocli.Start("gef")
//	if err != nil { ... }
//	defer stop()
type CLI struct {
	Trace      string
	MetricsOut string
	CPUProfile string
	MemProfile string
	Verbose    bool
}

// RegisterFlags declares the shared observability flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Trace, "trace", "", "write a JSON-lines span trace to this file ('-' for stdout)")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write a JSON metrics snapshot (BENCH shape) to this file on exit")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile (stages labelled "+pprofLabelKey+") to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.BoolVar(&c.Verbose, "v", false, "print human-readable span progress to stderr")
}

// Start activates everything the parsed flags request and returns the
// cleanup function, which flushes sinks, stops profiles and writes the
// metrics snapshot. name labels the metrics report.
func (c *CLI) Start(name string) (stop func(), err error) {
	var sinks []Sink
	var closers []io.Closer

	cleanupOnErr := func() {
		for _, cl := range closers {
			//lint:ignore errdrop error-path cleanup; the primary error is already being returned
			cl.Close()
		}
	}

	if c.Trace != "" {
		w := io.Writer(os.Stdout)
		if c.Trace != "-" {
			f, err := os.Create(c.Trace)
			if err != nil {
				return nil, fmt.Errorf("obs: creating trace file: %w", err)
			}
			closers = append(closers, f)
			w = f
		}
		sinks = append(sinks, NewJSONSink(w))
	}
	if c.Verbose {
		sinks = append(sinks, NewTextSink(os.Stderr))
	}
	SetSink(MultiSink(sinks...))

	var cpuFile *os.File
	if c.CPUProfile != "" {
		cpuFile, err = os.Create(c.CPUProfile)
		if err != nil {
			cleanupOnErr()
			return nil, fmt.Errorf("obs: creating cpu profile: %w", err)
		}
		closers = append(closers, cpuFile)
		SetPprofLabels(true)
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cleanupOnErr()
			return nil, fmt.Errorf("obs: starting cpu profile: %w", err)
		}
	} else {
		SetPprofLabels(false)
	}

	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
		}
		if s := CurrentSink(); s != nil {
			if err := s.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "obs: flushing trace sink: %v\n", err)
			}
		}
		SetSink(nil)
		if c.MetricsOut != "" {
			if err := WriteBenchReport(c.MetricsOut, name); err != nil {
				fmt.Fprintf(os.Stderr, "obs: writing metrics: %v\n", err)
			}
		}
		if c.MemProfile != "" {
			if f, err := os.Create(c.MemProfile); err != nil {
				fmt.Fprintf(os.Stderr, "obs: creating mem profile: %v\n", err)
			} else {
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "obs: writing mem profile: %v\n", err)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "obs: closing mem profile: %v\n", err)
				}
			}
		}
		for _, cl := range closers {
			if err := cl.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "obs: closing output: %v\n", err)
			}
		}
	}, nil
}
