package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// CLI bundles the observability flags shared by the gef, forestgen and
// experiments commands:
//
//	-trace <file|->     span trace (stdout with "-")
//	-trace-format <f>   trace encoding: jsonl (default), text, chrome
//	-v                  human-readable span progress on stderr
//	-metrics-out <f>    BENCH-shaped metrics snapshot written on exit
//	-flight-out <f>     flight-recorder snapshot written on exit
//	-obs-listen <addr>  serve /metrics, /healthz and /flight while running
//	-cpuprofile <f>     CPU profile with per-stage pprof labels
//	-memprofile <f>     heap profile written on exit
//
// Typical use:
//
//	var ocli obs.CLI
//	ocli.RegisterFlags(flag.CommandLine)
//	flag.Parse()
//	stop, err := ocli.Start("gef")
//	if err != nil { ... }
//	defer stop()
//
// On a typed pipeline error or a degraded explanation the commands also
// call DumpFlight to persist the flight recorder even when -flight-out
// was not given (dump-on-error).
type CLI struct {
	Trace       string
	TraceFormat string
	MetricsOut  string
	FlightOut   string
	ObsListen   string
	CPUProfile  string
	MemProfile  string
	Verbose     bool
}

// Trace encodings accepted by -trace-format.
const (
	TraceJSONL  = "jsonl"
	TraceText   = "text"
	TraceChrome = "chrome"
)

// RegisterFlags declares the shared observability flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Trace, "trace", "", "write a span trace to this file ('-' for stdout)")
	fs.StringVar(&c.TraceFormat, "trace-format", TraceJSONL,
		"encoding for -trace: jsonl (machine analysis), text (human log), chrome (chrome://tracing / Perfetto trace_event JSON)")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write a JSON metrics snapshot (BENCH shape) to this file on exit")
	fs.StringVar(&c.FlightOut, "flight-out", "", "write a flight-recorder snapshot (JSON) to this file on exit; errors and degradations dump here automatically")
	fs.StringVar(&c.ObsListen, "obs-listen", "", "serve /metrics (Prometheus), /healthz and /flight on this address while running (e.g. localhost:9090)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile (stages labelled "+pprofLabelKey+") to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.BoolVar(&c.Verbose, "v", false, "print human-readable span progress to stderr")
}

// traceSink builds the sink selected by -trace-format for w.
func (c *CLI) traceSink(w io.Writer) (Sink, error) {
	switch c.TraceFormat {
	case TraceJSONL, "":
		return NewJSONSink(w), nil
	case TraceText:
		return NewTextSink(w), nil
	case TraceChrome:
		return NewChromeTraceSink(w), nil
	}
	return nil, fmt.Errorf("obs: unknown -trace-format %q (want jsonl, text or chrome)", c.TraceFormat)
}

// DumpFlight writes the flight recorder to -flight-out, or to
// <name>-flight.json when the flag was not given, and returns the path.
// The commands call it on typed errors and degraded explanations so a
// post-mortem ring is always on disk after a failed run.
func (c *CLI) DumpFlight(name string) (string, error) {
	path := c.FlightOut
	if path == "" {
		path = name + "-flight.json"
	}
	if err := DumpFlightFile(path); err != nil {
		return "", err
	}
	return path, nil
}

// Start activates everything the parsed flags request and returns the
// cleanup function, which flushes sinks, stops profiles and servers, and
// writes the metrics and flight snapshots. name labels the metrics
// report and the default flight-dump filename.
func (c *CLI) Start(name string) (stop func(), err error) {
	var sinks []Sink
	var closers []io.Closer

	cleanupOnErr := func() {
		for _, cl := range closers {
			//lint:ignore errdrop error-path cleanup; the primary error is already being returned
			cl.Close()
		}
	}

	if c.Trace != "" {
		w := io.Writer(os.Stdout)
		if c.Trace != "-" {
			f, err := os.Create(c.Trace)
			if err != nil {
				return nil, fmt.Errorf("obs: creating trace file: %w", err)
			}
			closers = append(closers, f)
			w = f
		}
		s, err := c.traceSink(w)
		if err != nil {
			cleanupOnErr()
			return nil, err
		}
		sinks = append(sinks, s)
	}
	if c.Verbose {
		sinks = append(sinks, NewTextSink(os.Stderr))
	}
	SetSink(NewSinkTee(sinks...))

	stopServe := func() {}
	if c.ObsListen != "" {
		bound, stopSrv, err := Serve(c.ObsListen)
		if err != nil {
			cleanupOnErr()
			SetSink(nil)
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "obs: telemetry on http://%s (/metrics /healthz /flight)\n", bound)
		stopServe = stopSrv
	}

	var cpuFile *os.File
	if c.CPUProfile != "" {
		cpuFile, err = os.Create(c.CPUProfile)
		if err != nil {
			cleanupOnErr()
			stopServe()
			SetSink(nil)
			return nil, fmt.Errorf("obs: creating cpu profile: %w", err)
		}
		closers = append(closers, cpuFile)
		SetPprofLabels(true)
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cleanupOnErr()
			stopServe()
			SetSink(nil)
			return nil, fmt.Errorf("obs: starting cpu profile: %w", err)
		}
	} else {
		SetPprofLabels(false)
	}

	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
		}
		if s := CurrentSink(); s != nil {
			if err := s.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "obs: flushing trace sink: %v\n", err)
			}
		}
		SetSink(nil)
		stopServe()
		if c.MetricsOut != "" {
			if err := WriteBenchReport(c.MetricsOut, name); err != nil {
				fmt.Fprintf(os.Stderr, "obs: writing metrics: %v\n", err)
			}
		}
		if c.FlightOut != "" {
			if err := DumpFlightFile(c.FlightOut); err != nil {
				fmt.Fprintf(os.Stderr, "obs: writing flight snapshot: %v\n", err)
			}
		}
		if c.MemProfile != "" {
			if f, err := os.Create(c.MemProfile); err != nil {
				fmt.Fprintf(os.Stderr, "obs: creating mem profile: %v\n", err)
			} else {
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "obs: writing mem profile: %v\n", err)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "obs: closing mem profile: %v\n", err)
				}
			}
		}
		for _, cl := range closers {
			if err := cl.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "obs: closing output: %v\n", err)
			}
		}
	}, nil
}
