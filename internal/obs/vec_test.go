package obs

import (
	"strings"
	"testing"
)

func TestCounterVecSeriesKeys(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("engine.cache_hits", "stage")
	v.With("domains").Add(3)
	v.With("sample").Inc()
	v.With("domains").Inc()

	s := r.Snapshot()
	if got := s.Counters[`engine.cache_hits{stage="domains"}`]; got != 4 {
		t.Errorf("domains series = %d, want 4", got)
	}
	if got := s.Counters[`engine.cache_hits{stage="sample"}`]; got != 1 {
		t.Errorf("sample series = %d, want 1", got)
	}
	// Same tuple returns the same instrument.
	if v.With("domains") != v.With("domains") {
		t.Error("With returned different instruments for one tuple")
	}
	// Redeclaration returns the same family.
	if r.CounterVec("engine.cache_hits", "stage") != v {
		t.Error("CounterVec redeclaration returned a new family")
	}
}

func TestVecMultiLabelOrdering(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("robust.degradations", "stage", "action")
	v.With("gam", "drop_tensors").Inc()
	want := `robust.degradations{stage="gam",action="drop_tensors"}`
	if _, ok := r.Snapshot().Counters[want]; !ok {
		t.Errorf("snapshot missing %q; have %v", want, r.Snapshot().Counters)
	}
}

func TestVecLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m", "k").With(`a"b\c` + "\n").Inc()
	var found string
	for name := range r.Snapshot().Counters {
		found = name
	}
	want := `m{k="a\"b\\c\n"}`
	if found != want {
		t.Errorf("encoded series = %q, want %q", found, want)
	}
	fam, labels := SplitSeriesName(found)
	if fam != "m" || !strings.HasPrefix(labels, `k="`) {
		t.Errorf("SplitSeriesName(%q) = %q, %q", found, fam, labels)
	}
}

func TestGaugeAndHistogramVec(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("load", "shard").With("a").Set(0.5)
	if got := r.Snapshot().Gauges[`load{shard="a"}`]; got != 0.5 {
		t.Errorf("gauge series = %v", got)
	}
	hv := r.HistogramVecBuckets("lat", []float64{1, 10}, "route")
	hv.With("explain").Observe(5)
	hs, ok := r.Snapshot().Histograms[`lat{route="explain"}`]
	if !ok || hs.Count != 1 {
		t.Errorf("histogram series = %+v, ok=%v", hs, ok)
	}
	bounds, counts := hv.With("explain").Buckets()
	if len(bounds) != 2 || len(counts) != 3 || counts[1] != 1 {
		t.Errorf("buckets = %v %v", bounds, counts)
	}
}

func TestVecPanics(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("no labels", func() { r.CounterVec("x") })
	mustPanic("bad key", func() { r.CounterVec("x", "has space") })
	v := r.CounterVec("ok", "a", "b")
	mustPanic("arity", func() { v.With("only-one") })
	mustPanic("schema change", func() { r.CounterVec("ok", "different") })
}

func TestVecResetDetaches(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "k")
	v.With("x").Inc()
	r.Reset()
	if len(r.Snapshot().Counters) != 0 {
		t.Error("Reset left counters behind")
	}
	// A fresh declaration after Reset starts a new family.
	v2 := r.CounterVec("c", "k")
	if v2 == v {
		t.Error("Reset did not clear the vec table")
	}
}
