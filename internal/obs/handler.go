package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"
)

// HTTP surface for operational telemetry — the endpoints the gefd
// explanation server mounts and the CLIs expose behind -obs-listen:
//
//	/metrics  Prometheus text exposition of the metrics registry
//	/healthz  liveness JSON (status, uptime, runtime identity)
//	/flight   JSON snapshot of the flight recorder
//
// Handler uses only net/http; there is no middleware, auth or TLS —
// serve it on a loopback or otherwise trusted interface.

// processStart anchors /healthz uptime.
var processStart = time.Now()

// Handler returns the telemetry handler over the default metrics
// registry and the default flight recorder.
func Handler() http.Handler { return HandlerFor(Metrics(), nil) }

// HandlerFor returns a telemetry handler over an explicit registry and
// recorder. A nil recorder serves the process-wide default (resolved per
// request, so SetFlight swaps take effect live).
func HandlerFor(r *Registry, rec *Recorder) http.Handler {
	mux := http.NewServeMux()
	recorder := func() *Recorder {
		if rec != nil {
			return rec
		}
		return Flight()
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is log the broken scrape.
			fmt.Fprintf(os.Stderr, "obs: /metrics write: %v\n", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		if err := enc.Encode(map[string]any{
			"status":    "ok",
			"uptime_s":  time.Since(processStart).Seconds(),
			"go":        runtime.Version(),
			"goroutine": runtime.NumGoroutine(),
			"workers":   runtime.GOMAXPROCS(0),
		}); err != nil {
			fmt.Fprintf(os.Stderr, "obs: /healthz write: %v\n", err)
		}
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := WriteFlightJSON(w, recorder().Snapshot()); err != nil {
			fmt.Fprintf(os.Stderr, "obs: /flight write: %v\n", err)
		}
	})
	return mux
}

// Serve starts Handler on addr (e.g. "localhost:9090", ":0" for an
// ephemeral port) in a background goroutine and returns the bound
// address plus a stop function that shuts the listener down. The CLIs
// wire this behind -obs-listen so any run can be scraped while it
// computes.
func Serve(addr string) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// ErrServerClosed is the normal shutdown path; anything else is
		// reported because the caller's scrape surface silently died.
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "obs: telemetry server: %v\n", serr)
		}
	}()
	return ln.Addr().String(), func() {
		//lint:ignore errdrop best-effort shutdown of a diagnostics listener
		srv.Close()
		<-done
	}, nil
}
