package obs

import (
	"encoding/json"
	"os"
	"runtime"
)

// BenchReport is the repo's BENCH_*.json shape: a named, environment-
// stamped metrics snapshot that successive perf PRs can diff per stage.
// The convention (seeded by BENCH_obs.json at the repo root):
//
//   - file name BENCH_<topic>.json
//   - "name" identifies the producing harness (e.g. "gef-bench")
//   - "metrics" is a full Registry snapshot — counters, gauges and
//     histogram summaries with fixed-bucket percentiles
//
// No timestamp is embedded so reruns with identical behaviour produce
// identical counter sections (timings naturally vary).
type BenchReport struct {
	Name    string   `json:"name"`
	Go      string   `json:"go"`
	OS      string   `json:"os"`
	Arch    string   `json:"arch"`
	Metrics Snapshot `json:"metrics"`
}

// NewBenchReport captures the default registry into a report named name.
func NewBenchReport(name string) BenchReport {
	return BenchReport{
		Name:    name,
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
		Metrics: Metrics().Snapshot(),
	}
}

// WriteBenchReport writes NewBenchReport(name) to path as indented JSON.
func WriteBenchReport(path, name string) error {
	data, err := json.MarshalIndent(NewBenchReport(name), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// StageSpeedup compares one pipeline stage's wall time between a
// workers=1 run and a workers=N run of the same workload.
type StageSpeedup struct {
	Stage      string  `json:"stage"`
	SerialMs   float64 `json:"serial_ms"`   // wall time at workers=1
	ParallelMs float64 `json:"parallel_ms"` // wall time at workers=N
	Speedup    float64 `json:"speedup"`     // serial / parallel
}

// SpeedupReport is the BENCH_par.json shape: the same workload run at
// workers=1 and workers=N on the same host, with per-stage and total
// wall-time ratios. Cores records the host's CPU count so a speedup of
// ~1 on a 1-core machine reads as expected rather than as a regression.
type SpeedupReport struct {
	Name            string         `json:"name"`
	Go              string         `json:"go"`
	OS              string         `json:"os"`
	Arch            string         `json:"arch"`
	Cores           int            `json:"cores"`
	WorkersSerial   int            `json:"workers_serial"`
	WorkersParallel int            `json:"workers_parallel"`
	TotalSerialMs   float64        `json:"total_serial_ms"`
	TotalParallelMs float64        `json:"total_parallel_ms"`
	TotalSpeedup    float64        `json:"total_speedup"`
	Stages          []StageSpeedup `json:"stages,omitempty"`
}

// NewSpeedupReport stamps a report with the build/host environment.
func NewSpeedupReport(name string) SpeedupReport {
	return SpeedupReport{
		Name:  name,
		Go:    runtime.Version(),
		OS:    runtime.GOOS,
		Arch:  runtime.GOARCH,
		Cores: runtime.NumCPU(),
	}
}

// WriteSpeedupReport writes r to path as indented JSON.
func WriteSpeedupReport(path string, r SpeedupReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
