package obs

import (
	"encoding/json"
	"os"
	"runtime"
)

// BenchReport is the repo's BENCH_*.json shape: a named, environment-
// stamped metrics snapshot that successive perf PRs can diff per stage.
// The convention (seeded by BENCH_obs.json at the repo root):
//
//   - file name BENCH_<topic>.json
//   - "name" identifies the producing harness (e.g. "gef-bench")
//   - "metrics" is a full Registry snapshot — counters, gauges and
//     histogram summaries with fixed-bucket percentiles
//
// No timestamp is embedded so reruns with identical behaviour produce
// identical counter sections (timings naturally vary).
type BenchReport struct {
	Name    string   `json:"name"`
	Go      string   `json:"go"`
	OS      string   `json:"os"`
	Arch    string   `json:"arch"`
	Metrics Snapshot `json:"metrics"`
}

// NewBenchReport captures the default registry into a report named name.
func NewBenchReport(name string) BenchReport {
	return BenchReport{
		Name:    name,
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
		Metrics: Metrics().Snapshot(),
	}
}

// WriteBenchReport writes NewBenchReport(name) to path as indented JSON.
func WriteBenchReport(path, name string) error {
	data, err := json.MarshalIndent(NewBenchReport(name), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
