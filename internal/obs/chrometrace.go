package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// ChromeTraceSink writes spans as Chrome trace_event JSON (the "JSON
// Array Format"), loadable directly in chrome://tracing and Perfetto:
// Engine stage timelines, the par worker fan-out and SHAP hot paths
// render as nested duration slices on a shared time axis. Selected on
// the CLIs with -trace-format=chrome.
//
// Span mapping:
//
//   - a span becomes a B ("begin") event at Start and an E ("end") event
//     at End, with ts in microseconds since the Unix epoch;
//   - span events (zero-wall Event records) become instant events
//     (ph "i", scope "t");
//   - pid is always 1; tid is a lane derived from the span lineage: a
//     span inherits its parent's lane while it is the only open child,
//     and overlapping siblings (the parallel λ-grid, par fan-outs) are
//     moved to fresh lanes keyed by their own span id. Lanes are
//     goroutine-stable — a span and its same-goroutine descendants stay
//     on one lane — so every lane's B/E stream is properly nested, which
//     the Chrome viewer requires;
//   - End attributes (plus the heap-allocation deltas) land in args.
//
// A span that ends without a recorded begin (the sink was installed
// mid-span) degrades to a self-contained X ("complete") event.
type ChromeTraceSink struct {
	mu     sync.Mutex
	w      io.Writer
	err    error // first write error, surfaced by Flush
	wrote  bool  // whether any event has been emitted (comma placement)
	closed bool

	lanes map[uint64]uint64   // span id → lane (tid)
	open  map[uint64][]uint64 // lane → stack of open span ids
}

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// NewChromeTraceSink returns a sink writing one JSON event array to w.
// Call Flush to terminate the array; without it most viewers still load
// the file (the array format tolerates a missing closing bracket), but
// Flush also surfaces any write error.
func NewChromeTraceSink(w io.Writer) *ChromeTraceSink {
	return &ChromeTraceSink{
		w:     w,
		lanes: make(map[uint64]uint64),
		open:  make(map[uint64][]uint64),
	}
}

// emit writes one event, handling the array framing. Caller holds mu.
func (c *ChromeTraceSink) emit(ev chromeEvent) {
	if c.err != nil || c.closed {
		return
	}
	prefix := ",\n"
	if !c.wrote {
		prefix = "[\n"
	}
	data, err := json.Marshal(ev)
	if err != nil {
		c.err = err
		return
	}
	if _, err := io.WriteString(c.w, prefix); err != nil {
		c.err = err
		return
	}
	if _, err := c.w.Write(data); err != nil {
		c.err = err
		return
	}
	c.wrote = true
}

// usec converts a SpanData timestamp to trace_event microseconds.
func usec(sp *SpanData) float64 { return float64(sp.Start.UnixNano()) / 1e3 }

// lane resolves the tid for a new span: the parent's lane when the
// parent is the innermost open span there, otherwise a fresh lane named
// by the span's own id.
func (c *ChromeTraceSink) lane(sp *SpanData) uint64 {
	if sp.Parent != 0 {
		if l, ok := c.lanes[sp.Parent]; ok {
			stack := c.open[l]
			if len(stack) > 0 && stack[len(stack)-1] == sp.Parent {
				return l
			}
		}
	}
	return sp.ID
}

func (c *ChromeTraceSink) Begin(sp *SpanData) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.lane(sp)
	c.lanes[sp.ID] = l
	c.open[l] = append(c.open[l], sp.ID)
	c.emit(chromeEvent{Name: sp.Name, Cat: "gef", Phase: "B", TS: usec(sp), PID: 1, TID: l})
}

func (c *ChromeTraceSink) End(sp *SpanData) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, begun := c.lanes[sp.ID]
	args := spanArgs(sp)
	switch {
	case !begun && sp.Wall == 0:
		// An instant span event: attach it to the owning span's lane.
		pl, ok := c.lanes[sp.Parent]
		if !ok {
			pl = sp.ID
		}
		c.emit(chromeEvent{Name: sp.Name, Cat: "gef", Phase: "i", TS: usec(sp), PID: 1, TID: pl, Scope: "t", Args: args})
	case !begun:
		// End without Begin (sink installed mid-span): a complete event.
		c.emit(chromeEvent{Name: sp.Name, Cat: "gef", Phase: "X",
			TS: usec(sp), Dur: float64(sp.Wall.Microseconds()), PID: 1, TID: sp.ID, Args: args})
	default:
		delete(c.lanes, sp.ID)
		if stack := c.open[l]; len(stack) > 0 && stack[len(stack)-1] == sp.ID {
			if len(stack) == 1 {
				delete(c.open, l)
			} else {
				c.open[l] = stack[:len(stack)-1]
			}
		}
		c.emit(chromeEvent{Name: sp.Name, Cat: "gef", Phase: "E",
			TS: usec(sp) + float64(sp.Wall.Microseconds()), PID: 1, TID: l, Args: args})
	}
}

// spanArgs flattens attributes and allocation deltas for the viewer's
// slice-details pane.
func spanArgs(sp *SpanData) map[string]any {
	if len(sp.Attrs) == 0 && sp.AllocBytes == 0 {
		return nil
	}
	args := make(map[string]any, len(sp.Attrs)+2)
	for _, a := range sp.Attrs {
		args[a.Key] = a.Value
	}
	if sp.AllocBytes > 0 {
		args["alloc_bytes"] = sp.AllocBytes
		args["alloc_objects"] = sp.AllocObjects
	}
	return args
}

// Flush terminates the JSON array and reports the first write error.
// Further events are dropped.
func (c *ChromeTraceSink) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		suffix := "\n]\n"
		if !c.wrote {
			suffix = "[]\n"
		}
		if _, err := io.WriteString(c.w, suffix); err != nil && c.err == nil {
			c.err = err
		}
		c.closed = true
	}
	return c.err
}
