package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	// Same name returns the same instrument.
	if r.Counter("hits") != c {
		t.Error("Counter(name) did not return the existing instrument")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("loss")
	if g.Value() != 0 {
		t.Errorf("initial gauge = %v", g.Value())
	}
	g.Set(0.125)
	if g.Value() != 0.125 {
		t.Errorf("gauge = %v, want 0.125", g.Value())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 1..100 uniformly: with linear interpolation inside log buckets the
	// uniform ranks land exactly on the uniform values at the checked
	// quantiles.
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5050) > 1e-9 {
		t.Errorf("sum = %v, want 5050", got)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.90, 90}, {1.0, 100},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-6 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Quantiles never escape the observed range.
	if got := h.Quantile(0.0001); got < 1 {
		t.Errorf("Quantile(0.0001) = %v, below observed min", got)
	}
}

func TestHistogramCustomBucketsAndEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("iters", []float64{1, 2, 5, 10, 25})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	for _, v := range []float64{3, 3, 3, 3} {
		h.Observe(v)
	}
	// All mass in one bucket: every quantile collapses to [min,max]=[3,3].
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %v, want 3", got)
	}
	if got := h.Quantile(0.99); got != 3 {
		t.Errorf("Quantile(0.99) = %v, want 3", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("par")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) + 1)
			}
		}(w)
	}
	wg.Wait()
	n := int64(workers * per)
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	want := float64(n) * float64(n+1) / 2
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("gam.gcv_evals").Add(12)
	r.Gauge("gbdt.final_train_loss").Set(0.25)
	h := r.Histogram("gam.pirls_iters")
	h.Observe(4)
	h.Observe(6)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("decode: %v\n%s", err, buf.String())
	}
	if snap.Counters["gam.gcv_evals"] != 12 {
		t.Errorf("counter = %d", snap.Counters["gam.gcv_evals"])
	}
	if snap.Gauges["gbdt.final_train_loss"] != 0.25 {
		t.Errorf("gauge = %v", snap.Gauges["gbdt.final_train_loss"])
	}
	hs := snap.Histograms["gam.pirls_iters"]
	if hs.Count != 2 || hs.Sum != 10 || hs.Mean != 5 || hs.Min != 4 || hs.Max != 6 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Reset()
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("after Reset counter = %d", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != 1 { // recreated by the read above
		t.Errorf("counters after reset = %v", s.Counters)
	}
}

func TestBenchReportShape(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/BENCH_test.json"
	Count("bench.test_counter", 3)
	if err := WriteBenchReport(path, "unit"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Name != "unit" || rep.Go == "" || rep.OS == "" || rep.Arch == "" {
		t.Errorf("report header = %+v", rep)
	}
	if rep.Metrics.Counters["bench.test_counter"] < 3 {
		t.Errorf("metrics not embedded: %v", rep.Metrics.Counters)
	}
}
