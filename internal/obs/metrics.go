package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a process-wide metrics store: named counters, gauges and
// fixed-bucket histograms. Instrument creation takes a short lock on the
// name map; the instruments themselves are lock-free atomics, so hot
// paths should hoist them into package variables:
//
//	var nodeVisits = obs.Metrics().Counter("shap.node_visits")
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	vecs     map[vecKey]any // labeled families; see vec.go
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Metrics returns the process-wide default registry, which all pipeline
// instrumentation uses.
func Metrics() *Registry { return defaultRegistry }

// Counter returns (creating if needed) the named monotonic counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named last-value gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// default log-spaced buckets.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, nil)
}

// HistogramBuckets returns the named histogram, creating it with the
// given ascending upper bounds (nil for the defaults). Bounds are fixed
// at creation; later calls ignore the argument.
func (r *Registry) HistogramBuckets(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset discards every instrument — for tests and for isolating
// per-run snapshots.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.hists = make(map[string]*Histogram)
	r.vecs = make(map[vecKey]any)
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value (zero before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// defaultBuckets covers twelve decades in a 1–2–5 sequence, wide enough
// for millisecond timings, iteration counts and byte sizes alike.
func defaultBuckets() []float64 {
	var b []float64
	for exp := -6; exp <= 6; exp++ {
		p := math.Pow(10, float64(exp))
		b = append(b, p, 2*p, 5*p)
	}
	return b
}

// Histogram is a fixed-bucket distribution with lock-free observation.
// Percentiles are estimated by linear interpolation within the bucket
// containing the requested rank.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = defaultBuckets()
	} else {
		bounds = append([]float64(nil), bounds...)
		sort.Float64s(bounds)
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations. The accumulator is a CAS
// loop over float64 bits, so Sum is safe (and exact up to float64
// addition order) under concurrent Observe calls.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the histogram's ascending upper bounds and the
// per-bucket observation counts. counts has len(bounds)+1 entries — the
// last is the implicit +Inf overflow bucket. Counts are read bucket by
// bucket, so under concurrent Observe calls the snapshot can trail an
// in-flight observation; each individual count is exact. The Prometheus
// exposition writer builds its cumulative _bucket series from this.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return append([]float64(nil), h.bounds...), counts
}

// Quantile estimates the q-quantile from the bucket counts: linear
// interpolation inside the hosting bucket, clamped to the observed
// min/max. Edge behavior is pinned down (and locked in by tests):
//
//   - no observations → NaN, whatever q is;
//   - q <= 0 (including negative q) → the observed minimum;
//   - q >= 1 (including q > 1) → the observed maximum.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	mn := math.Float64frombits(h.min.Load())
	mx := math.Float64frombits(h.max.Load())
	if q <= 0 {
		return mn
	}
	if q >= 1 {
		return mx
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := mn
			if i > 0 {
				lo = math.Max(mn, h.bounds[i-1])
			}
			hi := mx
			if i < len(h.bounds) {
				hi = math.Min(mx, h.bounds[i])
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return mx
}

// --- snapshot ------------------------------------------------------------

// HistogramSnapshot is the summary form of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of a registry, JSON-encodable (the
// expvar-style export surface).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		n := h.Count()
		hs := HistogramSnapshot{Count: n, Sum: h.Sum()}
		if n > 0 {
			hs.Mean = hs.Sum / float64(n)
			hs.Min = math.Float64frombits(h.min.Load())
			hs.Max = math.Float64frombits(h.max.Load())
			hs.P50 = h.Quantile(0.50)
			hs.P90 = h.Quantile(0.90)
			hs.P99 = h.Quantile(0.99)
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON (map keys are
// emitted sorted by encoding/json, so output is deterministic for a
// given state).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Package-level conveniences on the default registry.

// Count adds n to the named default-registry counter.
func Count(name string, n int64) { defaultRegistry.Counter(name).Add(n) }

// SetGauge stores v in the named default-registry gauge.
func SetGauge(name string, v float64) { defaultRegistry.Gauge(name).Set(v) }

// Observe records v in the named default-registry histogram.
func Observe(name string, v float64) { defaultRegistry.Histogram(name).Observe(v) }
