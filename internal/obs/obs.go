// Package obs is the pipeline-wide observability layer: a lightweight
// span/trace API, a process-wide metrics registry (counters, gauges,
// fixed-bucket histograms) and runtime/pprof label integration, all
// stdlib-only.
//
// The design splits responsibilities the way the GEF pipeline needs them:
//
//   - Spans measure the *macro* structure — one span per pipeline stage
//     (feature selection, domain construction, D* generation, interaction
//     ranking, GAM fit, per-λ GCV evaluations). Spans carry wall time,
//     heap-allocation deltas (runtime.MemStats) and key/value attributes,
//     and are emitted to a pluggable Sink (no-op by default, human text,
//     or JSON-lines for machine analysis).
//   - Metrics count the *micro* structure — per-iteration boosting
//     timings, P-IRLS iteration counts, SHAP node visits, PD forest
//     evaluations. They are always-on atomics with negligible cost, so
//     hot paths need no enable checks.
//
// A third consumer rides on the span stream: the always-on flight
// recorder (see recorder.go), a fixed-size ring of the most recent
// completed spans, events, degradations and errors that production runs
// dump on error and the telemetry handler serves at /flight. With the
// recorder enabled (the default) Start always returns a live span; the
// per-span cost is one small allocation plus a short ring write at End
// (ReadMemStats is still skipped unless a sink is installed, so alloc
// deltas are only measured when tracing is on). When the recorder is
// disabled too, Start returns a nil *Span whose methods no-op and the
// pipeline is effectively free (one atomic load per stage). In every
// mode the pipeline output is byte-identical to an uninstrumented one.
package obs

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value any    `json:"v"`
}

// Int, F64, Str and Bool build span attributes.
func Int(k string, v int) Attr           { return Attr{Key: k, Value: v} }
func I64(k string, v int64) Attr         { return Attr{Key: k, Value: v} }
func F64(k string, v float64) Attr       { return Attr{Key: k, Value: v} }
func Str(k, v string) Attr               { return Attr{Key: k, Value: v} }
func Bool(k string, v bool) Attr         { return Attr{Key: k, Value: v} }
func Dur(k string, v time.Duration) Attr { return Attr{Key: k, Value: v.Seconds()} }

// SpanData is the immutable record a Sink receives. At Begin time Wall and
// the allocation deltas are still zero; End fills them in.
type SpanData struct {
	ID     uint64    `json:"id"`
	Parent uint64    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Depth  int       `json:"depth"`
	Start  time.Time `json:"start"`
	// Wall is the span duration in nanoseconds.
	Wall time.Duration `json:"wall_ns"`
	// AllocBytes / AllocObjects are the process-wide heap-allocation
	// deltas (runtime.MemStats TotalAlloc / Mallocs) over the span. They
	// include allocations by concurrent goroutines; at the pipeline's
	// stage granularity the stage under measurement dominates.
	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`
	Attrs        []Attr `json:"attrs,omitempty"`
}

// pprofLabelKey is the label key under which CPU-profile samples are
// attributed to the innermost active span.
const pprofLabelKey = "gef_stage"

var (
	globalSink  atomic.Value // sinkBox
	pprofLabels atomic.Bool
	spanIDs     atomic.Uint64
)

// sinkBox lets atomic.Value hold differently-typed Sinks (and nil).
type sinkBox struct{ s Sink }

// SetSink installs the process-wide trace sink. Pass nil to disable
// tracing (the default).
func SetSink(s Sink) { globalSink.Store(sinkBox{s: s}) }

// CurrentSink returns the installed sink, or nil when tracing is off.
func CurrentSink() Sink {
	if b, ok := globalSink.Load().(sinkBox); ok {
		return b.s
	}
	return nil
}

// SetPprofLabels toggles per-span goroutine pprof labels: when on, CPU
// profile samples are labelled gef_stage=<innermost span name>, so
// `go tool pprof -tags` attributes time to pipeline stages.
func SetPprofLabels(on bool) { pprofLabels.Store(on) }

// Enabled reports whether a trace sink or pprof labels are active (the
// flight recorder keeps spans live independently of this).
func Enabled() bool { return CurrentSink() != nil || pprofLabels.Load() }

// ctxKey carries the parent *Span through a context.
type ctxKey struct{}

// FromContext returns the innermost active span of ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Span is one live measurement. A nil *Span is valid and inert: every
// method no-ops, which is how the disabled fast path works.
type Span struct {
	data         SpanData
	sink         Sink
	parentCtx    context.Context // restored into pprof labels at End
	labeled      bool
	startAllocs  uint64
	startMallocs uint64
	ended        bool
}

// Start begins a span named name as a child of the span in ctx (if any)
// and returns a derived context carrying the new span. When tracing,
// pprof labels and the flight recorder are all disabled it returns
// (ctx, nil) without allocating; with only the recorder on (the
// production default) the span is live but alloc deltas stay zero.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	sink := CurrentSink()
	labels := pprofLabels.Load()
	if sink == nil && !labels && !Flight().Enabled() {
		return ctx, nil
	}
	return start(ctx, name, sink, labels, attrs)
}

// StartAlways is Start that returns a live span even when tracing is
// disabled, for callers that report the span's wall time themselves
// (e.g. the experiments CLI). With no sink installed the span is
// measured but emitted nowhere.
func StartAlways(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	return start(ctx, name, CurrentSink(), pprofLabels.Load(), attrs)
}

func start(ctx context.Context, name string, sink Sink, labels bool, attrs []Attr) (context.Context, *Span) {
	sp := &Span{sink: sink, parentCtx: ctx}
	sp.data.ID = spanIDs.Add(1)
	sp.data.Name = name
	if parent := FromContext(ctx); parent != nil {
		sp.data.Parent = parent.data.ID
		sp.data.Depth = parent.data.Depth + 1
	}
	if len(attrs) > 0 {
		sp.data.Attrs = append(sp.data.Attrs, attrs...)
	}
	nctx := context.WithValue(ctx, ctxKey{}, sp)
	if labels {
		nctx = pprof.WithLabels(nctx, pprof.Labels(pprofLabelKey, name))
		pprof.SetGoroutineLabels(nctx)
		sp.labeled = true
	}
	if sink != nil {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		sp.startAllocs, sp.startMallocs = ms.TotalAlloc, ms.Mallocs
	}
	sp.data.Start = time.Now()
	if sink != nil {
		sink.Begin(&sp.data)
	}
	return nctx, sp
}

// Set appends attributes to the span (visible to the sink at End).
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, attrs...)
}

// Event emits an instantaneous child record (zero wall time) — e.g. an
// early-stopping decision — without opening a span. Events reach both
// the trace sink and the flight recorder.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	fl := Flight()
	if s.sink == nil && !fl.Enabled() {
		return
	}
	ev := SpanData{
		ID:     spanIDs.Add(1),
		Parent: s.data.ID,
		Name:   name,
		Depth:  s.data.Depth + 1,
		Start:  time.Now(),
		Attrs:  attrs,
	}
	if s.sink != nil {
		s.sink.End(&ev)
	}
	fl.record(FlightEvent, &ev, "")
}

// End closes the span, records wall time and allocation deltas, emits it
// to the sink and the flight recorder, restores the parent's pprof
// labels, and returns the wall time. Safe to call on a nil span
// (returns 0) and idempotent.
func (s *Span) End() time.Duration {
	if s == nil || s.ended {
		return 0
	}
	s.ended = true
	s.data.Wall = time.Since(s.data.Start)
	if s.labeled {
		pprof.SetGoroutineLabels(s.parentCtx)
	}
	if s.sink != nil {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.data.AllocBytes = ms.TotalAlloc - s.startAllocs
		s.data.AllocObjects = ms.Mallocs - s.startMallocs
		s.sink.End(&s.data)
	}
	Flight().record(FlightSpan, &s.data, "")
	return s.data.Wall
}

// Name returns the span's name ("" on a nil span). internal/par uses it
// to label its chunk metrics with the innermost pipeline site.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.data.Name
}

// Wall returns the span's duration so far (final after End).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	if s.ended {
		return s.data.Wall
	}
	return time.Since(s.data.Start)
}
