package obs

import (
	"bytes"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Scrape-format grammar: the subset of the Prometheus text exposition
// format this registry emits. Every line must match one of these.
var (
	promTypeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*")*\})? (NaN|[+-]Inf|[-+]?[0-9.eE+-]+)$`)
)

// parsePromText validates every line against the grammar and returns
// samples as name+labelblock → value.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			if !promTypeRe.MatchString(line) {
				t.Fatalf("invalid comment line %q", line)
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("invalid sample line %q", line)
		}
		var v float64
		switch m[3] {
		case "NaN":
			v = math.NaN()
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		default:
			f, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			v = f
		}
		samples[m[1]+m[2]] = v
	}
	return samples
}

func TestWritePrometheusScrapeFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("gam.fits").Add(7)
	r.CounterVec("engine.cache_hits", "stage").With("domains").Add(3)
	r.CounterVec("engine.cache_hits", "stage").With("sample").Add(2)
	r.Gauge("par.workers").Set(4)
	h := r.HistogramBuckets("explain.latency_s", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100) // overflow bucket

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	samples := parsePromText(t, out)

	if samples["gam_fits"] != 7 {
		t.Errorf("gam_fits = %v", samples["gam_fits"])
	}
	if samples[`engine_cache_hits{stage="domains"}`] != 3 || samples[`engine_cache_hits{stage="sample"}`] != 2 {
		t.Errorf("labeled counter series wrong: %v", samples)
	}
	if samples["par_workers"] != 4 {
		t.Errorf("par_workers = %v", samples["par_workers"])
	}

	// Histogram triplet: cumulative buckets, +Inf == _count, _sum.
	buckets := []struct {
		le   string
		want float64
	}{{"0.1", 1}, {"1", 2}, {"10", 2}, {"+Inf", 3}}
	var prev float64 = -1
	for _, b := range buckets {
		key := fmt.Sprintf(`explain_latency_s_bucket{le="%s"}`, b.le)
		got, ok := samples[key]
		if !ok || got != b.want {
			t.Errorf("%s = %v (ok=%v), want %v", key, got, ok, b.want)
		}
		if got < prev {
			t.Errorf("bucket counts not cumulative at le=%s", b.le)
		}
		prev = got
	}
	if samples["explain_latency_s_count"] != 3 {
		t.Errorf("_count = %v", samples["explain_latency_s_count"])
	}
	if math.Abs(samples["explain_latency_s_sum"]-100.55) > 1e-9 {
		t.Errorf("_sum = %v", samples["explain_latency_s_sum"])
	}

	// One TYPE line per family, before its samples.
	if c := strings.Count(out, "# TYPE engine_cache_hits counter"); c != 1 {
		t.Errorf("engine_cache_hits TYPE lines = %d", c)
	}
	if !strings.Contains(out, "# TYPE explain_latency_s histogram") {
		t.Error("missing histogram TYPE line")
	}

	// Output is deterministic.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatalf("second WritePrometheus: %v", err)
	}
	if buf2.String() != out {
		t.Error("WritePrometheus output is not deterministic")
	}
}

func TestWritePrometheusEscapedLabelValues(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m.x", "k").With("a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples := parsePromText(t, buf.String())
	if samples[`m_x{k="a\"b\\c\nd"}`] != 1 {
		t.Errorf("escaped series missing: %v", samples)
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"engine.cache_hits":  "engine_cache_hits",
		"9lives":             "_lives",
		"a-b.c":              "a_b_c",
		"ok_name:with_colon": "ok_name:with_colon",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
