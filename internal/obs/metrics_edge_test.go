package obs

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramQuantileEdges pins the documented clamp behaviour at the
// parameter boundaries: empty → NaN, q ≤ 0 → observed minimum,
// q ≥ 1 → observed maximum, regardless of bucket interpolation.
func TestHistogramQuantileEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge")
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("empty Quantile(%v) = %v, want NaN", q, got)
		}
	}
	h.Observe(2)
	h.Observe(40)
	h.Observe(900)
	for _, q := range []float64{-0.5, 0} {
		if got := h.Quantile(q); got != 2 {
			t.Errorf("Quantile(%v) = %v, want observed min 2", q, got)
		}
	}
	for _, q := range []float64{1, 1.5, math.Inf(1)} {
		if got := h.Quantile(q); got != 900 {
			t.Errorf("Quantile(%v) = %v, want observed max 900", q, got)
		}
	}
	// Interior quantiles stay inside the observed range.
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got < 2 || got > 900 {
			t.Errorf("Quantile(%v) = %v escaped [2, 900]", q, got)
		}
	}
}

// TestHistogramSumRace reads Sum, Count and Quantile while writers
// observe concurrently — the CAS-loop on the bit-packed sum must stay
// race-clean (this test is the -race gate for the read path).
func TestHistogramSumRace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hot")
	const workers, per = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	//lint:ignore rawgo test drives concurrent readers against Observe
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s := h.Sum(); s < 0 || math.IsNaN(s) {
				t.Error("torn sum read")
				return
			}
			_ = h.Count()
			_ = h.Quantile(0.5)
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:ignore rawgo test drives concurrent writers
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1)
			}
		}()
	}
	for h.Count() < workers*per {
	}
	close(stop)
	wg.Wait()
	if got := h.Sum(); got != float64(workers*per) {
		t.Errorf("final sum = %v, want %v", got, workers*per)
	}
}
