package obs

import "errors"

// SinkTee fans every span record out to several sinks in declaration
// order — the composition the CLIs use when -v text progress, a -trace
// file and a -trace-format=chrome export all run in one process. It
// differs from MultiSink in its Flush contract: every sink is flushed
// and *all* failures are reported, joined with errors.Join, instead of
// only the first (a truncated Chrome export should not be masked by an
// earlier text-sink error).
type SinkTee struct {
	sinks []Sink
}

// NewSinkTee combines sinks, dropping nil entries. Zero live sinks
// return nil (tracing off); a single live sink is returned unwrapped.
func NewSinkTee(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &SinkTee{sinks: live}
}

// Begin forwards to every sink in declaration order.
func (t *SinkTee) Begin(sp *SpanData) {
	for _, s := range t.sinks {
		s.Begin(sp)
	}
}

// End forwards to every sink in declaration order.
func (t *SinkTee) End(sp *SpanData) {
	for _, s := range t.sinks {
		s.End(sp)
	}
}

// Flush flushes every sink and joins the failures (errors.Join; nil when
// all succeed). Every sink is flushed even after an earlier failure.
func (t *SinkTee) Flush() error {
	var errs []error
	for _, s := range t.sinks {
		if err := s.Flush(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
