package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// withSink installs s for the duration of the test and restores the
// disabled state afterwards.
func withSink(t *testing.T, s Sink) {
	t.Helper()
	SetSink(s)
	t.Cleanup(func() { SetSink(nil) })
}

func TestDisabledStartIsInert(t *testing.T) {
	SetSink(nil)
	SetPprofLabels(false)
	// The flight recorder keeps spans live even with tracing off; fully
	// inert Start requires disabling it too.
	Flight().SetEnabled(false)
	t.Cleanup(func() { Flight().SetEnabled(true) })
	ctx := context.Background()
	nctx, sp := Start(ctx, "anything", Int("k", 1))
	if sp != nil {
		t.Fatalf("disabled Start returned a live span")
	}
	if nctx != ctx {
		t.Fatalf("disabled Start derived a new context")
	}
	// All methods must no-op on the nil span.
	sp.Set(Str("a", "b"))
	sp.Event("ev")
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span End returned %v", d)
	}
	if Enabled() {
		t.Fatal("Enabled() = true with no sink and no labels")
	}
}

func TestSpanNestingAndOrdering(t *testing.T) {
	ms := NewMemorySink()
	withSink(t, ms)

	ctx := context.Background()
	ctx1, parent := Start(ctx, "parent")
	ctx2, child := Start(ctx1, "child")
	_, grandchild := Start(ctx2, "grandchild")
	grandchild.End()
	child.End()
	// A sibling of child under parent, opened after child ended.
	_, sibling := Start(ctx1, "sibling")
	sibling.End()
	parent.End()

	spans := ms.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	// End order: innermost first.
	wantOrder := []string{"grandchild", "child", "sibling", "parent"}
	byName := map[string]SpanData{}
	for i, sp := range spans {
		if sp.Name != wantOrder[i] {
			t.Errorf("end order[%d] = %s, want %s", i, sp.Name, wantOrder[i])
		}
		byName[sp.Name] = sp
	}
	// Parent links and depths.
	if byName["child"].Parent != byName["parent"].ID {
		t.Errorf("child.Parent = %d, want %d", byName["child"].Parent, byName["parent"].ID)
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Errorf("grandchild.Parent = %d, want %d", byName["grandchild"].Parent, byName["child"].ID)
	}
	if byName["sibling"].Parent != byName["parent"].ID {
		t.Errorf("sibling.Parent = %d, want %d", byName["sibling"].Parent, byName["parent"].ID)
	}
	for name, depth := range map[string]int{"parent": 0, "child": 1, "sibling": 1, "grandchild": 2} {
		if byName[name].Depth != depth {
			t.Errorf("%s.Depth = %d, want %d", name, byName[name].Depth, depth)
		}
	}
	// Wall times are populated and parent ≥ child.
	if byName["parent"].Wall < byName["child"].Wall {
		t.Errorf("parent wall %v < child wall %v", byName["parent"].Wall, byName["child"].Wall)
	}
}

func TestAllocDeltaCapture(t *testing.T) {
	ms := NewMemorySink()
	withSink(t, ms)

	const size = 1 << 20
	_, sp := Start(context.Background(), "alloc")
	sink := make([]byte, size)
	for i := range sink {
		sink[i] = byte(i)
	}
	sp.End()
	if n := len(sink); n != size { // keep the slice alive past End
		t.Fatalf("len = %d", n)
	}
	spans := ms.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].AllocBytes < size {
		t.Errorf("AllocBytes = %d, want ≥ %d", spans[0].AllocBytes, size)
	}
	if spans[0].AllocObjects == 0 {
		t.Errorf("AllocObjects = 0, want > 0")
	}
}

func TestSpanEventAndAttrs(t *testing.T) {
	ms := NewMemorySink()
	withSink(t, ms)

	_, sp := Start(context.Background(), "stage", Int("n", 7))
	sp.Event("early_stop", Int("iteration", 3))
	sp.Set(F64("rmse", 0.5))
	sp.End()

	spans := ms.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want event + span", len(spans))
	}
	ev, main := spans[0], spans[1]
	if ev.Name != "early_stop" || ev.Parent != main.ID || ev.Wall != 0 {
		t.Errorf("event = %+v", ev)
	}
	got := map[string]any{}
	for _, a := range main.Attrs {
		got[a.Key] = a.Value
	}
	if got["n"] != 7 || got["rmse"] != 0.5 {
		t.Errorf("attrs = %v", got)
	}
}

func TestEndIdempotent(t *testing.T) {
	ms := NewMemorySink()
	withSink(t, ms)
	_, sp := Start(context.Background(), "once")
	sp.End()
	sp.End()
	if n := len(ms.Spans()); n != 1 {
		t.Fatalf("double End emitted %d spans", n)
	}
}

func TestStartAlwaysMeasuresWithoutSink(t *testing.T) {
	SetSink(nil)
	SetPprofLabels(false)
	_, sp := StartAlways(context.Background(), "timed")
	if sp == nil {
		t.Fatal("StartAlways returned nil span")
	}
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Errorf("wall = %v, want ≥ 1ms", d)
	}
}

func TestJSONSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	js := NewJSONSink(&buf)
	withSink(t, js)

	ctx, parent := Start(context.Background(), "outer", Str("strategy", "equi-size"))
	_, child := Start(ctx, "inner", Int("k", 64))
	child.End()
	parent.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	var inner, outer SpanData
	if err := json.Unmarshal([]byte(lines[0]), &inner); err != nil {
		t.Fatalf("line 0: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &outer); err != nil {
		t.Fatalf("line 1: %v", err)
	}
	if inner.Name != "inner" || outer.Name != "outer" {
		t.Fatalf("names = %q, %q", inner.Name, outer.Name)
	}
	if inner.Parent != outer.ID || inner.Depth != 1 {
		t.Errorf("inner parent/depth = %d/%d, want %d/1", inner.Parent, inner.Depth, outer.ID)
	}
	if outer.Wall <= 0 {
		t.Errorf("outer wall = %v", outer.Wall)
	}
	if len(inner.Attrs) != 1 || inner.Attrs[0].Key != "k" {
		t.Errorf("inner attrs = %v", inner.Attrs)
	}
	// json decodes numbers into float64.
	if v, ok := inner.Attrs[0].Value.(float64); !ok || v != 64 {
		t.Errorf("inner k = %v", inner.Attrs[0].Value)
	}
}

func TestTextSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	withSink(t, NewTextSink(&buf))

	ctx, parent := Start(context.Background(), "gef.explain")
	_, child := Start(ctx, "gam.fit", Int("rows", 100))
	child.End()
	parent.End()

	out := buf.String()
	for _, want := range []string{"-> gef.explain", "   -> gam.fit", "<- gam.fit", "rows=100", "<- gef.explain"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	a, b := NewMemorySink(), NewMemorySink()
	withSink(t, MultiSink(a, nil, b))
	_, sp := Start(context.Background(), "fan")
	sp.End()
	if len(a.Spans()) != 1 || len(b.Spans()) != 1 {
		t.Fatalf("fan-out missed a sink: %d, %d", len(a.Spans()), len(b.Spans()))
	}
	if MultiSink() != nil {
		t.Error("MultiSink() with no sinks should be nil")
	}
	if MultiSink(a) != Sink(a) {
		t.Error("MultiSink(a) should unwrap to a")
	}
}
