package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the metrics
// registry — the scrape surface behind Handler's /metrics endpoint.
//
// Mapping:
//
//   - metric names are sanitized for Prometheus (dots and any other
//     illegal runes become underscores: engine.cache_hits →
//     engine_cache_hits);
//   - labeled series produced by the *Vec types keep their label block
//     verbatim (values are escaped at creation; see vec.go);
//   - counters and gauges emit one sample per series;
//   - histograms emit the full native-histogram-free triplet: cumulative
//     <name>_bucket{le="..."} samples per bound plus le="+Inf", then
//     <name>_sum and <name>_count.
//
// Output is deterministic for a given registry state: families sort by
// name, series sort by label block. Histogram bucket counters are read
// individually while observations may be in flight; a scrape can
// therefore be at most one observation out of self-consistency, which
// the format tolerates (counters are monotone).

// promNameRe-free sanitizer: Prometheus metric names match
// [a-zA-Z_:][a-zA-Z0-9_:]*; every other rune becomes '_'.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value: Prometheus accepts Go's 'g' format
// plus the spellings +Inf, -Inf and NaN.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSeries is one (labels, render) pair inside a family.
type promSeries struct {
	labels string // encoded label block without braces; "" when unlabeled
	value  string // pre-rendered sample value (counters, gauges)
	hist   *Histogram
}

// errWriter accumulates the first write error so the emit helpers stay
// linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// WritePrometheus writes the registry's current state in the Prometheus
// text exposition format. It is the /metrics implementation and safe to
// call concurrently with metric updates.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type family struct {
		kind   string // "counter", "gauge", "histogram"
		series []promSeries
	}
	families := make(map[string]*family)
	add := func(encoded, kind string, s promSeries) {
		base, labels := SplitSeriesName(encoded)
		name := promName(base)
		f := families[name]
		if f == nil {
			f = &family{kind: kind}
			families[name] = f
		}
		s.labels = labels
		f.series = append(f.series, s)
	}

	r.mu.Lock()
	for name, c := range r.counters {
		add(name, "counter", promSeries{value: strconv.FormatInt(c.Value(), 10)})
	}
	for name, g := range r.gauges {
		add(name, "gauge", promSeries{value: promFloat(g.Value())})
	}
	for name, h := range r.hists {
		add(name, "histogram", promSeries{hist: h})
	}
	r.mu.Unlock()

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)

	ew := &errWriter{w: w}
	for _, name := range names {
		f := families[name]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		ew.printf("# TYPE %s %s\n", name, f.kind)
		for _, s := range f.series {
			if f.kind != "histogram" {
				ew.printf("%s%s %s\n", name, braced(s.labels), s.value)
				continue
			}
			writePromHistogram(ew, name, s.labels, s.hist)
		}
	}
	return ew.err
}

// braced wraps a non-empty label block in braces.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// withLabel appends one k="v" pair to an encoded label block.
func withLabel(labels, k, v string) string {
	pair := k + `="` + escapeLabelValue(v) + `"`
	if labels == "" {
		return pair
	}
	return labels + "," + pair
}

// writePromHistogram emits the _bucket/_sum/_count triplet for one
// histogram series. Bucket samples are cumulative per the format.
func writePromHistogram(ew *errWriter, name, labels string, h *Histogram) {
	bounds, counts := h.Buckets()
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		ew.printf("%s_bucket{%s} %d\n", name, withLabel(labels, "le", promFloat(b)), cum)
	}
	cum += counts[len(bounds)]
	ew.printf("%s_bucket{%s} %d\n", name, withLabel(labels, "le", "+Inf"), cum)
	ew.printf("%s_sum%s %s\n", name, braced(labels), promFloat(h.Sum()))
	ew.printf("%s_count%s %d\n", name, braced(labels), cum)
}
