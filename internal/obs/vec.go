package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Labeled metric vectors. A vector is a family of instruments sharing one
// name and one ordered label-key set; each distinct label-value tuple is
// its own series:
//
//	var cacheHits = obs.Metrics().CounterVec("engine.cache_hits", "stage")
//	cacheHits.With("domains").Inc()
//
// Series live in the registry under an encoded name —
//
//	engine.cache_hits{stage="domains"}
//
// — so Snapshot and WriteJSON keep their flat map[string] shape (the key
// set simply grows braces), and WritePrometheus can split the encoded
// name back into family + label block without a side table. Label values
// are escaped exactly as the Prometheus text exposition format requires
// (backslash, double quote and newline), which makes the encoded block
// emittable verbatim. The key encoding is documented in DESIGN.md
// ("Telemetry" section).
//
// Vector creation takes the registry lock; With takes one short
// vector-local lock and should be hoisted out of hot loops the same way
// plain instruments are:
//
//	hits := cacheHits.With("domains") // once
//	for ... { hits.Inc() }            // lock-free

// labelKeyRules: label keys must be valid Prometheus label names so the
// exposition writer never has to sanitize them.
func validLabelKey(k string) bool {
	if k == "" {
		return false
	}
	for i, r := range k {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeLabelValue escapes a label value per the Prometheus text format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// seriesName encodes one series: name{k1="v1",k2="v2"}. Keys keep their
// declaration order so the same tuple always encodes identically.
func seriesName(name string, keys, values []string) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SplitSeriesName splits an encoded series name into its family and
// label block: "a.b{x=\"1\"}" → ("a.b", `x="1"`). Unlabeled names return
// (name, ""). The exposition writer and the snapshot pretty-printers use
// it to regroup series into families.
func SplitSeriesName(series string) (family, labels string) {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return series, ""
	}
	return series[:i], strings.TrimSuffix(series[i+1:], "}")
}

// vec is the shared core of the three vector kinds: the label schema
// plus a cache from joined label values to the encoded series name.
type vec struct {
	r    *Registry
	name string
	keys []string

	mu    sync.RWMutex
	cache map[string]string // joined values → encoded series name
}

func newVec(r *Registry, name string, keys []string) vec {
	for _, k := range keys {
		if !validLabelKey(k) {
			panic(fmt.Sprintf("obs: invalid label key %q on metric %q", k, name))
		}
	}
	if len(keys) == 0 {
		panic(fmt.Sprintf("obs: vector metric %q declared with no label keys", name))
	}
	return vec{r: r, name: name, keys: keys, cache: make(map[string]string)}
}

// series resolves a label-value tuple to its encoded registry name,
// caching the encoding (the common case is a handful of live tuples).
func (v *vec) series(values []string) string {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values (%v), got %d",
			v.name, len(v.keys), v.keys, len(values)))
	}
	joined := strings.Join(values, "\x00")
	v.mu.RLock()
	s, ok := v.cache[joined]
	v.mu.RUnlock()
	if ok {
		return s
	}
	s = seriesName(v.name, v.keys, values)
	v.mu.Lock()
	v.cache[joined] = s
	v.mu.Unlock()
	return s
}

// CounterVec is a family of monotonic counters sharing one label schema.
type CounterVec struct{ vec }

// GaugeVec is a family of last-value gauges sharing one label schema.
type GaugeVec struct{ vec }

// HistogramVec is a family of fixed-bucket histograms sharing one label
// schema and one bucket layout.
type HistogramVec struct {
	vec
	bounds []float64
}

// vecKey identifies a vector declaration in the registry.
type vecKey struct {
	name string
	kind string
}

// CounterVec returns (creating if needed) the counter family name with
// the given ordered label keys. Redeclaring an existing family with a
// different schema panics — it is a programming error that would silently
// split the series namespace.
func (r *Registry) CounterVec(name string, labelKeys ...string) *CounterVec {
	v := r.vecFor(name, "counter", labelKeys, nil)
	return v.(*CounterVec)
}

// GaugeVec returns (creating if needed) the gauge family name with the
// given ordered label keys.
func (r *Registry) GaugeVec(name string, labelKeys ...string) *GaugeVec {
	v := r.vecFor(name, "gauge", labelKeys, nil)
	return v.(*GaugeVec)
}

// HistogramVec returns (creating if needed) the histogram family name
// with the given ordered label keys and the default log-spaced buckets.
func (r *Registry) HistogramVec(name string, labelKeys ...string) *HistogramVec {
	return r.HistogramVecBuckets(name, nil, labelKeys...)
}

// HistogramVecBuckets is HistogramVec with explicit ascending bucket
// upper bounds (nil for the defaults). All series of one family share
// the bounds fixed at declaration.
func (r *Registry) HistogramVecBuckets(name string, bounds []float64, labelKeys ...string) *HistogramVec {
	v := r.vecFor(name, "histogram", labelKeys, bounds)
	return v.(*HistogramVec)
}

// vecFor resolves a vector declaration, enforcing schema consistency.
func (r *Registry) vecFor(name, kind string, keys []string, bounds []float64) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.vecs == nil {
		r.vecs = make(map[vecKey]any)
	}
	k := vecKey{name: name, kind: kind}
	if existing, ok := r.vecs[k]; ok {
		var have []string
		switch e := existing.(type) {
		case *CounterVec:
			have = e.keys
		case *GaugeVec:
			have = e.keys
		case *HistogramVec:
			have = e.keys
		}
		if !equalStrings(have, keys) {
			panic(fmt.Sprintf("obs: metric family %q redeclared with label keys %v (was %v)", name, keys, have))
		}
		return existing
	}
	var created any
	switch kind {
	case "counter":
		created = &CounterVec{vec: newVec(r, name, keys)}
	case "gauge":
		created = &GaugeVec{vec: newVec(r, name, keys)}
	case "histogram":
		created = &HistogramVec{vec: newVec(r, name, keys), bounds: bounds}
	}
	r.vecs[k] = created
	return created
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// With returns the counter series for the label-value tuple, creating it
// on first use. Hoist the result out of hot loops; With takes a lock.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.r.Counter(v.series(labelValues))
}

// With returns the gauge series for the label-value tuple.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.r.Gauge(v.series(labelValues))
}

// With returns the histogram series for the label-value tuple. All
// series share the family's bucket bounds.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.r.HistogramBuckets(v.series(labelValues), v.bounds)
}

// Series returns the encoded names of the family's live series, sorted —
// a testing/debugging aid.
func (v *vec) Series() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.cache))
	for _, s := range v.cache {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
