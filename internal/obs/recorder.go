package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: a fixed-size ring of the most recent observability
// records — completed spans, span events, degradations and errors — that
// is always on. Unlike the trace sinks (opt-in, unbounded output), the
// recorder costs one short critical section per record and a fixed
// memory bound of capacity × sizeof(FlightEntry) (~200 B plus attrs), so
// production runs keep it enabled permanently and dump the ring only
// when something goes wrong: the CLIs write a snapshot on any typed
// error or degradation (-flight-out), and the serving handler exposes it
// at /flight.
//
// Records carry monotonic sequence numbers assigned under the ring lock,
// so a snapshot is always gap-free and totally ordered even when many
// goroutines record concurrently.

// Flight-record kinds.
const (
	// FlightSpan is a completed span (End fired).
	FlightSpan = "span"
	// FlightEvent is an instantaneous span event (Span.Event).
	FlightEvent = "event"
	// FlightDegradation is one rung of the robust degradation ladder.
	FlightDegradation = "degradation"
	// FlightError is a typed pipeline error on its way to a caller.
	FlightError = "error"
)

// FlightEntry is one flight-recorder record. Span/event entries embed
// the completed SpanData; degradation and error entries synthesize one
// (Name = site, Attrs = details) so every entry renders uniformly.
type FlightEntry struct {
	Seq  uint64   `json:"seq"`
	Kind string   `json:"kind"`
	Span SpanData `json:"span"`
	Err  string   `json:"err,omitempty"`
}

// FlightSnapshot is a consistent copy of the recorder taken under its
// lock: Entries hold ascending, gap-free sequence numbers; Dropped
// counts records already overwritten by ring wrap-around.
type FlightSnapshot struct {
	Capacity int           `json:"capacity"`
	Recorded uint64        `json:"recorded"`
	Dropped  uint64        `json:"dropped"`
	Entries  []FlightEntry `json:"entries"`
}

// DefaultFlightCapacity bounds the default recorder: at ~200 bytes per
// entry the ring costs well under 1 MiB resident.
const DefaultFlightCapacity = 2048

// Recorder is a fixed-capacity flight-recorder ring. The zero value is
// not usable; construct with NewRecorder.
type Recorder struct {
	enabled atomic.Bool

	mu   sync.Mutex
	buf  []FlightEntry
	next uint64 // total records ever; entry i lives at buf[i%cap]
}

// NewRecorder returns an enabled recorder holding the last capacity
// records (minimum 16).
func NewRecorder(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	r := &Recorder{buf: make([]FlightEntry, 0, capacity)}
	r.enabled.Store(true)
	return r
}

// SetEnabled toggles recording. Disabled recorders keep their contents.
func (r *Recorder) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether record calls currently store entries.
func (r *Recorder) Enabled() bool { return r.enabled.Load() }

// record stores one entry; the sequence number is assigned under the
// lock so snapshots are gap-free. sp is copied by value — SpanData is
// immutable after End, so aliasing its Attrs slice is safe.
func (r *Recorder) record(kind string, sp *SpanData, errMsg string) {
	if !r.enabled.Load() {
		return
	}
	r.mu.Lock()
	e := FlightEntry{Seq: r.next, Kind: kind, Span: *sp, Err: errMsg}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next%uint64(cap(r.buf))] = e
	}
	r.next++
	r.mu.Unlock()
}

// RecordSpan stores a completed span record. Span.End calls this on the
// default recorder automatically; custom recorders can be fed manually.
func (r *Recorder) RecordSpan(sp *SpanData) { r.record(FlightSpan, sp, "") }

// RecordError stores an error record attributed to site. The entry's
// timestamp is the record time.
func (r *Recorder) RecordError(site string, err error) {
	if err == nil {
		return
	}
	sp := SpanData{Name: site, Start: time.Now()}
	r.record(FlightError, &sp, err.Error())
}

// Snapshot returns a consistent copy of the ring in ascending sequence
// order.
func (r *Recorder) Snapshot() FlightSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := FlightSnapshot{Capacity: cap(r.buf), Recorded: r.next}
	n := len(r.buf)
	if n == 0 {
		return s
	}
	s.Entries = make([]FlightEntry, 0, n)
	if r.next > uint64(n) {
		s.Dropped = r.next - uint64(n)
	}
	// Oldest entry first: the ring cell holding sequence next-n.
	start := int((r.next - uint64(n)) % uint64(cap(r.buf)))
	for i := 0; i < n; i++ {
		s.Entries = append(s.Entries, r.buf[(start+i)%cap(r.buf)])
	}
	return s
}

// --- default recorder ------------------------------------------------------

// flight is the process-wide always-on recorder. It is swapped
// atomically so tests can substitute a private ring.
var flight atomic.Pointer[Recorder]

func init() { flight.Store(NewRecorder(DefaultFlightCapacity)) }

// Flight returns the process-wide flight recorder.
func Flight() *Recorder { return flight.Load() }

// SetFlight installs r as the process-wide recorder and returns the
// previous one (for tests; pass the old one back to restore).
func SetFlight(r *Recorder) *Recorder {
	if r == nil {
		r = NewRecorder(DefaultFlightCapacity)
	}
	return flight.Swap(r)
}

// RecordDegradation records one degradation-ladder rung in the default
// recorder. internal/robust calls this from Record so every degradation
// is replayable even when no trace sink is installed.
func RecordDegradation(stage, action, detail, reason string) {
	sp := SpanData{
		Name:  "robust.degradation",
		Start: time.Now(),
		Attrs: []Attr{Str("stage", stage), Str("action", action), Str("detail", detail), Str("reason", reason)},
	}
	Flight().record(FlightDegradation, &sp, "")
}

// RecordError records a typed pipeline error at site in the default
// recorder.
func RecordError(site string, err error) { Flight().RecordError(site, err) }

// --- snapshot output -------------------------------------------------------

// WriteFlightJSON writes the snapshot as indented JSON.
func WriteFlightJSON(w io.Writer, s FlightSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// DumpFlightFile writes the default recorder's snapshot to path — the
// CLIs' -flight-out / dump-on-error sink.
func DumpFlightFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: creating flight dump: %w", err)
	}
	werr := WriteFlightJSON(f, Flight().Snapshot())
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("obs: writing flight dump: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("obs: closing flight dump: %w", cerr)
	}
	return nil
}

// ReadFlightFile loads a snapshot written by DumpFlightFile.
func ReadFlightFile(path string) (FlightSnapshot, error) {
	var s FlightSnapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("obs: parsing flight dump %s: %w", path, err)
	}
	return s, nil
}

// WriteFlightText pretty-prints a snapshot for humans — the `gef
// -flight-dump` view. Entries print oldest-first with times relative to
// the first entry, one line each:
//
//	seq 041 +1.2ms    span         gam.fit 3.1ms (lambda=0.01)
//	seq 042 +4.3ms    degradation  robust.degradation (stage=gam action=drop_tensors)
func WriteFlightText(w io.Writer, s FlightSnapshot) error {
	if _, err := fmt.Fprintf(w, "flight recorder: %d entries (capacity %d, recorded %d, dropped %d)\n",
		len(s.Entries), s.Capacity, s.Recorded, s.Dropped); err != nil {
		return err
	}
	if len(s.Entries) == 0 {
		return nil
	}
	t0 := s.Entries[0].Span.Start
	for _, e := range s.Entries {
		rel := e.Span.Start.Sub(t0)
		line := fmt.Sprintf("seq %04d +%-10v %-12s %s", e.Seq, rel.Round(time.Microsecond), e.Kind, e.Span.Name)
		if e.Kind == FlightSpan && e.Span.Wall > 0 {
			line += fmt.Sprintf(" %v", e.Span.Wall.Round(time.Microsecond))
		}
		if len(e.Span.Attrs) > 0 {
			line += " ("
			for i, a := range e.Span.Attrs {
				if i > 0 {
					line += " "
				}
				line += fmt.Sprintf("%s=%v", a.Key, a.Value)
			}
			line += ")"
		}
		if e.Err != "" {
			line += " err=" + e.Err
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	// A per-kind tally closes the dump so operators see the shape at a
	// glance even when the ring is full of spans.
	kinds := map[string]int{}
	for _, e := range s.Entries {
		kinds[e.Kind]++
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	line := "totals:"
	for _, k := range names {
		line += fmt.Sprintf(" %s=%d", k, kinds[k])
	}
	_, err := fmt.Fprintln(w, line)
	return err
}
