package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Sink receives span records. Begin fires when a span opens (Wall and
// alloc deltas still zero) so interactive sinks can show progress; End
// fires with the completed record. Implementations must be safe for
// concurrent use.
type Sink interface {
	Begin(sp *SpanData)
	End(sp *SpanData)
	Flush() error
}

// --- human-readable text sink -------------------------------------------

// TextSink writes an indented, human-readable span log — the `-v`
// progress mode of the CLIs:
//
//	-> gef.explain
//	   -> sampling.build_domains
//	   <- sampling.build_domains 1.8ms +312KB (features=5 points=320)
type TextSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error // first write error, surfaced by Flush
}

// NewTextSink returns a text sink writing to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// printf writes through the sink, capturing the first write error so a
// truncated trace does not pass silently; Flush reports it.
func (t *TextSink) printf(format string, args ...any) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

func (t *TextSink) Begin(sp *SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.printf("%s-> %s\n", strings.Repeat("   ", sp.Depth), sp.Name)
}

func (t *TextSink) End(sp *SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	indent := strings.Repeat("   ", sp.Depth)
	t.printf("%s<- %s %v +%s", indent, sp.Name, sp.Wall, byteSize(sp.AllocBytes))
	if len(sp.Attrs) > 0 {
		t.printf(" (")
		for i, a := range sp.Attrs {
			if i > 0 {
				t.printf(" ")
			}
			t.printf("%s=%v", a.Key, a.Value)
		}
		t.printf(")")
	}
	t.printf("\n")
}

func (t *TextSink) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// byteSize renders a byte count compactly (B / KB / MB / GB).
func byteSize(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// --- JSON-lines sink -----------------------------------------------------

// JSONSink writes one JSON object per *completed* span (Begin is a no-op),
// in end order — children before parents, reconstructable into a tree via
// the id/parent fields. The format is the machine-analysis counterpart of
// TextSink.
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	w   io.Writer
	err error // first encode error, surfaced by Flush
}

// NewJSONSink returns a JSON-lines sink writing to w.
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{enc: json.NewEncoder(w), w: w}
}

func (j *JSONSink) Begin(sp *SpanData) {}

func (j *JSONSink) End(sp *SpanData) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(sp)
}

func (j *JSONSink) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if f, ok := j.w.(interface{ Sync() error }); ok {
		return f.Sync()
	}
	return nil
}

// --- fan-out -------------------------------------------------------------

// multiSink fans every record out to several sinks.
type multiSink []Sink

// MultiSink combines sinks; nil entries are dropped. With zero or one
// live sink it returns nil or that sink directly.
func MultiSink(sinks ...Sink) Sink {
	var live multiSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

func (m multiSink) Begin(sp *SpanData) {
	for _, s := range m {
		s.Begin(sp)
	}
}

func (m multiSink) End(sp *SpanData) {
	for _, s := range m {
		s.End(sp)
	}
}

func (m multiSink) Flush() error {
	var first error
	for _, s := range m {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- in-memory sink (tests, BenchReport) ---------------------------------

// MemorySink records completed spans in memory, in end order.
type MemorySink struct {
	mu    sync.Mutex
	spans []SpanData
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

func (m *MemorySink) Begin(sp *SpanData) {}

func (m *MemorySink) End(sp *SpanData) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spans = append(m.spans, *sp)
}

func (m *MemorySink) Flush() error { return nil }

// Spans returns a copy of the recorded spans in end order.
func (m *MemorySink) Spans() []SpanData {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]SpanData(nil), m.spans...)
}
