package obs

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// withFlight installs a private recorder for the test and restores the
// previous one afterwards.
func withFlight(t *testing.T, r *Recorder) *Recorder {
	t.Helper()
	old := SetFlight(r)
	t.Cleanup(func() { SetFlight(old) })
	return r
}

func TestRecorderRingAndSequence(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 40; i++ {
		r.RecordSpan(&SpanData{Name: "s", Start: time.Now()})
	}
	s := r.Snapshot()
	if s.Capacity != 16 || s.Recorded != 40 || s.Dropped != 24 {
		t.Fatalf("snapshot meta = %+v", s)
	}
	if len(s.Entries) != 16 {
		t.Fatalf("entries = %d, want 16", len(s.Entries))
	}
	for i, e := range s.Entries {
		if want := uint64(24 + i); e.Seq != want {
			t.Errorf("entry %d seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestRecorderDisabledDropsRecords(t *testing.T) {
	r := NewRecorder(16)
	r.SetEnabled(false)
	r.RecordSpan(&SpanData{Name: "dropped"})
	if got := r.Snapshot(); len(got.Entries) != 0 || got.Recorded != 0 {
		t.Fatalf("disabled recorder stored %+v", got)
	}
}

func TestSpansEventsAndErrorsReachFlight(t *testing.T) {
	SetSink(nil)
	fr := withFlight(t, NewRecorder(64))

	ctx, sp := Start(context.Background(), "stage", Int("n", 3))
	if sp == nil {
		t.Fatal("Start returned nil span with the flight recorder enabled")
	}
	_, child := Start(ctx, "child")
	child.Event("decision", Str("why", "test"))
	child.End()
	sp.End()
	RecordDegradation("gam", "drop_tensors", "2 terms", "numerical failure")
	RecordError("engine.fit", errors.New("boom"))

	s := fr.Snapshot()
	kinds := map[string]int{}
	names := map[string]bool{}
	for _, e := range s.Entries {
		kinds[e.Kind]++
		names[e.Span.Name] = true
	}
	if kinds[FlightSpan] != 2 || kinds[FlightEvent] != 1 || kinds[FlightDegradation] != 1 || kinds[FlightError] != 1 {
		t.Fatalf("kind tally = %v", kinds)
	}
	if !names["stage"] || !names["child"] || !names["decision"] {
		t.Errorf("names recorded = %v", names)
	}
	// Sequence numbers are gap-free and ascending.
	for i := 1; i < len(s.Entries); i++ {
		if s.Entries[i].Seq != s.Entries[i-1].Seq+1 {
			t.Fatalf("sequence gap between %d and %d", s.Entries[i-1].Seq, s.Entries[i].Seq)
		}
	}
}

// TestRecorderConcurrentWriters drives concurrent recording at the
// worker counts the determinism suite sweeps (1, 2, NumCPU) and asserts
// the ring stays gap-free and internally consistent — the -race gate for
// the flight recorder.
func TestRecorderConcurrentWriters(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		r := NewRecorder(256)
		const perWorker = 500
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			//lint:ignore rawgo test exercises concurrent recorder writers directly
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					r.RecordSpan(&SpanData{Name: "w", Attrs: []Attr{Int("worker", w), Int("i", i)}})
				}
			}(w)
		}
		// Concurrent snapshots must always be consistent mid-flight.
		for k := 0; k < 10; k++ {
			s := r.Snapshot()
			for i := 1; i < len(s.Entries); i++ {
				if s.Entries[i].Seq != s.Entries[i-1].Seq+1 {
					t.Fatalf("workers=%d: mid-flight sequence gap", workers)
				}
			}
		}
		wg.Wait()
		s := r.Snapshot()
		if want := uint64(workers * perWorker); s.Recorded != want {
			t.Fatalf("workers=%d: recorded %d, want %d", workers, s.Recorded, want)
		}
		if len(s.Entries) != 256 && uint64(len(s.Entries)) != s.Recorded {
			t.Fatalf("workers=%d: %d entries resident", workers, len(s.Entries))
		}
		for i := 1; i < len(s.Entries); i++ {
			if s.Entries[i].Seq != s.Entries[i-1].Seq+1 {
				t.Fatalf("workers=%d: final sequence gap", workers)
			}
		}
	}
}

func TestFlightDumpRoundTripAndText(t *testing.T) {
	withFlight(t, NewRecorder(32))
	_, sp := Start(context.Background(), "gam.fit", F64("lambda", 0.01))
	sp.End()
	RecordError("cli", errors.New("deadline exceeded"))

	path := filepath.Join(t.TempDir(), "flight.json")
	if err := DumpFlightFile(path); err != nil {
		t.Fatalf("DumpFlightFile: %v", err)
	}
	s, err := ReadFlightFile(path)
	if err != nil {
		t.Fatalf("ReadFlightFile: %v", err)
	}
	if len(s.Entries) != 2 || s.Entries[0].Span.Name != "gam.fit" || s.Entries[1].Err == "" {
		t.Fatalf("round-trip snapshot = %+v", s)
	}

	var buf bytes.Buffer
	if err := WriteFlightText(&buf, s); err != nil {
		t.Fatalf("WriteFlightText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"flight recorder: 2 entries", "gam.fit", "lambda=0.01", "err=deadline exceeded", "totals:"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
}
