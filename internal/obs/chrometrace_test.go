package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// decodeTrace parses the sink output as a trace_event JSON array and
// schema-checks every event: required fields present, known phase, and
// per-lane B/E streams properly nested.
func decodeTrace(t *testing.T, data []byte) []chromeEvent {
	t.Helper()
	var events []chromeEvent
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, data)
	}
	stacks := map[uint64][]string{} // tid → open span names
	for i, ev := range events {
		if ev.Name == "" || ev.PID != 1 {
			t.Fatalf("event %d missing required fields: %+v", i, ev)
		}
		switch ev.Phase {
		case "B":
			stacks[ev.TID] = append(stacks[ev.TID], ev.Name)
		case "E":
			st := stacks[ev.TID]
			if len(st) == 0 {
				t.Fatalf("event %d: E %q on tid %d with empty stack", i, ev.Name, ev.TID)
			}
			if st[len(st)-1] != ev.Name {
				t.Fatalf("event %d: E %q does not match open span %q on tid %d", i, ev.Name, st[len(st)-1], ev.TID)
			}
			stacks[ev.TID] = st[:len(st)-1]
		case "i":
			if ev.Scope != "t" {
				t.Fatalf("event %d: instant without thread scope: %+v", i, ev)
			}
		case "X":
		default:
			t.Fatalf("event %d: unknown phase %q", i, ev.Phase)
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("tid %d left open spans %v", tid, st)
		}
	}
	return events
}

func TestChromeTraceFromLiveSpans(t *testing.T) {
	var buf bytes.Buffer
	cs := NewChromeTraceSink(&buf)
	withSink(t, cs)

	ctx, parent := Start(context.Background(), "explain", Str("model", "m"))
	ctx2, child := Start(ctx, "gam.fit")
	child.Event("converged", Int("iter", 3))
	_ = ctx2
	child.End()
	parent.End()
	if err := cs.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	events := decodeTrace(t, buf.Bytes())
	phases := map[string]int{}
	for _, ev := range events {
		phases[ev.Phase]++
	}
	if phases["B"] != 2 || phases["E"] != 2 || phases["i"] != 1 {
		t.Fatalf("phase tally = %v", phases)
	}
	// Sequential parent/child share one lane.
	lanes := map[uint64]bool{}
	for _, ev := range events {
		lanes[ev.TID] = true
	}
	if len(lanes) != 1 {
		t.Errorf("sequential nesting used %d lanes, want 1", len(lanes))
	}
	// End args carry the span attributes.
	var sawModel bool
	for _, ev := range events {
		if ev.Phase == "E" && ev.Name == "explain" && ev.Args["model"] == "m" {
			sawModel = true
		}
	}
	if !sawModel {
		t.Error("explain end event missing model arg")
	}
}

// TestChromeTraceLaneSplitting feeds the sink overlapping sibling spans
// — the shape the parallel λ-grid produces — and checks they land on
// separate lanes so each lane's B/E stream stays properly nested.
func TestChromeTraceLaneSplitting(t *testing.T) {
	var buf bytes.Buffer
	cs := NewChromeTraceSink(&buf)
	t0 := time.Unix(1700000000, 0)

	root := SpanData{ID: 1, Name: "grid", Start: t0}
	s1 := SpanData{ID: 2, Parent: 1, Name: "fit.a", Start: t0.Add(time.Millisecond)}
	s2 := SpanData{ID: 3, Parent: 1, Name: "fit.b", Start: t0.Add(time.Millisecond)}
	cs.Begin(&root)
	cs.Begin(&s1) // inherits root's lane; root no longer top of stack
	cs.Begin(&s2) // overlaps s1 → fresh lane
	s2.Wall = 2 * time.Millisecond
	cs.End(&s2)
	s1.Wall = 3 * time.Millisecond
	cs.End(&s1)
	root.Wall = 5 * time.Millisecond
	cs.End(&root)
	if err := cs.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	events := decodeTrace(t, buf.Bytes())
	tidOf := map[string]uint64{}
	for _, ev := range events {
		if ev.Phase == "B" {
			tidOf[ev.Name] = ev.TID
		}
	}
	if tidOf["fit.a"] != tidOf["grid"] {
		t.Errorf("first child should share the parent lane: %v", tidOf)
	}
	if tidOf["fit.b"] == tidOf["fit.a"] {
		t.Errorf("overlapping siblings share lane %d", tidOf["fit.b"])
	}
}

func TestChromeTraceEndWithoutBegin(t *testing.T) {
	var buf bytes.Buffer
	cs := NewChromeTraceSink(&buf)
	sp := SpanData{ID: 9, Name: "orphan", Start: time.Unix(1700000000, 0), Wall: time.Millisecond}
	cs.End(&sp)
	if err := cs.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	events := decodeTrace(t, buf.Bytes())
	if len(events) != 1 || events[0].Phase != "X" || events[0].Dur != 1000 {
		t.Fatalf("orphan end = %+v", events)
	}
}

func TestChromeTraceEmptyFlush(t *testing.T) {
	var buf bytes.Buffer
	cs := NewChromeTraceSink(&buf)
	if err := cs.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	decodeTrace(t, buf.Bytes())
	if err := cs.Flush(); err != nil { // idempotent
		t.Fatalf("second Flush: %v", err)
	}
}
