package obs

import (
	"errors"
	"fmt"
	"testing"
)

// recordingSink logs the order of calls it receives into a shared log.
type recordingSink struct {
	name     string
	log      *[]string
	flushErr error
}

func (r *recordingSink) Begin(sp *SpanData) { *r.log = append(*r.log, r.name+".begin:"+sp.Name) }
func (r *recordingSink) End(sp *SpanData)   { *r.log = append(*r.log, r.name+".end:"+sp.Name) }
func (r *recordingSink) Flush() error {
	*r.log = append(*r.log, r.name+".flush")
	return r.flushErr
}

func TestSinkTeeOrdering(t *testing.T) {
	var log []string
	a := &recordingSink{name: "a", log: &log}
	b := &recordingSink{name: "b", log: &log}
	tee := NewSinkTee(a, nil, b)
	sp := SpanData{Name: "s"}
	tee.Begin(&sp)
	tee.End(&sp)
	if err := tee.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	want := []string{"a.begin:s", "b.begin:s", "a.end:s", "b.end:s", "a.flush", "b.flush"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Errorf("call order = %v, want %v", log, want)
	}
}

func TestSinkTeeFlushJoinsAllErrors(t *testing.T) {
	var log []string
	e1, e2 := errors.New("chrome truncated"), errors.New("jsonl disk full")
	a := &recordingSink{name: "a", log: &log, flushErr: e1}
	b := &recordingSink{name: "b", log: &log} // healthy sink between the failures
	c := &recordingSink{name: "c", log: &log, flushErr: e2}
	tee := NewSinkTee(a, b, c)
	err := tee.Flush()
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Errorf("joined error %v should carry both failures", err)
	}
	// Every sink was flushed despite the first failure.
	want := []string{"a.flush", "b.flush", "c.flush"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Errorf("flush order = %v, want %v", log, want)
	}
}

func TestSinkTeeDegenerateForms(t *testing.T) {
	if NewSinkTee() != nil || NewSinkTee(nil, nil) != nil {
		t.Error("tee of zero live sinks should be nil")
	}
	var log []string
	a := &recordingSink{name: "a", log: &log}
	if NewSinkTee(nil, a) != Sink(a) {
		t.Error("tee of one live sink should unwrap")
	}
}
