// Package serve is gefd's serving layer: a fault-tolerant multi-tenant
// explanation server over the staged core.Engine. Every request walks
// the same pipeline:
//
//	admission → coalescing → engine
//
// Admission bounds how much work the process accepts: a request enters
// a bounded admitted set (waiters plus computations) or is shed with
// 429 + Retry-After; worker tokens — sized from the par worker count —
// bound how many computations run at once, and requests queue for a
// token only as long as their deadline allows. Coalescing deduplicates
// concurrent identical work: requests with the same (kind, forest
// fingerprint, config hash) share one computation whose lifetime is
// detached from any single client, so a waiter cancelling never cancels
// the shared result. The engine underneath is one byte-budgeted
// artifact cache shared across all tenants, with per-tenant hit/miss
// accounting at the serve layer.
//
// Failure handling is uniform: every error leaving a handler is mapped
// through the robust taxonomy to a typed HTTP status (ErrConfig → 400,
// ErrDeadline → 504, shed → 429, ErrNumerical and panics → 500),
// degraded-but-valid explanations return 200 with a Degradations block
// and a Warning header, and panics snapshot the flight recorder to disk
// before answering 500. SIGTERM (wired in cmd/gefd) triggers Drain:
// the listener stops accepting, in-flight requests finish under the
// drain deadline, and stragglers are timed out with 504.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"gef/internal/core"
	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/par"
	"gef/internal/robust"
)

// Metrics instruments (hoisted; see internal/obs). Endpoint and status
// labels are drawn from fixed sets (endpointLabel and the typed status
// contract), so series cardinality is bounded. Tenant accounting lives
// in Server.Stats, not in metric labels, because tenant names are
// client-supplied and would make the series set unbounded.
var (
	mRequests      = obs.Metrics().CounterVec("serve.requests", "endpoint", "status")
	mShed          = obs.Metrics().Counter("serve.shed")
	mPanics        = obs.Metrics().Counter("serve.panics")
	mCoalesceHits  = obs.Metrics().Counter("serve.coalesce_hits")
	mCoalesceLeads = obs.Metrics().Counter("serve.coalesce_leaders")
	mDrainTimeouts = obs.Metrics().Counter("serve.drain_timeouts")
	gInFlight      = obs.Metrics().Gauge("serve.inflight")
	gAdmitted      = obs.Metrics().Gauge("serve.admitted")
	hLatencyMs     = obs.Metrics().HistogramVecBuckets("serve.latency_ms",
		[]float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}, "endpoint")
)

// Options configures a Server. The zero value serves with the defaults
// documented per field.
type Options struct {
	// Budget is the per-request compute budget (default 30s). A request
	// may lower — never raise — its own budget with budget_ms.
	Budget time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight requests
	// (default 10s); requests still running at the deadline are timed
	// out with 504.
	DrainTimeout time.Duration
	// MaxInFlight is the worker-token count bounding concurrent
	// computations (default par.Workers()).
	MaxInFlight int
	// MaxQueue bounds how many admitted requests may wait beyond the
	// in-flight workers (default 256; negative = no waiting room).
	// Arrivals past the bound are shed with 429.
	MaxQueue int
	// CacheBudget is the shared engine artifact-cache budget in bytes
	// (0 = the engine default of 256 MiB, negative disables caching).
	CacheBudget int64
	// MaxBodyBytes caps request bodies (default 64 MiB — forests are
	// posted as JSON).
	MaxBodyBytes int64
	// FlightDir receives panic flight-recorder dumps (default the OS
	// temp dir).
	FlightDir string
	// MaxTenants bounds the per-tenant accounting map (default 1024);
	// further tenants aggregate under "other".
	MaxTenants int
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 30 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = par.Workers()
	}
	switch {
	case o.MaxQueue == 0:
		o.MaxQueue = 256
	case o.MaxQueue < 0:
		o.MaxQueue = 0
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.FlightDir == "" {
		o.FlightDir = os.TempDir()
	}
	if o.MaxTenants <= 0 {
		o.MaxTenants = 1024
	}
	return o
}

// registeredForest is one registry entry with its display metadata.
type registeredForest struct {
	f        *forest.Forest
	trees    int
	nodes    int
	features int
}

// Server is the gefd explanation server. Build with New, mount Handler
// on a listener (or call Serve), and stop with Drain/Close. A Server is
// safe for concurrent use.
type Server struct {
	opt  Options
	eng  *core.Engine
	adm  *admission
	coal *group

	mu      sync.Mutex
	forests map[string]*registeredForest
	tenants map[string]*TenantStats
	started time.Time

	// drainMu guards the drain state and the compute base context that
	// every coalesced computation derives from.
	drainMu       sync.Mutex
	draining      bool
	drainAt       time.Time
	computeBase   context.Context
	cancelCompute context.CancelCauseFunc
	drainTimer    *time.Timer

	httpMu  sync.Mutex
	httpSrv *http.Server
}

// errDrainDeadline is the cancellation cause installed when the drain
// deadline expires; it wraps ErrDeadline so in-flight requests surface
// as 504, the same class as a budget expiry.
var errDrainDeadline = fmt.Errorf("%w: drain deadline expired", robust.ErrDeadline)

// errClosed is the cancellation cause for a hard Close; it wraps
// ErrDeadline so any computation it interrupts still surfaces typed.
var errClosed = fmt.Errorf("%w: server closed", robust.ErrDeadline)

// New builds a Server with its own shared engine cache.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	var eng *core.Engine
	switch {
	case opt.CacheBudget == 0:
		eng = core.NewEngine()
	default:
		eng = core.NewEngineBudget(opt.CacheBudget)
	}
	base, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		opt:           opt,
		eng:           eng,
		adm:           newAdmission(opt.MaxInFlight, opt.MaxQueue),
		forests:       make(map[string]*registeredForest),
		tenants:       make(map[string]*TenantStats),
		started:       time.Now(),
		computeBase:   base,
		cancelCompute: cancel,
	}
	s.coal = newGroup(s.dumpPanicFlight)
	return s
}

// dumpPanicFlight snapshots the flight recorder after a panic in a
// coalesced leader (the HTTP middleware handles handler panics).
func (s *Server) dumpPanicFlight(err error) {
	mPanics.Inc()
	path := filepath.Join(s.opt.FlightDir, fmt.Sprintf("gefd-panic-%d.json", time.Now().UnixNano()))
	if derr := obs.DumpFlightFile(path); derr != nil {
		fmt.Fprintf(os.Stderr, "gefd: %v; panic flight dump failed: %v\n", err, derr)
		return
	}
	fmt.Fprintf(os.Stderr, "gefd: %v; flight recorder dumped to %s\n", err, path)
}

// Engine exposes the shared artifact cache (for stats reporting).
func (s *Server) Engine() *core.Engine { return s.eng }

// RegisterForest adds f to the registry and returns its fingerprint.
// Registration is idempotent: re-registering a structurally identical
// forest keeps the existing entry.
func (s *Server) RegisterForest(f *forest.Forest) (string, error) {
	if err := f.Validate(); err != nil {
		return "", fmt.Errorf("%w: %v", robust.ErrDegenerate, err)
	}
	fp := f.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.forests[fp]; !ok {
		s.forests[fp] = &registeredForest{f: f, trees: len(f.Trees), nodes: f.NumNodes(), features: f.NumFeatures}
	}
	return fp, nil
}

// forestFor resolves a fingerprint to its registered forest.
func (s *Server) forestFor(fp string) (*forest.Forest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rf, ok := s.forests[fp]
	if !ok {
		return nil, fmt.Errorf("forest %q: %w", fp, errNotFound)
	}
	return rf.f, nil
}

// dropForest removes a fingerprint from the registry. Engine artifacts
// keyed by the fingerprint stay resident until evicted by the cache
// budget — they are harmless without the forest and disappear under
// memory pressure.
func (s *Server) dropForest(fp string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.forests[fp]; !ok {
		return false
	}
	delete(s.forests, fp)
	return true
}

// requestBudget resolves the effective compute budget for a request:
// the server budget, lowered (never raised) by the request's
// budget_ms.
func (s *Server) requestBudget(budgetMS int) time.Duration {
	b := s.opt.Budget
	if budgetMS > 0 {
		if rb := time.Duration(budgetMS) * time.Millisecond; rb < b {
			b = rb
		}
	}
	return b
}

// computeCtx derives the context a shared computation runs under: the
// server's compute base (cancelled with a typed cause at the drain
// deadline or on Close), capped by the request budget and — when a
// drain is already in progress — by the drain deadline. Deliberately
// NOT derived from any single client's request context: coalesced
// computations outlive individual waiters.
func (s *Server) computeCtx(budget time.Duration) (context.Context, context.CancelFunc) {
	s.drainMu.Lock()
	base := s.computeBase
	deadline := time.Now().Add(budget)
	if s.draining && s.drainAt.Before(deadline) {
		deadline = s.drainAt
	}
	s.drainMu.Unlock()
	return context.WithDeadline(base, deadline)
}

// Draining reports whether a drain is in progress.
func (s *Server) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// Drain performs the graceful-shutdown protocol: stop admitting (new
// arrivals shed with 429), stop accepting connections if a listener is
// attached, let in-flight requests finish under the drain deadline, and
// time out stragglers with 504 (the serve.drain fault site forces the
// deadline to zero). Drain is idempotent; the first call fixes the
// deadline.
func (s *Server) Drain() error {
	s.drainMu.Lock()
	if !s.draining {
		s.draining = true
		d := s.opt.DrainTimeout
		if robust.Fire(robust.SiteDrain, -1, 0) {
			d = 0
		}
		s.drainAt = time.Now().Add(d)
		cancel := s.cancelCompute
		s.drainTimer = time.AfterFunc(time.Until(s.drainAt), func() {
			mDrainTimeouts.Inc()
			cancel(errDrainDeadline)
		})
	}
	at := s.drainAt
	s.drainMu.Unlock()

	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv == nil {
		return nil
	}
	sctx, cancel := context.WithDeadline(context.Background(), at.Add(100*time.Millisecond))
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		// The drain deadline passed with connections still open: the
		// compute cancellation has already typed the in-flight requests
		// as 504; close what remains.
		//lint:ignore errdrop Close after a timed-out Shutdown is best-effort by design
		srv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}

// Close cancels every computation immediately and closes the listener.
// Prefer Drain for orderly shutdown.
func (s *Server) Close() error {
	s.drainMu.Lock()
	s.draining = true
	if s.drainTimer != nil {
		s.drainTimer.Stop()
	}
	s.cancelCompute(errClosed)
	s.drainMu.Unlock()
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv != nil {
		return srv.Close()
	}
	return nil
}

// Serve attaches an http.Server to ln and blocks until Drain or Close.
// A clean shutdown returns nil.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Listen binds addr (":0" for an ephemeral port) and serves in the
// calling goroutine via Serve. The bound address is reported through
// the optional ready callback before blocking.
func (s *Server) Listen(addr string, ready func(bound string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listening on %s: %w", addr, err)
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	return s.Serve(ln)
}

// Handler returns the full gefd HTTP surface:
//
//	POST   /v1/explain      explanation for a registered forest
//	POST   /v1/autoexplain  component-count search
//	POST   /v1/shap         per-instance TreeSHAP attributions
//	POST   /v1/forests      register a forest (versioned wire JSON)
//	GET    /v1/forests      list registered forests
//	DELETE /v1/forests/{fp} unregister
//	GET    /v1/stats        serving statistics (per-tenant accounting)
//	/metrics /healthz /flight  operational telemetry (internal/obs)
//
// Every response is JSON; failures follow the typed status contract in
// the package comment.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("POST /v1/autoexplain", s.handleAutoExplain)
	mux.HandleFunc("POST /v1/shap", s.handleShap)
	mux.HandleFunc("POST /v1/forests", s.handleForestPost)
	mux.HandleFunc("GET /v1/forests", s.handleForestList)
	mux.HandleFunc("DELETE /v1/forests/{fp}", s.handleForestDelete)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	telemetry := obs.Handler()
	mux.Handle("/metrics", telemetry)
	mux.Handle("/healthz", telemetry)
	mux.Handle("/flight", telemetry)
	return s.instrument(mux)
}

// endpointLabel maps a request path to its bounded metrics label.
func endpointLabel(r *http.Request) string {
	switch {
	case r.URL.Path == "/v1/explain":
		return "explain"
	case r.URL.Path == "/v1/autoexplain":
		return "autoexplain"
	case r.URL.Path == "/v1/shap":
		return "shap"
	case r.URL.Path == "/v1/forests" || len(r.URL.Path) > len("/v1/forests/") && r.URL.Path[:len("/v1/forests/")] == "/v1/forests/":
		return "forests"
	case r.URL.Path == "/v1/stats":
		return "stats"
	case r.URL.Path == "/metrics" || r.URL.Path == "/healthz" || r.URL.Path == "/flight":
		return "telemetry"
	default:
		return "other"
	}
}

// statusWriter captures the status code a handler wrote so the
// instrumentation middleware can label serve.requests.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(p)
}

// instrument wraps the mux with panic-to-500 recovery and per-request
// metrics. Recovery snapshots the flight recorder to disk — a panic in
// a handler is exactly the post-mortem the ring exists for — and
// answers a typed 500 when the response has not started.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		ep := endpointLabel(r)
		defer func() {
			if rec := recover(); rec != nil {
				s.recoverPanic(sw, rec)
			}
			mRequests.With(ep, strconv.Itoa(sw.status)).Inc()
			hLatencyMs.With(ep).Observe(float64(time.Since(start).Microseconds()) / 1000)
		}()
		next.ServeHTTP(sw, r)
	})
}

// recoverPanic converts a handler panic into a typed 500 plus a flight
// dump under Options.FlightDir.
func (s *Server) recoverPanic(sw *statusWriter, rec any) {
	mPanics.Inc()
	err := fmt.Errorf("panic: %v", rec)
	obs.RecordError("serve.panic", err)
	fmt.Fprintf(os.Stderr, "gefd: recovered %v\n%s", rec, debug.Stack())
	path := filepath.Join(s.opt.FlightDir, fmt.Sprintf("gefd-panic-%d.json", time.Now().UnixNano()))
	if derr := obs.DumpFlightFile(path); derr != nil {
		fmt.Fprintf(os.Stderr, "gefd: panic flight dump failed: %v\n", derr)
	} else {
		fmt.Fprintf(os.Stderr, "gefd: flight recorder dumped to %s\n", path)
	}
	if !sw.wrote {
		writeJSON(sw, http.StatusInternalServerError, errorBody{Error: err.Error(), Kind: "panic"})
	}
}
