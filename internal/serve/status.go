package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"gef/internal/obs"
	"gef/internal/robust"
)

// errShed marks a request refused by admission control (→ 429).
var errShed = errors.New("overloaded: request shed")

// errNotFound marks a fingerprint missing from the registry (→ 404).
var errNotFound = errors.New("not registered")

// StatusClientClosed is the non-standard 499 used when the client
// cancelled its own request: no standard code fits ("the response will
// never be read"), and 499 is the de-facto convention for exactly this
// case, keeping the metric label distinct from server-caused 5xx.
const StatusClientClosed = 499

// statusOf maps an error to its HTTP status and a stable machine-
// readable kind, implementing the typed-status contract:
//
//	nil                      → 200
//	errShed                  → 429 (+ Retry-After)
//	errNotFound              → 404
//	robust.ErrConfig         → 400  bad request configuration
//	robust.ErrDegenerate     → 400  unusable forest / collapsed data
//	robust.ErrDeadline,
//	context.DeadlineExceeded → 504  budget or drain deadline expired
//	context.Canceled         → 499  client went away
//	robust.ErrNumerical,
//	anything else            → 500
//
// ErrDeadline is tested before Canceled so a drain cause (which wraps
// ErrDeadline but cancels with context.Canceled underneath) counts as
// a server timeout, not a client disconnect.
func statusOf(err error) (int, string) {
	switch {
	case err == nil:
		return http.StatusOK, ""
	case errors.Is(err, errShed):
		return http.StatusTooManyRequests, "shed"
	case errors.Is(err, errNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, robust.ErrConfig):
		return http.StatusBadRequest, "config"
	case errors.Is(err, robust.ErrDegenerate):
		return http.StatusBadRequest, "degenerate"
	case errors.Is(err, robust.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, context.Canceled):
		return StatusClientClosed, "canceled"
	case errors.Is(err, robust.ErrNumerical):
		return http.StatusInternalServerError, "numerical"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// typedCause lifts a shared computation's cancellation cause into the
// error it returns: a compute context cancelled by the drain deadline
// (or Close) reports context.Canceled from the pipeline, but the cause
// wraps ErrDeadline, and that — not "client disconnect" — is what the
// waiters must see.
func typedCause(cctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) {
		if cause := context.Cause(cctx); cause != nil && !errors.Is(cause, context.Canceled) {
			return fmt.Errorf("%w (pipeline: %v)", cause, err)
		}
	}
	return robust.CtxErr(err)
}

// errorBody is the JSON error envelope: a human-readable message plus
// the machine-readable kind from statusOf.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// writeJSON writes v as the response with the given status. An encode
// failure at this point means the client is gone; it is recorded in the
// flight ring and otherwise dropped on purpose.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		obs.RecordError("serve.write", err)
	}
}

// writeError terminates a request with its typed status, accounting the
// outcome to the tenant.
func (s *Server) writeError(w http.ResponseWriter, tenant string, err error) {
	status, kind := statusOf(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
		mShed.Inc()
		s.tenantStat(tenant, func(ts *TenantStats) { ts.Shed++ })
	} else {
		s.tenantStat(tenant, func(ts *TenantStats) { ts.Errors++ })
	}
	writeJSON(w, status, errorBody{Error: err.Error(), Kind: kind})
}
