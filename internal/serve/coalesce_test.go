package serve

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gef/internal/robust"
)

// bgLeadCtx is the trivial leadCtx for coalescer unit tests: a plain
// cancellable context not tied to any waiter.
func bgLeadCtx() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background())
}

// TestCoalesceSharesOneComputation: N concurrent do calls, one key,
// one execution, identical results, N−1 joiners.
func TestCoalesceSharesOneComputation(t *testing.T) {
	g := newGroup(nil)
	var executions atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	const n = 8

	type result struct {
		val    any
		joined bool
		err    error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lead := func(context.Context) (any, error) {
				executions.Add(1)
				close(started)
				<-release
				return "shared-value", nil
			}
			v, joined, err := g.do(context.Background(), "k", bgLeadCtx, lead)
			results[i] = result{v, joined, err}
		}(i)
		if i == 0 {
			// Make goroutine 0 the leader deterministically.
			<-started
		}
	}
	// Give the waiters a moment to join, then release the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("lead executed %d times, want 1", got)
	}
	joins := 0
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("caller %d: %v", i, r.err)
		}
		if r.val != "shared-value" {
			t.Fatalf("caller %d got %v", i, r.val)
		}
		if r.joined {
			joins++
		}
	}
	if joins != n-1 {
		t.Fatalf("joined = %d, want %d", joins, n-1)
	}
}

// TestCoalesceWaiterCancelDoesNotPoison is the core single-flight
// robustness property: a waiter whose request dies gets CtxErr
// immediately, while the shared computation finishes untouched for the
// remaining waiters.
func TestCoalesceWaiterCancelDoesNotPoison(t *testing.T) {
	g := newGroup(nil)
	started := make(chan struct{})
	release := make(chan struct{})
	lead := func(context.Context) (any, error) {
		close(started)
		<-release
		return 42, nil
	}

	leaderDone := make(chan error, 1)
	go func() {
		v, _, err := g.do(context.Background(), "k", bgLeadCtx, lead)
		if err == nil && v != 42 {
			err = errors.New("leader got wrong value")
		}
		leaderDone <- err
	}()
	<-started

	// A doomed waiter joins, then its request context dies.
	wctx, wcancel := context.WithCancel(context.Background())
	doomedDone := make(chan error, 1)
	go func() {
		_, joined, err := g.do(wctx, "k", bgLeadCtx, func(context.Context) (any, error) {
			t.Error("doomed waiter must not lead")
			return nil, nil
		})
		if !joined {
			t.Error("doomed waiter did not join the in-flight call")
		}
		doomedDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	wcancel()
	select {
	case err := <-doomedDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
		}
		if errors.Is(err, robust.ErrDeadline) {
			t.Fatalf("client cancel misclassified as deadline: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter hung")
	}

	// A healthy waiter joins after the cancellation and still gets the
	// shared result.
	healthyDone := make(chan error, 1)
	go func() {
		v, _, err := g.do(context.Background(), "k", bgLeadCtx, nil)
		if err == nil && v != 42 {
			err = errors.New("healthy waiter got wrong value")
		}
		healthyDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	for name, ch := range map[string]chan error{"leader": leaderDone, "healthy waiter": healthyDone} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("%s hung after waiter cancellation", name)
		}
	}
}

// TestCoalesceLeaderPanicIsTyped: a panicking lead surfaces a typed 500
// for every caller and fires the panic hook; nothing hangs.
func TestCoalesceLeaderPanicIsTyped(t *testing.T) {
	var hooked atomic.Int64
	g := newGroup(func(error) { hooked.Add(1) })
	_, _, err := g.do(context.Background(), "k", bgLeadCtx, func(context.Context) (any, error) {
		panic("lead exploded")
	})
	if err == nil || !strings.Contains(err.Error(), "panic in coalesced computation") {
		t.Fatalf("err = %v, want panic error", err)
	}
	if status, _ := statusOf(err); status != http.StatusInternalServerError {
		t.Fatalf("panic mapped to %d, want 500", status)
	}
	if hooked.Load() != 1 {
		t.Fatalf("panic hook fired %d times, want 1", hooked.Load())
	}
	// The key must be free again.
	v, _, err := g.do(context.Background(), "k", bgLeadCtx, func(context.Context) (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("key poisoned after panic: v=%v err=%v", v, err)
	}
}

// TestCoalesceDistinctKeysRunIndependently guards the key discipline:
// different keys never share results.
func TestCoalesceDistinctKeysRunIndependently(t *testing.T) {
	g := newGroup(nil)
	var execs atomic.Int64
	var wg sync.WaitGroup
	vals := make([]any, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := "k" + string(rune('a'+i))
			vals[i], _, _ = g.do(context.Background(), key, bgLeadCtx, func(context.Context) (any, error) {
				execs.Add(1)
				time.Sleep(20 * time.Millisecond)
				return key, nil
			})
		}(i)
	}
	wg.Wait()
	if execs.Load() != 2 {
		t.Fatalf("executions = %d, want 2 (distinct keys must not coalesce)", execs.Load())
	}
	if vals[0] == vals[1] {
		t.Fatalf("distinct keys shared a value: %v", vals[0])
	}
}

// TestCoalesceCompletedCallDoesNotLinger: a request arriving after the
// shared computation finished starts fresh (dedupe is concurrent-only;
// history is the engine cache's job).
func TestCoalesceCompletedCallDoesNotLinger(t *testing.T) {
	g := newGroup(nil)
	var execs atomic.Int64
	run := func() {
		_, _, err := g.do(context.Background(), "k", bgLeadCtx, func(context.Context) (any, error) {
			execs.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	run()
	run()
	if execs.Load() != 2 {
		t.Fatalf("executions = %d, want 2 for sequential calls", execs.Load())
	}
}
