package serve

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"gef/internal/robust"
)

// These tests pin the deadline interplay the serving layer builds out
// of internal/robust: three clocks can end a request — the client's own
// context, the server budget, and the drain deadline — and whichever
// fires first must decide the typed outcome (499 vs 504), without ever
// poisoning a shared computation for other waiters.

// TestDeadlineWaiterBudgetExpiryIs504: the waiter's budget-capped
// request context expires while the shared computation is still
// running → ErrDeadline (504), not a generic context error.
func TestDeadlineWaiterBudgetExpiryIs504(t *testing.T) {
	g := newGroup(nil)
	release := make(chan struct{})
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := g.do(ctx, "k", bgLeadCtx, func(context.Context) (any, error) {
		<-release
		return nil, nil
	})
	if !errors.Is(err, robust.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if status, kind := statusOf(err); status != http.StatusGatewayTimeout || kind != "deadline" {
		t.Fatalf("mapped to (%d, %s), want (504, deadline)", status, kind)
	}
}

// TestDeadlineClientCancelBeatsBudget: with a generous budget, a client
// cancel must classify as Canceled (499) — CtxErr passes Canceled
// through untyped, and statusOf must not mistake it for a timeout.
func TestDeadlineClientCancelBeatsBudget(t *testing.T) {
	g := newGroup(nil)
	release := make(chan struct{})
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, _, err := g.do(ctx, "k", bgLeadCtx, func(context.Context) (any, error) {
		<-release
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) || errors.Is(err, robust.ErrDeadline) {
		t.Fatalf("err = %v, want pure context.Canceled", err)
	}
	if status, kind := statusOf(err); status != StatusClientClosed || kind != "canceled" {
		t.Fatalf("mapped to (%d, %s), want (%d, canceled)", status, kind, StatusClientClosed)
	}
}

// TestDeadlineComputeBudgetIsTyped: the shared computation's own
// context (computeCtx caps it with the server budget) expires →
// typedCause turns it into ErrDeadline for every waiter.
func TestDeadlineComputeBudgetIsTyped(t *testing.T) {
	s := New(Options{Budget: time.Hour})
	defer s.Close()
	g := newGroup(nil)
	_, _, err := g.do(context.Background(), "k",
		func() (context.Context, context.CancelFunc) { return s.computeCtx(10 * time.Millisecond) },
		func(cctx context.Context) (any, error) {
			<-cctx.Done()
			return nil, cctx.Err()
		})
	if !errors.Is(err, robust.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline from compute budget", err)
	}
}

// TestDeadlineDrainCauseIsTyped: a drain deadline cancels the compute
// base with a cause wrapping ErrDeadline; in-flight computations see
// context.Canceled underneath but must surface 504, not 499.
func TestDeadlineDrainCauseIsTyped(t *testing.T) {
	s := New(Options{Budget: time.Hour, DrainTimeout: 20 * time.Millisecond})
	defer s.Close()
	cctx, cancel := s.computeCtx(time.Hour)
	defer cancel()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-cctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("compute context not cancelled by drain deadline")
	}
	err := typedCause(cctx, cctx.Err())
	if !errors.Is(err, robust.ErrDeadline) {
		t.Fatalf("drained computation surfaced %v, want ErrDeadline", err)
	}
	if status, _ := statusOf(err); status != http.StatusGatewayTimeout {
		t.Fatalf("drained computation mapped to %d, want 504", status)
	}
	if errors.Is(err, errShed) {
		t.Fatalf("drain misclassified as shed: %v", err)
	}
}

// TestDeadlineDrainCapsComputeCtx: once draining, a new computation's
// deadline is min(budget, drainAt) — a long budget cannot outlive the
// drain.
func TestDeadlineDrainCapsComputeCtx(t *testing.T) {
	s := New(Options{Budget: time.Hour, DrainTimeout: 30 * time.Millisecond})
	defer s.Close()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := s.computeCtx(time.Hour)
	defer cancel()
	dl, ok := cctx.Deadline()
	if !ok {
		t.Fatal("compute context has no deadline during drain")
	}
	if until := time.Until(dl); until > time.Second {
		t.Fatalf("compute deadline %v away; drain must cap it near its own deadline", until)
	}
	// And the shorter of the two still wins the other way round: a
	// 1ms budget under a 30ms drain expires on the budget.
	cctx2, cancel2 := s.computeCtx(time.Millisecond)
	defer cancel2()
	dl2, _ := cctx2.Deadline()
	if !dl2.Before(dl) {
		t.Fatalf("budget deadline %v not before drain deadline %v", dl2, dl)
	}
}

// TestDeadlineBudgetEndToEnd: a request whose budget_ms cannot cover
// the computation gets a 504 quickly — the server never sits on a
// doomed request.
func TestDeadlineBudgetEndToEnd(t *testing.T) {
	_, ts, fp := newTestServer(t, Options{})
	cfg := fastConfig()
	cfg.NumSamples = 50000 // slow on purpose
	start := time.Now()
	resp, payload := doJSON(t, http.MethodPost, ts.URL+"/v1/explain", "",
		explainRequest{Fingerprint: fp, Config: cfg, BudgetMS: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (body %s), want 504", resp.StatusCode, payload)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("504 took %v; budget expiry must terminate the request promptly", elapsed)
	}
}

// TestRequestBudgetClamp: budget_ms may lower, never raise, the server
// budget.
func TestRequestBudgetClamp(t *testing.T) {
	s := New(Options{Budget: 100 * time.Millisecond})
	defer s.Close()
	if got := s.requestBudget(0); got != 100*time.Millisecond {
		t.Fatalf("default budget = %v", got)
	}
	if got := s.requestBudget(10); got != 10*time.Millisecond {
		t.Fatalf("lowered budget = %v", got)
	}
	if got := s.requestBudget(10_000); got != 100*time.Millisecond {
		t.Fatalf("budget raised to %v; server cap must win", got)
	}
}
