package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"gef/internal/robust"
)

func TestAdmissionShedsBeyondCapacity(t *testing.T) {
	adm := newAdmission(1, 1) // one worker, one queued → admitted set of 2
	r1, err := adm.enter(false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := adm.enter(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adm.enter(false); !errors.Is(err, errShed) {
		t.Fatalf("third arrival got %v, want errShed", err)
	}
	if status, _ := statusOf(errShed); status != http.StatusTooManyRequests {
		t.Fatalf("shed maps to %d, want 429", status)
	}
	r1()
	r3, err := adm.enter(false)
	if err != nil {
		t.Fatalf("release did not free capacity: %v", err)
	}
	r2()
	r3()
	if got := adm.admitted.Load(); got != 0 {
		t.Fatalf("admitted counter leaked: %d", got)
	}
}

func TestAdmissionShedsWhileDraining(t *testing.T) {
	adm := newAdmission(4, 4)
	if _, err := adm.enter(true); !errors.Is(err, errShed) {
		t.Fatalf("draining admission got %v, want errShed", err)
	}
}

func TestWorkerTokenDeadlineIs504(t *testing.T) {
	adm := newAdmission(1, 8)
	release, err := adm.token(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := adm.token(ctx); !errors.Is(err, robust.ErrDeadline) {
		t.Fatalf("queued-for-token expiry got %v, want ErrDeadline", err)
	}
	release()
	// Token usable again after release.
	release2, err := adm.token(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release2()
}

// TestShedEndToEnd fills the admitted set directly, then proves an HTTP
// request is shed with 429 + Retry-After and a typed body — the
// cheap-overload contract.
func TestShedEndToEnd(t *testing.T) {
	s, ts, fp := newTestServer(t, Options{MaxInFlight: 1, MaxQueue: -1})
	release, err := s.adm.enter(false)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp, payload := doJSON(t, http.MethodPost, ts.URL+"/v1/explain", "overload",
		explainRequest{Fingerprint: fp, Config: fastConfig()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (body %s), want 429", resp.StatusCode, payload)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	st := s.Stats()
	if st.Tenants["overload"].Shed != 1 {
		t.Fatalf("shed not accounted: %+v", st.Tenants["overload"])
	}
}

// TestDrainShedsNewArrivals: once draining, new requests shed with 429
// even though workers are idle — drain means finish, not accept.
func TestDrainShedsNewArrivals(t *testing.T) {
	s, ts, fp := newTestServer(t, Options{DrainTimeout: time.Minute})
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/explain", "",
		explainRequest{Fingerprint: fp, Config: fastConfig()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status during drain = %d, want 429", resp.StatusCode)
	}
}

// TestDrainIsIdempotent: the first Drain fixes the deadline; repeat
// calls neither extend nor crash.
func TestDrainIsIdempotent(t *testing.T) {
	s := New(Options{DrainTimeout: 50 * time.Millisecond})
	defer s.Close()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	s.drainMu.Lock()
	first := s.drainAt
	s.drainMu.Unlock()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	s.drainMu.Lock()
	second := s.drainAt
	s.drainMu.Unlock()
	if !first.Equal(second) {
		t.Fatalf("second Drain moved the deadline: %v → %v", first, second)
	}
}

// TestNoGoroutineLeaks runs a mixed load — coalesced duplicates, a
// cancelled waiter, shap, a shed — then closes the server and requires
// the goroutine count to settle back. This is the -race companion to
// the "no hung connections" acceptance criterion.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	func() {
		s, ts, fp := newTestServer(t, Options{})
		cfg := fastConfig()
		var wg sync.WaitGroup
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				doJSON(t, http.MethodPost, ts.URL+"/v1/explain", "leak",
					explainRequest{Fingerprint: fp, Config: cfg})
			}()
		}
		// One waiter that abandons its request mid-flight.
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/explain", nil)
			if err != nil {
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
		wg.Wait()
		doJSON(t, http.MethodPost, ts.URL+"/v1/shap", "leak",
			shapRequest{Fingerprint: fp, X: []float64{0.2, 0.4, 0.6, 0.8, 1}})
		if err := s.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
		s.Close()
	}()
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines: started with %d, settled at %d", before, runtime.NumGoroutine())
}

// TestCoalescingEndToEnd proves the handler→coalescer wiring: with a
// computation already in flight for the exact key an HTTP request will
// derive, the request joins it, returns the shared result, and the
// stats record a coalesce hit. Pre-installing the call makes the
// overlap deterministic (real concurrent overlap is statistical and is
// measured by servebench instead).
func TestCoalescingEndToEnd(t *testing.T) {
	s, ts, fp := newTestServer(t, Options{})
	cfg := fastConfig()
	key, err := requestKey("explain", fp, normalizeConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.forestFor(fp)
	if err != nil {
		t.Fatal(err)
	}
	c := &call{done: make(chan struct{})}
	s.coal.mu.Lock()
	s.coal.calls[key] = c
	s.coal.mu.Unlock()
	go func() {
		time.Sleep(30 * time.Millisecond) // request joins while this "computation" runs
		c.val, c.err = s.eng.ExplainCtx(context.Background(), f, normalizeConfig(cfg))
		s.coal.mu.Lock()
		delete(s.coal.calls, key)
		s.coal.mu.Unlock()
		close(c.done)
	}()

	resp, payload := doJSON(t, http.MethodPost, ts.URL+"/v1/explain", "co",
		explainRequest{Fingerprint: fp, Config: cfg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, payload)
	}
	var out explainResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Coalesced {
		t.Fatal("response not marked coalesced")
	}
	st := s.Stats()
	if st.CoalesceHits != 1 || st.Tenants["co"].CoalesceHits != 1 {
		t.Fatalf("coalesce hit not accounted: %+v", st)
	}
}
