package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"gef/internal/core"
	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gbdt"
	"gef/internal/par"
)

// LoadConfig drives RunLoad, the closed-loop load generator behind
// cmd/gefd/loadgen and servebench_test.go. Closed-loop means each
// client issues its next request only after the previous one finishes,
// so offered load adapts to server capacity instead of stampeding it —
// the right shape for measuring a server that sheds.
type LoadConfig struct {
	// BaseURL is the gefd root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// Duration bounds the run.
	Duration time.Duration
	// Fingerprints are the registered forests to spread requests over.
	Fingerprints []string
	// NumFeatures sizes SHAP x vectors (must match the forests).
	NumFeatures int
	// Tenants is how many distinct X-Tenant identities to rotate
	// through (default 1).
	Tenants int
	// DupFrac is the fraction of explain requests drawn from a small
	// hot set of configs (coalescing + engine-cache exercise); the
	// rest get a unique per-request config seed.
	DupFrac float64
	// ShapFrac is the fraction of requests that hit /v1/shap.
	ShapFrac float64
	// BadFrac is the fraction of requests sent with an invalid config
	// (expected 400).
	BadFrac float64
	// UnknownFrac is the fraction sent with an unregistered
	// fingerprint (expected 404).
	UnknownFrac float64
	// CancelFrac is the fraction issued with a ~1ms client-side
	// timeout, exercising waiter cancellation under coalescing.
	CancelFrac float64
	// BudgetMS is the per-request budget_ms (0 = server default).
	BudgetMS int
	// NumSamples overrides the explain config's |D*| (0 = 2000; small
	// keeps closed-loop latency benchable).
	NumSamples int
	// Families rotates explain requests across explainer families
	// (e.g. ["gam", "rules", "smoother"]). Empty means every request
	// uses the server default family. Hot-set requests cycle families
	// deterministically, so duplicates within one family still coalesce
	// while distinct families never share a key.
	Families []string
	// Seed makes the request mix reproducible.
	Seed int64
}

// LoadReport is RunLoad's result, the BENCH_serve.json payload.
type LoadReport struct {
	Clients       int              `json:"clients"`
	DurationS     float64          `json:"duration_s"`
	Requests      int64            `json:"requests"`
	ReqPerSec     float64          `json:"req_per_sec"`
	P50Ms         float64          `json:"p50_ms"`
	P90Ms         float64          `json:"p90_ms"`
	P99Ms         float64          `json:"p99_ms"`
	MaxMs         float64          `json:"max_ms"`
	Status        map[string]int64 `json:"status"`
	ClientCancels int64            `json:"client_cancels"`
	ClientErrors  int64            `json:"client_errors"`
	// CoalesceHitRate = coalesced waiters / (waiters + leaders) over
	// the run, from /v1/stats deltas.
	CoalesceHitRate float64 `json:"coalesce_hit_rate"`
	// EngineHitRate = engine artifact-cache hits / lookups over the
	// run, from /v1/stats deltas.
	EngineHitRate float64 `json:"engine_hit_rate"`
	Shed          int64   `json:"shed"`
}

// clientResult is one closed-loop client's tally; merged after the run.
type clientResult struct {
	latencies []float64 // ms, successful HTTP round-trips
	status    map[int]int64
	cancels   int64
	errs      int64
}

// fetchStats reads /v1/stats.
func fetchStats(ctx context.Context, hc *http.Client, baseURL string) (*Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	//lint:ignore errdrop read-side close; the decode error is the signal
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("loadgen: decoding /v1/stats: %w", err)
	}
	return &st, nil
}

// RunLoad drives the configured mix against a running gefd and reports
// aggregate latency/throughput plus cache and coalescing hit rates
// computed from /v1/stats deltas.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.NumSamples <= 0 {
		cfg.NumSamples = 2000
	}
	if len(cfg.Fingerprints) == 0 {
		return nil, errors.New("loadgen: no forest fingerprints to target")
	}
	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Clients * 2,
		MaxIdleConnsPerHost: cfg.Clients * 2,
	}}
	defer hc.CloseIdleConnections()

	before, err := fetchStats(ctx, hc, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: server not reachable: %w", err)
	}

	deadline := time.Now().Add(cfg.Duration)
	results := make([]clientResult, cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		// Closed-loop HTTP clients are IO-bound waiters, not CPU work:
		// par's worker tokens model compute parallelism and would
		// serialize the offered load on small hosts, defeating the
		// point of a load generator.
		//lint:ignore rawgo IO-bound closed-loop clients; bounded by cfg.Clients and joined via WaitGroup
		go func(i int) {
			defer wg.Done()
			results[i] = runClient(ctx, hc, cfg, i, deadline)
		}(i)
	}
	wg.Wait()

	// The post-run stats read must succeed even when the driving ctx was
	// cancelled mid-run, or a partial run could never produce a report.
	//lint:ignore ctxdrop report collection must outlive the run's ctx on purpose
	after, err := fetchStats(context.Background(), hc, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: reading post-run stats: %w", err)
	}

	return buildReport(cfg, results, before, after), nil
}

// runClient is one closed-loop client: issue, wait, tally, repeat.
func runClient(ctx context.Context, hc *http.Client, cfg LoadConfig, id int, deadline time.Time) clientResult {
	rng := rand.New(rand.NewSource(par.SplitSeed(cfg.Seed, id)))
	res := clientResult{status: make(map[int]int64)}
	tenant := "tenant-" + strconv.Itoa(id%cfg.Tenants)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		kind, body, cancelMS := nextRequest(cfg, rng, id)
		start := time.Now()
		status, err := postJSON(ctx, hc, cfg.BaseURL+"/v1/"+kind, tenant, body, cancelMS)
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		switch {
		case err != nil && cancelMS > 0:
			res.cancels++
		case err != nil:
			res.errs++
		default:
			res.status[status]++
			res.latencies = append(res.latencies, elapsed)
		}
	}
	return res
}

// nextRequest draws one request from the configured mix. The unique
// (non-duplicate) explains vary Config.Seed — a config-key field — so
// they can never coalesce with each other; the hot set reuses one of
// two fixed configs, so concurrent clients coalesce and sequential
// repeats hit the engine cache.
func nextRequest(cfg LoadConfig, rng *rand.Rand, id int) (kind string, body any, cancelMS int) {
	fp := cfg.Fingerprints[rng.Intn(len(cfg.Fingerprints))]
	roll := rng.Float64()
	bad := roll < cfg.BadFrac
	roll -= cfg.BadFrac
	unknown := !bad && roll >= 0 && roll < cfg.UnknownFrac
	roll -= cfg.UnknownFrac
	isShap := !bad && !unknown && roll >= 0 && roll < cfg.ShapFrac

	if rng.Float64() < cfg.CancelFrac {
		cancelMS = 1
	}
	if unknown {
		fp = "fp-unknown-0000000000000000"
	}
	if isShap {
		x := make([]float64, cfg.NumFeatures)
		for j := range x {
			x[j] = rng.Float64()
		}
		return "shap", shapRequest{Fingerprint: fp, X: x, BudgetMS: cfg.BudgetMS}, cancelMS
	}
	c := core.Config{NumUnivariate: 3, NumSamples: cfg.NumSamples, Seed: 7}
	if len(cfg.Families) > 0 {
		c.Family = cfg.Families[rng.Intn(len(cfg.Families))]
	}
	switch {
	case bad:
		c.NumSamples = -1
	case rng.Float64() < cfg.DupFrac:
		// Hot set: two configs (per family, when a mix is set), so
		// coalescing and the engine cache see sustained duplicates
		// without collapsing to a single key.
		if rng.Intn(2) == 1 {
			c.NumUnivariate = 2
		}
	default:
		// Unique work: a per-request config seed defeats both caches.
		c.Seed = int64(id)<<32 + int64(rng.Intn(1<<30)) + 100
	}
	return "explain", explainRequest{Fingerprint: fp, Config: c, BudgetMS: cfg.BudgetMS}, cancelMS
}

// postJSON issues one POST, returning the HTTP status. cancelMS > 0
// bounds the request with a tight client-side timeout to exercise
// waiter cancellation.
func postJSON(ctx context.Context, hc *http.Client, url, tenant string, body any, cancelMS int) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	if cancelMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(cancelMS)*time.Millisecond)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(tenantHeader, tenant)
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	// Drain so the transport can reuse the connection.
	//lint:ignore errdrop best-effort drain; the status code is the signal
	_, _ = io.Copy(io.Discard, resp.Body)
	//lint:ignore errdrop read-side close after a full drain
	resp.Body.Close()
	return resp.StatusCode, nil
}

// buildReport merges per-client tallies with server-side stat deltas.
func buildReport(cfg LoadConfig, results []clientResult, before, after *Stats) *LoadReport {
	rep := &LoadReport{
		Clients:   cfg.Clients,
		DurationS: cfg.Duration.Seconds(),
		Status:    make(map[string]int64),
	}
	var all []float64
	for _, r := range results {
		all = append(all, r.latencies...)
		rep.ClientCancels += r.cancels
		rep.ClientErrors += r.errs
		for code, n := range r.status {
			rep.Status[strconv.Itoa(code)] += n
			rep.Requests += n
		}
	}
	rep.Requests += rep.ClientCancels + rep.ClientErrors
	rep.ReqPerSec = float64(rep.Requests) / cfg.Duration.Seconds()
	sort.Float64s(all)
	rep.P50Ms = percentile(all, 0.50)
	rep.P90Ms = percentile(all, 0.90)
	rep.P99Ms = percentile(all, 0.99)
	if n := len(all); n > 0 {
		rep.MaxMs = all[n-1]
	}
	hits := after.CoalesceHits - before.CoalesceHits
	leads := after.CoalesceLeads - before.CoalesceLeads
	if hits+leads > 0 {
		rep.CoalesceHitRate = float64(hits) / float64(hits+leads)
	}
	eh := after.Engine.Hits - before.Engine.Hits
	em := after.Engine.Misses - before.Engine.Misses
	if eh+em > 0 {
		rep.EngineHitRate = float64(eh) / float64(eh+em)
	}
	rep.Shed = after.Shed - before.Shed
	return rep
}

// SeedForests trains n small distinct g′ forests and registers them
// with a running gefd, returning their fingerprints. It gives loadgen
// and the smoke gate self-contained targets without shipping model
// files around.
func SeedForests(ctx context.Context, baseURL string, n, rows int, seed int64) ([]string, int, error) {
	if n <= 0 {
		n = 1
	}
	if rows <= 0 {
		rows = 600
	}
	hc := &http.Client{}
	defer hc.CloseIdleConnections()
	fps := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ds := dataset.GPrime(rows, 0.05, par.SplitSeed(seed, i))
		f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 20, NumLeaves: 15, Seed: par.SplitSeed(seed, i)})
		if err != nil {
			return nil, 0, fmt.Errorf("loadgen: training seed forest %d: %w", i, err)
		}
		blob, err := forest.Marshal(f)
		if err != nil {
			return nil, 0, fmt.Errorf("loadgen: encoding seed forest %d: %w", i, err)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/forests", bytes.NewReader(blob))
		if err != nil {
			return nil, 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			return nil, 0, fmt.Errorf("loadgen: registering seed forest %d: %w", i, err)
		}
		var info forestInfo
		derr := json.NewDecoder(resp.Body).Decode(&info)
		//lint:ignore errdrop read-side close; derr carries the outcome
		resp.Body.Close()
		if derr != nil || resp.StatusCode != http.StatusOK {
			return nil, 0, fmt.Errorf("loadgen: registering seed forest %d: status %d (%v)", i, resp.StatusCode, derr)
		}
		fps = append(fps, info.Fingerprint)
	}
	return fps, dataset.GPrimeDim, nil
}

// percentile reads the q-quantile from sorted xs (nearest-rank).
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q * float64(len(xs)))
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
