package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"

	"gef/internal/core"
	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/robust"
	"gef/internal/sampling"
	"gef/internal/shap"
)

// explainRequest is the POST /v1/explain body. Config uses core.Config
// field names verbatim ({"NumUnivariate": 4, "Sampling": {"Strategy":
// "equi-size", "K": 128}, ...}); zero-valued knobs take the server
// defaults from normalizeConfig before validation and key hashing, so
// an empty config and an explicitly-default config coalesce.
type explainRequest struct {
	Fingerprint string      `json:"fingerprint"`
	Config      core.Config `json:"config"`
	BudgetMS    int         `json:"budget_ms"`
	IncludeCI   bool        `json:"include_ci"`
}

// autoRequest is the POST /v1/autoexplain body.
type autoRequest struct {
	Fingerprint string          `json:"fingerprint"`
	Auto        core.AutoConfig `json:"auto"`
	BudgetMS    int             `json:"budget_ms"`
	IncludeCI   bool            `json:"include_ci"`
}

// shapRequest is the POST /v1/shap body. With a background set the
// server computes interventional values; otherwise path-dependent.
type shapRequest struct {
	Fingerprint string      `json:"fingerprint"`
	X           []float64   `json:"x"`
	Background  [][]float64 `json:"background,omitempty"`
	BudgetMS    int         `json:"budget_ms"`
}

// explainResponse wraps a versioned explanation blob. Degradations are
// duplicated at the top level (they also travel inside the blob) so
// clients can check "did the ladder fire" without decoding the
// explanation, mirroring the Warning header.
type explainResponse struct {
	Fingerprint  string               `json:"fingerprint"`
	Coalesced    bool                 `json:"coalesced"`
	Degradations []robust.Degradation `json:"degradations,omitempty"`
	Steps        []core.AutoStep      `json:"steps,omitempty"`
	Explanation  json.RawMessage      `json:"explanation"`
}

type shapResponse struct {
	Fingerprint string    `json:"fingerprint"`
	Coalesced   bool      `json:"coalesced"`
	Phi         []float64 `json:"phi"`
	Base        float64   `json:"base"`
}

// forestInfo is the registry view of one forest.
type forestInfo struct {
	Fingerprint string `json:"fingerprint"`
	Trees       int    `json:"trees"`
	Nodes       int    `json:"nodes"`
	Features    int    `json:"features"`
}

// decodeJSON parses a request body under the server's size cap; any
// failure is a client error (ErrConfig → 400).
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("%w: parsing request body: %v", robust.ErrConfig, err)
	}
	return nil
}

// normalizeConfig fills server defaults into zero-valued knobs. Run
// before both validation and key hashing: two requests that mean the
// same computation must hash to the same coalescing key. Family is
// defaulted here too, so requests for different explainer families
// always carry distinct keys (an explicit "gam" and an omitted family
// still coalesce) and an unknown family fails Validate with the typed
// 400 instead of reaching the engine.
func normalizeConfig(cfg core.Config) core.Config {
	if cfg.Family == "" {
		cfg.Family = core.FamilyGAM
	}
	if cfg.NumUnivariate == 0 {
		cfg.NumUnivariate = 5
	}
	if cfg.Sampling.Strategy == "" {
		cfg.Sampling.Strategy = sampling.EquiSize
	}
	if cfg.Sampling.K == 0 {
		cfg.Sampling.K = 256
	}
	if cfg.NumSamples == 0 {
		cfg.NumSamples = 20000
	}
	return cfg
}

// requestKey builds the coalescing key: kind, forest fingerprint, and
// an FNV-1a digest of the normalized request payload's canonical JSON
// (struct field order is fixed, so encoding/json is canonical here).
// The config hash is load-bearing: coalescing on (kind, fingerprint)
// alone would hand a waiter an explanation computed under someone
// else's knobs — silently wrong answers, the worst failure mode a
// server can have. Values that survived JSON decoding re-encode
// losslessly, so the digest is total on reachable inputs.
func requestKey(kind, fp string, payload any) (string, error) {
	b, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("%w: unencodable request: %v", robust.ErrConfig, err)
	}
	h := fnv.New64a()
	//lint:ignore errdrop hash.Hash Write never returns an error
	h.Write([]byte(kind))
	//lint:ignore errdrop hash.Hash Write never returns an error
	h.Write([]byte{0})
	//lint:ignore errdrop hash.Hash Write never returns an error
	h.Write([]byte(fp))
	//lint:ignore errdrop hash.Hash Write never returns an error
	h.Write([]byte{0})
	//lint:ignore errdrop hash.Hash Write never returns an error
	h.Write(b)
	return kind + ":" + fp + ":" + strconv.FormatUint(h.Sum64(), 16), nil
}

// serveComputation runs the admission → coalesce → compute pipeline for
// one request and reports (value, coalesced, ok); on !ok the error
// response has already been written.
func (s *Server) serveComputation(
	w http.ResponseWriter, r *http.Request,
	tenant string, budgetMS int, key string,
	lead func(context.Context) (any, error),
) (any, bool, bool) {
	budget := s.requestBudget(budgetMS)
	rctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	release, err := s.adm.enter(s.Draining())
	if err != nil {
		s.writeError(w, tenant, err)
		return nil, false, false
	}
	defer release()

	val, joined, err := s.coal.do(rctx, key,
		func() (context.Context, context.CancelFunc) { return s.computeCtx(budget) },
		func(cctx context.Context) (any, error) {
			tok, terr := s.adm.token(cctx)
			if terr != nil {
				return nil, terr
			}
			defer tok()
			return lead(cctx)
		})
	if joined {
		mCoalesceHits.Inc()
		s.tenantStat(tenant, func(ts *TenantStats) { ts.CoalesceHits++ })
	} else {
		mCoalesceLeads.Inc()
		s.tenantStat(tenant, func(ts *TenantStats) { ts.CoalesceLeads++ })
	}
	if err != nil {
		s.writeError(w, tenant, err)
		return nil, joined, false
	}
	return val, joined, true
}

// writeExplanation emits the 200 response for explain/autoexplain,
// advertising any degradations in a Warning header so even clients
// that only check headers see "this answer is simplified".
func (s *Server) writeExplanation(w http.ResponseWriter, fp string, ex *core.Explanation, steps []core.AutoStep, coalesced, includeCI bool) {
	blob, err := ex.Marshal(includeCI)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), Kind: "internal"})
		return
	}
	if n := len(ex.Degradations); n > 0 {
		w.Header().Set("Warning", fmt.Sprintf("199 gefd \"degraded result: %d recorded degradation(s)\"", n))
	}
	writeJSON(w, http.StatusOK, explainResponse{
		Fingerprint:  fp,
		Coalesced:    coalesced,
		Degradations: ex.Degradations,
		Steps:        steps,
		Explanation:  blob,
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	s.tenantStat(tenant, func(ts *TenantStats) { ts.Requests++ })
	var req explainRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, tenant, err)
		return
	}
	f, err := s.forestFor(req.Fingerprint)
	if err != nil {
		s.writeError(w, tenant, err)
		return
	}
	cfg := normalizeConfig(req.Config)
	if err := cfg.Validate(); err != nil {
		s.writeError(w, tenant, err)
		return
	}
	s.tenantStat(tenant, func(ts *TenantStats) { ts.family(cfg.Family) })
	key, err := requestKey("explain", req.Fingerprint, cfg)
	if err != nil {
		s.writeError(w, tenant, err)
		return
	}
	val, coalesced, ok := s.serveComputation(w, r, tenant, req.BudgetMS, key,
		func(cctx context.Context) (any, error) {
			return s.runExplain(cctx, tenant, f, cfg)
		})
	if !ok {
		return
	}
	s.writeExplanation(w, req.Fingerprint, val.(*core.Explanation), nil, coalesced, req.IncludeCI)
}

// autoResult carries AutoExplainCtx's pair through the coalescer.
type autoResult struct {
	ex    *core.Explanation
	steps []core.AutoStep
}

func (s *Server) handleAutoExplain(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	s.tenantStat(tenant, func(ts *TenantStats) { ts.Requests++ })
	var req autoRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, tenant, err)
		return
	}
	f, err := s.forestFor(req.Fingerprint)
	if err != nil {
		s.writeError(w, tenant, err)
		return
	}
	auto := req.Auto
	auto.Base = normalizeConfig(auto.Base)
	if err := auto.Base.Validate(); err != nil {
		s.writeError(w, tenant, err)
		return
	}
	key, err := requestKey("autoexplain", req.Fingerprint, auto)
	if err != nil {
		s.writeError(w, tenant, err)
		return
	}
	val, coalesced, ok := s.serveComputation(w, r, tenant, req.BudgetMS, key,
		func(cctx context.Context) (any, error) {
			return s.runAuto(cctx, tenant, f, auto)
		})
	if !ok {
		return
	}
	res := val.(*autoResult)
	s.writeExplanation(w, req.Fingerprint, res.ex, res.steps, coalesced, req.IncludeCI)
}

func (s *Server) handleShap(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	s.tenantStat(tenant, func(ts *TenantStats) { ts.Requests++ })
	var req shapRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, tenant, err)
		return
	}
	f, err := s.forestFor(req.Fingerprint)
	if err != nil {
		s.writeError(w, tenant, err)
		return
	}
	if len(req.X) != f.NumFeatures {
		s.writeError(w, tenant, fmt.Errorf("%w: x has %d features, forest expects %d",
			robust.ErrConfig, len(req.X), f.NumFeatures))
		return
	}
	for i, b := range req.Background {
		if len(b) != f.NumFeatures {
			s.writeError(w, tenant, fmt.Errorf("%w: background row %d has %d features, forest expects %d",
				robust.ErrConfig, i, len(b), f.NumFeatures))
			return
		}
	}
	key, err := requestKey("shap", req.Fingerprint, struct {
		X          []float64
		Background [][]float64
	}{req.X, req.Background})
	if err != nil {
		s.writeError(w, tenant, err)
		return
	}
	val, coalesced, ok := s.serveComputation(w, r, tenant, req.BudgetMS, key,
		func(cctx context.Context) (any, error) {
			return s.runShap(cctx, f, req.X, req.Background)
		})
	if !ok {
		return
	}
	res := val.(*shapResponse)
	writeJSON(w, http.StatusOK, shapResponse{
		Fingerprint: req.Fingerprint,
		Coalesced:   coalesced,
		Phi:         res.Phi,
		Base:        res.Base,
	})
}

// runExplain leads one explain computation, charging the engine-cache
// delta to the leading tenant.
func (s *Server) runExplain(ctx context.Context, tenant string, f *forest.Forest, cfg core.Config) (*core.Explanation, error) {
	ctx, sp := obs.Start(ctx, "serve.explain", obs.Str("tenant", tenant))
	defer sp.End()
	before := s.eng.CacheStats()
	ex, err := s.eng.ExplainCtx(ctx, f, cfg)
	s.accountEngine(tenant, before, s.eng.CacheStats())
	return ex, err
}

func (s *Server) runAuto(ctx context.Context, tenant string, f *forest.Forest, auto core.AutoConfig) (*autoResult, error) {
	ctx, sp := obs.Start(ctx, "serve.autoexplain", obs.Str("tenant", tenant))
	defer sp.End()
	before := s.eng.CacheStats()
	ex, steps, err := s.eng.AutoExplainCtx(ctx, f, auto)
	s.accountEngine(tenant, before, s.eng.CacheStats())
	if err != nil {
		return nil, err
	}
	return &autoResult{ex: ex, steps: steps}, nil
}

// runShap computes SHAP attributions. The TreeSHAP kernels take no
// context (they are fast relative to explanation fits), so the budget
// is enforced at the boundary: a request whose deadline has already
// passed is not started.
func (s *Server) runShap(ctx context.Context, f *forest.Forest, x []float64, background [][]float64) (*shapResponse, error) {
	_, sp := obs.Start(ctx, "serve.shap")
	defer sp.End()
	if err := ctx.Err(); err != nil {
		return nil, robust.CtxErr(err)
	}
	var phi []float64
	var base float64
	if len(background) > 0 {
		phi, base = shap.InterventionalValues(f, x, background)
	} else {
		phi, base = shap.Values(f, x)
	}
	return &shapResponse{Phi: phi, Base: base}, nil
}

func (s *Server) handleForestPost(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	f, err := forest.ReadFrom(r.Body)
	if err != nil {
		s.writeError(w, tenant, fmt.Errorf("%w: decoding forest: %v", robust.ErrConfig, err))
		return
	}
	fp, err := s.RegisterForest(f)
	if err != nil {
		s.writeError(w, tenant, err)
		return
	}
	writeJSON(w, http.StatusOK, forestInfo{
		Fingerprint: fp,
		Trees:       len(f.Trees),
		Nodes:       f.NumNodes(),
		Features:    f.NumFeatures,
	})
}

func (s *Server) handleForestList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	infos := make([]forestInfo, 0, len(s.forests))
	for fp, rf := range s.forests {
		infos = append(infos, forestInfo{Fingerprint: fp, Trees: rf.trees, Nodes: rf.nodes, Features: rf.features})
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Fingerprint < infos[j].Fingerprint })
	writeJSON(w, http.StatusOK, struct {
		Forests []forestInfo `json:"forests"`
	}{infos})
}

func (s *Server) handleForestDelete(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !s.dropForest(fp) {
		s.writeError(w, tenantOf(r), fmt.Errorf("forest %q: %w", fp, errNotFound))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Fingerprint string `json:"fingerprint"`
		Deleted     bool   `json:"deleted"`
	}{fp, true})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
