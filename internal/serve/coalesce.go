package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"gef/internal/obs"
	"gef/internal/robust"
)

// group is a single-flight coalescer: concurrent do calls with the same
// key share one computation. Unlike the classic singleflight shape, the
// computation's lifetime is decoupled from every caller — the leader's
// work runs in its own goroutine under a context built by leadCtx (the
// server's compute base capped by budget and drain deadlines), so a
// waiter cancelling its request never cancels, and can never poison,
// the shared result the remaining waiters are owed.
type group struct {
	// onPanic receives the recovered-panic error from a leader
	// goroutine (the server dumps the flight recorder there).
	onPanic func(error)

	mu    sync.Mutex
	calls map[string]*call
}

// call is one in-flight shared computation. val and err are written
// exactly once, before done is closed; the channel close publishes them
// to every waiter (happens-before via the close).
type call struct {
	done    chan struct{}
	val     any
	err     error
	waiters atomic.Int64
}

func newGroup(onPanic func(error)) *group {
	return &group{onPanic: onPanic, calls: make(map[string]*call)}
}

// do runs lead under key, coalescing with any in-flight computation for
// the same key. It returns (value, joined, error) where joined reports
// that this caller shared a computation started by an earlier request.
//
// The first caller for a key becomes the leader: lead runs in a
// detached goroutine under a context from leadCtx, and the leader's own
// wait — like every waiter's — is bounded by its request ctx. A caller
// whose ctx ends while waiting gets CtxErr(ctx.Err()) immediately; the
// computation keeps running for whoever remains (and, on success, its
// artifacts land in the shared engine cache either way).
//
// The map entry is removed before done is closed, so a request arriving
// after completion starts fresh — coalescing dedupes concurrent work,
// not history; cross-request reuse is the engine cache's job.
func (g *group) do(
	ctx context.Context,
	key string,
	leadCtx func() (context.Context, context.CancelFunc),
	lead func(context.Context) (any, error),
) (any, bool, error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters.Add(1)
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return nil, true, robust.CtxErr(ctx.Err())
		}
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// The shared computation must outlive any individual waiter —
	// including the leader request itself — so it cannot run on the
	// handler goroutine. Concurrency stays bounded: the closure queues
	// for an admission worker token before computing.
	//lint:ignore rawgo single-flight leader must be detached from every waiter; bounded by admission worker tokens
	go func() {
		cctx, cancel := leadCtx()
		defer func() {
			if rec := recover(); rec != nil {
				c.err = fmt.Errorf("panic in coalesced computation: %v", rec)
				obs.RecordError("serve.coalesce", c.err)
				if g.onPanic != nil {
					g.onPanic(c.err)
				}
			}
			cancel()
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
		if robust.Fire(robust.SiteCoalesce, -1, float64(c.waiters.Load())) {
			c.err = fmt.Errorf("%w: injected coalesce fault", robust.ErrNumerical)
			return
		}
		v, err := lead(cctx)
		c.val, c.err = v, typedCause(cctx, err)
	}()

	select {
	case <-c.done:
		return c.val, false, c.err
	case <-ctx.Done():
		return nil, false, robust.CtxErr(ctx.Err())
	}
}
