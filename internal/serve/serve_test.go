package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gef/internal/core"
	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gbdt"
)

// testForest trains a small g′ forest: real enough that every pipeline
// stage does work, small enough to keep handler tests fast.
func testForest(t *testing.T) *forest.Forest {
	t.Helper()
	ds := dataset.GPrime(300, 0.1, 7)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 10, NumLeaves: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// fastConfig is a quick explain configuration for endpoint tests.
func fastConfig() core.Config {
	return core.Config{NumUnivariate: 3, NumSamples: 500, Seed: 3}
}

// newTestServer stands up a Server with one registered forest behind an
// httptest listener.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server, string) {
	t.Helper()
	if opt.FlightDir == "" {
		opt.FlightDir = t.TempDir()
	}
	s := New(opt)
	fp, err := s.RegisterForest(testForest(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, fp
}

// doJSON posts body as JSON and returns the response with its payload.
func doJSON(t *testing.T, method, url, tenant string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(tenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

func TestExplainEndpoint(t *testing.T) {
	_, ts, fp := newTestServer(t, Options{})
	resp, payload := doJSON(t, http.MethodPost, ts.URL+"/v1/explain", "acme",
		explainRequest{Fingerprint: fp, Config: fastConfig()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, payload)
	}
	var out explainResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.Fingerprint != fp {
		t.Fatalf("fingerprint = %q, want %q", out.Fingerprint, fp)
	}
	ex, err := core.Unmarshal(out.Explanation)
	if err != nil {
		t.Fatalf("explanation blob does not round-trip: %v", err)
	}
	if len(ex.Features) == 0 {
		t.Fatal("explanation has no univariate components")
	}
}

func TestExplainUnknownForest(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	resp, payload := doJSON(t, http.MethodPost, ts.URL+"/v1/explain", "",
		explainRequest{Fingerprint: "fp-missing", Config: fastConfig()})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 (body %s)", resp.StatusCode, payload)
	}
	var eb errorBody
	if err := json.Unmarshal(payload, &eb); err != nil || eb.Kind != "not_found" {
		t.Fatalf("error body = %s (err %v), want kind not_found", payload, err)
	}
}

func TestExplainBadConfig(t *testing.T) {
	_, ts, fp := newTestServer(t, Options{})
	cfg := fastConfig()
	cfg.NumSamples = -1
	resp, payload := doJSON(t, http.MethodPost, ts.URL+"/v1/explain", "",
		explainRequest{Fingerprint: fp, Config: cfg})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, payload)
	}
	var eb errorBody
	if err := json.Unmarshal(payload, &eb); err != nil || eb.Kind != "config" {
		t.Fatalf("error body = %s, want kind config", payload)
	}
}

// TestExplainUnknownFamily checks the typed 400 contract for a family
// name the registry does not know: kind "config", message naming the
// offending family, and no computation admitted.
func TestExplainUnknownFamily(t *testing.T) {
	_, ts, fp := newTestServer(t, Options{})
	cfg := fastConfig()
	cfg.Family = "nope"
	resp, payload := doJSON(t, http.MethodPost, ts.URL+"/v1/explain", "",
		explainRequest{Fingerprint: fp, Config: cfg})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, payload)
	}
	var eb errorBody
	if err := json.Unmarshal(payload, &eb); err != nil || eb.Kind != "config" {
		t.Fatalf("error body = %s, want kind config", payload)
	}
	if !strings.Contains(eb.Error, "nope") {
		t.Fatalf("error message %q does not name the unknown family", eb.Error)
	}
}

// TestExplainFamilyRules drives a non-GAM family end to end through the
// server: 200, family tag on the deserialized explanation, and the
// per-tenant family ledger records it.
func TestExplainFamilyRules(t *testing.T) {
	s, ts, fp := newTestServer(t, Options{})
	cfg := fastConfig()
	cfg.Family = core.FamilyRules
	resp, payload := doJSON(t, http.MethodPost, ts.URL+"/v1/explain", "acme",
		explainRequest{Fingerprint: fp, Config: cfg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, payload)
	}
	var out explainResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	ex, err := core.Unmarshal(out.Explanation)
	if err != nil {
		t.Fatalf("rules explanation does not round-trip: %v", err)
	}
	if ex.Family != core.FamilyRules {
		t.Fatalf("family = %q, want %q", ex.Family, core.FamilyRules)
	}
	st := s.Stats()
	if n := st.Tenants["acme"].Families[core.FamilyRules]; n != 1 {
		t.Fatalf("tenant family ledger = %v, want rules:1", st.Tenants["acme"].Families)
	}
	if n := st.Families[core.FamilyRules]; n != 1 {
		t.Fatalf("aggregate family ledger = %v, want rules:1", st.Families)
	}
}

func TestExplainMalformedBody(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	resp, err := http.Post(ts.URL+"/v1/explain", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestAutoExplainEndpoint(t *testing.T) {
	_, ts, fp := newTestServer(t, Options{})
	resp, payload := doJSON(t, http.MethodPost, ts.URL+"/v1/autoexplain", "acme",
		autoRequest{Fingerprint: fp, Auto: core.AutoConfig{Base: fastConfig(), MaxUnivariate: 3}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, payload)
	}
	var out explainResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Steps) == 0 {
		t.Fatal("autoexplain returned no search steps")
	}
	if _, err := core.Unmarshal(out.Explanation); err != nil {
		t.Fatal(err)
	}
}

func TestShapEndpoint(t *testing.T) {
	s, ts, fp := newTestServer(t, Options{})
	x := []float64{0.1, 0.5, 0.9, 0.3, 0.7}
	resp, payload := doJSON(t, http.MethodPost, ts.URL+"/v1/shap", "acme",
		shapRequest{Fingerprint: fp, X: x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, payload)
	}
	var out shapResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Phi) != len(x) {
		t.Fatalf("len(phi) = %d, want %d", len(out.Phi), len(x))
	}
	// Local accuracy: base + Σφ must reconstruct the forest prediction.
	f, err := s.forestFor(fp)
	if err != nil {
		t.Fatal(err)
	}
	sum := out.Base
	for _, p := range out.Phi {
		sum += p
	}
	if want := f.Predict(x); math.Abs(sum-want) > 1e-9 {
		t.Fatalf("base+Σφ = %g, forest predicts %g", sum, want)
	}
}

func TestShapWrongFeatureCount(t *testing.T) {
	_, ts, fp := newTestServer(t, Options{})
	resp, payload := doJSON(t, http.MethodPost, ts.URL+"/v1/shap", "",
		shapRequest{Fingerprint: fp, X: []float64{1, 2}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, payload)
	}
}

func TestForestRegistryLifecycle(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	blob, err := forest.Marshal(testForest(t))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/forests", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var info forestInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.Fingerprint == "" {
		t.Fatalf("register: status %d, info %+v", resp.StatusCode, info)
	}

	listResp, listPayload := doJSON(t, http.MethodGet, ts.URL+"/v1/forests", "", nil)
	if listResp.StatusCode != http.StatusOK || !bytes.Contains(listPayload, []byte(info.Fingerprint)) {
		t.Fatalf("list: status %d, body %s", listResp.StatusCode, listPayload)
	}

	delResp, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/forests/"+info.Fingerprint, "", nil)
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", delResp.StatusCode)
	}
	delAgain, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/forests/"+info.Fingerprint, "", nil)
	if delAgain.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete: status %d, want 404", delAgain.StatusCode)
	}
	exResp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/explain", "",
		explainRequest{Fingerprint: info.Fingerprint, Config: fastConfig()})
	if exResp.StatusCode != http.StatusNotFound {
		t.Fatalf("explain after delete: status %d, want 404", exResp.StatusCode)
	}
}

func TestForestPostRejectsGarbage(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	resp, err := http.Post(ts.URL+"/v1/forests", "application/json", strings.NewReader(`{"version":1,"forest":{"trees":[]}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestTenantAccounting checks the per-tenant ledgers: requests land
// under the caller's X-Tenant, engine cache hits/misses are charged to
// the leading tenant, and a second tenant re-running the same config
// sees engine hits for work the first tenant warmed.
func TestTenantAccounting(t *testing.T) {
	s, ts, fp := newTestServer(t, Options{})
	req := explainRequest{Fingerprint: fp, Config: fastConfig()}
	if resp, payload := doJSON(t, http.MethodPost, ts.URL+"/v1/explain", "alpha", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha explain: %d %s", resp.StatusCode, payload)
	}
	if resp, payload := doJSON(t, http.MethodPost, ts.URL+"/v1/explain", "beta", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("beta explain: %d %s", resp.StatusCode, payload)
	}
	st := s.Stats()
	alpha, beta := st.Tenants["alpha"], st.Tenants["beta"]
	if alpha.Requests != 1 || beta.Requests != 1 {
		t.Fatalf("requests: alpha %d beta %d, want 1 and 1", alpha.Requests, beta.Requests)
	}
	if alpha.EngineMisses == 0 {
		t.Fatalf("alpha (cold) engine misses = 0, want > 0: %+v", alpha)
	}
	if beta.EngineHits == 0 {
		t.Fatalf("beta (warm, same config) engine hits = 0, want > 0: %+v", beta)
	}
	if st.Requests != alpha.Requests+beta.Requests {
		t.Fatalf("total requests %d ≠ sum of tenants", st.Requests)
	}
}

// TestTenantOverflowFoldsIntoOther bounds the accounting map.
func TestTenantOverflowFoldsIntoOther(t *testing.T) {
	s, ts, fp := newTestServer(t, Options{MaxTenants: 2})
	for i := 0; i < 4; i++ {
		doJSON(t, http.MethodPost, ts.URL+"/v1/shap", fmt.Sprintf("t%d", i),
			shapRequest{Fingerprint: fp, X: []float64{0, 0, 0, 0, 0}})
	}
	st := s.Stats()
	if len(st.Tenants) > 3 { // 2 named + "other"
		t.Fatalf("tenant map grew to %d entries despite MaxTenants=2: %v", len(st.Tenants), st.Tenants)
	}
	if st.Tenants[otherTenant].Requests == 0 {
		t.Fatalf("overflow tenants not folded into %q: %v", otherTenant, st.Tenants)
	}
}

func TestTelemetryEndpoints(t *testing.T) {
	_, ts, fp := newTestServer(t, Options{})
	doJSON(t, http.MethodPost, ts.URL+"/v1/shap", "", shapRequest{Fingerprint: fp, X: []float64{0, 0, 0, 0, 0}})
	for _, path := range []string{"/healthz", "/metrics", "/flight", "/v1/stats"} {
		resp, payload := doJSON(t, http.MethodGet, ts.URL+path, "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if len(payload) == 0 {
			t.Fatalf("%s: empty body", path)
		}
	}
}

// TestPanicRecoveryMiddleware drives a panicking handler through the
// instrumentation wrapper: the client gets a typed 500 and the flight
// recorder is dumped to FlightDir.
func TestPanicRecoveryMiddleware(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{FlightDir: dir})
	defer s.Close()
	h := s.instrument(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/explain", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Kind != "panic" {
		t.Fatalf("body = %s, want kind panic", rec.Body.Bytes())
	}
	dumps, err := filepath.Glob(filepath.Join(dir, "gefd-panic-*.json"))
	if err != nil || len(dumps) == 0 {
		t.Fatalf("no flight dump written to %s (err %v)", dir, err)
	}
	if fi, err := os.Stat(dumps[0]); err != nil || fi.Size() == 0 {
		t.Fatalf("flight dump empty: %v", err)
	}
}

// TestDegradedExplanationWarns forces the degradation ladder via a
// config the fit cannot honor and checks the 200 + Warning contract.
func TestDegradedExplanationWarns(t *testing.T) {
	_, ts, fp := newTestServer(t, Options{})
	cfg := fastConfig()
	cfg.NumInteractions = 2 // tensor terms on a tiny sample often degrade
	cfg.NumSamples = 200
	resp, payload := doJSON(t, http.MethodPost, ts.URL+"/v1/explain", "", explainRequest{Fingerprint: fp, Config: cfg})
	if resp.StatusCode != http.StatusOK {
		t.Skipf("config errored instead of degrading (status %d); ladder covered elsewhere", resp.StatusCode)
	}
	var out explainResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Degradations) > 0 && resp.Header.Get("Warning") == "" {
		t.Fatalf("degradations %v present but no Warning header", out.Degradations)
	}
}

func TestNormalizeConfigStable(t *testing.T) {
	// An empty config and an explicitly-default config must produce the
	// same coalescing key.
	a, err := requestKey("explain", "fp", normalizeConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := requestKey("explain", "fp", normalizeConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	c, err := requestKey("explain", "fp", normalizeConfig(core.Config{NumUnivariate: 5, NumSamples: 20000}))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("distinct configs share a key")
	}
	if a != c {
		t.Fatal("zero config and explicit defaults hash differently")
	}
	d, err := requestKey("autoexplain", "fp", normalizeConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if a == d {
		t.Fatal("request kind not part of the key")
	}
}

// TestRequestKeyDistinctPerFamily guards the coalescing contract under
// family mixes: an omitted family and an explicit "gam" coalesce, while
// each distinct family hashes to its own key so a rules request can
// never be answered with a smoother explanation.
func TestRequestKeyDistinctPerFamily(t *testing.T) {
	key := func(fam string) string {
		cfg := fastConfig()
		cfg.Family = fam
		k, err := requestKey("explain", "fp", normalizeConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if key("") != key(core.FamilyGAM) {
		t.Fatal("omitted family and explicit gam hash differently")
	}
	seen := map[string]string{}
	for _, fam := range []string{core.FamilyGAM, core.FamilyRules, core.FamilySmoother, core.FamilyLIME, core.FamilyDistill} {
		k := key(fam)
		if prev, dup := seen[k]; dup {
			t.Fatalf("families %q and %q collide on coalescing key %s", prev, fam, k)
		}
		seen[k] = fam
	}
}
