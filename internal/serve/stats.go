package serve

import (
	"net/http"
	"sort"
	"time"

	"gef/internal/core"
)

// tenantHeader names the request header carrying the tenant identity.
// Absent or empty → "anon". Tenancy here is accounting, not isolation:
// every tenant shares one engine cache on purpose (a popular forest
// warmed by one tenant serves the next one from cache), and the
// per-tenant ledgers make that sharing auditable.
const tenantHeader = "X-Tenant"

// otherTenant aggregates tenants past Options.MaxTenants, so a client
// spraying random tenant names cannot grow the accounting map without
// bound.
const otherTenant = "other"

func tenantOf(r *http.Request) string {
	if t := r.Header.Get(tenantHeader); t != "" {
		return t
	}
	return "anon"
}

// TenantStats is one tenant's serving ledger. Engine hits/misses are
// cache-stat deltas observed around computations led on the tenant's
// behalf; a coalesced waiter inherits no engine delta (its work was
// charged to the leading tenant), which is exactly what CoalesceHits
// records.
type TenantStats struct {
	Requests      int64 `json:"requests"`
	Shed          int64 `json:"shed"`
	Errors        int64 `json:"errors"`
	CoalesceHits  int64 `json:"coalesce_hits"`
	CoalesceLeads int64 `json:"coalesce_leads"`
	EngineHits    int64 `json:"engine_hits"`
	EngineMisses  int64 `json:"engine_misses"`
	// Families counts /v1/explain requests per explainer family (after
	// normalization, so an omitted family counts as "gam"). Requests
	// rejected before validation are not counted.
	Families map[string]int64 `json:"families,omitempty"`
}

// family bumps the tenant's per-family request counter. Callers hold
// the server mutex (via tenantStat).
func (ts *TenantStats) family(name string) {
	if ts.Families == nil {
		ts.Families = make(map[string]int64)
	}
	ts.Families[name]++
}

// cloneFamilies deep-copies the family map so Stats snapshots do not
// alias the live ledger.
func (ts TenantStats) cloneFamilies() map[string]int64 {
	if ts.Families == nil {
		return nil
	}
	out := make(map[string]int64, len(ts.Families))
	for k, v := range ts.Families {
		out[k] = v
	}
	return out
}

// Stats is the /v1/stats payload.
type Stats struct {
	UptimeS       float64                `json:"uptime_s"`
	Draining      bool                   `json:"draining"`
	Forests       int                    `json:"forests"`
	Admitted      int64                  `json:"admitted"`
	InFlight      int                    `json:"in_flight"`
	Requests      int64                  `json:"requests"`
	Shed          int64                  `json:"shed"`
	Errors        int64                  `json:"errors"`
	CoalesceHits  int64                  `json:"coalesce_hits"`
	CoalesceLeads int64                  `json:"coalesce_leads"`
	// Families aggregates per-family explain counts over all tenants.
	Families map[string]int64       `json:"families,omitempty"`
	Engine   core.CacheStats        `json:"engine"`
	Tenants  map[string]TenantStats `json:"tenants"`
}

// tenantStat applies f to the named tenant's ledger, creating it on
// first sight and folding overflow tenants into otherTenant.
func (s *Server) tenantStat(name string, f func(*TenantStats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tenants[name]
	if !ok {
		if len(s.tenants) >= s.opt.MaxTenants {
			name = otherTenant
			ts = s.tenants[name]
		}
		if ts == nil {
			ts = &TenantStats{}
			s.tenants[name] = ts
		}
	}
	f(ts)
}

// accountEngine charges the engine-cache delta of a led computation to
// the leading tenant. Under concurrent leaders the attribution is
// approximate — deltas of overlapping computations interleave — but the
// totals are exact, and per-tenant numbers are exact whenever requests
// for a tenant are serialized (as they are in tests).
func (s *Server) accountEngine(tenant string, before, after core.CacheStats) {
	dh, dm := after.Hits-before.Hits, after.Misses-before.Misses
	if dh == 0 && dm == 0 {
		return
	}
	s.tenantStat(tenant, func(ts *TenantStats) {
		ts.EngineHits += dh
		ts.EngineMisses += dm
	})
}

// Stats snapshots the serving ledgers. Totals are summed over tenants
// in sorted key order (deterministic output byte-for-byte aside from
// uptime).
func (s *Server) Stats() Stats {
	s.mu.Lock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	out := Stats{
		UptimeS:  time.Since(s.started).Seconds(),
		Forests:  len(s.forests),
		Admitted: s.adm.admitted.Load(),
		InFlight: len(s.adm.tokens),
		Tenants:  make(map[string]TenantStats, len(names)),
	}
	for _, name := range names {
		ts := *s.tenants[name]
		ts.Families = ts.cloneFamilies()
		out.Tenants[name] = ts
		out.Requests += ts.Requests
		out.Shed += ts.Shed
		out.Errors += ts.Errors
		out.CoalesceHits += ts.CoalesceHits
		out.CoalesceLeads += ts.CoalesceLeads
		for fam, n := range ts.Families {
			if out.Families == nil {
				out.Families = make(map[string]int64)
			}
			out.Families[fam] += n
		}
	}
	s.mu.Unlock()
	out.Draining = s.Draining()
	out.Engine = s.eng.CacheStats()
	return out
}
