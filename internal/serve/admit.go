package serve

import (
	"context"
	"fmt"
	"sync/atomic"

	"gef/internal/robust"
)

// admission is the server's load-shedding front door. It bounds two
// things independently:
//
//   - the admitted set — every request currently inside the server,
//     whether waiting for a worker token, waiting on a coalesced
//     computation, or computing. Arrivals beyond max are shed
//     immediately with 429: a full admitted set means the server is
//     already holding as much deferred work as it is willing to owe.
//
//   - worker tokens — how many computations may run at once (sized
//     from par.Workers() by default, so the compute pool and the HTTP
//     layer agree on the machine's parallelism). Admitted leaders
//     queue for a token only as long as their deadline allows; an
//     exhausted budget while queued is a 504, not a hang.
//
// Shedding is deliberately cheap — one atomic add and compare — so the
// overloaded path costs near nothing, which is the point of admission
// control: the server stays responsive precisely when it is busiest.
type admission struct {
	max      int64 // admitted-set bound: MaxInFlight + MaxQueue
	inflight int64 // worker-token count, for the shed message
	admitted atomic.Int64
	tokens   chan struct{}
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{
		max:      int64(maxInFlight + maxQueue),
		inflight: int64(maxInFlight),
		tokens:   make(chan struct{}, maxInFlight),
	}
}

// enter admits a request into the bounded admitted set or sheds it.
// The serve.admit fault site sees the pre-admission depth, so a
// FailBelow plan sheds only while the set is shallower than its
// threshold. Draining servers shed every new arrival: drain means
// finish what you have, not take on more.
func (a *admission) enter(draining bool) (func(), error) {
	n := a.admitted.Add(1)
	depth := float64(n - 1)
	switch {
	case draining:
		a.admitted.Add(-1)
		return nil, fmt.Errorf("%w: server draining", errShed)
	case n > a.max:
		a.admitted.Add(-1)
		return nil, fmt.Errorf("%w: %d requests admitted (max %d = %d workers + queue)",
			errShed, n-1, a.max, a.inflight)
	case robust.Fire(robust.SiteAdmit, -1, depth):
		a.admitted.Add(-1)
		return nil, fmt.Errorf("%w: injected admission fault at depth %d", errShed, n-1)
	}
	gAdmitted.Set(float64(n))
	return func() {
		gAdmitted.Set(float64(a.admitted.Add(-1)))
	}, nil
}

// token blocks until a worker token frees up or ctx ends. The returned
// release must be called exactly once. A deadline expiry while queued
// surfaces as ErrDeadline (→ 504) via CtxErr.
func (a *admission) token(ctx context.Context) (func(), error) {
	select {
	case a.tokens <- struct{}{}:
		gInFlight.Set(float64(len(a.tokens)))
		return func() {
			<-a.tokens
			gInFlight.Set(float64(len(a.tokens)))
		}, nil
	case <-ctx.Done():
		return nil, robust.CtxErr(ctx.Err())
	}
}
