package par

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

// withWorkers runs fn with the worker count pinned to n, restoring the
// default afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	fn()
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		for _, n := range []int{1, 2, 31, 32, 33, 1000} {
			withWorkers(t, workers, func() {
				visits := make([]int32, n)
				err := For(context.Background(), n, 0, func(c, lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				if err != nil {
					t.Fatalf("workers=%d n=%d: For: %v", workers, n, err)
				}
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
					}
				}
			})
		}
	}
}

func TestForChunkBoundariesFixed(t *testing.T) {
	// Chunk boundaries must be a pure function of (n, chunks), not of
	// the worker count: record (lo, hi) per chunk at several worker
	// counts and require identical grids.
	const n, chunks = 1000, 8
	type span struct{ lo, hi int }
	grid := func(workers int) []span {
		var out []span
		withWorkers(t, workers, func() {
			out = make([]span, chunks)
			err := For(context.Background(), n, chunks, func(c, lo, hi int) {
				out[c] = span{lo, hi}
			})
			if err != nil {
				t.Fatalf("For: %v", err)
			}
		})
		return out
	}
	ref := grid(1)
	for _, w := range []int{2, 3, runtime.GOMAXPROCS(0)} {
		got := grid(w)
		for c := range ref {
			if got[c] != ref[c] {
				t.Fatalf("workers=%d chunk %d = %v, want %v", w, c, got[c], ref[c])
			}
		}
	}
	// And the grid tiles [0, n) exactly.
	if ref[0].lo != 0 || ref[chunks-1].hi != n {
		t.Fatalf("grid does not span [0,%d): %v", n, ref)
	}
	for c := 1; c < chunks; c++ {
		if ref[c].lo != ref[c-1].hi {
			t.Fatalf("gap between chunk %d and %d: %v", c-1, c, ref)
		}
	}
}

func TestMapReduceBitwiseStableAcrossWorkers(t *testing.T) {
	// Summing adversarially-scaled values is where float associativity
	// bites; the ordered fold must give the identical bit pattern at
	// every worker count.
	const n = 4096
	vals := make([]float64, n)
	rng := rand.New(rand.NewSource(7))
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1e8 * rng.Float64()
	}
	sum := func(workers int) float64 {
		var s float64
		withWorkers(t, workers, func() {
			var err error
			s, err = MapReduce(context.Background(), n, 0,
				func(c, lo, hi int) float64 {
					var acc float64
					for i := lo; i < hi; i++ {
						acc += vals[i]
					}
					return acc
				},
				func(a, b float64) float64 { return a + b })
			if err != nil {
				t.Fatalf("MapReduce: %v", err)
			}
		})
		return s
	}
	ref := sum(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if got := sum(w); got != ref {
			t.Fatalf("workers=%d sum=%x, workers=1 sum=%x", w, got, ref)
		}
	}
}

func TestMapReduceReductionOrder(t *testing.T) {
	// With a non-commutative reduce the fold order is observable:
	// concatenating chunk indices must always yield ascending order.
	const n, chunks = 100, 10
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			got, err := MapReduce(context.Background(), n, chunks,
				func(c, lo, hi int) []int { return []int{c} },
				func(a, b []int) []int { return append(a, b...) })
			if err != nil {
				t.Fatalf("MapReduce: %v", err)
			}
			if len(got) != chunks {
				t.Fatalf("got %d chunks, want %d", len(got), chunks)
			}
			for i, c := range got {
				if c != i {
					t.Fatalf("workers=%d reduction order %v not ascending", w, got)
				}
			}
		})
	}
}

func TestForCanceledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			var ran atomic.Int64
			err := For(ctx, 1000, 0, func(c, lo, hi int) { ran.Add(1) })
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
			}
			// Parallel workers may each observe cancellation only after
			// claiming one chunk; inline execution runs zero. Either way
			// the vast majority of chunks must be skipped.
			if n := ran.Load(); n > int64(w) {
				t.Fatalf("workers=%d: %d chunks ran under canceled context", w, n)
			}
		})
	}
}

func TestForCancellationMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := For(ctx, 1000, 100, func(c, lo, hi int) {
		if ran.Add(1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 100 {
		t.Fatalf("all %d chunks ran despite mid-flight cancel", n)
	}
}

func TestMapReduceCanceledReturnsZero(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := MapReduce(ctx, 100, 0,
		func(c, lo, hi int) float64 { return 1 },
		func(a, b float64) float64 { return a + b })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got != 0 {
		t.Fatalf("got %v on cancellation, want zero value", got)
	}
}

func TestForPanicPropagates(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", w, r)
				}
			}()
			_ = For(context.Background(), 100, 0, func(c, lo, hi int) {
				if c == 5 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: For returned instead of panicking", w)
		})
	}
	// Helper tokens must have been released despite the panics.
	if tok := helperTokens.Load(); tok != 0 {
		t.Fatalf("%d helper tokens leaked after panic", tok)
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	withWorkers(t, 4, func() {
		var total atomic.Int64
		err := For(context.Background(), 16, 16, func(c, lo, hi int) {
			_ = For(context.Background(), 100, 0, func(ic, ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		})
		if err != nil {
			t.Fatalf("nested For: %v", err)
		}
		if got := total.Load(); got != 16*100 {
			t.Fatalf("nested inner work = %d, want %d", got, 16*100)
		}
	})
	if tok := helperTokens.Load(); tok != 0 {
		t.Fatalf("%d helper tokens leaked after nested run", tok)
	}
}

func TestWorkersAndSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(0)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetWorkers(-5)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d after SetWorkers(-5), want GOMAXPROCS", got)
	}
}

func TestSplitSeedStreamsIndependent(t *testing.T) {
	// Distinct (seed, stream) pairs must give distinct child seeds, and
	// the mapping must be stable (pinned values guard against accidental
	// constant changes that would silently reshuffle every RNG stream).
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 4; seed++ {
		for i := 0; i < 64; i++ {
			s := SplitSeed(seed, i)
			if seen[s] {
				t.Fatalf("SplitSeed collision at seed=%d i=%d", seed, i)
			}
			seen[s] = true
		}
	}
	if a, b := SplitSeed(42, 7), SplitSeed(42, 7); a != b {
		t.Fatalf("SplitSeed not deterministic: %d vs %d", a, b)
	}
}

func TestChunkCount(t *testing.T) {
	cases := []struct{ n, chunks, want int }{
		{100, 0, 32},
		{100, -1, 32},
		{10, 0, 10},
		{100, 4, 4},
		{3, 8, 3},
	}
	for _, c := range cases {
		if got := chunkCount(c.n, c.chunks); got != c.want {
			t.Fatalf("chunkCount(%d, %d) = %d, want %d", c.n, c.chunks, got, c.want)
		}
	}
}
