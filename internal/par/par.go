// Package par is GEF's deterministic parallel runtime. Every stage of
// the pipeline — forest labeling of D*, the GAM's XᵀWX accumulation and
// λ-grid GCV search, P-IRLS reweighting, GBDT histogram building,
// per-instance TreeSHAP — is embarrassingly parallel over rows, features
// or grid points, and all of it funnels through the two primitives here
// (the geflint `rawgo` analyzer enforces that no other package spawns
// goroutines directly).
//
// # Determinism contract
//
// Results are bitwise identical at any worker count, including
// workers=1. Two rules make this hold:
//
//  1. Fixed chunk boundaries. The index range [0, n) is split into a
//     chunk count that depends only on n and the caller-supplied chunk
//     hint — never on the worker count or on runtime load. Chunk c
//     covers [c·n/chunks, (c+1)·n/chunks).
//  2. Ordered reduction. MapReduce folds the per-chunk partial results
//     in ascending chunk order, whatever order the chunks finished in.
//     Floating-point accumulation order is therefore a pure function of
//     (n, chunks), not of scheduling.
//
// Chunks are claimed dynamically (an atomic cursor), which is safe
// because chunk *assignment* never influences results — only chunk
// *boundaries* and *reduction order* do, and both are fixed.
//
// # Scheduling
//
// There is no persistent pool. A bounded process-wide helper-token
// budget (Workers()−1 tokens) caps the number of extra goroutines alive
// across all concurrent For calls; the calling goroutine always works
// too. Nested calls — a parallel grid search whose per-fold training
// itself calls For — degrade gracefully: when no tokens are free the
// inner call runs its chunks inline, in ascending order, which by the
// contract above is bitwise identical to running them in parallel.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"gef/internal/obs"
)

// DefaultChunks is the chunk count used when callers pass chunks <= 0.
// It is a fixed constant — independent of GOMAXPROCS and SetWorkers —
// because chunk boundaries feed floating-point reduction order. 32
// chunks keep up to 32 workers busy while bounding per-call partial
// state.
const DefaultChunks = 32

// Metrics instruments (hoisted; see internal/obs). Chunk counts are
// labeled by the calling site — the name of the span carried by ctx —
// so par.chunks{site="shap.explain"} separates the SHAP hot path from
// sampling fan-outs. Calls with no live span land on site="untraced".
var (
	mForCalls  = obs.Metrics().Counter("par.for_calls")
	mChunks    = obs.Metrics().CounterVec("par.chunks", "site")
	mInline    = obs.Metrics().Counter("par.inline_calls")
	mGoroutine = obs.Metrics().Counter("par.helpers_spawned")
	gWorkers   = obs.Metrics().Gauge("par.workers")
)

// site resolves the metrics label for a For call from the span in ctx.
func site(ctx context.Context) string {
	if name := obs.FromContext(ctx).Name(); name != "" {
		return name
	}
	return "untraced"
}

// configured holds the worker count set by SetWorkers; 0 means "use
// GOMAXPROCS at call time".
var configured atomic.Int64

func init() { gWorkers.Set(float64(Workers())) }

// SetWorkers fixes the worker count used by For and MapReduce. n <= 0
// restores the default (GOMAXPROCS). The setting is process-wide — it
// is the CLIs' -workers flag — and changing it never changes results,
// only how many goroutines compute them.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	configured.Store(int64(n))
	gWorkers.Set(float64(Workers()))
}

// Workers returns the effective worker count: the SetWorkers value if
// set, otherwise GOMAXPROCS.
func Workers() int {
	if w := configured.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// helperTokens counts extra goroutines currently alive across all For
// calls; it is capped at Workers()−1 so total active workers (helpers
// plus the calling goroutines) track the configured parallelism.
var helperTokens atomic.Int64

func acquireHelper() bool {
	limit := int64(Workers() - 1)
	for {
		cur := helperTokens.Load()
		if cur >= limit {
			return false
		}
		if helperTokens.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func releaseHelper() { helperTokens.Add(-1) }

// chunkCount resolves the caller's chunk hint: <= 0 selects
// DefaultChunks, and the count never exceeds n. The result depends only
// on (n, chunks).
func chunkCount(n, chunks int) int {
	if chunks <= 0 {
		chunks = DefaultChunks
	}
	if chunks > n {
		chunks = n
	}
	return chunks
}

// For runs body over the index range [0, n) split into the fixed chunk
// grid described in the package comment. body(c, lo, hi) processes
// half-open [lo, hi) and must only write state owned by that range (or
// by chunk index c). Bodies run concurrently on up to Workers()
// goroutines; with one worker (or no free helper tokens) chunks run
// inline in ascending order, which produces identical results.
//
// Cancellation: when ctx is canceled no new chunks are started and For
// returns ctx.Err(); chunks already running finish. A caller seeing a
// non-nil error must treat the outputs as partial and discard them.
func For(ctx context.Context, n, chunks int, body func(chunk, lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	chunks = chunkCount(n, chunks)
	mForCalls.Inc()
	mChunks.With(site(ctx)).Add(int64(chunks))

	helpers := 0
	if chunks > 1 {
		for helpers < chunks-1 && acquireHelper() {
			helpers++
		}
	}
	if helpers == 0 {
		mInline.Inc()
		for c := 0; c < chunks; c++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			body(c, c*n/chunks, (c+1)*n/chunks)
		}
		return ctx.Err()
	}
	mGoroutine.Add(int64(helpers))

	var (
		next     atomic.Int64
		panicked atomic.Pointer[panicBox]
	)
	run := func() {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &panicBox{val: r})
			}
		}()
		for panicked.Load() == nil && ctx.Err() == nil {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			body(c, c*n/chunks, (c+1)*n/chunks)
		}
	}
	var wg sync.WaitGroup
	wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		go func() {
			defer wg.Done()
			defer releaseHelper()
			run()
		}()
	}
	run()
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.val)
	}
	return ctx.Err()
}

// panicBox carries the first body panic across goroutines so For can
// re-panic it on the calling goroutine.
type panicBox struct{ val any }

// MapReduce maps the fixed chunk grid over [0, n) and folds the
// per-chunk results in ascending chunk order: the return value is
// reduce(...reduce(reduce(m₀, m₁), m₂)..., m_{chunks−1}) where m_c =
// mapf(c, lo_c, hi_c). Because both the chunk boundaries and the fold
// order are fixed, the result is bitwise identical at any worker count.
// reduce may mutate and return its first argument.
//
// On cancellation the zero T and ctx.Err() are returned.
func MapReduce[T any](ctx context.Context, n, chunks int, mapf func(chunk, lo, hi int) T, reduce func(a, b T) T) (T, error) {
	var zero T
	if n <= 0 {
		return zero, ctx.Err()
	}
	chunks = chunkCount(n, chunks)
	partial := make([]T, chunks)
	if err := For(ctx, n, chunks, func(c, lo, hi int) {
		partial[c] = mapf(c, lo, hi)
	}); err != nil {
		return zero, err
	}
	acc := partial[0]
	for c := 1; c < chunks; c++ {
		acc = reduce(acc, partial[c])
	}
	return acc, nil
}

// SplitSeed derives an independent, deterministic child seed for stream
// index i from a base seed, via one splitmix64 round. Parallel or
// reordered consumers (boosting iterations, RF trees) each seed their
// own rand.Rand from SplitSeed(seed, i) so no draw count in one stream
// can perturb another — the fix for sampling streams that previously
// shared one sequential source.
func SplitSeed(seed int64, i int) int64 {
	z := uint64(seed) + (uint64(i)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
