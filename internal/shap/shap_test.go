package shap

import (
	"math"
	"math/rand"
	"testing"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gbdt"
)

// bruteForceShap computes exact Shapley values for the path-dependent
// value function v(S) = E[f(x) | x_S] by exhaustive subset enumeration —
// exponential, test-only reference.
func bruteForceShap(f *forest.Forest, x []float64) []float64 {
	d := f.NumFeatures
	phi := make([]float64, d)
	var fact func(n int) float64
	fact = func(n int) float64 {
		if n <= 1 {
			return 1
		}
		return float64(n) * fact(n-1)
	}
	value := func(mask int) float64 {
		v := f.BaseScore
		for ti := range f.Trees {
			v += condExpect(&f.Trees[ti], 0, x, mask)
		}
		return v
	}
	for i := 0; i < d; i++ {
		for mask := 0; mask < 1<<d; mask++ {
			if mask&(1<<i) != 0 {
				continue
			}
			s := popcount(mask)
			w := fact(s) * fact(d-s-1) / fact(d)
			phi[i] += w * (value(mask|1<<i) - value(mask))
		}
	}
	return phi
}

// condExpect traverses the tree following x for features in the mask and
// averaging by covers otherwise.
func condExpect(t *forest.Tree, i int, x []float64, mask int) float64 {
	n := &t.Nodes[i]
	if n.IsLeaf() {
		return n.Value
	}
	if mask&(1<<n.Feature) != 0 {
		if x[n.Feature] <= n.Threshold {
			return condExpect(t, n.Left, x, mask)
		}
		return condExpect(t, n.Right, x, mask)
	}
	l, r := &t.Nodes[n.Left], &t.Nodes[n.Right]
	return (l.Cover*condExpect(t, n.Left, x, mask) + r.Cover*condExpect(t, n.Right, x, mask)) / n.Cover
}

func popcount(m int) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}

// depth2Forest builds a 2-feature forest with interacting splits and
// consistent covers.
func depth2Forest() *forest.Forest {
	return &forest.Forest{
		Trees: []forest.Tree{
			{Nodes: []forest.Node{
				{Feature: 0, Threshold: 0.5, Left: 1, Right: 2, Gain: 5, Cover: 100},
				{Feature: 1, Threshold: 0.3, Left: 3, Right: 4, Gain: 2, Cover: 60},
				{Left: -1, Right: -1, Value: 3.0, Cover: 40},
				{Left: -1, Right: -1, Value: -1.0, Cover: 20},
				{Left: -1, Right: -1, Value: 1.5, Cover: 40},
			}},
			{Nodes: []forest.Node{
				{Feature: 1, Threshold: 0.7, Left: 1, Right: 2, Gain: 3, Cover: 100},
				{Left: -1, Right: -1, Value: -0.5, Cover: 70},
				{Left: -1, Right: -1, Value: 2.0, Cover: 30},
			}},
		},
		NumFeatures: 2,
		BaseScore:   0.25,
		Objective:   forest.Regression,
	}
}

func TestValuesMatchBruteForceDepth2(t *testing.T) {
	f := depth2Forest()
	points := [][]float64{
		{0.2, 0.1}, {0.2, 0.5}, {0.2, 0.9},
		{0.8, 0.1}, {0.8, 0.5}, {0.8, 0.9},
		{0.5, 0.3}, // boundary values
	}
	for _, x := range points {
		phi, _ := Values(f, x)
		want := bruteForceShap(f, x)
		for i := range want {
			if math.Abs(phi[i]-want[i]) > 1e-9 {
				t.Errorf("x=%v: φ[%d] = %v, want %v", x, i, phi[i], want[i])
			}
		}
	}
}

func TestValuesMatchBruteForceTrained(t *testing.T) {
	// A trained 3-feature forest with realistic covers.
	rng := rand.New(rand.NewSource(3))
	d := &dataset.Dataset{Task: dataset.Regression}
	for i := 0; i < 500; i++ {
		row := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		d.X = append(d.X, row)
		d.Y = append(d.Y, row[0]+2*row[1]*row[2])
	}
	f, err := gbdt.Train(d, gbdt.Params{NumTrees: 10, NumLeaves: 8, MinSamplesLeaf: 10, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	for _, x := range d.X[:5] {
		phi, _ := Values(f, x)
		want := bruteForceShap(f, x)
		for i := range want {
			if math.Abs(phi[i]-want[i]) > 1e-8 {
				t.Errorf("x=%v: φ[%d] = %v, want %v", x, i, phi[i], want[i])
			}
		}
	}
}

func TestLocalAccuracy(t *testing.T) {
	// Σφ + base must reconstruct the raw prediction exactly.
	rng := rand.New(rand.NewSource(5))
	d := dataset.GPrime(800, 0.1, 21)
	f, err := gbdt.Train(d, gbdt.Params{NumTrees: 30, NumLeaves: 16, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	for i := 0; i < 20; i++ {
		x := d.X[rng.Intn(len(d.X))]
		phi, base := Values(f, x)
		var sum float64 = base
		for _, v := range phi {
			sum += v
		}
		if math.Abs(sum-f.RawPredict(x)) > 1e-8 {
			t.Errorf("Σφ+base = %v, raw = %v", sum, f.RawPredict(x))
		}
	}
}

func TestBaseIsExpectedValue(t *testing.T) {
	f := depth2Forest()
	_, base := Values(f, []float64{0.5, 0.5})
	// Tree 1: (40·3 + 20·(−1) + 40·1.5)/100 = 1.6; tree 2: (70·(−0.5)+30·2)/100 = 0.25.
	want := 0.25 + 1.6 + 0.25
	if math.Abs(base-want) > 1e-12 {
		t.Errorf("base = %v, want %v", base, want)
	}
}

func TestUnusedFeatureGetsZero(t *testing.T) {
	f := depth2Forest()
	f.NumFeatures = 3 // feature 2 exists but is never split on
	phi, _ := Values(f, []float64{0.2, 0.9, 0.5})
	if phi[2] != 0 {
		t.Errorf("unused feature attribution = %v, want 0", phi[2])
	}
}

func TestSymmetryOnSymmetricTree(t *testing.T) {
	// A tree where both features play interchangeable roles: equal covers,
	// equal value spread. At a symmetric input both attributions match.
	f := &forest.Forest{
		Trees: []forest.Tree{{Nodes: []forest.Node{
			{Feature: 0, Threshold: 0.5, Left: 1, Right: 2, Cover: 100},
			{Feature: 1, Threshold: 0.5, Left: 3, Right: 4, Cover: 50},
			{Feature: 1, Threshold: 0.5, Left: 5, Right: 6, Cover: 50},
			{Left: -1, Right: -1, Value: 0, Cover: 25},
			{Left: -1, Right: -1, Value: 1, Cover: 25},
			{Left: -1, Right: -1, Value: 1, Cover: 25},
			{Left: -1, Right: -1, Value: 2, Cover: 25},
		}}},
		NumFeatures: 2,
		Objective:   forest.Regression,
	}
	phi, _ := Values(f, []float64{0.8, 0.8})
	if math.Abs(phi[0]-phi[1]) > 1e-12 {
		t.Errorf("symmetric features got φ = %v, %v", phi[0], phi[1])
	}
}

// randomForestFixture builds a random but structurally valid forest with
// consistent covers, for property testing.
func randomForestFixture(r *rand.Rand, numFeatures, numTrees, depth int) *forest.Forest {
	f := &forest.Forest{NumFeatures: numFeatures, Objective: forest.Regression, BaseScore: r.NormFloat64()}
	for t := 0; t < numTrees; t++ {
		var nodes []forest.Node
		var build func(d int, cover float64) int
		build = func(d int, cover float64) int {
			idx := len(nodes)
			if d == 0 || r.Float64() < 0.3 {
				nodes = append(nodes, forest.Node{Left: -1, Right: -1, Value: r.NormFloat64(), Cover: cover})
				return idx
			}
			nodes = append(nodes, forest.Node{})
			frac := 0.2 + 0.6*r.Float64()
			lc := cover * frac
			rc := cover - lc
			l := build(d-1, lc)
			ri := build(d-1, rc)
			nodes[idx] = forest.Node{
				Feature:   r.Intn(numFeatures),
				Threshold: r.Float64(),
				Left:      l, Right: ri,
				Gain:  r.Float64(),
				Cover: cover,
			}
			return idx
		}
		build(depth, 100)
		f.Trees = append(f.Trees, forest.Tree{Nodes: nodes})
	}
	return f
}

// Property: on random forests and random inputs, path-dependent TreeSHAP
// matches brute-force Shapley enumeration and satisfies local accuracy.
func TestValuesMatchBruteForceProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		f := randomForestFixture(r, 2+r.Intn(2), 1+r.Intn(3), 2+r.Intn(2))
		if err := f.Validate(); err != nil {
			t.Fatalf("seed %d: fixture invalid: %v", seed, err)
		}
		x := make([]float64, f.NumFeatures)
		for j := range x {
			x[j] = r.Float64()
		}
		phi, base := Values(f, x)
		want := bruteForceShap(f, x)
		for i := range want {
			if math.Abs(phi[i]-want[i]) > 1e-8 {
				t.Fatalf("seed %d: φ[%d] = %v, want %v", seed, i, phi[i], want[i])
			}
		}
		sum := base
		for _, v := range phi {
			sum += v
		}
		if math.Abs(sum-f.RawPredict(x)) > 1e-8 {
			t.Fatalf("seed %d: local accuracy violated", seed)
		}
	}
}

// Property: interventional TreeSHAP matches brute force on the same
// random fixtures with random backgrounds.
func TestInterventionalMatchesBruteForceProperty(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		r := rand.New(rand.NewSource(seed))
		f := randomForestFixture(r, 2+r.Intn(2), 1+r.Intn(2), 2+r.Intn(2))
		x := make([]float64, f.NumFeatures)
		for j := range x {
			x[j] = r.Float64()
		}
		bg := make([][]float64, 1+r.Intn(4))
		for i := range bg {
			row := make([]float64, f.NumFeatures)
			for j := range row {
				row[j] = r.Float64()
			}
			bg[i] = row
		}
		phi, _ := InterventionalValues(f, x, bg)
		want := bruteForceInterventional(f, x, bg)
		for i := range want {
			if math.Abs(phi[i]-want[i]) > 1e-8 {
				t.Fatalf("seed %d: φ[%d] = %v, want %v", seed, i, phi[i], want[i])
			}
		}
	}
}

func TestTopAttributions(t *testing.T) {
	phi := []float64{0.1, -2, 0.5}
	top := TopAttributions(phi, 2)
	if len(top) != 2 || top[0].Feature != 1 || top[1].Feature != 2 {
		t.Errorf("TopAttributions = %+v", top)
	}
	if top[0].Value != -2 {
		t.Errorf("top value = %v, want -2", top[0].Value)
	}
	// k larger than available returns all.
	if got := TopAttributions(phi, 10); len(got) != 3 {
		t.Errorf("got %d attributions, want 3", len(got))
	}
}

func TestGlobalImportance(t *testing.T) {
	d := dataset.GPrime(600, 0.1, 23)
	f, err := gbdt.Train(d, gbdt.Params{NumTrees: 30, NumLeaves: 16, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	imp := GlobalImportance(f, d.X[:100])
	if len(imp) != 5 {
		t.Fatalf("importance length %d, want 5", len(imp))
	}
	for i, v := range imp {
		if v < 0 {
			t.Errorf("importance[%d] = %v, want ≥ 0", i, v)
		}
	}
	// g′ gives every feature real influence; none should be ~zero.
	for i, v := range imp {
		if v < 1e-4 {
			t.Errorf("feature %d importance suspiciously low: %v", i, v)
		}
	}
}

func TestDependenceSeries(t *testing.T) {
	d := dataset.GPrime(300, 0.1, 29)
	f, err := gbdt.Train(d, gbdt.Params{NumTrees: 20, NumLeaves: 8, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	xs, phis := DependenceSeries(f, d.X[:50], 2)
	if len(xs) != 50 || len(phis) != 50 {
		t.Fatalf("series lengths %d/%d", len(xs), len(phis))
	}
	for i, x := range d.X[:50] {
		if xs[i] != x[2] {
			t.Fatal("series x values do not match the sample")
		}
	}
	// Feature 2 of g′ is a sharp sigmoid at 0.5: attributions left of 0.45
	// must be clearly below those right of 0.55 on average.
	var lo, hi, nlo, nhi float64
	for i := range xs {
		if xs[i] < 0.45 {
			lo += phis[i]
			nlo++
		} else if xs[i] > 0.55 {
			hi += phis[i]
			nhi++
		}
	}
	if nlo > 0 && nhi > 0 && hi/nhi <= lo/nlo {
		t.Errorf("sigmoid feature dependence not increasing: %v vs %v", lo/nlo, hi/nhi)
	}
}
