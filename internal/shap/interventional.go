package shap

import (
	"context"

	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/par"
)

// Metrics instruments for the interventional variant, whose cost is
// O(|background| · nodes) per instance.
var (
	mIntInstances  = obs.Metrics().Counter("shap.interventional_instances")
	mIntNodeVisits = obs.Metrics().Counter("shap.interventional_node_visits")
)

// InterventionalValues computes SHAP values under the interventional
// (marginal) value function v(S) = E_b[f(x_S, b_{S̄})] over an explicit
// background sample, instead of the path-dependent cover-weighted
// expectation of Values. This is the "true to the data" variant of
// Lundberg et al. (2020); the two agree when features are independent
// and the covers reflect the background distribution.
//
// For each tree and background row, the exact per-leaf Shapley
// contribution has a closed form: with P the path features where only x
// satisfies the path constraints and N those where only the background
// row does (a leaf with any feature satisfied by neither is unreachable
// in every coalition),
//
//	φ_i += leaf · (|P|−1)!·|N|! / (|P|+|N|)!   for i ∈ P
//	φ_i −= leaf · |P|!·(|N|−1)! / (|P|+|N|)!   for i ∈ N
//
// Cost is O(|background| · nodes).
func InterventionalValues(f *forest.Forest, x []float64, background [][]float64) (phi []float64, base float64) {
	if len(background) == 0 {
		panic("shap: empty background sample")
	}
	inv := 1 / float64(len(background))
	// Background rows are independent: each chunk accumulates its own φ
	// vector, base contribution and visit count, folded in chunk order.
	type partial struct {
		phi    []float64
		base   float64
		visits int
	}
	//lint:ignore errdrop background context cannot be canceled
	acc, _ := par.MapReduce(context.Background(), len(background), 0,
		func(_, lo, hi int) partial {
			pt := partial{phi: make([]float64, f.NumFeatures)}
			for r := lo; r < hi; r++ {
				b := background[r]
				for ti := range f.Trees {
					pt.base += interventionalTree(&f.Trees[ti], x, b, pt.phi, inv, &pt.visits) * inv
				}
			}
			return pt
		},
		func(a, b partial) partial {
			for i := range a.phi {
				a.phi[i] += b.phi[i]
			}
			a.base += b.base
			a.visits += b.visits
			return a
		})
	mIntInstances.Inc()
	mIntNodeVisits.Add(int64(acc.visits))
	return acc.phi, f.BaseScore + acc.base
}

// featState tracks whether x and b satisfy all constraints seen so far
// for one feature on the current path.
type featState struct {
	xOK, bOK bool
}

// interventionalTree accumulates weighted φ contributions for one
// (tree, background row) pair and returns v(∅) for that pair — the value
// the tree takes when every feature comes from b.
func interventionalTree(t *forest.Tree, x, b []float64, phi []float64, w float64, visits *int) float64 {
	state := make(map[int]featState)
	var pathFeats []int
	var vEmpty float64

	var walk func(node int)
	walk = func(node int) {
		*visits++
		n := &t.Nodes[node]
		if n.IsLeaf() {
			// Classify path features.
			var p, nn int
			for _, fj := range pathFeats {
				st := state[fj]
				switch {
				case st.xOK && st.bOK:
					// irrelevant: satisfied either way
				case !st.xOK && !st.bOK:
					return // unreachable in every coalition
				case st.xOK:
					p++
				default:
					nn++
				}
			}
			if p == 0 && nn == 0 {
				vEmpty += n.Value
				return
			}
			if p == 0 {
				// Reached only when all N features stay at b: the empty
				// coalition reaches it.
				vEmpty += n.Value
			}
			total := factorial(p + nn)
			if p > 0 {
				share := n.Value * factorial(p-1) * factorial(nn) / total * w
				for _, fj := range pathFeats {
					st := state[fj]
					if st.xOK && !st.bOK {
						phi[fj] += share
					}
				}
			}
			if nn > 0 {
				share := n.Value * factorial(p) * factorial(nn-1) / total * w
				for _, fj := range pathFeats {
					st := state[fj]
					if !st.xOK && st.bOK {
						phi[fj] -= share
					}
				}
			}
			return
		}

		prev, seen := state[n.Feature]
		if !seen {
			pathFeats = append(pathFeats, n.Feature)
		}
		xLeft := x[n.Feature] <= n.Threshold
		bLeft := b[n.Feature] <= n.Threshold

		// Descend left: constraint is "≤ threshold".
		cur := featState{xOK: xLeft, bOK: bLeft}
		if seen {
			cur.xOK = cur.xOK && prev.xOK
			cur.bOK = cur.bOK && prev.bOK
		}
		if cur.xOK || cur.bOK {
			state[n.Feature] = cur
			walk(n.Left)
		}
		// Descend right: constraint is "> threshold".
		cur = featState{xOK: !xLeft, bOK: !bLeft}
		if seen {
			cur.xOK = cur.xOK && prev.xOK
			cur.bOK = cur.bOK && prev.bOK
		}
		if cur.xOK || cur.bOK {
			state[n.Feature] = cur
			walk(n.Right)
		}
		// Restore.
		if seen {
			state[n.Feature] = prev
		} else {
			delete(state, n.Feature)
			pathFeats = pathFeats[:len(pathFeats)-1]
		}
	}
	walk(0)
	return vEmpty
}

// factorials memoizes n! for every n representable in float64 (170! is
// the overflow bound); the leaf loop above evaluates factorial three
// times per reachable leaf, so the table lookup removes a multiply loop
// from the innermost hot path.
var factorials = func() [171]float64 {
	var t [171]float64
	t[0] = 1
	for i := 1; i < len(t); i++ {
		t[i] = t[i-1] * float64(i)
	}
	return t
}()

// factorial returns n! as float64 (paths are far shorter than the 170!
// float64 overflow bound).
func factorial(n int) float64 {
	if n < len(factorials) {
		return factorials[n]
	}
	f := factorials[len(factorials)-1]
	for i := len(factorials); i <= n; i++ {
		f *= float64(i)
	}
	return f
}
