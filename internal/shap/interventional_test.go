package shap

import (
	"math"
	"math/rand"
	"testing"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gbdt"
)

// bruteForceInterventional computes exact Shapley values of the game
// v(S) = mean_b f(x_S, b_{S̄}) by subset enumeration.
func bruteForceInterventional(f *forest.Forest, x []float64, background [][]float64) []float64 {
	d := f.NumFeatures
	phi := make([]float64, d)
	var fact func(n int) float64
	fact = func(n int) float64 {
		if n <= 1 {
			return 1
		}
		return float64(n) * fact(n-1)
	}
	value := func(mask int) float64 {
		var s float64
		z := make([]float64, d)
		for _, b := range background {
			for j := 0; j < d; j++ {
				if mask&(1<<j) != 0 {
					z[j] = x[j]
				} else {
					z[j] = b[j]
				}
			}
			s += f.RawPredict(z)
		}
		return s / float64(len(background))
	}
	for i := 0; i < d; i++ {
		for mask := 0; mask < 1<<d; mask++ {
			if mask&(1<<i) != 0 {
				continue
			}
			s := popcount(mask)
			w := fact(s) * fact(d-s-1) / fact(d)
			phi[i] += w * (value(mask|1<<i) - value(mask))
		}
	}
	return phi
}

func TestInterventionalMatchesBruteForce(t *testing.T) {
	f := depth2Forest()
	r := rand.New(rand.NewSource(41))
	background := make([][]float64, 7)
	for i := range background {
		background[i] = []float64{r.Float64(), r.Float64()}
	}
	points := [][]float64{
		{0.2, 0.1}, {0.8, 0.9}, {0.5, 0.5}, {0.2, 0.9},
	}
	for _, x := range points {
		phi, _ := InterventionalValues(f, x, background)
		want := bruteForceInterventional(f, x, background)
		for i := range want {
			if math.Abs(phi[i]-want[i]) > 1e-9 {
				t.Errorf("x=%v: φ[%d] = %v, want %v", x, i, phi[i], want[i])
			}
		}
	}
}

func TestInterventionalMatchesBruteForceTrained(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	d := &dataset.Dataset{Task: dataset.Regression}
	for i := 0; i < 400; i++ {
		row := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		d.X = append(d.X, row)
		d.Y = append(d.Y, row[0]+3*row[1]*row[2])
	}
	f, err := gbdt.Train(d, gbdt.Params{NumTrees: 8, NumLeaves: 8, MinSamplesLeaf: 10, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	background := d.X[:6]
	for _, x := range d.X[10:14] {
		phi, _ := InterventionalValues(f, x, background)
		want := bruteForceInterventional(f, x, background)
		for i := range want {
			if math.Abs(phi[i]-want[i]) > 1e-8 {
				t.Errorf("x=%v: φ[%d] = %v, want %v", x, i, phi[i], want[i])
			}
		}
	}
}

func TestInterventionalLocalAccuracy(t *testing.T) {
	// Σφ + base = f(x) with base = mean_b f(b).
	d := dataset.GPrime(500, 0.1, 47)
	f, err := gbdt.Train(d, gbdt.Params{NumTrees: 20, NumLeaves: 8, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	background := d.X[:30]
	var wantBase float64
	for _, b := range background {
		wantBase += f.RawPredict(b)
	}
	wantBase /= float64(len(background))
	for _, x := range d.X[100:110] {
		phi, base := InterventionalValues(f, x, background)
		if math.Abs(base-wantBase) > 1e-8 {
			t.Fatalf("base = %v, want mean background prediction %v", base, wantBase)
		}
		sum := base
		for _, v := range phi {
			sum += v
		}
		if math.Abs(sum-f.RawPredict(x)) > 1e-8 {
			t.Errorf("Σφ+base = %v, raw = %v", sum, f.RawPredict(x))
		}
	}
}

func TestInterventionalSelfBackgroundIsZero(t *testing.T) {
	// With the instance itself as the only background row, every
	// coalition yields f(x) → all attributions vanish.
	f := depth2Forest()
	x := []float64{0.3, 0.6}
	phi, base := InterventionalValues(f, x, [][]float64{x})
	for i, v := range phi {
		if math.Abs(v) > 1e-12 {
			t.Errorf("φ[%d] = %v, want 0", i, v)
		}
	}
	if math.Abs(base-f.RawPredict(x)) > 1e-12 {
		t.Errorf("base = %v, want f(x) = %v", base, f.RawPredict(x))
	}
}

func TestInterventionalEmptyBackgroundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	InterventionalValues(depth2Forest(), []float64{0, 0}, nil)
}

func TestInterventionalVsPathDependent(t *testing.T) {
	// On uniform independent features with covers from the same
	// distribution, the two variants should broadly agree in sign and
	// ranking for the dominant feature.
	d := dataset.GPrime(1500, 0.1, 53)
	f, err := gbdt.Train(d, gbdt.Params{NumTrees: 40, NumLeaves: 16, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	x := d.X[0]
	phiPath, _ := Values(f, x)
	phiInt, _ := InterventionalValues(f, x, d.X[:100])
	// Same top-magnitude feature.
	top := func(phi []float64) int {
		best := 0
		for i, v := range phi {
			if math.Abs(v) > math.Abs(phi[best]) {
				best = i
			}
		}
		return best
	}
	if top(phiPath) != top(phiInt) {
		t.Errorf("variants disagree on the top feature: %v vs %v", phiPath, phiInt)
	}
}
