// Package shap implements path-dependent TreeSHAP (Lundberg et al.,
// "Consistent Individualized Feature Attribution for Tree Ensembles"),
// the explanation baseline the paper compares GEF against in §5.3.
// Attributions are computed on the forest's raw (margin) score, using the
// per-node training covers recorded in the forest, and satisfy local
// accuracy: Σᵢ φᵢ = f(x) − E[f].
package shap

import (
	"context"
	"math"
	"sort"

	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/par"
)

// Metrics instruments (hoisted; see internal/obs): per-instance tree-node
// visits are the TreeSHAP cost driver the ROADMAP's perf PRs will shard.
var (
	mInstances  = obs.Metrics().Counter("shap.instances")
	mNodeVisits = obs.Metrics().Counter("shap.node_visits")
)

// pathElem is one entry of the feature path maintained by the TreeSHAP
// recursion.
type pathElem struct {
	d int     // feature index of the split that created this entry (-1 at root)
	z float64 // fraction of "zero" (feature-absent) paths flowing through
	o float64 // fraction of "one" (feature-present) paths flowing through
	w float64 // proportion of feature subsets of the matching cardinality
}

// Values computes the SHAP attribution vector φ for instance x: one value
// per input feature on the raw-score scale. The base value (expected raw
// score) is returned alongside; f(x)_raw = base + Σ φ.
//
// The forest is compiled to its flat structure-of-arrays form first
// (cached by fingerprint, see forest.Compiled); batch callers that
// explain many instances should compile once and use ValuesFlat.
func Values(f *forest.Forest, x []float64) (phi []float64, base float64) {
	return ValuesFlat(forest.Compiled(f), x)
}

// ValuesFlat is Values over an already-compiled flat forest: the
// recursion reads child indices, thresholds and covers from the flat
// parallel arrays, and each tree's path-dependent expectation E[t] is
// the cover-weighted mean precomputed at compile time (bit-identical to
// the recursive formulation). The arithmetic is unchanged from the
// pointer walk, so attributions are bitwise identical to it.
func ValuesFlat(fl *forest.Flat, x []float64) (phi []float64, base float64) {
	phi = make([]float64, fl.NumFeatures)
	base = fl.BaseScore
	visits := 0
	for t := 0; t < fl.NumTrees; t++ {
		base += fl.TreeMean(t)
		recurse(fl, x, phi, fl.TreeRoot(t), nil, 1, 1, -1, &visits)
	}
	mInstances.Inc()
	mNodeVisits.Add(int64(visits))
	return phi, base
}

// recurse implements Algorithm 2 of Lundberg et al. (2018), 0-indexed,
// over the flat arrays (j is an absolute flat node index).
func recurse(fl *forest.Flat, x []float64, phi []float64, j int32, m []pathElem, pz, po float64, pi int, visits *int) {
	*visits++
	m = extend(m, pz, po, pi)
	if fl.IsLeaf(j) {
		v := fl.Value(j)
		for i := 1; i < len(m); i++ {
			w := sumUnwoundWeights(m, i)
			phi[m[i].d] += w * (m[i].o - m[i].z) * v
		}
		return
	}
	feat := int(fl.Feature(j))
	hot, cold := fl.Left(j), fl.Right(j)
	if x[feat] > fl.Threshold(j) {
		hot, cold = cold, hot
	}
	iz, io := 1.0, 1.0
	if k := findFirst(m, feat); k >= 0 {
		iz, io = m[k].z, m[k].o
		m = unwind(m, k)
	}
	rj := fl.Cover(j)
	recurse(fl, x, phi, hot, m, iz*fl.Cover(hot)/rj, io, feat, visits)
	recurse(fl, x, phi, cold, m, iz*fl.Cover(cold)/rj, 0, feat, visits)
}

// extend grows the path with a new (pz, po, pi) fraction pair, updating
// the subset-cardinality weights.
func extend(m []pathElem, pz, po float64, pi int) []pathElem {
	l := len(m)
	out := make([]pathElem, l+1)
	copy(out, m)
	w := 0.0
	if l == 0 {
		w = 1
	}
	out[l] = pathElem{d: pi, z: pz, o: po, w: w}
	for i := l - 1; i >= 0; i-- {
		out[i+1].w += po * out[i].w * float64(i+1) / float64(l+1)
		out[i].w = pz * out[i].w * float64(l-i) / float64(l+1)
	}
	return out
}

// unwind removes path element i, undoing the corresponding extend.
func unwind(m []pathElem, i int) []pathElem {
	l := len(m) - 1
	out := make([]pathElem, l)
	copy(out, m[:l])
	n := m[l].w
	oi, zi := m[i].o, m[i].z
	for j := l - 1; j >= 0; j-- {
		if oi != 0 {
			tmp := out[j].w
			out[j].w = n * float64(l+1) / (float64(j+1) * oi)
			n = tmp - out[j].w*zi*float64(l-j)/float64(l+1)
		} else {
			out[j].w = out[j].w * float64(l+1) / (zi * float64(l-j))
		}
	}
	for j := i; j < l; j++ {
		out[j].d, out[j].z, out[j].o = m[j+1].d, m[j+1].z, m[j+1].o
	}
	return out
}

// sumUnwoundWeights returns Σ w of the path with element i unwound,
// without materializing the unwound path beyond its weights.
func sumUnwoundWeights(m []pathElem, i int) float64 {
	var total float64
	l := len(m) - 1
	n := m[l].w
	oi, zi := m[i].o, m[i].z
	for j := l - 1; j >= 0; j-- {
		if oi != 0 {
			tmp := n * float64(l+1) / (float64(j+1) * oi)
			total += tmp
			n = m[j].w - tmp*zi*float64(l-j)/float64(l+1)
		} else {
			total += m[j].w * float64(l+1) / (zi * float64(l-j))
		}
	}
	return total
}

func findFirst(m []pathElem, d int) int {
	for i := 1; i < len(m); i++ { // element 0 is the root sentinel (d = -1)
		if m[i].d == d {
			return i
		}
	}
	return -1
}

// Attribution pairs a feature with its SHAP value.
type Attribution struct {
	Feature int
	Value   float64
}

// TopAttributions returns the k attributions with the largest magnitude,
// sorted by decreasing |value|.
//
//lint:ignore obsspan sorts one already-computed attribution vector; Values carries the per-instance instrumentation
func TopAttributions(phi []float64, k int) []Attribution {
	out := make([]Attribution, 0, len(phi))
	for f, v := range phi {
		out = append(out, Attribution{Feature: f, Value: v})
	}
	sort.SliceStable(out, func(a, b int) bool {
		return math.Abs(out[a].Value) > math.Abs(out[b].Value)
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// GlobalImportance aggregates local explanations into a global view, as
// the paper describes SHAP being used globally: the mean |φᵢ| over the
// sample for every feature.
func GlobalImportance(f *forest.Forest, sample [][]float64) []float64 {
	_, sp := obs.Start(context.Background(), "shap.global_importance",
		obs.Int("sample", len(sample)), obs.Int("features", f.NumFeatures),
		obs.Int("workers", par.Workers()))
	defer sp.End()
	if len(sample) == 0 {
		return make([]float64, f.NumFeatures)
	}
	// One flat compilation serves every instance in the batch.
	fl := forest.Compiled(f)
	// Per-instance TreeSHAP runs are independent: each chunk folds its
	// rows into a partial |φ| sum, and the partials are combined in
	// chunk order (bitwise-stable at any worker count).
	//lint:ignore errdrop background context cannot be canceled
	imp, _ := par.MapReduce(context.Background(), len(sample), 0,
		func(_, lo, hi int) []float64 {
			chunkImp := make([]float64, f.NumFeatures)
			for r := lo; r < hi; r++ {
				phi, _ := ValuesFlat(fl, sample[r])
				for i, v := range phi {
					chunkImp[i] += math.Abs(v)
				}
			}
			return chunkImp
		},
		func(a, b []float64) []float64 {
			for i := range a {
				a[i] += b[i]
			}
			return a
		})
	for i := range imp {
		imp[i] /= float64(len(sample))
	}
	return imp
}

// DependenceSeries returns the SHAP dependence scatter for feature j over
// the sample: pairs (x_j, φ_j), the representation the paper's Figs. 9b
// and 10b plot.
func DependenceSeries(f *forest.Forest, sample [][]float64, j int) (xs, phis []float64) {
	_, sp := obs.Start(context.Background(), "shap.dependence_series",
		obs.Int("sample", len(sample)), obs.Int("feature", j),
		obs.Int("workers", par.Workers()))
	defer sp.End()
	xs = make([]float64, len(sample))
	phis = make([]float64, len(sample))
	fl := forest.Compiled(f)
	// Each row writes only its own output slots — parallel with no
	// reduction needed.
	//lint:ignore errdrop background context cannot be canceled
	_ = par.For(context.Background(), len(sample), 0, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			phi, _ := ValuesFlat(fl, sample[i])
			xs[i] = sample[i][j]
			phis[i] = phi[j]
		}
	})
	return xs, phis
}
