// Package smoother implements the forest-guided kernel-smoother
// surrogate family (Verdinelli & Wasserman, "Forest Guided Smoothing",
// see PAPERS.md): a Nadaraya–Watson regression over a dictionary of
// forest-labeled points, with per-feature adaptive bandwidths estimated
// from tree co-leaf proximities. Two points the forest routes to the
// same leaves are "close" in the forest's own geometry; the typical
// per-feature distance between such proximate pairs is the right local
// bandwidth, so the smoother inherits the forest's anisotropy instead
// of guessing it from marginal spreads.
//
// Leaf assignments come from the flat-forest LeavesBatch kernels, and
// both the proximity scan and the per-row predictions are parallelized
// with internal/par under the bitwise-determinism contract. Unlike the
// rule family the fitted model is fully serializable: the dictionary,
// labels and bandwidths reconstruct an identical predictor.
package smoother

import (
	"context"
	"fmt"
	"math"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/par"
	"gef/internal/robust"
	"gef/internal/stats"
)

// Config controls the smoother fit.
type Config struct {
	// DictSize bounds the dictionary (default 512 rows drawn from the
	// head of the shuffled D* train split). Larger is smoother but
	// linearly slower to evaluate.
	DictSize int
	// ProximitySample bounds the rows whose pairwise tree proximities
	// drive bandwidth estimation (default 256; the scan is quadratic).
	ProximitySample int
	// ProximityThreshold is the fraction of trees two rows must share a
	// leaf in to count as proximate (default 0.5).
	ProximityThreshold float64
	// BandwidthScale multiplies every estimated bandwidth (default 1).
	BandwidthScale float64
}

// WithDefaults fills zero knobs with the package defaults. Idempotent;
// exported so the engine can derive cache keys from the effective
// configuration rather than the raw one.
func (c Config) WithDefaults() Config {
	if c.DictSize == 0 {
		c.DictSize = 512
	}
	if c.ProximitySample == 0 {
		c.ProximitySample = 256
	}
	if c.ProximityThreshold == 0 {
		c.ProximityThreshold = 0.5
	}
	if c.BandwidthScale == 0 {
		c.BandwidthScale = 1
	}
	return c
}

// Payload is the serialized form of a fitted smoother: everything the
// predictor needs, so a reloaded model predicts bitwise identically.
type Payload struct {
	// Features are the modelled features F′ (dictionary column order).
	Features []int `json:"features"`
	// Dict holds the dictionary rows projected to Features.
	Dict [][]float64 `json:"dict"`
	// Y are the forest responses at the dictionary rows.
	Y []float64 `json:"y"`
	// Bandwidths has one entry per feature; 0 marks a degenerate
	// (constant) feature the kernel ignores.
	Bandwidths []float64 `json:"bandwidths"`
	// ProximityPairs counts the proximate pairs behind the estimate
	// (diagnostic; 0 means every bandwidth fell back to Silverman).
	ProximityPairs int `json:"proximity_pairs"`
}

// Model is a fitted Nadaraya–Watson smoother over forest geometry.
type Model struct {
	p Payload
}

// Fit estimates bandwidths from tree co-leaf proximities on a bounded
// sample of train, builds the dictionary from the head of train, and
// returns the smoother. It fails with robust.ErrNumerical when every
// selected feature is degenerate (no usable bandwidth) — the family
// ladder falls back to a simpler surrogate in that case.
func Fit(ctx context.Context, f *forest.Forest, features []int, train *dataset.Dataset, cfg Config) (*Model, error) {
	cfg = cfg.WithDefaults()
	if train == nil || len(train.X) < 2 {
		return nil, fmt.Errorf("smoother: need ≥ 2 fitting rows, got %d: %w", trainRows(train), robust.ErrDegenerate)
	}
	if len(features) == 0 {
		return nil, fmt.Errorf("smoother: no features selected: %w", robust.ErrDegenerate)
	}
	ctx, sp := obs.Start(ctx, "smoother.fit",
		obs.Int("features", len(features)), obs.Int("train_rows", len(train.X)))
	defer sp.End()

	fl := forest.Compiled(f)
	n := min(cfg.ProximitySample, len(train.X))
	sample := train.X[:n]
	leaves := make([]int32, n*fl.NumTrees)
	fl.LeavesBatch(sample, leaves)

	pairs, err := proximatePairs(ctx, leaves, n, fl.NumTrees, cfg.ProximityThreshold)
	if err != nil {
		return nil, robust.CtxErr(err)
	}

	// Per-feature bandwidths: the mean |Δ_j| over proximate pairs, with
	// a Silverman fallback when no pairs (or a collapsed spread) leave
	// nothing to average. Features are independent, so par chunking is
	// bitwise identical to a serial loop.
	bw := make([]float64, len(features))
	if err := par.For(ctx, len(features), 0, func(_, lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			j := features[fi]
			sum, cnt := 0.0, 0
			for _, pr := range pairs {
				d := math.Abs(sample[pr[0]][j] - sample[pr[1]][j])
				sum += d
				cnt++
			}
			h := 0.0
			if cnt > 0 {
				h = sum / float64(cnt)
			}
			if h == 0 {
				h = silverman(train, j, n)
			}
			bw[fi] = h * cfg.BandwidthScale
		}
	}); err != nil {
		return nil, robust.CtxErr(err)
	}
	usable := 0
	for _, h := range bw {
		if h > 0 && !math.IsNaN(h) && !math.IsInf(h, 0) {
			usable++
		}
	}
	if usable == 0 {
		return nil, fmt.Errorf("smoother: every selected feature has a degenerate bandwidth: %w", robust.ErrNumerical)
	}
	for i, h := range bw {
		if math.IsNaN(h) || math.IsInf(h, 0) {
			bw[i] = 0 // kernel ignores the feature; 0 survives JSON, ±Inf would not
		}
	}

	m := min(cfg.DictSize, len(train.X))
	p := Payload{
		Features:       append([]int(nil), features...),
		Dict:           make([][]float64, m),
		Y:              append([]float64(nil), train.Y[:m]...),
		Bandwidths:     bw,
		ProximityPairs: len(pairs),
	}
	for i := 0; i < m; i++ {
		row := make([]float64, len(features))
		for fi, j := range features {
			row[fi] = train.X[i][j]
		}
		p.Dict[i] = row
	}
	sp.Set(obs.Int("dict_rows", m), obs.Int("proximity_pairs", len(pairs)),
		obs.Int("usable_bandwidths", usable))
	return &Model{p: p}, nil
}

func trainRows(d *dataset.Dataset) int {
	if d == nil {
		return 0
	}
	return len(d.X)
}

// proximatePairs scans all row pairs and keeps those sharing a leaf in
// at least threshold of the trees. The scan fans the outer row over
// internal/par and concatenates per-chunk pair lists in chunk order, so
// the result is identical at any worker count.
func proximatePairs(ctx context.Context, leaves []int32, n, trees int, threshold float64) ([][2]int, error) {
	need := int(math.Ceil(threshold * float64(trees)))
	if need < 1 {
		need = 1
	}
	return par.MapReduce(ctx, n, 0, func(_, lo, hi int) [][2]int {
		var out [][2]int
		for i := lo; i < hi; i++ {
			li := leaves[i*trees : (i+1)*trees]
			for k := i + 1; k < n; k++ {
				lk := leaves[k*trees : (k+1)*trees]
				shared := 0
				for t := 0; t < trees; t++ {
					if li[t] == lk[t] {
						shared++
					}
				}
				if shared >= need {
					out = append(out, [2]int{i, k})
				}
			}
		}
		return out
	}, func(a, b [][2]int) [][2]int { return append(a, b...) })
}

// silverman is the classical rule-of-thumb bandwidth 1.06·σ·n^(−1/5)
// over the full train column — the fallback when forest proximities
// give no signal for a feature.
func silverman(train *dataset.Dataset, j, n int) float64 {
	col := make([]float64, len(train.X))
	for i, row := range train.X {
		col[i] = row[j]
	}
	return 1.06 * stats.StdDev(col) * math.Pow(float64(n), -0.2)
}

// FromPayload reconstructs a model serialized via Payload(); the result
// predicts bitwise identically to the fitted original.
func FromPayload(p Payload) (*Model, error) {
	if len(p.Dict) == 0 || len(p.Dict) != len(p.Y) || len(p.Features) != len(p.Bandwidths) {
		return nil, fmt.Errorf("smoother: inconsistent payload (%d dict rows, %d labels, %d features, %d bandwidths)",
			len(p.Dict), len(p.Y), len(p.Features), len(p.Bandwidths))
	}
	return &Model{p: p}, nil
}

// Payload returns the serializable model state.
func (m *Model) Payload() Payload { return m.p }

// Features returns the modelled feature set F′.
func (m *Model) Features() []int { return m.p.Features }

// Bandwidths returns the per-feature kernel bandwidths (aligned with
// Features; 0 marks an ignored degenerate feature).
func (m *Model) Bandwidths() []float64 { return m.p.Bandwidths }

// Predict evaluates the Nadaraya–Watson estimate at x (full-width input
// row; only the modelled features are read). Log-domain weights with a
// running max keep the kernel stable far from the dictionary: the
// nearest point always gets weight 1, so the estimate degrades to
// nearest-dictionary-neighbour instead of 0/0.
func (m *Model) Predict(x []float64) float64 {
	logw := make([]float64, len(m.p.Dict))
	maxw := math.Inf(-1)
	for i, d := range m.p.Dict {
		s := 0.0
		for fi, j := range m.p.Features {
			h := m.p.Bandwidths[fi]
			if h == 0 {
				continue
			}
			z := (x[j] - d[fi]) / h
			s += z * z
		}
		logw[i] = -0.5 * s
		if logw[i] > maxw {
			maxw = logw[i]
		}
	}
	num, den := 0.0, 0.0
	for i, lw := range logw {
		w := math.Exp(lw - maxw)
		num += w * m.p.Y[i]
		den += w
	}
	return num / den
}

// PredictBatch evaluates every row, parallelized over rows with the
// bitwise-determinism contract.
func (m *Model) PredictBatch(ctx context.Context, xs [][]float64) ([]float64, error) {
	out := make([]float64, len(xs))
	if err := par.For(ctx, len(xs), 0, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.Predict(xs[i])
		}
	}); err != nil {
		return nil, robust.CtxErr(err)
	}
	return out, nil
}
