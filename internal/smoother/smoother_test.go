package smoother

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gbdt"
	"gef/internal/par"
	"gef/internal/robust"
	"gef/internal/stats"
)

func fixture(t *testing.T) (*forest.Forest, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	ds := dataset.GPrime(1000, 0.05, 7)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 30, NumLeaves: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	train := &dataset.Dataset{X: ds.X[:800], Y: f.PredictBatch(ds.X[:800])}
	test := &dataset.Dataset{X: ds.X[800:], Y: f.PredictBatch(ds.X[800:])}
	return f, train, test
}

func allFeatures() []int { return []int{0, 1, 2, 3, 4} }

func TestFitPredictsForestResponses(t *testing.T) {
	f, train, test := fixture(t)
	m, err := Fit(context.Background(), f, allFeatures(), train, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.PredictBatch(context.Background(), test.X)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := stats.R2(pred, test.Y); r2 < 0.3 {
		t.Fatalf("smoother R² vs forest = %.3f; the proximity bandwidths carry no signal", r2)
	}
	if m.Payload().ProximityPairs == 0 {
		t.Fatal("no proximate pairs found on g′; the co-leaf scan is broken")
	}
	for fi, h := range m.Bandwidths() {
		if math.IsNaN(h) || math.IsInf(h, 0) || h < 0 {
			t.Fatalf("bandwidth[%d] = %v is not a usable width", fi, h)
		}
	}
}

func TestPayloadRoundTripBitwise(t *testing.T) {
	f, train, test := fixture(t)
	m, err := Fit(context.Background(), f, allFeatures(), train, Config{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(m.Payload())
	if err != nil {
		t.Fatal(err)
	}
	var p Payload
	if err := json.Unmarshal(blob, &p); err != nil {
		t.Fatal(err)
	}
	back, err := FromPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a, b := m.Predict(test.X[i]), back.Predict(test.X[i])
		//lint:ignore floatcmp bitwise round-trip identity is the contract under test
		if a != b {
			t.Fatalf("row %d: reloaded prediction %v != fitted %v", i, b, a)
		}
	}
}

func TestPredictBatchDeterministicAcrossWorkers(t *testing.T) {
	f, train, test := fixture(t)
	// Fit at every worker count too: bandwidth estimation must be
	// chunk-invariant, not just prediction.
	var ref []float64
	for _, w := range []int{1, 2, 4} {
		par.SetWorkers(w)
		m, err := Fit(context.Background(), f, allFeatures(), train, Config{})
		if err != nil {
			par.SetWorkers(0)
			t.Fatal(err)
		}
		got, err := m.PredictBatch(context.Background(), test.X)
		if err != nil {
			par.SetWorkers(0)
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			//lint:ignore floatcmp bitwise determinism is the contract under test
			if got[i] != ref[i] {
				par.SetWorkers(0)
				t.Fatalf("workers=%d row %d: %v != %v", w, i, got[i], ref[i])
			}
		}
	}
	par.SetWorkers(0)
}

func TestDegenerateFeaturesFailNumerically(t *testing.T) {
	f, train, _ := fixture(t)
	// Collapse feature 0 across the whole train sample: proximity
	// distances and the Silverman fallback both vanish, so the only
	// selected feature has no usable bandwidth.
	flat := make([][]float64, len(train.X))
	for i, row := range train.X {
		r := append([]float64(nil), row...)
		r[0] = 0.5
		flat[i] = r
	}
	_, err := Fit(context.Background(), f, []int{0}, &dataset.Dataset{X: flat, Y: train.Y}, Config{})
	if !errors.Is(err, robust.ErrNumerical) {
		t.Fatalf("want ErrNumerical for an all-degenerate bandwidth set, got %v", err)
	}
}

func TestEmptyInputsAreDegenerate(t *testing.T) {
	f, train, _ := fixture(t)
	if _, err := Fit(context.Background(), f, allFeatures(), nil, Config{}); !errors.Is(err, robust.ErrDegenerate) {
		t.Fatalf("nil train: want ErrDegenerate, got %v", err)
	}
	if _, err := Fit(context.Background(), f, nil, train, Config{}); !errors.Is(err, robust.ErrDegenerate) {
		t.Fatalf("no features: want ErrDegenerate, got %v", err)
	}
}
