package robust

import (
	"math"
	"sync"
	"sync/atomic"
)

// Site names one fault-injection point in the pipeline. Each site
// documents the meaning of the (key, level) pair its callers pass to
// Fire; plans are written against those semantics.
type Site string

// Registered injection sites. Sites gives the full list for harnesses
// that sweep every site.
const (
	// SiteCholesky forces penalized-system factorization failures in
	// gam. key = fit ordinal (Ordinal(ScopeFit)); level = the extra
	// ridge scale of the current recovery-ladder attempt, so
	// FailBelow(…, r) fails attempts with ridge < r and lets the
	// escalation rescue the fit.
	SiteCholesky Site = "gam.cholesky"
	// SiteIRLS forces P-IRLS divergence in the logit fit: a firing
	// deviance evaluation reports an increase. key = fit ordinal;
	// level = iteration + 0.25·halvings, so FailBelow(…, it+0.1)
	// poisons the initial step of iterations < it but lets the
	// step-halved re-evaluations through.
	SiteIRLS Site = "gam.pirls"
	// SiteDomains forces sampling-domain collapse: the firing feature's
	// domain construction fails with ErrDegenerate. key = feature
	// index; level = 0.
	SiteDomains Site = "sampling.domains"
	// SiteCancel cancels the pipeline context mid-stage. key = core
	// stage index (0 = feature selection, 1 = domains, 2 = D*
	// generation, 3 = interaction ranking, 4 = GAM fit); level = 0.
	SiteCancel Site = "core.cancel"
	// SiteAdmit forces the explanation server's admission controller to
	// treat the queue as full, shedding the request with 429. key = −1
	// (any request); level = the queue depth observed at admission, so
	// FailBelow(…, d) sheds only while fewer than d requests wait.
	SiteAdmit Site = "serve.admit"
	// SiteCoalesce poisons a coalesced computation: the single-flight
	// leader's work fails with ErrNumerical, and every waiter sharing
	// the key must surface the same typed failure (one 500 per waiter,
	// never a hang). key = −1; level = the number of waiters already
	// joined when the leader started.
	SiteCoalesce Site = "serve.coalesce"
	// SiteDrain collapses the server's drain deadline to "now": a drain
	// triggered while requests are in flight times them out immediately
	// with 504 instead of letting them finish. key = −1; level = 0.
	SiteDrain Site = "serve.drain"
)

// Sites lists every registered injection site.
var Sites = []Site{SiteCholesky, SiteIRLS, SiteDomains, SiteCancel, SiteAdmit, SiteCoalesce, SiteDrain}

// ScopeFit is the ordinal scope counting gam fit invocations; it keys
// SiteCholesky and SiteIRLS plans (fit 0 is the full spec, later
// ordinals are degradation-ladder refits).
const ScopeFit = "gam.fit"

// Fault is one injection rule. A rule fires when its Site matches, its
// Key matches the call's key (Key −1 matches every key), the call's
// level is strictly below Below, and — when Prob ∈ (0,1) — a
// deterministic hash of (seed, site, key) falls under Prob. Decisions
// are pure functions of the plan and the call's (site, key, level), so
// an injected run is bitwise reproducible at any worker count.
type Fault struct {
	Site  Site
	Key   int
	Below float64 // exclusive upper bound on level; +Inf = always
	Prob  float64 // 0 = unconditional; else deterministic probability
}

// FailAlways builds a rule that fires on every matching (site, key).
func FailAlways(site Site, key int) Fault {
	return Fault{Site: site, Key: key, Below: inf}
}

// FailBelow builds a rule that fires while the call's level is strictly
// below threshold — the escalation knob: recovery attempts above the
// threshold succeed.
func FailBelow(site Site, key int, threshold float64) Fault {
	return Fault{Site: site, Key: key, Below: threshold}
}

// FailProb builds a rule that fires for a deterministic pseudo-random
// Prob-fraction of keys at the site (decided by hashing the injector
// seed with the site and key, never by call order).
func FailProb(site Site, key int, prob float64) Fault {
	return Fault{Site: site, Key: key, Below: inf, Prob: prob}
}

var inf = math.Inf(1)

// Injector evaluates a fault plan. The zero value is unusable; build
// with NewInjector. An Injector is safe for concurrent use: decisions
// are pure reads, and the per-scope ordinal counters are mutex-guarded.
type Injector struct {
	seed   int64
	faults map[Site][]Fault

	mu       sync.Mutex
	ordinals map[string]int
}

// NewInjector builds an injector for the given plan. The seed only
// drives FailProb decisions; deterministic rules ignore it.
func NewInjector(seed int64, faults ...Fault) *Injector {
	in := &Injector{
		seed:     seed,
		faults:   make(map[Site][]Fault),
		ordinals: make(map[string]int),
	}
	for _, f := range faults {
		in.faults[f.Site] = append(in.faults[f.Site], f)
	}
	return in
}

// fire reports whether any rule matches (site, key, level).
func (in *Injector) fire(site Site, key int, level float64) bool {
	for _, f := range in.faults[site] {
		if f.Key != -1 && f.Key != key {
			continue
		}
		if !(level < f.Below) {
			continue
		}
		if f.Prob > 0 && hashUnit(in.seed, site, key) >= f.Prob {
			continue
		}
		return true
	}
	return false
}

// ordinal returns the next 0-based ordinal for scope.
func (in *Injector) ordinal(scope string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.ordinals[scope]
	in.ordinals[scope] = n + 1
	return n
}

// hashUnit maps (seed, site, key) to [0,1) with a splitmix64-style
// avalanche — pure, so probabilistic plans are order-independent.
func hashUnit(seed int64, site Site, key int) float64 {
	z := uint64(seed) ^ (uint64(key+1) * 0x9e3779b97f4a7c15)
	for i := 0; i < len(site); i++ {
		z = (z ^ uint64(site[i])) * 0x100000001b3
	}
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// active is the process-wide injector; nil (the default) means
// production mode, where Fire is a single atomic load returning false.
var active atomic.Pointer[Injector]

// SetInjector installs (or, with nil, removes) the process-wide fault
// injector. Installing resets the injector's ordinal scopes, so plans
// keyed by fit ordinal count from the moment of installation. Tests
// must restore the nil injector when done.
func SetInjector(in *Injector) { active.Store(in) }

// InjectionActive reports whether a fault injector is installed.
// Subsystems that would mask injected faults behind memoized state (the
// core engine's artifact cache) consult it to bypass their caches, so a
// fault plan always exercises the real computation it targets.
func InjectionActive() bool { return active.Load() != nil }

// Fire reports whether the active plan injects a fault at (site, key,
// level). Production fast path: no injector installed → one atomic
// load, no allocation, always false. A true return increments the
// robust.injected_faults counter.
func Fire(site Site, key int, level float64) bool {
	in := active.Load()
	if in == nil {
		return false
	}
	if !in.fire(site, key, level) {
		return false
	}
	mInjected.Inc()
	return true
}

// Ordinal returns the next 0-based ordinal for scope under the active
// injector, or 0 when injection is off (the value is only consumed by
// Fire, which is then inert anyway).
func Ordinal(scope string) int {
	in := active.Load()
	if in == nil {
		return 0
	}
	return in.ordinal(scope)
}
