package robust

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestCtxErrTaxonomy(t *testing.T) {
	if CtxErr(nil) != nil {
		t.Fatal("CtxErr(nil) != nil")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	err := CtxErr(ctx.Err())
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("deadline error %v does not match ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error %v lost context.DeadlineExceeded", err)
	}
	// Idempotent: wrapping twice must not stack sentinels.
	if again := CtxErr(err); again != err {
		t.Fatalf("CtxErr not idempotent: %v", again)
	}

	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if err := CtxErr(cctx.Err()); !errors.Is(err, context.Canceled) || errors.Is(err, ErrDeadline) {
		t.Fatalf("canceled error mapped wrongly: %v", err)
	}
}

func TestFeatureErrorUnwraps(t *testing.T) {
	err := fmt.Errorf("sampling: %w",
		&FeatureError{Feature: 3, Err: fmt.Errorf("collapsed: %w", ErrDegenerate)})
	if !errors.Is(err, ErrDegenerate) {
		t.Fatalf("%v does not match ErrDegenerate", err)
	}
	var fe *FeatureError
	if !errors.As(err, &fe) || fe.Feature != 3 {
		t.Fatalf("errors.As failed to recover FeatureError from %v", err)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryPolicy{Attempts: 4, BaseDelay: time.Microsecond},
		func(attempt int) error {
			calls++
			if attempt < 2 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil || calls != 3 {
		t.Fatalf("Retry = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestRetryExhaustsAndWrapsLastError(t *testing.T) {
	last := errors.New("still broken")
	err := Retry(context.Background(), RetryPolicy{Attempts: 2, BaseDelay: time.Microsecond},
		func(int) error { return last })
	if !errors.Is(err, last) {
		t.Fatalf("Retry = %v, want wrap of %v", err, last)
	}
}

func TestRetryStopsOnPermanentAndDegenerate(t *testing.T) {
	for name, mk := range map[string]func() error{
		"permanent":  func() error { return Permanent(errors.New("broken input")) },
		"degenerate": func() error { return fmt.Errorf("bad: %w", ErrDegenerate) },
		"config":     func() error { return fmt.Errorf("bad: %w", ErrConfig) },
	} {
		calls := 0
		err := Retry(context.Background(), RetryPolicy{Attempts: 5, BaseDelay: time.Microsecond},
			func(int) error { calls++; return mk() })
		if err == nil || calls != 1 {
			t.Fatalf("%s: Retry = %v after %d calls, want error after exactly 1", name, err, calls)
		}
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := Retry(ctx, RetryPolicy{Attempts: 1000, BaseDelay: 2 * time.Millisecond},
		func(int) error { return errors.New("transient") })
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("Retry under expired deadline = %v, want ErrDeadline", err)
	}
}

func TestInjectorOffIsInert(t *testing.T) {
	SetInjector(nil)
	if Fire(SiteCholesky, 0, 0) {
		t.Fatal("Fire fired with no injector installed")
	}
	if Ordinal(ScopeFit) != 0 || Ordinal(ScopeFit) != 0 {
		t.Fatal("Ordinal advanced with no injector installed")
	}
}

func TestInjectorKeyAndLevelMatching(t *testing.T) {
	SetInjector(NewInjector(1,
		FailAlways(SiteDomains, 2),
		FailBelow(SiteCholesky, -1, 1e-5),
	))
	defer SetInjector(nil)

	if !Fire(SiteDomains, 2, 0) {
		t.Fatal("exact key did not fire")
	}
	if Fire(SiteDomains, 3, 0) {
		t.Fatal("non-matching key fired")
	}
	if Fire(SiteIRLS, 2, 0) {
		t.Fatal("unplanned site fired")
	}
	// Escalation: attempts below the threshold fail, at/above succeed.
	if !Fire(SiteCholesky, 7, 0) || !Fire(SiteCholesky, 7, 1e-6) {
		t.Fatal("ridge below threshold did not fire")
	}
	if Fire(SiteCholesky, 7, 1e-5) || Fire(SiteCholesky, 7, 1e-3) {
		t.Fatal("ridge at/above threshold fired")
	}
}

func TestInjectorOrdinalResetsPerInstall(t *testing.T) {
	SetInjector(NewInjector(1))
	if got := []int{Ordinal(ScopeFit), Ordinal(ScopeFit), Ordinal("other")}; got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("ordinals = %v, want [0 1 0]", got)
	}
	SetInjector(NewInjector(1))
	defer SetInjector(nil)
	if Ordinal(ScopeFit) != 0 {
		t.Fatal("fresh install did not reset ordinals")
	}
}

func TestInjectorProbIsDeterministicInKey(t *testing.T) {
	in := NewInjector(42, FailProb(SiteDomains, -1, 0.5))
	fired := 0
	for key := 0; key < 1000; key++ {
		a := in.fire(SiteDomains, key, 0)
		b := in.fire(SiteDomains, key, 0)
		if a != b {
			t.Fatalf("key %d: decision not reproducible", key)
		}
		if a {
			fired++
		}
	}
	if fired < 350 || fired > 650 {
		t.Fatalf("prob 0.5 fired %d/1000 keys", fired)
	}
}

func TestDegradationRecord(t *testing.T) {
	var list []Degradation
	Record(context.Background(), &list, Degradation{
		Stage: "gam", Action: ActionDropTensors, Reason: "numerical failure", Detail: "2 tensor terms",
	})
	if len(list) != 1 || list[0].Action != ActionDropTensors {
		t.Fatalf("Record produced %+v", list)
	}
	if s := list[0].String(); s != "gam/drop_tensors (2 tensor terms)" {
		t.Fatalf("String() = %q", s)
	}
}
