package robust

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// RetryPolicy bounds a Retry loop: at most Attempts tries, sleeping
// BaseDelay·2^attempt between failures, capped at MaxDelay.
type RetryPolicy struct {
	// Attempts is the total number of tries (default 3).
	Attempts int
	// BaseDelay is the sleep before the second attempt (default 25ms);
	// it doubles per attempt.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 1s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// permanentError marks an error Retry must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Retry returns it immediately instead of
// retrying: use it inside op for failures that cannot heal (degenerate
// input, invalid configuration).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Retry runs op up to p.Attempts times with capped exponential backoff,
// returning nil on the first success. It stops early — returning the
// typed context error via CtxErr — when ctx is done, and immediately on
// errors wrapped with Permanent or carrying the ErrDegenerate /
// ErrConfig sentinels (retrying cannot repair those classes). The last
// error is returned when every attempt fails.
func Retry(ctx context.Context, p RetryPolicy, op func(attempt int) error) error {
	p = p.withDefaults()
	var lastErr error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return CtxErr(err)
		}
		if attempt > 0 {
			mRetries.Inc()
			delay := p.BaseDelay << (attempt - 1)
			if delay > p.MaxDelay {
				delay = p.MaxDelay
			}
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return CtxErr(ctx.Err())
			case <-t.C:
			}
		}
		err := op(attempt)
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if errors.Is(err, ErrDegenerate) || errors.Is(err, ErrConfig) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("after %d attempts: %w", p.Attempts, lastErr)
}
