// Package robust is GEF's fault-tolerance layer: typed sentinel errors
// shared by every pipeline stage, degradation records that document how
// an explanation was simplified to survive a numerical failure, a
// bounded retry helper for transient faults, and a deterministic fault
// injector used by tests and verify.sh to prove the recovery paths.
//
// The package is stdlib-only and depends only on internal/obs (for the
// robust.* metrics and degradation span events), so any layer — linalg
// consumers, sampling, gam, core, the CLIs — can import it without
// cycles.
//
// # Error taxonomy
//
// Every failure the pipeline can surface belongs to exactly one of four
// classes, each with an errors.Is-able sentinel:
//
//   - ErrDegenerate: the *input* is structurally unusable (a forest
//     with non-finite leaf values, a feature whose threshold set is
//     empty or collapses to a single point). Retrying cannot help; the
//     caller must repair or drop the offending input.
//   - ErrNumerical: a *computation* failed numerically (no λ in the
//     grid produced a solvable penalized system, P-IRLS diverged after
//     step-halving). The degradation ladder in core reacts to this
//     class by refitting a structurally simpler model.
//   - ErrDeadline: the context deadline expired mid-pipeline. CtxErr
//     attaches this sentinel to context.DeadlineExceeded so callers can
//     distinguish "out of time" from "cannot compute" at every layer.
//   - ErrConfig: a configuration knob is NaN, negative or otherwise
//     outside its domain. Rejected up front instead of silently
//     defaulted.
//
// # Degradation ladder
//
// When the full explanation cannot be fitted, core walks a ladder of
// structurally simpler candidates (drop tensor terms → shrink spline
// bases → minimal main-effects fit) and records one Degradation per
// rung in Explanation.Degradations, so callers always know exactly what
// they got. The ladder only ever reacts to ErrNumerical; degenerate
// inputs and deadlines are surfaced immediately.
package robust

import (
	"context"
	"errors"
	"fmt"

	"gef/internal/obs"
)

// Sentinel errors; match with errors.Is at any layer.
var (
	// ErrDegenerate marks structurally unusable input: degenerate forest
	// structure (non-finite thresholds or leaf values) or a sampling
	// domain that is empty or collapses to a single point.
	ErrDegenerate = errors.New("degenerate input")
	// ErrNumerical marks a numerically failed computation after all
	// in-stage recovery (ridge escalation, step-halving) was exhausted.
	ErrNumerical = errors.New("numerical failure")
	// ErrDeadline marks a context deadline expiry; it always wraps
	// context.DeadlineExceeded (via CtxErr) so both sentinels match.
	ErrDeadline = errors.New("deadline exceeded")
	// ErrConfig marks an invalid configuration knob (NaN, negative, or
	// out of domain) rejected by strict validation.
	ErrConfig = errors.New("invalid configuration")
)

// CtxErr maps a context error to the robust taxonomy: DeadlineExceeded
// gains the ErrDeadline sentinel (both errors.Is checks succeed),
// Canceled passes through unchanged, nil stays nil.
func CtxErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrDeadline) {
		return fmt.Errorf("%w: %w", ErrDeadline, err)
	}
	return err
}

// FeatureError attributes a degenerate-input failure to one feature, so
// the pipeline can drop exactly that feature and continue with the
// rest. It wraps the underlying cause (usually ErrDegenerate).
type FeatureError struct {
	Feature int
	Err     error
}

func (e *FeatureError) Error() string {
	return fmt.Sprintf("feature %d: %v", e.Feature, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *FeatureError) Unwrap() error { return e.Err }

// Degradation actions, from least to most structural.
const (
	// ActionRidgeEscalation: a penalized system only factorized after
	// escalating the stabilizing ridge (per-λ recovery inside gam).
	ActionRidgeEscalation = "ridge_escalation"
	// ActionStepHalving: a diverging P-IRLS step was recovered by
	// halving toward the previous iterate.
	ActionStepHalving = "step_halving"
	// ActionDropFeature: a selected feature with a degenerate sampling
	// domain was removed from F′.
	ActionDropFeature = "drop_feature"
	// ActionDropTensors: tensor interaction terms were removed from the
	// GAM spec after the full fit failed numerically.
	ActionDropTensors = "drop_tensors"
	// ActionShrinkBases: spline basis sizes were halved after the
	// tensor-free fit still failed.
	ActionShrinkBases = "shrink_bases"
	// ActionMainEffects: the final ladder rung — a minimal-basis
	// main-effects-only fit.
	ActionMainEffects = "main_effects_only"
	// ActionFallbackFamily: the requested surrogate family failed
	// numerically even after its own recovery ladder, and the fit stage
	// fell back to a simpler explainer family (smoother → gam → rules).
	ActionFallbackFamily = "fallback_family"
)

// Degradation records one step the pipeline took to keep producing a
// valid (if simpler) explanation instead of failing outright.
type Degradation struct {
	// Stage is the pipeline stage that degraded ("sampling", "gam").
	Stage string `json:"stage"`
	// Action is one of the Action* constants.
	Action string `json:"action"`
	// Reason is the error message that triggered the degradation.
	Reason string `json:"reason"`
	// Detail carries action-specific specifics (feature index, basis
	// sizes) for human consumption.
	Detail string `json:"detail,omitempty"`
}

func (d Degradation) String() string {
	s := fmt.Sprintf("%s/%s", d.Stage, d.Action)
	if d.Detail != "" {
		s += " (" + d.Detail + ")"
	}
	return s
}

// Metrics instruments (hoisted; see internal/obs). Degradations are a
// labeled family — robust.degradations{stage="...",action="..."} — so a
// scrape distinguishes a sampling shrink from a gam tensor drop;
// recoveries/retries/injected_faults stay scalar (their site is implied
// by the calling stage's span).
var (
	mDegradations = obs.Metrics().CounterVec("robust.degradations", "stage", "action")
	mRecoveries   = obs.Metrics().Counter("robust.recoveries")
	mInjected     = obs.Metrics().Counter("robust.injected_faults")
	mRetries      = obs.Metrics().Counter("robust.retries")
)

// Record appends d to list, increments the labeled
// robust.degradations series, stores the rung in the flight recorder
// (always on, so post-hoc dumps replay the ladder even without tracing)
// and emits a robust.degradation event on the span carried by ctx (a
// no-op when tracing is off).
func Record(ctx context.Context, list *[]Degradation, d Degradation) {
	*list = append(*list, d)
	mDegradations.With(d.Stage, d.Action).Inc()
	obs.RecordDegradation(d.Stage, d.Action, d.Detail, d.Reason)
	obs.FromContext(ctx).Event("robust.degradation",
		obs.Str("stage", d.Stage),
		obs.Str("action", d.Action),
		obs.Str("detail", d.Detail))
}

// Recovered increments the robust.recoveries counter. Stages call it
// when an in-stage mechanism (ridge escalation, step-halving) rescued a
// computation that would otherwise have failed.
func Recovered() { mRecoveries.Inc() }
