package core

import (
	"math"
	"testing"

	"gef/internal/dataset"
	"gef/internal/featsel"
	"gef/internal/forest"
	"gef/internal/gam"
	"gef/internal/gbdt"
	"gef/internal/sampling"
)

// gprimeForest trains a moderate forest on g′ for pipeline tests.
func gprimeForest(t *testing.T) *forest.Forest {
	t.Helper()
	ds := dataset.GPrime(4000, 0.1, 31)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 100, NumLeaves: 16, LearningRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	return f
}

// quickCfg is a CI-sized GEF configuration. K must comfortably exceed the
// spline basis size so every knot span is covered by grid points: the
// Equi-Size strategy is K-sensitive (the paper's Fig. 8 finding), and at
// K ≈ 40 the splines can wiggle between sparse grid points off-grid.
func quickCfg() Config {
	return Config{
		NumUnivariate: 5,
		NumSamples:    8000,
		Sampling:      sampling.Config{Strategy: sampling.EquiSize, K: 100},
		GAM:           gam.Options{Lambdas: gam.LogSpace(1e-2, 1e3, 7)},
		Seed:          9,
	}
}

func TestExplainEndToEnd(t *testing.T) {
	f := gprimeForest(t)
	e, err := Explain(f, quickCfg())
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if len(e.Features) != 5 {
		t.Errorf("|F′| = %d, want 5", len(e.Features))
	}
	if e.Model.NumTerms() != 5 {
		t.Errorf("terms = %d, want 5", e.Model.NumTerms())
	}
	// The GAM must track the forest closely on held-out D* — g′ is
	// additive, so fidelity should be high (paper reports R² 0.986).
	if e.Fidelity.R2 < 0.95 {
		t.Errorf("fidelity R² = %v, want ≥ 0.95 on an additive target", e.Fidelity.R2)
	}
	if e.Fidelity.RMSE <= 0 {
		t.Errorf("fidelity RMSE = %v", e.Fidelity.RMSE)
	}
}

func TestExplainReconstructsComponents(t *testing.T) {
	// The learned splines must correlate with the true g′ generators
	// (paper Fig. 4). Check the sharp sigmoid on x₃ (feature 2).
	f := gprimeForest(t)
	e, err := Explain(f, quickCfg())
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	// Locate the term for feature 2.
	ti := -1
	for i := 0; i < e.Model.NumTerms(); i++ {
		if e.Model.Term(i).Feature == 2 && e.Model.Term(i).Kind == gam.Spline {
			ti = i
		}
	}
	if ti < 0 {
		t.Fatal("no spline term for feature 2")
	}
	x := make([]float64, 5)
	for j := range x {
		x[j] = 0.5
	}
	x[2] = 0.2
	low := e.Model.TermValue(ti, x)
	x[2] = 0.8
	high := e.Model.TermValue(ti, x)
	// True sigmoid jumps from ≈0 to ≈1; centered contributions differ by ≈1.
	if high-low < 0.7 {
		t.Errorf("sigmoid component jump = %v, want ≈ 1", high-low)
	}
}

func TestExplainWithInteractions(t *testing.T) {
	truth := [][2]int{{0, 1}, {2, 4}, {1, 3}}
	ds := dataset.GDoublePrime(4000, 0.1, 33, truth)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 100, NumLeaves: 16, LearningRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	cfg := quickCfg()
	cfg.NumInteractions = 3
	e, err := Explain(f, cfg)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if len(e.Pairs) != 3 {
		t.Fatalf("|F″| = %d, want 3", len(e.Pairs))
	}
	if e.Model.NumTerms() != 8 {
		t.Errorf("terms = %d, want 5 splines + 3 tensors", e.Model.NumTerms())
	}
	if e.Fidelity.R2 < 0.9 {
		t.Errorf("fidelity R² = %v with interactions", e.Fidelity.R2)
	}
}

func TestExplainClassificationForest(t *testing.T) {
	ds := dataset.CensusN(4000, 35)
	f, err := gbdt.Train(ds, gbdt.Params{
		NumTrees: 60, NumLeaves: 16, LearningRate: 0.1,
		Objective: forest.BinaryLogistic, Seed: 1,
	})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	cfg := Config{
		NumUnivariate: 5,
		NumSamples:    4000,
		Sampling:      sampling.Config{Strategy: sampling.KQuantile, K: 30},
		GAM:           gam.Options{Lambdas: gam.LogSpace(1e-1, 1e3, 5)},
		Seed:          3,
	}
	e, err := Explain(f, cfg)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if e.Model.Link() != gam.Logit {
		t.Errorf("link = %v, want logit for a classification forest", e.Model.Link())
	}
	// Predictions must be probabilities.
	for _, x := range e.Test.X[:50] {
		p := e.Model.Predict(x)
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func TestCategoricalHeuristic(t *testing.T) {
	if !isCategorical([]float64{1, 1, 2, 2, 3}, 10) {
		t.Error("3 distinct thresholds should be categorical with L=10")
	}
	many := make([]float64, 20)
	for i := range many {
		many[i] = float64(i)
	}
	if isCategorical(many, 10) {
		t.Error("20 distinct thresholds should not be categorical")
	}
}

func TestExplainBuildsFactorTermsForCategoricals(t *testing.T) {
	// A forest whose feature has just 2 distinct thresholds (a 0/1-style
	// feature) must yield a factor term.
	ds := dataset.CensusN(3000, 37)
	f, err := gbdt.Train(ds, gbdt.Params{
		NumTrees: 40, NumLeaves: 8, LearningRate: 0.2,
		Objective: forest.BinaryLogistic, Seed: 1,
	})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	cfg := Config{
		NumUnivariate: 6,
		NumSamples:    3000,
		Sampling:      sampling.Config{Strategy: sampling.AllThresholds},
		GAM:           gam.Options{Lambdas: gam.LogSpace(1e-1, 1e3, 5)},
		Seed:          5,
	}
	e, err := Explain(f, cfg)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	thresholds := f.ThresholdsByFeature()
	for i := 0; i < e.Model.NumTerms(); i++ {
		ts := e.Model.Term(i)
		cat := isCategorical(thresholds[ts.Feature], 10)
		if cat && ts.Kind != gam.Factor {
			t.Errorf("feature %d is categorical but got %v term", ts.Feature, ts.Kind)
		}
		if !cat && ts.Kind != gam.Spline {
			t.Errorf("feature %d is continuous but got %v term", ts.Feature, ts.Kind)
		}
	}
}

func TestExplainInvalidForest(t *testing.T) {
	bad := &forest.Forest{NumFeatures: 0}
	if _, err := Explain(bad, Config{}); err == nil {
		t.Error("accepted invalid forest")
	}
}

func TestExplainSplitlessForest(t *testing.T) {
	f := &forest.Forest{
		Trees:       []forest.Tree{{Nodes: []forest.Node{{Left: -1, Right: -1, Value: 1, Cover: 1}}}},
		NumFeatures: 2,
		Objective:   forest.Regression,
	}
	if _, err := Explain(f, Config{NumSamples: 100}); err == nil {
		t.Error("accepted a forest with no splits")
	}
}

func TestExplainInstanceDecomposition(t *testing.T) {
	f := gprimeForest(t)
	e, err := Explain(f, quickCfg())
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	x := []float64{0.3, 0.7, 0.6, 0.2, 0.9}
	le := e.ExplainInstance(x)
	var sum float64 = le.Intercept
	for _, c := range le.Contributions {
		sum += c.Value
	}
	if math.Abs(sum-le.GamPrediction) > 1e-9 {
		t.Errorf("contributions sum to %v, prediction %v", sum, le.GamPrediction)
	}
	// The GAM should be near the forest at this in-domain point.
	if math.Abs(le.GamPrediction-le.ForestOutput) > 0.5 {
		t.Errorf("GAM %v far from forest %v", le.GamPrediction, le.ForestOutput)
	}
	// Contributions must be sorted by decreasing magnitude.
	for i := 1; i < len(le.Contributions); i++ {
		if math.Abs(le.Contributions[i].Value) > math.Abs(le.Contributions[i-1].Value)+1e-12 {
			t.Error("contributions not sorted by magnitude")
		}
	}
}

func TestEvaluateOnOriginalData(t *testing.T) {
	ds := dataset.GPrime(4000, 0.1, 31)
	train, test := ds.Split(0.2, 1)
	f, err := gbdt.Train(train, gbdt.Params{NumTrees: 100, NumLeaves: 16, LearningRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	e, err := Explain(f, quickCfg())
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	row := e.EvaluateOn(test)
	if row.ForestVsLabels < 0.9 {
		t.Errorf("forest R² = %v on its own test data", row.ForestVsLabels)
	}
	if row.GamVsForest < 0.9 {
		t.Errorf("Γ vs T R² = %v, want ≥ 0.9 (paper: 0.986)", row.GamVsForest)
	}
	if row.GamVsLabels < 0.85 {
		t.Errorf("Γ vs y R² = %v, want ≥ 0.85 (paper: 0.982)", row.GamVsLabels)
	}
}

func TestForcedPairs(t *testing.T) {
	f := gprimeForest(t)
	cfg := quickCfg()
	cfg.ForcedPairs = [][2]int{{3, 1}, {0, 4}} // unordered input accepted
	e, err := Explain(f, cfg)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if len(e.Pairs) != 2 {
		t.Fatalf("pairs = %v", e.Pairs)
	}
	// Normalized to I < J.
	if e.Pairs[0].I != 1 || e.Pairs[0].J != 3 {
		t.Errorf("pair 0 = %+v, want (1,3)", e.Pairs[0])
	}
	if e.Model.NumTerms() != 7 { // 5 splines + 2 tensors
		t.Errorf("terms = %d, want 7", e.Model.NumTerms())
	}
}

func TestForcedPairsInvalid(t *testing.T) {
	f := gprimeForest(t)
	for _, bad := range [][2]int{{0, 0}, {-1, 2}, {0, 99}} {
		cfg := quickCfg()
		cfg.ForcedPairs = [][2]int{bad}
		if _, err := Explain(f, cfg); err == nil {
			t.Errorf("accepted invalid forced pair %v", bad)
		}
	}
}

func TestHStatSampleClamped(t *testing.T) {
	// HStatSample larger than D* must not panic — it clamps to the
	// training rows.
	f := gprimeForest(t)
	cfg := quickCfg()
	cfg.NumSamples = 300
	cfg.NumInteractions = 1
	cfg.InteractionStrategy = featsel.HStat
	cfg.HStatSample = 10000
	if _, err := Explain(f, cfg); err != nil {
		t.Fatalf("Explain: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.NumUnivariate != 5 || c.NumSamples != 100000 || c.TestFraction != 0.2 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c.Sampling.Strategy != sampling.EquiSize || c.InteractionStrategy != featsel.GainPath {
		t.Errorf("strategy defaults wrong: %+v", c)
	}
	if c.CategoricalThreshold != 10 {
		t.Errorf("L = %d, want the paper's 10", c.CategoricalThreshold)
	}
}
