package core

import (
	"bytes"
	"testing"

	"gef/internal/robust"
)

// engineCfg is a fast pipeline configuration for cache tests.
func engineCfg() Config {
	cfg := quickCfg()
	cfg.NumSamples = 3000
	cfg.NumInteractions = 1
	return cfg
}

func marshalModel(t *testing.T, e *Explanation) []byte {
	t.Helper()
	b, err := e.Model.Marshal(true)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestEngineWarmExplainBitwiseIdentical is the tentpole contract: a
// second Explain with the same forest and config is served from the
// cache (every cacheable stage hits) and produces bitwise-identical
// output.
func TestEngineWarmExplainBitwiseIdentical(t *testing.T) {
	f := gprimeForest(t)
	eng := NewEngine()
	cold, err := eng.Explain(f, engineCfg())
	if err != nil {
		t.Fatalf("cold Explain: %v", err)
	}
	st := eng.CacheStats()
	for _, name := range []string{"stats", "featsel", "domains", "sample", "interactions"} {
		if st.Stages[name].Hits != 0 {
			t.Errorf("cold run recorded %d hits for stage %q", st.Stages[name].Hits, name)
		}
		if st.Stages[name].Misses == 0 {
			t.Errorf("cold run recorded no miss for stage %q", name)
		}
	}

	warm, err := eng.Explain(f, engineCfg())
	if err != nil {
		t.Fatalf("warm Explain: %v", err)
	}
	st = eng.CacheStats()
	for _, name := range []string{"stats", "featsel", "domains", "sample", "interactions"} {
		if st.Stages[name].Hits == 0 {
			t.Errorf("warm run recorded no hit for stage %q", name)
		}
		if st.Stages[name].Misses != 1 {
			t.Errorf("stage %q misses = %d, want 1", name, st.Stages[name].Misses)
		}
	}
	if !bytes.Equal(marshalModel(t, cold), marshalModel(t, warm)) {
		t.Error("warm-cache model differs from cold-cache model")
	}
	if cold.Fidelity != warm.Fidelity {
		t.Errorf("fidelity differs: %+v vs %+v", cold.Fidelity, warm.Fidelity)
	}
	if len(st.String()) == 0 || st.Entries == 0 || st.Bytes == 0 {
		t.Errorf("implausible stats: %+v", st)
	}
}

// TestEngineWarmAutoExplain: a warm AutoExplain skips straight to the
// candidate fits — every shared stage hits — and returns a
// bitwise-identical model (the acceptance criterion of ISSUE 5).
func TestEngineWarmAutoExplain(t *testing.T) {
	f := gprimeForest(t)
	acfg := AutoConfig{Base: engineCfg(), MaxUnivariate: 4, MaxInteractions: 1}
	eng := NewEngine()
	cold, coldTrace, err := eng.AutoExplain(f, acfg)
	if err != nil {
		t.Fatalf("cold AutoExplain: %v", err)
	}
	warm, warmTrace, err := eng.AutoExplain(f, acfg)
	if err != nil {
		t.Fatalf("warm AutoExplain: %v", err)
	}
	st := eng.CacheStats()
	if st.Hits == 0 {
		t.Fatal("warm AutoExplain recorded no cache hits")
	}
	for _, name := range []string{"stats", "featsel", "domains", "sample", "interactions"} {
		if st.Stages[name].Hits == 0 {
			t.Errorf("warm AutoExplain: no hit for stage %q", name)
		}
	}
	if st.Stages["fit"].Hits == 0 {
		t.Error("candidate fits recorded no basis-cache hits")
	}
	if !bytes.Equal(marshalModel(t, cold), marshalModel(t, warm)) {
		t.Error("warm AutoExplain model differs from cold")
	}
	if len(coldTrace) != len(warmTrace) {
		t.Fatalf("trace length differs: %d vs %d", len(coldTrace), len(warmTrace))
	}
	for i := range coldTrace {
		if coldTrace[i] != warmTrace[i] {
			t.Errorf("trace step %d differs: %+v vs %+v", i, coldTrace[i], warmTrace[i])
		}
	}
}

// TestEngineSharesAcrossConfigs: configs that differ only downstream
// still share the per-forest stats/featsel artifacts.
func TestEngineSharesAcrossConfigs(t *testing.T) {
	f := gprimeForest(t)
	eng := NewEngine()
	if _, err := eng.Explain(f, engineCfg()); err != nil {
		t.Fatal(err)
	}
	cfg := engineCfg()
	cfg.NumUnivariate = 3 // different F′ prefix: domains/sample must miss
	if _, err := eng.Explain(f, cfg); err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Stages["stats"].Hits == 0 || st.Stages["featsel"].Hits == 0 {
		t.Errorf("per-forest stages did not hit across configs: %+v", st.Stages)
	}
	if st.Stages["domains"].Misses != 2 {
		t.Errorf("domains misses = %d, want 2 (distinct F′)", st.Stages["domains"].Misses)
	}
}

// TestEngineBudgetEviction: the cache respects its byte budget — a tiny
// budget stays within bounds (large artifacts are simply not retained)
// and results remain identical to an uncached engine.
func TestEngineBudgetEviction(t *testing.T) {
	f := gprimeForest(t)
	small := NewEngineBudget(4096)
	a, err := small.Explain(f, engineCfg())
	if err != nil {
		t.Fatal(err)
	}
	if st := small.CacheStats(); st.Bytes > 4096 {
		t.Errorf("cache holds %d bytes, budget 4096", st.Bytes)
	}
	b, err := small.Explain(f, engineCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalModel(t, a), marshalModel(t, b)) {
		t.Error("budget-limited engine produced differing runs")
	}

	off := NewEngineBudget(0)
	c, err := off.Explain(f, engineCfg())
	if err != nil {
		t.Fatal(err)
	}
	if st := off.CacheStats(); st.Entries != 0 || st.Stages["sample"].Hits != 0 {
		t.Errorf("budget 0 engine cached anyway: %+v", st)
	}
	if !bytes.Equal(marshalModel(t, a), marshalModel(t, c)) {
		t.Error("uncached engine output differs")
	}
}

// TestEngineInjectionBypass: with a fault injector installed the engine
// must not serve cached artifacts — otherwise a warm cache would mask
// the very computations a fault plan targets.
func TestEngineInjectionBypass(t *testing.T) {
	f := gprimeForest(t)
	eng := NewEngine()
	if _, err := eng.Explain(f, engineCfg()); err != nil {
		t.Fatal(err)
	}
	before := eng.CacheStats()

	// Empty plan: nothing fires, but the injector is installed.
	robust.SetInjector(robust.NewInjector(1))
	defer robust.SetInjector(nil)
	if _, err := eng.Explain(f, engineCfg()); err != nil {
		t.Fatal(err)
	}
	after := eng.CacheStats()
	// The fit stage's basis cache stays live under injection (bases are
	// pure values, no injection site fires inside them); the artifact
	// stages must neither hit nor count misses.
	for _, name := range []string{"stats", "featsel", "domains", "sample", "interactions"} {
		if after.Stages[name] != before.Stages[name] {
			t.Errorf("stage %q touched the artifact cache under injection: %+v → %+v",
				name, before.Stages[name], after.Stages[name])
		}
	}
}
