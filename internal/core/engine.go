package core

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"sync"

	"gef/internal/dataset"
	"gef/internal/featsel"
	"gef/internal/forest"
	"gef/internal/gam"
	"gef/internal/obs"
	"gef/internal/robust"
)

// Cache instruments, hoisted like the other pipeline metrics. One
// labeled family per outcome — series land in the registry as
// engine.cache_hits{stage="..."} / engine.cache_misses{stage="..."} and
// aggregate naturally under Prometheus sum().
var (
	mEngineHits   = obs.Metrics().CounterVec("engine.cache_hits", "stage")
	mEngineMisses = obs.Metrics().CounterVec("engine.cache_misses", "stage")
)

// defaultCacheBudget bounds the payload bytes the artifact cache may
// hold. Sampled datasets dominate artifact cost (|D*| rows × width ×
// 8 bytes), so the budget is sized to keep a handful of D* variants
// resident without letting a batch sweep grow the process unboundedly.
const defaultCacheBudget = 256 << 20

// Engine runs the staged GEF pipeline with a bounded cross-call
// artifact cache. Each stage (featsel, domains, sample, interactions,
// fit) derives a deterministic cache key — the forest fingerprint plus
// exactly the configuration fields the stage reads — so AutoExplain's
// candidate search, repeated Explain calls with overlapping configs and
// batch CLI runs reuse forest statistics, threshold sets, sampling
// domains, sampled D* splits and interaction rankings instead of
// recomputing them — and because every explainer family shares those
// upstream stages, a family sweep on one engine pays for them once.
// Fitted GAMs are never cached (they depend on the whole upstream
// state); the gam fit instead reuses B-spline bases and penalty blocks
// through a session-wide gam.BasisCache. The other families cache their
// fitted models as ordinary fit-stage artifacts (see Surrogate.Key).
//
// Cached artifacts are immutable by convention: stages copy anything
// they need to mutate, and result fields that alias cache entries
// (Explanation.Domains, .Train, .Test) are documented as shared.
// Because every artifact is a pure function of its key, a warm-cache run
// is bitwise identical to a cold one — the determinism contract
// (identical output at any worker count) extends across cache states.
// When a fault injector is installed the cache is bypassed entirely, so
// injection plans always exercise the real computation they target.
//
// An Engine is safe for concurrent use.
type Engine struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	stages  map[string]*StageCacheStats

	basis *gam.BasisCache
}

// cacheEntry is one cached artifact with its bookkeeping.
type cacheEntry struct {
	key   string
	stage string
	val   any
	cost  int64
}

// NewEngine returns an engine with the default cache budget.
func NewEngine() *Engine { return NewEngineBudget(defaultCacheBudget) }

// NewEngineBudget returns an engine whose artifact cache holds at most
// budgetBytes of artifact payload (approximate, counted per artifact);
// least-recently-used artifacts are evicted beyond it. A budget ≤ 0
// disables caching — every stage recomputes.
func NewEngineBudget(budgetBytes int64) *Engine {
	return &Engine{
		budget:  budgetBytes,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		stages:  make(map[string]*StageCacheStats),
		basis:   gam.NewBasisCache(),
	}
}

// shared is the process-wide engine behind the package-level Explain /
// AutoExplain wrappers, so plain library use and batch CLI runs get
// cross-call reuse without holding an explicit session.
var shared = NewEngine()

// SharedEngine returns the process-wide engine the package-level
// Explain/AutoExplain wrappers run on (e.g. for cache-stats reporting).
func SharedEngine() *Engine { return shared }

// Explain runs the full GEF pipeline on the forest through e's cache.
func (e *Engine) Explain(f *forest.Forest, cfg Config) (*Explanation, error) {
	return e.ExplainCtx(context.Background(), f, cfg)
}

// AutoExplain is AutoExplainCtx without context propagation.
func (e *Engine) AutoExplain(f *forest.Forest, cfg AutoConfig) (*Explanation, []AutoStep, error) {
	return e.AutoExplainCtx(context.Background(), f, cfg)
}

// StageCacheStats counts one stage's artifact-cache outcomes.
type StageCacheStats struct {
	Hits   int64
	Misses int64
}

// CacheStats is a point-in-time summary of an engine's artifact cache.
type CacheStats struct {
	Hits    int64 // artifact lookups served from cache
	Misses  int64 // artifact lookups that had to compute
	Entries int   // artifacts currently resident
	Bytes   int64 // approximate payload bytes currently resident
	// Stages breaks hits/misses down per stage name (stats, featsel,
	// domains, sample, interactions, fit — fit counts basis/penalty
	// reuse inside gam.BasisCache).
	Stages map[string]StageCacheStats
}

// CacheStats returns the engine's current cache statistics.
//
//lint:ignore obsspan diagnostic snapshot under a mutex; spanning it would distort the traces it reports on
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := CacheStats{
		Entries: e.lru.Len(),
		Bytes:   e.used,
		Stages:  make(map[string]StageCacheStats, len(e.stages)),
	}
	for name, st := range e.stages {
		s.Stages[name] = *st
		s.Hits += st.Hits
		s.Misses += st.Misses
	}
	return s
}

// String renders the stats as the one-line summary the CLIs print under
// -v. Stage order is sorted for deterministic output.
//
//lint:ignore obsspan string formatting of a small struct; no pipeline work
func (s CacheStats) String() string {
	names := make([]string, 0, len(s.Stages))
	for n := range s.Stages {
		names = append(names, n)
	}
	sort.Strings(names)
	line := fmt.Sprintf("engine cache: %d hits / %d misses, %d entries, %s",
		s.Hits, s.Misses, s.Entries, formatBytes(s.Bytes))
	if len(names) > 0 {
		line += " ("
		for i, n := range names {
			if i > 0 {
				line += ", "
			}
			line += fmt.Sprintf("%s %d/%d", n, s.Stages[n].Hits, s.Stages[n].Misses)
		}
		line += ")"
	}
	return line
}

func formatBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// addStage accumulates per-stage hit/miss deltas (also feeding the
// process-wide metrics registry).
func (e *Engine) addStage(stage string, hits, misses int64) {
	if hits != 0 {
		mEngineHits.With(stage).Add(hits)
	}
	if misses != 0 {
		mEngineMisses.With(stage).Add(misses)
	}
	e.mu.Lock()
	st := e.stages[stage]
	if st == nil {
		st = &StageCacheStats{}
		e.stages[stage] = st
	}
	st.Hits += hits
	st.Misses += misses
	e.mu.Unlock()
}

// lookup fetches a cached artifact and refreshes its recency.
func (e *Engine) lookup(key string) (any, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.entries[key]
	if !ok {
		return nil, false
	}
	e.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// store inserts an artifact and evicts least-recently-used entries past
// the budget. Artifacts larger than the whole budget are not cached.
func (e *Engine) store(stage, key string, val any) {
	cost := artifactCost(val)
	if cost > e.budget {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.entries[key]; ok { // racing computation of the same key
		e.lru.MoveToFront(el)
		return
	}
	e.entries[key] = e.lru.PushFront(&cacheEntry{key: key, stage: stage, val: val, cost: cost})
	e.used += cost
	for e.used > e.budget {
		back := e.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		e.lru.Remove(back)
		delete(e.entries, ent.key)
		e.used -= ent.cost
	}
}

// runStage executes one pipeline stage through the artifact cache: a
// hit returns the cached artifact under an engine.<stage> span with
// cache=hit; a miss (or an uncacheable/bypassed stage) runs the stage
// under the same span with the cache attribute saying why. Stages with
// an empty key are never cached; an installed fault injector bypasses
// the cache so fault plans hit real computations.
func (e *Engine) runStage(ctx context.Context, p *pipeline, sg stage) (any, error) {
	key := ""
	if sg.key != nil {
		key = sg.key(p)
	}
	cacheable := key != "" && e.budget > 0 && !robust.InjectionActive()
	if cacheable {
		if v, ok := e.lookup(key); ok {
			e.addStage(sg.name, 1, 0)
			_, sp := obs.Start(ctx, "engine."+sg.name, obs.Str("cache", "hit"))
			sp.End()
			return v, nil
		}
		e.addStage(sg.name, 0, 1)
	}
	mode := "miss"
	switch {
	case key == "":
		mode = "uncached"
	case !cacheable:
		mode = "bypass"
	}
	sctx, sp := obs.Start(ctx, "engine."+sg.name, obs.Str("cache", mode))
	defer sp.End()
	v, err := sg.run(sctx, p)
	if err != nil {
		return nil, err
	}
	if cacheable {
		e.store(sg.name, key, v)
	}
	return v, nil
}

// artifactCost approximates an artifact's resident payload in bytes for
// the cache budget. Estimates only need to be proportionate: D* samples
// dominate, domain/threshold maps are next, rankings are noise.
func artifactCost(v any) int64 {
	switch a := v.(type) {
	case *forestStats:
		c := int64(len(a.importance)+len(a.used))*8 + 256
		for _, t := range a.thresholds {
			c += int64(len(t))*8 + 48
		}
		return c
	case []int:
		return int64(len(a))*8 + 64
	case *domainsArtifact:
		c := int64(len(a.features))*8 + 256
		if a.domains != nil {
			c += int64(len(a.domains.Fill)) * 8
			for _, pts := range a.domains.Points {
				c += int64(len(pts))*8 + 48
			}
			c += int64(len(a.domains.Ranges)) * 64
		}
		return c
	case *sampleArtifact:
		var c int64 = 256
		for _, ds := range []*dataset.Dataset{a.train, a.test} {
			if ds == nil || len(ds.X) == 0 {
				continue
			}
			c += int64(len(ds.X)) * int64(len(ds.X[0])+1) * 8
		}
		return c
	case []featsel.Pair:
		return int64(len(a))*24 + 64
	case *fitArtifact:
		return a.cost()
	default:
		return 1024
	}
}
