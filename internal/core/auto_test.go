package core

import (
	"math/rand"
	"testing"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gam"
	"gef/internal/gbdt"
	"gef/internal/sampling"
)

func autoBase() Config {
	return Config{
		NumSamples: 5000,
		Sampling:   sampling.Config{Strategy: sampling.EquiSize, K: 100},
		GAM:        gam.Options{Lambdas: gam.LogSpace(1e-2, 1e3, 5)},
		Seed:       17,
	}
}

func TestAutoExplainStopsAtUsefulFeatures(t *testing.T) {
	// Target uses only 2 of 6 features: the search must stop at 2 or 3
	// splines rather than spending the full budget.
	rng := rand.New(rand.NewSource(61))
	d := &dataset.Dataset{Task: dataset.Regression}
	for i := 0; i < 3000; i++ {
		row := make([]float64, 6)
		for j := range row {
			row[j] = rng.Float64()
		}
		d.X = append(d.X, row)
		d.Y = append(d.Y, 3*row[1]+2*row[4]+0.05*rng.NormFloat64())
	}
	f, err := gbdt.Train(d, gbdt.Params{NumTrees: 60, NumLeaves: 16, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	e, trace, err := AutoExplain(f, AutoConfig{Base: autoBase()})
	if err != nil {
		t.Fatalf("AutoExplain: %v", err)
	}
	if got := len(e.Features); got < 2 || got > 3 {
		t.Errorf("AutoExplain chose %d splines, want 2–3 for a 2-feature target", got)
	}
	if len(trace) < 2 {
		t.Fatalf("trace too short: %+v", trace)
	}
	// Trace ends with a rejected step (or the cap).
	last := trace[len(trace)-1]
	if last.Accepted && last.NumUnivariate < 6 && last.NumInteractions == 0 {
		t.Errorf("search stopped while still improving: %+v", trace)
	}
	if e.Fidelity.R2 < 0.9 {
		t.Errorf("auto explainer fidelity R² = %v", e.Fidelity.R2)
	}
}

func TestAutoExplainUsesAllOfGPrime(t *testing.T) {
	// All five g′ features matter, so the search should keep all five.
	ds := dataset.GPrime(3000, 0.1, 63)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 80, NumLeaves: 16, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	e, _, err := AutoExplain(f, AutoConfig{Base: autoBase()})
	if err != nil {
		t.Fatalf("AutoExplain: %v", err)
	}
	if len(e.Features) != 5 {
		t.Errorf("AutoExplain chose %d splines, want 5 on g′", len(e.Features))
	}
}

func TestAutoExplainRespectsCaps(t *testing.T) {
	ds := dataset.GPrime(2000, 0.1, 67)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 40, NumLeaves: 16, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	e, trace, err := AutoExplain(f, AutoConfig{Base: autoBase(), MaxUnivariate: 2, MaxInteractions: 1})
	if err != nil {
		t.Fatalf("AutoExplain: %v", err)
	}
	if len(e.Features) > 2 {
		t.Errorf("cap violated: %d splines", len(e.Features))
	}
	for _, s := range trace {
		if s.NumUnivariate > 2 || s.NumInteractions > 1 {
			t.Errorf("trace step exceeds caps: %+v", s)
		}
	}
}

func TestAutoExplainSplitlessForest(t *testing.T) {
	f := &forest.Forest{
		Trees:       []forest.Tree{{Nodes: []forest.Node{{Left: -1, Right: -1, Value: 1, Cover: 1}}}},
		NumFeatures: 2,
		Objective:   forest.Regression,
	}
	if _, _, err := AutoExplain(f, AutoConfig{Base: autoBase()}); err == nil {
		t.Error("accepted splitless forest")
	}
}
