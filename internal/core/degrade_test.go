package core

import (
	"strings"
	"testing"

	"gef/internal/gam"
	"gef/internal/robust"
)

// TestDegradeLadderOrder walks degrade() from a full spec to exhaustion
// and asserts the exact rung order of the structural ladder: drop the
// tensor terms, halve the spline bases, fall back to the minimal
// main-effects fit, then give up.
func TestDegradeLadderOrder(t *testing.T) {
	spec := gam.Spec{Terms: []gam.TermSpec{
		{Kind: gam.Spline, Feature: 0, NumBasis: 12},
		{Kind: gam.Spline, Feature: 1, NumBasis: 12},
		{Kind: gam.Factor, Feature: 2},
		{Kind: gam.Tensor, Feature: 0, Feature2: 1, NumBasis: 6},
		{Kind: gam.Tensor, Feature: 0, Feature2: 2, NumBasis: 6},
	}}
	want := []struct {
		action string
		detail string
	}{
		{robust.ActionDropTensors, "2 tensor terms removed"},
		{robust.ActionShrinkBases, "spline bases halved (max 12 → 6)"},
		{robust.ActionMainEffects, "minimal main-effects fit (basis 4)"},
	}
	for i, w := range want {
		next, d, ok := degrade(spec)
		if !ok {
			t.Fatalf("rung %d: ladder ended early (want %s)", i, w.action)
		}
		if d.Action != w.action {
			t.Fatalf("rung %d: action %q, want %q", i, d.Action, w.action)
		}
		if d.Detail != w.detail {
			t.Errorf("rung %d: detail %q, want %q", i, d.Detail, w.detail)
		}
		if d.Stage != "gam" {
			t.Errorf("rung %d: stage %q, want \"gam\"", i, d.Stage)
		}
		spec = next
	}
	if _, _, ok := degrade(spec); ok {
		t.Error("ladder did not exhaust after the main-effects rung")
	}
	// The terminal spec: factor untouched, splines at minBasis, no tensors.
	for _, term := range spec.Terms {
		switch term.Kind {
		case gam.Tensor:
			t.Errorf("tensor term survived the ladder: %+v", term)
		case gam.Spline:
			if term.NumBasis != minBasis {
				t.Errorf("spline basis %d, want %d", term.NumBasis, minBasis)
			}
		}
	}
}

// TestFitLadderRecordsRungs drives fitLadder with an injector that
// fails the first two fit ordinals (the full spec and the tensor-free
// refit): the ladder must record exactly [drop_tensors, shrink_bases]
// in that order, and the third attempt succeeds.
func TestFitLadderRecordsRungs(t *testing.T) {
	f := gprimeForest(t)
	cfg := engineCfg()
	robust.SetInjector(robust.NewInjector(1,
		robust.FailAlways(robust.SiteCholesky, 0),
		robust.FailAlways(robust.SiteCholesky, 1)))
	defer robust.SetInjector(nil)

	e, err := NewEngine().Explain(f, cfg)
	if err != nil {
		t.Fatalf("Explain under injection: %v", err)
	}
	var actions []string
	for _, d := range e.Degradations {
		if d.Stage == "gam" {
			actions = append(actions, d.Action)
		}
	}
	want := []string{robust.ActionDropTensors, robust.ActionShrinkBases}
	if strings.Join(actions, ",") != strings.Join(want, ",") {
		t.Fatalf("recorded rungs %v, want %v", actions, want)
	}
	for _, d := range e.Degradations {
		if d.Stage == "gam" && d.Reason == "" {
			t.Errorf("rung %s recorded without a reason", d.Action)
		}
	}
}
