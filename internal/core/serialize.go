package core

import (
	"context"
	"encoding/json"
	"fmt"

	"gef/internal/featsel"
	"gef/internal/gam"
	"gef/internal/obs"
	"gef/internal/robust"
	"gef/internal/sampling"
)

// explanationFormatVersion guards the Explanation JSON layout; bump it
// on any incompatible change so old artifacts fail loudly instead of
// deserializing garbage. Version 2 added the explainer-family tag and
// the family-specific payload; version-1 blobs (always GAM) are still
// accepted.
const explanationFormatVersion = 2

// explanationJSON is the serialized form of an Explanation. The forest
// and the D* splits are deliberately omitted: the forest is the input
// the caller already owns (and D* is reproducible from Config.Seed),
// while the fitted model, the selected structure, the sampling domains
// and the degradation record are the explanation itself.
type explanationJSON struct {
	Version int `json:"version"`
	// Family tags the payload's explainer family (empty in version-1
	// blobs, meaning gam).
	Family string `json:"family,omitempty"`
	// Model carries the gam family's serialized model (its historical
	// field, kept so version-1 blobs and CI-bearing GAM payloads keep
	// their layout); Payload carries every other family's model state.
	Model        json.RawMessage      `json:"model,omitempty"`
	Payload      json.RawMessage      `json:"payload,omitempty"`
	Features     []int                `json:"features"`
	Pairs        []featsel.Pair       `json:"pairs,omitempty"`
	Domains      *sampling.Domains    `json:"domains,omitempty"`
	Fidelity     Fidelity             `json:"fidelity"`
	Config       Config               `json:"config"`
	Degradations []robust.Degradation `json:"degradations,omitempty"`
}

// Marshal serializes the explanation to JSON. includeCI is forwarded to
// the GAM model serializer: with it the penalized Cholesky factor is
// embedded so credible intervals survive the round trip, at O(p²/2)
// floats of extra payload (it is ignored by the other families). Forest,
// Train and Test are not serialized — see Unmarshal for what a reloaded
// explanation can and cannot do.
func (e *Explanation) Marshal(includeCI bool) ([]byte, error) {
	fam := e.Family
	if fam == "" {
		fam = FamilyGAM
	}
	_, sp := obs.Start(context.Background(), "gef.marshal_explanation",
		obs.Int("features", len(e.Features)), obs.Int("pairs", len(e.Pairs)),
		obs.Str("family", fam), obs.Bool("include_ci", includeCI))
	defer sp.End()
	ej := explanationJSON{
		Version:      explanationFormatVersion,
		Family:       fam,
		Features:     e.Features,
		Pairs:        e.Pairs,
		Domains:      e.Domains,
		Fidelity:     e.Fidelity,
		Config:       e.Config,
		Degradations: e.Degradations,
	}
	switch {
	case e.Model != nil:
		// The gam family keeps its dedicated field so includeCI (and
		// version-1 readers of the inner model blob) continue to work.
		mb, err := e.Model.Marshal(includeCI)
		if err != nil {
			return nil, fmt.Errorf("gef: marshaling explanation model: %w", err)
		}
		ej.Model = mb
	case e.Surrogate != nil:
		pb, err := e.Surrogate.MarshalPayload()
		if err != nil {
			return nil, fmt.Errorf("gef: marshaling %s explanation payload: %w", fam, err)
		}
		ej.Payload = pb
	default:
		return nil, fmt.Errorf("gef: cannot marshal an explanation without a model")
	}
	return json.Marshal(ej)
}

// Unmarshal reconstructs an explanation serialized by Marshal (current
// or version-1 format). The result predicts, explains instances and
// reports its structure, fidelity and degradations; Forest, Train and
// Test are nil, so methods needing them (EvaluateOn, ExplainInstance's
// forest cross-check) must not be called on a reloaded explanation.
// Rule-family payloads reload as summary-only models (they predict NaN
// — the source forest is not part of the payload). A blob tagged with
// an unregistered family fails with a typed robust.ErrConfig.
func Unmarshal(data []byte) (*Explanation, error) {
	_, sp := obs.Start(context.Background(), "gef.unmarshal_explanation",
		obs.Int("bytes", len(data)))
	defer sp.End()
	var ej explanationJSON
	if err := json.Unmarshal(data, &ej); err != nil {
		return nil, fmt.Errorf("gef: parsing explanation JSON: %w", err)
	}
	if ej.Version < 1 || ej.Version > explanationFormatVersion {
		return nil, fmt.Errorf("gef: explanation format version %d, want 1..%d", ej.Version, explanationFormatVersion)
	}
	fam := ej.Family
	if fam == "" {
		fam = FamilyGAM // version-1 blobs predate families and are always GAM
	}
	sur, err := surrogateFor(fam)
	if err != nil {
		return nil, fmt.Errorf("gef: reloading explanation: %w", err)
	}
	ex := &Explanation{
		Family:       fam,
		Features:     ej.Features,
		Pairs:        ej.Pairs,
		Domains:      ej.Domains,
		Fidelity:     ej.Fidelity,
		Config:       ej.Config,
		Degradations: ej.Degradations,
	}
	if fam == FamilyGAM {
		model, err := gam.UnmarshalModel(ej.Model)
		if err != nil {
			return nil, fmt.Errorf("gef: reloading explanation model: %w", err)
		}
		ex.Model = model
		ex.Surrogate = &gamModel{m: model}
		return ex, nil
	}
	codec, ok := sur.(PayloadCodec)
	if !ok {
		return nil, fmt.Errorf("gef: family %q cannot reload serialized payloads: %w", fam, robust.ErrConfig)
	}
	m, err := codec.UnmarshalPayload(ej.Payload)
	if err != nil {
		return nil, fmt.Errorf("gef: reloading %s explanation payload: %w", fam, err)
	}
	ex.Surrogate = m
	return ex, nil
}
