package core

import (
	"context"
	"encoding/json"
	"fmt"

	"gef/internal/featsel"
	"gef/internal/gam"
	"gef/internal/obs"
	"gef/internal/robust"
	"gef/internal/sampling"
)

// explanationFormatVersion guards the Explanation JSON layout; bump it
// on any incompatible change so old artifacts fail loudly instead of
// deserializing garbage.
const explanationFormatVersion = 1

// explanationJSON is the serialized form of an Explanation. The forest
// and the D* splits are deliberately omitted: the forest is the input
// the caller already owns (and D* is reproducible from Config.Seed),
// while the fitted model, the selected structure, the sampling domains
// and the degradation record are the explanation itself.
type explanationJSON struct {
	Version      int                  `json:"version"`
	Model        json.RawMessage      `json:"model"`
	Features     []int                `json:"features"`
	Pairs        []featsel.Pair       `json:"pairs,omitempty"`
	Domains      *sampling.Domains    `json:"domains,omitempty"`
	Fidelity     Fidelity             `json:"fidelity"`
	Config       Config               `json:"config"`
	Degradations []robust.Degradation `json:"degradations,omitempty"`
}

// Marshal serializes the explanation to JSON. includeCI is forwarded to
// the GAM model serializer: with it the penalized Cholesky factor is
// embedded so credible intervals survive the round trip, at O(p²/2)
// floats of extra payload. Forest, Train and Test are not serialized —
// see Unmarshal for what a reloaded explanation can and cannot do.
func (e *Explanation) Marshal(includeCI bool) ([]byte, error) {
	_, sp := obs.Start(context.Background(), "gef.marshal_explanation",
		obs.Int("features", len(e.Features)), obs.Int("pairs", len(e.Pairs)),
		obs.Bool("include_ci", includeCI))
	defer sp.End()
	if e.Model == nil {
		return nil, fmt.Errorf("gef: cannot marshal an explanation without a model")
	}
	mb, err := e.Model.Marshal(includeCI)
	if err != nil {
		return nil, fmt.Errorf("gef: marshaling explanation model: %w", err)
	}
	return json.Marshal(explanationJSON{
		Version:      explanationFormatVersion,
		Model:        mb,
		Features:     e.Features,
		Pairs:        e.Pairs,
		Domains:      e.Domains,
		Fidelity:     e.Fidelity,
		Config:       e.Config,
		Degradations: e.Degradations,
	})
}

// Unmarshal reconstructs an explanation serialized by Marshal. The
// result predicts, explains instances and reports its structure,
// fidelity and degradations; Forest, Train and Test are nil, so methods
// needing them (EvaluateOn, ExplainInstance's forest cross-check) must
// not be called on a reloaded explanation.
func Unmarshal(data []byte) (*Explanation, error) {
	_, sp := obs.Start(context.Background(), "gef.unmarshal_explanation",
		obs.Int("bytes", len(data)))
	defer sp.End()
	var ej explanationJSON
	if err := json.Unmarshal(data, &ej); err != nil {
		return nil, fmt.Errorf("gef: parsing explanation JSON: %w", err)
	}
	if ej.Version != explanationFormatVersion {
		return nil, fmt.Errorf("gef: explanation format version %d, want %d", ej.Version, explanationFormatVersion)
	}
	model, err := gam.UnmarshalModel(ej.Model)
	if err != nil {
		return nil, fmt.Errorf("gef: reloading explanation model: %w", err)
	}
	return &Explanation{
		Model:        model,
		Features:     ej.Features,
		Pairs:        ej.Pairs,
		Domains:      ej.Domains,
		Fidelity:     ej.Fidelity,
		Config:       ej.Config,
		Degradations: ej.Degradations,
	}, nil
}
