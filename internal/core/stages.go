package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"gef/internal/dataset"
	"gef/internal/featsel"
	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/robust"
	"gef/internal/sampling"
)

// stage is the unit of the engine's pipeline decomposition: a name (one
// of stats/featsel/domains/sample/interactions/fit), a deterministic
// cache key derived from the forest fingerprint plus exactly the config
// fields the stage reads, and the computation producing the stage's
// artifact. An empty key marks the stage uncacheable: the fit stage
// returns fitted models, which depend on the entire upstream state and
// whose reuse is captured at a finer grain by gam.BasisCache instead.
//
// Key strings embed their upstream stage's full key rather than a hash
// of it, so distinct pipelines can never collide — at worst keys get
// long, and long keys are a few hundred bytes against multi-megabyte
// artifacts.
type stage struct {
	name string
	key  func(p *pipeline) string
	run  func(ctx context.Context, p *pipeline) (any, error)
}

// pipeline is the mutable state one Explain/AutoExplain call threads
// through the stages. Artifacts fetched from the cache are immutable;
// the pipeline copies anything it mutates (the feature list shrinks
// under the domain drop ladder) into its own fields.
type pipeline struct {
	eng *Engine
	f   *forest.Forest
	fp  string // forest fingerprint, the root of every cache key
	cfg Config // defaulted pipeline configuration

	stats    *forestStats
	ranking  []int // full gain-ordered feature ranking (featsel artifact)
	features []int // current F′, gain order; owned by the pipeline
	domains  *sampling.Domains
	domKey   string // domains-stage key (sample/interactions embed it)
	smpKey   string // sample-stage key (H-Stat interactions embed it)
	train    *dataset.Dataset
	test     *dataset.Dataset
	degr     []robust.Degradation
}

// forestStats is the per-forest artifact every downstream stage reads:
// the threshold multisets (domains, spec construction), gain importances
// and used-feature set (feature ranking). One forest walk per
// fingerprint, however many explanations are derived from it.
type forestStats struct {
	thresholds map[int][]float64
	importance []float64
	used       []int
}

// domainsArtifact is the domains stage's output: the surviving features
// after the drop-feature ladder, their sampling domains, and the
// degradations the ladder recorded. Degradations ride in the artifact so
// a cache hit reports the same simplifications the original computation
// did.
type domainsArtifact struct {
	features []int
	domains  *sampling.Domains
	degr     []robust.Degradation
}

// sampleArtifact is the sampled D* train/test split.
type sampleArtifact struct {
	train, test *dataset.Dataset
}

// effSampling is the sampling config after the pipeline-level seed and
// categorical-threshold derivations ExplainCtx historically applied.
func (p *pipeline) effSampling() sampling.Config {
	smp := p.cfg.Sampling
	if smp.Seed == 0 {
		smp.Seed = p.cfg.Seed + 1
	}
	if smp.CategoricalThreshold == 0 {
		smp.CategoricalThreshold = p.cfg.CategoricalThreshold
	}
	return smp
}

// intsKey renders an int slice compactly for cache keys.
func intsKey(xs []int) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}

// fbits renders a float for cache keys by bit pattern, so -0.0/0.0 and
// NaN payloads cannot alias distinct configurations.
func fbits(v float64) string {
	return strconv.FormatUint(math.Float64bits(v), 16)
}

var stageStats = stage{
	name: "stats",
	key:  func(p *pipeline) string { return "st|" + p.fp },
	run: func(_ context.Context, p *pipeline) (any, error) {
		return &forestStats{
			thresholds: p.f.ThresholdsByFeature(),
			importance: p.f.GainImportance(),
			used:       p.f.UsedFeatures(),
		}, nil
	},
}

var stageFeatsel = stage{
	name: "featsel",
	key:  func(p *pipeline) string { return "fs|" + p.fp },
	run: func(ctx context.Context, p *pipeline) (any, error) {
		_, sp := obs.Start(ctx, "featsel.top_features")
		ranking := featsel.TopFeaturesRanked(p.stats.importance, p.stats.used, len(p.stats.used))
		sp.Set(obs.Int("selected", len(ranking)))
		sp.End()
		return ranking, nil
	},
}

var stageDomains = stage{
	name: "domains",
	key:  func(p *pipeline) string { return p.domKey },
	run: func(ctx context.Context, p *pipeline) (any, error) {
		smp := p.effSampling()
		// Work on a private copy: the drop ladder compacts the slice in
		// place, and p.features may alias the cached featsel ranking.
		features := append([]int(nil), p.features...)
		var degr []robust.Degradation
		d, err := sampling.BuildDomainsFromCtx(ctx, p.f.NumFeatures, p.stats.thresholds, features, smp)
		for err != nil {
			// A feature whose threshold set is empty or collapsed is
			// dropped from F′ (recording the degradation) and the domains
			// are rebuilt with the survivors; any other failure aborts.
			// The loop is bounded: every pass removes exactly one feature.
			var fe *robust.FeatureError
			if !errors.As(err, &fe) || !errors.Is(err, robust.ErrDegenerate) {
				return nil, robust.CtxErr(err)
			}
			kept := features[:0]
			for _, j := range features {
				if j != fe.Feature {
					kept = append(kept, j)
				}
			}
			features = kept
			if len(features) == 0 {
				return nil, fmt.Errorf("gef: every selected feature has a degenerate sampling domain: %w", err)
			}
			robust.Record(ctx, &degr, robust.Degradation{
				Stage:  "sampling",
				Action: robust.ActionDropFeature,
				Reason: fe.Err.Error(),
				Detail: fmt.Sprintf("feature %d dropped from F′", fe.Feature),
			})
			d, err = sampling.BuildDomainsFromCtx(ctx, p.f.NumFeatures, p.stats.thresholds, features, smp)
		}
		return &domainsArtifact{features: features, domains: d, degr: degr}, nil
	},
}

var stageSample = stage{
	name: "sample",
	key:  func(p *pipeline) string { return p.smpKey },
	run: func(ctx context.Context, p *pipeline) (any, error) {
		dstar, err := sampling.GenerateCtx(ctx, p.f, p.domains, p.cfg.NumSamples, p.cfg.Seed+2)
		if err != nil {
			return nil, robust.CtxErr(err)
		}
		train, test := dstar.Split(p.cfg.TestFraction, p.cfg.Seed+3)
		return &sampleArtifact{train: train, test: test}, nil
	},
}

var stageInteractions = stage{
	name: "interactions",
	key: func(p *pipeline) string {
		k := "ix|" + p.fp + "|f=" + intsKey(p.features) + "|s=" + string(p.cfg.InteractionStrategy)
		if p.cfg.InteractionStrategy == featsel.HStat {
			// The H statistic reads a D* subsample, so the ranking depends
			// on the sample stage's identity and the clamped sample size.
			n := p.cfg.HStatSample
			if n > len(p.train.X) {
				n = len(p.train.X)
			}
			k += "|h=" + strconv.Itoa(n) + "|" + p.smpKey
		}
		return k
	},
	run: func(ctx context.Context, p *pipeline) (any, error) {
		var sample [][]float64
		if p.cfg.InteractionStrategy == featsel.HStat {
			n := p.cfg.HStatSample
			if n > len(p.train.X) {
				n = len(p.train.X)
			}
			sample = p.train.X[:n]
		}
		pairs, err := featsel.RankInteractionsCtx(ctx, p.f, p.features, p.cfg.InteractionStrategy, sample)
		if err != nil {
			return nil, robust.CtxErr(err)
		}
		return pairs, nil
	},
}

// selectFeatures runs the stats and featsel stages and sets p.features
// to the top-k prefix of the gain ranking (a fresh copy the pipeline
// owns). An empty result means the forest has no split nodes; callers
// keep their historical error messages for that case.
func (p *pipeline) selectFeatures(ctx context.Context, k int) error {
	v, err := p.eng.runStage(ctx, p, stageStats)
	if err != nil {
		return err
	}
	p.stats = v.(*forestStats)
	v, err = p.eng.runStage(ctx, p, stageFeatsel)
	if err != nil {
		return err
	}
	p.ranking = v.([]int)
	if k > len(p.ranking) {
		k = len(p.ranking)
	}
	if k < 0 {
		k = 0
	}
	p.features = append([]int(nil), p.ranking[:k]...)
	return nil
}

// buildDomains runs the domains stage (with the drop-feature ladder)
// and applies its artifact: the surviving features replace p.features
// and the ladder's degradations are appended to the pipeline's record.
func (p *pipeline) buildDomains(ctx context.Context) error {
	smp := p.effSampling()
	p.domKey = "dm|" + p.fp + "|f=" + intsKey(p.features) +
		"|s=" + string(smp.Strategy) + "|k=" + strconv.Itoa(smp.K) +
		"|eps=" + fbits(smp.Epsilon) + "|seed=" + strconv.FormatInt(smp.Seed, 10) +
		"|cat=" + strconv.Itoa(smp.CategoricalThreshold)
	v, err := p.eng.runStage(ctx, p, stageDomains)
	if err != nil {
		return err
	}
	art := v.(*domainsArtifact)
	p.features = append([]int(nil), art.features...)
	p.domains = art.domains
	p.degr = append(p.degr, art.degr...)
	return nil
}

// buildSample runs the sample stage and applies the D* split.
func (p *pipeline) buildSample(ctx context.Context) error {
	p.smpKey = "sm|" + p.domKey + "|n=" + strconv.Itoa(p.cfg.NumSamples) +
		"|seed=" + strconv.FormatInt(p.cfg.Seed, 10) +
		"|tf=" + fbits(p.cfg.TestFraction)
	v, err := p.eng.runStage(ctx, p, stageSample)
	if err != nil {
		return err
	}
	art := v.(*sampleArtifact)
	p.train, p.test = art.train, art.test
	return nil
}

// rankInteractions runs the interactions stage and returns the full
// ranked pair list (shared with the cache — callers copy on truncate).
func (p *pipeline) rankInteractions(ctx context.Context) ([]featsel.Pair, error) {
	v, err := p.eng.runStage(ctx, p, stageInteractions)
	if err != nil {
		return nil, err
	}
	return v.([]featsel.Pair), nil
}
